#!/usr/bin/env bash
# Kill/resume smoke test (docs/ROBUSTNESS.md):
#   1. start a checkpointed synth run and SIGTERM it mid-flight (exit 3;
#      the final checkpoint is flushed on the way out),
#   2. resume from the checkpoint to completion (exit 0, equivalent output),
#   3. assert the resumed fitness is no worse than the checkpointed one
#      (paper-lexicographic gates / garbage / buffers order),
#   4. assert the resumed trace ends with run_end reason "resumed-complete".
#
# Usage: scripts/kill_resume_test.sh [path-to-rcgp-binary]
# Tunables: RCGP_KR_BENCH, RCGP_KR_GENERATIONS, RCGP_KR_SEED,
#           RCGP_KR_KILL_AFTER (seconds before the SIGTERM).
set -euo pipefail

RCGP="${1:-./build/src/rcgp}"
BENCH="${RCGP_KR_BENCH:-decoder_2_4}"
GENS="${RCGP_KR_GENERATIONS:-1000000}"
SEED="${RCGP_KR_SEED:-11}"
KILL_AFTER="${RCGP_KR_KILL_AFTER:-2}"

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT
CKPT="$WORKDIR/run.ckpt"

echo "== phase 1: checkpointed run, SIGTERM after ${KILL_AFTER}s"
"$RCGP" synth "$BENCH" -g "$GENS" -s "$SEED" \
  --checkpoint="$CKPT" --checkpoint-interval=2000 \
  --trace-out="$WORKDIR/interrupted.jsonl" &
PID=$!
sleep "$KILL_AFTER"
kill -TERM "$PID" 2>/dev/null || true
set +e
wait "$PID"
STATUS=$?
set -e
if [ "$STATUS" -eq 3 ]; then
  echo "   interrupted as expected (exit 3)"
elif [ "$STATUS" -eq 0 ]; then
  echo "   run finished before the signal landed — resume becomes a no-op"
else
  echo "FAIL: interrupted run exited with $STATUS (expected 3 or 0)" >&2
  exit 1
fi
test -f "$CKPT" || { echo "FAIL: no checkpoint at $CKPT" >&2; exit 1; }
cp "$CKPT" "$WORKDIR/at_interrupt.ckpt"

echo "== phase 2: resume to completion"
"$RCGP" synth "$BENCH" -g "$GENS" -s "$SEED" \
  --checkpoint="$CKPT" --resume \
  --trace-out="$WORKDIR/resumed.jsonl" | tee "$WORKDIR/resumed.out"
grep -q "equivalent: yes" "$WORKDIR/resumed.out" \
  || { echo "FAIL: resumed result not equivalent" >&2; exit 1; }

echo "== phase 3: resumed fitness must be no worse than the checkpointed one"
# Checkpoint fitness line: "fitness <success-rate> <gates> <garbage> <buffers>"
fit() { grep '^fitness ' "$1" | awk '{print $3, $4, $5}'; }
read -r R1 G1 B1 <<<"$(fit "$WORKDIR/at_interrupt.ckpt")"
read -r R2 G2 B2 <<<"$(fit "$CKPT")"
echo "   checkpointed: gates=$R1 garbage=$G1 buffers=$B1"
echo "   resumed:      gates=$R2 garbage=$G2 buffers=$B2"
worse=$((R2 > R1 || (R2 == R1 && (G2 > G1 || (G2 == G1 && B2 > B1)))))
if [ "$worse" -ne 0 ]; then
  echo "FAIL: resumed fitness regressed" >&2
  exit 1
fi

echo "== phase 4: trace must end as a resumed completion"
grep -q '"reason":"resumed-complete"' "$WORKDIR/resumed.jsonl" \
  || { echo "FAIL: trace lacks run_end reason=resumed-complete" >&2; exit 1; }

echo "PASS: kill/resume smoke test"
