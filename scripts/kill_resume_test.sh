#!/usr/bin/env bash
# Kill/resume smoke test (docs/ROBUSTNESS.md):
#   1. start a checkpointed synth run and SIGTERM it mid-flight (exit 3;
#      the final checkpoint is flushed on the way out),
#   2. resume from the checkpoint to completion (exit 0, equivalent output),
#   3. assert the resumed fitness is no worse than the checkpointed one
#      (paper-lexicographic gates / garbage / buffers order),
#   4. assert the resumed trace ends with run_end reason "resumed-complete",
#   5. repeat the interruption with SIGKILL — no flush-on-exit, so resume
#      must work from the last interval checkpoint alone,
#   6. kill an `rcgp batch` run mid-shard (SIGTERM) and resume it, then
#      diff the deterministic result fields and netlist bytes against an
#      uninterrupted reference run of the same manifest (docs/BATCH.md).
#
# Usage: scripts/kill_resume_test.sh [path-to-rcgp-binary]
# Tunables: RCGP_KR_BENCH, RCGP_KR_GENERATIONS, RCGP_KR_SEED,
#           RCGP_KR_KILL_AFTER (seconds before the signal),
#           RCGP_KR_BATCH_GENERATIONS (per-job budget of the batch phases).
set -euo pipefail

RCGP="${1:-./build/src/rcgp}"
BENCH="${RCGP_KR_BENCH:-decoder_2_4}"
GENS="${RCGP_KR_GENERATIONS:-1000000}"
SEED="${RCGP_KR_SEED:-11}"
KILL_AFTER="${RCGP_KR_KILL_AFTER:-2}"
BATCH_GENS="${RCGP_KR_BATCH_GENERATIONS:-150000}"

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT
CKPT="$WORKDIR/run.ckpt"

# Waits on a child PID without tripping set -e; the exit status lands in
# $STATUS. (Must run in this shell — `wait` cannot adopt a sibling
# subshell's child, so no command substitution here.)
wait_status() {
  set +e
  wait "$1"
  STATUS=$?
  set -e
}

echo "== phase 1: checkpointed run, SIGTERM after ${KILL_AFTER}s"
"$RCGP" synth "$BENCH" -g "$GENS" -s "$SEED" \
  --checkpoint="$CKPT" --checkpoint-interval=2000 \
  --trace-out="$WORKDIR/interrupted.jsonl" &
PID=$!
sleep "$KILL_AFTER"
kill -TERM "$PID" 2>/dev/null || true
wait_status "$PID"
if [ "$STATUS" -eq 3 ]; then
  echo "   interrupted as expected (exit 3)"
elif [ "$STATUS" -eq 0 ]; then
  echo "   run finished before the signal landed — resume becomes a no-op"
else
  echo "FAIL: interrupted run exited with $STATUS (expected 3 or 0)" >&2
  exit 1
fi
test -f "$CKPT" || { echo "FAIL: no checkpoint at $CKPT" >&2; exit 1; }
cp "$CKPT" "$WORKDIR/at_interrupt.ckpt"

echo "== phase 2: resume to completion"
"$RCGP" synth "$BENCH" -g "$GENS" -s "$SEED" \
  --checkpoint="$CKPT" --resume \
  --trace-out="$WORKDIR/resumed.jsonl" | tee "$WORKDIR/resumed.out"
grep -q "equivalent: yes" "$WORKDIR/resumed.out" \
  || { echo "FAIL: resumed result not equivalent" >&2; exit 1; }

echo "== phase 3: resumed fitness must be no worse than the checkpointed one"
# Checkpoint fitness line: "fitness <success-rate> <gates> <garbage> <buffers>"
fit() { grep '^fitness ' "$1" | awk '{print $3, $4, $5}'; }
read -r R1 G1 B1 <<<"$(fit "$WORKDIR/at_interrupt.ckpt")"
read -r R2 G2 B2 <<<"$(fit "$CKPT")"
echo "   checkpointed: gates=$R1 garbage=$G1 buffers=$B1"
echo "   resumed:      gates=$R2 garbage=$G2 buffers=$B2"
worse=$((R2 > R1 || (R2 == R1 && (G2 > G1 || (G2 == G1 && B2 > B1)))))
if [ "$worse" -ne 0 ]; then
  echo "FAIL: resumed fitness regressed" >&2
  exit 1
fi

echo "== phase 4: trace must end as a resumed completion"
grep -q '"reason":"resumed-complete"' "$WORKDIR/resumed.jsonl" \
  || { echo "FAIL: trace lacks run_end reason=resumed-complete" >&2; exit 1; }

echo "== phase 5: SIGKILL — resume must survive without the exit flush"
KCKPT="$WORKDIR/kill9.ckpt"
"$RCGP" synth "$BENCH" -g "$GENS" -s "$SEED" \
  --checkpoint="$KCKPT" --checkpoint-interval=2000 >/dev/null &
PID=$!
# SIGKILL gives the process no chance to flush a final checkpoint, so wait
# until an interval checkpoint exists before pulling the plug.
for _ in $(seq 50); do
  test -s "$KCKPT" && break
  sleep 0.1
done
sleep "$KILL_AFTER"
kill -KILL "$PID" 2>/dev/null || true
wait_status "$PID"
if [ "$STATUS" -ne 137 ] && [ "$STATUS" -ne 0 ]; then
  echo "FAIL: SIGKILLed run exited with $STATUS (expected 137 or 0)" >&2
  exit 1
fi
test -s "$KCKPT" \
  || { echo "FAIL: no interval checkpoint survived SIGKILL" >&2; exit 1; }
"$RCGP" synth "$BENCH" -g "$GENS" -s "$SEED" \
  --checkpoint="$KCKPT" --resume | tee "$WORKDIR/kill9.out"
grep -q "equivalent: yes" "$WORKDIR/kill9.out" \
  || { echo "FAIL: resume after SIGKILL not equivalent" >&2; exit 1; }

echo "== phase 6: batch kill/resume must match an uninterrupted reference"
MANIFEST="$WORKDIR/suite.jsonl"
cat > "$MANIFEST" <<EOF
{"id":"fa7",  "circuit":"full_adder",  "generations":$BATCH_GENS, "seed":7}
{"id":"fa8",  "circuit":"full_adder",  "generations":$BATCH_GENS, "seed":8}
{"id":"dec9", "circuit":"decoder_2_4", "generations":$BATCH_GENS, "seed":9}
{"id":"gc4",  "circuit":"graycode4",   "generations":$BATCH_GENS, "seed":11}
EOF

echo "   reference run (uninterrupted)"
"$RCGP" batch "$MANIFEST" --jobs=2 --out-dir="$WORKDIR/ref_out" >/dev/null

echo "   interrupted run (SIGTERM mid-shard) + resume"
"$RCGP" batch "$MANIFEST" --jobs=2 --out-dir="$WORKDIR/int_out" >/dev/null &
PID=$!
sleep 1.5
kill -TERM "$PID" 2>/dev/null || true
wait_status "$PID"
if [ "$STATUS" -ne 3 ] && [ "$STATUS" -ne 0 ]; then
  echo "FAIL: interrupted batch exited with $STATUS (expected 3 or 0)" >&2
  exit 1
fi
"$RCGP" batch "$MANIFEST" --jobs=2 --out-dir="$WORKDIR/int_out" --resume \
  >/dev/null

# Project the deterministic JobRecord fields (docs/BATCH.md): id, ok,
# final, stop_reason, verified, and the cost components. Scheduling
# fields (worker, seconds, attempts) legitimately differ run-to-run, and
# only each job's last record counts after a resume.
project() {
  python3 - "$1" <<'PY'
import json, sys
last = {}
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn final line of a killed run
        last[rec["id"]] = rec
for job_id in sorted(last):
    rec = last[job_id]
    keep = {k: rec.get(k)
            for k in ("id", "ok", "final", "stop_reason", "verified", "cost")}
    print(json.dumps(keep, sort_keys=True))
PY
}
project "$WORKDIR/ref_out/results.jsonl" > "$WORKDIR/ref.proj"
project "$WORKDIR/int_out/results.jsonl" > "$WORKDIR/int.proj"
if ! diff -u "$WORKDIR/ref.proj" "$WORKDIR/int.proj"; then
  echo "FAIL: resumed batch results differ from the reference run" >&2
  exit 1
fi
for id in fa7 fa8 dec9 gc4; do
  cmp "$WORKDIR/ref_out/$id.rqfp" "$WORKDIR/int_out/$id.rqfp" \
    || { echo "FAIL: netlist bytes for $id differ after resume" >&2; exit 1; }
done
echo "   batch results and netlists are bit-identical after kill/resume"

echo "PASS: kill/resume smoke test"
