#!/usr/bin/env python3
"""Validates RCGP telemetry outputs (used by CI and local smoke runs).

Usage:
    check_telemetry.py [--trace trace.jsonl] [--metrics metrics.json]
                       [--profile profile.json] [--prom metrics.prom]

Checks performed:
  trace.jsonl
    - every line is a standalone JSON object with `event` and `seq` fields
    - `seq` is the line index (no dropped or reordered events)
    - improvement events are monotone in the lexicographic fitness order
      (success_rate up; then n_r, n_g, n_b down)
    - the final improvement's fitness matches the run_end fitness
  metrics.json
    - parses as JSON with the {"flow": ..., "metrics": ...} shape the CLI
      emits (or the bare registry shape from the bench drivers)
    - flow phase wall-times sum to within 10% of flow.seconds_total
    - when the λ-parallel evaluation pool ran (evolve.pool.* present):
      thread gauge >= 1, utilization gauge in [0, 1], and the per-worker
      evaluation counters sum exactly to evolve.pool.tasks
    - when the incremental cost path ran (evolve.cost.* present):
      full_recomputes >= 1 (every CostCache starts with a full build),
      delta_updates >= 0, and the scratch_bytes gauge > 0
    - when an island fleet ran (island.fleets present): migration offers
      split exactly into accepted + rejected, the per-island immigrant
      counters sum to the accepted count, and the islands gauge is >= 1
    - when a batch ran (batch.jobs.* present): settled jobs
      (done + failed + interrupted) never exceed the queued count, the
      per-worker job counters sum exactly to the settled count, the worker
      gauge is >= 1, the running gauge is back to 0, and every per-worker
      utilization gauge is in [0, 1]
  profile.json (Chrome trace-event / Perfetto format, from --profile-out)
    - top level is {"traceEvents": [...]} with at least one event
    - every event has a `ph` type; X (complete) events have a name and
      numeric ts/dur >= 0
    - X events on each tid nest properly: sorted by (ts asc, dur desc),
      a child span never outlives the enclosing span on its thread
    - span_id args are unique and span_parent references resolve to a
      span on the same thread (or 0 for roots)
  metrics.prom (Prometheus text exposition, from --prom-out)
    - every non-comment line parses as `name{labels} value`
    - every sample family is announced by a # TYPE line
    - histogram buckets are cumulative (monotone in le order), the +Inf
      bucket equals _count, and _sum/_count are present per histogram

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def fitness_tuple(event: dict):
    """Lexicographic key; lower is better (success_rate negated)."""
    return (
        -event["success_rate"],
        event["n_r"],
        event["n_g"],
        event["n_b"],
    )


def check_trace(path: str) -> None:
    events = []
    with open(path, "r", encoding="utf-8") as f:
        for i, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{i + 1}: not valid JSON: {e}")
            if not isinstance(ev, dict):
                fail(f"{path}:{i + 1}: line is not a JSON object")
            if "event" not in ev or "seq" not in ev:
                fail(f"{path}:{i + 1}: missing 'event' or 'seq'")
            if ev["seq"] != len(events):
                fail(
                    f"{path}:{i + 1}: seq {ev['seq']} != line index "
                    f"{len(events)} (dropped/reordered events?)"
                )
            events.append(ev)
    if not events:
        fail(f"{path}: no events")

    improvements = [e for e in events if e["event"] == "improvement"]
    for prev, cur in zip(improvements, improvements[1:]):
        if fitness_tuple(cur) >= fitness_tuple(prev):
            fail(
                f"{path}: improvement seq {cur['seq']} is not strictly "
                f"better than seq {prev['seq']}"
            )
    run_ends = [e for e in events if e["event"] == "run_end"]
    if improvements and run_ends:
        last, end = improvements[-1], run_ends[-1]
        if fitness_tuple(last) != fitness_tuple(end):
            fail(
                f"{path}: final improvement fitness {fitness_tuple(last)} "
                f"!= run_end fitness {fitness_tuple(end)}"
            )
    print(
        f"check_telemetry: {path}: {len(events)} events, "
        f"{len(improvements)} improvements: OK"
    )


def check_metrics(path: str) -> None:
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")
    if "flow" in doc:
        flow = doc["flow"]
        phases = flow.get("phases", {})
        if not phases:
            fail(f"{path}: flow.phases is empty")
        total = flow.get("seconds_total", 0.0)
        phase_sum = sum(phases.values())
        if total > 0.01 and abs(phase_sum - total) > 0.10 * total:
            fail(
                f"{path}: phase sum {phase_sum:.4f}s deviates more than "
                f"10% from seconds_total {total:.4f}s"
            )
        if "metrics" not in doc:
            fail(f"{path}: missing 'metrics' registry snapshot")
        registry = doc["metrics"]
    else:
        # Bare registry dump (bench drivers' RCGP_METRICS_OUT).
        registry = doc
    counters = registry.get("counters", {})
    if not counters:
        fail(f"{path}: no counters recorded")
    check_pool_metrics(path, counters, registry.get("gauges", {}))
    check_cost_metrics(path, counters, registry.get("gauges", {}))
    check_batch_metrics(path, counters, registry.get("gauges", {}))
    check_fuzz_metrics(path, counters, registry.get("gauges", {}))
    check_cache_metrics(path, counters, registry.get("gauges", {}))
    check_serve_metrics(path, counters, registry.get("gauges", {}))
    check_island_metrics(path, counters, registry.get("gauges", {}))
    print(f"check_telemetry: {path}: {len(counters)} counters: OK")


def check_pool_metrics(path: str, counters: dict, gauges: dict) -> None:
    """λ-parallel evaluation pool invariants (docs/PARALLELISM.md)."""
    tasks = counters.get("evolve.pool.tasks")
    if tasks is None:
        return  # run did not use the evaluation pool (e.g. stats command)
    if tasks <= 0:
        fail(f"{path}: evolve.pool.tasks is {tasks}, expected > 0")
    threads = gauges.get("evolve.pool.threads", 0)
    if threads < 1:
        fail(f"{path}: evolve.pool.threads gauge is {threads}, expected >= 1")
    util = gauges.get("evolve.pool.utilization", 0.0)
    if not 0.0 <= util <= 1.0:
        fail(f"{path}: evolve.pool.utilization {util} outside [0, 1]")
    worker_evals = sum(
        v
        for name, v in counters.items()
        if name.startswith("evolve.pool.worker") and name.endswith(".evals")
    )
    if worker_evals != tasks:
        fail(
            f"{path}: per-worker eval counters sum to {worker_evals} but "
            f"evolve.pool.tasks is {tasks}"
        )
    print(
        f"check_telemetry: {path}: pool ran {tasks} tasks on "
        f"{threads:g} thread(s): OK"
    )


def check_cost_metrics(path: str, counters: dict, gauges: dict) -> None:
    """Incremental cost-evaluation invariants (docs/COST_EVAL.md)."""
    full = counters.get("evolve.cost.full_recomputes")
    deltas = counters.get("evolve.cost.delta_updates")
    if full is None and deltas is None:
        return  # run never priced a netlist
    if deltas is not None and deltas < 0:
        fail(f"{path}: evolve.cost.delta_updates is {deltas}, expected >= 0")
    # Every CostCache trajectory starts with a full build, so delta traffic
    # without a single full analysis means the counters are wired wrong.
    if (deltas or 0) > 0 and (full or 0) < 1:
        fail(
            f"{path}: evolve.cost.delta_updates is {deltas} but "
            f"full_recomputes is {full}; a cache cannot be warm before "
            f"its first full build"
        )
    if full is not None and full < 1:
        fail(f"{path}: evolve.cost.full_recomputes is {full}, expected >= 1")
    scratch = gauges.get("evolve.cost.scratch_bytes")
    if scratch is not None and scratch <= 0:
        fail(
            f"{path}: evolve.cost.scratch_bytes gauge is {scratch}, "
            f"expected > 0 once any cost was priced"
        )
    print(
        f"check_telemetry: {path}: cost path did {full or 0} full "
        f"recomputes, {deltas or 0} delta updates: OK"
    )


def check_batch_metrics(path: str, counters: dict, gauges: dict) -> None:
    """Batch job-scheduler invariants (docs/BATCH.md)."""
    queued = counters.get("batch.jobs.queued")
    if queued is None:
        return  # run was not a batch
    settled = (
        counters.get("batch.jobs.done", 0)
        + counters.get("batch.jobs.failed", 0)
        + counters.get("batch.jobs.interrupted", 0)
    )
    if settled > queued:
        fail(
            f"{path}: {settled} settled batch jobs exceed the "
            f"{queued} queued"
        )
    worker_jobs = sum(
        v
        for name, v in counters.items()
        if name.startswith("batch.worker") and name.endswith(".jobs")
    )
    if worker_jobs != settled:
        fail(
            f"{path}: per-worker job counters sum to {worker_jobs} but "
            f"{settled} jobs settled"
        )
    workers = gauges.get("batch.workers", 0)
    if workers < 1:
        fail(f"{path}: batch.workers gauge is {workers}, expected >= 1")
    running = gauges.get("batch.jobs.running", 0)
    if running != 0:
        fail(
            f"{path}: batch.jobs.running is {running} after the batch "
            f"finished, expected 0"
        )
    for name, v in gauges.items():
        if name.startswith("batch.worker") and name.endswith(".utilization"):
            if not 0.0 <= v <= 1.0:
                fail(f"{path}: {name} is {v}, outside [0, 1]")
    print(
        f"check_telemetry: {path}: batch settled {settled}/{queued} "
        f"queued jobs on {workers:g} worker(s): OK"
    )


def check_fuzz_metrics(path: str, counters: dict, gauges: dict) -> None:
    """Fuzzing harness invariants (docs/FUZZING.md)."""
    cases = counters.get("fuzz.cases")
    if cases is None:
        return  # run was not a fuzz run
    if cases <= 0:
        fail(f"{path}: fuzz.cases is {cases}, expected > 0")
    target_cases = sum(
        v
        for name, v in counters.items()
        if name.startswith("fuzz.")
        and name.endswith(".cases")
        and name != "fuzz.cases"
    )
    if target_cases != cases:
        fail(
            f"{path}: per-target case counters sum to {target_cases} but "
            f"fuzz.cases is {cases}"
        )
    findings = counters.get("fuzz.findings", 0)
    target_findings = sum(
        v
        for name, v in counters.items()
        if name.startswith("fuzz.")
        and name.endswith(".findings")
        and name != "fuzz.findings"
    )
    if target_findings != findings:
        fail(
            f"{path}: per-target finding counters sum to {target_findings} "
            f"but fuzz.findings is {findings}"
        )
    # Shrinking only ever runs on findings.
    accepted = counters.get("fuzz.shrink.accepted", 0)
    attempts = counters.get("fuzz.shrink.attempts", 0)
    if accepted > attempts:
        fail(
            f"{path}: fuzz.shrink.accepted {accepted} exceeds "
            f"fuzz.shrink.attempts {attempts}"
        )
    if attempts > 0 and findings == 0:
        fail(
            f"{path}: fuzz.shrink.attempts is {attempts} with zero "
            f"findings; the shrinker must only run on failures"
        )
    seconds = gauges.get("fuzz.seconds")
    if seconds is None or seconds < 0:
        fail(f"{path}: fuzz.seconds gauge is {seconds}, expected >= 0")
    print(
        f"check_telemetry: {path}: fuzz ran {cases} cases, "
        f"{findings} findings: OK"
    )


def check_cache_metrics(path: str, counters: dict, gauges: dict) -> None:
    """Result-cache invariants (docs/SERVICE.md)."""
    lookups = counters.get("cache.lookups")
    if lookups is None:
        return  # run never consulted a result cache
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    if hits + misses != lookups:
        fail(
            f"{path}: cache.hits {hits} + cache.misses {misses} != "
            f"cache.lookups {lookups}"
        )
    entries = gauges.get("cache.entries")
    if entries is None or entries < 0:
        fail(f"{path}: cache.entries gauge is {entries}, expected >= 0")
    inserts = counters.get("cache.inserts", 0)
    if inserts > misses:
        # Every insert is preceded by the miss that triggered synthesis
        # (warm-only runs insert without lookups, but then misses == 0 and
        # lookups is absent, so we never reach this check).
        fail(
            f"{path}: cache.inserts {inserts} exceeds cache.misses "
            f"{misses}; hits must never insert"
        )
    failures = counters.get("cache.verify.failures", 0)
    if failures > 0:
        fail(
            f"{path}: cache.verify.failures is {failures}; a healthy "
            f"store must never serve an entry that fails verification"
        )
    print(
        f"check_telemetry: {path}: cache served {hits}/{lookups} lookups "
        f"from {entries:g} entries: OK"
    )


def check_serve_metrics(path: str, counters: dict, gauges: dict) -> None:
    """Synthesis-service invariants (docs/SERVICE.md)."""
    requests = counters.get("serve.requests")
    if requests is None:
        return  # run was not a service
    ok = counters.get("serve.responses.ok", 0)
    errors = counters.get("serve.errors", 0)
    if ok + errors != requests:
        fail(
            f"{path}: serve.responses.ok {ok} + serve.errors {errors} != "
            f"serve.requests {requests}"
        )
    if counters.get("serve.connections", 0) < 1:
        fail(f"{path}: serve.requests > 0 but serve.connections < 1")
    for name in ("serve.active", "serve.connections.active"):
        residual = gauges.get(name, 0)
        if residual != 0:
            fail(
                f"{path}: {name} gauge is {residual} after shutdown, "
                f"expected 0"
            )
    if gauges.get("serve.up", 0) != 0:
        fail(f"{path}: serve.up gauge still set after shutdown")
    print(
        f"check_telemetry: {path}: service answered {requests} requests "
        f"({ok} ok, {errors} errors): OK"
    )


def check_island_metrics(path: str, counters: dict, gauges: dict) -> None:
    """Island-model fleet invariants (docs/ISLANDS.md)."""
    fleets = counters.get("island.fleets")
    if fleets is None:
        return  # run did not drive an island fleet
    if fleets < 1:
        fail(f"{path}: island.fleets is {fleets}, expected >= 1")
    offered = counters.get("island.migrations.offered", 0)
    accepted = counters.get("island.migrations.accepted", 0)
    rejected = counters.get("island.migrations.rejected", 0)
    if accepted + rejected != offered:
        fail(
            f"{path}: island.migrations.accepted {accepted} + rejected "
            f"{rejected} != offered {offered}"
        )
    immigrants = sum(
        v
        for name, v in counters.items()
        if name.startswith("island.island") and name.endswith(".immigrants")
    )
    if immigrants != accepted:
        fail(
            f"{path}: per-island immigrant counters sum to {immigrants} "
            f"but island.migrations.accepted is {accepted}"
        )
    islands = gauges.get("island.islands", 0)
    if islands < 1:
        fail(f"{path}: island.islands gauge is {islands}, expected >= 1")
    print(
        f"check_telemetry: {path}: {fleets} fleet(s) of {islands:g} "
        f"island(s) accepted {accepted}/{offered} migrations: OK"
    )


def check_profile(path: str) -> None:
    """Chrome trace-event (Perfetto-loadable) span profile invariants."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing top-level 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents is empty")

    spans = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            fail(f"{path}: traceEvents[{i}] has no 'ph' event type")
        if ev["ph"] != "X":
            continue
        for key in ("name", "ts", "dur", "tid"):
            if key not in ev:
                fail(f"{path}: X event [{i}] missing '{key}'")
        ts, dur = ev["ts"], ev["dur"]
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{path}: X event [{i}] ts {ts!r} is not a number >= 0")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(f"{path}: X event [{i}] dur {dur!r} is not a number >= 0")
        spans.append(ev)
    if not spans:
        fail(f"{path}: no X (complete) span events")

    # Span identity: unique ids, parents resolve on the same thread.
    tid_of = {}
    for ev in spans:
        sid = ev.get("args", {}).get("span_id")
        if sid is not None:
            if sid in tid_of:
                fail(f"{path}: duplicate span_id {sid}")
            tid_of[sid] = ev["tid"]
    for ev in spans:
        parent = ev.get("args", {}).get("span_parent", 0)
        if parent == 0:
            continue
        if parent not in tid_of:
            fail(f"{path}: span_parent {parent} references no exported span")
        if tid_of[parent] != ev["tid"]:
            fail(
                f"{path}: span_parent {parent} is on tid {tid_of[parent]} "
                f"but the child is on tid {ev['tid']}"
            )

    # Nesting balance per thread: children must end before their parents.
    by_tid = {}
    for ev in spans:
        by_tid.setdefault(ev["tid"], []).append(ev)
    for tid, tspans in sorted(by_tid.items()):
        tspans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for ev in tspans:
            end = ev["ts"] + ev["dur"]
            while stack and ev["ts"] >= stack[-1]:
                stack.pop()
            if stack and end > stack[-1]:
                fail(
                    f"{path}: tid {tid}: span '{ev['name']}' "
                    f"[{ev['ts']}, {end}) outlives its enclosing span "
                    f"(ends {stack[-1]})"
                )
            stack.append(end)
    print(
        f"check_telemetry: {path}: {len(spans)} spans on "
        f"{len(by_tid)} thread(s): OK"
    )


def check_prom(path: str) -> None:
    """Prometheus text exposition format invariants."""
    typed = {}
    samples = []  # (family, labels-dict, value)
    with open(path, "r", encoding="utf-8") as f:
        for i, line in enumerate(f):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4 or parts[3] not in (
                    "counter",
                    "gauge",
                    "histogram",
                ):
                    fail(f"{path}:{i + 1}: malformed TYPE line: {line}")
                typed[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            name, labels, value = parse_prom_sample(path, i + 1, line)
            samples.append((name, labels, value))
    if not samples:
        fail(f"{path}: no samples")

    for name, _, _ in samples:
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
                break
        if family not in typed:
            fail(f"{path}: sample '{name}' has no # TYPE announcement")

    check_prom_histograms(path, typed, samples)
    print(
        f"check_telemetry: {path}: {len(samples)} samples in "
        f"{len(typed)} families: OK"
    )


def parse_prom_sample(path: str, lineno: int, line: str):
    """Parses `name{k="v",...} value` into (name, labels, float)."""
    rest = line
    labels = {}
    if "{" in line:
        name, rest = line.split("{", 1)
        if "}" not in rest:
            fail(f"{path}:{lineno}: unterminated label set: {line}")
        label_str, rest = rest.split("}", 1)
        for item in label_str.split(","):
            if not item:
                continue
            if "=" not in item:
                fail(f"{path}:{lineno}: malformed label '{item}'")
            k, v = item.split("=", 1)
            if len(v) < 2 or v[0] != '"' or v[-1] != '"':
                fail(f"{path}:{lineno}: label value not quoted: {item}")
            labels[k] = v[1:-1]
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            fail(f"{path}:{lineno}: sample has no value: {line}")
        name, rest = parts
    try:
        value = float(rest.strip())
    except ValueError:
        fail(f"{path}:{lineno}: sample value is not a number: {line}")
    if not name.startswith("rcgp_"):
        fail(f"{path}:{lineno}: sample '{name}' lacks the rcgp_ prefix")
    return name, labels, value


def check_prom_histograms(path: str, typed: dict, samples: list) -> None:
    """Cumulative bucket monotonicity and +Inf == _count per histogram."""
    for family, kind in typed.items():
        if kind != "histogram":
            continue
        buckets = []
        total = None
        has_sum = False
        for name, labels, value in samples:
            if name == family + "_bucket":
                le = labels.get("le")
                if le is None:
                    fail(f"{path}: {family}_bucket sample without 'le' label")
                bound = float("inf") if le == "+Inf" else float(le)
                buckets.append((bound, value))
            elif name == family + "_count":
                total = value
            elif name == family + "_sum":
                has_sum = True
        if not buckets or total is None or not has_sum:
            fail(f"{path}: histogram {family} missing bucket/_sum/_count")
        buckets.sort(key=lambda b: b[0])
        prev = 0.0
        for bound, value in buckets:
            if value < prev:
                fail(
                    f"{path}: {family} bucket le={bound} count {value} "
                    f"is below the previous bucket ({prev}); buckets must "
                    f"be cumulative"
                )
            prev = value
        if buckets[-1][0] != float("inf"):
            fail(f"{path}: histogram {family} has no le=\"+Inf\" bucket")
        if buckets[-1][1] != total:
            fail(
                f"{path}: {family} +Inf bucket {buckets[-1][1]} != "
                f"_count {total}"
            )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="JSONL evolution trace to validate")
    ap.add_argument("--metrics", help="metrics JSON to validate")
    ap.add_argument("--profile", help="Chrome trace-event profile to validate")
    ap.add_argument("--prom", help="Prometheus text exposition to validate")
    args = ap.parse_args()
    if not (args.trace or args.metrics or args.profile or args.prom):
        ap.error(
            "nothing to check: pass --trace, --metrics, --profile, "
            "and/or --prom"
        )
    if args.trace:
        check_trace(args.trace)
    if args.metrics:
        check_metrics(args.metrics)
    if args.profile:
        check_profile(args.profile)
    if args.prom:
        check_prom(args.prom)


if __name__ == "__main__":
    main()
