#!/usr/bin/env python3
"""Validates RCGP telemetry outputs (used by CI and local smoke runs).

Usage:
    check_telemetry.py --trace trace.jsonl [--metrics metrics.json]

Checks performed:
  trace.jsonl
    - every line is a standalone JSON object with `event` and `seq` fields
    - `seq` is the line index (no dropped or reordered events)
    - improvement events are monotone in the lexicographic fitness order
      (success_rate up; then n_r, n_g, n_b down)
    - the final improvement's fitness matches the run_end fitness
  metrics.json
    - parses as JSON with the {"flow": ..., "metrics": ...} shape the CLI
      emits (or the bare registry shape from the bench drivers)
    - flow phase wall-times sum to within 10% of flow.seconds_total
    - when the λ-parallel evaluation pool ran (evolve.pool.* present):
      thread gauge >= 1, utilization gauge in [0, 1], and the per-worker
      evaluation counters sum exactly to evolve.pool.tasks
    - when the incremental cost path ran (evolve.cost.* present):
      full_recomputes >= 1 (every CostCache starts with a full build),
      delta_updates >= 0, and the scratch_bytes gauge > 0
    - when a batch ran (batch.jobs.* present): settled jobs
      (done + failed + interrupted) never exceed the queued count, the
      per-worker job counters sum exactly to the settled count, the worker
      gauge is >= 1, the running gauge is back to 0, and every per-worker
      utilization gauge is in [0, 1]

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def fitness_tuple(event: dict):
    """Lexicographic key; lower is better (success_rate negated)."""
    return (
        -event["success_rate"],
        event["n_r"],
        event["n_g"],
        event["n_b"],
    )


def check_trace(path: str) -> None:
    events = []
    with open(path, "r", encoding="utf-8") as f:
        for i, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{i + 1}: not valid JSON: {e}")
            if not isinstance(ev, dict):
                fail(f"{path}:{i + 1}: line is not a JSON object")
            if "event" not in ev or "seq" not in ev:
                fail(f"{path}:{i + 1}: missing 'event' or 'seq'")
            if ev["seq"] != len(events):
                fail(
                    f"{path}:{i + 1}: seq {ev['seq']} != line index "
                    f"{len(events)} (dropped/reordered events?)"
                )
            events.append(ev)
    if not events:
        fail(f"{path}: no events")

    improvements = [e for e in events if e["event"] == "improvement"]
    for prev, cur in zip(improvements, improvements[1:]):
        if fitness_tuple(cur) >= fitness_tuple(prev):
            fail(
                f"{path}: improvement seq {cur['seq']} is not strictly "
                f"better than seq {prev['seq']}"
            )
    run_ends = [e for e in events if e["event"] == "run_end"]
    if improvements and run_ends:
        last, end = improvements[-1], run_ends[-1]
        if fitness_tuple(last) != fitness_tuple(end):
            fail(
                f"{path}: final improvement fitness {fitness_tuple(last)} "
                f"!= run_end fitness {fitness_tuple(end)}"
            )
    print(
        f"check_telemetry: {path}: {len(events)} events, "
        f"{len(improvements)} improvements: OK"
    )


def check_metrics(path: str) -> None:
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")
    if "flow" in doc:
        flow = doc["flow"]
        phases = flow.get("phases", {})
        if not phases:
            fail(f"{path}: flow.phases is empty")
        total = flow.get("seconds_total", 0.0)
        phase_sum = sum(phases.values())
        if total > 0.01 and abs(phase_sum - total) > 0.10 * total:
            fail(
                f"{path}: phase sum {phase_sum:.4f}s deviates more than "
                f"10% from seconds_total {total:.4f}s"
            )
        if "metrics" not in doc:
            fail(f"{path}: missing 'metrics' registry snapshot")
        registry = doc["metrics"]
    else:
        # Bare registry dump (bench drivers' RCGP_METRICS_OUT).
        registry = doc
    counters = registry.get("counters", {})
    if not counters:
        fail(f"{path}: no counters recorded")
    check_pool_metrics(path, counters, registry.get("gauges", {}))
    check_cost_metrics(path, counters, registry.get("gauges", {}))
    check_batch_metrics(path, counters, registry.get("gauges", {}))
    print(f"check_telemetry: {path}: {len(counters)} counters: OK")


def check_pool_metrics(path: str, counters: dict, gauges: dict) -> None:
    """λ-parallel evaluation pool invariants (docs/PARALLELISM.md)."""
    tasks = counters.get("evolve.pool.tasks")
    if tasks is None:
        return  # run did not use the evaluation pool (e.g. stats command)
    if tasks <= 0:
        fail(f"{path}: evolve.pool.tasks is {tasks}, expected > 0")
    threads = gauges.get("evolve.pool.threads", 0)
    if threads < 1:
        fail(f"{path}: evolve.pool.threads gauge is {threads}, expected >= 1")
    util = gauges.get("evolve.pool.utilization", 0.0)
    if not 0.0 <= util <= 1.0:
        fail(f"{path}: evolve.pool.utilization {util} outside [0, 1]")
    worker_evals = sum(
        v
        for name, v in counters.items()
        if name.startswith("evolve.pool.worker") and name.endswith(".evals")
    )
    if worker_evals != tasks:
        fail(
            f"{path}: per-worker eval counters sum to {worker_evals} but "
            f"evolve.pool.tasks is {tasks}"
        )
    print(
        f"check_telemetry: {path}: pool ran {tasks} tasks on "
        f"{threads:g} thread(s): OK"
    )


def check_cost_metrics(path: str, counters: dict, gauges: dict) -> None:
    """Incremental cost-evaluation invariants (docs/COST_EVAL.md)."""
    full = counters.get("evolve.cost.full_recomputes")
    deltas = counters.get("evolve.cost.delta_updates")
    if full is None and deltas is None:
        return  # run never priced a netlist
    if deltas is not None and deltas < 0:
        fail(f"{path}: evolve.cost.delta_updates is {deltas}, expected >= 0")
    # Every CostCache trajectory starts with a full build, so delta traffic
    # without a single full analysis means the counters are wired wrong.
    if (deltas or 0) > 0 and (full or 0) < 1:
        fail(
            f"{path}: evolve.cost.delta_updates is {deltas} but "
            f"full_recomputes is {full}; a cache cannot be warm before "
            f"its first full build"
        )
    if full is not None and full < 1:
        fail(f"{path}: evolve.cost.full_recomputes is {full}, expected >= 1")
    scratch = gauges.get("evolve.cost.scratch_bytes")
    if scratch is not None and scratch <= 0:
        fail(
            f"{path}: evolve.cost.scratch_bytes gauge is {scratch}, "
            f"expected > 0 once any cost was priced"
        )
    print(
        f"check_telemetry: {path}: cost path did {full or 0} full "
        f"recomputes, {deltas or 0} delta updates: OK"
    )


def check_batch_metrics(path: str, counters: dict, gauges: dict) -> None:
    """Batch job-scheduler invariants (docs/BATCH.md)."""
    queued = counters.get("batch.jobs.queued")
    if queued is None:
        return  # run was not a batch
    settled = (
        counters.get("batch.jobs.done", 0)
        + counters.get("batch.jobs.failed", 0)
        + counters.get("batch.jobs.interrupted", 0)
    )
    if settled > queued:
        fail(
            f"{path}: {settled} settled batch jobs exceed the "
            f"{queued} queued"
        )
    worker_jobs = sum(
        v
        for name, v in counters.items()
        if name.startswith("batch.worker") and name.endswith(".jobs")
    )
    if worker_jobs != settled:
        fail(
            f"{path}: per-worker job counters sum to {worker_jobs} but "
            f"{settled} jobs settled"
        )
    workers = gauges.get("batch.workers", 0)
    if workers < 1:
        fail(f"{path}: batch.workers gauge is {workers}, expected >= 1")
    running = gauges.get("batch.jobs.running", 0)
    if running != 0:
        fail(
            f"{path}: batch.jobs.running is {running} after the batch "
            f"finished, expected 0"
        )
    for name, v in gauges.items():
        if name.startswith("batch.worker") and name.endswith(".utilization"):
            if not 0.0 <= v <= 1.0:
                fail(f"{path}: {name} is {v}, outside [0, 1]")
    print(
        f"check_telemetry: {path}: batch settled {settled}/{queued} "
        f"queued jobs on {workers:g} worker(s): OK"
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="JSONL evolution trace to validate")
    ap.add_argument("--metrics", help="metrics JSON to validate")
    args = ap.parse_args()
    if not args.trace and not args.metrics:
        ap.error("nothing to check: pass --trace and/or --metrics")
    if args.trace:
        check_trace(args.trace)
    if args.metrics:
        check_metrics(args.metrics)


if __name__ == "__main__":
    main()
