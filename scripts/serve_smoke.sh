#!/usr/bin/env bash
# Synthesis-service smoke test (docs/SERVICE.md):
#   1. start `rcgp serve` with a persistent cache and push a mixed manifest
#      through `rcgp client` (cold: every job is synthesized),
#   2. push the same manifest again — the second pass must be >= 99% cache
#      hits and each hit must answer in under a millisecond,
#   3. push it a third time and diff the response netlists byte-for-byte
#      against pass 2 (hit-vs-hit responses are bit-identical; the cold
#      pass legitimately differs in port names, which the canonical store
#      drops),
#   4. SIGKILL the daemon, assert the store on disk still verifies (saves
#      are atomic and write-through), restart, and assert the new daemon
#      answers the whole manifest from the persisted cache,
#   5. shut down cleanly (SIGTERM) and validate the serve.*/cache.*
#      telemetry invariants with scripts/check_telemetry.py.
#
# Usage: scripts/serve_smoke.sh [path-to-rcgp-binary]
# Tunables: RCGP_SRV_GENERATIONS (per-job budget, default 5000).
set -euo pipefail

RCGP="${1:-./build/src/rcgp}"
GENS="${RCGP_SRV_GENERATIONS:-5000}"

WORKDIR="$(mktemp -d)"
SOCK="$WORKDIR/rcgp.sock"
STORE="$WORKDIR/serve.rcc"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

MANIFEST="$WORKDIR/suite.jsonl"
cat > "$MANIFEST" <<EOF
{"schema":1,"id":"fa",  "circuit":"full_adder",  "generations":$GENS,"seed":7}
{"schema":1,"id":"dec", "circuit":"decoder_2_4", "generations":$GENS,"seed":9}
{"schema":1,"id":"c17", "circuit":"c17",         "generations":$GENS,"seed":3}
{"schema":1,"id":"maj", "spec":["e8"], "spec_vars":3, "generations":$GENS,"seed":5}
EOF
JOBS=4

wait_for_socket() {
  for _ in $(seq 100); do
    test -S "$SOCK" && return 0
    sleep 0.1
  done
  echo "FAIL: daemon never bound $SOCK" >&2
  exit 1
}

start_daemon() {
  "$RCGP" serve --socket="$SOCK" --cache="$STORE" --workers=2 "$@" \
    > "$WORKDIR/daemon.out" 2>&1 &
  DAEMON_PID=$!
  wait_for_socket
}

# Summarizes a client response file: "<ok> <cached> <max-hit-seconds>".
summarize() {
  python3 - "$1" <<'PY'
import json, sys
ok = cached = 0
worst_hit = 0.0
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        if rec.get("ok"):
            ok += 1
        if rec.get("cached"):
            cached += 1
            worst_hit = max(worst_hit, rec.get("seconds", 0.0))
print(ok, cached, f"{worst_hit:.6f}")
PY
}

# Projects the netlist payloads for bit-identity diffs between passes.
netlists() {
  python3 - "$1" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if line:
            rec = json.loads(line)
            print(json.dumps({"id": rec["id"], "netlist": rec.get("netlist")},
                             sort_keys=True))
PY
}

echo "== phase 1: cold pass (daemon synthesizes every job)"
start_daemon
"$RCGP" client "$MANIFEST" --socket="$SOCK" > "$WORKDIR/pass1.jsonl"
read -r OK1 CACHED1 _ <<<"$(summarize "$WORKDIR/pass1.jsonl")"
echo "   pass 1: $OK1/$JOBS ok, $CACHED1 cached"
[ "$OK1" -eq "$JOBS" ] || { echo "FAIL: cold pass had failures" >&2; exit 1; }

echo "== phase 2: warm pass (>= 99% cache hits, each under 1 ms)"
"$RCGP" client "$MANIFEST" --socket="$SOCK" > "$WORKDIR/pass2.jsonl"
read -r OK2 CACHED2 WORST <<<"$(summarize "$WORKDIR/pass2.jsonl")"
echo "   pass 2: $OK2/$JOBS ok, $CACHED2 cached, worst hit ${WORST}s"
[ "$OK2" -eq "$JOBS" ] || { echo "FAIL: warm pass had failures" >&2; exit 1; }
# >= 99% of a 4-job manifest means all 4.
[ "$CACHED2" -eq "$JOBS" ] \
  || { echo "FAIL: warm pass hit only $CACHED2/$JOBS" >&2; exit 1; }
python3 -c "import sys; sys.exit(0 if float('$WORST') < 0.001 else 1)" \
  || { echo "FAIL: slowest cache hit took ${WORST}s (>= 1 ms)" >&2; exit 1; }

echo "== phase 3: hit-vs-hit responses are bit-identical"
"$RCGP" client "$MANIFEST" --socket="$SOCK" > "$WORKDIR/pass3.jsonl"
netlists "$WORKDIR/pass2.jsonl" > "$WORKDIR/pass2.net"
netlists "$WORKDIR/pass3.jsonl" > "$WORKDIR/pass3.net"
diff -u "$WORKDIR/pass2.net" "$WORKDIR/pass3.net" \
  || { echo "FAIL: cached netlists differ between passes" >&2; exit 1; }

echo "== phase 4: SIGKILL the daemon — the store must survive"
kill -KILL "$DAEMON_PID" 2>/dev/null || true
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
rm -f "$SOCK"
test -s "$STORE" || { echo "FAIL: no store at $STORE" >&2; exit 1; }
"$RCGP" cache verify --store="$STORE" \
  || { echo "FAIL: store corrupt after SIGKILL" >&2; exit 1; }

echo "== phase 5: restart — the persisted cache answers everything"
start_daemon --metrics-out="$WORKDIR/serve-metrics.json"
"$RCGP" client "$MANIFEST" --socket="$SOCK" > "$WORKDIR/pass4.jsonl"
read -r OK4 CACHED4 _ <<<"$(summarize "$WORKDIR/pass4.jsonl")"
echo "   pass 4: $OK4/$JOBS ok, $CACHED4 cached"
[ "$OK4" -eq "$JOBS" ] && [ "$CACHED4" -eq "$JOBS" ] \
  || { echo "FAIL: restarted daemon missed the persisted cache" >&2; exit 1; }

echo "== phase 6: clean shutdown + telemetry invariants"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "FAIL: daemon exited non-zero" >&2; exit 1; }
DAEMON_PID=""
cat "$WORKDIR/daemon.out"
python3 scripts/check_telemetry.py --metrics "$WORKDIR/serve-metrics.json"

echo "PASS: serve smoke test"
