#!/usr/bin/env bash
# Builds everything, runs the full test suite, every table/ablation bench,
# and all examples; tees the canonical outputs the repo documents
# (test_output.txt, bench_output.txt) into the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ ! -d "$b" ]; then
      echo "==== $(basename "$b") ===="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "==== examples ===="
for e in quickstart decoder_walkthrough adder_flow file_flow \
         large_circuit physical_report; do
  echo "---- $e ----"
  ./build/examples/$e || true
done
