#!/usr/bin/env bash
# Island-model fleet smoke test (docs/ISLANDS.md):
#   1. run a 2-island ring fleet in-process and keep its netlist as the
#      placement-independent reference (plus island.* telemetry),
#   2. run the SAME fleet with both island slices farmed out to two
#      `rcgp serve` daemons over TCP (ephemeral ports, shared
#      --checkpoint-dir) — the result must be byte-identical to step 1,
#   3. start a fresh distributed run, SIGKILL one worker daemon mid-epoch
#      (one island dies), restart it, `--resume` the fleet, and assert the
#      resumed result is still byte-identical to the in-process reference
#      (idempotent epoch replay; a run that finishes before the kill lands
#      degrades into a second placement-identity check),
#   4. validate the island.* telemetry invariants with
#      scripts/check_telemetry.py.
#
# Usage: scripts/island_smoke.sh [path-to-rcgp-binary]
# Tunables: RCGP_ISL_GENERATIONS (per-island budget, default 300000 — big
#           enough that the SIGKILL in phase 3 lands mid-run),
#           RCGP_ISL_CIRCUIT (default full_adder), RCGP_ISL_SEED (default 7).
set -euo pipefail

RCGP="${1:-./build/src/rcgp}"
GENS="${RCGP_ISL_GENERATIONS:-300000}"
CIRCUIT="${RCGP_ISL_CIRCUIT:-full_adder}"
SEED="${RCGP_ISL_SEED:-7}"
INTERVAL=$((GENS / 8))

WORKDIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -KILL "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

FLEET_FLAGS=(--islands=2 --topology=ring "--migration-interval=$INTERVAL"
             -g "$GENS" -s "$SEED")

# Starts a worker daemon on an ephemeral TCP port with its evolve
# checkpoints in $1; echoes "pid address".
start_worker() {
  local state="$1" out="$2"
  "$RCGP" serve --listen=127.0.0.1:0 --checkpoint-dir="$state" --workers=1 \
    > "$out" 2>&1 &
  local pid=$!
  local addr=""
  for _ in $(seq 100); do
    addr="$(sed -n 's/^serve: listening on \([^ ]*\).*/\1/p' "$out")"
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "FAIL: worker daemon never reported its address" >&2
    cat "$out" >&2
    exit 1
  fi
  echo "$pid $addr"
}

echo "== phase 1: in-process 2-island fleet (the placement reference)"
"$RCGP" synth "$CIRCUIT" "${FLEET_FLAGS[@]}" \
  --island-state="$WORKDIR/state-local" \
  -o "$WORKDIR/local.rqfp" --metrics-out="$WORKDIR/island-metrics.json"
test -s "$WORKDIR/local.rqfp" \
  || { echo "FAIL: in-process fleet wrote no netlist" >&2; exit 1; }

echo "== phase 2: same fleet on two TCP worker daemons"
STATE2="$WORKDIR/state-remote"
mkdir -p "$STATE2"
read -r PID_A ADDR_A <<<"$(start_worker "$STATE2" "$WORKDIR/workerA.out")"
read -r PID_B ADDR_B <<<"$(start_worker "$STATE2" "$WORKDIR/workerB.out")"
PIDS+=("$PID_A" "$PID_B")
echo "   workers: $ADDR_A $ADDR_B"
"$RCGP" synth "$CIRCUIT" "${FLEET_FLAGS[@]}" \
  --island-state="$STATE2" --island-endpoints="$ADDR_A,$ADDR_B" \
  -o "$WORKDIR/remote.rqfp"
diff "$WORKDIR/local.rqfp" "$WORKDIR/remote.rqfp" \
  || { echo "FAIL: distributed placement changed the result" >&2; exit 1; }
echo "   distributed result is byte-identical to the in-process run"
kill -TERM "$PID_A" "$PID_B" 2>/dev/null || true
wait "$PID_A" "$PID_B" 2>/dev/null || true
PIDS=()

echo "== phase 3: SIGKILL one island mid-run, restart, --resume"
STATE3="$WORKDIR/state-kill"
mkdir -p "$STATE3"
read -r PID_A ADDR_A <<<"$(start_worker "$STATE3" "$WORKDIR/killA.out")"
read -r PID_B ADDR_B <<<"$(start_worker "$STATE3" "$WORKDIR/killB.out")"
PIDS+=("$PID_A" "$PID_B")
"$RCGP" synth "$CIRCUIT" "${FLEET_FLAGS[@]}" \
  --island-state="$STATE3" --island-endpoints="$ADDR_A,$ADDR_B" \
  -o "$WORKDIR/killed.rqfp" > "$WORKDIR/killed.out" 2>&1 &
SYNTH_PID=$!
sleep 0.3
kill -KILL "$PID_B" 2>/dev/null || true
set +e
wait "$SYNTH_PID"
SYNTH_RC=$?
set -e
wait "$PID_B" 2>/dev/null || true
PIDS=("$PID_A")
if [ "$SYNTH_RC" -eq 0 ]; then
  # The fleet finished before the kill landed — still a placement check.
  echo "   fleet finished before the kill; checking identity directly"
  cp "$WORKDIR/killed.rqfp" "$WORKDIR/resumed.rqfp"
else
  echo "   coordinator failed as expected (rc $SYNTH_RC); resuming"
  read -r PID_B ADDR_B <<<"$(start_worker "$STATE3" "$WORKDIR/killB2.out")"
  PIDS+=("$PID_B")
  "$RCGP" synth "$CIRCUIT" "${FLEET_FLAGS[@]}" --resume \
    --island-state="$STATE3" --island-endpoints="$ADDR_A,$ADDR_B" \
    -o "$WORKDIR/resumed.rqfp"
fi
diff "$WORKDIR/local.rqfp" "$WORKDIR/resumed.rqfp" \
  || { echo "FAIL: resumed fleet diverged from the reference" >&2; exit 1; }
echo "   resumed result is byte-identical to the in-process run"
kill -TERM "$PID_A" "$PID_B" 2>/dev/null || true
wait "$PID_A" "$PID_B" 2>/dev/null || true
PIDS=()

echo "== phase 4: island.* telemetry invariants"
python3 scripts/check_telemetry.py --metrics "$WORKDIR/island-metrics.json"

echo "PASS: island smoke test"
