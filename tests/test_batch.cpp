#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "batch/manifest.hpp"
#include "batch/results.hpp"
#include "batch/runner.hpp"
#include "io/parse_error.hpp"
#include "obs/metrics.hpp"
#include "robust/integrity.hpp"
#include "robust/stop.hpp"
#include "rqfp/gate.hpp"
#include "rqfp/netlist.hpp"

namespace rcgp::batch {
namespace {

std::string temp_dir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("rcgp_batch_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// ---------- manifest ----------

void expect_parse_error(const std::string& text, const std::string& fragment,
                        std::size_t line) {
  try {
    parse_manifest_string(text);
    FAIL() << "expected io::ParseError with: " << fragment;
  } catch (const io::ParseError& e) {
    const std::string what = e.what();
    const std::string prefix =
        "manifest:<string>:" + std::to_string(line) + ":";
    EXPECT_NE(what.find(prefix), std::string::npos) << what;
    EXPECT_NE(what.find(fragment), std::string::npos) << what;
  }
}

TEST(Manifest, ParsesJobsWithOverrides) {
  const std::string text =
      "# batch of two\n"
      "\n"
      "{\"id\":\"j1\",\"circuit\":\"full_adder\"}\n"
      "{\"id\":\"j2\", \"circuit\": \"decoder_2_4\", \"algorithm\": "
      "\"anneal\", \"generations\": 500, \"seed\": 9, \"restarts\": 3, "
      "\"deadline_seconds\": 1.5, \"max_evaluations\": 1000, "
      "\"retries\": 0}\n";
  const Manifest m = parse_manifest_string(text);
  ASSERT_EQ(m.jobs.size(), 2u);
  EXPECT_EQ(m.jobs[0].id, "j1");
  EXPECT_EQ(m.jobs[0].circuit, "full_adder");
  EXPECT_EQ(m.jobs[0].algorithm, core::Algorithm::kEvolve);
  EXPECT_EQ(m.jobs[0].generations, 0u);
  EXPECT_EQ(m.jobs[0].retries, -1);
  EXPECT_EQ(m.jobs[0].line, 3u);
  EXPECT_EQ(m.jobs[1].algorithm, core::Algorithm::kAnneal);
  EXPECT_EQ(m.jobs[1].generations, 500u);
  EXPECT_EQ(m.jobs[1].seed, 9u);
  EXPECT_EQ(m.jobs[1].restarts, 3u);
  EXPECT_DOUBLE_EQ(m.jobs[1].deadline_seconds, 1.5);
  EXPECT_EQ(m.jobs[1].max_evaluations, 1000u);
  EXPECT_EQ(m.jobs[1].retries, 0);
  EXPECT_EQ(m.jobs[1].line, 4u);
}

TEST(Manifest, RejectsMalformedLinesWithContext) {
  expect_parse_error("{\"id\":\"a\",\"circuit\":\"c\"\n", "malformed JSON",
                     1);
  expect_parse_error("{\"id\":\"a\",\"circuit\":\"c\",\"color\":\"red\"}\n",
                     "unknown key \"color\"", 1);
  expect_parse_error(
      "{\"id\":\"a\",\"circuit\":\"c\"}\n"
      "{\"id\":\"a\",\"circuit\":\"d\"}\n",
      "duplicate job id \"a\"", 2);
  expect_parse_error(
      "{\"id\":\"a\",\"circuit\":\"c\",\"limits\":{\"g\":1}}\n",
      "unknown key \"limits\"", 1);
  expect_parse_error(
      "{\"id\":\"a\",\"circuit\":\"c\",\"generations\":{\"g\":1}}\n",
      "must be a number", 1);
  expect_parse_error(
      "{\"id\":\"a\",\"circuit\":\"c\",\"schema\":99}\n",
      "unsupported schema version", 1);
  expect_parse_error(
      "{\"id\":\"a\",\"circuit\":\"c\",\"id\":\"b\"}\n",
      "duplicate key \"id\"", 1);
  expect_parse_error(
      "{\"id\":\"a\",\"circuit\":\"c\",\"spec\":[\"e8\"],\"spec_vars\":3}\n",
      "mutually exclusive", 1);
  expect_parse_error("{\"id\":\"a\",\"spec\":[\"e8\"]}\n",
                     "requires \"spec_vars\"", 1);
  expect_parse_error("{\"circuit\":\"c\"}\n", "missing required key \"id\"",
                     1);
  expect_parse_error("{\"id\":\"a\"}\n", "missing required key \"circuit\"",
                     1);
  expect_parse_error(
      "{\"id\":\"a\",\"circuit\":\"c\",\"algorithm\":\"magic\"}\n",
      "unknown optimizer algorithm", 1);
  expect_parse_error(
      "{\"id\":\"a\",\"circuit\":\"c\",\"generations\":\"many\"}\n",
      "must be a number", 1);
  expect_parse_error(
      "{\"id\":\"a\",\"circuit\":\"c\",\"generations\":-5}\n",
      "non-negative integer", 1);
  expect_parse_error("{\"id\":\"a/b\",\"circuit\":\"c\"}\n",
                     "filesystem-safe", 1);
  expect_parse_error("# only comments\n\n", "manifest contains no jobs", 2);
}

TEST(Manifest, MissingFileReportsLineZero) {
  try {
    parse_manifest_file("/nonexistent/batch.jsonl");
    FAIL() << "expected io::ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open file"),
              std::string::npos);
    EXPECT_EQ(e.line(), 0u);
  }
}

// ---------- results store ----------

TEST(Results, RecordRoundTrips) {
  JobRecord r;
  r.id = "job-1";
  r.ok = true;
  r.final_record = true;
  r.stop_reason = "completed";
  r.verified = true;
  r.n_r = 7;
  r.n_b = 12;
  r.jjs = 216;
  r.n_d = 4;
  r.n_g = 1;
  r.netlist_path = "out/job-1.rqfp";
  r.attempts = 2;
  r.worker = 3;
  r.seconds = 0.125;
  const auto back = parse_record(to_json(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, r.id);
  EXPECT_TRUE(back->ok);
  EXPECT_TRUE(back->final_record);
  EXPECT_EQ(back->stop_reason, "completed");
  EXPECT_TRUE(back->verified);
  EXPECT_EQ(back->n_r, 7u);
  EXPECT_EQ(back->n_b, 12u);
  EXPECT_EQ(back->jjs, 216u);
  EXPECT_EQ(back->n_d, 4u);
  EXPECT_EQ(back->n_g, 1u);
  EXPECT_EQ(back->netlist_path, "out/job-1.rqfp");
  EXPECT_EQ(back->attempts, 2u);
  EXPECT_EQ(back->worker, 3u);
  EXPECT_DOUBLE_EQ(back->seconds, 0.125);
}

TEST(Results, FailureRecordKeepsError) {
  JobRecord r;
  r.id = "bad";
  r.ok = false;
  r.final_record = true;
  r.stop_reason = "error";
  r.error = "integrity: \"quoted\" detail";
  const auto back = parse_record(to_json(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->ok);
  EXPECT_EQ(back->error, "integrity: \"quoted\" detail");
}

TEST(Results, LoadSkipsTornTail) {
  const std::string dir = temp_dir("torn");
  const std::string path = dir + "/results.jsonl";
  {
    ResultsStore store(path);
    JobRecord a;
    a.id = "a";
    a.ok = true;
    store.append(a);
    JobRecord b;
    b.id = "b";
    store.append(b);
  }
  {
    // Simulate a crash mid-append: a torn, unterminated final line.
    std::ofstream out(path, std::ios::app);
    out << "{\"id\":\"c\",\"ok\":tr";
  }
  const auto records = ResultsStore::load(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, "a");
  EXPECT_TRUE(records[0].ok);
  EXPECT_EQ(records[1].id, "b");
  EXPECT_FALSE(records[1].ok);
}

// ---------- runner (injected executors) ----------

rqfp::Netlist tiny_netlist() {
  rqfp::Netlist net(2);
  const auto g = net.add_gate({1, 2, rqfp::kConstPort},
                              rqfp::InvConfig::from_rows(5, 6, 4));
  net.add_po(net.port_of(g, 2), "f");
  return net;
}

JobExecution ok_execution() {
  JobExecution exec;
  exec.netlist = tiny_netlist();
  exec.cost.n_r = 1;
  exec.cost.jjs = 24;
  exec.verified = true;
  return exec;
}

/// Sleeps in small slices while honoring the batch stop token, like a real
/// optimizer loop polling between evaluations.
JobExecution slow_ok_execution(const JobContext& ctx, int millis) {
  for (int waited = 0; waited < millis; waited += 5) {
    if (ctx.stop != nullptr && ctx.stop->stop_requested()) {
      JobExecution exec;
      exec.stop_reason = robust::StopReason::kStopRequested;
      return exec;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return ok_execution();
}

TEST(Runner, RetriesIntegrityFailuresThenSucceeds) {
  obs::registry().reset_values();
  const Manifest m = parse_manifest_string(
      "{\"id\":\"a\",\"circuit\":\"x\"}\n"
      "{\"id\":\"b\",\"circuit\":\"x\"}\n");
  std::mutex mu;
  std::map<std::string, unsigned> attempts_seen;
  BatchOptions opt;
  opt.out_dir = temp_dir("retry");
  opt.default_retries = 1;
  opt.executor = [&](const Job& job, const JobContext& ctx) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      attempts_seen[job.id] = ctx.attempt;
    }
    if (ctx.attempt == 1) {
      throw robust::IntegrityError(robust::IntegrityError::Kind::kInvariant,
                                   "test", "injected fault");
    }
    return ok_execution();
  };
  const BatchSummary s = run_batch(m, opt);
  EXPECT_EQ(s.done, 2u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_TRUE(s.all_ok());
  ASSERT_EQ(s.records.size(), 2u);
  for (const auto& rec : s.records) {
    EXPECT_TRUE(rec.ok);
    EXPECT_EQ(rec.attempts, 2u);
    EXPECT_TRUE(std::filesystem::exists(rec.netlist_path));
  }
  EXPECT_EQ(attempts_seen["a"], 2u);
  EXPECT_EQ(attempts_seen["b"], 2u);
  EXPECT_EQ(obs::registry().counter("batch.jobs.retried").value(), 2u);
  EXPECT_EQ(obs::registry().counter("batch.jobs.done").value(), 2u);
  EXPECT_EQ(obs::registry().counter("batch.jobs.queued").value(), 2u);
}

TEST(Runner, RetryBudgetExhaustionFailsTheJob) {
  const Manifest m =
      parse_manifest_string("{\"id\":\"a\",\"circuit\":\"x\"}\n");
  BatchOptions opt;
  opt.out_dir = temp_dir("exhaust");
  opt.default_retries = 2;
  opt.executor = [](const Job&, const JobContext&) -> JobExecution {
    throw robust::IntegrityError(robust::IntegrityError::Kind::kFunctional,
                                 "test", "always broken");
  };
  const BatchSummary s = run_batch(m, opt);
  EXPECT_EQ(s.done, 0u);
  EXPECT_EQ(s.failed, 1u);
  ASSERT_EQ(s.records.size(), 1u);
  EXPECT_FALSE(s.records[0].ok);
  EXPECT_TRUE(s.records[0].final_record);
  EXPECT_EQ(s.records[0].attempts, 3u); // 1 try + 2 retries
  EXPECT_EQ(s.records[0].stop_reason, "error");
  EXPECT_NE(s.records[0].error.find("always broken"), std::string::npos);
}

TEST(Runner, ManifestRetriesOverrideTheBatchDefault) {
  const Manifest m = parse_manifest_string(
      "{\"id\":\"a\",\"circuit\":\"x\",\"retries\":0}\n");
  BatchOptions opt;
  opt.out_dir = temp_dir("override");
  opt.default_retries = 5;
  opt.executor = [](const Job&, const JobContext&) -> JobExecution {
    throw robust::IntegrityError(robust::IntegrityError::Kind::kChecksum,
                                 "test", "broken");
  };
  const BatchSummary s = run_batch(m, opt);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.records[0].attempts, 1u); // retries:0 wins over default 5
}

TEST(Runner, OrdinaryExceptionFailsWithoutRetry) {
  const Manifest m =
      parse_manifest_string("{\"id\":\"a\",\"circuit\":\"x\"}\n");
  BatchOptions opt;
  opt.out_dir = temp_dir("throw");
  opt.default_retries = 3;
  opt.executor = [](const Job&, const JobContext&) -> JobExecution {
    throw std::runtime_error("no such circuit");
  };
  const BatchSummary s = run_batch(m, opt);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.records[0].attempts, 1u);
  EXPECT_NE(s.records[0].error.find("no such circuit"), std::string::npos);
}

TEST(Runner, UnverifiedResultIsAFinalFailure) {
  const Manifest m =
      parse_manifest_string("{\"id\":\"a\",\"circuit\":\"x\"}\n");
  BatchOptions opt;
  opt.out_dir = temp_dir("unverified");
  opt.executor = [](const Job&, const JobContext&) {
    JobExecution exec = ok_execution();
    exec.verified = false;
    return exec;
  };
  const BatchSummary s = run_batch(m, opt);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_TRUE(s.records[0].final_record);
  EXPECT_FALSE(s.records[0].ok);
  EXPECT_NE(s.records[0].error.find("verification"), std::string::npos);
  EXPECT_TRUE(s.records[0].netlist_path.empty());
}

TEST(Runner, PreTrippedStopLeavesEveryJobUnrun) {
  const Manifest m = parse_manifest_string(
      "{\"id\":\"a\",\"circuit\":\"x\"}\n"
      "{\"id\":\"b\",\"circuit\":\"x\"}\n"
      "{\"id\":\"c\",\"circuit\":\"x\"}\n");
  robust::StopToken stop;
  stop.request_stop();
  BatchOptions opt;
  opt.out_dir = temp_dir("prestopped");
  opt.workers = 1;
  opt.budget.stop = &stop;
  opt.executor = [](const Job&, const JobContext& ctx) {
    return slow_ok_execution(ctx, 50);
  };
  const BatchSummary s = run_batch(m, opt);
  EXPECT_EQ(s.done, 0u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.unrun, 3u);
  EXPECT_EQ(s.stop_reason, robust::StopReason::kStopRequested);
}

TEST(Runner, BatchDeadlineStopsClaimingJobs) {
  const Manifest m = parse_manifest_string(
      "{\"id\":\"a\",\"circuit\":\"x\"}\n"
      "{\"id\":\"b\",\"circuit\":\"x\"}\n"
      "{\"id\":\"c\",\"circuit\":\"x\"}\n"
      "{\"id\":\"d\",\"circuit\":\"x\"}\n");
  BatchOptions opt;
  opt.out_dir = temp_dir("deadline");
  opt.workers = 1;
  opt.budget.deadline_seconds = 0.08;
  opt.executor = [](const Job&, const JobContext& ctx) {
    return slow_ok_execution(ctx, 30);
  };
  const BatchSummary s = run_batch(m, opt);
  EXPECT_EQ(s.stop_reason, robust::StopReason::kTimeLimit);
  EXPECT_GE(s.unrun, 1u);
  EXPECT_EQ(s.done + s.failed + s.unrun, s.total);
}

TEST(Runner, KillMidBatchThenResumeRunsOnlyUnfinishedJobs) {
  const Manifest m = parse_manifest_string(
      "{\"id\":\"j1\",\"circuit\":\"x\"}\n"
      "{\"id\":\"j2\",\"circuit\":\"x\"}\n"
      "{\"id\":\"j3\",\"circuit\":\"x\"}\n");
  const std::string dir = temp_dir("killresume");

  // First run: the batch is "killed" (stop token tripped) right after the
  // first record lands, so j2 is interrupted mid-run and j3 never starts.
  robust::StopToken stop;
  BatchOptions first;
  first.out_dir = dir;
  first.workers = 1;
  first.budget.stop = &stop;
  first.executor = [](const Job&, const JobContext& ctx) {
    return slow_ok_execution(ctx, 40);
  };
  first.on_record = [&stop](const JobRecord&) { stop.request_stop(); };
  const BatchSummary s1 = run_batch(m, first);
  EXPECT_EQ(s1.done, 1u);
  EXPECT_EQ(s1.unrun, 2u);
  EXPECT_EQ(s1.stop_reason, robust::StopReason::kStopRequested);

  // Resume: only the unfinished jobs run; the finished one is skipped.
  std::mutex mu;
  std::set<std::string> ran;
  BatchOptions second;
  second.out_dir = dir;
  second.workers = 1;
  second.resume = true;
  second.executor = [&](const Job& job, const JobContext&) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      ran.insert(job.id);
    }
    return ok_execution();
  };
  const BatchSummary s2 = run_batch(m, second);
  EXPECT_EQ(s2.done, 3u);
  EXPECT_EQ(s2.skipped, 1u);
  EXPECT_EQ(s2.unrun, 0u);
  EXPECT_TRUE(s2.all_ok());
  EXPECT_EQ(ran, (std::set<std::string>{"j2", "j3"}));
  ASSERT_EQ(s2.records.size(), 3u);
  EXPECT_EQ(s2.records[0].id, "j1"); // manifest order preserved
  EXPECT_EQ(s2.records[1].id, "j2");
  EXPECT_EQ(s2.records[2].id, "j3");
}

// ---------- runner (real synthesis flow) ----------

const char* kRealManifest =
    "{\"id\":\"fa\",\"circuit\":\"full_adder\",\"generations\":400,"
    "\"seed\":7}\n"
    "{\"id\":\"dec\",\"circuit\":\"decoder_2_4\",\"generations\":400,"
    "\"seed\":9}\n"
    "{\"id\":\"gc\",\"circuit\":\"graycode4\",\"generations\":300,"
    "\"seed\":11,\"algorithm\":\"anneal\"}\n";

void expect_same_results(const BatchSummary& a, const BatchSummary& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const JobRecord& ra = a.records[i];
    const JobRecord& rb = b.records[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.ok, rb.ok);
    EXPECT_EQ(ra.stop_reason, rb.stop_reason);
    EXPECT_EQ(ra.verified, rb.verified);
    EXPECT_EQ(ra.n_r, rb.n_r) << ra.id;
    EXPECT_EQ(ra.n_b, rb.n_b) << ra.id;
    EXPECT_EQ(ra.jjs, rb.jjs) << ra.id;
    EXPECT_EQ(ra.n_d, rb.n_d) << ra.id;
    EXPECT_EQ(ra.n_g, rb.n_g) << ra.id;
    // Netlist files must be byte-identical, not just same-cost.
    EXPECT_EQ(read_file(ra.netlist_path), read_file(rb.netlist_path))
        << ra.id;
  }
}

TEST(Runner, ResultsAreBitIdenticalForAnyWorkerCount) {
  const Manifest m = parse_manifest_string(kRealManifest);
  BatchOptions one;
  one.out_dir = temp_dir("workers1");
  one.workers = 1;
  const BatchSummary s1 = run_batch(m, one);
  ASSERT_EQ(s1.done, 3u) << "baseline batch must fully succeed";

  BatchOptions three;
  three.out_dir = temp_dir("workers3");
  three.workers = 3;
  const BatchSummary s3 = run_batch(m, three);
  ASSERT_EQ(s3.done, 3u);
  expect_same_results(s1, s3);
}

TEST(Runner, KilledRealRunResumesBitIdentically) {
  // One job big enough (~2 s) that an 80 ms batch deadline reliably
  // interrupts it mid-evolve, after at least one checkpoint write.
  const Manifest m = parse_manifest_string(
      "{\"id\":\"dec\",\"circuit\":\"decoder_2_4\",\"generations\":60000,"
      "\"seed\":21}\n");

  BatchOptions reference;
  reference.out_dir = temp_dir("ref");
  reference.checkpoint_interval = 500;
  const BatchSummary sr = run_batch(m, reference);
  ASSERT_EQ(sr.done, 1u);

  BatchOptions killed;
  killed.out_dir = temp_dir("killed");
  killed.checkpoint_interval = 500;
  killed.budget.deadline_seconds = 0.08;
  const BatchSummary sk = run_batch(m, killed);
  ASSERT_EQ(sk.done, 0u);
  ASSERT_EQ(sk.unrun, 1u);
  EXPECT_EQ(sk.stop_reason, robust::StopReason::kTimeLimit);

  BatchOptions resumed;
  resumed.out_dir = killed.out_dir;
  resumed.checkpoint_interval = 500;
  resumed.resume = true;
  const BatchSummary s2 = run_batch(m, resumed);
  ASSERT_EQ(s2.done, 1u);
  expect_same_results(sr, s2);
}

TEST(Runner, ResumeSkipsFinalFailuresToo) {
  const Manifest m = parse_manifest_string(
      "{\"id\":\"a\",\"circuit\":\"x\"}\n"
      "{\"id\":\"b\",\"circuit\":\"x\"}\n");
  const std::string dir = temp_dir("skipfail");
  BatchOptions first;
  first.out_dir = dir;
  first.default_retries = 0;
  first.executor = [](const Job& job, const JobContext&) -> JobExecution {
    if (job.id == "a") {
      throw std::runtime_error("permanent failure");
    }
    return ok_execution();
  };
  const BatchSummary s1 = run_batch(m, first);
  EXPECT_EQ(s1.done, 1u);
  EXPECT_EQ(s1.failed, 1u);

  BatchOptions second;
  second.out_dir = dir;
  second.resume = true;
  second.executor = [](const Job&, const JobContext&) -> JobExecution {
    ADD_FAILURE() << "resume must not re-run settled jobs";
    return ok_execution();
  };
  const BatchSummary s2 = run_batch(m, second);
  EXPECT_EQ(s2.skipped, 2u); // final failures are settled, not retried
  EXPECT_EQ(s2.done, 1u);
  EXPECT_EQ(s2.failed, 1u);
}

TEST(Runner, WorkerMetricsAccountForEveryRecord) {
  obs::registry().reset_values();
  const Manifest m = parse_manifest_string(kRealManifest);
  BatchOptions opt;
  opt.out_dir = temp_dir("metrics");
  opt.workers = 2;
  opt.executor = [](const Job&, const JobContext&) { return ok_execution(); };
  const BatchSummary s = run_batch(m, opt);
  EXPECT_EQ(s.done, 3u);
  auto& reg = obs::registry();
  const std::uint64_t finished = reg.counter("batch.jobs.done").value() +
                                 reg.counter("batch.jobs.failed").value() +
                                 reg.counter("batch.jobs.interrupted").value();
  EXPECT_EQ(finished, 3u);
  EXPECT_EQ(reg.counter("batch.jobs.queued").value(), 3u);
  std::uint64_t per_worker = 0;
  for (unsigned w = 0; w < 2; ++w) {
    per_worker +=
        reg.counter("batch.worker" + std::to_string(w) + ".jobs").value();
  }
  EXPECT_EQ(per_worker, finished);
  EXPECT_GE(reg.gauge("batch.workers").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("batch.jobs.running").value(), 0.0);
}

} // namespace
} // namespace rcgp::batch
