// Concurrency hammer for the telemetry layer: Registry counters, the
// TraceSink sequence numbers, and the span profiler's per-thread buffers
// under simultaneous multi-thread load. Runs under TSan in CI alongside
// the pool/batch suites (.github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace rcgp::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kPerThread = 2000;

TEST(ObsConcurrent, CountersSumExactlyAcrossThreads) {
  Counter& shared = registry().counter("test.obs.mt.shared");
  Gauge& accum = registry().gauge("test.obs.mt.accum");
  const double bounds[] = {0.25, 0.5, 0.75};
  Histogram& hist = registry().histogram("test.obs.mt.hist", bounds);
  shared.reset();
  accum.reset();
  hist.reset();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Registration races with observation: half the threads look the
      // counter up fresh instead of using the captured reference.
      Counter& mine = t % 2 == 0
                          ? shared
                          : registry().counter("test.obs.mt.shared");
      for (int i = 0; i < kPerThread; ++i) {
        mine.inc();
        accum.add(1.0);
        hist.observe(static_cast<double>(i % 100) / 100.0);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(shared.value(), expected);
  EXPECT_DOUBLE_EQ(accum.value(), static_cast<double>(expected));
  EXPECT_EQ(hist.count(), expected);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < hist.num_buckets(); ++i) {
    bucket_total += hist.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, expected);
}

TEST(ObsConcurrent, TraceSinkSequencesAreGapFree) {
  auto sink = TraceSink::memory();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sink->event("hammer").field("thread", t).field("i", i);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(sink->lines_written(), expected);

  std::istringstream in(sink->buffer());
  std::string line;
  std::vector<std::uint64_t> seqs;
  seqs.reserve(expected);
  while (std::getline(in, line)) {
    ASSERT_TRUE(json::validate(line)) << line;
    const auto seq = json::number_field(line, "seq");
    ASSERT_TRUE(seq.has_value());
    seqs.push_back(static_cast<std::uint64_t>(*seq));
  }
  ASSERT_EQ(seqs.size(), expected);
  // Every sequence number 0..N-1 exactly once: writes interleave across
  // threads, but the sink never skips or duplicates a seq.
  std::sort(seqs.begin(), seqs.end());
  for (std::uint64_t i = 0; i < expected; ++i) {
    ASSERT_EQ(seqs[i], i);
  }
}

TEST(ObsConcurrent, SpanBuffersRecordEveryThreadWithUniqueIds) {
  reset_profile();
  set_profiling_enabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_thread_name("hammer-" + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i) {
        Span outer("mt-outer");
        Span inner("mt-inner");
        inner.arg("i", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  set_profiling_enabled(false);

  const auto spans = profile_spans();
  const std::uint64_t expected =
      2ull * static_cast<std::uint64_t>(kThreads) * kPerThread;
  ASSERT_EQ(spans.size() + profile_dropped_spans(), expected);
  EXPECT_EQ(profile_dropped_spans(), 0u);

  std::set<std::uint64_t> ids;
  std::set<std::uint32_t> tids;
  for (const auto& s : spans) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id " << s.id;
    tids.insert(s.tid);
    if (s.name == "mt-inner") {
      // Nesting is per-thread: the parent must exist and be on this tid.
      EXPECT_NE(s.parent, 0u);
    }
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));

  // The export is structurally valid JSON even for a large profile.
  EXPECT_TRUE(json::validate(chrome_trace_json()));
  reset_profile();
}

} // namespace
} // namespace rcgp::obs
