#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "core/optimizer.hpp"
#include "rqfp/simd.hpp"
#include "util/rng.hpp"

// Determinism contract of λ-parallel offspring evaluation
// (docs/PARALLELISM.md): because offspring k of generation g draws from
// the counter-based stream Rng::stream(seed, g, k) and selection scans
// offspring in index order, an evolve run is bit-identical for EVERY
// thread count — including through a checkpoint/resume cycle that
// changes the thread count mid-run.

namespace rcgp::core {
namespace {

rqfp::Netlist init_netlist(const std::string& name) {
  const auto b = benchmarks::get(name);
  FlowOptions opt;
  opt.run_cgp = false;
  return synthesize(b.spec, opt).initial;
}

EvolveParams small_params(std::uint64_t seed, unsigned threads) {
  EvolveParams p;
  p.generations = 400;
  p.lambda = 4;
  p.seed = seed;
  p.threads = threads;
  return p;
}

OptimizeResult run_evolve(const rqfp::Netlist& initial,
                          std::span<const tt::TruthTable> spec,
                          const EvolveParams& p,
                          const RunLimits& limits = {}) {
  OptimizerOptions oo;
  oo.algorithm = Algorithm::kEvolve;
  oo.evolve = p;
  oo.limits = limits;
  return Optimizer(oo).run(initial, spec);
}

void expect_mix_eq(const MutationMix& a, const MutationMix& b,
                   const std::string& what) {
  EXPECT_EQ(a.mutations, b.mutations) << what;
  EXPECT_EQ(a.genes_changed, b.genes_changed) << what;
  EXPECT_EQ(a.swaps, b.swaps) << what;
  EXPECT_EQ(a.direct_assigns, b.direct_assigns) << what;
  EXPECT_EQ(a.config_flips, b.config_flips) << what;
  EXPECT_EQ(a.po_moves, b.po_moves) << what;
  EXPECT_EQ(a.skipped_infeasible, b.skipped_infeasible) << what;
}

// Everything except wall-clock `seconds` must match bit for bit.
void expect_bit_identical(const EvolveResult& a, const EvolveResult& b,
                          const std::string& what) {
  EXPECT_EQ(a.best, b.best) << what;
  EXPECT_EQ(a.best_fitness.success_rate, b.best_fitness.success_rate) << what;
  EXPECT_EQ(a.best_fitness.n_r, b.best_fitness.n_r) << what;
  EXPECT_EQ(a.best_fitness.n_g, b.best_fitness.n_g) << what;
  EXPECT_EQ(a.best_fitness.n_b, b.best_fitness.n_b) << what;
  EXPECT_EQ(a.generations_run, b.generations_run) << what;
  EXPECT_EQ(a.evaluations, b.evaluations) << what;
  EXPECT_EQ(a.improvements, b.improvements) << what;
  EXPECT_EQ(a.stop_reason, b.stop_reason) << what;
  expect_mix_eq(a.mutations_attempted, b.mutations_attempted, what);
  expect_mix_eq(a.mutations_accepted, b.mutations_accepted, what);
}

TEST(Determinism, RngStreamIsAPureFunctionOfItsCounters) {
  util::Rng a = util::Rng::stream(42, 7, 3);
  util::Rng b = util::Rng::stream(42, 7, 3);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  // Neighbouring streams must be decorrelated, not merely distinct.
  util::Rng k0 = util::Rng::stream(42, 7, 0);
  util::Rng k1 = util::Rng::stream(42, 7, 1);
  util::Rng g1 = util::Rng::stream(42, 8, 0);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    const auto x = k0.next();
    equal += static_cast<int>(x == k1.next());
    equal += static_cast<int>(x == g1.next());
  }
  EXPECT_EQ(equal, 0);
}

TEST(Determinism, ThreadCountDoesNotChangeEvolveResult) {
  const auto initial = init_netlist("graycode4");
  const auto b = benchmarks::get("graycode4");
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const auto r1 = run_evolve(initial, b.spec, small_params(seed, 1));
    const auto r2 = run_evolve(initial, b.spec, small_params(seed, 2));
    const auto r8 = run_evolve(initial, b.spec, small_params(seed, 8));
    const std::string what = "seed " + std::to_string(seed);
    expect_bit_identical(r1.evolve, r2.evolve, what + ", 1 vs 2 threads");
    expect_bit_identical(r1.evolve, r8.evolve, what + ", 1 vs 8 threads");
    // The facade-level summary fields must agree too.
    EXPECT_EQ(r1.best, r8.best) << what;
    EXPECT_EQ(r1.evaluations, r8.evaluations) << what;
    EXPECT_EQ(r1.stop_reason, r8.stop_reason) << what;
    // And the search must still have done real work on a real problem.
    EXPECT_TRUE(cec::sim_check(r1.best, b.spec).all_match) << what;
  }
}

TEST(Determinism, DefaultThreadCountMatchesExplicitSingleThread) {
  // threads = 0 resolves to hardware concurrency; whatever that resolves
  // to on this machine, the result must equal the threads = 1 run.
  const auto initial = init_netlist("decoder_2_4");
  const auto b = benchmarks::get("decoder_2_4");
  const auto pinned = run_evolve(initial, b.spec, small_params(11, 1));
  const auto automatic = run_evolve(initial, b.spec, small_params(11, 0));
  expect_bit_identical(pinned.evolve, automatic.evolve, "threads 1 vs auto");
}

TEST(Determinism, MultistartIsThreadCountInvariant) {
  const auto initial = init_netlist("full_adder");
  const auto b = benchmarks::get("full_adder");
  OptimizerOptions oo;
  oo.algorithm = Algorithm::kMultistart;
  oo.restarts = 3;
  oo.evolve = small_params(9, 1);
  oo.evolve.generations = 300;
  const auto r1 = Optimizer(oo).run(initial, b.spec);
  oo.evolve.threads = 8;
  const auto r8 = Optimizer(oo).run(initial, b.spec);
  expect_bit_identical(r1.evolve, r8.evolve, "multistart 1 vs 8 threads");
}

TEST(Determinism, ResumeAtDifferentThreadCountMatchesUninterrupted) {
  const auto initial = init_netlist("graycode4");
  const auto b = benchmarks::get("graycode4");

  EvolveParams p = small_params(23, 0);
  p.generations = 600;

  // Reference: one uninterrupted single-threaded run.
  EvolveParams ref = p;
  ref.threads = 1;
  const auto uninterrupted = run_evolve(initial, b.spec, ref);

  // Interrupted: run the first 250 generations with 2 threads, writing
  // checkpoints; then resume the remaining 350 with 8 threads. The
  // checkpoint stores no RNG engine state, so the thread-count switch is
  // free: streams are re-derived from (seed, generation, k).
  const std::string path =
      ::testing::TempDir() + "determinism_resume.ckpt";
  std::remove(path.c_str());

  EvolveParams chunk = p;
  chunk.threads = 2;
  chunk.checkpoint_path = path;
  chunk.checkpoint_interval = 100;
  RunLimits first_leg;
  first_leg.max_generations = 250;
  const auto partial = run_evolve(initial, b.spec, chunk, first_leg);
  ASSERT_EQ(partial.stop_reason, robust::StopReason::kGenerationBudget);
  ASSERT_LT(partial.evolve.generations_run, p.generations);

  OptimizerOptions resume_opts;
  resume_opts.algorithm = Algorithm::kEvolve;
  resume_opts.evolve = chunk;
  resume_opts.evolve.threads = 8;
  const auto resumed = Optimizer(resume_opts).resume(b.spec);

  EXPECT_TRUE(resumed.evolve.resumed);
  EvolveResult final = resumed.evolve;
  final.resumed = false; // the only field allowed to differ
  expect_bit_identical(uninterrupted.evolve, final,
                       "resumed(2->8 threads) vs uninterrupted(1 thread)");
  std::remove(path.c_str());
}

TEST(Determinism, SimdTierDoesNotChangeEvolveResult) {
  // All kernel tiers are bit-identical by construction (docs/SIMD.md), so
  // forcing any available tier — across thread counts — must reproduce the
  // scalar single-threaded run exactly.
  struct TierGuard {
    rqfp::simd::Tier saved = rqfp::simd::active_tier();
    ~TierGuard() { rqfp::simd::force_tier(saved); }
  } guard;
  const auto initial = init_netlist("graycode4");
  const auto b = benchmarks::get("graycode4");

  rqfp::simd::force_tier(rqfp::simd::Tier::kScalar);
  const auto ref = run_evolve(initial, b.spec, small_params(17, 1));
  for (const rqfp::simd::Tier tier : rqfp::simd::available_tiers()) {
    rqfp::simd::force_tier(tier);
    const std::string what =
        std::string("tier ") + std::string(rqfp::simd::to_string(tier));
    const auto r1 = run_evolve(initial, b.spec, small_params(17, 1));
    const auto r4 = run_evolve(initial, b.spec, small_params(17, 4));
    expect_bit_identical(ref.evolve, r1.evolve, what + ", 1 thread");
    expect_bit_identical(ref.evolve, r4.evolve, what + ", 4 threads");
  }
}

TEST(Determinism, EvaluationBudgetIsThreadCountInvariant) {
  // The evaluation budget is decided only at generation boundaries
  // (evaluations + λ > max_evaluations), so the exact stopping point —
  // the subtlest thread-count hazard — must not depend on `threads`.
  const auto initial = init_netlist("decoder_2_4");
  const auto b = benchmarks::get("decoder_2_4");
  EvolveParams p = small_params(5, 1);
  p.generations = 100000;
  RunLimits limits;
  limits.max_evaluations = 1604;
  const auto r1 = run_evolve(initial, b.spec, p, limits);
  p.threads = 8;
  const auto r8 = run_evolve(initial, b.spec, p, limits);
  EXPECT_EQ(r1.stop_reason, robust::StopReason::kEvaluationBudget);
  EXPECT_EQ(r1.evolve.evaluations, 1601u);
  EXPECT_EQ(r1.evolve.generations_run, 400u);
  expect_bit_identical(r1.evolve, r8.evolve, "eval budget 1 vs 8 threads");
}

} // namespace
} // namespace rcgp::core
