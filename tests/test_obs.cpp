#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace rcgp::obs {
namespace {

// ---------------------------------------------------------------------------
// JSON writer / validator

TEST(Json, EscapeSpecials) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json::escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(Json, WriterProducesValidDocument) {
  json::Writer w;
  w.begin_object()
      .field("name", "rcgp")
      .field("count", std::uint64_t{42})
      .field("rate", 0.5)
      .field("ok", true)
      .key("inner")
      .begin_object()
      .field("neg", -3)
      .end_object()
      .key("list")
      .begin_array()
      .value(1)
      .value(2)
      .end_array()
      .key("missing")
      .null()
      .end_object();
  ASSERT_TRUE(w.complete());
  EXPECT_TRUE(json::validate(w.str()));
  EXPECT_EQ(w.str(),
            "{\"name\":\"rcgp\",\"count\":42,\"rate\":0.5,\"ok\":true,"
            "\"inner\":{\"neg\":-3},\"list\":[1,2],\"missing\":null}");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  json::Writer w;
  w.begin_object()
      .field("inf", std::numeric_limits<double>::infinity())
      .field("nan", std::numeric_limits<double>::quiet_NaN())
      .end_object();
  EXPECT_TRUE(json::validate(w.str()));
  EXPECT_EQ(w.str(), "{\"inf\":null,\"nan\":null}");
}

TEST(Json, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(json::validate("{}"));
  EXPECT_TRUE(json::validate("[]"));
  EXPECT_TRUE(json::validate("  {\"a\": [1, 2.5, -3e4], \"b\": null} "));
  EXPECT_TRUE(json::validate("\"just a string\""));
  EXPECT_TRUE(json::validate("true"));
  EXPECT_TRUE(json::validate("-0.5"));
}

TEST(Json, ValidateRejectsMalformed) {
  EXPECT_FALSE(json::validate(""));
  EXPECT_FALSE(json::validate("{"));
  EXPECT_FALSE(json::validate("{\"a\":}"));
  EXPECT_FALSE(json::validate("{\"a\":1,}"));
  EXPECT_FALSE(json::validate("[1 2]"));
  EXPECT_FALSE(json::validate("{} extra"));
  EXPECT_FALSE(json::validate("{\"unterminated"));
  EXPECT_FALSE(json::validate("nul"));
}

TEST(Json, FieldExtractors) {
  const std::string doc =
      "{\"event\":\"improvement\",\"gen\":1234,\"rate\":0.75,"
      "\"msg\":\"a\\\"b\"}";
  ASSERT_TRUE(json::validate(doc));
  EXPECT_EQ(json::number_field(doc, "gen"), 1234.0);
  EXPECT_EQ(json::number_field(doc, "rate"), 0.75);
  EXPECT_FALSE(json::number_field(doc, "absent").has_value());
  EXPECT_EQ(json::string_field(doc, "event"), "improvement");
  EXPECT_EQ(json::string_field(doc, "msg"), "a\"b");
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(Metrics, CounterIncrementsAndSameNameSameObject) {
  Counter& a = registry().counter("test.obs.counter_a");
  Counter& b = registry().counter("test.obs.counter_a");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.inc();
  a.inc(9);
  EXPECT_EQ(b.value(), 10u);
}

TEST(Metrics, GaugeSetAddReset) {
  Gauge& g = registry().gauge("test.obs.gauge_a");
  g.reset();
  g.set(1.5);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramBucketingIncludesBoundaries) {
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram& h = registry().histogram("test.obs.hist_a", bounds);
  h.reset();
  // Bound values are inclusive upper limits: 1.0 lands in the first bucket.
  h.observe(0.5);
  h.observe(1.0);
  h.observe(5.0);
  h.observe(10.0);
  h.observe(100.0);
  h.observe(1e9); // overflow bucket
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 10.0 + 100.0 + 1e9);
  ASSERT_EQ(h.num_buckets(), 4u); // 3 bounds + inf
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST(Metrics, HistogramFirstRegistrationBoundsWin) {
  const double first[] = {1.0, 2.0};
  const double second[] = {5.0};
  Histogram& a = registry().histogram("test.obs.hist_b", first);
  Histogram& b = registry().histogram("test.obs.hist_b", second);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.bounds().size(), 2u);
}

TEST(Metrics, ToJsonIsValidAndCarriesValues) {
  registry().counter("test.obs.json_counter").reset();
  registry().counter("test.obs.json_counter").inc(7);
  const std::string doc = registry().to_json();
  ASSERT_TRUE(json::validate(doc));
  EXPECT_EQ(json::number_field(doc, "test.obs.json_counter"), 7.0);
}

TEST(Metrics, ResetValuesKeepsAddressesZeroesValues) {
  Counter& c = registry().counter("test.obs.reset_counter");
  c.inc(3);
  registry().reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&c, &registry().counter("test.obs.reset_counter"));
}

TEST(Metrics, CounterIsThreadSafe) {
  Counter& c = registry().counter("test.obs.mt_counter");
  c.reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) {
        c.inc();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(c.value(), 40000u);
}

// ---------------------------------------------------------------------------
// Phase timers

TEST(Phase, NestedTimersReportPathsAndDepths) {
  PhaseCollector collector;
  {
    PhaseTimer outer("outer");
    EXPECT_EQ(outer.path(), "outer");
    EXPECT_EQ(outer.depth(), 0);
    {
      PhaseTimer inner("inner");
      EXPECT_EQ(inner.path(), "outer/inner");
      EXPECT_EQ(inner.depth(), 1);
    }
  }
  {
    PhaseTimer second("second");
    EXPECT_EQ(second.depth(), 0);
  }
  const auto& recs = collector.records();
  ASSERT_EQ(recs.size(), 3u);
  // Inner destructs first, so records are completion-ordered.
  EXPECT_EQ(recs[0].path, "outer/inner");
  EXPECT_EQ(recs[0].depth, 1);
  EXPECT_EQ(recs[1].path, "outer");
  EXPECT_EQ(recs[1].depth, 0);
  EXPECT_EQ(recs[2].path, "second");
  EXPECT_GE(recs[1].seconds, recs[0].seconds);
  EXPECT_DOUBLE_EQ(collector.top_level_seconds(),
                   recs[1].seconds + recs[2].seconds);
}

TEST(Phase, CollectorsNestAndRestore) {
  PhaseCollector outer_collector;
  { PhaseTimer t("before"); }
  {
    PhaseCollector inner_collector;
    { PhaseTimer t("inside"); }
    ASSERT_EQ(inner_collector.records().size(), 1u);
    EXPECT_EQ(inner_collector.records()[0].path, "inside");
  }
  { PhaseTimer t("after"); }
  ASSERT_EQ(outer_collector.records().size(), 2u);
  EXPECT_EQ(outer_collector.records()[0].path, "before");
  EXPECT_EQ(outer_collector.records()[1].path, "after");
}

TEST(Phase, TimerFeedsRegistryGauge) {
  Gauge& g = registry().gauge("phase_seconds{test-phase}");
  g.reset();
  { PhaseTimer t("test-phase"); }
  EXPECT_GT(g.value(), 0.0);
}

// ---------------------------------------------------------------------------
// Trace sink

std::vector<std::string> lines_of(const std::string& buffer) {
  std::vector<std::string> lines;
  std::istringstream in(buffer);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(Trace, MemorySinkEmitsOneValidJsonPerLine) {
  auto sink = TraceSink::memory();
  ASSERT_NE(sink, nullptr);
  sink->event("alpha").field("x", 1).field("note", "a\"quote");
  sink->event("beta").field("rate", 0.25);
  {
    auto ev = sink->event("gamma");
    ev.begin("nested").field("inner", 2).end();
  }
  EXPECT_EQ(sink->lines_written(), 3u);
  const auto lines = lines_of(sink->buffer());
  ASSERT_EQ(lines.size(), 3u);
  for (const auto& line : lines) {
    EXPECT_TRUE(json::validate(line)) << line;
  }
  EXPECT_EQ(json::string_field(lines[0], "event"), "alpha");
  EXPECT_EQ(json::number_field(lines[0], "seq"), 0.0);
  EXPECT_EQ(json::number_field(lines[1], "seq"), 1.0);
  EXPECT_EQ(json::string_field(lines[0], "note"), "a\"quote");
  EXPECT_EQ(json::number_field(lines[2], "inner"), 2.0);
}

TEST(Trace, FileSinkRoundTrips) {
  const std::string path = ::testing::TempDir() + "rcgp_trace_test.jsonl";
  {
    auto sink = TraceSink::open(path);
    ASSERT_NE(sink, nullptr);
    sink->event("one").field("v", 1);
    sink->event("two").field("v", 2);
    sink->flush();
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(4096, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  const auto lines = lines_of(content);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(json::validate(lines[0]));
  EXPECT_TRUE(json::validate(lines[1]));
  EXPECT_EQ(json::string_field(lines[1], "event"), "two");
  std::remove(path.c_str());
}

TEST(Trace, OpenFailureReturnsNull) {
  EXPECT_EQ(TraceSink::open("/nonexistent-dir/trace.jsonl"), nullptr);
}

TEST(Trace, AttachToLogRoutesMessages) {
  const util::LogLevel saved = util::log_level();
  {
    auto sink = TraceSink::memory();
    sink->attach_to_log();
    util::set_log_level(util::LogLevel::kInfo);
    util::log_info("hello from the test");
    util::log_debug("below threshold, not routed");
    const auto lines = lines_of(sink->buffer());
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(json::validate(lines[0]));
    EXPECT_EQ(json::string_field(lines[0], "event"), "log");
    EXPECT_EQ(json::string_field(lines[0], "level"), "INFO");
    EXPECT_EQ(json::string_field(lines[0], "message"), "hello from the test");
    const auto ts = json::string_field(lines[0], "ts");
    ASSERT_TRUE(ts.has_value());
    EXPECT_EQ(ts->size(), 24u); // 2026-08-05T12:00:00.000Z
    EXPECT_EQ((*ts)[10], 'T');
    EXPECT_EQ(ts->back(), 'Z');
  }
  // Sink destruction detaches the hook; logging must not crash afterwards.
  util::log_info("after detach");
  util::set_log_level(saved);
}

TEST(Trace, Iso8601TimestampShape) {
  const std::string ts = util::iso8601_utc_now();
  ASSERT_EQ(ts.size(), 24u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[7], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[13], ':');
  EXPECT_EQ(ts[19], '.');
  EXPECT_EQ(ts[23], 'Z');
}

} // namespace
} // namespace rcgp::obs
