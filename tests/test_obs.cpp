#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/report.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace rcgp::obs {
namespace {

// ---------------------------------------------------------------------------
// JSON writer / validator

TEST(Json, EscapeSpecials) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json::escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(Json, WriterProducesValidDocument) {
  json::Writer w;
  w.begin_object()
      .field("name", "rcgp")
      .field("count", std::uint64_t{42})
      .field("rate", 0.5)
      .field("ok", true)
      .key("inner")
      .begin_object()
      .field("neg", -3)
      .end_object()
      .key("list")
      .begin_array()
      .value(1)
      .value(2)
      .end_array()
      .key("missing")
      .null()
      .end_object();
  ASSERT_TRUE(w.complete());
  EXPECT_TRUE(json::validate(w.str()));
  EXPECT_EQ(w.str(),
            "{\"name\":\"rcgp\",\"count\":42,\"rate\":0.5,\"ok\":true,"
            "\"inner\":{\"neg\":-3},\"list\":[1,2],\"missing\":null}");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  json::Writer w;
  w.begin_object()
      .field("inf", std::numeric_limits<double>::infinity())
      .field("nan", std::numeric_limits<double>::quiet_NaN())
      .end_object();
  EXPECT_TRUE(json::validate(w.str()));
  EXPECT_EQ(w.str(), "{\"inf\":null,\"nan\":null}");
}

TEST(Json, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(json::validate("{}"));
  EXPECT_TRUE(json::validate("[]"));
  EXPECT_TRUE(json::validate("  {\"a\": [1, 2.5, -3e4], \"b\": null} "));
  EXPECT_TRUE(json::validate("\"just a string\""));
  EXPECT_TRUE(json::validate("true"));
  EXPECT_TRUE(json::validate("-0.5"));
}

TEST(Json, ValidateRejectsMalformed) {
  EXPECT_FALSE(json::validate(""));
  EXPECT_FALSE(json::validate("{"));
  EXPECT_FALSE(json::validate("{\"a\":}"));
  EXPECT_FALSE(json::validate("{\"a\":1,}"));
  EXPECT_FALSE(json::validate("[1 2]"));
  EXPECT_FALSE(json::validate("{} extra"));
  EXPECT_FALSE(json::validate("{\"unterminated"));
  EXPECT_FALSE(json::validate("nul"));
}

TEST(Json, FieldExtractors) {
  const std::string doc =
      "{\"event\":\"improvement\",\"gen\":1234,\"rate\":0.75,"
      "\"msg\":\"a\\\"b\"}";
  ASSERT_TRUE(json::validate(doc));
  EXPECT_EQ(json::number_field(doc, "gen"), 1234.0);
  EXPECT_EQ(json::number_field(doc, "rate"), 0.75);
  EXPECT_FALSE(json::number_field(doc, "absent").has_value());
  EXPECT_EQ(json::string_field(doc, "event"), "improvement");
  EXPECT_EQ(json::string_field(doc, "msg"), "a\"b");
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(Metrics, CounterIncrementsAndSameNameSameObject) {
  Counter& a = registry().counter("test.obs.counter_a");
  Counter& b = registry().counter("test.obs.counter_a");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.inc();
  a.inc(9);
  EXPECT_EQ(b.value(), 10u);
}

TEST(Metrics, GaugeSetAddReset) {
  Gauge& g = registry().gauge("test.obs.gauge_a");
  g.reset();
  g.set(1.5);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramBucketingIncludesBoundaries) {
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram& h = registry().histogram("test.obs.hist_a", bounds);
  h.reset();
  // Bound values are inclusive upper limits: 1.0 lands in the first bucket.
  h.observe(0.5);
  h.observe(1.0);
  h.observe(5.0);
  h.observe(10.0);
  h.observe(100.0);
  h.observe(1e9); // overflow bucket
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 10.0 + 100.0 + 1e9);
  ASSERT_EQ(h.num_buckets(), 4u); // 3 bounds + inf
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST(Metrics, HistogramFirstRegistrationBoundsWin) {
  const double first[] = {1.0, 2.0};
  const double second[] = {5.0};
  Histogram& a = registry().histogram("test.obs.hist_b", first);
  Histogram& b = registry().histogram("test.obs.hist_b", second);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.bounds().size(), 2u);
}

TEST(Metrics, ToJsonIsValidAndCarriesValues) {
  registry().counter("test.obs.json_counter").reset();
  registry().counter("test.obs.json_counter").inc(7);
  const std::string doc = registry().to_json();
  ASSERT_TRUE(json::validate(doc));
  EXPECT_EQ(json::number_field(doc, "test.obs.json_counter"), 7.0);
}

TEST(Metrics, ResetValuesKeepsAddressesZeroesValues) {
  Counter& c = registry().counter("test.obs.reset_counter");
  c.inc(3);
  registry().reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&c, &registry().counter("test.obs.reset_counter"));
}

TEST(Metrics, CounterIsThreadSafe) {
  Counter& c = registry().counter("test.obs.mt_counter");
  c.reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) {
        c.inc();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(c.value(), 40000u);
}

// ---------------------------------------------------------------------------
// Phase timers

TEST(Phase, NestedTimersReportPathsAndDepths) {
  PhaseCollector collector;
  {
    PhaseSpan outer("outer");
    EXPECT_EQ(outer.path(), "outer");
    EXPECT_EQ(outer.depth(), 0);
    {
      PhaseSpan inner("inner");
      EXPECT_EQ(inner.path(), "outer/inner");
      EXPECT_EQ(inner.depth(), 1);
    }
  }
  {
    PhaseSpan second("second");
    EXPECT_EQ(second.depth(), 0);
  }
  const auto& recs = collector.records();
  ASSERT_EQ(recs.size(), 3u);
  // Inner destructs first, so records are completion-ordered.
  EXPECT_EQ(recs[0].path, "outer/inner");
  EXPECT_EQ(recs[0].depth, 1);
  EXPECT_EQ(recs[1].path, "outer");
  EXPECT_EQ(recs[1].depth, 0);
  EXPECT_EQ(recs[2].path, "second");
  EXPECT_GE(recs[1].seconds, recs[0].seconds);
  EXPECT_DOUBLE_EQ(collector.top_level_seconds(),
                   recs[1].seconds + recs[2].seconds);
}

TEST(Phase, CollectorsNestAndRestore) {
  PhaseCollector outer_collector;
  { PhaseSpan t("before"); }
  {
    PhaseCollector inner_collector;
    { PhaseSpan t("inside"); }
    ASSERT_EQ(inner_collector.records().size(), 1u);
    EXPECT_EQ(inner_collector.records()[0].path, "inside");
  }
  { PhaseSpan t("after"); }
  ASSERT_EQ(outer_collector.records().size(), 2u);
  EXPECT_EQ(outer_collector.records()[0].path, "before");
  EXPECT_EQ(outer_collector.records()[1].path, "after");
}

TEST(Phase, TimerFeedsRegistryGauge) {
  Gauge& g = registry().gauge("phase_seconds{test-phase}");
  g.reset();
  { PhaseSpan t("test-phase"); }
  EXPECT_GT(g.value(), 0.0);
}

// ---------------------------------------------------------------------------
// Trace sink

std::vector<std::string> lines_of(const std::string& buffer) {
  std::vector<std::string> lines;
  std::istringstream in(buffer);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(Trace, MemorySinkEmitsOneValidJsonPerLine) {
  auto sink = TraceSink::memory();
  ASSERT_NE(sink, nullptr);
  sink->event("alpha").field("x", 1).field("note", "a\"quote");
  sink->event("beta").field("rate", 0.25);
  {
    auto ev = sink->event("gamma");
    ev.begin("nested").field("inner", 2).end();
  }
  EXPECT_EQ(sink->lines_written(), 3u);
  const auto lines = lines_of(sink->buffer());
  ASSERT_EQ(lines.size(), 3u);
  for (const auto& line : lines) {
    EXPECT_TRUE(json::validate(line)) << line;
  }
  EXPECT_EQ(json::string_field(lines[0], "event"), "alpha");
  EXPECT_EQ(json::number_field(lines[0], "seq"), 0.0);
  EXPECT_EQ(json::number_field(lines[1], "seq"), 1.0);
  EXPECT_EQ(json::string_field(lines[0], "note"), "a\"quote");
  EXPECT_EQ(json::number_field(lines[2], "inner"), 2.0);
}

TEST(Trace, FileSinkRoundTrips) {
  const std::string path = ::testing::TempDir() + "rcgp_trace_test.jsonl";
  {
    auto sink = TraceSink::open(path);
    ASSERT_NE(sink, nullptr);
    sink->event("one").field("v", 1);
    sink->event("two").field("v", 2);
    sink->flush();
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(4096, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  const auto lines = lines_of(content);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(json::validate(lines[0]));
  EXPECT_TRUE(json::validate(lines[1]));
  EXPECT_EQ(json::string_field(lines[1], "event"), "two");
  std::remove(path.c_str());
}

TEST(Trace, OpenFailureReturnsNull) {
  EXPECT_EQ(TraceSink::open("/nonexistent-dir/trace.jsonl"), nullptr);
}

TEST(Trace, AttachToLogRoutesMessages) {
  const util::LogLevel saved = util::log_level();
  {
    auto sink = TraceSink::memory();
    sink->attach_to_log();
    util::set_log_level(util::LogLevel::kInfo);
    util::log_info("hello from the test");
    util::log_debug("below threshold, not routed");
    const auto lines = lines_of(sink->buffer());
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(json::validate(lines[0]));
    EXPECT_EQ(json::string_field(lines[0], "event"), "log");
    EXPECT_EQ(json::string_field(lines[0], "level"), "INFO");
    EXPECT_EQ(json::string_field(lines[0], "message"), "hello from the test");
    const auto ts = json::string_field(lines[0], "ts");
    ASSERT_TRUE(ts.has_value());
    EXPECT_EQ(ts->size(), 24u); // 2026-08-05T12:00:00.000Z
    EXPECT_EQ((*ts)[10], 'T');
    EXPECT_EQ(ts->back(), 'Z');
  }
  // Sink destruction detaches the hook; logging must not crash afterwards.
  util::log_info("after detach");
  util::set_log_level(saved);
}

TEST(Trace, Iso8601TimestampShape) {
  const std::string ts = util::iso8601_utc_now();
  ASSERT_EQ(ts.size(), 24u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[7], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[13], ':');
  EXPECT_EQ(ts[19], '.');
  EXPECT_EQ(ts[23], 'Z');
}

TEST(Trace, EventsCarryMonotonicTms) {
  auto sink = TraceSink::memory();
  sink->event("first").field("v", 1);
  sink->event("second").field("v", 2);
  const auto lines = lines_of(sink->buffer());
  ASSERT_EQ(lines.size(), 2u);
  const auto t0 = json::number_field(lines[0], "t_ms");
  const auto t1 = json::number_field(lines[1], "t_ms");
  ASSERT_TRUE(t0.has_value());
  ASSERT_TRUE(t1.has_value());
  EXPECT_GE(*t0, 0.0);
  EXPECT_GE(*t1, *t0);
  // Same timebase as the span profiler (microseconds vs milliseconds).
  EXPECT_LE(*t1, static_cast<double>(profile_now_us()) / 1000.0 + 1.0);
}

// ---------------------------------------------------------------------------
// JSON value parser (the read side used by `rcgp report`)

TEST(Json, ParseMaterializesValues) {
  const auto doc = json::parse(
      "{\"name\":\"x\",\"n\":-2.5,\"ok\":true,\"none\":null,"
      "\"list\":[1,\"two\",{\"k\":3}]}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->string_or("name", ""), "x");
  EXPECT_DOUBLE_EQ(doc->number_or("n", 0), -2.5);
  const json::Value* ok = doc->find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->as_bool());
  EXPECT_EQ(doc->find("none")->kind(), json::Value::Kind::kNull);
  const json::Value* list = doc->find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_TRUE(list->is_array());
  ASSERT_EQ(list->items().size(), 3u);
  EXPECT_DOUBLE_EQ(list->items()[0].as_number(), 1.0);
  EXPECT_EQ(list->items()[1].as_string(), "two");
  EXPECT_DOUBLE_EQ(list->items()[2].number_or("k", 0), 3.0);
  // Defaults when absent or type-mismatched.
  EXPECT_DOUBLE_EQ(doc->number_or("absent", 9.0), 9.0);
  EXPECT_EQ(doc->string_or("n", "fallback"), "fallback");
}

TEST(Json, ParseDecodesEscapes) {
  const auto doc = json::parse("{\"s\":\"a\\\"b\\\\c\\n\\t\\u0041\"}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("s", ""), "a\"b\\c\n\tA");
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_FALSE(json::parse("").has_value());
  EXPECT_FALSE(json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(json::parse("[1 2]").has_value());
  EXPECT_FALSE(json::parse("{} extra").has_value());
}

// ---------------------------------------------------------------------------
// Histogram quantiles

TEST(Metrics, QuantileInterpolatesUniformDistribution) {
  // 1..100 over decade-wide buckets: 10 observations per bucket, so the
  // interpolated quantiles land on exact values.
  const double bounds[] = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  Histogram& h = registry().histogram("test.obs.quantile_uniform", bounds);
  h.reset();
  for (int v = 1; v <= 100; ++v) {
    h.observe(static_cast<double>(v));
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0); // first bucket starts at 0
}

TEST(Metrics, QuantileEdgeCases) {
  const double bounds[] = {1.0, 2.0};
  Histogram& h = registry().histogram("test.obs.quantile_edges", bounds);
  h.reset();
  EXPECT_TRUE(std::isnan(h.quantile(0.5))); // empty
  h.observe(100.0);                         // overflow bucket only
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);   // clamps to the largest bound

  // The free function, straight from exported bucket data.
  const double b2[] = {10.0, 20.0};
  const std::uint64_t counts[] = {4, 4, 0};
  EXPECT_DOUBLE_EQ(quantile_from_buckets(b2, counts, 0.25), 5.0);
  EXPECT_DOUBLE_EQ(quantile_from_buckets(b2, counts, 0.75), 15.0);
  const std::uint64_t empty[] = {0, 0, 0};
  EXPECT_TRUE(std::isnan(quantile_from_buckets(b2, empty, 0.5)));
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(Metrics, PrometheusExpositionShape) {
  registry().counter("test.obs.prom_counter").reset();
  registry().counter("test.obs.prom_counter").inc(5);
  registry().gauge("phase_seconds{prom-test}").set(1.25);
  const double bounds[] = {1.0, 2.0};
  Histogram& h = registry().histogram("test.obs.prom_hist", bounds);
  h.reset();
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);

  const std::string text = registry().to_prometheus();
  EXPECT_NE(text.find("# TYPE rcgp_test_obs_prom_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("rcgp_test_obs_prom_counter 5\n"), std::string::npos);
  // `base{x}` gauges become labeled families.
  EXPECT_NE(text.find("rcgp_phase_seconds{phase=\"prom-test\"} 1.25\n"),
            std::string::npos);
  // Histogram buckets are cumulative and the +Inf bucket equals _count.
  EXPECT_NE(text.find("rcgp_test_obs_prom_hist_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rcgp_test_obs_prom_hist_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rcgp_test_obs_prom_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("rcgp_test_obs_prom_hist_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rcgp_test_obs_prom_hist histogram\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Span profiler

TEST(Span, DisabledSpansAreInert) {
  set_profiling_enabled(false);
  reset_profile();
  {
    Span s("inert");
    EXPECT_FALSE(s.active());
    s.arg("k", std::uint64_t{1}); // must not crash or record
  }
  EXPECT_TRUE(profile_spans().empty());
  EXPECT_EQ(current_span_id(), 0u);
}

TEST(Span, RecordsNestingAndParents) {
  reset_profile();
  set_profiling_enabled(true);
  {
    Span outer("outer-span");
    EXPECT_TRUE(outer.active());
    EXPECT_NE(current_span_id(), 0u);
    {
      Span inner("inner-span");
      inner.arg("k", std::uint64_t{7});
    }
  }
  set_profiling_enabled(false);
  const auto spans = profile_spans();
  const SpanRecord* outer = nullptr;
  const SpanRecord* inner = nullptr;
  for (const auto& s : spans) {
    if (s.name == "outer-span") {
      outer = &s;
    } else if (s.name == "inner-span") {
      inner = &s;
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->tid, outer->tid);
  // The child is contained in the parent (same clock, measured inside).
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->dur_us,
            outer->start_us + outer->dur_us);
  EXPECT_EQ(inner->args_json, "\"k\":7");
  reset_profile();
}

TEST(Span, ChromeTraceJsonIsValidAndCarriesSpans) {
  reset_profile();
  set_thread_name("obs-test-thread");
  set_profiling_enabled(true);
  {
    Span s("chrome-span");
    s.arg("label", "value");
  }
  set_profiling_enabled(false);
  const std::string doc_text = chrome_trace_json();
  const auto doc = json::parse(doc_text);
  ASSERT_TRUE(doc.has_value()) << doc_text;
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_span = false;
  bool saw_thread_name = false;
  for (const auto& ev : events->items()) {
    const std::string ph = ev.string_or("ph", "");
    if (ph == "X" && ev.string_or("name", "") == "chrome-span") {
      saw_span = true;
      EXPECT_GE(ev.number_or("ts", -1), 0.0);
      EXPECT_GE(ev.number_or("dur", -1), 0.0);
      const json::Value* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->string_or("label", ""), "value");
      EXPECT_GT(args->number_or("span_id", 0), 0.0);
    }
    if (ph == "M" && ev.string_or("name", "") == "thread_name" &&
        ev.find("args")->string_or("name", "") == "obs-test-thread") {
      saw_thread_name = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_thread_name);
  reset_profile();
}

// ---------------------------------------------------------------------------
// Periodic metrics snapshots

TEST(Snapshot, PeriodicWriterProducesValidSnapshots) {
  const std::string json_path = ::testing::TempDir() + "rcgp_snap_test.json";
  const std::string prom_path = ::testing::TempDir() + "rcgp_snap_test.prom";
  registry().counter("test.obs.snapshot_counter").inc();
  {
    MetricsSnapshotter snap({json_path, prom_path, 0.02});
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_GE(snap.snapshots_written(), 1u);
  } // destructor writes a final snapshot of both paths
  std::ifstream json_in(json_path);
  std::stringstream json_buf;
  json_buf << json_in.rdbuf();
  EXPECT_TRUE(json::validate(json_buf.str())) << json_buf.str();
  std::ifstream prom_in(prom_path);
  std::stringstream prom_buf;
  prom_buf << prom_in.rdbuf();
  EXPECT_NE(prom_buf.str().find("# TYPE"), std::string::npos);
  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());
}

TEST(Snapshot, DisabledWhenIntervalZero) {
  MetricsSnapshotter snap({"", "", 0.0});
  EXPECT_EQ(snap.snapshots_written(), 0u);
}

// ---------------------------------------------------------------------------
// Run report

TEST(Report, RendersAllThreeSections) {
  const std::string dir = ::testing::TempDir();
  const std::string profile_path = dir + "rcgp_report_profile.json";
  const std::string trace_path = dir + "rcgp_report_trace.jsonl";
  const std::string metrics_path = dir + "rcgp_report_metrics.json";

  reset_profile();
  set_profiling_enabled(true);
  {
    Span outer("report-outer");
    Span inner("report-inner");
  }
  set_profiling_enabled(false);
  ASSERT_TRUE(write_chrome_trace(profile_path));
  reset_profile();

  std::ofstream trace(trace_path);
  trace << "{\"event\":\"run_start\",\"seq\":0,\"t_ms\":0.1}\n"
        << "{\"event\":\"improvement\",\"seq\":1,\"t_ms\":0.2,\"gen\":10,"
           "\"n_r\":7,\"n_g\":9,\"n_b\":4}\n"
        << "{\"event\":\"improvement\",\"seq\":2,\"t_ms\":0.5,\"gen\":500,"
           "\"n_r\":7,\"n_g\":8,\"n_b\":4}\n"
        << "{\"event\":\"run_end\",\"seq\":3,\"t_ms\":0.9,\"reason\":"
           "\"completed\",\"generations_run\":1000,\"evaluations\":4000,"
           "\"improvements\":2,\"elapsed_s\":0.5}\n";
  trace.close();
  ASSERT_TRUE(registry().write_json(metrics_path));

  const std::string report =
      run_report({profile_path, trace_path, metrics_path});
  EXPECT_NE(report.find("rcgp run report"), std::string::npos);
  EXPECT_NE(report.find("report-outer"), std::string::npos);
  EXPECT_NE(report.find("report-inner"), std::string::npos);
  EXPECT_NE(report.find("improvement"), std::string::npos);
  EXPECT_NE(report.find("reason=completed"), std::string::npos);
  EXPECT_NE(report.find("-- metrics:"), std::string::npos);

  std::remove(profile_path.c_str());
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(Report, ThrowsOnMissingOrMalformedInput) {
  EXPECT_THROW(run_report({"/nonexistent/profile.json", "", ""}),
               std::runtime_error);
  const std::string bad = ::testing::TempDir() + "rcgp_report_bad.json";
  std::ofstream(bad) << "this is not json";
  EXPECT_THROW(run_report({bad, "", ""}), std::runtime_error);
  std::remove(bad.c_str());
  EXPECT_THROW(run_report({"", "", ""}), std::invalid_argument);
}

} // namespace
} // namespace rcgp::obs
