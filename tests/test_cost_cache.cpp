#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/flow.hpp"
#include "core/mutation.hpp"
#include "core/optimizer.hpp"
#include "rqfp/cost.hpp"
#include "util/rng.hpp"

// Property suite for the incremental cost path (docs/COST_EVAL.md):
// cost_of_delta against a CostCache must equal cost_of, which in turn
// must equal the historical remove_dead_gates()-copy formulation, for
// every field and every BufferSchedule, across randomized mutation
// chains — and wiring the cache into the eval pool must leave evolve
// trajectories bit-identical at any thread count.

namespace rcgp::rqfp {
namespace {

constexpr std::array<BufferSchedule, 4> kAllSchedules = {
    BufferSchedule::kAsap, BufferSchedule::kAlap, BufferSchedule::kBest,
    BufferSchedule::kOptimized};

const char* schedule_name(BufferSchedule s) {
  switch (s) {
  case BufferSchedule::kAsap:
    return "kAsap";
  case BufferSchedule::kAlap:
    return "kAlap";
  case BufferSchedule::kBest:
    return "kBest";
  case BufferSchedule::kOptimized:
    return "kOptimized";
  }
  return "?";
}

/// The pre-cache formulation: materialize the dead-gate-free copy and
/// plan buffers on it from scratch. cost_of must keep matching this.
Cost reference_cost(const Netlist& net, BufferSchedule schedule) {
  const Netlist live = net.remove_dead_gates();
  Cost c;
  c.n_r = live.num_gates();
  c.n_g = live.count_garbage_outputs();
  const BufferPlan plan = plan_buffers(live, schedule);
  c.n_b = plan.total;
  c.n_d = plan.depth;
  c.jjs = kJjsPerGate * c.n_r + kJjsPerBuffer * c.n_b;
  return c;
}

void expect_cost_eq(const Cost& a, const Cost& b, const std::string& what) {
  EXPECT_EQ(a.n_r, b.n_r) << what;
  EXPECT_EQ(a.n_g, b.n_g) << what;
  EXPECT_EQ(a.n_b, b.n_b) << what;
  EXPECT_EQ(a.n_d, b.n_d) << what;
  EXPECT_EQ(a.jjs, b.jjs) << what;
}

/// Random feed-forward netlist with plenty of dead gates (fan-out above
/// one is fine here: the cost functions accept raw netlists).
Netlist random_netlist(std::uint64_t seed) {
  util::Rng rng(seed);
  const unsigned num_pis = 2 + static_cast<unsigned>(rng.below(4));
  Netlist net(num_pis);
  std::vector<Port> avail;
  for (Port p = 1; p <= num_pis; ++p) {
    avail.push_back(p);
  }
  const unsigned gates = 3 + static_cast<unsigned>(rng.below(12));
  for (unsigned g = 0; g < gates; ++g) {
    std::array<Port, 3> in{};
    for (auto& p : in) {
      const auto pick = rng.below(avail.size() + 1);
      p = pick == avail.size() ? kConstPort : avail[pick];
    }
    const auto id = net.add_gate(
        in, InvConfig(static_cast<std::uint16_t>(rng.below(512))));
    for (unsigned k = 0; k < 3; ++k) {
      avail.push_back(net.port_of(id, k));
    }
  }
  const unsigned pos = 1 + static_cast<unsigned>(rng.below(3));
  for (unsigned o = 0; o < pos; ++o) {
    net.add_po(avail[rng.below(avail.size())]);
  }
  return net;
}

/// A legal CGP phenotype to drive mutation chains from.
Netlist init_netlist(const std::string& name) {
  const auto b = benchmarks::get(name);
  core::FlowOptions opt;
  opt.run_cgp = false;
  return core::synthesize(b.spec, opt).initial;
}

TEST(CostCache, CostOfMatchesReferenceOnRandomNetlists) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const Netlist net = random_netlist(seed);
    for (const auto s : kAllSchedules) {
      expect_cost_eq(cost_of(net, s), reference_cost(net, s),
                     "seed=" + std::to_string(seed) + " " + schedule_name(s));
    }
  }
}

TEST(CostCache, DepthOverloadAgreesWithDepth) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const Netlist net = random_netlist(seed + 1000);
    EXPECT_EQ(net.depth(net.gate_levels()), net.depth());
  }
}

TEST(CostCache, DeltaMatchesFullAcrossMutationChains) {
  for (const char* name : {"full_adder", "decoder_2_4"}) {
    const Netlist initial = init_netlist(name);
    for (const auto s : kAllSchedules) {
      CostCache cache;
      Netlist current = initial;
      Cost base = build_cost_cache(current, s, cache);
      expect_cost_eq(base, reference_cost(current, s),
                     std::string(name) + " " + schedule_name(s) + " base");
      util::Rng rng(42);
      core::MutationParams mp;
      for (unsigned step = 0; step < 120; ++step) {
        Netlist child = current;
        core::mutate(child, rng, mp);
        const std::string what = std::string(name) + " " + schedule_name(s) +
                                 " step=" + std::to_string(step);
        const Cost expect = reference_cost(child, s);
        const Cost got = cost_of_delta(current, child, cache);
        expect_cost_eq(got, expect, what);
        expect_cost_eq(cost_of(child, s), expect, what + " (cost_of)");
        // A transient delta must not re-base the cache: the same query
        // answers identically and the cached base cost is untouched.
        expect_cost_eq(cost_of_delta(current, child, cache), expect,
                       what + " (repeat)");
        expect_cost_eq(cache.base_cost, base, what + " (cache intact)");
        if (step % 3 == 0) { // follow an accepted-offspring trajectory
          base = update_cost_cache(current, child, cache);
          expect_cost_eq(base, expect, what + " (commit)");
          current = std::move(child);
        }
      }
    }
  }
}

TEST(CostCache, TouchedGatesOverloadAgrees) {
  const Netlist initial = init_netlist("full_adder");
  CostCache cache;
  build_cost_cache(initial, BufferSchedule::kOptimized, cache);

  util::Rng rng(7);
  Netlist child = initial;
  core::mutate(child, rng, {});
  // Trusting an exhaustive touched list is the same as scanning.
  std::vector<std::uint32_t> all(initial.num_gates());
  for (std::uint32_t g = 0; g < initial.num_gates(); ++g) {
    all[g] = g;
  }
  expect_cost_eq(
      cost_of_delta(initial, child, std::span<const std::uint32_t>(all),
                    cache),
      cost_of_delta(initial, child, cache), "touched == scan");

  // A config-only edit with an (accurate) empty touched list short-cuts
  // to the cached base cost.
  Netlist flipped = initial;
  flipped.gate(0).config = InvConfig(
      static_cast<std::uint16_t>(flipped.gate(0).config.bits() ^ 0x1));
  expect_cost_eq(cost_of_delta(initial, flipped,
                               std::span<const std::uint32_t>(), cache),
                 cache.base_cost, "config-only");
}

TEST(CostCache, ThrowsOnUnbuiltCacheOrShapeMismatch) {
  const Netlist a = init_netlist("full_adder");
  const Netlist b = init_netlist("decoder_2_4");
  CostCache cache;
  EXPECT_THROW(cost_of_delta(a, a, cache), std::invalid_argument);
  build_cost_cache(a, BufferSchedule::kBest, cache);
  EXPECT_THROW(cost_of_delta(a, b, cache), std::invalid_argument);
  EXPECT_THROW(cost_of_delta(b, b, cache), std::invalid_argument);
  EXPECT_THROW(update_cost_cache(a, b, cache), std::invalid_argument);
}

TEST(CostCache, ScratchBytesStabilize) {
  const Netlist initial = init_netlist("decoder_2_4");
  CostCache cache;
  build_cost_cache(initial, BufferSchedule::kOptimized, cache);
  util::Rng rng(3);
  Netlist current = initial;
  // Warm-up: let every scratch vector reach steady-state capacity.
  for (unsigned step = 0; step < 10; ++step) {
    Netlist child = current;
    core::mutate(child, rng, {});
    cost_of_delta(current, child, cache);
    update_cost_cache(current, child, cache);
    current = std::move(child);
  }
  const std::size_t warm = cache.scratch_bytes();
  EXPECT_GT(warm, 0u);
  // Steady state: no allocation growth across further evaluations.
  for (unsigned step = 0; step < 200; ++step) {
    Netlist child = current;
    core::mutate(child, rng, {});
    cost_of_delta(current, child, cache);
    EXPECT_EQ(cache.scratch_bytes(), warm) << "step=" << step;
  }
}

// Wiring the cost cache through the eval pool must not move a single bit
// of the search trajectory, at any thread count and any schedule.
TEST(CostCache, EvolveBitIdenticalAcrossThreadCounts) {
  const auto b = benchmarks::get("graycode4");
  const Netlist initial = init_netlist("graycode4");
  core::OptimizerOptions oo;
  oo.algorithm = core::Algorithm::kEvolve;
  oo.evolve.generations = 300;
  oo.evolve.lambda = 4;
  oo.evolve.seed = 5;
  oo.evolve.fitness.schedule = BufferSchedule::kOptimized;
  oo.evolve.threads = 1;
  const auto r1 = core::Optimizer(oo).run(initial, b.spec);
  oo.evolve.threads = 8;
  const auto r8 = core::Optimizer(oo).run(initial, b.spec);
  EXPECT_EQ(r1.evolve.best, r8.evolve.best);
  EXPECT_EQ(r1.evolve.best_fitness.n_r, r8.evolve.best_fitness.n_r);
  EXPECT_EQ(r1.evolve.best_fitness.n_g, r8.evolve.best_fitness.n_g);
  EXPECT_EQ(r1.evolve.best_fitness.n_b, r8.evolve.best_fitness.n_b);
  EXPECT_EQ(r1.evolve.evaluations, r8.evolve.evaluations);
  EXPECT_EQ(r1.evolve.improvements, r8.evolve.improvements);
}

} // namespace
} // namespace rcgp::rqfp
