// Tests for the run-durability layer: checkpoint/resume determinism,
// cooperative stop + budgets, and fault-injected integrity enforcement.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include "benchmarks/benchmarks.hpp"
#include "cec/sim_cec.hpp"
#include "core/anneal.hpp"
#include "core/evolve.hpp"
#include "core/flow.hpp"
#include "core/optimizer.hpp"
#include "io/rqfp_writer.hpp"
#include "obs/trace.hpp"
#include "robust/checkpoint.hpp"
#include "robust/fault.hpp"
#include "robust/integrity.hpp"
#include "robust/stop.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace rcgp {
namespace {

using core::EvolveParams;
using core::Fitness;
using robust::EvolveCheckpoint;
using robust::IntegrityError;
using robust::StopReason;
using robust::StopToken;

/// Builds the initialization netlist of a named benchmark.
rqfp::Netlist init_netlist(const std::string& name) {
  const auto b = benchmarks::get(name);
  core::FlowOptions opt;
  opt.run_cgp = false;
  return core::synthesize(b.spec, opt).initial;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "rcgp_robust_" + name;
}

void expect_same_fitness(const Fitness& a, const Fitness& b) {
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.n_r, b.n_r);
  EXPECT_EQ(a.n_g, b.n_g);
  EXPECT_EQ(a.n_b, b.n_b);
}

// Searches are launched through the core::Optimizer facade; these helpers
// keep the budget/resume tests below at their historical terseness.

core::EvolveResult run_evolve(const rqfp::Netlist& init,
                              std::span<const tt::TruthTable> spec,
                              const EvolveParams& params) {
  core::OptimizerOptions oo;
  oo.evolve = params;
  return core::Optimizer(oo).run(init, spec).evolve;
}

core::AnnealResult run_anneal(const rqfp::Netlist& init,
                              std::span<const tt::TruthTable> spec,
                              const core::AnnealParams& params) {
  core::OptimizerOptions oo;
  oo.algorithm = core::Algorithm::kAnneal;
  oo.anneal = params;
  return core::Optimizer(oo).run(init, spec).anneal;
}

// ---------- CRC32 / stop primitives ----------

TEST(Crc32, MatchesIeeeCheckValue) {
  // The canonical check value of the reflected IEEE polynomial.
  EXPECT_EQ(util::crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(util::crc32(std::string_view("")), 0u);
}

TEST(Crc32, DetectsEverySingleBitFlip) {
  const std::string data = "rcgp checkpoint payload 0123456789";
  const std::uint32_t good = util::crc32(std::string_view(data));
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      std::string bad = data;
      bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
      EXPECT_NE(util::crc32(std::string_view(bad)), good)
          << "byte " << i << " bit " << bit;
    }
  }
}

TEST(StopToken, TripsAndResets) {
  StopToken token;
  EXPECT_FALSE(token.stop_requested());
  token.request_stop();
  EXPECT_TRUE(token.stop_requested());
  token.reset();
  EXPECT_FALSE(token.stop_requested());
}

TEST(StopToken, SignalHandlerTripsToken) {
  static StopToken token; // must outlive the signal delivery
  robust::install_signal_stop(token);
  token.reset();
  std::raise(SIGTERM);
  EXPECT_TRUE(token.stop_requested());
}

TEST(StopReasonNames, AreStable) {
  EXPECT_EQ(to_string(StopReason::kCompleted), "completed");
  EXPECT_EQ(to_string(StopReason::kStagnation), "stagnation");
  EXPECT_EQ(to_string(StopReason::kTimeLimit), "time-limit");
  EXPECT_EQ(to_string(StopReason::kGenerationBudget), "generation-budget");
  EXPECT_EQ(to_string(StopReason::kEvaluationBudget), "evaluation-budget");
  EXPECT_EQ(to_string(StopReason::kStopRequested), "stop-requested");
}

TEST(Paranoia, ParsesAllSpellings) {
  EXPECT_EQ(robust::parse_paranoia("off"), robust::ParanoiaLevel::kOff);
  EXPECT_EQ(robust::parse_paranoia("boundaries"),
            robust::ParanoiaLevel::kBoundaries);
  EXPECT_EQ(robust::parse_paranoia("all"),
            robust::ParanoiaLevel::kEveryAcceptance);
  EXPECT_EQ(robust::parse_paranoia("every-acceptance"),
            robust::ParanoiaLevel::kEveryAcceptance);
  EXPECT_THROW(robust::parse_paranoia("extreme"), std::invalid_argument);
}

// ---------- Checkpoint serialization ----------

EvolveCheckpoint sample_checkpoint() {
  EvolveCheckpoint ck;
  ck.seed = 42;
  ck.lambda = 4;
  ck.mu = 0.07;
  ck.generations_total = 12345;
  ck.generation = 678;
  ck.evaluations = 2713;
  ck.improvements = 17;
  ck.sat_confirmations = 3;
  ck.sat_cec_conflicts = 99;
  ck.since_improvement = 41;
  ck.last_improvement_gen = 637;
  ck.elapsed_seconds = 1.734625;
  ck.fitness.success_rate = 1.0;
  ck.fitness.n_r = 21;
  ck.fitness.n_g = 5;
  ck.fitness.n_b = 33;
  ck.mutations_attempted.mutations = 100;
  ck.mutations_attempted.genes_changed = 250;
  ck.mutations_accepted.mutations = 30;
  ck.parent = init_netlist("full_adder");
  return ck;
}

TEST(Checkpoint, SerializeParseRoundTrip) {
  const EvolveCheckpoint ck = sample_checkpoint();
  const EvolveCheckpoint back =
      robust::parse_checkpoint(robust::serialize_checkpoint(ck));
  EXPECT_EQ(back.seed, ck.seed);
  EXPECT_EQ(back.lambda, ck.lambda);
  EXPECT_EQ(back.mu, ck.mu); // hexfloat round-trip is exact
  EXPECT_EQ(back.generations_total, ck.generations_total);
  EXPECT_EQ(back.generation, ck.generation);
  EXPECT_EQ(back.evaluations, ck.evaluations);
  EXPECT_EQ(back.improvements, ck.improvements);
  EXPECT_EQ(back.sat_confirmations, ck.sat_confirmations);
  EXPECT_EQ(back.sat_cec_conflicts, ck.sat_cec_conflicts);
  EXPECT_EQ(back.since_improvement, ck.since_improvement);
  EXPECT_EQ(back.last_improvement_gen, ck.last_improvement_gen);
  EXPECT_EQ(back.elapsed_seconds, ck.elapsed_seconds);
  expect_same_fitness(back.fitness, ck.fitness);
  EXPECT_EQ(back.mutations_attempted.mutations,
            ck.mutations_attempted.mutations);
  EXPECT_EQ(back.mutations_attempted.genes_changed,
            ck.mutations_attempted.genes_changed);
  EXPECT_EQ(back.mutations_accepted.mutations,
            ck.mutations_accepted.mutations);
  EXPECT_EQ(io::write_rqfp_string(back.parent),
            io::write_rqfp_string(ck.parent));
}

TEST(Checkpoint, SaveLoadRoundTripsThroughDisk) {
  const EvolveCheckpoint ck = sample_checkpoint();
  const std::string path = temp_path("roundtrip.ckpt");
  robust::save_checkpoint(ck, path);
  const EvolveCheckpoint back = robust::load_checkpoint(path);
  EXPECT_EQ(back.generation, ck.generation);
  EXPECT_EQ(back.evaluations, ck.evaluations);
  std::remove(path.c_str());
}

TEST(Checkpoint, EveryPayloadBitFlipIsCaught) {
  const std::string text =
      robust::serialize_checkpoint(sample_checkpoint());
  const std::size_t payload_start = text.find('\n') + 1;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    std::string corrupted = text;
    util::Rng rng(seed);
    const auto report =
        robust::inject_byte_fault(corrupted, rng, payload_start);
    try {
      robust::parse_checkpoint(corrupted);
      FAIL() << "undetected corruption: " << report.describe();
    } catch (const IntegrityError& e) {
      EXPECT_EQ(e.kind(), IntegrityError::Kind::kChecksum)
          << report.describe();
    }
  }
}

TEST(Checkpoint, HeaderCorruptionIsAFormatError) {
  std::string text = robust::serialize_checkpoint(sample_checkpoint());
  text[0] = 'X'; // break the magic word
  try {
    robust::parse_checkpoint(text);
    FAIL() << "bad magic accepted";
  } catch (const IntegrityError& e) {
    EXPECT_EQ(e.kind(), IntegrityError::Kind::kFormat);
  }
}

TEST(Checkpoint, UnknownVersionIsAFormatError) {
  std::string text = robust::serialize_checkpoint(sample_checkpoint());
  const auto space = text.find(' ');
  text[space + 1] = '9'; // version 1 -> 9
  try {
    robust::parse_checkpoint(text);
    FAIL() << "future version accepted";
  } catch (const IntegrityError& e) {
    EXPECT_EQ(e.kind(), IntegrityError::Kind::kFormat);
  }
}

TEST(Checkpoint, TruncationIsCaught) {
  const std::string text =
      robust::serialize_checkpoint(sample_checkpoint());
  // A torn write that loses the tail must never parse.
  EXPECT_THROW(robust::parse_checkpoint(text.substr(0, text.size() / 2)),
               IntegrityError);
  EXPECT_THROW(robust::parse_checkpoint(text.substr(0, text.size() - 3)),
               IntegrityError);
}

// ---------- Fault-injected integrity enforcement ----------

TEST(FaultInjection, WiringFaultsNeverPassSilently) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto net = init_netlist("decoder_2_4");
  ASSERT_EQ(net.validate(), "");
  int caught = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    rqfp::Netlist corrupted = net;
    util::Rng rng(seed);
    const auto report = robust::inject_wiring_fault(corrupted, rng);
    // The contract: a fault that changes structure or function MUST raise
    // IntegrityError; only a provably harmless flip may pass.
    const bool harmful =
        !corrupted.validate().empty() ||
        !cec::sim_check(corrupted, b.spec).all_match;
    if (!harmful) {
      continue;
    }
    try {
      robust::enforce_integrity(corrupted, b.spec, "test:wiring");
      FAIL() << "silent corruption: " << report.describe();
    } catch (const IntegrityError& e) {
      ++caught;
      EXPECT_TRUE(e.kind() == IntegrityError::Kind::kInvariant ||
                  e.kind() == IntegrityError::Kind::kFunctional)
          << report.describe();
      EXPECT_FALSE(e.netlist_dump().empty());
    }
  }
  // The injector must actually be generating harmful faults.
  EXPECT_GE(caught, 40);
}

TEST(FaultInjection, ConfigFaultsAreCaughtByResimulation) {
  const auto b = benchmarks::get("full_adder");
  const auto net = init_netlist("full_adder");
  int caught = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    rqfp::Netlist corrupted = net;
    util::Rng rng(seed);
    const auto report = robust::inject_config_fault(corrupted, rng);
    // Config flips keep the wiring legal: validate() alone cannot see them.
    EXPECT_EQ(corrupted.validate(), "") << report.describe();
    if (cec::sim_check(corrupted, b.spec).all_match) {
      continue; // flip landed on a dead row — functionally harmless
    }
    try {
      robust::enforce_integrity(corrupted, b.spec, "test:config");
      FAIL() << "silent corruption: " << report.describe();
    } catch (const IntegrityError& e) {
      ++caught;
      EXPECT_EQ(e.kind(), IntegrityError::Kind::kFunctional)
          << report.describe();
    }
  }
  EXPECT_GE(caught, 25);
}

TEST(Integrity, DumpRoundTripsForOfflineRepro) {
  const auto b = benchmarks::get("full_adder");
  auto net = init_netlist("full_adder");
  bool harmful = false;
  for (std::uint64_t seed = 1; seed <= 32 && !harmful; ++seed) {
    net = init_netlist("full_adder");
    util::Rng rng(seed);
    robust::inject_config_fault(net, rng);
    harmful = !cec::sim_check(net, b.spec).all_match;
  }
  ASSERT_TRUE(harmful) << "no seed in 1..32 produced a functional fault";
  try {
    robust::enforce_integrity(net, b.spec, "test:dump");
    FAIL() << "corruption not caught";
  } catch (const IntegrityError& e) {
    // The dump must parse back to the exact offending netlist.
    const auto back = io::parse_rqfp_string(e.netlist_dump());
    EXPECT_EQ(io::write_rqfp_string(back), io::write_rqfp_string(net));
    EXPECT_EQ(e.where(), "test:dump");
  }
}

TEST(Integrity, CleanNetlistPasses) {
  const auto b = benchmarks::get("full_adder");
  const auto net = init_netlist("full_adder");
  EXPECT_NO_THROW(robust::enforce_integrity(net, b.spec, "test:clean"));
}

// ---------- Budgets and cooperative stop in the optimizer loops ----------

TEST(EvolveBudget, GenerationBudgetStopsAtBoundary) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  EvolveParams params;
  params.generations = 5000;
  params.seed = 11;
  params.budget.max_generations = 120;
  const auto r = run_evolve(init, b.spec, params);
  EXPECT_EQ(r.stop_reason, StopReason::kGenerationBudget);
  EXPECT_EQ(r.generations_run, 120u);
  EXPECT_TRUE(cec::sim_check(r.best, b.spec).all_match);
}

TEST(EvolveBudget, EvaluationBudgetStopsMidGeneration) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  EvolveParams params;
  params.generations = 5000;
  params.lambda = 4;
  params.seed = 11;
  // 1 initial + 4*30 offspring + 2 into generation 30: the partial
  // generation is discarded, so bookkeeping lands on the boundary.
  params.budget.max_evaluations = 1 + 4 * 30 + 2;
  const auto r = run_evolve(init, b.spec, params);
  EXPECT_EQ(r.stop_reason, StopReason::kEvaluationBudget);
  EXPECT_EQ(r.generations_run, 30u);
  EXPECT_EQ(r.evaluations, 1u + 4u * 30u);
  EXPECT_TRUE(cec::sim_check(r.best, b.spec).all_match);
}

TEST(EvolveBudget, PreTrippedTokenReturnsInitialImmediately) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  StopToken token;
  token.request_stop();
  EvolveParams params;
  params.generations = 100000;
  params.budget.stop = &token;
  const auto r = run_evolve(init, b.spec, params);
  EXPECT_EQ(r.stop_reason, StopReason::kStopRequested);
  EXPECT_EQ(r.generations_run, 0u);
  EXPECT_TRUE(cec::sim_check(r.best, b.spec).all_match);
}

TEST(EvolveBudget, DeadlineStopsPromptly) {
  const auto b = benchmarks::get("graycode4");
  const auto init = init_netlist("graycode4");
  EvolveParams params;
  params.generations = 1000000000;
  params.budget.deadline_seconds = 0.15;
  const auto r = run_evolve(init, b.spec, params);
  EXPECT_EQ(r.stop_reason, StopReason::kTimeLimit);
  EXPECT_LT(r.seconds, 5.0);
}

TEST(EvolveBudget, SigtermStopsCooperativelyViaSignalHandler) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  static StopToken token; // must outlive the signal delivery
  robust::install_signal_stop(token);
  token.reset();
  EvolveParams params;
  params.generations = 1000000;
  params.seed = 21;
  params.budget.stop = &token;
  bool raised = false;
  params.on_improvement = [&](std::uint64_t, const Fitness&) {
    if (!raised) {
      raised = true;
      std::raise(SIGTERM);
    }
  };
  const auto r = run_evolve(init, b.spec, params);
  ASSERT_TRUE(raised) << "run never improved; test premise broken";
  EXPECT_EQ(r.stop_reason, StopReason::kStopRequested);
  EXPECT_LT(r.generations_run, params.generations);
  EXPECT_TRUE(cec::sim_check(r.best, b.spec).all_match);
  EXPECT_EQ(r.best.validate(), "");
}

TEST(AnnealBudget, StopTokenAndDeadlineWork) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  StopToken token;
  token.request_stop();
  core::AnnealParams params;
  params.steps = 100000;
  params.budget.stop = &token;
  const auto r = run_anneal(init, b.spec, params);
  EXPECT_EQ(r.stop_reason, StopReason::kStopRequested);
  EXPECT_EQ(r.steps_run, 0u);
  EXPECT_TRUE(cec::sim_check(r.best, b.spec).all_match);

  core::AnnealParams dp;
  dp.steps = 1000000000;
  dp.budget.deadline_seconds = 0.1;
  const auto d = run_anneal(init, b.spec, dp);
  EXPECT_EQ(d.stop_reason, StopReason::kTimeLimit);
  EXPECT_LT(d.seconds, 5.0);
}

// ---------- Checkpoint/resume determinism ----------

TEST(Resume, KillAndResumeIsBitIdentical) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  EvolveParams base;
  base.generations = 2000;
  base.seed = 17;

  // Reference: the same run, never interrupted.
  const auto ref = run_evolve(init, b.spec, base);

  // Part 1: stop at a generation boundary, leaving a checkpoint behind.
  const std::string path = temp_path("resume.ckpt");
  EvolveParams p1 = base;
  p1.checkpoint_path = path;
  p1.checkpoint_interval = 300;
  p1.budget.max_generations = 700;
  const auto part1 = run_evolve(init, b.spec, p1);
  EXPECT_EQ(part1.stop_reason, StopReason::kGenerationBudget);
  EXPECT_EQ(part1.generations_run, 700u);

  // Part 2: continue to the end; must match the reference exactly.
  auto trace = obs::TraceSink::memory();
  EvolveParams p2 = base;
  p2.trace = trace.get();
  const auto part2 = core::evolve_resume(path, b.spec, p2);
  EXPECT_TRUE(part2.resumed);
  EXPECT_EQ(part2.stop_reason, StopReason::kCompleted);
  EXPECT_EQ(part2.generations_run, ref.generations_run);
  EXPECT_EQ(part2.evaluations, ref.evaluations);
  EXPECT_EQ(part2.improvements, ref.improvements);
  expect_same_fitness(part2.best_fitness, ref.best_fitness);
  EXPECT_EQ(io::write_rqfp_string(part2.best),
            io::write_rqfp_string(ref.best));
  // The whole chain announces itself as a resumed completion.
  EXPECT_NE(trace->buffer().find("\"reason\":\"resumed-complete\""),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(Resume, MidGenerationInterruptIsBitIdentical) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  EvolveParams base;
  base.generations = 1500;
  base.seed = 23;
  base.lambda = 4;

  const auto ref = run_evolve(init, b.spec, base);

  // Interrupt inside generation 400's λ loop; the partial generation is
  // discarded and re-run after resume.
  const std::string path = temp_path("midgen.ckpt");
  EvolveParams p1 = base;
  p1.checkpoint_path = path;
  p1.budget.max_evaluations = 1 + 4 * 400 + 3;
  const auto part1 = run_evolve(init, b.spec, p1);
  EXPECT_EQ(part1.stop_reason, StopReason::kEvaluationBudget);
  EXPECT_EQ(part1.generations_run, 400u);
  EXPECT_EQ(part1.evaluations, 1u + 4u * 400u);

  const auto part2 = core::evolve_resume(path, b.spec, base);
  EXPECT_EQ(part2.stop_reason, StopReason::kCompleted);
  EXPECT_EQ(part2.generations_run, ref.generations_run);
  EXPECT_EQ(part2.evaluations, ref.evaluations);
  EXPECT_EQ(part2.improvements, ref.improvements);
  expect_same_fitness(part2.best_fitness, ref.best_fitness);
  EXPECT_EQ(io::write_rqfp_string(part2.best),
            io::write_rqfp_string(ref.best));
  std::remove(path.c_str());
}

TEST(Resume, ChainOfInterruptionsStillMatches) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  EvolveParams base;
  base.generations = 900;
  base.seed = 5;

  const auto ref = run_evolve(init, b.spec, base);

  const std::string path = temp_path("chain.ckpt");
  EvolveParams p1 = base;
  p1.checkpoint_path = path;
  p1.budget.max_generations = 250;
  (void)run_evolve(init, b.spec, p1);

  EvolveParams p2 = base;
  p2.budget.max_generations = 600;
  const auto mid = core::evolve_resume(path, b.spec, p2);
  EXPECT_EQ(mid.stop_reason, StopReason::kGenerationBudget);
  EXPECT_EQ(mid.generations_run, 600u);

  const auto fin = core::evolve_resume(path, b.spec, base);
  EXPECT_EQ(fin.generations_run, ref.generations_run);
  EXPECT_EQ(fin.evaluations, ref.evaluations);
  EXPECT_EQ(io::write_rqfp_string(fin.best), io::write_rqfp_string(ref.best));
  std::remove(path.c_str());
}

TEST(Resume, MismatchedConfigurationIsRejected) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  const std::string path = temp_path("mismatch.ckpt");
  EvolveParams p;
  p.generations = 200;
  p.seed = 9;
  p.checkpoint_path = path;
  (void)run_evolve(init, b.spec, p);

  EvolveParams other = p;
  other.seed = 10;
  EXPECT_THROW(core::evolve_resume(path, b.spec, other),
               std::invalid_argument);
  other = p;
  other.generations = 9999;
  EXPECT_THROW(core::evolve_resume(path, b.spec, other),
               std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Resume, CorruptedCheckpointFileNeverResumesSilently) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  const std::string path = temp_path("corrupt.ckpt");
  EvolveParams p;
  p.generations = 200;
  p.seed = 9;
  p.checkpoint_path = path;
  (void)run_evolve(init, b.spec, p);

  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  util::Rng rng(77);
  robust::inject_byte_fault(text, rng, text.find('\n') + 1);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  EXPECT_THROW(core::evolve_resume(path, b.spec, p), IntegrityError);
  std::remove(path.c_str());
}

// ---------- Paranoia in the loops ----------

TEST(Paranoia, EveryAcceptanceDoesNotPerturbTheSearch) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  EvolveParams params;
  params.generations = 800;
  params.seed = 13;
  const auto plain = run_evolve(init, b.spec, params);
  params.paranoia = robust::ParanoiaLevel::kEveryAcceptance;
  const auto checked = run_evolve(init, b.spec, params);
  // Integrity checks draw nothing from the RNG: identical trajectory.
  EXPECT_EQ(checked.evaluations, plain.evaluations);
  EXPECT_EQ(checked.improvements, plain.improvements);
  EXPECT_EQ(io::write_rqfp_string(checked.best),
            io::write_rqfp_string(plain.best));
}

TEST(Paranoia, FlowBoundariesAcceptACleanRun) {
  const auto b = benchmarks::get("full_adder");
  core::FlowOptions opt;
  opt.evolve.generations = 300;
  opt.evolve.paranoia = robust::ParanoiaLevel::kBoundaries;
  const auto r = core::synthesize(b.spec, opt);
  EXPECT_TRUE(cec::sim_check(r.optimized, b.spec).all_match);
}

TEST(Flow, StopTokenSkipsOptionalPhases) {
  const auto b = benchmarks::get("decoder_2_4");
  StopToken token;
  token.request_stop();
  core::FlowOptions opt;
  opt.evolve.generations = 100000;
  opt.evolve.budget.stop = &token;
  const auto r = core::synthesize(b.spec, opt);
  // CGP was skipped but the mapping still produced a valid netlist.
  EXPECT_EQ(r.evolution.generations_run, 0u);
  EXPECT_EQ(r.optimized.validate(), "");
  EXPECT_TRUE(cec::sim_check(r.optimized, b.spec).all_match);
}

} // namespace
} // namespace rcgp
