#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "core/optimizer.hpp"
#include "core/window.hpp"
#include "rqfp/simulate.hpp"

namespace rcgp::core {
namespace {

rqfp::Netlist init_netlist(const std::string& name) {
  const auto b = benchmarks::get(name);
  FlowOptions opt;
  opt.run_cgp = false;
  return synthesize(b.spec, opt).initial;
}

/// Windowed sweep through the Optimizer facade (Algorithm::kWindow); the
/// per-window (1+λ) parameters ride along in `params.evolve`.
rqfp::Netlist run_window(const rqfp::Netlist& net,
                         std::span<const tt::TruthTable> spec,
                         const WindowParams& params, WindowStats* stats) {
  OptimizerOptions oo;
  oo.algorithm = Algorithm::kWindow;
  oo.window = params;
  oo.evolve = params.evolve;
  const auto r = Optimizer(oo).run(net, spec);
  if (stats != nullptr) {
    *stats = r.window;
  }
  return r.best;
}

TEST(Window, ExtractCoversGatesAndBoundaries) {
  const auto net = init_netlist("graycode4");
  Window w;
  ASSERT_TRUE(extract_window(net, 0, 4, 10, w));
  EXPECT_EQ(w.num_gates, 4u);
  EXPECT_EQ(w.sub.num_gates(), 4u);
  EXPECT_EQ(w.sub.num_pos(), w.boundary_outputs.size());
  EXPECT_EQ(w.sub.num_pis(), w.boundary_inputs.size());
  // Boundary inputs are outer ports before the window.
  for (const auto p : w.boundary_inputs) {
    EXPECT_LT(p, net.port_of(0, 0));
  }
}

TEST(Window, ExtractRejectsTooManyInputs) {
  const auto net = init_netlist("hwb8");
  Window w;
  // A zero-input budget can never be satisfied.
  EXPECT_FALSE(extract_window(net, 0, net.num_gates(), 0, w));
}

TEST(Window, SpliceIdentityIsNoOp) {
  const auto net = init_netlist("ham3");
  Window w;
  ASSERT_TRUE(extract_window(net, 1, 3, 10, w));
  const auto spliced = splice_window(net, w, w.sub);
  EXPECT_EQ(spliced.num_gates(), net.num_gates());
  EXPECT_EQ(rqfp::simulate(spliced), rqfp::simulate(net));
  EXPECT_EQ(spliced.validate(), "");
}

TEST(Window, SubNetlistComputesWindowFunction) {
  const auto net = init_netlist("decoder_2_4");
  Window w;
  ASSERT_TRUE(extract_window(net, 0, net.num_gates(), 10, w));
  // A window spanning everything has the PIs as boundary inputs and the
  // PO drivers among boundary outputs.
  EXPECT_EQ(w.sub.num_pis(), net.num_pis());
  const auto sub_tts = rqfp::simulate(w.sub);
  EXPECT_EQ(sub_tts.size(), w.boundary_outputs.size());
}

TEST(Window, SpliceInterfaceMismatchThrows) {
  const auto net = init_netlist("ham3");
  Window w;
  ASSERT_TRUE(extract_window(net, 0, 2, 10, w));
  rqfp::Netlist wrong(w.sub.num_pis() + 1);
  EXPECT_THROW(splice_window(net, w, wrong), std::invalid_argument);
}

class WindowOptimize : public ::testing::TestWithParam<const char*> {};

TEST_P(WindowOptimize, PreservesFunctionAndNeverGrows) {
  const auto b = benchmarks::get(GetParam());
  const auto net = init_netlist(GetParam());
  WindowParams params;
  params.window_gates = 8;
  params.evolve.generations = 1500;
  params.evolve.seed = 5;
  WindowStats stats;
  const auto optimized = run_window(net, b.spec, params, &stats);
  EXPECT_EQ(optimized.validate(), "");
  EXPECT_TRUE(cec::sim_check(optimized, b.spec).all_match) << GetParam();
  EXPECT_LE(stats.gates_after, stats.gates_before);
  EXPECT_GT(stats.windows_tried, 0u);
}

INSTANTIATE_TEST_SUITE_P(Circuits, WindowOptimize,
                         ::testing::Values("decoder_2_4", "graycode4",
                                           "intdiv4", "mod5adder"));

TEST(Window, ScalesToCircuitsTooWideForGlobalSimulation) {
  // Windowing never simulates the whole circuit, so it also works when
  // the global PI count would make exhaustive global tables expensive.
  const auto b = benchmarks::get("hwb8");
  const auto net = init_netlist("hwb8");
  WindowParams params;
  params.window_gates = 10;
  params.max_window_inputs = 8;
  params.evolve.generations = 300;
  params.evolve.seed = 1;
  WindowStats stats;
  const auto optimized = run_window(net, b.spec, params, &stats);
  EXPECT_EQ(optimized.validate(), "");
  EXPECT_TRUE(cec::sim_check(optimized, b.spec).all_match);
}

class ExactPolish : public ::testing::TestWithParam<const char*> {};

TEST_P(ExactPolish, ReachesOrBeatsCgpResult) {
  const auto b = benchmarks::get(GetParam());
  FlowOptions opt;
  opt.evolve.generations = 10000;
  opt.evolve.seed = 2;
  const auto r = synthesize(b.spec, opt);
  WindowStats stats;
  const auto polished = exact_polish(r.optimized, {}, &stats);
  EXPECT_EQ(polished.validate(), "") << GetParam();
  EXPECT_TRUE(cec::sim_check(polished, b.spec).all_match) << GetParam();
  EXPECT_LE(polished.num_gates(), r.optimized.num_gates()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Circuits, ExactPolish,
                         ::testing::Values("decoder_2_4", "full_adder",
                                           "4gt10"));

TEST(ExactPolish, DecoderReachesPaperOptimum) {
  // The hybrid CGP+exact flow must reach the paper's exact optimum of 3
  // gates for decoder_2_4 even at a small CGP budget.
  const auto b = benchmarks::get("decoder_2_4");
  FlowOptions opt;
  opt.evolve.generations = 30000;
  opt.evolve.seed = 5;
  opt.run_exact_polish = true;
  const auto r = synthesize(b.spec, opt);
  EXPECT_LE(r.optimized_cost.n_r, 4u);
  EXPECT_TRUE(cec::sim_check(r.optimized, b.spec).all_match);
}

TEST(Window, MultiplePassesMonotone) {
  const auto b = benchmarks::get("intdiv4");
  const auto net = init_netlist("intdiv4");
  WindowParams one;
  one.window_gates = 8;
  one.evolve.generations = 800;
  one.passes = 1;
  WindowStats s1;
  const auto r1 = run_window(net, b.spec, one, &s1);
  WindowParams two = one;
  two.passes = 2;
  WindowStats s2;
  const auto r2 = run_window(net, b.spec, two, &s2);
  EXPECT_LE(r2.num_gates(), r1.num_gates());
  EXPECT_TRUE(cec::sim_check(r2, b.spec).all_match);
}

} // namespace
} // namespace rcgp::core
