#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sat/cnf.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace rcgp::sat {
namespace {

TEST(Lit, PackingAndNegation) {
  const Lit a(3, false);
  EXPECT_EQ(a.var(), 3);
  EXPECT_FALSE(a.negated());
  EXPECT_EQ((~a).var(), 3);
  EXPECT_TRUE((~a).negated());
  EXPECT_EQ(~~a, a);
  EXPECT_EQ(a.to_dimacs(), 4);
  EXPECT_EQ((~a).to_dimacs(), -4);
  EXPECT_EQ(Lit::from_dimacs(-4), ~a);
}

TEST(Luby, Sequence) {
  const std::uint64_t expect[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (std::size_t i = 0; i < std::size(expect); ++i) {
    EXPECT_EQ(luby(i), expect[i]) << i;
  }
}

TEST(Solver, EmptyIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Solver, UnitPropagation) {
  Solver s;
  const Lit a(s.new_var(), false);
  const Lit b(s.new_var(), false);
  s.add_clause({a});
  s.add_clause({~a, b});
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Lit a(s.new_var(), false);
  s.add_clause({a});
  EXPECT_FALSE(s.add_clause({~a}));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, TautologyIgnored) {
  Solver s;
  const Lit a(s.new_var(), false);
  EXPECT_TRUE(s.add_clause({a, ~a}));
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Solver, DuplicateLiteralsCollapsed) {
  Solver s;
  const Lit a(s.new_var(), false);
  s.add_clause({a, a, a});
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Solver, ThreeVarUnsatCore) {
  // (a|b)(a|~b)(~a|c)(~a|~c) is UNSAT.
  Solver s;
  const Lit a(s.new_var(), false);
  const Lit b(s.new_var(), false);
  const Lit c(s.new_var(), false);
  s.add_clause({a, b});
  s.add_clause({a, ~b});
  s.add_clause({~a, c});
  s.add_clause({~a, ~c});
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, AssumptionsSatAndConflicting) {
  Solver s;
  const Lit a(s.new_var(), false);
  const Lit b(s.new_var(), false);
  s.add_clause({a, b});
  std::vector<Lit> assume{~a};
  EXPECT_EQ(s.solve(assume), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(b));
  std::vector<Lit> both{~a, ~b};
  EXPECT_EQ(s.solve(both), SolveResult::kUnsat);
  // Solver remains usable without assumptions.
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Solver, PigeonholePrinciple) {
  // n+1 pigeons into n holes is UNSAT; exercises clause learning.
  for (int holes : {3, 4, 5}) {
    Solver s;
    const int pigeons = holes + 1;
    std::vector<std::vector<Lit>> x(pigeons, std::vector<Lit>(holes));
    for (auto& row : x) {
      for (auto& l : row) {
        l = Lit(s.new_var(), false);
      }
    }
    for (int p = 0; p < pigeons; ++p) {
      s.add_clause(std::span<const Lit>(x[p]));
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < pigeons; ++p1) {
        for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
          s.add_clause({~x[p1][h], ~x[p2][h]});
        }
      }
    }
    EXPECT_EQ(s.solve(), SolveResult::kUnsat) << holes;
    EXPECT_GT(s.num_conflicts(), 0u);
  }
}

TEST(Solver, ConflictBudgetReturnsUnknown) {
  Solver s;
  const int holes = 8;
  const int pigeons = holes + 1;
  std::vector<std::vector<Lit>> x(pigeons, std::vector<Lit>(holes));
  for (auto& row : x) {
    for (auto& l : row) {
      l = Lit(s.new_var(), false);
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    s.add_clause(std::span<const Lit>(x[p]));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause({~x[p1][h], ~x[p2][h]});
      }
    }
  }
  SolveLimits limits;
  limits.max_conflicts = 5;
  EXPECT_EQ(s.solve({}, limits), SolveResult::kUnknown);
}

TEST(Solver, RandomSatInstancesHaveValidModels) {
  util::Rng rng(17);
  for (int round = 0; round < 25; ++round) {
    Solver s;
    const int nv = 12;
    for (int i = 0; i < nv; ++i) {
      s.new_var();
    }
    // Plant a solution and generate clauses satisfied by it.
    std::vector<bool> planted(nv);
    for (auto&& p : planted) {
      p = rng.chance(0.5);
    }
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < 60; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k) {
        const int v = static_cast<int>(rng.below(nv));
        clause.push_back(Lit(v, rng.chance(0.5)));
      }
      // Force at least one literal true under the planted assignment
      // (positive literal when the planted value is true).
      const int v = clause[0].var();
      clause[0] = Lit(v, !planted[v]);
      clauses.push_back(clause);
      s.add_clause(std::span<const Lit>(clause));
    }
    ASSERT_EQ(s.solve(), SolveResult::kSat) << round;
    for (const auto& clause : clauses) {
      bool ok = false;
      for (const Lit l : clause) {
        if (s.model_value(l)) {
          ok = true;
          break;
        }
      }
      EXPECT_TRUE(ok) << "model violates a clause in round " << round;
    }
  }
}

TEST(Solver, ManySolveCallsReuseState) {
  Solver s;
  const Lit a(s.new_var(), false);
  const Lit b(s.new_var(), false);
  s.add_clause({a, b});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(s.solve(), SolveResult::kSat);
  }
  s.add_clause({~a});
  s.add_clause({~b});
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

// ---------- CnfBuilder gates ----------

class CnfGateTest : public ::testing::Test {
protected:
  /// Checks `gate` against `truth` on all 4 input combinations by solving
  /// with assumptions.
  void check2(Lit (CnfBuilder::*make)(Lit, Lit), unsigned truth) {
    Solver s;
    CnfBuilder b(s);
    const Lit x = b.new_lit();
    const Lit y = b.new_lit();
    const Lit out = (b.*make)(x, y);
    for (unsigned i = 0; i < 4; ++i) {
      std::vector<Lit> assume{i & 1 ? x : ~x, i & 2 ? y : ~y};
      ASSERT_EQ(s.solve(assume), SolveResult::kSat);
      EXPECT_EQ(s.model_value(out), ((truth >> i) & 1) != 0)
          << "input " << i;
    }
  }
};

TEST_F(CnfGateTest, And) { check2(&CnfBuilder::make_and, 0b1000); }
TEST_F(CnfGateTest, Or) { check2(&CnfBuilder::make_or, 0b1110); }
TEST_F(CnfGateTest, Xor) { check2(&CnfBuilder::make_xor, 0b0110); }

TEST(CnfBuilder, Majority) {
  Solver s;
  CnfBuilder b(s);
  const Lit x = b.new_lit();
  const Lit y = b.new_lit();
  const Lit z = b.new_lit();
  const Lit m = b.make_maj(x, y, z);
  for (unsigned i = 0; i < 8; ++i) {
    std::vector<Lit> assume{i & 1 ? x : ~x, i & 2 ? y : ~y, i & 4 ? z : ~z};
    ASSERT_EQ(s.solve(assume), SolveResult::kSat);
    const int pop = (i & 1) + ((i >> 1) & 1) + ((i >> 2) & 1);
    EXPECT_EQ(s.model_value(m), pop >= 2) << i;
  }
}

TEST(CnfBuilder, Mux) {
  Solver s;
  CnfBuilder b(s);
  const Lit sel = b.new_lit();
  const Lit t = b.new_lit();
  const Lit e = b.new_lit();
  const Lit m = b.make_mux(sel, t, e);
  for (unsigned i = 0; i < 8; ++i) {
    std::vector<Lit> assume{i & 1 ? sel : ~sel, i & 2 ? t : ~t,
                            i & 4 ? e : ~e};
    ASSERT_EQ(s.solve(assume), SolveResult::kSat);
    const bool want = (i & 1) ? ((i >> 1) & 1) : ((i >> 2) & 1);
    EXPECT_EQ(s.model_value(m), want) << i;
  }
}

TEST(CnfBuilder, WideAndOr) {
  Solver s;
  CnfBuilder b(s);
  std::vector<Lit> in;
  for (int i = 0; i < 5; ++i) {
    in.push_back(b.new_lit());
  }
  const Lit all = b.make_and(std::span<const Lit>(in));
  const Lit any = b.make_or(std::span<const Lit>(in));
  std::vector<Lit> assume;
  for (const Lit l : in) {
    assume.push_back(l);
  }
  ASSERT_EQ(s.solve(assume), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(all));
  EXPECT_TRUE(s.model_value(any));
  assume[2] = ~assume[2];
  ASSERT_EQ(s.solve(assume), SolveResult::kSat);
  EXPECT_FALSE(s.model_value(all));
  EXPECT_TRUE(s.model_value(any));
  for (auto& l : assume) {
    l = Lit(l.var(), true);
  }
  ASSERT_EQ(s.solve(assume), SolveResult::kSat);
  EXPECT_FALSE(s.model_value(any));
}

TEST(CnfBuilder, EmptyAndIsTrue) {
  Solver s;
  CnfBuilder b(s);
  const Lit t = b.make_and(std::span<const Lit>{});
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(t));
}

TEST(CnfBuilder, ConstantsAndEquality) {
  Solver s;
  CnfBuilder b(s);
  const Lit x = b.new_lit();
  b.assert_equal(x, b.true_lit());
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(x));
  const Lit y = b.new_lit();
  b.assert_equal(y, b.false_lit());
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_FALSE(s.model_value(y));
}

TEST(CnfBuilder, ExactlyOne) {
  Solver s;
  CnfBuilder b(s);
  std::vector<Lit> in;
  for (int i = 0; i < 4; ++i) {
    in.push_back(b.new_lit());
  }
  b.exactly_one(std::span<const Lit>(in));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  int count = 0;
  for (const Lit l : in) {
    count += s.model_value(l) ? 1 : 0;
  }
  EXPECT_EQ(count, 1);
  // Forcing two true must be UNSAT.
  std::vector<Lit> assume{in[0], in[1]};
  EXPECT_EQ(s.solve(assume), SolveResult::kUnsat);
  // Forcing all false must be UNSAT.
  std::vector<Lit> none;
  for (const Lit l : in) {
    none.push_back(~l);
  }
  EXPECT_EQ(s.solve(none), SolveResult::kUnsat);
}

// ---------- DIMACS ----------

TEST(Dimacs, ParseAndSolve) {
  const std::string text = R"(c example
p cnf 3 4
1 2 0
1 -2 0
-1 3 0
-1 -3 0
)";
  const Cnf cnf = parse_dimacs_string(text);
  EXPECT_EQ(cnf.num_vars, 3);
  EXPECT_EQ(cnf.clauses.size(), 4u);
  Solver s;
  EXPECT_TRUE(load_into_solver(cnf, s));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Dimacs, RoundTrip) {
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.clauses = {{1, -2}, {2}};
  std::ostringstream out;
  write_dimacs(cnf, out);
  const Cnf back = parse_dimacs_string(out.str());
  EXPECT_EQ(back.num_vars, cnf.num_vars);
  EXPECT_EQ(back.clauses, cnf.clauses);
}

TEST(Dimacs, Malformed) {
  EXPECT_THROW(parse_dimacs_string("1 2 0\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs_string("p cnf 1 1\n5 0\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs_string(""), std::runtime_error);
}

} // namespace
} // namespace rcgp::sat
