#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "aig/aig_simulate.hpp"
#include "benchmarks/benchmarks.hpp"
#include "cec/sim_cec.hpp"
#include "core/anneal.hpp"
#include "core/chromosome.hpp"
#include "core/evolve.hpp"
#include "core/fitness.hpp"
#include "core/flow.hpp"
#include "core/mutation.hpp"
#include "core/optimizer.hpp"
#include "core/shrink.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "rqfp/sim_batch.hpp"
#include "rqfp/simd.hpp"
#include "rqfp/simulate.hpp"
#include "rqfp/splitter.hpp"
#include "util/rng.hpp"

namespace rcgp::core {
namespace {

rqfp::Netlist and_netlist() {
  rqfp::Netlist net(2);
  const auto g = net.add_gate({1, 2, rqfp::kConstPort},
                              rqfp::InvConfig::from_rows(5, 6, 4));
  net.add_po(net.port_of(g, 2));
  return net;
}

/// Builds the initialization netlist of a named benchmark.
rqfp::Netlist init_netlist(const std::string& name) {
  const auto b = benchmarks::get(name);
  FlowOptions opt;
  opt.run_cgp = false;
  return synthesize(b.spec, opt).initial;
}

// The search loops are reached exclusively through the Optimizer facade;
// these helpers keep the per-algorithm tests below terse.

EvolveResult run_evolve(const rqfp::Netlist& init,
                        std::span<const tt::TruthTable> spec,
                        const EvolveParams& params) {
  OptimizerOptions oo;
  oo.evolve = params;
  return Optimizer(oo).run(init, spec).evolve;
}

EvolveResult run_multistart(const rqfp::Netlist& init,
                            std::span<const tt::TruthTable> spec,
                            const EvolveParams& params, unsigned restarts) {
  OptimizerOptions oo;
  oo.algorithm = Algorithm::kMultistart;
  oo.evolve = params;
  oo.restarts = restarts;
  return Optimizer(oo).run(init, spec).evolve;
}

AnnealResult run_anneal(const rqfp::Netlist& init,
                        std::span<const tt::TruthTable> spec,
                        const AnnealParams& params) {
  OptimizerOptions oo;
  oo.algorithm = Algorithm::kAnneal;
  oo.anneal = params;
  return Optimizer(oo).run(init, spec).anneal;
}

// ---------- Fitness ----------

TEST(Fitness, LexicographicOrder) {
  Fitness bad;
  bad.success_rate = 0.9;
  Fitness good;
  good.success_rate = 1.0;
  good.n_r = 10;
  good.n_g = 5;
  good.n_b = 3;
  EXPECT_TRUE(good.better_or_equal(bad));
  EXPECT_FALSE(bad.better_or_equal(good));

  Fitness fewer_gates = good;
  fewer_gates.n_r = 9;
  fewer_gates.n_g = 99; // gates dominate garbage
  EXPECT_TRUE(fewer_gates.better_or_equal(good));
  EXPECT_FALSE(good.better_or_equal(fewer_gates));

  Fitness fewer_garbage = good;
  fewer_garbage.n_g = 4;
  fewer_garbage.n_b = 99; // garbage dominates buffers
  EXPECT_TRUE(fewer_garbage.better_or_equal(good));

  Fitness fewer_buffers = good;
  fewer_buffers.n_b = 2;
  EXPECT_TRUE(fewer_buffers.better_or_equal(good));
  EXPECT_TRUE(fewer_buffers.strictly_better(good));
  EXPECT_TRUE(good.better_or_equal(good)); // reflexive
  EXPECT_FALSE(good.strictly_better(good));
}

TEST(Fitness, JjObjectiveOrders) {
  Fitness a;
  a.success_rate = 1.0;
  a.objective = Objective::kJjCount;
  a.n_r = 5;
  a.n_b = 0; // 120 JJs
  Fitness b = a;
  b.n_r = 4;
  b.n_b = 7; // 124 JJs
  // Under the paper order b wins (fewer gates); under JJ order a wins.
  EXPECT_TRUE(a.better_or_equal(b));
  EXPECT_FALSE(b.better_or_equal(a));
  a.objective = Objective::kPaperLexicographic;
  b.objective = Objective::kPaperLexicographic;
  EXPECT_TRUE(b.better_or_equal(a));
  EXPECT_EQ(a.jjs(), 120u);
  EXPECT_EQ(b.jjs(), 124u);
}

TEST(Fitness, JjObjectiveFlowStaysCorrect) {
  const auto b = benchmarks::get("decoder_2_4");
  FlowOptions opt;
  opt.evolve.generations = 8000;
  opt.evolve.fitness.objective = Objective::kJjCount;
  opt.evolve.seed = 13;
  const auto r = synthesize(b.spec, opt);
  EXPECT_TRUE(cec::sim_check(r.optimized, b.spec).all_match);
  EXPECT_LE(r.optimized_cost.jjs, r.initial_cost.jjs);
}

TEST(Fitness, EvaluateCorrectNetlist) {
  const auto net = and_netlist();
  std::vector<tt::TruthTable> spec{tt::TruthTable::projection(2, 0) &
                                   tt::TruthTable::projection(2, 1)};
  const Fitness f = evaluate(net, spec);
  EXPECT_TRUE(f.functionally_correct());
  EXPECT_EQ(f.n_r, 1u);
  EXPECT_EQ(f.n_g, 2u);
}

TEST(Fitness, EvaluateWrongNetlistSkipsCost) {
  const auto net = and_netlist();
  std::vector<tt::TruthTable> spec{tt::TruthTable::projection(2, 0) |
                                   tt::TruthTable::projection(2, 1)};
  const Fitness f = evaluate(net, spec);
  EXPECT_FALSE(f.functionally_correct());
  EXPECT_LT(f.success_rate, 1.0);
  EXPECT_EQ(f.n_r, 0u); // untouched
}

// ---------- Chromosome ----------

TEST(Chromosome, GeneCountAndMapping) {
  const auto net = and_netlist();
  EXPECT_EQ(num_genes(net), 5u); // 4 per gate + 1 PO
  const auto g0 = gene_at(net, 0);
  EXPECT_EQ(g0.kind, GeneRef::Kind::kGateInput);
  EXPECT_EQ(g0.slot, 0u);
  const auto g3 = gene_at(net, 3);
  EXPECT_EQ(g3.kind, GeneRef::Kind::kGateConfig);
  const auto g4 = gene_at(net, 4);
  EXPECT_EQ(g4.kind, GeneRef::Kind::kPrimaryOutput);
  EXPECT_EQ(g4.po, 0u);
  EXPECT_THROW(gene_at(net, 5), std::out_of_range);
}

TEST(Chromosome, GenotypeStringMatchesPaperNotation) {
  const auto net = and_netlist();
  const auto s = to_genotype_string(net);
  EXPECT_NE(s.find("(1, 2, 0, "), std::string::npos);
  EXPECT_NE(s.find("(5)"), std::string::npos); // PO bound to port 5
}

// ---------- Mutation ----------

class MutationInvariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationInvariant, PreservesSingleFanout) {
  auto net = init_netlist("decoder_2_4");
  ASSERT_EQ(net.validate(), "");
  util::Rng rng(GetParam());
  MutationParams params;
  params.mu = 1.0;
  for (int round = 0; round < 50; ++round) {
    mutate(net, rng, params);
    ASSERT_EQ(net.validate(), "") << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationInvariant,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Mutation, ChangesGenes) {
  auto net = init_netlist("graycode4");
  util::Rng rng(42);
  MutationParams params;
  params.mu = 1.0;
  const auto before = net;
  MutationStats total;
  for (int i = 0; i < 10; ++i) {
    const auto stats = mutate(net, rng, params);
    total.genes_changed += stats.genes_changed;
  }
  EXPECT_GT(total.genes_changed, 0u);
  EXPECT_FALSE(net == before);
}

TEST(Mutation, RespectsLowMutationRate) {
  auto net = init_netlist("decoder_2_4");
  util::Rng rng(7);
  MutationParams params;
  params.mu = 1.0 / num_genes(net); // at most one gene
  for (int i = 0; i < 20; ++i) {
    const auto stats = mutate(net, rng, params);
    EXPECT_LE(stats.genes_changed, 1u);
  }
}

TEST(Mutation, GateCountIsStable) {
  // Point mutation never adds or removes gates (only shrink does).
  auto net = init_netlist("ham3");
  const auto gates = net.num_gates();
  util::Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    mutate(net, rng, {});
    EXPECT_EQ(net.num_gates(), gates);
  }
}

// ---------- Deterministic reconnection primitives (§3.2.2 semantics) ----

TEST(Reconnect, DirectAssignToUnconsumedPort) {
  // Gate 1 reads gate 0's output 2; outputs 0 and 1 of gate 0 are free.
  rqfp::Netlist net(2);
  const auto g0 = net.add_gate({1, 2, 0}, rqfp::InvConfig::reversible());
  const auto g1 = net.add_gate({net.port_of(g0, 2), 0, 0},
                               rqfp::InvConfig::splitter());
  net.add_po(net.port_of(g1, 0));
  const auto outcome =
      reconnect_input(net, g1, 0, net.port_of(g0, 1));
  EXPECT_EQ(outcome, ReconnectOutcome::kDirect);
  EXPECT_EQ(net.gate(g1).in[0], net.port_of(g0, 1));
  EXPECT_EQ(net.validate(), "");
}

TEST(Reconnect, SwapWithExistingConsumer) {
  // Both PIs consumed by gate 0; reconnecting slot 0 to PI 2 must swap.
  rqfp::Netlist net(2);
  const auto g0 = net.add_gate({1, 2, 0}, rqfp::InvConfig::reversible());
  net.add_po(net.port_of(g0, 2));
  const auto outcome = reconnect_input(net, g0, 0, 2);
  EXPECT_EQ(outcome, ReconnectOutcome::kSwapped);
  EXPECT_EQ(net.gate(g0).in[0], 2u);
  EXPECT_EQ(net.gate(g0).in[1], 1u);
  EXPECT_EQ(net.validate(), "");
}

TEST(Reconnect, ConstTargetAlwaysDirect) {
  rqfp::Netlist net(2);
  const auto g0 = net.add_gate({1, 2, 0}, rqfp::InvConfig::reversible());
  net.add_po(net.port_of(g0, 2));
  EXPECT_EQ(reconnect_input(net, g0, 0, rqfp::kConstPort),
            ReconnectOutcome::kDirect);
  // PI 1 is now unconsumed; reconnecting back is a direct assign.
  EXPECT_EQ(reconnect_input(net, g0, 0, 1), ReconnectOutcome::kDirect);
  EXPECT_EQ(net.validate(), "");
}

TEST(Reconnect, NoChangeOnSameTarget) {
  rqfp::Netlist net(2);
  const auto g0 = net.add_gate({1, 2, 0}, rqfp::InvConfig::reversible());
  net.add_po(net.port_of(g0, 2));
  EXPECT_EQ(reconnect_input(net, g0, 0, 1), ReconnectOutcome::kNoChange);
}

TEST(Reconnect, InfeasibleSwapLeavesNetlistUntouched) {
  // Gate 0 consumes PI 1. Gate 1's output feeds the PO. Reconnecting the
  // PO to PI 1 would hand gate 0 the PO's old value — a port produced
  // after gate 0 — which is infeasible.
  rqfp::Netlist net(1);
  const auto g0 = net.add_gate({1, 0, 0}, rqfp::InvConfig::splitter());
  const auto g1 = net.add_gate({net.port_of(g0, 0), 0, 0},
                               rqfp::InvConfig::splitter());
  net.add_po(net.port_of(g1, 0));
  const auto before = net;
  EXPECT_EQ(reconnect_input(net, g0, 0, 0), ReconnectOutcome::kDirect);
  net = before;
  const auto outcome = reconnect_po(net, 0, 1);
  EXPECT_EQ(outcome, ReconnectOutcome::kInfeasible);
  EXPECT_TRUE(net == before);
}

TEST(Reconnect, PoSwapWithAnotherPo) {
  rqfp::Netlist net(2);
  const auto g0 = net.add_gate({1, 2, 0}, rqfp::InvConfig::reversible());
  net.add_po(net.port_of(g0, 0));
  net.add_po(net.port_of(g0, 2));
  const auto outcome = reconnect_po(net, 0, net.po_at(1));
  EXPECT_EQ(outcome, ReconnectOutcome::kSwapped);
  EXPECT_EQ(net.po_at(0), net.port_of(g0, 2));
  EXPECT_EQ(net.po_at(1), net.port_of(g0, 0));
  EXPECT_EQ(net.validate(), "");
}

TEST(Reconnect, ForwardReferenceThrows) {
  rqfp::Netlist net(1);
  const auto g0 = net.add_gate({1, 0, 0}, rqfp::InvConfig::splitter());
  net.add_po(net.port_of(g0, 0));
  EXPECT_THROW(reconnect_input(net, g0, 0, net.port_of(g0, 1)),
               std::invalid_argument);
  EXPECT_THROW(reconnect_po(net, 0, net.first_free_port()),
               std::invalid_argument);
}

// ---------- Shrink ----------

TEST(Shrink, RemovesUselessGatesOnly) {
  rqfp::Netlist net(2);
  const auto g0 = net.add_gate({1, 2, 0}, rqfp::InvConfig::reversible());
  net.add_gate({0, 0, 0}, rqfp::InvConfig()); // useless
  net.add_po(net.port_of(g0, 2));
  EXPECT_EQ(count_useless_gates(net), 1u);
  const auto before = rqfp::simulate(net);
  const auto small = shrink(net);
  EXPECT_EQ(small.num_gates(), 1u);
  EXPECT_EQ(count_useless_gates(small), 0u);
  EXPECT_EQ(rqfp::simulate(small), before);
}

TEST(Shrink, CascadingDeadChains) {
  rqfp::Netlist net(1);
  const auto g0 = net.add_gate({0, 1, 0}, rqfp::InvConfig::splitter());
  const auto g1 = net.add_gate({0, net.port_of(g0, 0), 0},
                               rqfp::InvConfig::splitter());
  net.add_gate({0, net.port_of(g1, 0), 0}, rqfp::InvConfig::splitter());
  net.add_po(net.port_of(g0, 1));
  // g2 is dead; g1 only feeds g2 so it dies transitively; g0 remains.
  const auto small = shrink(net);
  EXPECT_EQ(small.num_gates(), 1u);
}

TEST(Shrink, PaperExampleChromosomeLength) {
  // Fig. 3(b)->(c): removing one useless 4-gene gate shortens the
  // chromosome by 4 (20 -> 16 for the decoder example).
  auto net = init_netlist("decoder_2_4");
  rqfp::Netlist with_dead = net;
  with_dead.add_gate({0, 0, 0}, rqfp::InvConfig());
  EXPECT_EQ(num_genes(with_dead), num_genes(net) + 4);
  EXPECT_EQ(num_genes(shrink(with_dead)), num_genes(net));
}

// ---------- Evolution ----------

TEST(Evolve, RejectsWrongInitialNetlist) {
  const auto net = and_netlist();
  std::vector<tt::TruthTable> wrong{tt::TruthTable::projection(2, 0) ^
                                    tt::TruthTable::projection(2, 1)};
  EvolveParams params;
  params.generations = 10;
  EXPECT_THROW(run_evolve(net, wrong, params), std::invalid_argument);
}

TEST(Evolve, KeepsFunctionalCorrectness) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  EvolveParams params;
  params.generations = 2000;
  params.seed = 11;
  const auto result = run_evolve(init, b.spec, params);
  EXPECT_EQ(result.best.validate(), "");
  const auto sim = cec::sim_check(result.best, b.spec);
  EXPECT_TRUE(sim.all_match);
  EXPECT_TRUE(result.best_fitness.functionally_correct());
}

TEST(Evolve, NeverWorseThanInitialization) {
  for (const char* name : {"decoder_2_4", "full_adder", "4gt10"}) {
    const auto b = benchmarks::get(name);
    const auto init = init_netlist(name);
    const Fitness init_fit = evaluate(init, b.spec);
    EvolveParams params;
    params.generations = 1500;
    params.seed = 5;
    const auto result = run_evolve(init, b.spec, params);
    EXPECT_TRUE(result.best_fitness.better_or_equal(init_fit)) << name;
    EXPECT_LE(result.best_fitness.n_r, init_fit.n_r) << name;
  }
}

TEST(Evolve, ImprovesDecoderLikeThePaper) {
  // The paper's headline: CGP sharply reduces gates and garbage vs the
  // initialization baseline. With a modest budget the decoder must drop
  // below its 8-gate/10-garbage initialization.
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  EvolveParams params;
  params.generations = 30000;
  params.seed = 5;
  const auto result = run_evolve(init, b.spec, params);
  EXPECT_LT(result.best_fitness.n_r, 8u);
  EXPECT_LT(result.best_fitness.n_g, 10u);
}

TEST(Evolve, StagnationStopsEarly) {
  const auto b = benchmarks::get("4gt10");
  const auto init = init_netlist("4gt10");
  EvolveParams params;
  params.generations = 1000000;
  params.stagnation_limit = 200;
  params.seed = 3;
  const auto result = run_evolve(init, b.spec, params);
  EXPECT_LT(result.generations_run, params.generations);
  EXPECT_EQ(result.stop_reason, robust::StopReason::kStagnation);
}

TEST(Evolve, StagnationCounterResetsOnImprovement) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  EvolveParams params;
  params.generations = 50000;
  params.stagnation_limit = 300;
  params.seed = 21;
  std::vector<std::uint64_t> improvement_gens;
  params.on_improvement = [&](std::uint64_t gen, const Fitness&) {
    improvement_gens.push_back(gen);
  };
  const auto r = run_evolve(init, b.spec, params);
  ASSERT_EQ(r.stop_reason, robust::StopReason::kStagnation);
  ASSERT_FALSE(improvement_gens.empty());
  // The counter reset on every improvement, so the run survived past the
  // naive limit and stopped exactly `stagnation_limit` generations after
  // the last improvement (that generation itself included in the count).
  EXPECT_GT(r.generations_run, params.stagnation_limit);
  EXPECT_EQ(r.generations_run,
            improvement_gens.back() + params.stagnation_limit + 1);
  EXPECT_EQ(static_cast<std::uint64_t>(improvement_gens.size()),
            r.improvements);
}

TEST(Evolve, TimeLimitStops) {
  const auto b = benchmarks::get("graycode4");
  const auto init = init_netlist("graycode4");
  EvolveParams params;
  params.generations = 1000000000;
  params.time_limit_seconds = 0.2;
  const auto result = run_evolve(init, b.spec, params);
  EXPECT_LT(result.seconds, 5.0);
  EXPECT_LT(result.generations_run, params.generations);
  EXPECT_EQ(result.stop_reason, robust::StopReason::kTimeLimit);
}

TEST(Evolve, SatVerificationPathAccepts) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  EvolveParams params;
  params.generations = 3000;
  params.sat_verify_improvements = true;
  params.seed = 9;
  const auto result = run_evolve(init, b.spec, params);
  EXPECT_GT(result.sat_confirmations, 0u);
  EXPECT_TRUE(cec::sim_check(result.best, b.spec).all_match);
}

TEST(Evolve, ImprovementCallbackFires) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  EvolveParams params;
  params.generations = 5000;
  params.seed = 21;
  int calls = 0;
  params.on_improvement = [&](std::uint64_t, const Fitness&) { ++calls; };
  const auto result = run_evolve(init, b.spec, params);
  EXPECT_EQ(static_cast<std::uint64_t>(calls), result.improvements);
}

/// Splits a JSONL buffer into its non-empty lines.
std::vector<std::string> jsonl_lines(const std::string& buffer) {
  std::vector<std::string> lines;
  std::istringstream in(buffer);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

Fitness fitness_of_event(const std::string& line) {
  Fitness f;
  f.success_rate = *obs::json::number_field(line, "success_rate");
  f.n_r = static_cast<std::uint32_t>(*obs::json::number_field(line, "n_r"));
  f.n_g = static_cast<std::uint32_t>(*obs::json::number_field(line, "n_g"));
  f.n_b = static_cast<std::uint32_t>(*obs::json::number_field(line, "n_b"));
  return f;
}

TEST(Evolve, TraceEventsMatchResultCounters) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  auto sink = obs::TraceSink::memory();
  EvolveParams params;
  params.generations = 5000;
  params.seed = 21;
  params.trace = sink.get();
  params.trace_heartbeat = 1000;
  const auto result = run_evolve(init, b.spec, params);

  const auto lines = jsonl_lines(sink->buffer());
  ASSERT_FALSE(lines.empty());
  std::vector<std::string> improvements;
  std::uint64_t heartbeats = 0;
  for (const auto& line : lines) {
    ASSERT_TRUE(obs::json::validate(line)) << line;
    const auto type = obs::json::string_field(line, "event");
    ASSERT_TRUE(type.has_value()) << line;
    if (*type == "improvement") {
      improvements.push_back(line);
    } else if (*type == "heartbeat") {
      ++heartbeats;
    }
  }
  EXPECT_EQ(obs::json::string_field(lines.front(), "event"), "run_start");
  EXPECT_EQ(obs::json::string_field(lines.back(), "event"), "run_end");
  EXPECT_EQ(improvements.size(), result.improvements);
  EXPECT_EQ(heartbeats, result.generations_run / params.trace_heartbeat);

  // Improvement events are strict improvements: monotone in the
  // lexicographic fitness order, with the last matching the final result.
  for (std::size_t i = 1; i < improvements.size(); ++i) {
    EXPECT_TRUE(fitness_of_event(improvements[i])
                    .strictly_better(fitness_of_event(improvements[i - 1])))
        << improvements[i];
  }
  ASSERT_FALSE(improvements.empty());
  const Fitness last = fitness_of_event(improvements.back());
  EXPECT_EQ(last.n_r, result.best_fitness.n_r);
  EXPECT_EQ(last.n_g, result.best_fitness.n_g);
  EXPECT_EQ(last.n_b, result.best_fitness.n_b);

  // run_end restates the result counters.
  const std::string& end = lines.back();
  EXPECT_EQ(*obs::json::number_field(end, "generations_run"),
            static_cast<double>(result.generations_run));
  EXPECT_EQ(*obs::json::number_field(end, "evaluations"),
            static_cast<double>(result.evaluations));
  EXPECT_EQ(*obs::json::number_field(end, "improvements"),
            static_cast<double>(result.improvements));
}

TEST(Evolve, MutationMixAccountsForEveryOffspring) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  EvolveParams params;
  params.generations = 2000;
  params.seed = 13;
  const auto result = run_evolve(init, b.spec, params);
  // One mutate() call per offspring per generation.
  EXPECT_EQ(result.mutations_attempted.mutations,
            result.generations_run * params.lambda);
  EXPECT_EQ(result.evaluations,
            result.generations_run * params.lambda + 1); // +1 for the parent
  // Accepted offspring are a subset of attempted ones, field by field.
  EXPECT_LE(result.mutations_accepted.mutations,
            result.mutations_attempted.mutations);
  EXPECT_LE(result.mutations_accepted.genes_changed,
            result.mutations_attempted.genes_changed);
  EXPECT_LE(result.mutations_accepted.swaps,
            result.mutations_attempted.swaps);
  EXPECT_LE(result.mutations_accepted.direct_assigns,
            result.mutations_attempted.direct_assigns);
  EXPECT_LE(result.mutations_accepted.config_flips,
            result.mutations_attempted.config_flips);
  EXPECT_LE(result.mutations_accepted.po_moves,
            result.mutations_attempted.po_moves);
  // Acceptances happen (the decoder always improves at this budget), and
  // each acceptance is one offspring.
  EXPECT_GE(result.mutations_accepted.mutations, result.improvements);
}

TEST(EvolveMultistart, TraceEmitsOneRestartPerRun) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  auto sink = obs::TraceSink::memory();
  EvolveParams params;
  params.generations = 300;
  params.seed = 2;
  params.trace = sink.get();
  const auto result = run_multistart(init, b.spec, params, 3);
  std::uint64_t restarts = 0;
  for (const auto& line : jsonl_lines(sink->buffer())) {
    ASSERT_TRUE(obs::json::validate(line)) << line;
    if (obs::json::string_field(line, "event") == "restart") {
      ++restarts;
    }
  }
  EXPECT_EQ(restarts, 3u);
  EXPECT_TRUE(result.best_fitness.functionally_correct());
}

TEST(EvolveMultistart, ReturnsValidBestOfRuns) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  EvolveParams params;
  params.generations = 8000;
  params.seed = 31;
  const auto single = run_evolve(init, b.spec, params);
  const auto multi = run_multistart(init, b.spec, params, 4);
  EXPECT_TRUE(cec::sim_check(multi.best, b.spec).all_match);
  EXPECT_EQ(multi.best.validate(), "");
  // Same total budget, bookkeeping accumulated over runs.
  EXPECT_EQ(multi.generations_run, single.generations_run / 4 * 4);
  EXPECT_TRUE(multi.best_fitness.functionally_correct());
}

TEST(EvolveMultistart, ZeroRestartsIsRejected) {
  const auto b = benchmarks::get("4gt10");
  const auto init = init_netlist("4gt10");
  EvolveParams params;
  params.generations = 500;
  // restarts == 0 used to be silently clamped to 1, hiding a caller bug;
  // it is now a hard usage error.
  EXPECT_THROW(run_multistart(init, b.spec, params, 0),
               std::invalid_argument);
}

TEST(EvolveMultistart, DistributesRemainderGenerations) {
  const auto b = benchmarks::get("4gt10");
  const auto init = init_netlist("4gt10");
  EvolveParams params;
  params.generations = 103; // 103 = 4*25 + 3: remainder must not be lost
  params.seed = 7;
  const auto r = run_multistart(init, b.spec, params, 4);
  EXPECT_EQ(r.generations_run, 103u);
  EXPECT_TRUE(r.best_fitness.functionally_correct());
  EXPECT_EQ(r.stop_reason, robust::StopReason::kCompleted);
}

TEST(EvolveMultistart, StopTokenCutsRestartScheduleShort) {
  const auto b = benchmarks::get("4gt10");
  const auto init = init_netlist("4gt10");
  robust::StopToken token;
  token.request_stop();
  EvolveParams params;
  params.generations = 4000;
  params.budget.stop = &token;
  const auto r = run_multistart(init, b.spec, params, 4);
  EXPECT_EQ(r.stop_reason, robust::StopReason::kStopRequested);
  EXPECT_EQ(r.generations_run, 0u);
  // Even a fully pre-empted schedule hands back a usable netlist.
  EXPECT_TRUE(cec::sim_check(r.best, b.spec).all_match);
}

// ---------- Simulated annealing (ablation optimizer) ----------

TEST(Anneal, EnergyOrdersStatesLikeTheFitness) {
  const auto net = and_netlist();
  std::vector<tt::TruthTable> right{tt::TruthTable::projection(2, 0) &
                                    tt::TruthTable::projection(2, 1)};
  std::vector<tt::TruthTable> wrong{tt::TruthTable::projection(2, 0) |
                                    tt::TruthTable::projection(2, 1)};
  EXPECT_LT(anneal_energy(net, right), anneal_energy(net, wrong));
}

TEST(Anneal, ImprovesAndStaysCorrect) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  AnnealParams params;
  params.steps = 20000;
  params.seed = 5;
  params.mutation.mu = 0.2;
  const auto r = run_anneal(init, b.spec, params);
  EXPECT_TRUE(r.best_fitness.functionally_correct());
  EXPECT_TRUE(cec::sim_check(r.best, b.spec).all_match);
  EXPECT_EQ(r.best.validate(), "");
  const Fitness init_fit = evaluate(init, b.spec);
  EXPECT_TRUE(r.best_fitness.better_or_equal(init_fit));
  EXPECT_GT(r.accepted, 0u);
}

TEST(Anneal, AcceptsUphillMovesAtHighTemperature) {
  const auto b = benchmarks::get("graycode4");
  const auto init = init_netlist("graycode4");
  AnnealParams params;
  params.steps = 3000;
  params.initial_temperature = 1e6; // essentially a random walk
  params.final_temperature = 1e5;
  params.seed = 2;
  const auto r = run_anneal(init, b.spec, params);
  EXPECT_GT(r.uphill_accepted, 0u);
  // Best-seen tracking still guarantees a correct result.
  EXPECT_TRUE(cec::sim_check(r.best, b.spec).all_match);
}

TEST(Anneal, RejectsWrongInitialNetlist) {
  const auto net = and_netlist();
  std::vector<tt::TruthTable> wrong{tt::TruthTable::projection(2, 0) ^
                                    tt::TruthTable::projection(2, 1)};
  EXPECT_THROW(run_anneal(net, wrong, {}), std::invalid_argument);
}

// ---------- Flow ----------

TEST(Flow, AigFromTablesMatchesSpec) {
  const auto b = benchmarks::get("c17");
  const auto net = aig_from_tables(b.spec, b.po_names);
  const auto tts = aig::simulate(net);
  EXPECT_EQ(tts, b.spec);
  EXPECT_EQ(net.po_name(0), "y0");
}

TEST(Flow, InitializationIsLegalAndCorrect) {
  for (const char* name : {"full_adder", "graycode4", "mux4"}) {
    const auto b = benchmarks::get(name);
    FlowOptions opt;
    opt.run_cgp = false;
    const auto r = synthesize(b.spec, opt);
    EXPECT_EQ(r.initial.validate(), "") << name;
    EXPECT_TRUE(cec::sim_check(r.initial, b.spec).all_match) << name;
    EXPECT_EQ(r.initial_cost.jjs,
              24 * r.initial_cost.n_r + 4 * r.initial_cost.n_b)
        << name;
  }
}

TEST(Flow, CgpPhaseImprovesOrMatchesInit) {
  const auto b = benchmarks::get("ham3");
  FlowOptions opt;
  opt.evolve.generations = 5000;
  opt.evolve.seed = 17;
  const auto r = synthesize(b.spec, opt);
  EXPECT_LE(r.optimized_cost.n_r, r.initial_cost.n_r);
  EXPECT_TRUE(cec::sim_check(r.optimized, b.spec).all_match);
}

TEST(Flow, FraigPhasePreservesCorrectness) {
  const auto b = benchmarks::get("graycode4");
  FlowOptions opt;
  opt.run_fraig = true;
  opt.run_cgp = false;
  const auto r = synthesize(b.spec, opt);
  EXPECT_TRUE(cec::sim_check(r.initial, b.spec).all_match);
  EXPECT_EQ(r.initial.validate(), "");
}

TEST(Flow, OptionalPhasesCanBeDisabled) {
  const auto b = benchmarks::get("4gt10");
  FlowOptions opt;
  opt.run_aig_optimization = false;
  opt.run_mig_optimization = false;
  opt.run_cgp = false;
  const auto r = synthesize(b.spec, opt);
  EXPECT_TRUE(cec::sim_check(r.initial, b.spec).all_match);
}

TEST(Flow, PhaseBreakdownPartitionsWallClock) {
  const auto b = benchmarks::get("c17");
  FlowOptions opt;
  opt.evolve.generations = 2000;
  opt.evolve.seed = 7;
  const auto r = synthesize(b.spec, opt);
  ASSERT_FALSE(r.phases.empty());
  // The CGP phase exists and dominates this run; the nested splitter timer
  // shows up as a depth-1 refinement of rqfp-map.
  EXPECT_GT(r.phase_seconds("cgp"), 0.0);
  bool saw_nested_splitter = false;
  double top_sum = 0.0;
  for (const auto& rec : r.phases) {
    EXPECT_GE(rec.seconds, 0.0);
    if (rec.depth == 0) {
      top_sum += rec.seconds;
    }
    if (rec.path == "rqfp-map/splitter") {
      EXPECT_EQ(rec.depth, 1);
      saw_nested_splitter = true;
    }
  }
  EXPECT_TRUE(saw_nested_splitter);
  // Depth-0 phases partition the flow: their sum accounts for (nearly all
  // of) seconds_total and never exceeds it by more than noise.
  EXPECT_GT(top_sum, 0.5 * r.seconds_total);
  EXPECT_LT(top_sum, 1.1 * r.seconds_total);
  EXPECT_EQ(r.phase_seconds("no-such-phase"), 0.0);
}

// SimBatch invariants (docs/SIMD.md): rows are vector-aligned, strides are
// padded to the widest kernel block, padding words stay zero through every
// mutation path, and externally produced buffers are validated with
// contextual error messages before the kernels ever touch them.

TEST(SimBatch, RowsAreVectorAlignedAndStrideIsPadded) {
  rqfp::SimBatch b(3, 5);
  EXPECT_EQ(b.rows(), 3u);
  EXPECT_EQ(b.words(), 5u);
  EXPECT_EQ(b.stride(), rqfp::simd::kMaxBlockWords);
  for (std::size_t r = 0; r < b.rows(); ++r) {
    const auto addr = reinterpret_cast<std::uintptr_t>(b.row(r));
    EXPECT_EQ(addr % rqfp::simd::kAlignment, 0u) << "row " << r;
  }
  // Odd word counts round up to the next full block; exact multiples and
  // the empty width are left alone.
  b.resize(2, 9);
  EXPECT_EQ(b.stride(), 2 * rqfp::simd::kMaxBlockWords);
  b.resize(1, 2 * rqfp::simd::kMaxBlockWords);
  EXPECT_EQ(b.stride(), 2 * rqfp::simd::kMaxBlockWords);
  b.resize(4, 0);
  EXPECT_EQ(b.stride(), 0u);
  EXPECT_EQ(rqfp::SimBatch::padded_words(1), rqfp::simd::kMaxBlockWords);
}

TEST(SimBatch, PaddedTailStaysZeroThroughRowWrites) {
  rqfp::SimBatch b(2, 5);
  b.fill_row(0, ~std::uint64_t{0});
  const std::vector<std::uint64_t> src(5, 0xDEADBEEFDEADBEEFull);
  b.assign_row(1, src.data());
  for (std::size_t r = 0; r < b.rows(); ++r) {
    for (std::size_t w = b.words(); w < b.stride(); ++w) {
      EXPECT_EQ(b.row(r)[w], 0u) << "row " << r << " pad word " << w;
    }
  }
  for (std::size_t w = 0; w < b.words(); ++w) {
    EXPECT_EQ(b.at(0, w), ~std::uint64_t{0});
    EXPECT_EQ(b.at(1, w), 0xDEADBEEFDEADBEEFull);
  }
}

TEST(SimBatch, ResizeReusesCapacityAndZeroFills) {
  rqfp::SimBatch b(4, 7);
  for (std::size_t r = 0; r < b.rows(); ++r) {
    b.fill_row(r, ~std::uint64_t{0});
  }
  const std::uint64_t* storage = b.row(0);
  b.resize(2, 3); // shrinking must reuse the allocation...
  EXPECT_EQ(b.row(0), storage);
  for (std::size_t r = 0; r < b.rows(); ++r) { // ...and re-zero everything
    for (std::size_t w = 0; w < b.stride(); ++w) {
      EXPECT_EQ(b.row(r)[w], 0u) << "row " << r << " word " << w;
    }
  }
}

TEST(SimBatch, ResizeOverflowThrowsLengthError) {
  rqfp::SimBatch b;
  EXPECT_THROW(
      b.resize(std::numeric_limits<std::size_t>::max() / 2,
               rqfp::simd::kMaxBlockWords),
      std::length_error);
  // The failed resize must leave the batch untouched.
  EXPECT_EQ(b.rows(), 0u);
  EXPECT_EQ(b.words(), 0u);
}

TEST(SimBatch, ExternalBufferValidationIsContextual) {
  // Zero words: nothing will be read, so even null passes.
  rqfp::SimBatch::check_external(nullptr, 0, "zero-width");
  try {
    rqfp::SimBatch::check_external(nullptr, 4, "null-caller");
    FAIL() << "null external buffer accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("null-caller"), std::string::npos) << msg;
    EXPECT_NE(msg.find("null"), std::string::npos) << msg;
  }
  alignas(8) unsigned char raw[32] = {};
  const auto* skewed = reinterpret_cast<const std::uint64_t*>(raw + 1);
  try {
    rqfp::SimBatch::check_external(skewed, 2, "skew-caller");
    FAIL() << "misaligned external buffer accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("skew-caller"), std::string::npos) << msg;
    EXPECT_NE(msg.find("aligned"), std::string::npos) << msg;
  }
  rqfp::SimBatch b(1, 2);
  EXPECT_THROW(b.assign_row(0, nullptr), std::invalid_argument);
}

TEST(SimBatch, EqualityComparesLogicalContentOnly) {
  rqfp::SimBatch a(2, 5);
  rqfp::SimBatch b(2, 5);
  a.fill_row(0, 3);
  b.fill_row(0, 3);
  // Deliberately corrupt a padding word: logical equality must not see it.
  a.row(0)[a.words()] = 0x123;
  EXPECT_TRUE(a == b);
  b.at(1, 4) = 1;
  EXPECT_FALSE(a == b);
  rqfp::SimBatch narrower(2, 4);
  EXPECT_FALSE(a == narrower);
}

// λ-batched incremental evaluation: one gate-major pass over a block of
// offspring must reproduce the sequential evaluate_delta fitness — and the
// batched PO tables must equal a from-scratch simulation of each child.

TEST(Fitness, EvaluateDeltaBatchMatchesSequentialDelta) {
  const auto b = benchmarks::get("full_adder");
  const auto base = init_netlist("full_adder");
  rqfp::SimCache cache;
  rqfp::build_sim_cache(base, cache);
  rqfp::CostCache cost_batch;
  rqfp::CostCache cost_seq;
  const FitnessOptions fo;

  constexpr unsigned kLambda = 6;
  std::vector<rqfp::Netlist> children(kLambda, base);
  std::vector<const rqfp::Netlist*> ptrs;
  for (unsigned k = 0; k < kLambda; ++k) {
    auto rng = util::Rng::stream(99, 1, k);
    mutate(children[k], rng);
    ptrs.push_back(&children[k]);
  }

  rqfp::DeltaBatch batch;
  std::vector<Fitness> got(kLambda);
  evaluate_delta_batch(base, cache, cost_batch, ptrs, b.spec, fo, batch,
                       got);

  for (unsigned k = 0; k < kLambda; ++k) {
    const Fitness want =
        evaluate_delta(base, cache, cost_seq, children[k], b.spec, fo);
    const std::string what = "child " + std::to_string(k);
    EXPECT_EQ(got[k].success_rate, want.success_rate) << what;
    EXPECT_EQ(got[k].n_r, want.n_r) << what;
    EXPECT_EQ(got[k].n_g, want.n_g) << what;
    EXPECT_EQ(got[k].n_b, want.n_b) << what;
    const auto po = rqfp::simulate(children[k]);
    ASSERT_EQ(batch.children[k].po.size(), po.size()) << what;
    for (std::size_t i = 0; i < po.size(); ++i) {
      EXPECT_EQ(batch.children[k].po[i], po[i]) << what << " PO " << i;
    }
  }

  // An undersized fitness span is rejected up front.
  std::vector<Fitness> short_span(kLambda - 1);
  EXPECT_THROW(evaluate_delta_batch(base, cache, cost_batch, ptrs, b.spec,
                                    fo, batch, short_span),
               std::invalid_argument);
}

} // namespace
} // namespace rcgp::core
