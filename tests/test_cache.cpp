#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/key.hpp"
#include "cache/store.hpp"
#include "cache/warm.hpp"
#include "fuzz/generator.hpp"
#include "obs/metrics.hpp"
#include "robust/integrity.hpp"
#include "rqfp/simulate.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace rcgp::cache {
namespace {

std::string temp_path(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "rcgp_cache_test";
  std::filesystem::create_directories(dir);
  const auto path = dir / name;
  std::filesystem::remove(path);
  return path.string();
}

std::vector<tt::TruthTable> random_spec(util::Rng& rng, unsigned vars,
                                        unsigned outputs) {
  return fuzz::random_tables(rng, vars, outputs);
}

// ---------- canonicalization ----------

TEST(Key, ApplyUnapplyIsTheIdentity) {
  util::Rng rng(123);
  for (unsigned vars = 1; vars <= kMaxJointVars; ++vars) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto spec =
          random_spec(rng, vars, 1 + static_cast<unsigned>(rng.below(4)));
      const CanonicalSpec canon = canonicalize(spec);
      EXPECT_EQ(cache::apply(spec, canon.transform), canon.tables);
      EXPECT_EQ(unapply(canon.tables, canon.transform), spec);
    }
  }
}

TEST(Key, NpnVariantsShareOneKey) {
  // x0&x1 under every input permutation/complement and output complement
  // must canonicalize to the same key.
  const auto key_of = [](const std::string& hex) {
    const std::vector<tt::TruthTable> spec = {tt::TruthTable::from_hex(2,
                                                                       hex)};
    return canonicalize(spec).key;
  };
  const std::string base = key_of("8"); // x0 & x1
  EXPECT_EQ(key_of("4"), base);         // x0 & ~x1
  EXPECT_EQ(key_of("2"), base);         // ~x0 & x1
  EXPECT_EQ(key_of("1"), base);         // ~x0 & ~x1
  EXPECT_EQ(key_of("7"), base);         // ~(x0 & x1)
  EXPECT_EQ(key_of("e"), base);         // x0 | x1 = ~(~x0 & ~x1)
  EXPECT_NE(key_of("6"), base);         // xor is a different class
}

TEST(Key, CanonicalSpecIsAFixpoint) {
  util::Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const auto spec = random_spec(
        rng, 1 + static_cast<unsigned>(rng.below(kMaxJointVars)),
        1 + static_cast<unsigned>(rng.below(3)));
    const CanonicalSpec canon = canonicalize(spec);
    const CanonicalSpec again = canonicalize(canon.tables);
    EXPECT_EQ(again.tables, canon.tables);
    EXPECT_EQ(again.key, canon.key);
    EXPECT_TRUE(again.transform.identity(
        static_cast<unsigned>(canon.tables[0].num_vars())));
  }
}

TEST(Key, WideSpecsGetTheIdentityTransform) {
  util::Rng rng(5);
  const auto spec = random_spec(rng, kMaxJointVars + 1, 2);
  const CanonicalSpec canon = canonicalize(spec);
  EXPECT_TRUE(canon.transform.identity(kMaxJointVars + 1));
  EXPECT_EQ(canon.tables, spec);
}

TEST(Key, NetlistRewriteTracksTheTransform) {
  // canonicalize_netlist must implement the canonical tables, and
  // decanonicalize_netlist must take it back to the original spec.
  util::Rng rng(31337);
  fuzz::NetlistShape shape;
  shape.max_pis = kMaxJointVars;
  shape.max_gates = 10;
  for (int trial = 0; trial < 40; ++trial) {
    const rqfp::Netlist net = fuzz::random_netlist(rng, shape);
    const auto spec = rqfp::simulate(net);
    const CanonicalSpec canon = canonicalize(spec);

    const rqfp::Netlist canon_net = canonicalize_netlist(net, canon.transform);
    EXPECT_TRUE(canon_net.validate().empty());
    EXPECT_EQ(rqfp::simulate(canon_net), canon.tables);

    const rqfp::Netlist back =
        decanonicalize_netlist(canon_net, canon.transform);
    EXPECT_TRUE(back.validate().empty());
    EXPECT_EQ(rqfp::simulate(back), spec);
  }
}

// ---------- store ----------

TEST(Store, MissThenInsertThenHit) {
  util::Rng rng(9);
  fuzz::NetlistShape shape;
  shape.max_pis = 3;
  const rqfp::Netlist net = fuzz::random_netlist(rng, shape);
  const auto spec = rqfp::simulate(net);

  Store store;
  EXPECT_FALSE(store.lookup(spec).has_value());
  EXPECT_TRUE(store.insert(spec, net, "test"));
  const auto hit = store.lookup(spec);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->origin, "test");
  EXPECT_EQ(rqfp::simulate(hit->netlist), spec);
}

TEST(Store, HitsAcrossTheWholeNpnOrbit) {
  // Store one function once; NPN variants of it (permuted inputs,
  // complemented inputs and outputs) must hit the same entry, and the
  // de-canonicalized netlist must implement each variant exactly.
  util::Rng rng(4);
  fuzz::NetlistShape shape;
  shape.min_pis = 3;
  shape.max_pis = 3;
  shape.min_pos = 2;
  const rqfp::Netlist impl = fuzz::random_netlist(rng, shape);
  const auto spec = rqfp::simulate(impl);
  Store store;
  ASSERT_TRUE(store.insert(spec, impl, "test"));

  SpecTransform tr;
  tr.perm = {2, 0, 1, 3, 4, 5};
  tr.input_phase = 0b101;
  tr.output_phase = 0b01;
  const auto variant = cache::apply(spec, tr);
  const auto hit = store.lookup(variant);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(rqfp::simulate(hit->netlist), variant);
  EXPECT_EQ(store.size(), 1u); // one entry serves the whole orbit
}

TEST(Store, KeepsTheBetterNetlistOnReinsert) {
  util::Rng rng(21);
  fuzz::NetlistShape shape;
  shape.max_pis = 3;
  rqfp::Netlist small = fuzz::random_netlist(rng, shape);
  const auto spec = rqfp::simulate(small);

  // A strictly worse implementation of the same function: the same
  // netlist plus a disconnected pass-through of constants is not easy to
  // build legally, so re-insert the identical netlist — the store must
  // report "no change".
  Store store;
  EXPECT_TRUE(store.insert(spec, small, "first"));
  EXPECT_FALSE(store.insert(spec, small, "second"));
  const auto hit = store.lookup(spec);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->origin, "first");
}

TEST(Store, RejectsNetlistThatDoesNotImplementTheSpec) {
  util::Rng rng(2);
  fuzz::NetlistShape shape;
  shape.max_pis = 3;
  const rqfp::Netlist net = fuzz::random_netlist(rng, shape);
  auto spec = rqfp::simulate(net);
  spec[0] = ~spec[0];
  Store store;
  EXPECT_THROW(store.insert(spec, net, "bad"), std::invalid_argument);
}

TEST(Store, SaveLoadRoundTrips) {
  const std::string path = temp_path("roundtrip.rcc");
  util::Rng rng(55);
  fuzz::NetlistShape shape;
  shape.max_pis = 4;
  Store store(path);
  std::vector<std::vector<tt::TruthTable>> specs;
  for (int i = 0; i < 5; ++i) {
    const rqfp::Netlist net = fuzz::random_netlist(rng, shape);
    specs.push_back(rqfp::simulate(net));
    store.insert(specs.back(), net, "test");
  }
  store.save();

  Store back(path);
  EXPECT_EQ(back.size(), store.size());
  for (const auto& spec : specs) {
    const auto hit = back.lookup(spec);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(rqfp::simulate(hit->netlist), spec);
  }
  EXPECT_TRUE(back.verify().empty());
}

TEST(Store, ConcurrentSavesNeverPublishACorruptFile) {
  // Regression: serve workers persist after every insert, so save() runs
  // from many threads at once. Interleaved writes into the shared temp
  // file used to rename a corrupt store into place.
  const std::string path = temp_path("concurrent.rcc");
  util::Rng rng(77);
  fuzz::NetlistShape shape;
  shape.max_pis = 4;
  Store store(path);
  for (int i = 0; i < 8; ++i) {
    const rqfp::Netlist net = fuzz::random_netlist(rng, shape);
    store.insert(rqfp::simulate(net), net, "test");
  }
  std::vector<std::thread> savers;
  for (int t = 0; t < 8; ++t) {
    savers.emplace_back([&store] {
      for (int i = 0; i < 25; ++i) {
        store.save();
      }
    });
  }
  for (auto& t : savers) {
    t.join();
  }
  // A torn save would fail the CRC check here (IntegrityError).
  Store back(path);
  EXPECT_EQ(back.size(), store.size());
  EXPECT_TRUE(back.verify().empty());
}

TEST(Store, CorruptPayloadRaisesChecksumError) {
  const std::string path = temp_path("corrupt.rcc");
  util::Rng rng(8);
  Store store(path);
  const rqfp::Netlist net = fuzz::random_netlist(rng);
  store.insert(rqfp::simulate(net), net, "test");
  store.save();

  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  text[text.size() / 2] ^= 0x20; // damage the CRC-covered payload
  try {
    (void)Store::parse(text, "corrupt.rcc");
    FAIL() << "expected IntegrityError";
  } catch (const robust::IntegrityError& e) {
    EXPECT_EQ(e.kind(), robust::IntegrityError::Kind::kChecksum);
  }
}

TEST(Store, MangledHeaderRaisesFormatError) {
  try {
    (void)Store::parse("not-a-cache 1 0\n", "mangled");
    FAIL() << "expected IntegrityError";
  } catch (const robust::IntegrityError& e) {
    EXPECT_EQ(e.kind(), robust::IntegrityError::Kind::kFormat);
  }
}

TEST(Store, LookupCountsTelemetry) {
  auto& reg = obs::registry();
  const std::uint64_t hits0 = reg.counter("cache.hits").value();
  const std::uint64_t misses0 = reg.counter("cache.misses").value();

  util::Rng rng(91);
  fuzz::NetlistShape shape;
  shape.max_pis = 3;
  const rqfp::Netlist net = fuzz::random_netlist(rng, shape);
  const auto spec = rqfp::simulate(net);
  Store store;
  (void)store.lookup(spec);
  store.insert(spec, net, "test");
  (void)store.lookup(spec);

  EXPECT_EQ(reg.counter("cache.misses").value(), misses0 + 1);
  EXPECT_EQ(reg.counter("cache.hits").value(), hits0 + 1);
}

// ---------- warmer ----------

TEST(Warm, FillsEveryTwoInputClass) {
  Store store;
  WarmOptions opt;
  opt.max_vars = 2;
  opt.exact.max_gates = 4;
  opt.exact.time_limit_seconds = 30;
  const WarmResult r = warm(store, opt);
  // 2 classes of 1 input (const, identity) + 4 proper 2-input classes.
  EXPECT_EQ(r.classes, 6u);
  EXPECT_EQ(r.solved + r.timeouts + r.skipped, r.classes);
  EXPECT_EQ(store.size(), r.solved);

  // Every 2-input function must now hit (given all classes solved).
  if (r.timeouts == 0) {
    for (unsigned v = 0; v < 16; ++v) {
      tt::TruthTable t(2);
      t.set_word(0, v);
      const std::vector<tt::TruthTable> spec = {t};
      const auto hit = store.lookup(spec);
      ASSERT_TRUE(hit.has_value()) << "function " << v;
      EXPECT_EQ(rqfp::simulate(hit->netlist), spec) << "function " << v;
    }
  }
}

TEST(Warm, SkipsExistingEntriesOnRerun) {
  Store store;
  WarmOptions opt;
  opt.max_vars = 1;
  opt.exact.max_gates = 3;
  const WarmResult first = warm(store, opt);
  EXPECT_EQ(first.classes, 2u);
  const WarmResult second = warm(store, opt);
  EXPECT_EQ(second.skipped, first.solved);
  EXPECT_EQ(second.solved, 0u);
}

TEST(Warm, RejectsOutOfRangeMaxVars) {
  Store store;
  WarmOptions opt;
  opt.max_vars = kMaxJointVars + 1;
  EXPECT_THROW(warm(store, opt), std::invalid_argument);
  opt.max_vars = 0;
  EXPECT_THROW(warm(store, opt), std::invalid_argument);
}

} // namespace
} // namespace rcgp::cache
