#include <gtest/gtest.h>

#include <vector>

#include "aig/aig_simulate.hpp"
#include "mig/mig.hpp"
#include "mig/mig_from_aig.hpp"
#include "mig/mig_resub.hpp"
#include "mig/mig_rewrite.hpp"
#include "util/rng.hpp"

namespace rcgp::mig {
namespace {

Mig random_mig(unsigned num_pis, unsigned num_nodes, unsigned num_pos,
               std::uint64_t seed) {
  util::Rng rng(seed);
  Mig net;
  std::vector<Signal> pool{net.const0()};
  for (unsigned i = 0; i < num_pis; ++i) {
    pool.push_back(net.create_pi());
  }
  for (unsigned i = 0; i < num_nodes; ++i) {
    const Signal a = pool[rng.below(pool.size())] ^ rng.chance(0.5);
    const Signal b = pool[rng.below(pool.size())] ^ rng.chance(0.5);
    const Signal c = pool[rng.below(pool.size())] ^ rng.chance(0.5);
    pool.push_back(net.create_maj(a, b, c));
  }
  for (unsigned i = 0; i < num_pos; ++i) {
    net.add_po(pool[rng.below(pool.size())] ^ rng.chance(0.5));
  }
  return net;
}

aig::Aig random_aig(unsigned num_pis, unsigned num_nodes, unsigned num_pos,
                    std::uint64_t seed) {
  util::Rng rng(seed);
  aig::Aig net;
  std::vector<aig::Signal> pool{net.const0()};
  for (unsigned i = 0; i < num_pis; ++i) {
    pool.push_back(net.create_pi());
  }
  for (unsigned i = 0; i < num_nodes; ++i) {
    const aig::Signal a = pool[rng.below(pool.size())] ^ rng.chance(0.5);
    const aig::Signal b = pool[rng.below(pool.size())] ^ rng.chance(0.5);
    pool.push_back(net.create_and(a, b));
  }
  for (unsigned i = 0; i < num_pos; ++i) {
    net.add_po(pool[rng.below(pool.size())] ^ rng.chance(0.5));
  }
  return net;
}

TEST(Mig, MajorityAxiomsAtCreation) {
  Mig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  EXPECT_EQ(net.create_maj(a, a, b), a);
  EXPECT_EQ(net.create_maj(a, !a, b), b);
  EXPECT_EQ(net.create_maj(b, a, a), a);
  EXPECT_EQ(net.num_nodes(), 3u); // no MAJ created
}

TEST(Mig, AndOrViaConstants) {
  Mig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  net.add_po(net.create_and(a, b));
  net.add_po(net.create_or(a, b));
  const auto tts = net.simulate();
  const auto ta = tt::TruthTable::projection(2, 0);
  const auto tb = tt::TruthTable::projection(2, 1);
  EXPECT_EQ(tts[0], ta & tb);
  EXPECT_EQ(tts[1], ta | tb);
}

TEST(Mig, StructuralHashingUpToPermutation) {
  Mig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal x = net.create_maj(a, b, c);
  const Signal y = net.create_maj(c, a, b);
  const Signal z = net.create_maj(b, c, a);
  EXPECT_EQ(x, y);
  EXPECT_EQ(y, z);
}

TEST(Mig, InverterNormalization) {
  // M(!a,!b,!c) must hash to the complement of M(a,b,c).
  Mig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal x = net.create_maj(a, b, c);
  const Signal y = net.create_maj(!a, !b, !c);
  EXPECT_EQ(y, !x);
  EXPECT_EQ(net.count_live_majs(), 0u);
}

TEST(Mig, XorAndMuxSimulate) {
  Mig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  net.add_po(net.create_xor(a, b));
  net.add_po(net.create_mux(a, b, c));
  const auto tts = net.simulate();
  const auto ta = tt::TruthTable::projection(3, 0);
  const auto tb = tt::TruthTable::projection(3, 1);
  const auto tc = tt::TruthTable::projection(3, 2);
  EXPECT_EQ(tts[0], ta ^ tb);
  EXPECT_EQ(tts[1], tt::TruthTable::ite(ta, tb, tc));
}

TEST(Mig, CleanupDropsDeadNodes) {
  Mig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal used = net.create_and(a, b);
  net.create_or(a, b); // dead
  net.add_po(used);
  EXPECT_EQ(net.cleanup().count_live_majs(), 1u);
}

TEST(Mig, ReplaceAndSimulateThroughForwardReferences) {
  Mig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal x = net.create_and(a, b);
  net.add_po(x);
  const Signal y = net.create_or(a, b);
  net.replace(x.node(), y);
  const auto tts = net.simulate(); // must handle repl through cleanup
  EXPECT_EQ(tts[0], tt::TruthTable::projection(2, 0) |
                        tt::TruthTable::projection(2, 1));
}

TEST(Mig, DepthAndLevels) {
  Mig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal x = net.create_maj(a, b, c);
  const Signal y = net.create_maj(x, a, b);
  net.add_po(y);
  EXPECT_EQ(net.depth(), 2u);
}

class MigFromAig : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MigFromAig, ConversionPreservesFunction) {
  const aig::Aig a = random_aig(6, 60, 4, GetParam());
  const Mig m = mig_from_aig(a);
  EXPECT_EQ(aig::simulate(a), m.simulate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigFromAig,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(MigFromAig, DetectsMajority) {
  aig::Aig a;
  const auto x = a.create_pi();
  const auto y = a.create_pi();
  const auto z = a.create_pi();
  a.add_po(a.create_maj(x, y, z));
  FromAigStats stats;
  const Mig m = mig_from_aig(a, &stats);
  EXPECT_GE(stats.detected_majorities, 1u);
  EXPECT_EQ(m.count_live_majs(), 1u);
}

TEST(MigFromAig, DetectsParityAndBuildsCompactAdder) {
  aig::Aig a;
  const auto x = a.create_pi();
  const auto y = a.create_pi();
  const auto z = a.create_pi();
  a.add_po(a.create_xor(a.create_xor(x, y), z), "sum");
  a.add_po(a.create_maj(x, y, z), "carry");
  FromAigStats stats;
  const Mig m = mig_from_aig(a, &stats);
  EXPECT_GE(stats.detected_parities, 1u);
  // The classic 3-majority full adder (carry shared with the sum).
  EXPECT_LE(m.count_live_majs(), 4u);
  const auto tts = m.simulate();
  const auto ta = tt::TruthTable::projection(3, 0);
  const auto tb = tt::TruthTable::projection(3, 1);
  const auto tc = tt::TruthTable::projection(3, 2);
  EXPECT_EQ(tts[0], ta ^ tb ^ tc);
  EXPECT_EQ(tts[1], tt::TruthTable::majority(ta, tb, tc));
}

class MigRewrite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MigRewrite, AlgebraicRewritePreservesFunction) {
  Mig net = random_mig(6, 60, 4, GetParam());
  const auto before = net.simulate();
  MigRewriteStats stats;
  net = optimize_mig(net, &stats);
  EXPECT_EQ(before, net.simulate());
  EXPECT_LE(stats.nodes_after, stats.nodes_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigRewrite,
                         ::testing::Values(5, 15, 25, 35, 45, 55, 65, 75));

TEST(MigRewrite, AssociativityReducesDepth) {
  // M(x, u, M(y, u, z)) with a deep z: associativity can move z to the
  // top level, cutting the critical path.
  Mig net;
  const Signal u = net.create_pi();
  const Signal x = net.create_pi();
  const Signal y = net.create_pi();
  const Signal p = net.create_pi();
  const Signal q = net.create_pi();
  // z is two levels deep.
  const Signal z = net.create_maj(net.create_maj(p, q, u), p, q);
  const Signal inner = net.create_maj(y, u, z);
  net.add_po(net.create_maj(x, u, inner));
  const auto before = net.simulate();
  const auto depth_before = net.depth();
  MigRewriteStats stats;
  net = optimize_mig(net, &stats);
  EXPECT_EQ(before, net.simulate());
  EXPECT_LE(net.depth(), depth_before);
}

TEST(MigRewrite, ComplementaryAssociativityOnlyWhenSharing) {
  // M(x, u, M(y, !u, z)) rewrites the inner node to M(y, x, z) only when
  // that node already exists, so the count never grows.
  Mig net;
  const Signal u = net.create_pi();
  const Signal x = net.create_pi();
  const Signal y = net.create_pi();
  const Signal z = net.create_pi();
  const Signal shared = net.create_maj(y, x, z); // pre-existing target
  net.add_po(shared, "other_user");
  const Signal inner = net.create_maj(y, !u, z);
  net.add_po(net.create_maj(x, u, inner), "rewritten");
  const auto before = net.simulate();
  const auto count_before = net.count_live_majs();
  MigRewriteStats stats;
  net = optimize_mig(net, &stats);
  EXPECT_EQ(before, net.simulate());
  EXPECT_LE(net.count_live_majs(), count_before);
}

TEST(MigResub, MergesFunctionallyEqualNodes) {
  Mig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  // f and g compute the same function with different structure:
  // f = M(a,b,M(a,b,c)) == M(a,b,c) by associativity/majority axioms.
  const Signal inner = net.create_maj(a, b, c);
  const Signal f = net.create_maj(a, b, inner);
  net.add_po(f);
  net.add_po(inner);
  const auto before = net.simulate();
  ResubStats stats;
  const Mig swept = mig_resubstitute(net, {}, &stats);
  EXPECT_EQ(swept.simulate(), before);
  EXPECT_GE(stats.resubstituted, 1u);
  EXPECT_EQ(swept.count_live_majs(), 1u);
}

TEST(MigResub, MergesStructurallyDistinctAnd) {
  Mig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal x = net.create_and(a, b);
  // M(a, ab, b) = ab again, but as a distinct node over {a, x, b}.
  const Signal y = net.create_maj(a, x, b);
  net.add_po(x);
  net.add_po(y);
  ASSERT_NE(x, y);
  const auto before = net.simulate();
  ResubStats stats;
  const Mig swept = mig_resubstitute(net, {}, &stats);
  EXPECT_EQ(swept.simulate(), before);
  EXPECT_GE(stats.resubstituted, 1u);
  EXPECT_EQ(swept.count_live_majs(), 1u);
}

class MigResubProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MigResubProperty, PreservesFunctionAndNeverGrows) {
  const Mig net = random_mig(5, 60, 4, GetParam());
  ResubStats stats;
  const Mig swept = mig_resubstitute(net, {}, &stats);
  EXPECT_EQ(swept.simulate(), net.simulate());
  EXPECT_LE(stats.nodes_after, stats.nodes_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigResubProperty,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(MigRewrite, DistributivitySharesCommonPair) {
  Mig net;
  const Signal x = net.create_pi();
  const Signal y = net.create_pi();
  const Signal u = net.create_pi();
  const Signal v = net.create_pi();
  const Signal z = net.create_pi();
  const Signal f = net.create_maj(x, y, u);
  const Signal g = net.create_maj(x, y, v);
  net.add_po(net.create_maj(f, g, z));
  const auto before = net.simulate();
  MigRewriteStats stats;
  net = optimize_mig(net, &stats);
  EXPECT_EQ(before, net.simulate());
  EXPECT_LE(net.count_live_majs(), 2u);
}

} // namespace
} // namespace rcgp::mig
