#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>

#include "aig/aig_simulate.hpp"
#include "io/aiger.hpp"
#include "io/blif.hpp"
#include "io/io.hpp"
#include "io/parse_error.hpp"
#include "io/pla.hpp"
#include "io/real.hpp"
#include "io/rqfp_writer.hpp"
#include "io/verilog.hpp"
#include "rqfp/simulate.hpp"
#include "util/rng.hpp"

namespace rcgp::io {
namespace {

aig::Aig random_aig(unsigned num_pis, unsigned num_nodes, unsigned num_pos,
                    std::uint64_t seed) {
  util::Rng rng(seed);
  aig::Aig net;
  std::vector<aig::Signal> pool{net.const0()};
  for (unsigned i = 0; i < num_pis; ++i) {
    pool.push_back(net.create_pi());
  }
  for (unsigned i = 0; i < num_nodes; ++i) {
    const aig::Signal a = pool[rng.below(pool.size())] ^ rng.chance(0.5);
    const aig::Signal b = pool[rng.below(pool.size())] ^ rng.chance(0.5);
    pool.push_back(net.create_and(a, b));
  }
  for (unsigned i = 0; i < num_pos; ++i) {
    net.add_po(pool[rng.below(pool.size())] ^ rng.chance(0.5));
  }
  return net;
}

// ---------- BLIF ----------

TEST(Blif, ParseSimpleSop) {
  const std::string text = R"(
.model test
.inputs a b c
.outputs f
.names a b w
11 1
.names w c f
1- 1
-1 1
.end
)";
  const auto net = parse_blif_string(text);
  EXPECT_EQ(net.num_pis(), 3u);
  EXPECT_EQ(net.num_pos(), 1u);
  const auto tts = aig::simulate(net);
  const auto a = tt::TruthTable::projection(3, 0);
  const auto b = tt::TruthTable::projection(3, 1);
  const auto c = tt::TruthTable::projection(3, 2);
  EXPECT_EQ(tts[0], (a & b) | c);
}

TEST(Blif, OutOfOrderTables) {
  const std::string text = R"(
.model test
.inputs a b
.outputs f
.names w a f
11 1
.names a b w
01 1
10 1
.end
)";
  const auto net = parse_blif_string(text);
  const auto tts = aig::simulate(net);
  const auto a = tt::TruthTable::projection(2, 0);
  const auto b = tt::TruthTable::projection(2, 1);
  EXPECT_EQ(tts[0], (a ^ b) & a);
}

TEST(Blif, ComplementedOutputColumn) {
  const std::string text = R"(
.model test
.inputs a b
.outputs f
.names a b f
11 0
.end
)";
  const auto tts = aig::simulate(parse_blif_string(text));
  const auto a = tt::TruthTable::projection(2, 0);
  const auto b = tt::TruthTable::projection(2, 1);
  EXPECT_EQ(tts[0], ~(a & b));
}

TEST(Blif, ConstantTables) {
  const std::string text = R"(
.model test
.inputs a
.outputs one zero
.names one
1
.names zero
0
.end
)";
  const auto tts = aig::simulate(parse_blif_string(text));
  EXPECT_TRUE(tts[0].is_constant1());
  EXPECT_TRUE(tts[1].is_constant0());
}

TEST(Blif, Malformed) {
  EXPECT_THROW(parse_blif_string(".model m\n.latch a b\n.end\n"),
               std::runtime_error);
  EXPECT_THROW(parse_blif_string(".model m\n.inputs a\n.outputs f\n.end\n"),
               std::runtime_error); // undriven output
  EXPECT_THROW(
      parse_blif_string(
          ".model m\n.inputs a\n.outputs f\n.names q f\n1 1\n.end\n"),
      std::runtime_error); // undefined dependency
}

class BlifRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlifRoundTrip, WriteParsePreservesFunction) {
  const auto net = random_aig(5, 30, 3, GetParam());
  const auto text = write_blif_string(net);
  const auto back = parse_blif_string(text);
  EXPECT_EQ(aig::simulate(net), aig::simulate(back));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlifRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- AIGER ----------

TEST(Aiger, ParseToyCircuit) {
  // AND of two inputs.
  const std::string text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 a\ni1 b\no0 f\n";
  const auto net = parse_aiger_string(text);
  EXPECT_EQ(net.num_pis(), 2u);
  EXPECT_EQ(net.pi_name(0), "a");
  EXPECT_EQ(net.po_name(0), "f");
  const auto tts = aig::simulate(net);
  EXPECT_EQ(tts[0], tt::TruthTable::projection(2, 0) &
                        tt::TruthTable::projection(2, 1));
}

TEST(Aiger, ComplementedOutput) {
  const std::string text = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n";
  const auto tts = aig::simulate(parse_aiger_string(text));
  EXPECT_EQ(tts[0], ~(tt::TruthTable::projection(2, 0) &
                      tt::TruthTable::projection(2, 1)));
}

TEST(Aiger, RejectsLatchesAndBadLiterals) {
  EXPECT_THROW(parse_aiger_string("aag 1 0 1 0 0\n2 3\n"),
               std::runtime_error);
  EXPECT_THROW(parse_aiger_string("aig 1 1 0 0 0\n2\n"), std::runtime_error);
  EXPECT_THROW(parse_aiger_string("aag 2 1 0 0 1\n2\n4 6 2\n"),
               std::runtime_error); // rhs not below lhs
}

TEST(AigerBinary, RoundTripPreservesFunction) {
  util::Rng unused(0);
  for (std::uint64_t seed : {7ull, 21ull, 90ull}) {
    const auto net = random_aig(6, 50, 4, seed);
    const auto blob = write_aiger_binary_string(net);
    std::istringstream in(blob);
    const auto back = parse_aiger_binary(in);
    EXPECT_EQ(aig::simulate(back), aig::simulate(net)) << seed;
    EXPECT_EQ(back.num_pis(), net.num_pis());
    EXPECT_EQ(back.num_pos(), net.num_pos());
  }
}

TEST(AigerBinary, AutoDetectsBothFormats) {
  const auto net = random_aig(4, 20, 2, 5);
  {
    std::istringstream in(write_aiger_binary_string(net));
    EXPECT_EQ(aig::simulate(parse_aiger_auto(in)), aig::simulate(net));
  }
  {
    std::istringstream in(write_aiger_string(net));
    EXPECT_EQ(aig::simulate(parse_aiger_auto(in)), aig::simulate(net));
  }
}

TEST(AigerBinary, HandlesConstantsAndInverted) {
  aig::Aig net;
  const auto a = net.create_pi("a");
  net.add_po(net.const1(), "one");
  net.add_po(!a, "na");
  net.add_po(net.create_and(a, !a), "zero"); // folds to const0
  const auto blob = write_aiger_binary_string(net);
  std::istringstream in(blob);
  const auto back = parse_aiger_binary(in);
  const auto tts = aig::simulate(back);
  EXPECT_TRUE(tts[0].is_constant1());
  EXPECT_EQ(tts[1], ~tt::TruthTable::projection(1, 0));
  EXPECT_TRUE(tts[2].is_constant0());
  EXPECT_EQ(back.po_name(0), "one");
}

TEST(AigerBinary, MalformedInputsThrow) {
  {
    std::istringstream in("aig 3 2 0 1 2\n6\n"); // M != I + A
    EXPECT_THROW(parse_aiger_binary(in), std::runtime_error);
  }
  {
    std::istringstream in("aig 3 2 0 1 1\n6\n"); // truncated deltas
    EXPECT_THROW(parse_aiger_binary(in), std::runtime_error);
  }
  {
    std::istringstream in("aag 1 1 0 0 0\n2\n");
    EXPECT_THROW(parse_aiger_binary(in), std::runtime_error); // wrong magic
  }
}

class AigerRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AigerRoundTrip, WriteParsePreservesFunction) {
  const auto net = random_aig(6, 40, 4, GetParam() + 100);
  const auto text = write_aiger_string(net);
  const auto back = parse_aiger_string(text);
  EXPECT_EQ(aig::simulate(net), aig::simulate(back));
  EXPECT_EQ(back.num_pis(), net.num_pis());
  EXPECT_EQ(back.num_pos(), net.num_pos());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AigerRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- PLA ----------

TEST(Pla, ParseCubesWithDontCares) {
  const std::string text = R"(
.i 3
.o 2
.p 2
1-0 10
-11 01
.e
)";
  const auto pla = parse_pla_string(text);
  EXPECT_EQ(pla.num_inputs, 3u);
  EXPECT_EQ(pla.num_outputs, 2u);
  const auto a = tt::TruthTable::projection(3, 0);
  const auto b = tt::TruthTable::projection(3, 1);
  const auto c = tt::TruthTable::projection(3, 2);
  EXPECT_EQ(pla.tables[0], a & ~c);
  EXPECT_EQ(pla.tables[1], b & c);
}

TEST(Pla, RoundTrip) {
  util::Rng rng(3);
  std::vector<tt::TruthTable> tables;
  for (int i = 0; i < 3; ++i) {
    tt::TruthTable t(4);
    t.set_word(0, rng.next());
    tables.push_back(t);
  }
  std::ostringstream out;
  write_pla(tables, out);
  const auto back = parse_pla_string(out.str());
  EXPECT_EQ(back.tables, tables);
}

TEST(Pla, Malformed) {
  EXPECT_THROW(parse_pla_string("10 1\n"), std::runtime_error);
  EXPECT_THROW(parse_pla_string(".i 2\n.o 1\n101 1\n"), std::runtime_error);
  EXPECT_THROW(parse_pla_string(".i 2\n.o 1\n1x 1\n"), std::runtime_error);
}

// ---------- RevLib .real ----------

TEST(Real, ToffoliCascade) {
  // CNOT(a->b); NOT(a): a' = !a, b' = a^b.
  const std::string text = R"(
.version 1.0
.numvars 2
.variables a b
.begin
t2 a b
t1 a
.end
)";
  const auto circuit = parse_real_string(text);
  EXPECT_EQ(circuit.num_lines, 2u);
  EXPECT_EQ(circuit.gates.size(), 2u);
  const auto tables = circuit.to_tables();
  const auto a = tt::TruthTable::projection(2, 0);
  const auto b = tt::TruthTable::projection(2, 1);
  EXPECT_EQ(tables[0], ~a);
  EXPECT_EQ(tables[1], a ^ b);
}

TEST(Real, ToffoliIsReversible) {
  const std::string text = R"(
.numvars 3
.variables a b c
.begin
t3 a b c
.end
)";
  const auto circuit = parse_real_string(text);
  std::vector<bool> seen(8, false);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const auto y = circuit.apply(x);
    EXPECT_FALSE(seen[y]);
    seen[y] = true;
  }
  // Toffoli is self-inverse.
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(circuit.apply(circuit.apply(x)), x);
  }
}

TEST(Real, NegativeControls) {
  const std::string text = R"(
.numvars 2
.variables a b
.begin
t2 -a b
.end
)";
  const auto tables = parse_real_string(text).to_tables();
  const auto a = tt::TruthTable::projection(2, 0);
  const auto b = tt::TruthTable::projection(2, 1);
  EXPECT_EQ(tables[1], ~a ^ b);
}

TEST(Real, FredkinSwapsTargets) {
  const std::string text = R"(
.numvars 3
.variables c x y
.begin
f3 c x y
.end
)";
  const auto circuit = parse_real_string(text);
  // c=1: swap x and y; c=0: identity.
  EXPECT_EQ(circuit.apply(0b011), 0b101u);
  EXPECT_EQ(circuit.apply(0b101), 0b011u);
  EXPECT_EQ(circuit.apply(0b010), 0b010u);
  EXPECT_EQ(circuit.apply(0b111), 0b111u);
}

TEST(Real, PeresGate) {
  const std::string text = R"(
.numvars 3
.variables a b c
.begin
p3 a b c
.end
)";
  const auto circuit = parse_real_string(text);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const bool a = x & 1;
    const bool b = (x >> 1) & 1;
    const bool c = (x >> 2) & 1;
    const auto y = circuit.apply(x);
    EXPECT_EQ(y & 1, static_cast<std::uint64_t>(a));
    EXPECT_EQ((y >> 1) & 1, static_cast<std::uint64_t>(a ^ b));
    EXPECT_EQ((y >> 2) & 1, static_cast<std::uint64_t>((a && b) ^ c));
  }
}

TEST(Real, ConstantsAndGarbage) {
  // Line 0 is a constant-0 ancilla; line 1 is garbage at the output.
  const std::string text = R"(
.numvars 3
.variables anc a b
.constants 0--
.garbage -1-
.begin
t3 a b anc
.end
)";
  const auto circuit = parse_real_string(text);
  EXPECT_EQ(circuit.num_real_inputs(), 2u);
  EXPECT_EQ(circuit.num_real_outputs(), 2u);
  const auto tables = circuit.to_tables();
  ASSERT_EQ(tables.size(), 2u);
  // Output 0 is the ancilla line = a&b (Toffoli onto 0); output 1 is b.
  const auto a = tt::TruthTable::projection(2, 0);
  const auto b = tt::TruthTable::projection(2, 1);
  EXPECT_EQ(tables[0], a & b);
  EXPECT_EQ(tables[1], b);
}

TEST(Real, WriteParseRoundTrip) {
  const std::string text = R"(
.numvars 3
.variables a b c
.constants --0
.garbage 1--
.begin
t3 a -b c
f3 -a b c
p3 a b c
q3 a b c
t1 b
.end
)";
  const auto circuit = parse_real_string(text);
  const auto back = parse_real_string(write_real_string(circuit));
  EXPECT_EQ(back.num_lines, circuit.num_lines);
  EXPECT_EQ(back.gates.size(), circuit.gates.size());
  EXPECT_EQ(back.constants, circuit.constants);
  EXPECT_EQ(back.garbage, circuit.garbage);
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(back.apply(x), circuit.apply(x)) << x;
  }
}

TEST(Real, InversePeresUndoesPeres) {
  const std::string text = R"(
.numvars 3
.variables a b c
.begin
p3 a b c
q3 a b c
.end
)";
  const auto circuit = parse_real_string(text);
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(circuit.apply(x), x) << x;
  }
}

TEST(Real, StructuralAigMatchesTables) {
  const std::string text = R"(
.numvars 4
.variables a b c d
.constants ---0
.garbage --1-
.begin
t3 a b c
f3 c a b
p3 b c d
t1 a
t2 -d a
.end
)";
  const auto circuit = parse_real_string(text);
  const auto net = real_to_aig(circuit);
  EXPECT_EQ(net.num_pis(), circuit.num_real_inputs());
  EXPECT_EQ(net.num_pos(), circuit.num_real_outputs());
  EXPECT_EQ(aig::simulate(net), circuit.to_tables());
}

TEST(Real, StructuralAigScalesWithoutTabulation) {
  // A wide shift-register-like cascade: 40 lines, far beyond exhaustive
  // tabulation, converts structurally in negligible time.
  std::string text = ".numvars 40\n.variables";
  for (int i = 0; i < 40; ++i) {
    text += " l" + std::to_string(i);
  }
  text += "\n.begin\n";
  for (int i = 0; i + 1 < 40; ++i) {
    text += "t2 l" + std::to_string(i) + " l" + std::to_string(i + 1) + "\n";
  }
  text += ".end\n";
  const auto circuit = parse_real_string(text);
  const auto net = real_to_aig(circuit);
  EXPECT_EQ(net.num_pis(), 40u);
  EXPECT_EQ(net.num_pos(), 40u);
  EXPECT_GT(net.count_live_ands(), 0u);
  EXPECT_THROW(circuit.to_tables(), std::runtime_error);
}

TEST(Real, Malformed) {
  EXPECT_THROW(parse_real_string(".numvars 2\n.variables a\n.begin\n.end\n"),
               std::runtime_error);
  EXPECT_THROW(
      parse_real_string(
          ".numvars 1\n.variables a\n.begin\nt1 q\n.end\n"),
      std::runtime_error);
  EXPECT_THROW(
      parse_real_string(".numvars 1\n.variables a\nt1 a\n.end\n"),
      std::runtime_error); // gate before .begin
}

// ---------- Verilog ----------

TEST(Verilog, AssignExpressions) {
  const std::string text = R"(
// full adder from expressions
module fa (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire t;
  assign t = a ^ b;
  assign sum = t ^ cin;
  assign cout = (a & b) | (t & cin);
endmodule
)";
  const auto net = parse_verilog_string(text);
  const auto tts = aig::simulate(net);
  const auto a = tt::TruthTable::projection(3, 0);
  const auto b = tt::TruthTable::projection(3, 1);
  const auto c = tt::TruthTable::projection(3, 2);
  EXPECT_EQ(tts[0], a ^ b ^ c);
  EXPECT_EQ(tts[1], tt::TruthTable::majority(a, b, c));
}

TEST(Verilog, GatePrimitivesAndTernary) {
  const std::string text = R"(
module m (a, b, s, y, z);
  input a, b, s;
  output y, z;
  wire n;
  nand g1 (n, a, b);
  assign y = s ? a : b;
  assign z = ~n;
endmodule
)";
  const auto tts = aig::simulate(parse_verilog_string(text));
  const auto a = tt::TruthTable::projection(3, 0);
  const auto b = tt::TruthTable::projection(3, 1);
  const auto s = tt::TruthTable::projection(3, 2);
  EXPECT_EQ(tts[0], tt::TruthTable::ite(s, a, b));
  EXPECT_EQ(tts[1], a & b);
}

TEST(Verilog, OutOfOrderAssignsAndConstants) {
  const std::string text = R"(
module m (a, y);
  input a;
  output y;
  wire w;
  assign y = w | 1'b0;
  assign w = a & 1'b1;
endmodule
)";
  const auto tts = aig::simulate(parse_verilog_string(text));
  EXPECT_EQ(tts[0], tt::TruthTable::projection(1, 0));
}

TEST(Verilog, OperatorPrecedence) {
  // ~a & b | c ^ d  ==  ((~a) & b) | (c ^ d)
  const std::string text = R"(
module m (a, b, c, d, y);
  input a, b, c, d;
  output y;
  assign y = ~a & b | c ^ d;
endmodule
)";
  const auto tts = aig::simulate(parse_verilog_string(text));
  const auto a = tt::TruthTable::projection(4, 0);
  const auto b = tt::TruthTable::projection(4, 1);
  const auto c = tt::TruthTable::projection(4, 2);
  const auto d = tt::TruthTable::projection(4, 3);
  EXPECT_EQ(tts[0], (~a & b) | (c ^ d));
}

TEST(Verilog, Malformed) {
  EXPECT_THROW(parse_verilog_string("module m (a); input a;\n"),
               std::runtime_error); // missing endmodule
  EXPECT_THROW(
      parse_verilog_string(
          "module m (y); output y; assign y = q; endmodule\n"),
      std::runtime_error); // undefined name
  EXPECT_THROW(
      parse_verilog_string(
          "module m (y); output y; always @(posedge c) x; endmodule\n"),
      std::runtime_error); // unsupported construct
}

class VerilogRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerilogRoundTrip, WriteParsePreservesFunction) {
  const auto net = random_aig(5, 25, 3, GetParam() + 50);
  const auto text = write_verilog_string(net);
  const auto back = parse_verilog_string(text);
  EXPECT_EQ(aig::simulate(net), aig::simulate(back));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerilogRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- RQFP text format ----------

TEST(RqfpFormat, RoundTrip) {
  rqfp::Netlist net(2);
  net.set_pi_names({"a", "b"});
  const auto g0 =
      net.add_gate({1, 2, rqfp::kConstPort}, rqfp::InvConfig::from_rows(5, 6, 4));
  const auto g1 = net.add_gate({0, net.port_of(g0, 2), 0},
                               rqfp::InvConfig::splitter());
  net.add_po(net.port_of(g1, 0), "f");
  const auto text = write_rqfp_string(net);
  const auto back = parse_rqfp_string(text);
  EXPECT_EQ(back.num_pis(), 2u);
  EXPECT_EQ(back.num_gates(), 2u);
  EXPECT_EQ(back.po_name(0), "f");
  EXPECT_EQ(rqfp::simulate(back), rqfp::simulate(net));
  EXPECT_EQ(back.gate(0).config, net.gate(0).config);
}

TEST(RqfpFormat, MalformedInput) {
  EXPECT_THROW(parse_rqfp_string("gate 0 0 0 000-000-000\n"),
               std::runtime_error);
  EXPECT_THROW(parse_rqfp_string(".rqfp 1\ngate 0 0 0 000-000-000\n"),
               std::runtime_error); // gate before .pis
  EXPECT_THROW(parse_rqfp_string(".rqfp 1\n.pis 1\nbogus\n"),
               std::runtime_error);
}

// ---------- error context (ParseError carries source:line) ----------

/// Runs `fn`, which must throw ParseError, and hands the error back for
/// inspection of its source/line context.
template <typename Fn>
ParseError expect_parse_error(Fn&& fn) {
  try {
    fn();
  } catch (const ParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected a ParseError, none was thrown";
  return ParseError("none", "none", 0, "no error");
}

TEST(ParseErrorContext, BlifCubeErrorCitesTheOffendingLine) {
  std::istringstream in(
      ".model m\n.inputs a b\n.outputs f\n.names a b f\n111 1\n.end\n");
  const auto e = expect_parse_error([&] { parse_blif(in, "adder.blif"); });
  EXPECT_EQ(e.source(), "adder.blif");
  EXPECT_EQ(e.line(), 5u);
  EXPECT_NE(std::string(e.what()).find("blif:adder.blif:5:"),
            std::string::npos)
      << e.what();
}

TEST(ParseErrorContext, BlifUndefinedDependencyCitesItsNamesLine) {
  std::istringstream in(
      ".model m\n.inputs a\n.outputs f\n.names q f\n1 1\n.end\n");
  const auto e = expect_parse_error([&] { parse_blif(in, "dep.blif"); });
  EXPECT_EQ(e.source(), "dep.blif");
  EXPECT_EQ(e.line(), 4u);
}

TEST(ParseErrorContext, BlifUndrivenOutputOmitsLine) {
  const auto e = expect_parse_error(
      [] { parse_blif_string(".model m\n.inputs a\n.outputs f\n.end\n"); });
  EXPECT_EQ(e.line(), 0u);
  // Line is unknown: the message reads "blif:<blif>: ..." with no line part.
  EXPECT_NE(std::string(e.what()).find("blif:<blif>: "), std::string::npos)
      << e.what();
}

TEST(ParseErrorContext, PlaCubeErrorsCiteTheCubeLine) {
  {
    std::istringstream in(".i 2\n.o 1\n101 1\n.e\n");
    const auto e = expect_parse_error([&] { parse_pla(in, "wide.pla"); });
    EXPECT_EQ(e.source(), "wide.pla");
    EXPECT_EQ(e.line(), 3u);
  }
  {
    std::istringstream in(".i 2\n.o 1\n11 1\n1x 1\n.e\n");
    const auto e = expect_parse_error([&] { parse_pla(in, "char.pla"); });
    EXPECT_EQ(e.line(), 4u);
  }
}

TEST(ParseErrorContext, AigerTruncationNamesTheSource) {
  {
    std::istringstream in("aag 3 2 0 1 1\n2\n4\n"); // output section cut off
    const auto e = expect_parse_error([&] { parse_aiger(in, "toy.aag"); });
    EXPECT_EQ(e.source(), "toy.aag");
    EXPECT_GT(e.line(), 0u);
    EXPECT_NE(std::string(e.what()).find("aiger:toy.aag:"),
              std::string::npos)
        << e.what();
  }
  {
    std::istringstream in("aig 3 2 0 1 1\n6\n"); // binary deltas cut off
    const auto e =
        expect_parse_error([&] { parse_aiger_binary(in, "toy.aig"); });
    EXPECT_EQ(e.source(), "toy.aig");
  }
}

TEST(ParseErrorContext, VerilogUnresolvedAssignCitesItsStatement) {
  std::istringstream in(
      "module m (y);\noutput y;\nassign y = q;\nendmodule\n");
  const auto e = expect_parse_error([&] { parse_verilog(in, "bad.v"); });
  EXPECT_EQ(e.source(), "bad.v");
  EXPECT_EQ(e.line(), 3u);
  EXPECT_NE(std::string(e.what()).find("verilog:bad.v:3:"),
            std::string::npos)
      << e.what();
}

TEST(ParseErrorContext, FileOpenFailuresIncludeThePath) {
  const std::string missing = "/nonexistent/rcgp_test_input.xyz";
  for (const auto& fn : {
           std::function<void()>([&] { parse_blif_file(missing); }),
           std::function<void()>([&] { parse_pla_file(missing); }),
           std::function<void()>([&] { parse_aiger_file(missing); }),
           std::function<void()>([&] { parse_verilog_file(missing); }),
       }) {
    const auto e = expect_parse_error(fn);
    EXPECT_EQ(e.source(), missing);
    EXPECT_EQ(e.line(), 0u);
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos)
        << e.what();
  }
}

// ---------- parser robustness fuzzing ----------

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, MutatedInputsNeverCrashOnlyThrow) {
  // Take valid source texts, randomly corrupt bytes, and require every
  // parser to either succeed or throw a std:: exception — never crash or
  // hang.
  util::Rng rng(GetParam());
  const std::string valid_rqfp =
      ".rqfp 1\n.pis 2 a b\n.pos 1\ngate 1 2 0 101-100-000\npo 5 f\n.end\n";
  const std::string valid_blif =
      ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n";
  const std::string valid_verilog =
      "module m (a, b, f); input a, b; output f; assign f = a & b; "
      "endmodule\n";
  const std::string valid_aiger = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
  const std::string valid_real =
      ".numvars 2\n.variables a b\n.begin\nt2 a b\n.end\n";
  const std::string valid_pla = ".i 2\n.o 1\n11 1\n.e\n";

  auto corrupt = [&](std::string s) {
    const int edits = 1 + static_cast<int>(rng.below(6));
    for (int e = 0; e < edits && !s.empty(); ++e) {
      const std::size_t pos = rng.below(s.size());
      switch (rng.below(3)) {
        case 0: s[pos] = static_cast<char>(32 + rng.below(95)); break;
        case 1: s.erase(pos, 1); break;
        default: s.insert(pos, 1, static_cast<char>(32 + rng.below(95)));
      }
    }
    return s;
  };

  for (int round = 0; round < 60; ++round) {
    try {
      (void)io::parse_rqfp_string(corrupt(valid_rqfp));
    } catch (const std::exception&) {
    }
    try {
      (void)io::parse_blif_string(corrupt(valid_blif));
    } catch (const std::exception&) {
    }
    try {
      (void)io::parse_verilog_string(corrupt(valid_verilog));
    } catch (const std::exception&) {
    }
    try {
      (void)io::parse_aiger_string(corrupt(valid_aiger));
    } catch (const std::exception&) {
    }
    try {
      (void)io::parse_real_string(corrupt(valid_real));
    } catch (const std::exception&) {
    }
    try {
      (void)io::parse_pla_string(corrupt(valid_pla));
    } catch (const std::exception&) {
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(RqfpFormat, StructuralVerilogListsEveryGate) {
  rqfp::Netlist net(2);
  const auto g0 = net.add_gate({1, 2, rqfp::kConstPort},
                               rqfp::InvConfig::from_rows(5, 6, 4));
  const auto g1 = net.add_gate({0, net.port_of(g0, 2), 0},
                               rqfp::InvConfig::splitter());
  net.add_po(net.port_of(g1, 0), "f");
  const auto v = write_structural_verilog_string(net, "top");
  EXPECT_NE(v.find("module rqfp_gate"), std::string::npos);
  EXPECT_NE(v.find("module top"), std::string::npos);
  EXPECT_NE(v.find("g0 (.a(x0), .b(x1), .c(const1)"), std::string::npos);
  EXPECT_NE(v.find("g1 "), std::string::npos);
  EXPECT_NE(v.find("assign f = "), std::string::npos);
  // CONFIG for the splitter: rows 100-100-100 -> bits 100100100.
  EXPECT_NE(v.find("9'b100100100"), std::string::npos);
}

TEST(RqfpFormat, DotExportMentionsAllGates) {
  rqfp::Netlist net(1);
  const auto g0 = net.add_gate({0, 1, 0}, rqfp::InvConfig::splitter());
  net.add_po(net.port_of(g0, 0), "f");
  const auto dot = write_dot_string(net);
  EXPECT_NE(dot.find("g0"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("po0"), std::string::npos);
}

// ---------- io facade (read_network / write_network, docs/FORMATS.md) ----

std::string facade_path(const std::string& name) {
  return ::testing::TempDir() + "rcgp_io_facade_" + name;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << text;
}

TEST(Facade, FormatFromExtensionCoversEverySupportedSuffix) {
  EXPECT_EQ(format_from_extension("a/b/c.v"), Format::kVerilog);
  EXPECT_EQ(format_from_extension("x.blif"), Format::kBlif);
  EXPECT_EQ(format_from_extension("x.aag"), Format::kAiger);
  EXPECT_EQ(format_from_extension("x.aig"), Format::kAiger);
  EXPECT_EQ(format_from_extension("x.pla"), Format::kPla);
  EXPECT_EQ(format_from_extension("x.real"), Format::kReal);
  EXPECT_EQ(format_from_extension("x.rqfp"), Format::kRqfp);
  EXPECT_EQ(format_from_extension("x.dot"), Format::kDot);
  EXPECT_EQ(format_from_extension("x.txt"), Format::kAuto);
  // A dot in a directory name is not an extension.
  EXPECT_EQ(format_from_extension("dir.d/file"), Format::kAuto);
}

TEST(Facade, ReadDetectsBlifByExtensionAndReturnsAig) {
  const std::string path = facade_path("voter.blif");
  write_text(path,
             ".model and2\n.inputs a b\n.outputs y\n.names a b y\n11 1\n"
             ".end\n");
  const Network net = read_network(path);
  EXPECT_EQ(net.format, Format::kBlif);
  ASSERT_TRUE(net.aig.has_value());
  EXPECT_FALSE(net.rqfp.has_value());
  EXPECT_EQ(net.num_pis(), 2u);
  EXPECT_EQ(net.num_pos(), 1u);
  const auto tables = net.to_tables();
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0], tt::TruthTable::projection(2, 0) &
                           tt::TruthTable::projection(2, 1));
  std::remove(path.c_str());
}

TEST(Facade, SniffsFormatsBehindUnknownExtensions) {
  struct Case {
    const char* text;
    Format expected;
  };
  const Case cases[] = {
      {"aag 1 1 0 1 0\n2\n2\n", Format::kAiger},
      {".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n",
       Format::kBlif},
      {"module m(a, y);\ninput a;\noutput y;\nassign y = a;\nendmodule\n",
       Format::kVerilog},
      {".i 1\n.o 1\n1 1\n.e\n", Format::kPla},
      {"# comment first\n.version 2\n.numvars 1\n.variables a\n.begin\n"
       "t1 a\n.end\n",
       Format::kReal},
      {".rqfp 1\n.pis 1\n.pos 1\ngate 0 1 0 100-100-100\npo 2\n.end\n",
       Format::kRqfp},
  };
  for (const auto& c : cases) {
    const std::string path = facade_path("sniff.circ");
    write_text(path, c.text);
    EXPECT_EQ(detect_format(path), c.expected) << c.text;
    const Network net = read_network(path);
    EXPECT_EQ(net.format, c.expected);
    EXPECT_GE(net.num_pos(), 1u);
    std::remove(path.c_str());
  }
}

TEST(Facade, UndetectableContentThrowsParseErrorWithSource) {
  const std::string path = facade_path("mystery.bin");
  write_text(path, "this is not a circuit\n");
  try {
    (void)read_network(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.source(), path);
    EXPECT_NE(std::string(e.what()).find("cannot detect"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Facade, MissingFileThrowsParseError) {
  EXPECT_THROW((void)read_network(facade_path("does_not_exist.blif")),
               ParseError);
  EXPECT_THROW((void)read_network(facade_path("does_not_exist.noext")),
               ParseError);
}

TEST(Facade, ExplicitFormatOverridesExtension) {
  const std::string path = facade_path("actually_blif.v");
  write_text(path,
             ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n");
  const Network net = read_network(path, Format::kBlif);
  EXPECT_EQ(net.format, Format::kBlif);
  ASSERT_TRUE(net.aig.has_value());
  std::remove(path.c_str());
}

TEST(Facade, RqfpRoundTripsThroughWriteAndRead) {
  rqfp::Netlist net(2);
  const auto g = net.add_gate({1, 2, rqfp::kConstPort},
                              rqfp::InvConfig::from_rows(5, 6, 4));
  net.add_po(net.port_of(g, 2), "y");
  const std::string path = facade_path("roundtrip.rqfp");
  write_network(net, path);
  const Network back = read_network(path);
  ASSERT_TRUE(back.rqfp.has_value());
  EXPECT_EQ(write_rqfp_string(*back.rqfp), write_rqfp_string(net));
  EXPECT_EQ(back.to_tables(), rqfp::simulate(net));
  std::remove(path.c_str());
}

TEST(Facade, AigRoundTripsThroughEveryWritableFormat) {
  const auto net = random_aig(4, 12, 3, 99);
  const auto ref = aig::simulate(net);
  for (const char* name :
       {"rt.v", "rt.blif", "rt.aag", "rt.aig"}) {
    const std::string path = facade_path(name);
    write_network(net, path);
    const Network back = read_network(path);
    ASSERT_TRUE(back.aig.has_value()) << name;
    EXPECT_EQ(back.to_tables(), ref) << name;
    std::remove(path.c_str());
  }
}

TEST(Facade, EmptyFilesAreContextualParseErrors) {
  // Auto-detection and every explicit parser must reject an empty file
  // with a ParseError naming it — never misdetect or crash.
  const std::string path = facade_path("empty.circ");
  write_text(path, "");
  auto e = expect_parse_error([&] { read_network(path); });
  EXPECT_EQ(e.source(), path);
  EXPECT_NE(std::string(e.what()).find("empty"), std::string::npos)
      << e.what();
  const std::string empty_rqfp = facade_path("empty.rqfp");
  write_text(empty_rqfp, "");
  EXPECT_THROW(read_network(empty_rqfp), ParseError);
  std::remove(path.c_str());
  std::remove(empty_rqfp.c_str());
}

TEST(Facade, BinaryGarbageIsAContextualParseError) {
  // No recognizable leading token: detection fails with a sanitized
  // snippet of the content instead of reading the whole blob.
  std::string blob;
  util::Rng rng(0xBADF00D);
  for (int k = 0; k < 4096; ++k) {
    blob.push_back(static_cast<char>(rng.below(256)));
  }
  const std::string path = facade_path("garbage.bin");
  write_text(path, blob);
  const auto e = expect_parse_error([&] { read_network(path); });
  EXPECT_EQ(e.source(), path);
  std::remove(path.c_str());
}

TEST(Facade, WrongExtensionContentIsAParseErrorNotUb) {
  // RQFP text inside a .aag file: the extension wins detection, so the
  // AIGER parser must fail with a ParseError naming the file.
  const std::string path = facade_path("lies.aag");
  write_text(path, ".rqfp 1\n.pis 1\n.pos 1\npo 1 f\n.end\n");
  const auto e = expect_parse_error([&] { read_network(path); });
  EXPECT_EQ(e.source(), path);
  std::remove(path.c_str());
}

TEST(Facade, CorruptBinaryAigerReportsAByteOffset) {
  const auto net = random_aig(3, 8, 2, 5);
  std::string blob = write_aiger_binary_string(net);
  blob.resize(blob.find('\n') + 3); // truncate inside the binary section
  const std::string path = facade_path("cut.aig");
  write_text(path, blob);
  const auto e = expect_parse_error([&] { read_network(path); });
  EXPECT_EQ(e.source(), path);
  EXPECT_NE(std::string(e.what()).find("byte "), std::string::npos)
      << e.what();
  std::remove(path.c_str());
}

TEST(Facade, OversizedAigerHeadersFailFast) {
  // A corrupted header must not drive the literal-map allocation.
  EXPECT_THROW(parse_aiger_string("aag 999999999999 0 0 0 0\n"), ParseError);
  std::istringstream bin("aig 4000000000 4000000000 0 0 0\n");
  EXPECT_THROW(parse_aiger_binary(bin), ParseError);
  EXPECT_THROW(parse_pla_string(".i 3\n.o 4000000000\n111 1\n.e\n"),
               ParseError);
}

TEST(Facade, MalformedAigerSymbolTagsAreTolerated) {
  // Non-numeric symbol indices used to escape as std::invalid_argument
  // from std::stoul; they are skipped now (symbols are optional).
  const auto net = parse_aiger_string(
      "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\nix bogus\ni0 a\no99999999999999 x\n");
  EXPECT_EQ(net.num_pis(), 2u);
  EXPECT_EQ(net.pi_name(0), "a");
}

TEST(Facade, RejectsImpossibleConversions) {
  rqfp::Netlist net(1);
  const auto g0 = net.add_gate({0, 1, 0}, rqfp::InvConfig::splitter());
  net.add_po(net.port_of(g0, 0));
  EXPECT_THROW(write_network(net, facade_path("x.blif")),
               std::invalid_argument);
  const auto a = random_aig(2, 3, 1, 7);
  EXPECT_THROW(write_network(a, facade_path("x.rqfp")),
               std::invalid_argument);
  EXPECT_THROW(write_network(a, facade_path("x.unknown")),
               std::invalid_argument);
}

} // namespace
} // namespace rcgp::io
