// Fuzzing subsystem (src/fuzz, docs/FUZZING.md): generator determinism
// and validity, shrinker convergence, findings-log format, and bounded
// end-to-end harness runs. The open-ended version of these checks is
// `rcgp fuzz`; test_properties runs the generator-backed property sweeps.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "aig/aig_simulate.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/targets.hpp"
#include "rqfp/simulate.hpp"
#include "util/rng.hpp"

namespace rcgp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_dir(const std::string& leaf) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("rcgp_fuzz_" + leaf);
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(FuzzGenerator, NetlistsAreValidAndDeterministic) {
  for (std::uint64_t c = 0; c < 50; ++c) {
    util::Rng rng = util::Rng::stream(99, c, 0);
    const auto net = fuzz::random_netlist(rng);
    EXPECT_EQ(net.validate(), "") << "case " << c;
    EXPECT_GE(net.num_pos(), 1u);
    util::Rng again = util::Rng::stream(99, c, 0);
    EXPECT_TRUE(fuzz::random_netlist(again) == net) << "case " << c;
  }
}

TEST(FuzzGenerator, AigsSimulateAndAreDeterministic) {
  for (std::uint64_t c = 0; c < 50; ++c) {
    util::Rng rng = util::Rng::stream(7, c, 1);
    const auto g = fuzz::random_aig(rng);
    ASSERT_GE(g.num_pos(), 1u);
    const auto tables = aig::simulate(g);
    EXPECT_EQ(tables.size(), g.num_pos());
    util::Rng again = util::Rng::stream(7, c, 1);
    EXPECT_EQ(aig::simulate(fuzz::random_aig(again)), tables);
  }
}

TEST(FuzzGenerator, CorruptBytesIsDeterministicAndChangesInput) {
  const std::string blob = "the quick brown fox jumps over the lazy dog\n";
  util::Rng a = util::Rng::stream(5, 0, 2);
  util::Rng b = util::Rng::stream(5, 0, 2);
  EXPECT_EQ(fuzz::corrupt_bytes(blob, a), fuzz::corrupt_bytes(blob, b));
  // Over many draws, corruption must actually mutate the blob.
  int changed = 0;
  for (std::uint64_t c = 0; c < 20; ++c) {
    util::Rng rng = util::Rng::stream(5, c, 3);
    changed += fuzz::corrupt_bytes(blob, rng) != blob;
  }
  EXPECT_GE(changed, 15);
}

TEST(FuzzShrink, NetlistShrinkerConvergesToMinimal) {
  util::Rng rng(4242);
  fuzz::NetlistShape shape;
  shape.min_gates = 12;
  shape.max_gates = 20;
  const auto big = fuzz::random_netlist(rng, shape);
  // "Failure": the netlist contains at least one gate. The minimal
  // reproducer for that is a single-gate netlist.
  const auto fails = [](const rqfp::Netlist& n) { return n.num_gates() >= 1; };
  fuzz::ShrinkStats stats;
  const auto small = fuzz::shrink_netlist(big, fails, &stats);
  EXPECT_TRUE(fails(small));
  EXPECT_EQ(small.validate(), "");
  EXPECT_LE(small.num_gates(), 2u);
  EXPECT_GT(stats.attempts, 0u);
  EXPECT_GT(stats.accepted, 0u);
}

TEST(FuzzShrink, ByteShrinkerConvergesToTheFailingByte) {
  std::string blob(300, 'a');
  blob[137] = 'X';
  const auto fails = [](const std::string& s) {
    return s.find('X') != std::string::npos;
  };
  fuzz::ShrinkStats stats;
  const auto small = fuzz::shrink_bytes(blob, fails, &stats);
  EXPECT_TRUE(fails(small));
  EXPECT_LE(small.size(), 2u);
  EXPECT_GT(stats.accepted, 0u);
}

TEST(FuzzFindings, JsonRecordsAreStableAndTimestampFree) {
  fuzz::Finding f;
  f.target = "cec-cross";
  f.seed = 9;
  f.case_index = 3;
  f.kind = "engine-disagreement";
  f.detail = "bdd says \"equal\"";
  f.reproducer_path = "cec-cross-s9-c3.rqfp";
  f.repro_command = "rcgp fuzz --targets=cec-cross --seed=9 --case=3";
  const auto json = fuzz::to_json(f);
  EXPECT_EQ(json,
            "{\"target\":\"cec-cross\",\"seed\":9,\"case\":3,"
            "\"kind\":\"engine-disagreement\","
            "\"detail\":\"bdd says \\\"equal\\\"\","
            "\"reproducer\":\"cec-cross-s9-c3.rqfp\","
            "\"repro\":\"rcgp fuzz --targets=cec-cross --seed=9 --case=3\"}");
  EXPECT_EQ(json.find("time"), std::string::npos);
}

TEST(FuzzHarness, DefaultTargetsRunCleanOnTheCurrentTree) {
  fuzz::FuzzOptions opt;
  opt.seed = 20260807;
  opt.cases = 3;
  opt.out_dir = temp_dir("clean");
  const auto summary = fuzz::run_fuzz(opt);
  EXPECT_EQ(summary.findings, 0u);
  EXPECT_EQ(summary.cases_run, 3 * fuzz::default_targets().size());
  EXPECT_EQ(summary.stop_reason, robust::StopReason::kCompleted);
  EXPECT_EQ(slurp(summary.log_path), "");
}

TEST(FuzzHarness, SelftestFindingsLogIsBitIdenticalAcrossRuns) {
  fuzz::FuzzOptions opt;
  opt.targets = {fuzz::Target::kSelftest};
  opt.seed = 31337;
  opt.cases = 12;
  opt.out_dir = temp_dir("det_a");
  const auto a = fuzz::run_fuzz(opt);
  opt.out_dir = temp_dir("det_b");
  const auto b = fuzz::run_fuzz(opt);
  EXPECT_GT(a.findings, 0u);
  EXPECT_EQ(a.findings, b.findings);
  const auto log_a = slurp(a.log_path);
  EXPECT_EQ(log_a, slurp(b.log_path));
  EXPECT_NE(log_a.find("\"repro\":\"rcgp fuzz --targets=selftest "
                       "--seed=31337 --case="),
            std::string::npos);
}

TEST(FuzzHarness, ReproModeRerunsExactlyOneCase) {
  fuzz::FuzzOptions opt;
  opt.targets = {fuzz::Target::kSelftest};
  opt.seed = 8;
  opt.only_case = 0; // selftest emits a finding on every third case
  opt.out_dir = temp_dir("repro");
  const auto summary = fuzz::run_fuzz(opt);
  EXPECT_EQ(summary.cases_run, 1u);
  EXPECT_EQ(summary.findings, 1u);
}

TEST(FuzzHarness, StopTokenEndsTheRunBetweenCases) {
  fuzz::FuzzOptions opt;
  opt.targets = {fuzz::Target::kSelftest};
  opt.cases = 100000;
  opt.out_dir = temp_dir("stop");
  robust::StopToken stop;
  stop.request_stop();
  opt.budget.stop = &stop;
  const auto summary = fuzz::run_fuzz(opt);
  EXPECT_EQ(summary.cases_run, 0u);
  EXPECT_EQ(summary.stop_reason, robust::StopReason::kStopRequested);
}

TEST(FuzzTargets, NamesRoundTrip) {
  for (const auto t :
       {fuzz::Target::kIoRoundtrip, fuzz::Target::kParserCorruption,
        fuzz::Target::kOptimizerDiff, fuzz::Target::kCecCross,
        fuzz::Target::kSelftest}) {
    EXPECT_EQ(fuzz::parse_target(fuzz::to_string(t)), t);
  }
  EXPECT_THROW(fuzz::parse_target("no-such-target"), std::invalid_argument);
}

} // namespace
} // namespace rcgp
