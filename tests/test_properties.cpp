// Cross-module property sweeps: randomized end-to-end invariants that tie
// the substrates together (truth tables <-> BDD <-> SAT <-> netlists).

#include <gtest/gtest.h>

#include <sstream>

#include "aig/aig_simulate.hpp"
#include "bdd/bdd.hpp"
#include "benchmarks/benchmarks.hpp"
#include "cec/bdd_cec.hpp"
#include "cec/sat_cec.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "core/mutation.hpp"
#include "core/shrink.hpp"
#include "fuzz/generator.hpp"
#include "io/aiger.hpp"
#include "io/blif.hpp"
#include "io/rqfp_writer.hpp"
#include "io/verilog.hpp"
#include "rqfp/simulate.hpp"
#include "sat/cnf.hpp"
#include "tt/isop.hpp"
#include "tt/npn.hpp"
#include "util/rng.hpp"

namespace rcgp {
namespace {

tt::TruthTable random_table(unsigned vars, util::Rng& rng) {
  tt::TruthTable t(vars);
  for (std::size_t w = 0; w < t.num_words(); ++w) {
    t.set_word(w, rng.next());
  }
  return t;
}

class CrossEngine : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossEngine, TruthTableBddSatAgreeOnRandomFunctions) {
  util::Rng rng(GetParam());
  const unsigned nv = 3 + static_cast<unsigned>(rng.below(3)); // 3..5
  const auto f = random_table(nv, rng);

  // BDD round trip.
  bdd::Manager manager(nv);
  const auto node = manager.from_truth_table(f);
  EXPECT_EQ(manager.to_truth_table(node), f);
  EXPECT_EQ(manager.count_sat(node), f.count_ones());

  // SAT: the ISOP encoding of f must be satisfiable exactly on the onset.
  sat::Solver solver;
  sat::CnfBuilder builder(solver);
  std::vector<sat::Lit> pis;
  for (unsigned i = 0; i < nv; ++i) {
    pis.push_back(builder.new_lit());
  }
  const auto lit = cec::encode_table(builder, f, pis);
  for (std::uint64_t x = 0; x < f.num_bits(); ++x) {
    std::vector<sat::Lit> assume;
    for (unsigned i = 0; i < nv; ++i) {
      assume.push_back((x >> i) & 1 ? pis[i] : ~pis[i]);
    }
    ASSERT_EQ(solver.solve(assume), sat::SolveResult::kSat);
    EXPECT_EQ(solver.model_value(lit), f.bit(x)) << "x=" << x;
  }
}

TEST_P(CrossEngine, FactoredAigMatchesIsopCover) {
  util::Rng rng(GetParam() + 77);
  const unsigned nv = 2 + static_cast<unsigned>(rng.below(4)); // 2..5
  const auto f = random_table(nv, rng);
  const auto cubes = tt::isop(f);
  EXPECT_EQ(tt::cover_to_table(cubes, nv), f);
  const auto net = core::aig_from_tables(std::vector<tt::TruthTable>{f});
  EXPECT_EQ(aig::simulate(net)[0], f);
}

TEST_P(CrossEngine, NpnClassInvariantUnderRandomWalk) {
  util::Rng rng(GetParam() + 271);
  tt::TruthTable f(4);
  f.set_word(0, rng.next());
  const auto canon = tt::npn_canonize(f).canon;
  tt::TruthTable g = f;
  // Random sequence of flips/swaps/complement keeps the NPN class.
  for (int step = 0; step < 12; ++step) {
    switch (rng.below(3)) {
      case 0: g = g.flip_var(static_cast<unsigned>(rng.below(4))); break;
      case 1:
        g = g.swap_vars(static_cast<unsigned>(rng.below(4)),
                        static_cast<unsigned>(rng.below(4)));
        break;
      default: g = ~g; break;
    }
  }
  EXPECT_EQ(tt::npn_canonize(g).canon, canon);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngine,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

class SynthesisSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthesisSoundness, RandomSpecsSurviveTheWholeFlow) {
  // Random multi-output specifications through the complete pipeline with
  // all three equivalence engines agreeing at the end.
  util::Rng rng(GetParam() * 7919);
  const unsigned nv = 3 + static_cast<unsigned>(rng.below(2)); // 3..4
  const unsigned outs = 1 + static_cast<unsigned>(rng.below(3));
  std::vector<tt::TruthTable> spec;
  for (unsigned o = 0; o < outs; ++o) {
    spec.push_back(random_table(nv, rng));
  }
  core::FlowOptions opt;
  opt.evolve.generations = 1500;
  opt.evolve.seed = GetParam();
  const auto r = core::synthesize(spec, opt);
  ASSERT_EQ(r.optimized.validate(), "");
  EXPECT_TRUE(cec::sim_check(r.optimized, spec).all_match);
  EXPECT_EQ(cec::sat_check(r.optimized, spec).verdict,
            cec::CecVerdict::kEquivalent);
  EXPECT_TRUE(cec::bdd_check(r.optimized, spec).equivalent);
}

TEST_P(SynthesisSoundness, MutationWalkKeepsLegalityForever) {
  // Long mutation random walk: the single fan-out invariant and the
  // feed-forward property must hold after every step, and shrink must
  // never change PO functions.
  util::Rng rng(GetParam() * 104729);
  const auto b = benchmarks::get("graycode4");
  core::FlowOptions opt;
  opt.run_cgp = false;
  auto net = core::synthesize(b.spec, opt).initial;
  for (int step = 0; step < 120; ++step) {
    core::mutate(net, rng, {});
    ASSERT_EQ(net.validate(), "") << "step " << step;
    const auto before = rqfp::simulate(net);
    const auto small = core::shrink(net);
    ASSERT_EQ(rqfp::simulate(small), before) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisSoundness,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class FormatBridges : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FormatBridges, VerilogBlifAigerAllDescribeTheSameCircuit) {
  util::Rng rng(GetParam() + 31);
  // Random AIG -> each format -> parse back: all four networks equal.
  aig::Aig net;
  std::vector<aig::Signal> pool{net.const0()};
  for (int i = 0; i < 5; ++i) {
    pool.push_back(net.create_pi());
  }
  for (int i = 0; i < 25; ++i) {
    const auto a = pool[rng.below(pool.size())] ^ rng.chance(0.5);
    const auto b = pool[rng.below(pool.size())] ^ rng.chance(0.5);
    pool.push_back(net.create_and(a, b));
  }
  for (int i = 0; i < 3; ++i) {
    net.add_po(pool[rng.below(pool.size())] ^ rng.chance(0.5));
  }
  const auto reference = aig::simulate(net);
  EXPECT_EQ(aig::simulate(io::parse_verilog_string(
                io::write_verilog_string(net))),
            reference);
  EXPECT_EQ(aig::simulate(io::parse_blif_string(io::write_blif_string(net))),
            reference);
  EXPECT_EQ(
      aig::simulate(io::parse_aiger_string(io::write_aiger_string(net))),
      reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatBridges,
                         ::testing::Values(11, 22, 33, 44));

// Bounded versions of the `rcgp fuzz` targets, driven by the same
// generators (src/fuzz/generator.hpp), so every ctest run covers a slice
// of the fuzzer's property space. `rcgp fuzz` runs the open-ended version.
class FuzzProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzProperties, IoRoundTripIdentity) {
  util::Rng rng(GetParam() * 2654435761u);
  // RQFP text format: structural identity.
  const auto net = fuzz::random_netlist(rng);
  EXPECT_TRUE(io::parse_rqfp_string(io::write_rqfp_string(net)) == net);
  // AIG formats: functional identity against the simulation reference.
  const auto g = fuzz::random_aig(rng);
  const auto ref = aig::simulate(g);
  EXPECT_EQ(aig::simulate(io::parse_verilog_string(
                io::write_verilog_string(g))),
            ref);
  EXPECT_EQ(aig::simulate(io::parse_blif_string(io::write_blif_string(g))),
            ref);
  EXPECT_EQ(aig::simulate(io::parse_aiger_string(io::write_aiger_string(g))),
            ref);
  std::istringstream bin(io::write_aiger_binary_string(g));
  EXPECT_EQ(aig::simulate(io::parse_aiger_binary(bin)), ref);
}

TEST_P(FuzzProperties, CecEnginesAgreeOnRandomNetlists) {
  util::Rng rng(GetParam() * 40503u + 11);
  fuzz::NetlistShape shape;
  shape.max_pis = 4;
  shape.max_gates = 14;
  const auto net = fuzz::random_netlist(rng, shape);
  const auto spec = rqfp::simulate(net);
  EXPECT_TRUE(cec::sim_check(net, spec).all_match);
  EXPECT_TRUE(cec::bdd_check(net, spec).equivalent);
  EXPECT_EQ(cec::sat_check(net, spec).verdict,
            cec::CecVerdict::kEquivalent);
  // A mutated variant: BDD and SAT must agree with exhaustive simulation
  // whichever way the mutation went.
  auto variant = net;
  core::mutate(variant, rng, {});
  const bool equal = rqfp::simulate(variant) == spec;
  EXPECT_EQ(cec::bdd_check(variant, net).equivalent, equal);
  EXPECT_EQ(cec::sat_check(variant, net).verdict,
            equal ? cec::CecVerdict::kEquivalent
                  : cec::CecVerdict::kNotEquivalent);
}

TEST_P(FuzzProperties, DeltaEvaluationMatchesFullRecomputation) {
  util::Rng rng(GetParam() * 6364136223846793005ull + 1442695040888963407ull);
  fuzz::NetlistShape shape;
  shape.max_pis = 4;
  shape.max_gates = 12;
  auto base = fuzz::random_netlist(rng, shape);
  const auto spec = rqfp::simulate(base);
  core::FitnessOptions fopt;
  fopt.schedule = rng.chance(0.5) ? rqfp::BufferSchedule::kBest
                                  : rqfp::BufferSchedule::kAsap;
  fopt.objective = rng.chance(0.5) ? core::Objective::kJjCount
                                   : core::Objective::kPaperLexicographic;
  rqfp::SimCache sim;
  rqfp::build_sim_cache(base, sim);
  rqfp::CostCache cost;
  rqfp::build_cost_cache(base, fopt.schedule, cost);
  for (int step = 0; step < 12; ++step) {
    auto child = base;
    core::mutate(child, rng, {});
    const auto full = core::evaluate(child, spec, fopt);
    const auto delta = core::evaluate_delta(base, sim, cost, child, spec,
                                            fopt);
    ASSERT_TRUE(full.success_rate == delta.success_rate &&
                full.n_r == delta.n_r && full.n_g == delta.n_g &&
                full.n_b == delta.n_b)
        << "step " << step << ": delta " << delta.to_string() << " vs full "
        << full.to_string();
    if (full.better_or_equal(core::evaluate(base, spec, fopt))) {
      rqfp::update_sim_cache(base, child, sim);
      rqfp::update_cost_cache(base, child, cost);
      base = child;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Determinism, WholeFlowIsBitReproducible) {
  const auto b = benchmarks::get("c17");
  core::FlowOptions opt;
  opt.evolve.generations = 4000;
  opt.evolve.seed = 12345;
  const auto r1 = core::synthesize(b.spec, opt);
  const auto r2 = core::synthesize(b.spec, opt);
  EXPECT_TRUE(r1.optimized == r2.optimized);
  EXPECT_TRUE(r1.initial == r2.initial);
}

} // namespace
} // namespace rcgp
