#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "cec/sim_cec.hpp"
#include "exact/exact_rqfp.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::exact {
namespace {

std::vector<tt::TruthTable> single(const tt::TruthTable& t) { return {t}; }

TEST(Exact, ZeroGatesForPassThrough) {
  // The identity function is a PI port: no gates needed.
  const auto spec = single(tt::TruthTable::projection(2, 0));
  const auto r = exact_synthesize(spec);
  ASSERT_EQ(r.status, ExactStatus::kSolved);
  EXPECT_EQ(r.gates, 0u);
  EXPECT_TRUE(cec::sim_check(*r.netlist, spec).all_match);
}

TEST(Exact, ZeroGatesForConstantOne) {
  const auto spec = single(tt::TruthTable::constant(2, true));
  const auto r = exact_synthesize(spec);
  ASSERT_EQ(r.status, ExactStatus::kSolved);
  EXPECT_EQ(r.gates, 0u);
}

TEST(Exact, SingleGateForAnd) {
  const auto spec = single(tt::TruthTable::projection(2, 0) &
                           tt::TruthTable::projection(2, 1));
  const auto r = exact_synthesize(spec);
  ASSERT_EQ(r.status, ExactStatus::kSolved);
  EXPECT_EQ(r.gates, 1u);
  EXPECT_TRUE(cec::sim_check(*r.netlist, spec).all_match);
  EXPECT_EQ(r.netlist->validate(), "");
}

TEST(Exact, SingleGateForMajority) {
  const auto spec = single(tt::TruthTable::majority(
      tt::TruthTable::projection(3, 0), tt::TruthTable::projection(3, 1),
      tt::TruthTable::projection(3, 2)));
  const auto r = exact_synthesize(spec);
  ASSERT_EQ(r.status, ExactStatus::kSolved);
  EXPECT_EQ(r.gates, 1u);
}

TEST(Exact, XorNeedsMoreThanOneGate) {
  // XOR2 is not a single-gate RQFP function (each output is a phased
  // majority of the inputs).
  const auto spec = single(tt::TruthTable::projection(2, 0) ^
                           tt::TruthTable::projection(2, 1));
  const auto r = exact_synthesize(spec);
  ASSERT_EQ(r.status, ExactStatus::kSolved);
  EXPECT_GE(r.gates, 2u);
  EXPECT_TRUE(cec::sim_check(*r.netlist, spec).all_match);
}

TEST(Exact, InfeasibleGateCountIsUnsat) {
  const auto spec = single(tt::TruthTable::projection(2, 0) ^
                           tt::TruthTable::projection(2, 1));
  const auto r = exact_try(spec, 1, std::nullopt);
  EXPECT_EQ(r.status, ExactStatus::kUnsat);
}

TEST(Exact, GarbageBoundBindsSolution) {
  // AND with one gate has garbage 2; forbidding any garbage makes the
  // 1-gate encoding UNSAT.
  const auto spec = single(tt::TruthTable::projection(2, 0) &
                           tt::TruthTable::projection(2, 1));
  const auto unrestricted = exact_try(spec, 1, std::nullopt);
  ASSERT_EQ(unrestricted.status, ExactStatus::kSolved);
  EXPECT_EQ(unrestricted.garbage, 2u);
  const auto bounded = exact_try(spec, 1, 0u);
  EXPECT_EQ(bounded.status, ExactStatus::kUnsat);
}

TEST(Exact, MaxGatesExhaustedIsUnsat) {
  const auto spec = single(tt::TruthTable::projection(2, 0) ^
                           tt::TruthTable::projection(2, 1));
  ExactParams params;
  params.max_gates = 1;
  const auto r = exact_synthesize(spec, params);
  EXPECT_EQ(r.status, ExactStatus::kUnsat);
}

TEST(Exact, BudgetExhaustionReportsTimeout) {
  const auto b = benchmarks::get("graycode4");
  ExactParams params;
  params.max_gates = 7;
  params.conflicts_per_call = 50; // absurdly small on purpose
  const auto r = exact_synthesize(b.spec, params);
  EXPECT_EQ(r.status, ExactStatus::kTimeout);
}

TEST(Exact, DecoderMatchesPaperOptimum) {
  // Paper Table 1: decoder_2_4 exact synthesis finds 3 gates, 1 garbage.
  const auto b = benchmarks::get("decoder_2_4");
  ExactParams params;
  params.max_gates = 3;
  params.time_limit_seconds = 90;
  const auto r = exact_synthesize(b.spec, params);
  ASSERT_EQ(r.status, ExactStatus::kSolved);
  EXPECT_EQ(r.gates, 3u);
  EXPECT_EQ(r.garbage, 1u);
  EXPECT_TRUE(cec::sim_check(*r.netlist, b.spec).all_match);
  EXPECT_EQ(r.netlist->validate(), "");
}

TEST(Exact, FullAdderMatchesPaperOptimum) {
  // Paper Table 1: full adder exact synthesis finds 3 gates, 2 garbage.
  const auto b = benchmarks::get("full_adder");
  ExactParams params;
  params.max_gates = 3;
  params.time_limit_seconds = 90;
  const auto r = exact_synthesize(b.spec, params);
  ASSERT_EQ(r.status, ExactStatus::kSolved);
  EXPECT_EQ(r.gates, 3u);
  EXPECT_EQ(r.garbage, 2u);
  EXPECT_TRUE(cec::sim_check(*r.netlist, b.spec).all_match);
}

/// Every 2-variable function must be exactly synthesizable within 2 gates
/// (XOR/XNOR need two, everything else at most one).
class ExactAllTwoVarFunctions : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExactAllTwoVarFunctions, SolvedAndVerified) {
  tt::TruthTable t(2);
  t.set_word(0, GetParam());
  const std::vector<tt::TruthTable> spec{t};
  ExactParams params;
  params.max_gates = 2;
  params.time_limit_seconds = 30;
  const auto r = exact_synthesize(spec, params);
  ASSERT_EQ(r.status, ExactStatus::kSolved) << "function " << GetParam();
  EXPECT_TRUE(cec::sim_check(*r.netlist, spec).all_match);
  EXPECT_EQ(r.netlist->validate(), "");
  // Free (0-gate) functions are the ports themselves: constant 1 and the
  // two PIs. Complements need an inverter gate; XOR/XNOR need two gates.
  const bool is_xor = GetParam() == 0b0110 || GetParam() == 0b1001;
  const bool is_port =
      GetParam() == 0b1111 || GetParam() == 0b1010 || GetParam() == 0b1100;
  EXPECT_EQ(r.gates, is_xor ? 2u : is_port ? 0u : 1u)
      << "function " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, ExactAllTwoVarFunctions,
                         ::testing::Range(0u, 16u));

TEST(Exact, MultiOutputSharing) {
  // {AND, OR} of the same inputs fits in one gate (outputs 2 and another
  // row configured as OR).
  std::vector<tt::TruthTable> spec{
      tt::TruthTable::projection(2, 0) & tt::TruthTable::projection(2, 1),
      tt::TruthTable::projection(2, 0) | tt::TruthTable::projection(2, 1)};
  const auto r = exact_synthesize(spec);
  ASSERT_EQ(r.status, ExactStatus::kSolved);
  EXPECT_EQ(r.gates, 1u);
  EXPECT_TRUE(cec::sim_check(*r.netlist, spec).all_match);
}

} // namespace
} // namespace rcgp::exact
