#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "cec/bdd_cec.hpp"
#include "core/flow.hpp"
#include "benchmarks/benchmarks.hpp"
#include "util/rng.hpp"

namespace rcgp::bdd {
namespace {

TEST(Bdd, TerminalsAndVariables) {
  Manager m(3);
  EXPECT_EQ(m.ite(kTrue, kTrue, kFalse), kTrue);
  EXPECT_EQ(m.ite(kFalse, kTrue, kFalse), kFalse);
  const auto x = m.var(0);
  EXPECT_NE(x, kTrue);
  EXPECT_NE(x, kFalse);
  EXPECT_EQ(m.var(0), x); // unique table: same node
  EXPECT_THROW(m.var(3), std::invalid_argument);
}

TEST(Bdd, Canonicity) {
  Manager m(3);
  const auto a = m.var(0);
  const auto b = m.var(1);
  const auto c = m.var(2);
  // (a & b) | c  ==  (b & a) | c  as the same node.
  const auto f = m.apply_or(m.apply_and(a, b), c);
  const auto g = m.apply_or(c, m.apply_and(b, a));
  EXPECT_EQ(f, g);
  // De Morgan as node identity.
  EXPECT_EQ(m.apply_not(m.apply_and(a, b)),
            m.apply_or(m.apply_not(a), m.apply_not(b)));
  // Double negation.
  EXPECT_EQ(m.apply_not(m.apply_not(f)), f);
}

TEST(Bdd, EvaluateMatchesSemantics) {
  Manager m(3);
  const auto a = m.var(0);
  const auto b = m.var(1);
  const auto c = m.var(2);
  const auto f = m.apply_xor(m.apply_and(a, b), c);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const bool va = x & 1;
    const bool vb = (x >> 1) & 1;
    const bool vc = (x >> 2) & 1;
    EXPECT_EQ(m.evaluate(f, x), (va && vb) != vc) << x;
  }
}

TEST(Bdd, MajorityMatchesTruthTable) {
  Manager m(3);
  const auto f = m.apply_maj(m.var(0), m.var(1), m.var(2));
  const auto expect = tt::TruthTable::majority(
      tt::TruthTable::projection(3, 0), tt::TruthTable::projection(3, 1),
      tt::TruthTable::projection(3, 2));
  EXPECT_EQ(m.to_truth_table(f), expect);
}

TEST(Bdd, TruthTableRoundTrip) {
  util::Rng rng(11);
  for (unsigned nv : {1u, 3u, 5u, 7u}) {
    Manager m(nv);
    for (int round = 0; round < 10; ++round) {
      tt::TruthTable t(nv);
      for (std::size_t w = 0; w < t.num_words(); ++w) {
        t.set_word(w, rng.next());
      }
      const auto f = m.from_truth_table(t);
      EXPECT_EQ(m.to_truth_table(f), t) << "nv=" << nv;
      // Rebuilding yields the identical node (canonicity).
      EXPECT_EQ(m.from_truth_table(t), f);
    }
  }
}

TEST(Bdd, CountSat) {
  Manager m(4);
  EXPECT_EQ(m.count_sat(kFalse), 0u);
  EXPECT_EQ(m.count_sat(kTrue), 16u);
  EXPECT_EQ(m.count_sat(m.var(0)), 8u);
  EXPECT_EQ(m.count_sat(m.apply_and(m.var(0), m.var(3))), 4u);
  const auto x = m.apply_xor(m.var(1), m.var(2));
  EXPECT_EQ(m.count_sat(x), 8u);
  util::Rng rng(5);
  for (int round = 0; round < 10; ++round) {
    tt::TruthTable t(4);
    t.set_word(0, rng.next());
    EXPECT_EQ(m.count_sat(m.from_truth_table(t)), t.count_ones());
  }
}

TEST(Bdd, FindSat) {
  Manager m(3);
  std::uint64_t assignment = 99;
  EXPECT_FALSE(m.find_sat(kFalse, assignment));
  const auto f = m.apply_and(m.apply_not(m.var(0)), m.var(2));
  ASSERT_TRUE(m.find_sat(f, assignment));
  EXPECT_TRUE(m.evaluate(f, assignment));
}

TEST(Bdd, SizeCountsUniqueNodes) {
  Manager m(3);
  EXPECT_EQ(m.size(kTrue), 0u);
  EXPECT_EQ(m.size(m.var(1)), 1u);
  const auto f = m.apply_and(m.var(0), m.apply_and(m.var(1), m.var(2)));
  EXPECT_EQ(m.size(f), 3u);
}

TEST(Bdd, SharedSubgraphs) {
  // XOR chains grow linearly thanks to sharing.
  Manager m(10);
  NodeRef f = kFalse;
  for (unsigned v = 0; v < 10; ++v) {
    f = m.apply_xor(f, m.var(v));
  }
  EXPECT_EQ(m.size(f), 19u); // 2n - 1 nodes for parity
  EXPECT_EQ(m.count_sat(f), 512u);
}

} // namespace
} // namespace rcgp::bdd

namespace rcgp::cec {
namespace {

TEST(BddCec, NetlistAgainstSpec) {
  const auto b = benchmarks::get("decoder_2_4");
  core::FlowOptions opt;
  opt.run_cgp = false;
  const auto r = core::synthesize(b.spec, opt);
  const auto res = bdd_check(r.initial, b.spec);
  EXPECT_TRUE(res.equivalent);
  EXPECT_GT(res.bdd_nodes, 2u);
}

TEST(BddCec, DetectsInequivalenceWithCounterexample) {
  const auto b = benchmarks::get("full_adder");
  core::FlowOptions opt;
  opt.run_cgp = false;
  const auto r = core::synthesize(b.spec, opt);
  auto wrong = b.spec;
  wrong[0].set_bit(3, !wrong[0].bit(3));
  const auto res = bdd_check(r.initial, wrong);
  EXPECT_FALSE(res.equivalent);
  ASSERT_TRUE(res.counterexample.has_value());
  // The counterexample must be a genuinely differing assignment.
  const auto good = bdd_check(r.initial, b.spec);
  EXPECT_TRUE(good.equivalent);
}

TEST(BddCec, NetlistVsNetlistMatchesSat) {
  const auto b = benchmarks::get("graycode4");
  core::FlowOptions opt;
  opt.evolve.generations = 3000;
  const auto r = core::synthesize(b.spec, opt);
  const auto bddr = bdd_check(r.initial, r.optimized);
  EXPECT_TRUE(bddr.equivalent);
}

TEST(BddCec, InterfaceMismatchThrows) {
  rqfp::Netlist a(2);
  a.add_po(1);
  rqfp::Netlist b(3);
  b.add_po(1);
  EXPECT_THROW(bdd_check(a, b), std::invalid_argument);
}

} // namespace
} // namespace rcgp::cec
