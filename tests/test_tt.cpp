#include <gtest/gtest.h>

#include <vector>

#include "tt/isop.hpp"
#include "tt/npn.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace rcgp::tt {
namespace {

TruthTable random_table(unsigned vars, util::Rng& rng) {
  TruthTable t(vars);
  for (std::size_t w = 0; w < t.num_words(); ++w) {
    t.set_word(w, rng.next());
  }
  return t;
}

TEST(TruthTable, ConstantTables) {
  for (unsigned v : {0u, 1u, 3u, 6u, 8u}) {
    const auto zero = TruthTable::constant(v, false);
    const auto one = TruthTable::constant(v, true);
    EXPECT_TRUE(zero.is_constant0());
    EXPECT_TRUE(one.is_constant1());
    EXPECT_EQ(zero.count_ones(), 0u);
    EXPECT_EQ(one.count_ones(), one.num_bits());
    EXPECT_EQ(~zero, one);
  }
}

TEST(TruthTable, ProjectionBits) {
  for (unsigned nv : {1u, 3u, 6u, 7u}) {
    for (unsigned v = 0; v < nv; ++v) {
      const auto p = TruthTable::projection(nv, v);
      for (std::uint64_t x = 0; x < p.num_bits(); ++x) {
        EXPECT_EQ(p.bit(x), ((x >> v) & 1) != 0)
            << "nv=" << nv << " v=" << v << " x=" << x;
      }
    }
  }
}

TEST(TruthTable, ProjectionOutOfRangeThrows) {
  EXPECT_THROW(TruthTable::projection(3, 3), std::invalid_argument);
}

TEST(TruthTable, TooManyVarsThrows) {
  EXPECT_THROW(TruthTable(TruthTable::kMaxVars + 1), std::invalid_argument);
}

TEST(TruthTable, SetAndGetBits) {
  TruthTable t(7);
  t.set_bit(0, true);
  t.set_bit(77, true);
  t.set_bit(127, true);
  EXPECT_TRUE(t.bit(0));
  EXPECT_TRUE(t.bit(77));
  EXPECT_TRUE(t.bit(127));
  EXPECT_EQ(t.count_ones(), 3u);
  t.set_bit(77, false);
  EXPECT_FALSE(t.bit(77));
  EXPECT_EQ(t.count_ones(), 2u);
}

TEST(TruthTable, BooleanOperators) {
  util::Rng rng(1);
  for (unsigned nv : {2u, 5u, 6u, 8u}) {
    const auto a = random_table(nv, rng);
    const auto b = random_table(nv, rng);
    const auto both = a & b;
    const auto either = a | b;
    const auto diff = a ^ b;
    for (std::uint64_t x = 0; x < a.num_bits(); ++x) {
      EXPECT_EQ(both.bit(x), a.bit(x) && b.bit(x));
      EXPECT_EQ(either.bit(x), a.bit(x) || b.bit(x));
      EXPECT_EQ(diff.bit(x), a.bit(x) != b.bit(x));
    }
    // De Morgan.
    EXPECT_EQ(~(a & b), ~a | ~b);
    EXPECT_EQ(~(a | b), ~a & ~b);
  }
}

TEST(TruthTable, ArityMismatchThrows) {
  const auto a = TruthTable::constant(3, true);
  const auto b = TruthTable::constant(4, true);
  EXPECT_THROW(a & b, std::invalid_argument);
  EXPECT_THROW(a.hamming_distance(b), std::invalid_argument);
}

TEST(TruthTable, MajorityDefinition) {
  for (unsigned nv : {3u, 6u, 7u}) {
    util::Rng rng(nv);
    const auto a = random_table(nv, rng);
    const auto b = random_table(nv, rng);
    const auto c = random_table(nv, rng);
    const auto m = TruthTable::majority(a, b, c);
    for (std::uint64_t x = 0; x < m.num_bits(); ++x) {
      const int sum = a.bit(x) + b.bit(x) + c.bit(x);
      EXPECT_EQ(m.bit(x), sum >= 2);
    }
  }
}

TEST(TruthTable, MajorityAxioms) {
  util::Rng rng(9);
  const auto a = random_table(5, rng);
  const auto b = random_table(5, rng);
  EXPECT_EQ(TruthTable::majority(a, a, b), a);
  EXPECT_EQ(TruthTable::majority(a, ~a, b), b);
  EXPECT_EQ(TruthTable::majority(a, b, TruthTable::constant(5, false)),
            a & b);
  EXPECT_EQ(TruthTable::majority(a, b, TruthTable::constant(5, true)),
            a | b);
}

TEST(TruthTable, IteDefinition) {
  util::Rng rng(17);
  const auto s = random_table(4, rng);
  const auto t = random_table(4, rng);
  const auto e = random_table(4, rng);
  const auto m = TruthTable::ite(s, t, e);
  for (std::uint64_t x = 0; x < m.num_bits(); ++x) {
    EXPECT_EQ(m.bit(x), s.bit(x) ? t.bit(x) : e.bit(x));
  }
}

TEST(TruthTable, BinaryRoundTrip) {
  const auto t = TruthTable::from_binary("1000");
  EXPECT_EQ(t.num_vars(), 2u);
  EXPECT_EQ(t, TruthTable::projection(2, 0) & TruthTable::projection(2, 1));
  EXPECT_EQ(t.to_binary(), "1000");
  EXPECT_THROW(TruthTable::from_binary("101"), std::invalid_argument);
  EXPECT_THROW(TruthTable::from_binary("10x0"), std::invalid_argument);
}

TEST(TruthTable, HexRoundTrip) {
  util::Rng rng(23);
  for (unsigned nv : {2u, 4u, 7u}) {
    const auto t = random_table(nv, rng);
    EXPECT_EQ(TruthTable::from_hex(nv, t.to_hex()), t);
  }
  EXPECT_EQ(TruthTable::from_hex(2, "8").to_binary(), "1000");
  EXPECT_THROW(TruthTable::from_hex(2, "123"), std::invalid_argument);
  EXPECT_THROW(TruthTable::from_hex(2, "g"), std::invalid_argument);
}

TEST(TruthTable, CofactorsAndDependence) {
  util::Rng rng(31);
  for (unsigned nv : {3u, 6u, 8u}) {
    const auto f = random_table(nv, rng);
    for (unsigned v = 0; v < nv; ++v) {
      const auto f0 = f.cofactor0(v);
      const auto f1 = f.cofactor1(v);
      EXPECT_FALSE(f0.depends_on(v));
      EXPECT_FALSE(f1.depends_on(v));
      for (std::uint64_t x = 0; x < f.num_bits(); ++x) {
        const std::uint64_t x0 = x & ~(std::uint64_t{1} << v);
        const std::uint64_t x1 = x | (std::uint64_t{1} << v);
        EXPECT_EQ(f0.bit(x), f.bit(x0));
        EXPECT_EQ(f1.bit(x), f.bit(x1));
      }
      // Shannon expansion reconstructs f.
      const auto proj = TruthTable::projection(nv, v);
      EXPECT_EQ((proj & f1) | (~proj & f0), f);
    }
  }
}

TEST(TruthTable, FlipVarInvolution) {
  util::Rng rng(37);
  for (unsigned nv : {2u, 6u, 7u}) {
    const auto f = random_table(nv, rng);
    for (unsigned v = 0; v < nv; ++v) {
      const auto g = f.flip_var(v);
      EXPECT_EQ(g.flip_var(v), f);
      for (std::uint64_t x = 0; x < f.num_bits(); ++x) {
        EXPECT_EQ(g.bit(x), f.bit(x ^ (std::uint64_t{1} << v)));
      }
    }
  }
}

TEST(TruthTable, SwapVarsSemantics) {
  util::Rng rng(41);
  const auto f = random_table(5, rng);
  const auto g = f.swap_vars(1, 3);
  for (std::uint64_t x = 0; x < f.num_bits(); ++x) {
    const std::uint64_t b1 = (x >> 1) & 1;
    const std::uint64_t b3 = (x >> 3) & 1;
    std::uint64_t y = x & ~0xAull & ~0x8ull; // clear bits 1 and 3
    y = (x & ~((1ull << 1) | (1ull << 3))) | (b1 << 3) | (b3 << 1);
    EXPECT_EQ(g.bit(x), f.bit(y));
  }
  EXPECT_EQ(g.swap_vars(3, 1), f);
  EXPECT_EQ(f.swap_vars(2, 2), f);
}

TEST(TruthTable, ExtendRemapsVariables) {
  const auto and2 = TruthTable::from_binary("1000");
  const auto wide = and2.extend(4, {3, 1});
  EXPECT_EQ(wide,
            TruthTable::projection(4, 3) & TruthTable::projection(4, 1));
  EXPECT_THROW(and2.extend(4, {0}), std::invalid_argument);
}

TEST(TruthTable, HammingDistance) {
  const auto a = TruthTable::from_binary("1100");
  const auto b = TruthTable::from_binary("1010");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(TruthTable, OrderingAndHash) {
  const auto a = TruthTable::from_binary("0001");
  const auto b = TruthTable::from_binary("0010");
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_NE(a.hash(), b.hash());
  // Different arity compares by arity first.
  EXPECT_TRUE(TruthTable::constant(2, true) < TruthTable::constant(3, false));
}

// ---------- NPN ----------

TEST(Npn, CanonizationIsInvariantUnderTransforms) {
  util::Rng rng(51);
  for (int round = 0; round < 30; ++round) {
    const unsigned nv = 2 + static_cast<unsigned>(rng.below(3)); // 2..4
    TruthTable f(nv);
    for (std::size_t w = 0; w < f.num_words(); ++w) {
      f.set_word(w, rng.next());
    }
    const auto canon_f = npn_canonize(f);
    // Apply a random NPN transform to f; the canon must not change.
    NpnTransform tr;
    std::array<unsigned, kMaxNpnVars> perm{0, 1, 2, 3, 4, 5};
    for (unsigned i = nv; i-- > 1;) {
      std::swap(perm[i], perm[rng.below(i + 1)]);
    }
    tr.perm = perm;
    tr.input_phase = static_cast<unsigned>(rng.below(1u << nv));
    tr.output_phase = rng.chance(0.5);
    const auto g = npn_apply(f, tr);
    const auto canon_g = npn_canonize(g);
    EXPECT_EQ(canon_f.canon, canon_g.canon) << "round " << round;
  }
}

TEST(Npn, ApplyUnapplyRoundTrip) {
  util::Rng rng(61);
  for (int round = 0; round < 30; ++round) {
    TruthTable f(4);
    f.set_word(0, rng.next());
    const auto c = npn_canonize(f);
    EXPECT_EQ(npn_apply(f, c.transform), c.canon);
    EXPECT_EQ(npn_unapply(c.canon, c.transform), f);
  }
}

TEST(Npn, RejectsWideTables) {
  EXPECT_THROW(npn_canonize(TruthTable(7)), std::invalid_argument);
}

TEST(Npn, RoundTripRecoversOriginalUpToSixVars) {
  // canonical form + transform -> inverse transform recovers the original,
  // for every supported arity.
  util::Rng rng(67);
  for (unsigned nv = 1; nv <= kMaxNpnVars; ++nv) {
    for (int round = 0; round < 8; ++round) {
      TruthTable f(nv);
      for (std::size_t w = 0; w < f.num_words(); ++w) {
        f.set_word(w, rng.next());
      }
      const auto c = npn_canonize(f);
      EXPECT_EQ(npn_apply(f, c.transform), c.canon)
          << "nv=" << nv << " round=" << round;
      EXPECT_EQ(npn_unapply(c.canon, c.transform), f)
          << "nv=" << nv << " round=" << round;
      // The canon is the class minimum, so it cannot exceed f itself.
      EXPECT_FALSE(f < c.canon) << "nv=" << nv << " round=" << round;
    }
  }
}

TEST(Npn, EqualClassTablesShareBitIdenticalCanon) {
  // Walk a random table through random class-preserving moves (variable
  // flips, swaps, output complement); every waypoint must canonize to a
  // bit-identical table.
  util::Rng rng(73);
  for (unsigned nv = 1; nv <= kMaxNpnVars; ++nv) {
    TruthTable f(nv);
    for (std::size_t w = 0; w < f.num_words(); ++w) {
      f.set_word(w, rng.next());
    }
    const auto canon = npn_canonize(f).canon;
    TruthTable g = f;
    for (int step = 0; step < 10; ++step) {
      switch (rng.below(3)) {
        case 0: g = g.flip_var(static_cast<unsigned>(rng.below(nv))); break;
        case 1:
          g = g.swap_vars(static_cast<unsigned>(rng.below(nv)),
                          static_cast<unsigned>(rng.below(nv)));
          break;
        default: g = ~g; break;
      }
      const auto canon_g = npn_canonize(g).canon;
      EXPECT_EQ(canon_g, canon) << "nv=" << nv << " step=" << step;
      EXPECT_EQ(canon_g.to_hex(), canon.to_hex());
    }
  }
}

TEST(Npn, ConstantAndProjectionClasses) {
  // Constants 0 and 1 share an NPN class; all projections share one.
  EXPECT_EQ(npn_canonize(TruthTable::constant(3, false)).canon,
            npn_canonize(TruthTable::constant(3, true)).canon);
  EXPECT_EQ(npn_canonize(TruthTable::projection(3, 0)).canon,
            npn_canonize(~TruthTable::projection(3, 2)).canon);
}

// ---------- ISOP ----------

TEST(Isop, CoversExactlyTheFunction) {
  util::Rng rng(71);
  for (unsigned nv : {1u, 2u, 3u, 4u, 5u, 6u, 7u}) {
    for (int round = 0; round < 10; ++round) {
      TruthTable f(nv);
      for (std::size_t w = 0; w < f.num_words(); ++w) {
        f.set_word(w, rng.next());
      }
      const auto cubes = isop(f);
      EXPECT_EQ(cover_to_table(cubes, nv), f)
          << "nv=" << nv << " round=" << round;
    }
  }
}

TEST(Isop, ConstantCovers) {
  EXPECT_TRUE(isop(TruthTable::constant(3, false)).empty());
  const auto ones = isop(TruthTable::constant(3, true));
  ASSERT_EQ(ones.size(), 1u);
  EXPECT_EQ(ones[0].mask, 0u);
}

TEST(Isop, SingleMintermIsOneFullCube) {
  TruthTable f(3);
  f.set_bit(5, true); // 101
  const auto cubes = isop(f);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0].num_literals(), 3u);
  EXPECT_TRUE(cubes[0].evaluates_true(5));
  EXPECT_FALSE(cubes[0].evaluates_true(4));
}

TEST(Isop, DontCaresShrinkTheCover) {
  // Onset {3}, dc {1,2}: the cover may use a smaller cube than the
  // exact minterm but must stay inside onset|dc and cover the onset.
  TruthTable onset(2);
  onset.set_bit(3, true);
  TruthTable dc(2);
  dc.set_bit(1, true);
  dc.set_bit(2, true);
  const auto cubes = isop(onset, dc);
  const auto covered = cover_to_table(cubes, 2);
  EXPECT_TRUE(covered.bit(3));
  EXPECT_FALSE(covered.bit(0));
}

TEST(Isop, CubeToString) {
  Cube c;
  c.mask = 0b101;
  c.polarity = 0b001;
  EXPECT_EQ(c.to_string(3), "1-0");
}

TEST(Isop, XorNeedsFourCubes) {
  const auto x = TruthTable::projection(2, 0) ^ TruthTable::projection(2, 1);
  EXPECT_EQ(isop(x).size(), 2u);
  const auto x3 = TruthTable::projection(3, 0) ^
                  TruthTable::projection(3, 1) ^
                  TruthTable::projection(3, 2);
  EXPECT_EQ(isop(x3).size(), 4u);
}

} // namespace
} // namespace rcgp::tt
