#include <gtest/gtest.h>

#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_simulate.hpp"
#include "aig/balance.hpp"
#include "aig/cuts.hpp"
#include "aig/refactor.hpp"
#include "aig/resyn.hpp"
#include "aig/rewrite.hpp"
#include "util/rng.hpp"

namespace rcgp::aig {
namespace {

/// Builds a pseudo-random AIG for property tests.
Aig random_aig(unsigned num_pis, unsigned num_nodes, unsigned num_pos,
               std::uint64_t seed) {
  util::Rng rng(seed);
  Aig net;
  std::vector<Signal> pool{net.const0()};
  for (unsigned i = 0; i < num_pis; ++i) {
    pool.push_back(net.create_pi());
  }
  for (unsigned i = 0; i < num_nodes; ++i) {
    const Signal a =
        pool[rng.below(pool.size())] ^ rng.chance(0.5);
    const Signal b =
        pool[rng.below(pool.size())] ^ rng.chance(0.5);
    pool.push_back(net.create_and(a, b));
  }
  for (unsigned i = 0; i < num_pos; ++i) {
    net.add_po(pool[rng.below(pool.size())] ^ rng.chance(0.5));
  }
  return net;
}

TEST(Aig, TrivialSimplifications) {
  Aig net;
  const Signal a = net.create_pi();
  EXPECT_EQ(net.create_and(a, net.const0()), net.const0());
  EXPECT_EQ(net.create_and(net.const1(), a), a);
  EXPECT_EQ(net.create_and(a, a), a);
  EXPECT_EQ(net.create_and(a, !a), net.const0());
  EXPECT_EQ(net.num_nodes(), 2u); // const + PI only
}

TEST(Aig, StructuralHashing) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal x = net.create_and(a, b);
  const Signal y = net.create_and(b, a); // commuted
  EXPECT_EQ(x, y);
  const Signal z = net.create_and(!a, b);
  EXPECT_NE(x, z);
  EXPECT_EQ(net.count_live_ands(), 0u); // no POs yet
  net.add_po(x);
  net.add_po(z);
  EXPECT_EQ(net.count_live_ands(), 2u);
}

TEST(Aig, DerivedGatesSimulateCorrectly) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  net.add_po(net.create_xor(a, b));
  net.add_po(net.create_or(a, b));
  net.add_po(net.create_mux(a, b, c));
  net.add_po(net.create_maj(a, b, c));
  const auto tts = simulate(net);
  const auto ta = tt::TruthTable::projection(3, 0);
  const auto tb = tt::TruthTable::projection(3, 1);
  const auto tc = tt::TruthTable::projection(3, 2);
  EXPECT_EQ(tts[0], ta ^ tb);
  EXPECT_EQ(tts[1], ta | tb);
  EXPECT_EQ(tts[2], tt::TruthTable::ite(ta, tb, tc));
  EXPECT_EQ(tts[3], tt::TruthTable::majority(ta, tb, tc));
}

TEST(Aig, ReplaceRedirectsAndCleanupDropsDead) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal x = net.create_and(a, b);
  const Signal y = net.create_and(x, a); // equals a&b
  net.add_po(y);
  net.replace(y.node(), x);
  EXPECT_EQ(net.po_at(0), x);
  const Aig clean = net.cleanup();
  EXPECT_EQ(clean.count_live_ands(), 1u);
  const auto tts = simulate(clean);
  EXPECT_EQ(tts[0], tt::TruthTable::projection(2, 0) &
                        tt::TruthTable::projection(2, 1));
}

TEST(Aig, ReplaceWithComplementPropagates) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal x = net.create_and(a, b);
  net.add_po(!x);
  net.replace(x.node(), !a); // pretend optimization proved x == !a
  EXPECT_EQ(net.po_at(0), a);
}

TEST(Aig, CleanupPreservesNamesAndInterface) {
  Aig net;
  net.create_pi("alpha");
  const Signal b = net.create_pi("beta");
  net.add_po(b, "out");
  const Aig clean = net.cleanup();
  EXPECT_EQ(clean.num_pis(), 2u);
  EXPECT_EQ(clean.pi_name(0), "alpha");
  EXPECT_EQ(clean.po_name(0), "out");
}

TEST(Aig, LevelsAndDepth) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal ab = net.create_and(a, b);
  const Signal abc = net.create_and(ab, c);
  net.add_po(abc);
  EXPECT_EQ(net.depth(), 2u);
  const auto levels = net.compute_levels();
  EXPECT_EQ(levels[ab.node()], 1u);
  EXPECT_EQ(levels[abc.node()], 2u);
}

TEST(Aig, ComputeRefsCountsFanouts) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal x = net.create_and(a, b);
  net.add_po(x);
  net.add_po(x);
  const auto refs = net.compute_refs();
  EXPECT_EQ(refs[x.node()], 2u);
  EXPECT_EQ(refs[a.node()], 1u);
}

TEST(Aig, PopNodesToRollsBackStrash) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const std::uint32_t mark = net.num_nodes();
  const Signal x = net.create_and(a, b);
  net.pop_nodes_to(mark);
  EXPECT_EQ(net.num_nodes(), mark);
  const Signal y = net.create_and(a, b);
  EXPECT_EQ(y.node(), x.node()); // id reused after rollback
}

TEST(AigSimulate, PatternsMatchExhaustive) {
  const Aig net = random_aig(6, 40, 4, 7);
  const auto tts = simulate(net);
  // Exhaustive 6-var table equals one 64-bit word; feed the identity
  // patterns and compare.
  std::vector<std::vector<std::uint64_t>> patterns(6);
  for (unsigned i = 0; i < 6; ++i) {
    patterns[i] = {tt::TruthTable::projection(6, i).word(0)};
  }
  const auto out = simulate_patterns(net, patterns);
  for (unsigned o = 0; o < 4; ++o) {
    EXPECT_EQ(out[o][0], tts[o].word(0));
  }
}

TEST(AigSimulate, RandomPatternHelpers) {
  util::Rng rng(3);
  const auto patterns = random_patterns(5, 4, rng);
  EXPECT_EQ(patterns.size(), 5u);
  EXPECT_EQ(patterns[0].size(), 4u);
  const Aig net = random_aig(5, 20, 2, 9);
  const auto out = simulate_patterns(net, patterns);
  EXPECT_EQ(out.size(), 2u);
}

// ---------- cuts ----------

TEST(Cuts, TrivialAndMergedCuts) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal ab = net.create_and(a, b);
  const Signal abc = net.create_and(ab, c);
  net.add_po(abc);
  const auto cuts = enumerate_cuts(net, {});
  // The root must have a cut {a,b,c} and the trivial cut {abc}.
  bool found_leaves = false;
  bool found_trivial = false;
  for (const auto& cut : cuts[abc.node()]) {
    if (cut.leaves == std::vector<std::uint32_t>{a.node(), b.node(),
                                                 c.node()}) {
      found_leaves = true;
    }
    if (cut.leaves == std::vector<std::uint32_t>{abc.node()}) {
      found_trivial = true;
    }
  }
  EXPECT_TRUE(found_leaves);
  EXPECT_TRUE(found_trivial);
}

TEST(Cuts, CutFunctionComputesConeSemantics) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal x = net.create_and(a, !b);
  const Signal y = net.create_and(x, c);
  net.add_po(y);
  Cut cut{{a.node(), b.node(), c.node()}};
  const auto f = cut_function(net, y.node(), cut);
  const auto expect = tt::TruthTable::projection(3, 0) &
                      ~tt::TruthTable::projection(3, 1) &
                      tt::TruthTable::projection(3, 2);
  EXPECT_EQ(f, expect);
}

TEST(Cuts, LeafCountRespected) {
  const Aig net = random_aig(8, 60, 3, 5);
  CutParams params;
  params.max_leaves = 4;
  const auto cuts = enumerate_cuts(net, params);
  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    for (const auto& cut : cuts[n]) {
      EXPECT_LE(cut.leaves.size(), 4u);
      EXPECT_TRUE(std::is_sorted(cut.leaves.begin(), cut.leaves.end()));
    }
  }
}

TEST(Cuts, DominatedCutsFiltered) {
  Cut small{{1, 2}};
  Cut big{{1, 2, 3}};
  EXPECT_TRUE(small.dominates(big));
  EXPECT_FALSE(big.dominates(small));
}

TEST(Cuts, ReconvergentCutStaysBounded) {
  const Aig net = random_aig(6, 50, 2, 13);
  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (!net.is_and(n)) {
      continue;
    }
    const Cut cut = reconvergent_cut(net, n, 6);
    EXPECT_LE(cut.leaves.size(), 6u);
    EXPECT_GE(cut.leaves.size(), 1u);
    // Cut function over its own cut must be computable (no escape).
    const auto f = try_cut_function(net, n, cut);
    EXPECT_TRUE(f.has_value());
  }
}

// ---------- optimization passes ----------

class PassEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PassEquivalence, RewritePreservesFunction) {
  Aig net = random_aig(6, 80, 4, GetParam());
  const auto before = simulate(net);
  rewrite_pass(net);
  const auto after = simulate(net);
  EXPECT_EQ(before, after);
}

TEST_P(PassEquivalence, RefactorPreservesFunction) {
  Aig net = random_aig(6, 80, 4, GetParam() + 1000);
  const auto before = simulate(net);
  refactor_pass(net);
  const auto after = simulate(net);
  EXPECT_EQ(before, after);
}

TEST_P(PassEquivalence, BalancePreservesFunction) {
  Aig net = random_aig(6, 80, 4, GetParam() + 2000);
  const auto before = simulate(net);
  const Aig balanced = balance(net);
  const auto after = simulate(balanced);
  EXPECT_EQ(before, after);
}

TEST_P(PassEquivalence, Resyn2PreservesFunctionAndNeverGrows) {
  Aig net = random_aig(7, 120, 5, GetParam() + 3000);
  const auto before = simulate(net);
  ResynStats stats;
  const Aig optimized = resyn2(net, &stats);
  EXPECT_EQ(before, simulate(optimized));
  EXPECT_LE(stats.ands_after, stats.ands_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Balance, ReducesChainDepth) {
  Aig net;
  std::vector<Signal> pis;
  for (int i = 0; i < 8; ++i) {
    pis.push_back(net.create_pi());
  }
  Signal acc = pis[0];
  for (int i = 1; i < 8; ++i) {
    acc = net.create_and(acc, pis[i]); // depth-7 chain
  }
  net.add_po(acc);
  EXPECT_EQ(net.depth(), 7u);
  const Aig balanced = balance(net);
  EXPECT_EQ(balanced.depth(), 3u); // ceil(log2(8))
  EXPECT_EQ(simulate(net), simulate(balanced));
}

TEST(Rewrite, RemovesRedundantLogic) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  // (a&b) | (a&c) -> a & (b|c): 3 ANDs to 2.
  const Signal ab = net.create_and(a, b);
  const Signal ac = net.create_and(a, c);
  net.add_po(net.create_or(ab, ac));
  const std::uint32_t before = net.count_live_ands();
  RewriteParams params;
  const auto stats = rewrite_pass(net, params);
  const Aig clean = net.cleanup();
  EXPECT_LE(clean.count_live_ands(), before);
  EXPECT_GT(stats.attempts, 0u);
  const auto tts = simulate(clean);
  const auto expect = tt::TruthTable::projection(3, 0) &
                      (tt::TruthTable::projection(3, 1) |
                       tt::TruthTable::projection(3, 2));
  EXPECT_EQ(tts[0], expect);
}

TEST(BuildFactored, ReconstructsFunctions) {
  util::Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    tt::TruthTable f(4);
    f.set_word(0, rng.next());
    Aig net;
    std::vector<Signal> pis;
    for (int i = 0; i < 4; ++i) {
      pis.push_back(net.create_pi());
    }
    const Signal s = build_factored(net, f, pis);
    net.add_po(s);
    EXPECT_EQ(simulate(net)[0], f) << round;
  }
}

TEST(GainManager, MeasuresMffc) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal ab = net.create_and(a, b);
  const Signal abc = net.create_and(ab, c);
  net.add_po(abc);
  GainManager gm(net);
  // abc's MFFC contains both AND nodes (ab has no other fanout).
  EXPECT_EQ(gm.deref_mffc(abc.node()), 2u);
  gm.ref_mffc(abc.node());
  EXPECT_EQ(gm.refs(ab.node()), 1u);
}

TEST(GainManager, SharedNodesNotInMffc) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal ab = net.create_and(a, b);
  const Signal x = net.create_and(ab, c);
  net.add_po(x);
  net.add_po(ab); // ab now shared
  GainManager gm(net);
  EXPECT_EQ(gm.deref_mffc(x.node()), 1u); // only x itself
  gm.ref_mffc(x.node());
}

} // namespace
} // namespace rcgp::aig
