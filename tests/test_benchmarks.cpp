#include <gtest/gtest.h>

#include <bit>

#include "benchmarks/benchmarks.hpp"
#include "benchmarks/reciprocal.hpp"

namespace rcgp::benchmarks {
namespace {

TEST(Benchmarks, RegistryKnowsAllTableNames) {
  for (const auto& name : all_names()) {
    const Benchmark b = get(name);
    EXPECT_EQ(b.name, name);
    EXPECT_EQ(b.spec.size(), b.num_pos);
    EXPECT_EQ(b.po_names.size(), b.num_pos);
    for (const auto& t : b.spec) {
      EXPECT_EQ(t.num_vars(), b.num_pis);
    }
  }
  EXPECT_THROW(get("nonexistent"), std::invalid_argument);
}

TEST(Benchmarks, TableSplitsMatchPaper) {
  EXPECT_EQ(table1_names().size(), 9u);
  EXPECT_EQ(table2_names().size(), 11u);
}

TEST(Benchmarks, PaperInterfaceColumns) {
  // The (n_pi, n_po) columns of Tables 1 and 2.
  const std::pair<const char*, std::pair<unsigned, unsigned>> expect[] = {
      {"full_adder", {3, 2}}, {"4gt10", {4, 1}},      {"alu", {5, 1}},
      {"c17", {5, 2}},        {"decoder_2_4", {2, 4}}, {"decoder_3_8", {3, 8}},
      {"graycode4", {4, 4}},  {"ham3", {3, 3}},        {"mux4", {6, 1}},
      {"4_49", {4, 4}},       {"graycode6", {6, 6}},   {"mod5adder", {6, 6}},
      {"hwb8", {8, 8}},       {"intdiv4", {4, 4}},     {"intdiv10", {10, 10}},
  };
  for (const auto& [name, io] : expect) {
    const auto b = get(name);
    EXPECT_EQ(b.num_pis, io.first) << name;
    EXPECT_EQ(b.num_pos, io.second) << name;
  }
}

TEST(Benchmarks, FullAdderTruth) {
  const auto b = full_adder();
  for (unsigned x = 0; x < 8; ++x) {
    const unsigned a = x & 1;
    const unsigned bb = (x >> 1) & 1;
    const unsigned c = (x >> 2) & 1;
    EXPECT_EQ(b.spec[0].bit(x), (a ^ bb ^ c) != 0);
    EXPECT_EQ(b.spec[1].bit(x), a + bb + c >= 2);
  }
}

TEST(Benchmarks, Gt10Threshold) {
  const auto b = gt10_4();
  for (unsigned x = 0; x < 16; ++x) {
    EXPECT_EQ(b.spec[0].bit(x), x > 10) << x;
  }
}

TEST(Benchmarks, C17KnownVectors) {
  const auto b = c17();
  // All-zero input: the inner NANDs are 1, so both output NANDs are 0.
  EXPECT_FALSE(b.spec[0].bit(0));
  EXPECT_FALSE(b.spec[1].bit(0));
  // i1=i3=1 (value 0b00101): n10=0 -> o22=1.
  EXPECT_TRUE(b.spec[0].bit(0b00101));
}

TEST(Benchmarks, DecoderIsOneHot) {
  for (const unsigned bits : {2u, 3u}) {
    const auto b = decoder(bits);
    for (std::uint64_t x = 0; x < (1u << bits); ++x) {
      for (unsigned o = 0; o < b.num_pos; ++o) {
        EXPECT_EQ(b.spec[o].bit(x), o == x);
      }
    }
  }
}

TEST(Benchmarks, GraycodeAdjacentValuesDifferByOneBit) {
  const auto b = graycode(4);
  auto code_of = [&](std::uint64_t x) {
    std::uint64_t g = 0;
    for (unsigned o = 0; o < 4; ++o) {
      g |= static_cast<std::uint64_t>(b.spec[o].bit(x)) << o;
    }
    return g;
  };
  for (std::uint64_t x = 0; x + 1 < 16; ++x) {
    EXPECT_EQ(std::popcount(code_of(x) ^ code_of(x + 1)), 1) << x;
  }
  EXPECT_EQ(code_of(0), 0u);
}

TEST(Benchmarks, Ham3IsPermutation) {
  const auto b = ham3();
  std::vector<bool> seen(8, false);
  for (std::uint64_t x = 0; x < 8; ++x) {
    std::uint64_t y = 0;
    for (unsigned o = 0; o < 3; ++o) {
      y |= static_cast<std::uint64_t>(b.spec[o].bit(x)) << o;
    }
    EXPECT_FALSE(seen[y]);
    seen[y] = true;
  }
}

TEST(Benchmarks, Perm449IsPermutation) {
  const auto b = perm_4_49();
  std::vector<bool> seen(16, false);
  for (std::uint64_t x = 0; x < 16; ++x) {
    std::uint64_t y = 0;
    for (unsigned o = 0; o < 4; ++o) {
      y |= static_cast<std::uint64_t>(b.spec[o].bit(x)) << o;
    }
    EXPECT_FALSE(seen[y]) << "collision at " << x;
    seen[y] = true;
  }
}

TEST(Benchmarks, Mux4Selects) {
  const auto b = mux4();
  for (std::uint64_t x = 0; x < 64; ++x) {
    const unsigned sel =
        static_cast<unsigned>(((x >> 4) & 1) | (((x >> 5) & 1) << 1));
    EXPECT_EQ(b.spec[0].bit(x), ((x >> sel) & 1) != 0) << x;
  }
}

TEST(Benchmarks, Mod5AdderInRange) {
  const auto b = mod5adder();
  for (std::uint64_t a = 0; a < 5; ++a) {
    for (std::uint64_t bb = 0; bb < 5; ++bb) {
      const std::uint64_t x = a | (bb << 3);
      std::uint64_t lo = 0;
      for (unsigned o = 0; o < 3; ++o) {
        lo |= static_cast<std::uint64_t>(b.spec[o].bit(x)) << o;
      }
      std::uint64_t hi = 0;
      for (unsigned o = 3; o < 6; ++o) {
        hi |= static_cast<std::uint64_t>(b.spec[o].bit(x)) << (o - 3);
      }
      EXPECT_EQ(lo, (a + bb) % 5) << "a=" << a << " b=" << bb;
      EXPECT_EQ(hi, a);
    }
  }
}

TEST(Benchmarks, HwbRotatesByWeight) {
  const auto b = hwb(8);
  for (std::uint64_t x : {0ull, 1ull, 0xFFull, 0b10110100ull}) {
    const unsigned w = static_cast<unsigned>(std::popcount(x)) % 8;
    const std::uint64_t want = ((x << w) | (x >> (8 - w))) & 0xFF;
    std::uint64_t got = 0;
    for (unsigned o = 0; o < 8; ++o) {
      got |= static_cast<std::uint64_t>(b.spec[o].bit(x)) << o;
    }
    EXPECT_EQ(got, want) << x;
  }
}

class ReciprocalWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReciprocalWidths, MatchesClosedForm) {
  const unsigned bits = GetParam();
  const auto b = reciprocal(bits);
  const std::uint64_t top = (std::uint64_t{1} << bits) - 1;
  for (std::uint64_t x = 0; x <= top; ++x) {
    const std::uint64_t want = x == 0 ? 0 : top / x;
    std::uint64_t got = 0;
    for (unsigned o = 0; o < bits; ++o) {
      got |= static_cast<std::uint64_t>(b.spec[o].bit(x)) << o;
    }
    ASSERT_EQ(got, want) << "bits=" << bits << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ReciprocalWidths,
                         ::testing::Values(4u, 5u, 6u, 7u, 8u, 9u, 10u));

TEST(Benchmarks, ReciprocalEdgeCases) {
  const auto b = reciprocal(4);
  // f(1) = 15, f(15) = 1, f(0) = 0 by convention.
  EXPECT_TRUE(b.spec[0].bit(1) && b.spec[1].bit(1) && b.spec[2].bit(1) &&
              b.spec[3].bit(1));
  EXPECT_TRUE(b.spec[0].bit(15));
  EXPECT_FALSE(b.spec[1].bit(15));
  for (unsigned o = 0; o < 4; ++o) {
    EXPECT_FALSE(b.spec[o].bit(0));
  }
  EXPECT_THROW(reciprocal(1), std::invalid_argument);
  EXPECT_THROW(reciprocal(20), std::invalid_argument);
}

TEST(Benchmarks, LowerBoundColumn) {
  // g_lb = max(0, n_pi - n_po) for the paper's Table 1 rows.
  const auto fa = get("full_adder");
  EXPECT_EQ(fa.num_pis - fa.num_pos, 1u);
  const auto dec = get("decoder_2_4");
  EXPECT_GT(dec.num_pos, dec.num_pis);
}

} // namespace
} // namespace rcgp::benchmarks
