#include <gtest/gtest.h>

#include "aig/aig_simulate.hpp"
#include "aig/fraig.hpp"
#include "util/rng.hpp"

namespace rcgp::aig {
namespace {

Aig random_aig(unsigned num_pis, unsigned num_nodes, unsigned num_pos,
               std::uint64_t seed) {
  util::Rng rng(seed);
  Aig net;
  std::vector<Signal> pool{net.const0()};
  for (unsigned i = 0; i < num_pis; ++i) {
    pool.push_back(net.create_pi());
  }
  for (unsigned i = 0; i < num_nodes; ++i) {
    const Signal a = pool[rng.below(pool.size())] ^ rng.chance(0.5);
    const Signal b = pool[rng.below(pool.size())] ^ rng.chance(0.5);
    pool.push_back(net.create_and(a, b));
  }
  for (unsigned i = 0; i < num_pos; ++i) {
    net.add_po(pool[rng.below(pool.size())] ^ rng.chance(0.5));
  }
  return net;
}

TEST(Fraig, MergesStructurallyDifferentEquivalentNodes) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  // f = a & (b & c); g = (a & b) & c — different structure, same function.
  const Signal f = net.create_and(a, net.create_and(b, c));
  const Signal g = net.create_and(net.create_and(a, b), c);
  net.add_po(f);
  net.add_po(g);
  ASSERT_NE(f, g); // strashing alone does not merge them
  FraigStats stats;
  const Aig swept = fraig(net, {}, &stats);
  EXPECT_GE(stats.proved_equivalent, 1u);
  EXPECT_LT(stats.ands_after, stats.ands_before);
  EXPECT_EQ(simulate(net), simulate(swept));
  // Both POs now share one driver.
  EXPECT_EQ(swept.po_at(0), swept.po_at(1));
}

TEST(Fraig, MergesComplementedPairs) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  // f = !(a & b); g computed as (!a | !b) via different ANDs.
  const Signal f = !net.create_and(a, b);
  const Signal g = net.create_or(!a, !b);
  net.add_po(f);
  net.add_po(g);
  FraigStats stats;
  const Aig swept = fraig(net, {}, &stats);
  EXPECT_EQ(simulate(net), simulate(swept));
  EXPECT_LE(swept.count_live_ands(), 1u);
}

class FraigProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FraigProperty, PreservesFunctionAndNeverGrows) {
  const Aig net = random_aig(6, 70, 5, GetParam());
  FraigStats stats;
  const Aig swept = fraig(net, {}, &stats);
  EXPECT_EQ(simulate(net), simulate(swept));
  EXPECT_LE(stats.ands_after, stats.ands_before);
  EXPECT_EQ(stats.ands_after, swept.count_live_ands());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FraigProperty,
                         ::testing::Values(3, 14, 159, 2653, 58979, 323846));

TEST(Fraig, FewSimWordsStillSound) {
  // With one simulation word there are many spurious candidates; SAT must
  // reject them all and the result stays equivalent.
  const Aig net = random_aig(5, 50, 4, 777);
  FraigParams params;
  params.sim_words = 1;
  FraigStats stats;
  const Aig swept = fraig(net, params, &stats);
  EXPECT_EQ(simulate(net), simulate(swept));
}

TEST(Fraig, CleanNetworkIsUnchanged) {
  Aig net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  net.add_po(net.create_and(a, b));
  FraigStats stats;
  const Aig swept = fraig(net, {}, &stats);
  EXPECT_EQ(stats.proved_equivalent, 0u);
  EXPECT_EQ(swept.count_live_ands(), 1u);
}

} // namespace
} // namespace rcgp::aig
