#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "aig/aig_simulate.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flow.hpp"
#include "mig/mig_from_aig.hpp"
#include "rqfp/buffer.hpp"
#include "rqfp/catalog.hpp"
#include "rqfp/cost.hpp"
#include "rqfp/reversibility.hpp"
#include "rqfp/gate.hpp"
#include "rqfp/map_from_mig.hpp"
#include "rqfp/netlist.hpp"
#include "rqfp/simd.hpp"
#include "rqfp/simulate.hpp"
#include "rqfp/splitter.hpp"
#include "util/rng.hpp"

namespace rcgp::rqfp {
namespace {

TEST(InvConfig, BitLayoutAndRows) {
  const auto cfg = InvConfig::from_rows(0b001, 0b010, 0b100);
  EXPECT_TRUE(cfg.inverts(0, 0));
  EXPECT_FALSE(cfg.inverts(0, 1));
  EXPECT_TRUE(cfg.inverts(1, 1));
  EXPECT_TRUE(cfg.inverts(2, 2));
  EXPECT_EQ(cfg.row(0), 0b001u);
  EXPECT_EQ(cfg.row(1), 0b010u);
  EXPECT_EQ(cfg.row(2), 0b100u);
  EXPECT_EQ(cfg, InvConfig::reversible());
}

TEST(InvConfig, StringRoundTrip) {
  const auto cfg = InvConfig::from_rows(0b101, 0b100, 0b000);
  const std::string s = cfg.to_string();
  EXPECT_EQ(s.size(), 11u);
  EXPECT_EQ(InvConfig::parse(s), cfg);
  EXPECT_THROW(InvConfig::parse("101-1000-00"), std::invalid_argument);
  EXPECT_THROW(InvConfig::parse("101x100x000"), std::invalid_argument);
}

TEST(InvConfig, WithFlipTogglesOneSlot) {
  InvConfig cfg;
  for (unsigned slot = 0; slot < 9; ++slot) {
    const auto flipped = cfg.with_flip(slot);
    EXPECT_TRUE(flipped.inverts(slot / 3, slot % 3));
    EXPECT_EQ(flipped.with_flip(slot), cfg);
  }
}

TEST(Gate, NormalReversibleGateIsBijective) {
  // The normal RQFP gate R(a,b,c) = {M(!a,b,c), M(a,!b,c), M(a,b,!c)}
  // must be a bijection on 3 bits (paper §2.1).
  const auto cfg = InvConfig::reversible();
  std::vector<bool> seen(8, false);
  for (unsigned x = 0; x < 8; ++x) {
    const auto out = eval_gate_words(cfg, (x & 1) ? ~0ull : 0,
                                     (x & 2) ? ~0ull : 0, (x & 4) ? ~0ull : 0);
    const unsigned y = (out[0] & 1) | ((out[1] & 1) << 1) |
                       ((out[2] & 1) << 2);
    EXPECT_FALSE(seen[y]) << "collision at input " << x;
    seen[y] = true;
  }
}

TEST(Gate, SplitterCopiesItsMiddleInput) {
  // R(1, a, 0) = {a, a, a} with the splitter configuration.
  const auto cfg = InvConfig::splitter();
  for (const std::uint64_t a : {0ull, ~0ull}) {
    const auto out = eval_gate_words(cfg, ~0ull, a, ~0ull);
    for (unsigned k = 0; k < 3; ++k) {
      EXPECT_EQ(out[k], a);
    }
  }
}

TEST(Gate, AndRealizationFromPaper) {
  // R(a, b, 1) with the normal configuration: output 2 = M(a,b,0) = a&b,
  // output 0 = !a|b, output 1 = a|!b (paper §3.1 example).
  const auto cfg = InvConfig::reversible();
  for (unsigned x = 0; x < 4; ++x) {
    const std::uint64_t a = (x & 1) ? ~0ull : 0;
    const std::uint64_t b = (x & 2) ? ~0ull : 0;
    const auto out = eval_gate_words(cfg, a, b, ~0ull);
    EXPECT_EQ(out[2] & 1, (a & b) & 1);
    EXPECT_EQ(out[0] & 1, (~a | b) & 1);
    EXPECT_EQ(out[1] & 1, (a | ~b) & 1);
  }
}

TEST(Gate, TablesMatchWords) {
  util::Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    const InvConfig cfg(static_cast<std::uint16_t>(rng.below(512)));
    const auto ta = tt::TruthTable::projection(3, 0);
    const auto tb = tt::TruthTable::projection(3, 1);
    const auto tc = tt::TruthTable::projection(3, 2);
    const auto tables = eval_gate_tables(cfg, ta, tb, tc);
    for (unsigned x = 0; x < 8; ++x) {
      const auto words = eval_gate_words(cfg, (x & 1) ? ~0ull : 0,
                                         (x & 2) ? ~0ull : 0,
                                         (x & 4) ? ~0ull : 0);
      for (unsigned k = 0; k < 3; ++k) {
        EXPECT_EQ(tables[k].bit(x), (words[k] & 1) != 0);
      }
    }
  }
}

TEST(Gate, AllConfigsRealizeDistinctTriples) {
  // 512 configurations; each majority has 2^3 phase choices and the output
  // triple is determined by rows, so all 512 triples must be distinct.
  std::set<std::string> seen;
  const auto ta = tt::TruthTable::projection(3, 0);
  const auto tb = tt::TruthTable::projection(3, 1);
  const auto tc = tt::TruthTable::projection(3, 2);
  for (unsigned bits = 0; bits < 512; ++bits) {
    const auto out = eval_gate_tables(InvConfig(bits), ta, tb, tc);
    seen.insert(out[0].to_hex() + out[1].to_hex() + out[2].to_hex());
  }
  EXPECT_EQ(seen.size(), 512u);
}

// ---------- Netlist ----------

Netlist single_and_netlist() {
  // R(a, b, 1) with function on output 2.
  Netlist net(2);
  const auto g = net.add_gate({1, 2, kConstPort},
                              InvConfig::from_rows(5, 6, 4));
  net.add_po(net.port_of(g, 2), "and");
  return net;
}

TEST(Netlist, PortArithmetic) {
  Netlist net(3);
  EXPECT_TRUE(net.is_const_port(0));
  EXPECT_TRUE(net.is_pi_port(2));
  EXPECT_FALSE(net.is_pi_port(0));
  EXPECT_FALSE(net.is_pi_port(4));
  EXPECT_EQ(net.first_free_port(), 4u);
  const auto g0 = net.add_gate({1, 2, 3}, InvConfig::reversible());
  EXPECT_EQ(net.port_of(g0, 0), 4u);
  EXPECT_EQ(net.port_of(g0, 2), 6u);
  EXPECT_EQ(net.gate_of_port(5), g0);
  EXPECT_EQ(net.slot_of_port(5), 1u);
  EXPECT_EQ(net.pi_of_port(2), 1u);
}

TEST(Netlist, ForwardReferenceRejected) {
  Netlist net(2);
  EXPECT_THROW(net.add_gate({1, 2, 3}, InvConfig()), std::invalid_argument);
  EXPECT_THROW(net.add_po(3), std::invalid_argument);
}

TEST(Netlist, ValidateDetectsFanoutViolation) {
  Netlist net(2);
  const auto g0 = net.add_gate({1, 2, 0}, InvConfig::reversible());
  net.add_gate({net.port_of(g0, 2), 1, 0}, InvConfig::reversible());
  // PI port 1 is consumed twice.
  EXPECT_NE(net.validate(), "");
}

TEST(Netlist, ValidateAcceptsLegalNetlist) {
  EXPECT_EQ(single_and_netlist().validate(), "");
}

TEST(Netlist, ConstPortHasUnlimitedFanout) {
  Netlist net(1);
  net.add_gate({0, 1, 0}, InvConfig::splitter());
  net.add_gate({0, net.port_of(0, 0), 0}, InvConfig::splitter());
  EXPECT_EQ(net.validate(), "");
}

TEST(Netlist, GarbageCounting) {
  const auto net = single_and_netlist();
  // Outputs 0 and 1 are unconsumed.
  EXPECT_EQ(net.count_garbage_outputs(), 2u);
}

TEST(Netlist, LevelsAndDepth) {
  Netlist net(1);
  const auto s1 = net.add_gate({0, 1, 0}, InvConfig::splitter());
  const auto s2 =
      net.add_gate({0, net.port_of(s1, 0), 0}, InvConfig::splitter());
  net.add_po(net.port_of(s2, 1));
  const auto levels = net.gate_levels();
  EXPECT_EQ(levels[s1], 1u);
  EXPECT_EQ(levels[s2], 2u);
  EXPECT_EQ(net.depth(), 2u);
}

TEST(Netlist, RemoveDeadGates) {
  Netlist net(2);
  const auto g0 = net.add_gate({1, 2, 0}, InvConfig::reversible());
  net.add_gate({0, 0, 0}, InvConfig());      // dead
  const auto g2 = net.add_gate({net.port_of(g0, 2), 0, 0},
                               InvConfig::splitter());
  net.add_po(net.port_of(g2, 0), "out");
  const auto before = simulate(net);
  const Netlist clean = net.remove_dead_gates();
  EXPECT_EQ(clean.num_gates(), 2u);
  EXPECT_EQ(simulate(clean), before);
  EXPECT_EQ(clean.po_name(0), "out");
}

TEST(Simulate, AndNetlist) {
  const auto net = single_and_netlist();
  const auto tts = simulate(net);
  EXPECT_EQ(tts[0], tt::TruthTable::projection(2, 0) &
                        tt::TruthTable::projection(2, 1));
}

TEST(Simulate, EvaluateSingleAssignments) {
  const auto net = single_and_netlist();
  EXPECT_FALSE(evaluate(net, 0b00)[0]);
  EXPECT_FALSE(evaluate(net, 0b01)[0]);
  EXPECT_FALSE(evaluate(net, 0b10)[0]);
  EXPECT_TRUE(evaluate(net, 0b11)[0]);
}

TEST(Simulate, LiveMatchesFull) {
  Netlist net(2);
  const auto g0 = net.add_gate({1, 2, 0}, InvConfig::reversible());
  net.add_gate({0, 0, 0}, InvConfig()); // dead gate
  net.add_po(net.port_of(g0, 2));
  EXPECT_EQ(simulate(net), simulate_live(net));
}

TEST(Simulate, PatternsMatchTables) {
  const auto net = single_and_netlist();
  SimBatch patterns(2, 1);
  patterns.at(0, 0) = tt::TruthTable::projection(2, 0).word(0);
  patterns.at(1, 0) = tt::TruthTable::projection(2, 1).word(0);
  SimBatch out;
  simulate_patterns(net, patterns, out);
  const auto tts = simulate(net);
  EXPECT_EQ(out.at(0, 0) & 0xF, tts[0].word(0));
}

TEST(Simulate, BatchValidatesPiCountWithContext) {
  const auto net = single_and_netlist(); // 2 PIs
  SimBatch patterns(3, 1);
  SimBatch out;
  try {
    simulate_patterns(net, patterns, out);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 PIs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("3"), std::string::npos) << msg;
  }
}

TEST(Simulate, DeltaMatchesFullSimulation) {
  // Mutate one gate's config and check the dirty-cone path reproduces the
  // full re-simulation bit-for-bit, then restores the cache.
  Netlist base(3);
  const auto g0 = base.add_gate({1, 2, 0}, InvConfig::reversible());
  const auto g1 =
      base.add_gate({base.port_of(g0, 0), 3, 0}, InvConfig::reversible());
  base.add_po(base.port_of(g1, 2));
  base.add_po(base.port_of(g0, 1));

  SimCache cache;
  build_sim_cache(base, cache);
  const auto cached_ports = cache.ports;

  Netlist child = base;
  child.gate(0).config = InvConfig(0x155);
  std::vector<tt::TruthTable> po_out;
  simulate_delta(base, child, cache, po_out);
  EXPECT_EQ(po_out, simulate(child));
  // Transient evaluation: the cache still describes `base` afterwards.
  EXPECT_EQ(cache.ports, cached_ports);

  // Committing the drift re-bases the cache onto the child.
  update_sim_cache(base, child, cache);
  EXPECT_EQ(cache.ports, simulate_ports(child));
}

class RandomNetlistProperty : public ::testing::TestWithParam<std::uint64_t> {
protected:
  Netlist random_netlist(std::uint64_t seed) {
    util::Rng rng(seed);
    const unsigned num_pis = 2 + static_cast<unsigned>(rng.below(4));
    Netlist net(num_pis);
    std::vector<Port> avail;
    for (Port p = 1; p <= num_pis; ++p) {
      avail.push_back(p);
    }
    const unsigned gates = 3 + static_cast<unsigned>(rng.below(10));
    for (unsigned g = 0; g < gates; ++g) {
      std::array<Port, 3> in{};
      for (auto& p : in) {
        const auto pick = rng.below(avail.size() + 1);
        p = pick == avail.size() ? kConstPort : avail[pick];
      }
      const auto id = net.add_gate(
          in, InvConfig(static_cast<std::uint16_t>(rng.below(512))));
      for (unsigned k = 0; k < 3; ++k) {
        avail.push_back(net.port_of(id, k));
      }
    }
    const unsigned pos = 1 + static_cast<unsigned>(rng.below(3));
    for (unsigned o = 0; o < pos; ++o) {
      net.add_po(avail[rng.below(avail.size())]);
    }
    return net;
  }
};

TEST_P(RandomNetlistProperty, SimulateEvaluatePatternsAgree) {
  const Netlist net = random_netlist(GetParam());
  const auto tables = simulate(net);
  // Single-assignment evaluation agrees with the tables on every input.
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << net.num_pis()); ++x) {
    const auto bits = evaluate(net, x);
    for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
      ASSERT_EQ(bits[o], tables[o].bit(x)) << "x=" << x << " o=" << o;
    }
  }
  // Word-parallel patterns agree with the tables on projections.
  SimBatch patterns(net.num_pis(), 1);
  for (unsigned i = 0; i < net.num_pis(); ++i) {
    patterns.at(i, 0) = tt::TruthTable::projection(6, i).word(0);
  }
  SimBatch words;
  simulate_patterns(net, patterns, words);
  const std::uint64_t mask =
      (std::uint64_t{1} << (std::uint64_t{1} << net.num_pis())) - 1;
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    std::uint64_t expect = 0;
    for (std::uint64_t x = 0; x < tables[o].num_bits(); ++x) {
      // Projection patterns repeat the exhaustive table cyclically.
      if (tables[o].bit(x)) {
        expect |= std::uint64_t{1} << x;
      }
    }
    EXPECT_EQ(words.at(o, 0) & mask, expect) << "o=" << o;
  }
}

TEST_P(RandomNetlistProperty, DeadGateRemovalPreservesOutputs) {
  const Netlist net = random_netlist(GetParam() + 500);
  const auto before = simulate(net);
  const Netlist live = net.remove_dead_gates();
  EXPECT_EQ(simulate(live), before);
  EXPECT_LE(live.num_gates(), net.num_gates());
  EXPECT_EQ(live.live_gates(),
            std::vector<bool>(live.num_gates(), true));
}

TEST_P(RandomNetlistProperty, SplitterLegalizationPreservesOutputs) {
  const Netlist net = random_netlist(GetParam() + 900);
  const auto before = simulate(net);
  const Netlist legal = insert_splitters(net);
  EXPECT_EQ(legal.validate(), "");
  EXPECT_EQ(simulate(legal), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlistProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12));

// ---------- splitters ----------

TEST(Splitter, LegalizesMultiFanout) {
  Netlist raw(1);
  const auto g0 = raw.add_gate({0, 1, 0}, InvConfig::splitter());
  // Consume the same port 4 times (illegal).
  const Port p = raw.port_of(g0, 0);
  const auto g1 = raw.add_gate({p, p, 0}, InvConfig::triple(0));
  raw.add_po(raw.port_of(g1, 2));
  raw.add_po(p);
  raw.add_po(p);
  EXPECT_NE(raw.validate(), "");
  SplitterStats stats;
  const Netlist legal = insert_splitters(raw, &stats);
  EXPECT_EQ(legal.validate(), "");
  EXPECT_GT(stats.splitters_added, 0u);
  EXPECT_EQ(simulate(legal), simulate(raw));
}

TEST(Splitter, NoChangesWhenAlreadyLegal) {
  const auto net = single_and_netlist();
  SplitterStats stats;
  const Netlist out = insert_splitters(net, &stats);
  EXPECT_EQ(stats.splitters_added, 0u);
  EXPECT_EQ(out.num_gates(), net.num_gates());
}

TEST(Splitter, PiFanoutFourNeedsTwoSplitters) {
  // Matches the decoder analysis: fan-out 4 from one PI costs 2 splitters
  // (1 -> 3 -> 5 copies) with one leftover copy.
  Netlist raw(1);
  std::vector<std::uint32_t> gates;
  for (int i = 0; i < 4; ++i) {
    gates.push_back(raw.add_gate({1, 0, 0}, InvConfig::triple(0)));
  }
  for (const auto g : gates) {
    raw.add_po(raw.port_of(g, 2));
  }
  SplitterStats stats;
  const Netlist legal = insert_splitters(raw, &stats);
  EXPECT_EQ(legal.validate(), "");
  EXPECT_EQ(stats.splitters_added, 2u);
  EXPECT_EQ(stats.max_fanout_before, 4u);
}

// ---------- buffers & cost ----------

TEST(Buffer, AlignedInputsNeedNoBuffers) {
  const auto net = single_and_netlist();
  EXPECT_EQ(count_buffers(net), 0u);
}

TEST(Buffer, UnbalancedPathsGetBuffers) {
  Netlist net(2);
  const auto s1 = net.add_gate({0, 1, 0}, InvConfig::splitter()); // level 1
  // Gate at level 2 whose second input is a PI (level 0): 1 buffer.
  const auto g = net.add_gate({net.port_of(s1, 0), 2, 0},
                              InvConfig::triple(0));
  net.add_po(net.port_of(g, 2));
  const BufferPlan plan = plan_buffers(net);
  EXPECT_EQ(plan.total, 1u);
  EXPECT_EQ(plan.gate_edges[g][1], 1u);
}

TEST(Buffer, PoAlignment) {
  Netlist net(2);
  const auto g1 = net.add_gate({1, 0, 0}, InvConfig::triple(0)); // level 1
  const auto g2 = net.add_gate({net.port_of(g1, 0), 2, 0},
                               InvConfig::triple(0)); // level 2
  net.add_po(net.port_of(g1, 1)); // level 1: needs 1 buffer to align
  net.add_po(net.port_of(g2, 2)); // level 2
  const BufferPlan plan = plan_buffers(net);
  EXPECT_EQ(plan.depth, 2u);
  EXPECT_EQ(plan.po_edges[0], 1u);
  EXPECT_EQ(plan.po_edges[1], 0u);
  // The second gate's PI input also needs one buffer (level 0 -> stage 1).
  EXPECT_EQ(plan.total, 2u);
}

TEST(Buffer, SchedulesAreConsistentAndBestIsCheapest) {
  util::Rng rng(9);
  for (int round = 0; round < 10; ++round) {
    // Random layered netlist built by hand.
    Netlist net(3);
    std::vector<Port> avail{1, 2, 3};
    for (int g = 0; g < 6; ++g) {
      std::array<Port, 3> in{};
      for (auto& p : in) {
        p = rng.chance(0.3) ? kConstPort
                            : avail[rng.below(avail.size())];
      }
      const auto id = net.add_gate(
          in, InvConfig(static_cast<std::uint16_t>(rng.below(512))));
      for (unsigned k = 0; k < 3; ++k) {
        avail.push_back(net.port_of(id, k));
      }
    }
    net.add_po(avail.back());
    for (const auto sched :
         {BufferSchedule::kAsap, BufferSchedule::kAlap}) {
      const auto plan = plan_buffers(net, sched);
      // The plan's total must equal the sum of its edges, and both
      // schedules keep the same overall depth.
      std::uint32_t sum = 0;
      for (const auto& edges : plan.gate_edges) {
        sum += edges[0] + edges[1] + edges[2];
      }
      for (const auto b : plan.po_edges) {
        sum += b;
      }
      EXPECT_EQ(sum, plan.total) << round;
      EXPECT_EQ(plan.depth, net.depth()) << round;
    }
    const auto best = count_buffers(net, BufferSchedule::kBest);
    EXPECT_LE(best, count_buffers(net, BufferSchedule::kAsap)) << round;
    EXPECT_LE(best, count_buffers(net, BufferSchedule::kAlap)) << round;
  }
}

TEST(Buffer, OptimizedNeverWorseThanBest) {
  util::Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    Netlist net(3);
    std::vector<Port> avail{1, 2, 3};
    for (int g = 0; g < 8; ++g) {
      std::array<Port, 3> in{};
      for (auto& p : in) {
        p = rng.chance(0.25) ? kConstPort : avail[rng.below(avail.size())];
      }
      const auto id = net.add_gate(
          in, InvConfig(static_cast<std::uint16_t>(rng.below(512))));
      for (unsigned k = 0; k < 3; ++k) {
        avail.push_back(net.port_of(id, k));
      }
    }
    for (int o = 0; o < 2; ++o) {
      net.add_po(avail[rng.below(avail.size())]);
    }
    const auto best = count_buffers(net, BufferSchedule::kBest);
    const auto opt = plan_buffers(net, BufferSchedule::kOptimized);
    EXPECT_LE(opt.total, best) << round;
    EXPECT_EQ(opt.depth, net.depth()) << round;
    // All per-edge counts are consistent with the total.
    std::uint32_t sum = 0;
    for (const auto& e : opt.gate_edges) {
      sum += e[0] + e[1] + e[2];
    }
    for (const auto b : opt.po_edges) {
      sum += b;
    }
    EXPECT_EQ(sum, opt.total) << round;
  }
}

TEST(Buffer, OptimizedImprovesOneInputManyLateConsumers) {
  // A gate with one non-constant input but two consumers far downstream:
  // sliding it later saves two output-edge buffers per stage and costs
  // only one input-edge buffer per stage (slope -1).
  Netlist net(3);
  const auto a = net.add_gate({1, 0, 0}, InvConfig::triple(0)); // L1
  // Two depth-3 chains from the other PIs.
  auto chain = [&](Port pi) {
    auto g1 = net.add_gate({0, pi, 0}, InvConfig::splitter());
    auto g2 = net.add_gate({0, net.port_of(g1, 0), 0}, InvConfig::splitter());
    auto g3 = net.add_gate({0, net.port_of(g2, 0), 0}, InvConfig::splitter());
    return net.port_of(g3, 0); // level 3
  };
  const Port c1_other = chain(2);
  const Port c2_other = chain(3);
  const auto c1 = net.add_gate({net.port_of(a, 0), c1_other, 0},
                               InvConfig::triple(0)); // L4
  const auto c2 = net.add_gate({net.port_of(a, 1), c2_other, 0},
                               InvConfig::triple(0)); // L4
  net.add_po(net.port_of(c1, 0));
  net.add_po(net.port_of(c2, 0));
  const auto asap = count_buffers(net, BufferSchedule::kAsap);
  const auto opt = count_buffers(net, BufferSchedule::kOptimized);
  EXPECT_LT(opt, asap);
}

TEST(Cost, JjFormulaAndLowerBound) {
  const auto net = single_and_netlist();
  const Cost c = cost_of(net);
  EXPECT_EQ(c.n_r, 1u);
  EXPECT_EQ(c.n_b, 0u);
  EXPECT_EQ(c.jjs, 24u);
  EXPECT_EQ(c.n_d, 1u);
  EXPECT_EQ(c.n_g, 2u);
  EXPECT_EQ(garbage_lower_bound(5, 2), 3u);
  EXPECT_EQ(garbage_lower_bound(2, 4), 0u);
}

TEST(Cost, DeadGatesExcluded) {
  Netlist net(2);
  const auto g0 = net.add_gate({1, 2, 0}, InvConfig::reversible());
  net.add_gate({0, 0, 0}, InvConfig()); // dead
  net.add_po(net.port_of(g0, 2));
  const Cost c = cost_of(net);
  EXPECT_EQ(c.n_r, 1u);
}

// ---------- config catalog ----------

TEST(Catalog, RowFunctionsAreEightPhasedMajorities) {
  const ConfigCatalog catalog;
  EXPECT_EQ(catalog.row_functions().size(), 8u);
  // Every row function has an odd onset of size in {1..7}? Not relevant;
  // but each must be a majority of phased inputs and self-dual.
  for (const auto& f : catalog.row_functions()) {
    // Self-duality: f(!x) == !f(x) — majority is self-dual, phases keep it.
    tt::TruthTable flipped = f;
    for (unsigned v = 0; v < 3; ++v) {
      flipped = flipped.flip_var(v);
    }
    EXPECT_EQ(~flipped, f);
  }
}

TEST(Catalog, RowForInvertsRowFunction) {
  for (unsigned bits = 0; bits < 8; ++bits) {
    const auto f = ConfigCatalog::row_function(bits);
    const auto back = ConfigCatalog::row_for(f);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(ConfigCatalog::row_function(*back), f);
  }
  // AND is not a phased majority (it needs a constant input).
  const auto and3 = tt::TruthTable::projection(3, 0) &
                    tt::TruthTable::projection(3, 1) &
                    tt::TruthTable::projection(3, 2);
  EXPECT_FALSE(ConfigCatalog::row_for(and3).has_value());
}

TEST(Catalog, ConfigForAssemblesTriples) {
  const auto m = ConfigCatalog::row_function(0);
  const auto cfg = ConfigCatalog::config_for(
      ConfigCatalog::row_function(1), ConfigCatalog::row_function(2),
      ConfigCatalog::row_function(4));
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(*cfg, InvConfig::reversible());
  EXPECT_FALSE(ConfigCatalog::config_for(m, m, ~m & m).has_value());
  (void)m;
}

TEST(Catalog, CensusMatchesReversibilityAnalysis) {
  const ConfigCatalog catalog;
  EXPECT_EQ(catalog.num_bijective(), count_bijective_configs());
  EXPECT_EQ(catalog.num_bijective(), 192u); // regression anchor
  EXPECT_EQ(catalog.num_distinct_triples(), 512u); // all triples distinct
}

// ---------- MIG -> RQFP mapping ----------

TEST(MapFromMig, MajAndConstantsMapCorrectly) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  m.add_po(m.create_maj(a, b, c), "maj");
  m.add_po(m.create_and(a, b), "and");
  m.add_po(!m.create_or(b, c), "nor");
  const Netlist raw = map_from_mig(m);
  const Netlist net = insert_splitters(raw);
  EXPECT_EQ(net.validate(), "");
  const auto tts = simulate(net);
  EXPECT_EQ(tts, m.simulate());
}

TEST(MapFromMig, PackingSharesGatesAndPreservesFunction) {
  // Three majority nodes over the same fanins with different polarities:
  // with packing they must share one RQFP gate.
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  m.add_po(m.create_maj(a, b, c), "m0");
  m.add_po(m.create_maj(!a, b, c), "m1");
  m.add_po(m.create_maj(a, !b, c), "m2");
  MapStats packed_stats;
  MapOptions pack;
  pack.pack_shared_fanins = true;
  const Netlist packed =
      insert_splitters(map_from_mig(m, &packed_stats, pack));
  MapStats plain_stats;
  const Netlist plain = insert_splitters(map_from_mig(m, &plain_stats));
  EXPECT_EQ(packed_stats.packed_nodes, 2u);
  EXPECT_LT(packed.num_gates(), plain.num_gates());
  EXPECT_EQ(packed.validate(), "");
  EXPECT_EQ(simulate(packed), m.simulate());
  EXPECT_EQ(simulate(plain), m.simulate());
}

class PackingEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(PackingEquivalence, FlowWithPackingStaysCorrect) {
  const auto b = benchmarks::get(GetParam());
  core::FlowOptions opt;
  opt.run_cgp = false;
  opt.pack_shared_fanins = true;
  const auto r = core::synthesize(b.spec, opt);
  EXPECT_EQ(r.initial.validate(), "") << GetParam();
  EXPECT_EQ(simulate(r.initial), std::vector<tt::TruthTable>(
                                     b.spec.begin(), b.spec.end()))
      << GetParam();
  core::FlowOptions plain = opt;
  plain.pack_shared_fanins = false;
  const auto r2 = core::synthesize(b.spec, plain);
  EXPECT_LE(r.initial_cost.n_r, r2.initial_cost.n_r) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Circuits, PackingEquivalence,
                         ::testing::Values("full_adder", "graycode4",
                                           "intdiv4", "c17", "mod5adder"));

TEST(MapFromMig, ConstantOutputs) {
  mig::Mig m;
  m.create_pi();
  m.add_po(m.const1(), "one");
  m.add_po(m.const0(), "zero");
  const Netlist net = insert_splitters(map_from_mig(m));
  EXPECT_EQ(net.validate(), "");
  const auto tts = simulate(net);
  EXPECT_TRUE(tts[0].is_constant1());
  EXPECT_TRUE(tts[1].is_constant0());
}

TEST(MapFromMig, PassThroughAndInvertedPo) {
  mig::Mig m;
  const auto a = m.create_pi();
  m.add_po(a, "buf");
  m.add_po(!a, "inv");
  const Netlist net = insert_splitters(map_from_mig(m));
  EXPECT_EQ(net.validate(), "");
  const auto tts = simulate(net);
  EXPECT_EQ(tts[0], tt::TruthTable::projection(1, 0));
  EXPECT_EQ(tts[1], ~tt::TruthTable::projection(1, 0));
}

// SIMD kernel contract (docs/SIMD.md): every tier this host can run must
// be bit-identical to the scalar gate semantics, and the table-level entry
// points must preserve the TruthTable normalization invariant (unused high
// bits of the top word stay zero) even for inverting configurations.

/// Restores whatever tier was active when the test started.
struct TierGuard {
  simd::Tier saved = simd::active_tier();
  ~TierGuard() { simd::force_tier(saved); }
};

TEST(Simd, EveryTierMatchesEvalGateWords) {
  util::Rng rng(2026);
  for (const simd::Tier tier : simd::available_tiers()) {
    const auto& k = simd::kernels(tier);
    for (int rep = 0; rep < 64; ++rep) {
      const auto cfg = InvConfig::from_rows(
          static_cast<unsigned>(rng.next() & 7),
          static_cast<unsigned>(rng.next() & 7),
          static_cast<unsigned>(rng.next() & 7));
      const std::uint64_t a = rng.next();
      const std::uint64_t b = rng.next();
      const std::uint64_t c = rng.next();
      const auto want = eval_gate_words(cfg, a, b, c);
      std::uint64_t o0 = 0;
      std::uint64_t o1 = 0;
      std::uint64_t o2 = 0;
      k.gate3(cfg.bits(), &a, &b, &c, &o0, &o1, &o2, 1);
      const std::string what =
          std::string(simd::to_string(tier)) + " config " + cfg.to_string();
      EXPECT_EQ(o0, want[0]) << what;
      EXPECT_EQ(o1, want[1]) << what;
      EXPECT_EQ(o2, want[2]) << what;
    }
  }
}

TEST(Simd, EvalGateTablesIntoNormalizesSubWordTables) {
  TierGuard guard;
  util::Rng rng(11);
  for (const simd::Tier tier : simd::available_tiers()) {
    simd::force_tier(tier);
    // 2-var tables occupy 4 bits of one word; the all-inverting config
    // must not leak set bits above them.
    tt::TruthTable a(2);
    tt::TruthTable b(2);
    tt::TruthTable c(2);
    for (std::uint64_t i = 0; i < 4; ++i) {
      a.set_bit(i, rng.next() & 1);
      b.set_bit(i, rng.next() & 1);
      c.set_bit(i, rng.next() & 1);
    }
    const auto cfg = InvConfig::from_rows(7, 7, 7);
    const auto want = eval_gate_tables(cfg, a, b, c);
    tt::TruthTable o0;
    tt::TruthTable o1;
    tt::TruthTable o2;
    eval_gate_tables_into(cfg, a, b, c, o0, o1, o2);
    const std::string what(simd::to_string(tier));
    EXPECT_EQ(o0, want[0]) << what;
    EXPECT_EQ(o1, want[1]) << what;
    EXPECT_EQ(o2, want[2]) << what;
    EXPECT_EQ(o0.data()[0] >> 4, 0u) << what; // normalized high bits
    EXPECT_EQ(o1.data()[0] >> 4, 0u) << what;
    EXPECT_EQ(o2.data()[0] >> 4, 0u) << what;
  }
}

TEST(Simd, SimulationIsBitIdenticalAcrossTiers) {
  TierGuard guard;
  const auto bench = benchmarks::get("full_adder");
  core::FlowOptions opt;
  opt.run_cgp = false;
  const Netlist net = core::synthesize(bench.spec, opt).initial;

  simd::force_tier(simd::Tier::kScalar);
  const auto ref = simulate(net);
  for (const simd::Tier tier : simd::available_tiers()) {
    simd::force_tier(tier);
    const auto got = simulate(net);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i], ref[i])
          << simd::to_string(tier) << " PO " << i;
    }
  }
}

} // namespace
} // namespace rcgp::rqfp
