// Tests for the island-model evolution layer (docs/ISLANDS.md): topology
// donor schedules, placement/parallelism bit-identity, the multistart
// alias, and crash-safe epoch-wise resume of a file-backed fleet.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "core/optimizer.hpp"
#include "io/rqfp_writer.hpp"
#include "island/island.hpp"
#include "robust/stop.hpp"
#include "serve/server.hpp"

namespace rcgp {
namespace {

using core::EvolveParams;
using core::EvolveResult;
using core::Topology;
using island::FleetOptions;

/// Builds the initialization netlist of a named benchmark.
rqfp::Netlist init_netlist(const std::string& name) {
  const auto b = benchmarks::get(name);
  core::FlowOptions opt;
  opt.run_cgp = false;
  return core::synthesize(b.spec, opt).initial;
}

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "rcgp_island_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void expect_same_result(const EvolveResult& a, const EvolveResult& b) {
  EXPECT_EQ(io::write_rqfp_string(a.best), io::write_rqfp_string(b.best));
  EXPECT_EQ(a.best_fitness.n_r, b.best_fitness.n_r);
  EXPECT_EQ(a.best_fitness.n_g, b.best_fitness.n_g);
  EXPECT_EQ(a.best_fitness.n_b, b.best_fitness.n_b);
  EXPECT_EQ(a.generations_run, b.generations_run);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.improvements, b.improvements);
}

EvolveParams small_params(std::uint64_t generations = 600,
                          std::uint64_t seed = 17) {
  EvolveParams p;
  p.generations = generations;
  p.seed = seed;
  return p;
}

// ---------- Topology donor schedules ----------

TEST(IslandTopology, RingDonatesFromLeftNeighbor) {
  EXPECT_EQ(island::donors_for(Topology::kRing, 0, 4),
            (std::vector<unsigned>{3}));
  EXPECT_EQ(island::donors_for(Topology::kRing, 1, 4),
            (std::vector<unsigned>{0}));
  EXPECT_EQ(island::donors_for(Topology::kRing, 3, 4),
            (std::vector<unsigned>{2}));
}

TEST(IslandTopology, StarRoutesThroughHub) {
  EXPECT_EQ(island::donors_for(Topology::kStar, 0, 4),
            (std::vector<unsigned>{1, 2, 3}));
  EXPECT_EQ(island::donors_for(Topology::kStar, 2, 4),
            (std::vector<unsigned>{0}));
}

TEST(IslandTopology, FullConnectsEveryPair) {
  EXPECT_EQ(island::donors_for(Topology::kFull, 1, 4),
            (std::vector<unsigned>{0, 2, 3}));
  EXPECT_EQ(island::donors_for(Topology::kFull, 0, 3),
            (std::vector<unsigned>{1, 2}));
}

TEST(IslandTopology, NoneAndSingletonHaveNoDonors) {
  EXPECT_TRUE(island::donors_for(Topology::kNone, 1, 4).empty());
  EXPECT_TRUE(island::donors_for(Topology::kRing, 0, 1).empty());
}

// ---------- Single-island and multistart equivalence ----------

TEST(IslandFleet, OneIslandMatchesPlainEvolve) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  const EvolveParams p = small_params();

  core::OptimizerOptions oo;
  oo.evolve = p;
  const EvolveResult plain = core::Optimizer(oo).run(init, b.spec).evolve;

  FleetOptions fleet;
  fleet.islands = 1;
  fleet.migration_interval = 100;
  const EvolveResult one = island::run_fleet(init, b.spec, p, fleet);
  expect_same_result(plain, one);
}

TEST(IslandFleet, TopologyNoneMatchesMultistartAlias) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  const EvolveParams p = small_params(403); // 403 = 3*134 + 1: remainder split

  core::OptimizerOptions oo;
  oo.algorithm = core::Algorithm::kMultistart;
  oo.evolve = p;
  oo.restarts = 3;
  const EvolveResult alias = core::Optimizer(oo).run(init, b.spec).evolve;

  FleetOptions fleet;
  fleet.islands = 3;
  fleet.topology = Topology::kNone;
  const EvolveResult direct = island::run_fleet(init, b.spec, p, fleet);
  expect_same_result(alias, direct);
}

// ---------- Placement / parallelism bit-identity ----------

TEST(IslandFleet, ParallelismDoesNotChangeResults) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  const EvolveParams p = small_params(500, 29);

  FleetOptions fleet;
  fleet.islands = 3;
  fleet.topology = Topology::kRing;
  fleet.migration_interval = 100;
  fleet.parallelism = 1;
  const EvolveResult serial = island::run_fleet(init, b.spec, p, fleet);
  fleet.parallelism = 4;
  const EvolveResult wide = island::run_fleet(init, b.spec, p, fleet);
  expect_same_result(serial, wide);
}

TEST(IslandFleet, FileBackedMatchesInMemory) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  const EvolveParams p = small_params(400, 5);

  FleetOptions fleet;
  fleet.islands = 2;
  fleet.topology = Topology::kRing;
  fleet.migration_interval = 100;
  const EvolveResult memory = island::run_fleet(init, b.spec, p, fleet);

  fleet.state_dir = temp_dir("filebacked");
  const EvolveResult disk = island::run_fleet(init, b.spec, p, fleet);
  expect_same_result(memory, disk);
  std::filesystem::remove_all(fleet.state_dir);
}

TEST(IslandFleet, TopologiesDivergeButAreDeterministic) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  const EvolveParams p = small_params(500, 29);

  FleetOptions fleet;
  fleet.islands = 4;
  fleet.migration_interval = 50;
  for (const Topology t :
       {Topology::kRing, Topology::kStar, Topology::kFull}) {
    fleet.topology = t;
    const EvolveResult a = island::run_fleet(init, b.spec, p, fleet);
    const EvolveResult c = island::run_fleet(init, b.spec, p, fleet);
    expect_same_result(a, c);
  }
}

// ---------- Epoch-wise resume ----------

TEST(IslandFleet, EpochSteppingResumeIsBitIdentical) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  const EvolveParams p = small_params(600, 13);

  FleetOptions fleet;
  fleet.islands = 3;
  fleet.topology = Topology::kRing;
  fleet.migration_interval = 100;
  const EvolveResult whole = island::run_fleet(init, b.spec, p, fleet);

  // Same run, but interrupted after every epoch and resumed from disk —
  // the killed-fleet recovery path, without the SIGKILL.
  fleet.state_dir = temp_dir("stepping");
  fleet.max_epochs = 1;
  EvolveResult stepped;
  for (int step = 0; step < 64; ++step) {
    stepped = island::run_fleet(init, b.spec, p, fleet);
    fleet.resume = true;
    if (stepped.stop_reason == robust::StopReason::kCompleted) {
      break;
    }
  }
  EXPECT_EQ(stepped.stop_reason, robust::StopReason::kCompleted);
  EXPECT_TRUE(stepped.resumed);
  EXPECT_EQ(io::write_rqfp_string(whole.best),
            io::write_rqfp_string(stepped.best));
  EXPECT_EQ(whole.generations_run, stepped.generations_run);
  EXPECT_EQ(whole.evaluations, stepped.evaluations);
  EXPECT_EQ(whole.improvements, stepped.improvements);
  std::filesystem::remove_all(fleet.state_dir);
}

TEST(IslandFleet, StaleNextFilesFromAnUncommittedEpochAreDiscarded) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  const EvolveParams p = small_params(600, 13);

  FleetOptions fleet;
  fleet.islands = 3;
  fleet.topology = Topology::kRing;
  fleet.migration_interval = 100;
  const EvolveResult whole = island::run_fleet(init, b.spec, p, fleet);

  // Step the fleet epoch by epoch; before every resume, plant a bogus
  // island-i.ckpt.next for each island — the disk state a SIGKILL leaves
  // when it lands after an epoch precomputed its migrations but before
  // the manifest committed them. Resume must discard all of them: the
  // committed manifest's pending list was retired right after the
  // previous epoch's renames, so these are uncommitted precomputations.
  // (A stale pending list would rename one over a real checkpoint and
  // either diverge or trip the configuration check.)
  fleet.state_dir = temp_dir("stale_next");
  fleet.max_epochs = 1;
  EvolveResult stepped;
  for (int step = 0; step < 64; ++step) {
    stepped = island::run_fleet(init, b.spec, p, fleet);
    if (stepped.stop_reason == robust::StopReason::kCompleted) {
      break;
    }
    fleet.resume = true;
    for (unsigned i = 0; i < fleet.islands; ++i) {
      const std::string own = island::island_state_path(fleet.state_dir, i);
      const std::string donor = island::island_state_path(
          fleet.state_dir, (i + 1) % fleet.islands);
      if (std::filesystem::exists(donor)) {
        std::filesystem::copy_file(
            donor, own + ".next",
            std::filesystem::copy_options::overwrite_existing);
      }
    }
  }
  EXPECT_EQ(stepped.stop_reason, robust::StopReason::kCompleted);
  EXPECT_EQ(io::write_rqfp_string(whole.best),
            io::write_rqfp_string(stepped.best));
  EXPECT_EQ(whole.generations_run, stepped.generations_run);
  EXPECT_EQ(whole.evaluations, stepped.evaluations);
  EXPECT_EQ(whole.improvements, stepped.improvements);
  std::filesystem::remove_all(fleet.state_dir);
}

TEST(IslandFleet, ResumeOfFinishedFleetReturnsSameResult) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  const EvolveParams p = small_params(300, 23);

  FleetOptions fleet;
  fleet.islands = 2;
  fleet.migration_interval = 100;
  fleet.state_dir = temp_dir("finished");
  const EvolveResult first = island::run_fleet(init, b.spec, p, fleet);
  fleet.resume = true;
  const EvolveResult again = island::run_fleet(init, b.spec, p, fleet);
  expect_same_result(first, again);
  std::filesystem::remove_all(fleet.state_dir);
}

TEST(IslandFleet, ResumeRejectsMismatchedConfiguration) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  EvolveParams p = small_params(200, 3);

  FleetOptions fleet;
  fleet.islands = 2;
  fleet.migration_interval = 50;
  fleet.state_dir = temp_dir("mismatch");
  fleet.max_epochs = 1;
  (void)island::run_fleet(init, b.spec, p, fleet);

  fleet.resume = true;
  p.seed = 4; // different lineage seeds than the manifest records
  EXPECT_THROW(island::run_fleet(init, b.spec, p, fleet),
               std::invalid_argument);
  std::filesystem::remove_all(fleet.state_dir);
}

TEST(IslandFleet, ResultsAreFunctionallyCorrect) {
  const auto b = benchmarks::get("decoder_2_4");
  const auto init = init_netlist("decoder_2_4");
  FleetOptions fleet;
  fleet.islands = 3;
  fleet.topology = Topology::kFull;
  fleet.migration_interval = 100;
  const EvolveResult r =
      island::run_fleet(init, b.spec, small_params(400, 41), fleet);
  EXPECT_TRUE(cec::sim_check(r.best, b.spec).all_match);
  EXPECT_EQ(r.stop_reason, robust::StopReason::kCompleted);
}

// ---------- Optimizer facade routing ----------

TEST(IslandFleet, OptimizerFacadeRunsFleets) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  const EvolveParams p = small_params(400, 19);

  FleetOptions fleet;
  fleet.islands = 2;
  fleet.topology = Topology::kRing;
  fleet.migration_interval = 100;
  const EvolveResult direct = island::run_fleet(init, b.spec, p, fleet);

  core::OptimizerOptions oo;
  oo.evolve = p;
  oo.island.islands = 2;
  oo.island.topology = Topology::kRing;
  oo.island.migration_interval = 100;
  const EvolveResult facade = core::Optimizer(oo).run(init, b.spec).evolve;
  expect_same_result(direct, facade);
}

// ---------- Remote executor preconditions ----------

TEST(IslandRemote, RejectsEmptyEndpointList) {
  EXPECT_THROW(island::RemoteSliceExecutor({}), std::invalid_argument);
}

TEST(IslandRemote, RemotePlacementIsBitIdenticalToLocal) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  const EvolveParams p = small_params(400, 7);

  FleetOptions fleet;
  fleet.islands = 2;
  fleet.topology = Topology::kRing;
  fleet.migration_interval = 100;
  fleet.state_dir = temp_dir("placement_local");
  const EvolveResult local = island::run_fleet(init, b.spec, p, fleet);
  std::filesystem::remove_all(fleet.state_dir);

  // Same fleet, but every slice runs on one of two real daemons over TCP,
  // sharing the fleet's state directory as their --checkpoint-dir.
  fleet.state_dir = temp_dir("placement_remote");
  std::filesystem::create_directories(fleet.state_dir);
  std::vector<std::unique_ptr<serve::Server>> daemons;
  std::vector<std::string> endpoints;
  for (int d = 0; d < 2; ++d) {
    serve::ServeOptions so;
    so.listen = "127.0.0.1:0";
    so.checkpoint_dir = fleet.state_dir;
    so.workers = 1;
    daemons.push_back(std::make_unique<serve::Server>(std::move(so)));
    daemons.back()->start();
    endpoints.push_back(daemons.back()->bound_address());
  }
  island::RemoteSliceExecutor remote(endpoints);
  fleet.executor = &remote;
  const EvolveResult distributed = island::run_fleet(init, b.spec, p, fleet);
  for (auto& d : daemons) {
    d->stop();
  }
  expect_same_result(local, distributed);
  std::filesystem::remove_all(fleet.state_dir);
}

TEST(IslandRemote, DaemonWithoutCheckpointDirIsDetected) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  const EvolveParams p = small_params(200, 7);

  FleetOptions fleet;
  fleet.islands = 2;
  fleet.topology = Topology::kRing;
  fleet.migration_interval = 100;
  fleet.state_dir = temp_dir("no_ckpt_daemon");
  std::filesystem::create_directories(fleet.state_dir);

  // A daemon started without --checkpoint-dir evolves from scratch
  // in-memory and never opens the fleet's state files. The coordinator's
  // progress guard must surface that as an error, not a silently
  // "completed" fleet stuck at its pre-slice generations.
  serve::ServeOptions so;
  so.listen = "127.0.0.1:0";
  so.workers = 1;
  serve::Server daemon(std::move(so));
  daemon.start();
  island::RemoteSliceExecutor remote({daemon.bound_address()});
  fleet.executor = &remote;
  EXPECT_THROW(island::run_fleet(init, b.spec, p, fleet),
               std::runtime_error);
  daemon.stop();
  std::filesystem::remove_all(fleet.state_dir);
}

TEST(IslandRemote, RequiresFileBackedFleet) {
  const auto b = benchmarks::get("full_adder");
  const auto init = init_netlist("full_adder");
  island::RemoteSliceExecutor remote({"/tmp/nonexistent-rcgp.sock"});
  FleetOptions fleet;
  fleet.islands = 2;
  fleet.migration_interval = 50;
  fleet.executor = &remote; // no state_dir: the daemons have no shared state
  EXPECT_THROW(island::run_fleet(init, b.spec, small_params(100, 1), fleet),
               std::invalid_argument);
}

} // namespace
} // namespace rcgp
