#include <gtest/gtest.h>

#include "aqfp/aqfp.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flow.hpp"
#include "rqfp/cost.hpp"
#include "rqfp/energy.hpp"
#include "rqfp/reversibility.hpp"
#include "rqfp/simulate.hpp"

namespace rcgp::aqfp {
namespace {

rqfp::Netlist init_netlist(const std::string& name) {
  const auto b = benchmarks::get(name);
  core::FlowOptions opt;
  opt.run_cgp = false;
  return core::synthesize(b.spec, opt).initial;
}

TEST(AqfpCells, JjCosts) {
  EXPECT_EQ(jj_cost(CellKind::kBuffer), 2u);
  EXPECT_EQ(jj_cost(CellKind::kSplitter), 2u);
  EXPECT_EQ(jj_cost(CellKind::kMajority), 6u);
  EXPECT_EQ(jj_cost(CellKind::kInput), 0u);
  EXPECT_EQ(jj_cost(CellKind::kConst), 0u);
}

TEST(AqfpNetlist, RejectsForwardReferences) {
  Netlist net;
  Cell bad;
  bad.kind = CellKind::kBuffer;
  bad.fanins = {5};
  EXPECT_THROW(net.add_cell(bad), std::invalid_argument);
}

TEST(AqfpNetlist, ValidateChecksPhasesAndFanout) {
  Netlist net;
  const auto in = net.add_cell(Cell{CellKind::kInput, {}, {}, 0});
  net.register_input(in);
  // Buffer jumping two phases is illegal.
  net.add_cell(Cell{CellKind::kBuffer, {in}, {false}, 2});
  EXPECT_NE(net.validate(), "");
}

TEST(AqfpNetlist, SplitterFanoutCapacity) {
  Netlist net;
  const auto in = net.add_cell(Cell{CellKind::kInput, {}, {}, 0});
  net.register_input(in);
  const auto split =
      net.add_cell(Cell{CellKind::kSplitter, {in}, {false}, 1});
  for (int i = 0; i < 3; ++i) {
    net.add_cell(Cell{CellKind::kBuffer, {split}, {false}, 2});
  }
  EXPECT_EQ(net.validate(), "");
  net.add_cell(Cell{CellKind::kBuffer, {split}, {false}, 2}); // 4th load
  EXPECT_NE(net.validate(), "");
}

class AqfpExpansion : public ::testing::TestWithParam<const char*> {};

TEST_P(AqfpExpansion, StructureFunctionAndJjFormulaAgree) {
  const auto b = benchmarks::get(GetParam());
  const auto circuit = init_netlist(GetParam());
  const Netlist cells = expand(circuit);

  // 1. AQFP discipline holds (phases, fanout capacities).
  EXPECT_EQ(cells.validate(), "") << GetParam();

  // 2. Fig. 1(a) structure: 3 splitters and 3 majorities per RQFP gate.
  const auto cost = rqfp::cost_of(circuit);
  EXPECT_EQ(cells.count(CellKind::kSplitter), 3 * cost.n_r);
  EXPECT_EQ(cells.count(CellKind::kMajority), 3 * cost.n_r);
  // 2 AQFP buffers per RQFP buffer.
  EXPECT_EQ(cells.count(CellKind::kBuffer), 2 * cost.n_b);

  // 3. The paper's JJ formula emerges from cell-level accounting.
  EXPECT_EQ(cells.total_jjs(), cost.jjs) << GetParam();

  // 4. Same functions as the gate-level netlist (and hence the spec).
  EXPECT_EQ(cells.simulate(), rqfp::simulate(circuit)) << GetParam();

  // 5. Depth in half-stages.
  EXPECT_EQ(cells.max_phase(), 2 * cost.n_d);
}

INSTANTIATE_TEST_SUITE_P(Circuits, AqfpExpansion,
                         ::testing::Values("full_adder", "decoder_2_4",
                                           "graycode4", "c17", "ham3",
                                           "intdiv4"));

TEST(AqfpNetlist, TextAndDotWriters) {
  const auto circuit = init_netlist("decoder_2_4");
  const Netlist cells = expand(circuit);
  const auto text = write_cells_string(cells);
  EXPECT_NE(text.find("majority"), std::string::npos);
  EXPECT_NE(text.find("splitter"), std::string::npos);
  EXPECT_NE(text.find("output"), std::string::npos);
  // One "cell" line per cell.
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') {
      ++lines;
    }
  }
  EXPECT_GE(lines, cells.num_cells());
  const auto dot = write_cells_dot_string(cells);
  EXPECT_NE(dot.find("digraph aqfp"), std::string::npos);
  EXPECT_NE(dot.find("rank=same"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

TEST(AqfpExpansion, OptimizedCircuitsStayConsistent) {
  const auto b = benchmarks::get("decoder_2_4");
  core::FlowOptions opt;
  opt.evolve.generations = 5000;
  const auto flow = core::synthesize(b.spec, opt);
  const Netlist cells = expand(flow.optimized);
  EXPECT_EQ(cells.validate(), "");
  EXPECT_EQ(cells.total_jjs(), flow.optimized_cost.jjs);
  EXPECT_EQ(cells.simulate(), rqfp::simulate(flow.optimized));
}

} // namespace
} // namespace rcgp::aqfp

namespace rcgp::rqfp {
namespace {

TEST(Reversibility, NormalGateIsBijective) {
  EXPECT_TRUE(gate_is_bijective(InvConfig::reversible()));
  // All-identical rows collapse the three outputs: not bijective.
  EXPECT_FALSE(gate_is_bijective(InvConfig::triple(0)));
}

TEST(Reversibility, BijectiveConfigCountIsStable) {
  const unsigned count = count_bijective_configs();
  // The normal gate and its relabelings are bijective; identical-row
  // configurations are not. The exact census is a regression anchor.
  EXPECT_GT(count, 0u);
  EXPECT_LT(count, 512u);
  EXPECT_EQ(count, count_bijective_configs()); // deterministic
}

TEST(Reversibility, SingleReversibleGateCircuitPreservesInformation) {
  Netlist net(3);
  const auto g = net.add_gate({1, 2, 3}, InvConfig::reversible());
  net.add_po(net.port_of(g, 0));
  net.add_po(net.port_of(g, 1));
  net.add_po(net.port_of(g, 2));
  const auto report = analyze_reversibility(net);
  EXPECT_TRUE(report.information_preserving);
  EXPECT_EQ(report.image_size, 8u);
  EXPECT_DOUBLE_EQ(report.erased_bits, 0.0);
}

TEST(Reversibility, AndGateAloneErasesInformation) {
  // AND with only the function output bound and outputs 0/1 garbage is
  // still information-preserving (the garbage carries the inputs);
  // dropping the garbage from the boundary is impossible here, so build a
  // genuinely lossy circuit: feed both PIs into one AND and bind one PO,
  // where outputs 0/1 are configured identically (no added information).
  Netlist net(2);
  const auto g = net.add_gate({1, 2, kConstPort}, InvConfig::triple(4));
  net.add_po(net.port_of(g, 0));
  // Outputs 1 and 2 are identical copies of a&b: boundary = {ab, ab, ab}.
  const auto report = analyze_reversibility(net);
  EXPECT_FALSE(report.information_preserving);
  ASSERT_TRUE(report.collision.has_value());
  EXPECT_GT(report.erased_bits, 0.0);
  EXPECT_EQ(report.image_size, 2u);
}

TEST(Reversibility, PaperAndRealizationKeepsInputsRecoverable) {
  // The paper's AND gate R(a,b,1) = {!a+b, a+!b, ab}: the three outputs
  // together determine (a, b), so nothing is erased.
  Netlist net(2);
  const auto g =
      net.add_gate({1, 2, kConstPort}, InvConfig::reversible());
  net.add_po(net.port_of(g, 2), "and");
  const auto report = analyze_reversibility(net);
  EXPECT_TRUE(report.information_preserving);
  EXPECT_EQ(report.image_size, 4u);
}

TEST(Energy, LandauerLimitValues) {
  // k_B * T * ln2 at 300 K is ~2.87e-21 J (the classic figure).
  EXPECT_NEAR(landauer_limit(300.0), 2.87e-21, 0.05e-21);
  EXPECT_GT(landauer_limit(300.0), landauer_limit(4.2));
  EXPECT_DOUBLE_EQ(landauer_limit(0.0), 0.0);
}

TEST(Energy, EstimateCombinesFloorAndSwitching) {
  Netlist net(2);
  const auto g = net.add_gate({1, 2, kConstPort}, InvConfig::triple(4));
  net.add_po(net.port_of(g, 0));
  const auto e = estimate_energy(net, 4.2);
  EXPECT_GT(e.erased_bits, 0.0);
  EXPECT_GT(e.landauer_floor, 0.0);
  EXPECT_EQ(e.jjs, 24u);
  EXPECT_GT(e.switching_estimate, 0.0);
  // Information-preserving circuit has a zero Landauer floor.
  Netlist rev(3);
  const auto rg = rev.add_gate({1, 2, 3}, InvConfig::reversible());
  rev.add_po(rev.port_of(rg, 0));
  rev.add_po(rev.port_of(rg, 1));
  rev.add_po(rev.port_of(rg, 2));
  const auto er = estimate_energy(rev, 4.2);
  EXPECT_DOUBLE_EQ(er.landauer_floor, 0.0);
}

} // namespace
} // namespace rcgp::rqfp
