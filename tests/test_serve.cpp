#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "batch/execute.hpp"
#include "cache/store.hpp"
#include "core/request.hpp"
#include "io/rqfp_writer.hpp"
#include "rqfp/simulate.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::serve {
namespace {

std::string temp_socket(const std::string& name) {
  // Unix socket paths are length-limited (~108 bytes); /tmp is safe where
  // a deep build-tree path may not be.
  const auto dir = std::filesystem::temp_directory_path() / "rcgp_serve";
  std::filesystem::create_directories(dir);
  const auto path = dir / name;
  std::filesystem::remove(path);
  return path.string();
}

core::SynthesisRequest small_request(const std::string& id) {
  core::SynthesisRequest r;
  r.id = id;
  r.spec = {tt::TruthTable::from_hex(2, "8")}; // x0 & x1
  r.generations = 2000;
  r.seed = 7;
  return r;
}

// ---------- protocol plumbing ----------

TEST(Protocol, ListenRejectsOverlongPaths) {
  EXPECT_THROW(listen_unix(std::string(200, 'x')), std::runtime_error);
  EXPECT_THROW(listen_unix(""), std::runtime_error);
}

TEST(Protocol, ConnectToNothingThrows) {
  EXPECT_THROW(connect_unix(temp_socket("nobody.sock")), std::runtime_error);
}

// ---------- request/response over the wire ----------

TEST(Server, AnswersARequestAndVerifies) {
  ServeOptions opt;
  opt.socket_path = temp_socket("basic.sock");
  opt.workers = 2;
  Server server(std::move(opt));
  server.start();

  Client client(server.socket_path());
  const core::SynthesisRequest req = small_request("and2");
  const core::SynthesisResponse resp = client.submit(req);
  EXPECT_EQ(resp.id, "and2");
  EXPECT_TRUE(resp.ok);
  EXPECT_TRUE(resp.verified);
  EXPECT_FALSE(resp.cached);
  const rqfp::Netlist net = io::parse_rqfp_string(resp.netlist);
  EXPECT_EQ(rqfp::simulate(net), req.spec);

  server.stop();
  EXPECT_FALSE(std::filesystem::exists(server.socket_path()));
}

TEST(Server, SecondIdenticalRequestIsServedFromTheCache) {
  cache::Store store; // unbound: memory-only is fine for the protocol test
  ServeOptions opt;
  opt.socket_path = temp_socket("cached.sock");
  opt.execute.cache = &store;
  Server server(std::move(opt));
  server.start();

  Client client(server.socket_path());
  const core::SynthesisResponse cold = client.submit(small_request("c1"));
  ASSERT_TRUE(cold.ok);
  EXPECT_FALSE(cold.cached);
  const core::SynthesisResponse warm = client.submit(small_request("c2"));
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cached);
  EXPECT_TRUE(warm.verified);
  // De-canonicalized hits drop port names (names cannot survive the NPN
  // permutation), so compare functions — and require hit-vs-hit text to be
  // bit-identical.
  EXPECT_EQ(rqfp::simulate(io::parse_rqfp_string(warm.netlist)),
            rqfp::simulate(io::parse_rqfp_string(cold.netlist)));
  EXPECT_LT(warm.seconds, 0.1); // hits skip synthesis entirely

  const core::SynthesisResponse warm2 = client.submit(small_request("c3"));
  ASSERT_TRUE(warm2.ok);
  EXPECT_TRUE(warm2.cached);
  EXPECT_EQ(warm2.netlist, warm.netlist);

  server.stop();
}

TEST(Server, MalformedLineGetsAnErrorAndTheConnectionSurvives) {
  ServeOptions opt;
  opt.socket_path = temp_socket("survive.sock");
  // Stub executor: the test exercises framing, not synthesis.
  opt.executor = [](const batch::Job& job, const batch::JobContext&) {
    batch::JobExecution exec;
    exec.verified = true;
    (void)job;
    return exec;
  };
  Server server(std::move(opt));
  server.start();

  Client client(server.socket_path());
  const core::SynthesisResponse bad = client.submit_line("{\"nope\":");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("serve:"), std::string::npos) << bad.error;

  const core::SynthesisResponse good =
      client.submit_line(core::to_json(small_request("after-error")));
  EXPECT_EQ(good.id, "after-error");
  EXPECT_TRUE(good.ok);

  server.stop();
}

TEST(Server, ResponsesComeBackInRequestOrder) {
  ServeOptions opt;
  opt.socket_path = temp_socket("order.sock");
  opt.workers = 4;
  opt.executor = [](const batch::Job& job, const batch::JobContext&) {
    batch::JobExecution exec;
    exec.verified = true;
    (void)job;
    return exec;
  };
  Server server(std::move(opt));
  server.start();

  Client client(server.socket_path());
  for (int i = 0; i < 20; ++i) {
    const std::string id = "seq" + std::to_string(i);
    core::SynthesisRequest r;
    r.id = id;
    r.circuit = "c17";
    const core::SynthesisResponse resp = client.submit(r);
    EXPECT_EQ(resp.id, id);
  }
  server.stop();
}

TEST(Server, ServesConcurrentConnections) {
  ServeOptions opt;
  opt.socket_path = temp_socket("concurrent.sock");
  opt.workers = 4;
  opt.executor = [](const batch::Job& job, const batch::JobContext&) {
    batch::JobExecution exec;
    exec.verified = true;
    (void)job;
    return exec;
  };
  Server server(std::move(opt));
  server.start();

  std::vector<std::thread> clients;
  std::vector<int> ok_counts(4, 0);
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Client client(server.socket_path());
      for (int i = 0; i < 10; ++i) {
        core::SynthesisRequest r;
        r.id = "conn" + std::to_string(c) + "-" + std::to_string(i);
        r.circuit = "c17";
        if (client.submit(r).id == r.id) {
          ++ok_counts[c];
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  for (const int n : ok_counts) {
    EXPECT_EQ(n, 10);
  }
  server.stop();
}

// ---------- TCP transport ----------

TEST(Transport, ForAddressClassifiesEndpoints) {
  EXPECT_EQ(Transport::for_address("127.0.0.1:7000")->describe(),
            "127.0.0.1:7000");
  EXPECT_EQ(Transport::for_address("[::1]:7000")->describe(), "::1:7000");
  // No numeric port suffix → a Unix socket path, colons and all.
  EXPECT_EQ(Transport::for_address("/tmp/rcgp.sock")->describe(),
            "/tmp/rcgp.sock");
  EXPECT_EQ(Transport::for_address("dir/with:colon")->describe(),
            "dir/with:colon");
  EXPECT_THROW(Transport::for_address(""), std::invalid_argument);
  EXPECT_THROW(Transport::for_address("host:99999"), std::invalid_argument);
  // A digit run long enough to overflow unsigned long is still the
  // port-out-of-range error, not std::out_of_range from the converter.
  EXPECT_THROW(Transport::for_address("host:99999999999999999999"),
               std::invalid_argument);
}

TEST(Transport, TcpServesTheSameProtocol) {
  ServeOptions opt;
  opt.listen = "127.0.0.1:0"; // ephemeral port
  opt.workers = 2;
  Server server(std::move(opt));
  server.start();
  const std::string address = server.bound_address();
  // The kernel resolved the ephemeral port to a real one.
  EXPECT_EQ(address.rfind("127.0.0.1:", 0), 0u) << address;
  EXPECT_NE(address, "127.0.0.1:0");

  Client client(address);
  const core::SynthesisRequest req = small_request("tcp-and2");
  const core::SynthesisResponse resp = client.submit(req);
  EXPECT_EQ(resp.id, "tcp-and2");
  EXPECT_TRUE(resp.ok);
  EXPECT_TRUE(resp.verified);
  const rqfp::Netlist net = io::parse_rqfp_string(resp.netlist);
  EXPECT_EQ(rqfp::simulate(net), req.spec);
  server.stop();
}

TEST(Transport, TcpConnectToNothingThrows) {
  // Port 1 on localhost: virtually never listening, and connect fails fast.
  EXPECT_THROW(connect_tcp("127.0.0.1", 1), std::runtime_error);
}

// ---------- daemon-side evolve checkpoints (island worker contract) ----------

TEST(Server, CheckpointDirMakesEvolveJobsResumable) {
  const auto dir =
      std::filesystem::temp_directory_path() / "rcgp_serve_ckptdir";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::vector<std::pair<std::string, bool>> seen; // (checkpoint_path, resume)
  ServeOptions opt;
  opt.socket_path = temp_socket("ckptdir.sock");
  opt.checkpoint_dir = dir.string();
  opt.executor = [&](const batch::Job& job, const batch::JobContext& ctx) {
    seen.emplace_back(ctx.checkpoint_path, ctx.resume_from_checkpoint);
    if (!ctx.checkpoint_path.empty() && !ctx.resume_from_checkpoint) {
      if (job.id == "island-0") {
        std::ofstream(ctx.checkpoint_path) << "stub"; // simulate a slice
      } else if (job.id == "fleet-0") {
        // A multi-island run persists only a fleet manifest in a sibling
        // directory, never the single checkpoint file.
        std::filesystem::create_directories(ctx.checkpoint_path + ".islands");
        std::ofstream(ctx.checkpoint_path + ".islands/fleet.json") << "{}";
      }
    }
    batch::JobExecution exec;
    exec.verified = true;
    return exec;
  };
  Server server(std::move(opt));
  server.start();

  Client client(server.socket_path());
  (void)client.submit(small_request("island-0"));
  (void)client.submit(small_request("island-0")); // same id → resume
  core::SynthesisRequest anneal = small_request("no-ckpt");
  anneal.algorithm = core::Algorithm::kAnneal;
  (void)client.submit(anneal);
  (void)client.submit(small_request("fleet-0"));
  (void)client.submit(small_request("fleet-0")); // manifest exists → resume
  server.stop();

  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[0].first, (dir / "island-0.ckpt").string());
  EXPECT_FALSE(seen[0].second); // no file yet: fresh
  EXPECT_EQ(seen[1].first, (dir / "island-0.ckpt").string());
  EXPECT_TRUE(seen[1].second); // the stub file exists now: resume
  EXPECT_TRUE(seen[2].first.empty()); // kAnneal jobs never checkpoint
  EXPECT_FALSE(seen[3].second); // neither artifact yet: fresh
  EXPECT_TRUE(seen[4].second); // fleet manifest alone triggers resume
  std::filesystem::remove_all(dir);
}

TEST(Server, StopIsIdempotentAndRestartable) {
  const std::string path = temp_socket("restart.sock");
  {
    ServeOptions opt;
    opt.socket_path = path;
    Server server(std::move(opt));
    server.start();
    server.stop();
    server.stop(); // idempotent
  }
  // A new server binds the same path cleanly (stale files are unlinked).
  ServeOptions opt;
  opt.socket_path = path;
  Server server(std::move(opt));
  server.start();
  EXPECT_TRUE(server.running());
  server.stop();
}

} // namespace
} // namespace rcgp::serve
