#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u); // all values hit with overwhelming probability
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(42);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(77);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  const double s = w.seconds();
  const double ms = w.milliseconds();
  EXPECT_GE(s, 0.0);
  EXPECT_GE(ms, s * 1e3); // milliseconds read later, monotone clock
}

TEST(Stopwatch, RestartResets) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  const double before = w.seconds();
  w.restart();
  EXPECT_LE(w.seconds(), before + 1.0);
}

TEST(Log, LevelRoundTrip) {
  const auto saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_debug("should be suppressed");
  log_error("error-level message (expected in test output)");
  set_log_level(LogLevel::kOff);
  log_error("suppressed entirely");
  set_log_level(saved);
}

} // namespace
} // namespace rcgp::util
