#include <gtest/gtest.h>

#include "aig/aig_simulate.hpp"
#include "benchmarks/benchmarks.hpp"
#include "cec/sat_cec.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "exact/exact_rqfp.hpp"
#include "io/rqfp_writer.hpp"
#include "io/verilog.hpp"
#include "rqfp/cost.hpp"
#include "rqfp/simulate.hpp"

namespace rcgp {
namespace {

/// End-to-end flow on every small benchmark: the result must be a legal
/// RQFP netlist, simulation-equivalent and SAT-equivalent to the spec, and
/// never worse than the initialization baseline.
class EndToEnd : public ::testing::TestWithParam<std::string> {};

TEST_P(EndToEnd, FlowProducesVerifiedImprovedCircuit) {
  const auto b = benchmarks::get(GetParam());
  core::FlowOptions opt;
  opt.evolve.generations = 8000;
  opt.evolve.seed = 2024;
  const auto r = core::synthesize(b.spec, opt);

  EXPECT_EQ(r.initial.validate(), "");
  EXPECT_EQ(r.optimized.validate(), "");
  EXPECT_TRUE(cec::sim_check(r.initial, b.spec).all_match);
  EXPECT_TRUE(cec::sim_check(r.optimized, b.spec).all_match);
  EXPECT_EQ(cec::sat_check(r.optimized, b.spec).verdict,
            cec::CecVerdict::kEquivalent);

  EXPECT_LE(r.optimized_cost.n_r, r.initial_cost.n_r);
  EXPECT_LE(r.optimized_cost.n_g, r.initial_cost.n_g);
  EXPECT_EQ(r.optimized_cost.jjs,
            24 * r.optimized_cost.n_r + 4 * r.optimized_cost.n_b);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, EndToEnd,
    ::testing::Values("full_adder", "4gt10", "c17", "decoder_2_4",
                      "graycode4", "ham3"));

TEST(Integration, DecoderInitializationMatchesPaperRow) {
  // Table 1, decoder_2_4 "Initialization": n_r=8, n_d=3, n_g=10.
  const auto b = benchmarks::get("decoder_2_4");
  core::FlowOptions opt;
  opt.run_cgp = false;
  const auto r = core::synthesize(b.spec, opt);
  EXPECT_EQ(r.initial_cost.n_r, 8u);
  EXPECT_EQ(r.initial_cost.n_d, 3u);
  EXPECT_EQ(r.initial_cost.n_g, 10u);
}

TEST(Integration, Gt10InitializationMatchesPaperRow) {
  // Table 1, 4gt10 "Initialization": n_r=3, n_b=3, JJs=84, n_d=3, n_g=6.
  const auto b = benchmarks::get("4gt10");
  core::FlowOptions opt;
  opt.run_cgp = false;
  const auto r = core::synthesize(b.spec, opt);
  EXPECT_EQ(r.initial_cost.n_r, 3u);
  EXPECT_EQ(r.initial_cost.n_b, 3u);
  EXPECT_EQ(r.initial_cost.jjs, 84u);
  EXPECT_EQ(r.initial_cost.n_d, 3u);
  EXPECT_EQ(r.initial_cost.n_g, 6u);
}

TEST(Integration, ExactAndCgpAgreeOnDecoderOptimum) {
  const auto b = benchmarks::get("decoder_2_4");
  exact::ExactParams ep;
  ep.max_gates = 3;
  ep.time_limit_seconds = 60;
  const auto ex = exact::exact_synthesize(b.spec, ep);
  ASSERT_EQ(ex.status, exact::ExactStatus::kSolved);

  core::FlowOptions opt;
  opt.evolve.generations = 60000;
  opt.evolve.seed = 7;
  const auto r = core::synthesize(b.spec, opt);
  // CGP is near-optimal: within a small factor of the exact optimum, and
  // both implement the same function.
  EXPECT_LE(r.optimized_cost.n_r, 2 * ex.gates);
  EXPECT_EQ(cec::sat_check(*ex.netlist, r.optimized).verdict,
            cec::CecVerdict::kEquivalent);
}

TEST(Integration, VerilogToRqfpFlow) {
  const std::string rtl = R"(
module fa (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  assign sum = a ^ b ^ cin;
  assign cout = (a & b) | (a & cin) | (b & cin);
endmodule
)";
  const auto net = io::parse_verilog_string(rtl);
  core::FlowOptions opt;
  opt.evolve.generations = 4000;
  const auto r = core::synthesize(net, opt);
  EXPECT_EQ(r.optimized.validate(), "");
  EXPECT_EQ(rqfp::simulate(r.optimized), aig::simulate(net));
}

TEST(Integration, RqfpFileRoundTripAfterFlow) {
  const auto b = benchmarks::get("ham3");
  core::FlowOptions opt;
  opt.evolve.generations = 2000;
  const auto r = core::synthesize(b.spec, opt);
  const auto text = io::write_rqfp_string(r.optimized);
  const auto back = io::parse_rqfp_string(text);
  EXPECT_EQ(rqfp::simulate(back), rqfp::simulate(r.optimized));
  EXPECT_EQ(rqfp::cost_of(back).n_r, r.optimized_cost.n_r);
}

TEST(Integration, LargeBenchmarkInitializationIsCorrect) {
  // Table 2-scale circuit through initialization only (CGP budget is the
  // benches' job; correctness of the big netlist is the test's job).
  const auto b = benchmarks::get("intdiv6");
  core::FlowOptions opt;
  opt.run_cgp = false;
  const auto r = core::synthesize(b.spec, opt);
  EXPECT_EQ(r.initial.validate(), "");
  EXPECT_TRUE(cec::sim_check(r.initial, b.spec).all_match);
  EXPECT_GT(r.initial_cost.n_r, 20u); // genuinely large
}

TEST(Integration, LargeBenchmarkShortCgpImproves) {
  const auto b = benchmarks::get("intdiv4");
  core::FlowOptions opt;
  opt.evolve.generations = 3000;
  opt.evolve.seed = 3;
  const auto r = core::synthesize(b.spec, opt);
  EXPECT_TRUE(cec::sim_check(r.optimized, b.spec).all_match);
  EXPECT_LE(r.optimized_cost.n_r, r.initial_cost.n_r);
  EXPECT_LE(r.optimized_cost.n_g, r.initial_cost.n_g);
}

TEST(Integration, GarbageRespectsLowerBound) {
  for (const char* name : {"full_adder", "4gt10", "mux4"}) {
    const auto b = benchmarks::get(name);
    core::FlowOptions opt;
    opt.evolve.generations = 4000;
    const auto r = core::synthesize(b.spec, opt);
    EXPECT_GE(r.optimized_cost.n_g,
              rqfp::garbage_lower_bound(b.num_pis, b.num_pos))
        << name;
  }
}

TEST(Integration, SeedsAreReproducible) {
  const auto b = benchmarks::get("decoder_2_4");
  core::FlowOptions opt;
  opt.evolve.generations = 3000;
  opt.evolve.seed = 99;
  const auto r1 = core::synthesize(b.spec, opt);
  const auto r2 = core::synthesize(b.spec, opt);
  EXPECT_EQ(r1.optimized_cost.n_r, r2.optimized_cost.n_r);
  EXPECT_EQ(r1.optimized_cost.n_g, r2.optimized_cost.n_g);
  EXPECT_TRUE(r1.optimized == r2.optimized);
}

} // namespace
} // namespace rcgp
