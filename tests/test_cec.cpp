#include <gtest/gtest.h>

#include "cec/sat_cec.hpp"
#include "cec/sim_cec.hpp"
#include "rqfp/simulate.hpp"
#include "util/rng.hpp"

namespace rcgp::cec {
namespace {

rqfp::Netlist and_netlist() {
  rqfp::Netlist net(2);
  const auto g = net.add_gate({1, 2, rqfp::kConstPort},
                              rqfp::InvConfig::from_rows(5, 6, 4));
  net.add_po(net.port_of(g, 2));
  return net;
}

rqfp::Netlist or_netlist() {
  rqfp::Netlist net(2);
  // M(a, b, 1): no inversions on row 2, constant stays 1.
  const auto g = net.add_gate({1, 2, rqfp::kConstPort},
                              rqfp::InvConfig::from_rows(1, 2, 0));
  net.add_po(net.port_of(g, 2));
  return net;
}

std::vector<tt::TruthTable> and_spec() {
  return {tt::TruthTable::projection(2, 0) & tt::TruthTable::projection(2, 1)};
}

TEST(SimCec, ExactMatch) {
  const auto r = sim_check(and_netlist(), and_spec());
  EXPECT_TRUE(r.all_match);
  EXPECT_DOUBLE_EQ(r.success_rate, 1.0);
  EXPECT_EQ(r.total_bits, 4u);
}

TEST(SimCec, CountsMismatches) {
  const auto spec = and_spec();
  const auto r = sim_check(or_netlist(), spec);
  EXPECT_FALSE(r.all_match);
  // AND vs OR differ on 01 and 10: 2 of 4 bits.
  EXPECT_EQ(r.mismatching_bits, 2u);
  EXPECT_DOUBLE_EQ(r.success_rate, 0.5);
}

TEST(SimCec, PoCountMismatchThrows) {
  std::vector<tt::TruthTable> two(2, tt::TruthTable(2));
  EXPECT_THROW(sim_check(and_netlist(), two), std::invalid_argument);
}

TEST(SimCec, RandomPatternsAgreeForIdenticalNetlists) {
  util::Rng rng(1);
  const auto a = and_netlist();
  const auto r = sim_check_random(a, a, 8, rng);
  EXPECT_TRUE(r.all_match);
  EXPECT_EQ(r.total_bits, 512u);
}

TEST(SimCec, RandomPatternsDetectDifference) {
  util::Rng rng(2);
  const auto r = sim_check_random(and_netlist(), or_netlist(), 8, rng);
  EXPECT_FALSE(r.all_match);
  EXPECT_GT(r.mismatching_bits, 0u);
}

TEST(SatCec, EquivalentAgainstSpec) {
  const auto r = sat_check(and_netlist(), and_spec());
  EXPECT_EQ(r.verdict, CecVerdict::kEquivalent);
  EXPECT_FALSE(r.counterexample.has_value());
}

TEST(SatCec, NotEquivalentProducesCounterexample) {
  const auto spec = and_spec();
  const auto r = sat_check(or_netlist(), spec);
  ASSERT_EQ(r.verdict, CecVerdict::kNotEquivalent);
  ASSERT_TRUE(r.counterexample.has_value());
  // The counterexample must actually distinguish the two functions.
  const auto cex = *r.counterexample;
  const auto outs = rqfp::evaluate(or_netlist(), cex);
  EXPECT_NE(outs[0], spec[0].bit(cex));
}

TEST(SatCec, NetlistVsNetlist) {
  EXPECT_EQ(sat_check(and_netlist(), and_netlist()).verdict,
            CecVerdict::kEquivalent);
  EXPECT_EQ(sat_check(and_netlist(), or_netlist()).verdict,
            CecVerdict::kNotEquivalent);
}

TEST(SatCec, StructurallyDifferentButEquivalent) {
  // AND(a,b) vs !OR(!a,!b) (rows complemented appropriately).
  rqfp::Netlist de_morgan(2);
  // M(!a, !b, 1) inverted at the output: row2 = invert a, b, and the
  // constant twice -> equal to !(a|b)? Build it as !( !a | !b ) = a & b:
  // first gate computes OR of complements, second inverts.
  const auto g0 = de_morgan.add_gate({1, 2, rqfp::kConstPort},
                                     rqfp::InvConfig::from_rows(0, 0, 3));
  // row 2 inverts inputs 0 and 1: M(!a, !b, 1) = !a | !b.
  const auto g1 =
      de_morgan.add_gate({rqfp::kConstPort, de_morgan.port_of(g0, 2),
                          rqfp::kConstPort},
                         rqfp::InvConfig::from_rows(6, 6, 6));
  // inverter: M(1, !x, 0) = !x.
  de_morgan.add_po(de_morgan.port_of(g1, 0));
  const auto sim = sim_check(de_morgan, and_spec());
  ASSERT_TRUE(sim.all_match);
  EXPECT_EQ(sat_check(de_morgan, and_netlist()).verdict,
            CecVerdict::kEquivalent);
}

TEST(SatCec, EncodeTableHandlesConstants) {
  std::vector<tt::TruthTable> spec{tt::TruthTable::constant(2, true)};
  rqfp::Netlist net(2);
  net.add_po(rqfp::kConstPort);
  EXPECT_EQ(sat_check(net, spec).verdict, CecVerdict::kEquivalent);
  spec[0] = tt::TruthTable::constant(2, false);
  EXPECT_EQ(sat_check(net, spec).verdict, CecVerdict::kNotEquivalent);
}

TEST(SatCec, InterfaceMismatchThrows) {
  rqfp::Netlist a(2);
  a.add_po(1);
  rqfp::Netlist b(3);
  b.add_po(1);
  EXPECT_THROW(sat_check(a, b), std::invalid_argument);
}

TEST(SatCec, RandomNetlistsAgreeWithSimulation) {
  util::Rng rng(7);
  for (int round = 0; round < 15; ++round) {
    // Random legal netlist against its own simulated spec: must be
    // equivalent; against a perturbed spec: must not be.
    rqfp::Netlist net(3);
    std::vector<rqfp::Port> avail{1, 2, 3};
    for (int g = 0; g < 5; ++g) {
      std::array<rqfp::Port, 3> in{};
      for (auto& p : in) {
        const auto pick = rng.below(avail.size() + 1);
        p = pick == avail.size() ? rqfp::kConstPort : avail[pick];
      }
      const auto id = net.add_gate(
          in, rqfp::InvConfig(static_cast<std::uint16_t>(rng.below(512))));
      for (unsigned k = 0; k < 3; ++k) {
        avail.push_back(net.port_of(id, k));
      }
    }
    net.add_po(avail[rng.below(avail.size())]);
    auto spec = rqfp::simulate(net);
    EXPECT_EQ(sat_check(net, spec).verdict, CecVerdict::kEquivalent)
        << round;
    spec[0].set_bit(rng.below(8), !spec[0].bit(rng.below(8)));
    const auto r = sat_check(net, spec);
    if (r.verdict == CecVerdict::kNotEquivalent) {
      ASSERT_TRUE(r.counterexample.has_value());
    }
  }
}

} // namespace
} // namespace rcgp::cec
