#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/request.hpp"
#include "io/parse_error.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::core {
namespace {

// ---------- cache policy names ----------

TEST(CachePolicy, NamesRoundTrip) {
  for (const CachePolicy p :
       {CachePolicy::kOff, CachePolicy::kUse, CachePolicy::kSeed}) {
    EXPECT_EQ(parse_cache_policy(to_string(p)), p);
  }
  EXPECT_THROW(parse_cache_policy("bogus"), std::invalid_argument);
}

// ---------- request JSON round trip ----------

TEST(Request, MinimalCircuitJobRoundTrips) {
  SynthesisRequest r;
  r.id = "j1";
  r.circuit = "full_adder";
  const std::string json = to_json(r);
  EXPECT_EQ(parse_request(json), r);
}

TEST(Request, AllOverridesRoundTrip) {
  SynthesisRequest r;
  r.id = "heavy.job-2";
  r.circuit = "circuits/alu.v";
  r.algorithm = Algorithm::kAnneal;
  r.generations = 123456;
  r.seed = 42;
  r.lambda = 7;
  r.threads = 3;
  r.restarts = 5;
  r.deadline_seconds = 12.5;
  r.max_generations = 200000;
  r.max_evaluations = 1000000;
  r.stagnation_limit = 5000;
  r.retries = 2;
  r.cache = CachePolicy::kSeed;
  EXPECT_EQ(parse_request(to_json(r)), r);
}

TEST(Request, InlineSpecRoundTrips) {
  SynthesisRequest r;
  r.id = "inline";
  r.spec = {tt::TruthTable::from_hex(3, "e8"),
            tt::TruthTable::from_hex(3, "96")};
  r.cache = CachePolicy::kOff;
  const SynthesisRequest back = parse_request(to_json(r));
  EXPECT_EQ(back, r);
  ASSERT_EQ(back.spec.size(), 2u);
  EXPECT_EQ(back.spec[0].num_vars(), 3u);
}

// ---------- request validation ----------

void expect_request_error(const std::string& json,
                          const std::string& fragment) {
  try {
    parse_request(json, "doc", 3, "serve");
    FAIL() << "expected io::ParseError with: " << fragment;
  } catch (const io::ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("serve:doc:3:"), std::string::npos) << what;
    EXPECT_NE(what.find(fragment), std::string::npos) << what;
  }
}

TEST(Request, RejectionsCarryTheEmbeddingFormatContext) {
  expect_request_error("{\"schema\":1}", "id");
  expect_request_error("{\"schema\":1,\"id\":\"a b\",\"circuit\":\"c17\"}",
                       "id");
  expect_request_error("{\"schema\":99,\"id\":\"j\",\"circuit\":\"c17\"}",
                       "schema");
  expect_request_error(
      "{\"schema\":1,\"id\":\"j\",\"circuit\":\"c17\",\"bogus\":1}", "bogus");
  expect_request_error("{\"schema\":1,\"id\":\"j\",\"circuit\":\"c17\","
                       "\"spec\":[\"e8\"],\"spec_vars\":3}",
                       "circuit");
  expect_request_error("not json at all", "");
}

// ---------- schema 1 / schema 2 compatibility matrix ----------

TEST(RequestSchema, IslandFreeRequestsStillStampSchemaOne) {
  SynthesisRequest r;
  r.id = "legacy";
  r.circuit = "c17";
  r.generations = 1000;
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"schema\":1"), std::string::npos) << json;
  EXPECT_EQ(json.find("islands"), std::string::npos) << json;
  EXPECT_EQ(parse_request(json), r);
}

TEST(RequestSchema, SchemaOneDocumentsParseUnchanged) {
  const SynthesisRequest r = parse_request(
      "{\"schema\":1,\"id\":\"j\",\"circuit\":\"c17\",\"generations\":500}");
  EXPECT_EQ(r.islands, 0u);
  EXPECT_EQ(r.topology, Topology::kRing);
  EXPECT_EQ(r.migration_interval, 0u);
  EXPECT_EQ(r.migration_size, 0u);
}

TEST(RequestSchema, IslandFieldsStampSchemaTwoAndRoundTrip) {
  SynthesisRequest r;
  r.id = "fleet";
  r.circuit = "c17";
  r.islands = 4;
  r.topology = Topology::kStar;
  r.migration_interval = 500;
  r.migration_size = 2;
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"schema\":2"), std::string::npos) << json;
  EXPECT_EQ(parse_request(json), r);
}

TEST(RequestSchema, SchemaTwoDocumentsParseExplicitly) {
  const SynthesisRequest r = parse_request(
      "{\"schema\":2,\"id\":\"j\",\"circuit\":\"c17\",\"islands\":3,"
      "\"topology\":\"full\",\"migration_interval\":200,"
      "\"migration_size\":1}");
  EXPECT_EQ(r.islands, 3u);
  EXPECT_EQ(r.topology, Topology::kFull);
  EXPECT_EQ(r.migration_interval, 200u);
  EXPECT_EQ(r.migration_size, 1u);
}

TEST(RequestSchema, IslandValidationErrors) {
  expect_request_error("{\"schema\":2,\"id\":\"j\",\"circuit\":\"c17\","
                       "\"algorithm\":\"anneal\",\"islands\":4}",
                       "islands");
  expect_request_error("{\"schema\":2,\"id\":\"j\",\"circuit\":\"c17\","
                       "\"migration_interval\":100}",
                       "migration_interval");
  expect_request_error("{\"schema\":2,\"id\":\"j\",\"circuit\":\"c17\","
                       "\"topology\":\"pentagram\",\"islands\":2}",
                       "topology");
}

TEST(RequestSchema, OptimizerOptionsCarryIslandSettings) {
  SynthesisRequest r;
  r.id = "j";
  r.circuit = "c17";
  r.islands = 3;
  r.topology = Topology::kFull;
  r.migration_interval = 250;
  r.migration_size = 2;
  const OptimizerOptions o = optimizer_options_for(r);
  EXPECT_EQ(o.island.islands, 3u);
  EXPECT_EQ(o.island.topology, Topology::kFull);
  EXPECT_EQ(o.island.migration_interval, 250u);
  EXPECT_EQ(o.island.migration_size, 2u);
}

// ---------- executor expansion ----------

TEST(Request, OptimizerOptionsUseDefaultsForZeroFields) {
  SynthesisRequest r;
  r.id = "j";
  r.circuit = "c17";
  RequestDefaults d;
  d.generations = 777;
  d.seed = 9;
  d.threads = 2;
  const OptimizerOptions o = optimizer_options_for(r, d);
  EXPECT_EQ(o.algorithm, Algorithm::kEvolve);
  EXPECT_EQ(o.evolve.generations, 777u);
  EXPECT_EQ(o.evolve.seed, 9u);
  EXPECT_EQ(o.evolve.threads, 2u);
}

TEST(Request, OptimizerOptionsRequestOverridesWin) {
  SynthesisRequest r;
  r.id = "j";
  r.circuit = "c17";
  r.algorithm = Algorithm::kMultistart;
  r.generations = 100;
  r.seed = 5;
  r.lambda = 8;
  r.threads = 4;
  r.restarts = 6;
  r.deadline_seconds = 1.5;
  r.max_generations = 90;
  r.max_evaluations = 400;
  const OptimizerOptions o = optimizer_options_for(r);
  EXPECT_EQ(o.algorithm, Algorithm::kMultistart);
  EXPECT_EQ(o.evolve.generations, 100u);
  EXPECT_EQ(o.evolve.seed, 5u);
  EXPECT_EQ(o.evolve.lambda, 8u);
  EXPECT_EQ(o.evolve.threads, 4u);
  EXPECT_EQ(o.restarts, 6u);
  EXPECT_DOUBLE_EQ(o.limits.deadline_seconds, 1.5);
  EXPECT_EQ(o.limits.max_generations, 90u);
  EXPECT_EQ(o.limits.max_evaluations, 400u);
}

// ---------- response JSON round trip ----------

TEST(Response, SuccessRoundTrips) {
  SynthesisResponse r;
  r.id = "j1";
  r.ok = true;
  r.verified = true;
  r.cached = true;
  r.stop_reason = "completed";
  r.cost.n_r = 3;
  r.cost.jjs = 72;
  r.seconds = 0.25;
  r.netlist = ".rqfp 1\n.pis 1 a\n.pos 1\npo 1 y\n.end\n";
  EXPECT_EQ(parse_response(to_json(r)), r);
}

TEST(Response, FailureRoundTrips) {
  SynthesisResponse r;
  r.id = "bad";
  r.ok = false;
  r.error = "result failed verification";
  r.stop_reason = "error";
  EXPECT_EQ(parse_response(to_json(r)), r);
}

TEST(Response, ParseRejectsGarbageWithContext) {
  try {
    parse_response("{\"nope\":1}", "sock", 7);
    FAIL() << "expected io::ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("response:sock:7:"),
              std::string::npos)
        << e.what();
  }
}

// ---------- optimizer configuration round trip ----------

TEST(OptionsJson, RunLimitsRoundTrip) {
  RunLimits l;
  l.deadline_seconds = 3.5;
  l.max_generations = 1000;
  l.max_evaluations = 5000;
  l.checkpoint_path = "run.ckpt";
  l.checkpoint_interval = 250;
  const RunLimits back = parse_run_limits(to_json(l));
  EXPECT_DOUBLE_EQ(back.deadline_seconds, l.deadline_seconds);
  EXPECT_EQ(back.max_generations, l.max_generations);
  EXPECT_EQ(back.max_evaluations, l.max_evaluations);
  EXPECT_EQ(back.checkpoint_path, l.checkpoint_path);
  EXPECT_EQ(back.checkpoint_interval, l.checkpoint_interval);
  EXPECT_EQ(back.stop, nullptr); // runtime wiring is not serialized
}

TEST(OptionsJson, OptimizerOptionsRoundTrip) {
  OptimizerOptions o;
  o.algorithm = Algorithm::kAnneal;
  o.evolve.generations = 4321;
  o.evolve.lambda = 6;
  o.evolve.seed = 17;
  o.restarts = 9;
  o.limits.deadline_seconds = 2.0;
  const OptimizerOptions back = parse_optimizer_options(to_json(o));
  EXPECT_EQ(back.algorithm, o.algorithm);
  EXPECT_EQ(back.evolve.generations, o.evolve.generations);
  EXPECT_EQ(back.evolve.lambda, o.evolve.lambda);
  EXPECT_EQ(back.evolve.seed, o.evolve.seed);
  EXPECT_EQ(back.restarts, o.restarts);
  EXPECT_DOUBLE_EQ(back.limits.deadline_seconds, o.limits.deadline_seconds);
}

} // namespace
} // namespace rcgp::core
