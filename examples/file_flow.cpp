// File-based flow: read a circuit from any supported format (Verilog,
// BLIF, ASCII AIGER, PLA, or RevLib .real), synthesize an RQFP circuit,
// and write .rqfp plus Graphviz DOT next to it.
//
// Usage:  file_flow [input-file [generations]]
// With no arguments, a built-in BLIF majority-voter demo is used.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "aig/aig_simulate.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "io/aiger.hpp"
#include "io/blif.hpp"
#include "io/pla.hpp"
#include "io/real.hpp"
#include "io/rqfp_writer.hpp"
#include "io/verilog.hpp"

namespace {

const char* kDemoBlif = R"(
.model voter5
.inputs a b c d e
.outputs maj
.names a b c d e maj
111-- 1
11-1- 1
11--1 1
1-11- 1
1-1-1 1
1--11 1
-111- 1
-11-1 1
-1-11 1
--111 1
.end
)";

rcgp::aig::Aig load(const std::string& path) {
  using namespace rcgp;
  const auto dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".v") {
    return io::parse_verilog_file(path);
  }
  if (ext == ".blif") {
    return io::parse_blif_file(path);
  }
  if (ext == ".aag") {
    return io::parse_aiger_file(path);
  }
  if (ext == ".pla") {
    const auto pla = io::parse_pla_file(path);
    return core::aig_from_tables(pla.tables, pla.output_names);
  }
  if (ext == ".real") {
    const auto circuit = io::parse_real_file(path);
    return core::aig_from_tables(circuit.to_tables());
  }
  throw std::runtime_error("unsupported input extension: " + ext);
}

} // namespace

int main(int argc, char** argv) {
  using namespace rcgp;
  try {
    aig::Aig net;
    std::string stem = "voter5_demo";
    if (argc > 1) {
      net = load(argv[1]);
      stem = argv[1];
      const auto dot = stem.rfind('.');
      if (dot != std::string::npos) {
        stem.resize(dot);
      }
    } else {
      std::printf("no input given; using the built-in 5-input voter demo\n");
      net = io::parse_blif_string(kDemoBlif);
    }

    core::FlowOptions opt;
    opt.evolve.generations =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 30000;
    const auto flow = core::synthesize(net, opt);

    const auto spec = aig::simulate(net);
    std::printf("init: %s\n", flow.initial_cost.to_string().c_str());
    std::printf("rcgp: %s (%.2fs, equivalent: %s)\n",
                flow.optimized_cost.to_string().c_str(), flow.seconds_total,
                cec::sim_check(flow.optimized, spec).all_match ? "yes"
                                                               : "NO");

    const std::string rqfp_path = stem + ".rqfp";
    io::write_rqfp_file(flow.optimized, rqfp_path);
    std::printf("wrote %s\n", rqfp_path.c_str());
    std::printf("DOT preview:\n%s",
                io::write_dot_string(flow.optimized).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
