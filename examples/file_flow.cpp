// File-based flow: read a circuit from any supported format (Verilog,
// BLIF, ASCII AIGER, PLA, or RevLib .real), synthesize an RQFP circuit,
// and write .rqfp plus Graphviz DOT next to it.
//
// Usage:  file_flow [input-file [generations]]
// With no arguments, a built-in BLIF majority-voter demo is used.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "aig/aig_simulate.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "io/blif.hpp"
#include "io/io.hpp"
#include "io/rqfp_writer.hpp"

namespace {

const char* kDemoBlif = R"(
.model voter5
.inputs a b c d e
.outputs maj
.names a b c d e maj
111-- 1
11-1- 1
11--1 1
1-11- 1
1-1-1 1
1--11 1
-111- 1
-11-1 1
-1-11 1
--111 1
.end
)";

rcgp::aig::Aig load(const std::string& path) {
  using namespace rcgp;
  // The io facade detects the format from the extension (or the file's
  // leading bytes for unknown extensions) and parses accordingly.
  const io::Network net = io::read_network(path);
  if (net.aig) {
    return *net.aig;
  }
  return core::aig_from_tables(net.to_tables(), net.po_names);
}

} // namespace

int main(int argc, char** argv) {
  using namespace rcgp;
  try {
    aig::Aig net;
    std::string stem = "voter5_demo";
    if (argc > 1) {
      net = load(argv[1]);
      stem = argv[1];
      const auto dot = stem.rfind('.');
      if (dot != std::string::npos) {
        stem.resize(dot);
      }
    } else {
      std::printf("no input given; using the built-in 5-input voter demo\n");
      net = io::parse_blif_string(kDemoBlif);
    }

    core::FlowOptions opt;
    opt.evolve.generations =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 30000;
    const auto flow = core::synthesize(net, opt);

    const auto spec = aig::simulate(net);
    std::printf("init: %s\n", flow.initial_cost.to_string().c_str());
    std::printf("rcgp: %s (%.2fs, equivalent: %s)\n",
                flow.optimized_cost.to_string().c_str(), flow.seconds_total,
                cec::sim_check(flow.optimized, spec).all_match ? "yes"
                                                               : "NO");

    const std::string rqfp_path = stem + ".rqfp";
    io::write_network(flow.optimized, rqfp_path);
    std::printf("wrote %s\n", rqfp_path.c_str());
    std::printf("DOT preview:\n%s",
                io::write_dot_string(flow.optimized).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
