// Walkthrough of the paper's Fig. 3 on the 2-to-4 decoder: CGP encoding,
// point mutation, shrink, and RQFP buffer insertion — printed step by step.

#include <cstdio>

#include "benchmarks/benchmarks.hpp"
#include "cec/sim_cec.hpp"
#include "core/chromosome.hpp"
#include "core/flow.hpp"
#include "core/optimizer.hpp"
#include "core/mutation.hpp"
#include "core/shrink.hpp"
#include "rqfp/buffer.hpp"
#include "rqfp/cost.hpp"
#include "util/rng.hpp"

int main() {
  using namespace rcgp;
  const auto bench = benchmarks::get("decoder_2_4");

  std::printf("== Fig. 3 walkthrough: decoder_2_4 ==\n");
  std::printf("ports: 0 = constant 1, 1..%u = primary inputs, then 3 per "
              "gate\n\n", bench.num_pis);

  // (a) An initial individual: the conversion + splitter-insertion result.
  core::FlowOptions opt;
  opt.run_cgp = false;
  const auto flow = core::synthesize(bench.spec, opt);
  rqfp::Netlist individual = flow.initial;
  std::printf("(a) initial individual — %u gates, %u genes\n",
              individual.num_gates(), core::num_genes(individual));
  std::printf("    %s\n", core::to_genotype_string(individual).c_str());
  std::printf("    cost: %s\n\n",
              rqfp::cost_of(individual).to_string().c_str());

  // (b) Point mutation with the fan-out-preserving swap rule.
  util::Rng rng(3);
  core::MutationParams mp;
  mp.mu = 0.3;
  auto mutated = individual;
  const auto stats = core::mutate(mutated, rng, mp);
  std::printf("(b) after point mutation — %u genes changed "
              "(%u swaps, %u direct, %u inverter flips, %u PO moves)\n",
              stats.genes_changed, stats.swaps, stats.direct_assigns,
              stats.config_flips, stats.po_moves);
  std::printf("    %s\n", core::to_genotype_string(mutated).c_str());
  std::printf("    single fan-out still holds: %s\n\n",
              mutated.validate().empty() ? "yes" : "NO");

  // (c) Shrink: useless gates leave the chromosome.
  const auto shrunk = core::shrink(mutated);
  std::printf("(c) after shrink — %u gates remain, chromosome %u -> %u\n",
              shrunk.num_gates(), core::num_genes(mutated),
              core::num_genes(shrunk));

  // Run the real optimization to a compact individual through the
  // unified Optimizer facade (threads = 0 uses all cores; the result is
  // bit-identical for any thread count).
  core::OptimizerOptions oo;
  oo.evolve.generations = 60000;
  oo.evolve.seed = 42;
  const auto evolved = core::Optimizer(oo).run(individual, bench.spec).evolve;
  std::printf("\n    ... evolving %llu generations ...\n",
              static_cast<unsigned long long>(evolved.generations_run));
  std::printf("    best: %s\n",
              core::to_genotype_string(evolved.best).c_str());
  std::printf("    cost: %s\n",
              rqfp::cost_of(evolved.best).to_string().c_str());
  std::printf("    equivalent: %s\n\n",
              cec::sim_check(evolved.best, bench.spec).all_match ? "yes"
                                                                 : "NO");

  // (d) RQFP buffer insertion for path balancing.
  const auto plan = rqfp::plan_buffers(evolved.best);
  std::printf("(d) buffer insertion — %u buffers, %u clock stages\n",
              plan.total, plan.depth);
  for (std::uint32_t g = 0; g < evolved.best.num_gates(); ++g) {
    for (unsigned i = 0; i < 3; ++i) {
      if (plan.gate_edges[g][i] > 0) {
        std::printf("    %u buffer(s) on gate %u input %u\n",
                    plan.gate_edges[g][i], g, i);
      }
    }
  }
  for (std::uint32_t o = 0; o < evolved.best.num_pos(); ++o) {
    if (plan.po_edges[o] > 0) {
      std::printf("    %u buffer(s) aligning PO %u\n", plan.po_edges[o], o);
    }
  }
  return 0;
}
