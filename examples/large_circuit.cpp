// Windowed optimization of a large RQFP netlist (hwb8, the biggest
// Table 2 circuit class): the whole-circuit CGP loop needs exhaustive
// global simulation per offspring, while windowing optimizes bounded
// sub-cones against their exact local functions — the scalability route
// the paper points to for real-world instances (§2.2).

#include <cstdio>

#include "benchmarks/benchmarks.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "core/optimizer.hpp"
#include "rqfp/cost.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace rcgp;

  const auto bench = benchmarks::get("hwb8");
  std::printf("== hwb8: windowed CGP on a large netlist ==\n");

  core::FlowOptions opt;
  opt.run_cgp = false; // initialization baseline only
  const auto flow = core::synthesize(bench.spec, opt);
  std::printf("initialization: %s\n",
              flow.initial_cost.to_string().c_str());

  core::OptimizerOptions oo;
  oo.algorithm = core::Algorithm::kWindow;
  oo.window.window_gates = 16;
  oo.window.max_window_inputs = 9;
  oo.window.passes = 2;
  oo.evolve.generations = 2500;
  oo.evolve.seed = 11;

  util::Stopwatch watch;
  const auto result = core::Optimizer(oo).run(flow.initial, bench.spec);
  const auto& optimized = result.best;
  const auto& stats = result.window;
  std::printf("windowed:       %s  (%.1fs)\n",
              rqfp::cost_of(optimized).to_string().c_str(),
              watch.seconds());
  std::printf("windows: %u tried, %u improved, %u skipped\n",
              stats.windows_tried, stats.windows_improved,
              stats.windows_skipped);

  const auto check = cec::sim_check(optimized, bench.spec);
  std::printf("equivalent: %s\n", check.all_match ? "yes" : "NO");
  std::printf("(each window was optimized against its exact local "
              "function — the global circuit is never simulated inside "
              "the loop)\n");
  return check.all_match ? 0 : 1;
}
