// Quickstart: synthesize an RQFP circuit for a 1-bit full adder.
//
// Demonstrates the minimal RCGP API surface: define a specification as
// truth tables, run the end-to-end flow (resyn2 -> MIG -> RQFP conversion
// -> splitter insertion -> CGP optimization), and inspect the result.
//
// Optional telemetry (see docs/OBSERVABILITY.md):
//   quickstart --trace-out=trace.jsonl --metrics-out=metrics.json

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "benchmarks/benchmarks.hpp"
#include "cec/sat_cec.hpp"
#include "core/chromosome.hpp"
#include "core/flow.hpp"
#include "io/rqfp_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rqfp/buffer.hpp"

int main(int argc, char** argv) {
  using namespace rcgp;

  // Optional telemetry outputs.
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_path = arg + 12;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_path = arg + 14;
    } else {
      std::fprintf(stderr,
                   "usage: quickstart [--trace-out=FILE.jsonl] "
                   "[--metrics-out=FILE.json]\n");
      return 2;
    }
  }
  std::unique_ptr<obs::TraceSink> trace;
  if (!trace_path.empty()) {
    trace = obs::TraceSink::open(trace_path);
    if (!trace) {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
      return 2;
    }
  }

  // 1. The specification: one truth table per output. The benchmark
  //    registry ships the paper's testcases; you can also build tables
  //    with tt::TruthTable directly.
  const auto spec = benchmarks::get("full_adder");
  std::printf("specification: %s (%u inputs, %u outputs)\n",
              spec.name.c_str(), spec.num_pis, spec.num_pos);

  // 2. Run the flow. All phases are configurable; 50k generations keeps
  //    this example under a few seconds.
  core::FlowOptions options;
  options.evolve.generations = 50000;
  options.evolve.lambda = 4;
  options.evolve.seed = 1;
  options.evolve.trace = trace.get(); // nullptr = tracing off
  const auto result = core::synthesize(spec.spec, options);

  // 3. Costs before and after CGP (the paper's Table 1 columns).
  std::printf("initialization: %s\n",
              result.initial_cost.to_string().c_str());
  std::printf("after RCGP:     %s\n",
              result.optimized_cost.to_string().c_str());
  std::printf("evolution: %llu generations, %llu improvements, %.2fs\n",
              static_cast<unsigned long long>(
                  result.evolution.generations_run),
              static_cast<unsigned long long>(result.evolution.improvements),
              result.evolution.seconds);

  // 4. Formal sign-off: SAT-based equivalence against the specification.
  const auto cec = cec::sat_check(result.optimized, spec.spec);
  std::printf("SAT equivalence: %s\n",
              cec.verdict == cec::CecVerdict::kEquivalent ? "PROVED"
                                                          : "FAILED");

  // 5. The chromosome in the paper's Fig. 3 notation, and the netlist in
  //    the portable .rqfp format.
  std::printf("\ngenotype: %s\n",
              core::to_genotype_string(result.optimized).c_str());
  std::printf("\n%s", io::write_rqfp_string(result.optimized).c_str());

  // 6. Where the path-balancing buffers go.
  const auto plan = rqfp::plan_buffers(result.optimized);
  std::printf("\nbuffers: %u total over %u clock stages\n", plan.total,
              plan.depth);

  // 7. Telemetry, if requested: the JSONL evolution trace was streamed
  //    during the run; the metrics registry snapshot goes out here.
  if (!metrics_path.empty()) {
    if (!obs::registry().write_json(metrics_path)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 2;
    }
    std::printf("\nwrote %s\n", metrics_path.c_str());
  }
  if (trace) {
    trace->flush();
    std::printf("wrote %s (%llu events)\n", trace_path.c_str(),
                static_cast<unsigned long long>(trace->lines_written()));
  }
  return cec.verdict == cec::CecVerdict::kEquivalent ? 0 : 1;
}
