// RTL-to-RQFP flow on a 2-bit ripple-carry adder written in Verilog,
// comparing the heuristic baseline, RCGP, and (on the 1-bit slice) the
// exact synthesis method — the paper's three contenders side by side.

#include <cstdio>

#include "aig/aig_simulate.hpp"
#include "benchmarks/benchmarks.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "exact/exact_rqfp.hpp"
#include "io/verilog.hpp"
#include "rqfp/cost.hpp"

int main() {
  using namespace rcgp;

  const std::string rtl = R"(
// 2-bit ripple-carry adder
module adder2 (a0, a1, b0, b1, cin, s0, s1, cout);
  input a0, a1, b0, b1, cin;
  output s0, s1, cout;
  wire c1;
  assign s0 = a0 ^ b0 ^ cin;
  assign c1 = (a0 & b0) | (a0 & cin) | (b0 & cin);
  assign s1 = a1 ^ b1 ^ c1;
  assign cout = (a1 & b1) | (a1 & c1) | (b1 & c1);
endmodule
)";

  std::printf("== adder2: Verilog RTL -> RQFP ==\n");
  const auto aig_net = io::parse_verilog_string(rtl);
  std::printf("parsed: %u PIs, %u POs\n", aig_net.num_pis(),
              aig_net.num_pos());

  core::FlowOptions opt;
  opt.evolve.generations = 80000;
  opt.evolve.seed = 7;
  const auto flow = core::synthesize(aig_net, opt);

  std::printf("baseline (init): %s\n",
              flow.initial_cost.to_string().c_str());
  std::printf("RCGP:            %s  (%.2fs)\n",
              flow.optimized_cost.to_string().c_str(), flow.seconds_total);
  const auto spec = aig::simulate(aig_net);
  std::printf("equivalent: %s\n\n",
              cec::sim_check(flow.optimized, spec).all_match ? "yes" : "NO");

  // Exact synthesis on the 1-bit slice (the full 2-bit adder is already
  // beyond what the exact method finishes in reasonable time — the
  // scalability wall the paper demonstrates).
  std::printf("== exact synthesis on the 1-bit full adder slice ==\n");
  const auto fa = benchmarks::get("full_adder");
  exact::ExactParams ep;
  ep.max_gates = 3;
  ep.time_limit_seconds = 60;
  const auto ex = exact::exact_synthesize(fa.spec, ep);
  if (ex.status == exact::ExactStatus::kSolved) {
    std::printf("exact optimum: %u gates, %u garbage (%.2fs)\n", ex.gates,
                ex.garbage, ex.seconds);
  } else {
    std::printf("exact synthesis timed out (status %d) after %.2fs\n",
                static_cast<int>(ex.status), ex.seconds);
  }

  core::FlowOptions fa_opt;
  fa_opt.evolve.generations = 60000;
  fa_opt.evolve.seed = 5;
  const auto fa_flow = core::synthesize(fa.spec, fa_opt);
  std::printf("RCGP on the slice: n_r=%u n_g=%u\n",
              fa_flow.optimized_cost.n_r, fa_flow.optimized_cost.n_g);
  return 0;
}
