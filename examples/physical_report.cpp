// Physical-level report: synthesize a circuit, expand it to AQFP cells
// (Fig. 1(a) of the paper: 3 splitters + 3 majorities per RQFP gate,
// 2 AQFP buffers per RQFP buffer), and report the cell census, clock
// phases, information-preservation analysis, and the Landauer energy
// picture that motivates reversible computing in the first place.

#include <cstdio>

#include "aqfp/aqfp.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flow.hpp"
#include "rqfp/cost.hpp"
#include "rqfp/energy.hpp"
#include "rqfp/reversibility.hpp"

int main() {
  using namespace rcgp;

  const auto bench = benchmarks::get("full_adder");
  core::FlowOptions opt;
  opt.evolve.generations = 40000;
  opt.evolve.seed = 3;
  const auto flow = core::synthesize(bench.spec, opt);
  const auto cost = flow.optimized_cost;
  std::printf("== %s after RCGP: %s ==\n\n", bench.name.c_str(),
              cost.to_string().c_str());

  // AQFP cell expansion.
  const auto cells = aqfp::expand(flow.optimized);
  std::printf("AQFP cell census:\n");
  std::printf("  splitters  %4u  (x2 JJ)\n",
              cells.count(aqfp::CellKind::kSplitter));
  std::printf("  majorities %4u  (x6 JJ)\n",
              cells.count(aqfp::CellKind::kMajority));
  std::printf("  buffers    %4u  (x2 JJ)\n",
              cells.count(aqfp::CellKind::kBuffer));
  std::printf("  total JJs  %4u  (formula 24*n_r + 4*n_b = %u)\n",
              cells.total_jjs(), 24 * cost.n_r + 4 * cost.n_b);
  std::printf("  clock half-phases: %u (I_x1/I_x2 per stage)\n",
              cells.max_phase());
  std::printf("  AQFP discipline: %s\n\n",
              cells.validate().empty() ? "satisfied" : "VIOLATED");

  // Reversibility of the boundary.
  const auto rev = rqfp::analyze_reversibility(flow.optimized);
  std::printf("information preservation:\n");
  std::printf("  boundary outputs (POs + garbage): %u\n",
              rev.boundary_outputs);
  std::printf("  distinct boundary images: %llu of %u inputs\n",
              static_cast<unsigned long long>(rev.image_size),
              1u << bench.num_pis);
  std::printf("  erased bits per computation: %.3f (%s)\n\n",
              rev.erased_bits,
              rev.information_preserving ? "logically reversible"
                                         : "information is lost");

  // Energy picture.
  const auto energy = rqfp::estimate_energy(flow.optimized, 4.2);
  std::printf("energy at %.1f K:\n", energy.temperature_kelvin);
  std::printf("  Landauer bound per bit: %.3e J\n", energy.landauer_per_bit);
  std::printf("  thermodynamic floor:    %.3e J per computation\n",
              energy.landauer_floor);
  std::printf("  adiabatic switching:    %.3e J (%u JJs at 1e-4 Ic*Phi0)\n",
              energy.switching_estimate, energy.jjs);

  // Gate-level reversibility census — why the normal RQFP configuration
  // matters.
  std::printf("\nbijective inverter configurations: %u of 512 "
              "(the normal gate of Fig. 1(a) is one of them: %s)\n",
              rqfp::count_bijective_configs(),
              rqfp::gate_is_bijective(rqfp::InvConfig::reversible())
                  ? "yes"
                  : "no");
  return 0;
}
