#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace rcgp::util {

/// Deterministic, fast pseudo-random generator (xoshiro256**).
///
/// Used everywhere randomness is needed (CGP mutation, random simulation
/// patterns) so that runs are reproducible given a seed. Satisfies the
/// UniformRandomBitGenerator requirements so it can also feed <random>
/// distributions when convenient.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialize the state from a single 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform01() < p; }

  /// Counter-based stream derivation: the returned engine's state is a
  /// pure function of (seed, a, b), so independent streams can be handed
  /// out by index without ever advancing a shared generator. The CGP loop
  /// derives offspring k of generation g from stream(seed, g, k), which is
  /// what makes λ-parallel evaluation bit-identical for any thread count
  /// (docs/PARALLELISM.md).
  static Rng stream(std::uint64_t seed, std::uint64_t a, std::uint64_t b);

  /// Engine state snapshot/restore for callers that want to suspend a
  /// stream mid-sequence. The CGP loop itself never persists engine state:
  /// checkpoints re-derive offspring streams from (seed, generation, k).
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) {
      state_[i] = s[i];
    }
  }

private:
  std::uint64_t state_[4]{};
};

} // namespace rcgp::util
