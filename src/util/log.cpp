#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace rcgp::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogHook> g_hook{nullptr};
} // namespace

const char* log_level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string iso8601_utc_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &secs);
#else
  gmtime_r(&secs, &tm_utc);
#endif
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(millis));
  return buf;
}

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_hook(LogHook hook) {
  g_hook.store(hook, std::memory_order_release);
}

void log(LogLevel level, const std::string& message) {
  const LogLevel threshold = log_level();
  if (level < threshold || threshold == LogLevel::kOff) {
    return;
  }
  const std::string ts = iso8601_utc_now();
  // One formatted write per message keeps concurrent log lines intact
  // (stdio guarantees the single fprintf is not interleaved).
  std::fprintf(stderr, "[%s rcgp %s] %s\n", ts.c_str(),
               log_level_tag(level), message.c_str());
  if (const LogHook hook = g_hook.load(std::memory_order_acquire)) {
    hook(level, ts.c_str(), message.c_str());
  }
}

} // namespace rcgp::util
