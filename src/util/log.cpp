#include "util/log.hpp"

#include <cstdio>

namespace rcgp::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
} // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log(LogLevel level, const std::string& message) {
  if (level < g_level || g_level == LogLevel::kOff) {
    return;
  }
  std::fprintf(stderr, "[rcgp %s] %s\n", tag(level), message.c_str());
}

} // namespace rcgp::util
