#pragma once

#include <string>

namespace rcgp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal leveled logger writing to stderr. Global threshold defaults to
/// kWarn so library code stays quiet unless a tool opts in.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

} // namespace rcgp::util
