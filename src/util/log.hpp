#pragma once

#include <string>

namespace rcgp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal leveled logger writing to stderr. Global threshold defaults to
/// kWarn so library code stays quiet unless a tool opts in. Thread-safe:
/// each message is emitted with a single fprintf and carries an ISO-8601
/// UTC timestamp and a level tag.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

/// Hook invoked (in addition to the stderr write) for every message that
/// passes the threshold — the attachment point for the obs trace sink
/// (obs::TraceSink::attach_to_log). At most one hook is active; nullptr
/// detaches.
using LogHook = void (*)(LogLevel level, const char* iso8601_utc,
                         const char* message);
void set_log_hook(LogHook hook);

/// Current UTC wall-clock time as "YYYY-MM-DDThh:mm:ss.mmmZ".
std::string iso8601_utc_now();

const char* log_level_tag(LogLevel level);

} // namespace rcgp::util
