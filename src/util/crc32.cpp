#include "util/crc32.hpp"

#include <array>

namespace rcgp::util {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[n] = c;
  }
  return table;
}

} // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

} // namespace rcgp::util
