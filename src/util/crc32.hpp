#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rcgp::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
/// guarding checkpoint files against torn writes and bit rot. Streamable:
/// feed chunks through successive calls, passing the previous result as
/// `seed`.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

inline std::uint32_t crc32(std::string_view text, std::uint32_t seed = 0) {
  return crc32(text.data(), text.size(), seed);
}

} // namespace rcgp::util
