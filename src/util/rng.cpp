#include "util/rng.hpp"

namespace rcgp::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

} // namespace

Rng Rng::stream(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  // Absorb the two stream counters into the seed through full splitmix64
  // rounds (not a plain xor), so (seed, a, b) and (seed', a', b') triples
  // with equal xors still land in unrelated streams.
  std::uint64_t x = seed;
  x = splitmix64(x) ^ (a + 0x9E3779B97F4A7C15ULL);
  x = splitmix64(x) ^ (b + 0xBF58476D1CE4E5B9ULL);
  Rng r;
  r.reseed(splitmix64(x));
  return r;
}

void Rng::reseed(std::uint64_t seed) {
  // xoshiro must not be seeded with an all-zero state; splitmix64 output
  // over distinct counters cannot be all zero for all four words.
  for (auto& s : state_) {
    s = splitmix64(seed);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exactness.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace rcgp::util
