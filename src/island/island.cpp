#include "island/island.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/request.hpp"
#include "core/shrink.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::island {

namespace {

using robust::StopReason;

/// Static per-island run configuration. Island i evolves under seed
/// `base_seed + i`; with Topology::kNone the fleet splits the generation
/// budget (base + remainder, exactly like the retired multistart), with
/// every other topology each island runs the full budget. `cap` folds in
/// the caller's RunBudget::max_generations ceiling.
struct IslandPlan {
  std::uint64_t seed = 0;
  std::uint64_t total = 0;
  std::uint64_t cap = 0;
};

/// Deterministic "this island can make no further progress" predicate,
/// computed from the checkpoint state alone so a resumed fleet classifies
/// its islands exactly as the uninterrupted run did. The order mirrors the
/// evolve loop's exit order; stagnation must come first because evolve
/// checks it at the loop bottom — re-running a stagnated state would
/// execute one extra generation, the only non-idempotent exit.
std::optional<StopReason> settled_reason(const robust::EvolveCheckpoint& st,
                                         const IslandPlan& plan,
                                         const core::EvolveParams& params,
                                         double time_limit) {
  if (params.stagnation_limit != 0 &&
      st.since_improvement >= params.stagnation_limit) {
    return StopReason::kStagnation;
  }
  if (st.generation >= plan.total) return StopReason::kCompleted;
  if (plan.cap < plan.total && st.generation >= plan.cap) {
    return StopReason::kGenerationBudget;
  }
  if (params.budget.max_evaluations != 0 &&
      st.evaluations + params.lambda > params.budget.max_evaluations) {
    return StopReason::kEvaluationBudget;
  }
  if (time_limit > 0.0 && st.elapsed_seconds > time_limit) {
    return StopReason::kTimeLimit;
  }
  return std::nullopt;
}

/// Fleet manifest (fleet.json) contents we read back on resume.
struct ManifestData {
  std::uint64_t seed = 0;
  unsigned lambda = 0;
  double mu = 0.0;
  std::uint64_t generations = 0;
  unsigned islands = 0;
  std::string topology;
  std::uint64_t migration_interval = 0;
  unsigned migration_size = 0;
  std::uint64_t epoch = 0;
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::vector<unsigned> pending;
  std::vector<std::uint64_t> immigrants;
};

ManifestData load_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("island: cannot read fleet manifest " + path);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::optional<obs::json::Value> v = obs::json::parse(ss.str());
  if (!v || !v->is_object()) {
    throw std::runtime_error("island: malformed fleet manifest " + path);
  }
  ManifestData m;
  m.seed = static_cast<std::uint64_t>(v->number_or("seed", 0));
  m.lambda = static_cast<unsigned>(v->number_or("lambda", 0));
  m.mu = v->number_or("mu", 0.0);
  m.generations = static_cast<std::uint64_t>(v->number_or("generations", 0));
  m.islands = static_cast<unsigned>(v->number_or("islands", 0));
  m.topology = v->string_or("topology", "");
  m.migration_interval =
      static_cast<std::uint64_t>(v->number_or("migration_interval", 0));
  m.migration_size = static_cast<unsigned>(v->number_or("migration_size", 0));
  m.epoch = static_cast<std::uint64_t>(v->number_or("epoch", 0));
  m.offered = static_cast<std::uint64_t>(v->number_or("migrations_offered", 0));
  m.accepted =
      static_cast<std::uint64_t>(v->number_or("migrations_accepted", 0));
  m.rejected =
      static_cast<std::uint64_t>(v->number_or("migrations_rejected", 0));
  if (const obs::json::Value* p = v->find("pending"); p && p->is_array()) {
    for (const obs::json::Value& it : p->items()) {
      m.pending.push_back(static_cast<unsigned>(it.as_number()));
    }
  }
  if (const obs::json::Value* arr = v->find("islands_state");
      arr && arr->is_array()) {
    for (const obs::json::Value& it : arr->items()) {
      m.immigrants.push_back(
          static_cast<std::uint64_t>(it.number_or("immigrants", 0)));
    }
  }
  return m;
}

void write_text_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << text << '\n';
    out.flush();
    if (!out.good()) {
      throw std::runtime_error("island: cannot write " + tmp);
    }
  }
  std::filesystem::rename(tmp, path);
}

obs::Counter& island_immigrant_counter(unsigned island) {
  return obs::registry().counter("island.island" + std::to_string(island) +
                                 ".immigrants");
}

obs::Gauge& island_best_gauge(unsigned island) {
  return obs::registry().gauge("island.island" + std::to_string(island) +
                               ".best_n_r");
}

} // namespace

std::vector<unsigned> donors_for(core::Topology topology, unsigned island,
                                 unsigned islands) {
  std::vector<unsigned> donors;
  if (islands < 2) return donors;
  switch (topology) {
    case core::Topology::kNone:
      break;
    case core::Topology::kRing:
      donors.push_back((island + islands - 1) % islands);
      break;
    case core::Topology::kStar:
      if (island == 0) {
        for (unsigned j = 1; j < islands; ++j) donors.push_back(j);
      } else {
        donors.push_back(0);
      }
      break;
    case core::Topology::kFull:
      for (unsigned j = 0; j < islands; ++j) {
        if (j != island) donors.push_back(j);
      }
      break;
  }
  return donors;
}

std::string island_state_path(const std::string& state_dir, unsigned island) {
  return state_dir + "/island-" + std::to_string(island) + ".ckpt";
}

std::string fleet_manifest_path(const std::string& state_dir) {
  return state_dir + "/fleet.json";
}

SliceResult LocalSliceExecutor::run(const Slice& slice,
                                    std::span<const tt::TruthTable> spec,
                                    const core::EvolveParams& params,
                                    const robust::EvolveCheckpoint& state) {
  (void)slice; // params.checkpoint_path already names the state file
  core::EvolveResult r = core::detail::evolve_continue_impl(state, spec,
                                                            params);
  SliceResult out;
  out.stop_reason = r.stop_reason;
  out.state.seed = params.seed;
  out.state.lambda = params.lambda;
  out.state.mu = params.mutation.mu;
  out.state.generations_total = params.generations;
  out.state.generation = r.generations_run;
  out.state.evaluations = r.evaluations;
  out.state.improvements = r.improvements;
  out.state.sat_confirmations = r.sat_confirmations;
  out.state.sat_cec_conflicts = r.sat_cec_conflicts;
  out.state.since_improvement = r.since_improvement;
  out.state.last_improvement_gen = r.last_improvement_gen;
  out.state.elapsed_seconds = r.seconds;
  out.state.fitness = r.best_fitness;
  out.state.mutations_attempted = r.mutations_attempted;
  out.state.mutations_accepted = r.mutations_accepted;
  out.state.parent = std::move(r.best);
  return out;
}

RemoteSliceExecutor::RemoteSliceExecutor(std::vector<std::string> endpoints)
    : endpoints_(std::move(endpoints)) {
  if (endpoints_.empty()) {
    throw std::invalid_argument(
        "island: remote executor needs at least one endpoint");
  }
}

SliceResult RemoteSliceExecutor::run(const Slice& slice,
                                     std::span<const tt::TruthTable> spec,
                                     const core::EvolveParams& params,
                                     const robust::EvolveCheckpoint& state) {
  if (slice.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "island: remote islands need a file-backed fleet (set state_dir)");
  }
  const core::EvolveParams defaults;
  if (params.mutation.mu != defaults.mutation.mu ||
      params.sat_verify_improvements || params.disable_shrink) {
    throw std::invalid_argument(
        "island: remote islands run with daemon-default evolve parameters; "
        "custom mutation/SAT/shrink settings are local-only");
  }
  if (spec.size() > core::kMaxRequestSpecOutputs ||
      (!spec.empty() && spec.front().num_vars() > core::kMaxRequestSpecVars)) {
    throw std::invalid_argument(
        "island: spec too wide for an inline serve request");
  }
  (void)state; // the coordinator saved it at slice.checkpoint_path already

  core::SynthesisRequest r;
  r.id = "island-" + std::to_string(slice.island);
  r.spec.assign(spec.begin(), spec.end());
  r.algorithm = core::Algorithm::kEvolve;
  r.generations = params.generations;
  r.seed = params.seed;
  r.lambda = params.lambda;
  r.threads = params.threads;
  r.max_generations = params.budget.max_generations;
  r.max_evaluations = params.budget.max_evaluations;
  r.stagnation_limit = params.stagnation_limit;
  r.deadline_seconds = params.time_limit_seconds > 0.0
                           ? params.time_limit_seconds
                           : params.budget.deadline_seconds;
  // A cache hit would skip the evolution slice entirely — forbid it.
  r.cache = core::CachePolicy::kOff;

  const std::string& address = endpoints_[slice.island % endpoints_.size()];
  // One connection per slice: Client is not thread-safe and slices of
  // different islands run concurrently.
  serve::Client client(address);
  const core::SynthesisResponse resp = client.submit(r);

  if (!resp.ok && resp.stop_reason != "stop-requested") {
    throw std::runtime_error("island: remote slice " + r.id + " failed at " +
                             address + ": " + resp.error);
  }
  SliceResult out;
  out.state = robust::load_checkpoint(slice.checkpoint_path);
  if (out.state.seed != params.seed || out.state.lambda != params.lambda ||
      out.state.generations_total != params.generations) {
    throw std::runtime_error("island: checkpoint " + slice.checkpoint_path +
                             " no longer matches " + r.id +
                             " after the slice at " + address);
  }
  out.stop_reason = robust::parse_stop_reason(resp.stop_reason);
  // Progress guard. Identity proves nothing — the coordinator wrote this
  // checkpoint itself, so a daemon that never opened it (started without
  // --checkpoint-dir, or pointing at the wrong directory) still reloads
  // bit-identical. A slice only launches on an unsettled state below its
  // boundary, so a daemon that really ran it must leave the state at the
  // slice boundary or a terminal stop, or report an interruption.
  const robust::EvolveCheckpoint& st = out.state;
  const bool interrupted = out.stop_reason == StopReason::kStopRequested ||
                           out.stop_reason == StopReason::kTimeLimit;
  const std::uint64_t boundary = params.budget.max_generations;
  const bool at_boundary = boundary != 0 && st.generation >= boundary;
  const bool terminal =
      st.generation >= st.generations_total ||
      (params.stagnation_limit != 0 &&
       st.since_improvement >= params.stagnation_limit) ||
      (params.budget.max_evaluations != 0 &&
       st.evaluations + params.lambda > params.budget.max_evaluations) ||
      (params.time_limit_seconds > 0.0 &&
       st.elapsed_seconds > params.time_limit_seconds);
  if (!interrupted && !at_boundary && !terminal) {
    throw std::runtime_error(
        "island: daemon at " + address + " did not advance " + r.id +
        " (is its --checkpoint-dir pointing at the fleet state_dir?)");
  }
  return out;
}

core::EvolveResult run_fleet(const rqfp::Netlist& initial,
                             std::span<const tt::TruthTable> spec,
                             const core::EvolveParams& params,
                             const FleetOptions& options) {
  if (options.islands == 0) {
    throw std::invalid_argument("island: islands must be >= 1");
  }
  if (options.resume && options.state_dir.empty()) {
    throw std::invalid_argument("island: resume requires a state_dir");
  }

  static obs::Counter& c_fleets = obs::registry().counter("island.fleets");
  static obs::Counter& c_epochs = obs::registry().counter("island.epochs");
  static obs::Counter& c_offered =
      obs::registry().counter("island.migrations.offered");
  static obs::Counter& c_accepted =
      obs::registry().counter("island.migrations.accepted");
  static obs::Counter& c_rejected =
      obs::registry().counter("island.migrations.rejected");
  static obs::Counter& c_evals =
      obs::registry().counter("evolve.evaluations");
  static obs::Gauge& g_islands = obs::registry().gauge("island.islands");

  util::Stopwatch watch;
  c_fleets.inc();
  g_islands.set(static_cast<double>(options.islands));

  const unsigned N = options.islands;
  const core::Topology topo = options.topology;
  const bool multistart = topo == core::Topology::kNone;
  const std::uint64_t interval = multistart ? 0 : options.migration_interval;
  const unsigned channel =
      options.migration_size == 0 ? 1 : options.migration_size;
  const bool files = !options.state_dir.empty();
  LocalSliceExecutor local;
  SliceExecutor* executor =
      options.executor != nullptr ? options.executor : &local;

  const std::uint64_t user_max = params.budget.max_generations;
  std::vector<IslandPlan> plan(N);
  const std::uint64_t base = params.generations / N;
  const std::uint64_t rem = params.generations % N;
  for (unsigned i = 0; i < N; ++i) {
    plan[i].seed = params.seed + i;
    plan[i].total =
        multistart ? base + (i < rem ? 1 : 0) : params.generations;
    plan[i].cap = user_max != 0 ? std::min(user_max, plan[i].total)
                                : plan[i].total;
  }
  // Multistart historically split the wall-clock limit across restarts.
  const double time_limit = (multistart && params.time_limit_seconds > 0.0)
                                ? params.time_limit_seconds / N
                                : params.time_limit_seconds;

  // Slice parameter template. Traces and improvement callbacks stay with
  // the coordinator: per-island improvement streams interleave
  // non-monotonically fleet-wide, so slices run silent and the coordinator
  // emits island_* events at epoch boundaries instead.
  core::EvolveParams sp = params;
  sp.trace = nullptr;
  sp.on_improvement = nullptr;
  sp.checkpoint_path.clear();
  sp.time_limit_seconds = time_limit;

  std::vector<std::optional<robust::EvolveCheckpoint>> state(N);
  std::vector<std::uint8_t> done(N, 0);
  std::vector<StopReason> reason(N, StopReason::kCompleted);
  std::uint64_t epoch = 0;
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::vector<std::uint64_t> immigrants(N, 0);

  const auto state_path = [&](unsigned i) {
    return files ? island_state_path(options.state_dir, i) : std::string();
  };

  const auto save_manifest = [&](const std::vector<unsigned>& pending) {
    if (!files) return;
    obs::json::Writer w;
    w.begin_object();
    w.field("schema", std::uint64_t{1});
    w.field("seed", params.seed);
    w.field("lambda", params.lambda);
    w.field("mu", params.mutation.mu);
    w.field("generations", params.generations);
    w.field("islands", N);
    w.field("topology", core::to_string(topo));
    w.field("migration_interval", interval);
    w.field("migration_size", channel);
    w.field("epoch", epoch);
    w.field("migrations_offered", offered);
    w.field("migrations_accepted", accepted);
    w.field("migrations_rejected", rejected);
    w.key("pending").begin_array();
    for (unsigned i : pending) w.value(i);
    w.end_array();
    w.key("islands_state").begin_array();
    for (unsigned i = 0; i < N; ++i) {
      w.begin_object();
      w.field("island", i);
      w.field("started", state[i].has_value());
      w.field("done", done[i] != 0);
      w.field("reason", std::string_view(robust::to_string(reason[i])));
      w.field("generation", state[i] ? state[i]->generation : 0);
      w.field("evaluations", state[i] ? state[i]->evaluations : 0);
      w.field("immigrants", immigrants[i]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    write_text_atomic(fleet_manifest_path(options.state_dir), w.str());
  };

  // --- On-disk state: resume continues a fleet, fresh wipes leftovers. ---
  if (files) {
    std::filesystem::create_directories(options.state_dir);
    const std::string manifest = fleet_manifest_path(options.state_dir);
    if (options.resume) {
      if (std::filesystem::exists(manifest)) {
        const ManifestData m = load_manifest(manifest);
        if (m.seed != params.seed || m.lambda != params.lambda ||
            m.mu != params.mutation.mu ||
            m.generations != params.generations || m.islands != N ||
            m.topology != core::to_string(topo) ||
            m.migration_interval != interval || m.migration_size != channel) {
          throw std::invalid_argument(
              "island: fleet manifest " + manifest +
              " was written under a different fleet configuration "
              "(seed/islands/topology/migration/generations/lambda/mu "
              "mismatch)");
        }
        epoch = m.epoch;
        offered = m.offered;
        accepted = m.accepted;
        rejected = m.rejected;
        for (unsigned i = 0; i < N && i < m.immigrants.size(); ++i) {
          immigrants[i] = m.immigrants[i];
        }
        // Finish the committed migration: `pending` renames are re-applied;
        // every other leftover .next is an uncommitted pre-computation from
        // a crash before the commit point — discard it so the exchange is
        // recomputed from the intact pre-migration states.
        for (unsigned i : m.pending) {
          const std::string next = state_path(i) + ".next";
          if (i < N && std::filesystem::exists(next)) {
            std::filesystem::rename(next, state_path(i));
          }
        }
      }
      std::error_code ec;
      for (unsigned i = 0; i < N; ++i) {
        std::filesystem::remove(state_path(i) + ".next", ec);
      }
      for (unsigned i = 0; i < N; ++i) {
        if (!std::filesystem::exists(state_path(i))) continue;
        robust::EvolveCheckpoint ck = robust::load_checkpoint(state_path(i));
        if (ck.seed != plan[i].seed || ck.lambda != params.lambda ||
            ck.mu != params.mutation.mu ||
            ck.generations_total != plan[i].total) {
          throw std::invalid_argument(
              "island: checkpoint " + state_path(i) +
              " was taken under a different fleet configuration");
        }
        state[i] = std::move(ck);
      }
    } else {
      // Fresh fleet: clear every island file a previous run left here
      // (including ones beyond this fleet's island count).
      std::vector<std::filesystem::path> stale;
      std::error_code ec;
      for (const auto& entry :
           std::filesystem::directory_iterator(options.state_dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name == "fleet.json" || name == "fleet.json.tmp" ||
            name.rfind("island-", 0) == 0) {
          stale.push_back(entry.path());
        }
      }
      for (const auto& p : stale) std::filesystem::remove(p, ec);
    }
  }

  // Classify islands whose restored state is already terminal.
  for (unsigned i = 0; i < N; ++i) {
    if (!state[i]) continue;
    if (const auto r = settled_reason(*state[i], plan[i], params, time_limit)) {
      done[i] = 1;
      reason[i] = *r;
    }
  }

  save_manifest({});

  if (params.trace != nullptr) {
    params.trace->event("island_fleet_start")
        .field("islands", N)
        .field("topology", core::to_string(topo))
        .field("migration_interval", interval)
        .field("migration_size", channel)
        .field("generations", params.generations)
        .field("seed", params.seed)
        .field("epoch", epoch)
        .field("resumed", options.resume);
  }

  // The synthetic generation-0 state: exactly what a fresh evolve run
  // computes before its first generation (shrunk parent, one counted
  // evaluation), so "continue this checkpoint" is the only slice operation
  // and a fresh island is indistinguishable from a resumed one — the key
  // to placement-independent bit-identity.
  const auto make_initial_state = [&](unsigned i) {
    robust::EvolveCheckpoint ck;
    ck.seed = plan[i].seed;
    ck.lambda = params.lambda;
    ck.mu = params.mutation.mu;
    ck.generations_total = plan[i].total;
    ck.parent = params.disable_shrink ? initial : core::shrink(initial);
    ck.fitness = core::evaluate(ck.parent, spec, params.fitness);
    ck.evaluations = 1;
    c_evals.inc();
    if (!ck.fitness.functionally_correct()) {
      throw std::invalid_argument(
          "evolve: initial netlist does not implement the specification");
    }
    return ck;
  };

  const auto boundary_for = [&](unsigned i) {
    return interval != 0 ? std::min((epoch + 1) * interval, plan[i].cap)
                         : plan[i].cap;
  };

  enum class SliceState : std::uint8_t { kActive, kDone, kInterrupted };
  struct SliceLog {
    bool ran = false;
    std::uint64_t from = 0;
    std::uint64_t to = 0;
    StopReason reason = StopReason::kCompleted;
  };

  const auto run_slice = [&](unsigned i, SliceLog& log) -> SliceState {
    if (!state[i]) {
      state[i] = make_initial_state(i);
      if (files) robust::save_checkpoint(*state[i], state_path(i));
    }
    if (const auto r =
            settled_reason(*state[i], plan[i], params, time_limit)) {
      done[i] = 1;
      reason[i] = *r;
      return SliceState::kDone;
    }
    const std::uint64_t b = boundary_for(i);
    if (state[i]->generation >= b) {
      // Mid-commit resume replay: the slice already reached this boundary.
      return SliceState::kActive;
    }
    core::EvolveParams p = sp;
    p.seed = plan[i].seed;
    p.generations = plan[i].total;
    p.budget.max_generations = b < plan[i].total ? b : user_max;
    p.checkpoint_path = state_path(i);
    Slice s;
    s.island = i;
    s.epoch = epoch;
    s.checkpoint_path = p.checkpoint_path;
    log.ran = true;
    log.from = state[i]->generation;
    SliceResult r = executor->run(s, spec, p, *state[i]);
    state[i] = std::move(r.state);
    log.to = state[i]->generation;
    log.reason = r.stop_reason;
    if (r.stop_reason == StopReason::kStopRequested) {
      return SliceState::kInterrupted;
    }
    if (r.stop_reason == StopReason::kTimeLimit &&
        !(time_limit > 0.0 && state[i]->elapsed_seconds > time_limit)) {
      // The fleet deadline tripped, not the island's own time limit:
      // resumable interruption, not a terminal island state.
      return SliceState::kInterrupted;
    }
    const auto s2 = settled_reason(*state[i], plan[i], params, time_limit);
    if (r.stop_reason == StopReason::kGenerationBudget &&
        state[i]->generation >= b && b < plan[i].cap && !s2) {
      return SliceState::kActive; // parked at the migration boundary
    }
    done[i] = 1;
    reason[i] =
        (r.stop_reason == StopReason::kGenerationBudget && s2) ? *s2
                                                               : r.stop_reason;
    return SliceState::kDone;
  };

  const auto trace_slice = [&](unsigned i, const SliceLog& log) {
    if (params.trace == nullptr || !log.ran) return;
    params.trace->event("island_slice")
        .field("island", i)
        .field("epoch", epoch)
        .field("from", log.from)
        .field("to", log.to)
        .field("reason", std::string_view(robust::to_string(log.reason)))
        .field("n_r", state[i]->fitness.n_r);
  };

  StopReason fleet_reason = StopReason::kCompleted;
  bool finished_all = false;

  if (multistart) {
    // Sequential, with the retired evolve_multistart's exact scheduling
    // semantics: stop check, then remaining-deadline check, then the run.
    for (unsigned i = 0; i < N; ++i) {
      if (done[i]) continue;
      if (params.budget.stop_requested()) {
        fleet_reason = StopReason::kStopRequested;
        break;
      }
      if (params.budget.deadline_seconds > 0.0) {
        const double remaining =
            params.budget.deadline_seconds - watch.seconds();
        if (remaining <= 0.0) {
          fleet_reason = StopReason::kTimeLimit;
          break;
        }
        sp.budget.deadline_seconds = remaining;
      }
      if (params.trace != nullptr) {
        // Legacy multistart observability contract: one `restart` event per
        // run, kept so traces of `algorithm=multistart` read as before.
        params.trace->event("restart")
            .field("index", static_cast<std::uint64_t>(i))
            .field("of", static_cast<std::uint64_t>(N))
            .field("seed", plan[i].seed)
            .field("generations", plan[i].total);
      }
      SliceLog log;
      const SliceState s = run_slice(i, log);
      trace_slice(i, log);
      if (s == SliceState::kInterrupted) {
        fleet_reason = log.reason == StopReason::kStopRequested
                           ? StopReason::kStopRequested
                           : StopReason::kTimeLimit;
        break;
      }
    }
    save_manifest({});
  } else {
    std::uint64_t epochs_this_call = 0;
    while (true) {
      std::vector<unsigned> active;
      for (unsigned i = 0; i < N; ++i) {
        if (!done[i]) active.push_back(i);
      }
      if (active.empty()) {
        finished_all = true;
        break;
      }
      if (params.budget.stop_requested()) {
        fleet_reason = StopReason::kStopRequested;
        break;
      }
      if (params.budget.deadline_seconds > 0.0 &&
          watch.seconds() >= params.budget.deadline_seconds) {
        fleet_reason = StopReason::kTimeLimit;
        break;
      }
      if (options.max_epochs != 0 && epochs_this_call >= options.max_epochs) {
        fleet_reason = StopReason::kGenerationBudget;
        break;
      }

      // Run this epoch's slices. Concurrency is a pure throughput knob:
      // slices touch disjoint islands and the exchange below happens only
      // after every slice joined.
      std::vector<SliceLog> logs(active.size());
      std::vector<SliceState> outcome(active.size(), SliceState::kActive);
      std::vector<std::exception_ptr> errors(active.size());
      {
        const unsigned par =
            options.parallelism != 0
                ? static_cast<unsigned>(std::min<std::size_t>(
                      options.parallelism, active.size()))
                : static_cast<unsigned>(active.size());
        std::atomic<std::size_t> next{0};
        const auto worker = [&] {
          for (std::size_t k = next.fetch_add(1); k < active.size();
               k = next.fetch_add(1)) {
            try {
              outcome[k] = run_slice(active[k], logs[k]);
            } catch (...) {
              errors[k] = std::current_exception();
            }
          }
        };
        if (par <= 1) {
          worker();
        } else {
          std::vector<std::thread> threads;
          threads.reserve(par);
          for (unsigned t = 0; t < par; ++t) threads.emplace_back(worker);
          for (std::thread& t : threads) t.join();
        }
      }
      for (std::size_t k = 0; k < active.size(); ++k) {
        if (errors[k]) {
          // Every island that finished its slice is already checkpointed
          // (file-backed fleets), so the fleet stays resumable after the
          // cause — e.g. a killed worker daemon — is fixed.
          std::rethrow_exception(errors[k]);
        }
      }
      for (std::size_t k = 0; k < active.size(); ++k) {
        trace_slice(active[k], logs[k]);
      }

      bool interrupted = false;
      bool stop_requested = false;
      for (std::size_t k = 0; k < active.size(); ++k) {
        if (outcome[k] == SliceState::kInterrupted) {
          interrupted = true;
          stop_requested |= logs[k].reason == StopReason::kStopRequested;
        }
      }
      if (interrupted) {
        fleet_reason = stop_requested ? StopReason::kStopRequested
                                      : StopReason::kTimeLimit;
        save_manifest({});
        break;
      }

      // Deterministic elite exchange at the epoch boundary, computed from
      // the pre-migration snapshot so adoption order cannot matter. Done
      // islands still donate; only active islands accept.
      struct Adoption {
        unsigned to = 0;
        unsigned from = 0;
      };
      std::vector<Adoption> adoptions;
      std::uint64_t offered_now = 0;
      if (interval != 0 && N > 1) {
        for (unsigned i = 0; i < N; ++i) {
          if (done[i] || !state[i]) continue;
          const std::vector<unsigned> donors = donors_for(topo, i, N);
          const std::size_t considered =
              std::min<std::size_t>(channel, donors.size());
          int best = -1;
          for (std::size_t d = 0; d < considered; ++d) {
            const unsigned j = donors[d];
            if (!state[j]) continue;
            const core::Fitness& against =
                best < 0 ? state[i]->fitness : state[best]->fitness;
            if (state[j]->fitness.strictly_better(against)) {
              best = static_cast<int>(j);
            }
          }
          offered += considered;
          offered_now += considered;
          c_offered.inc(considered);
          if (best >= 0) {
            adoptions.push_back({i, static_cast<unsigned>(best)});
            ++accepted;
            rejected += considered - 1;
            c_accepted.inc();
            c_rejected.inc(considered - 1);
          } else {
            rejected += considered;
            c_rejected.inc(considered);
          }
        }
      }

      // Apply adoptions: the immigrant elite replaces the parent and the
      // stagnation clock restarts. Two-phase commit for file-backed
      // fleets: .next states first, the manifest epoch bump is the commit
      // point, then the renames — a kill anywhere leaves a resumable,
      // bit-identical fleet.
      std::vector<robust::EvolveCheckpoint> next_states;
      next_states.reserve(adoptions.size());
      std::vector<unsigned> pending;
      pending.reserve(adoptions.size());
      for (const Adoption& a : adoptions) {
        robust::EvolveCheckpoint ns = *state[a.to];
        ns.parent = state[a.from]->parent;
        ns.fitness = state[a.from]->fitness;
        ns.since_improvement = 0;
        ns.last_improvement_gen = ns.generation;
        next_states.push_back(std::move(ns));
        pending.push_back(a.to);
      }
      if (files) {
        for (std::size_t k = 0; k < adoptions.size(); ++k) {
          robust::save_checkpoint(next_states[k],
                                  state_path(adoptions[k].to) + ".next");
        }
      }
      ++epoch;
      ++epochs_this_call;
      c_epochs.inc();
      save_manifest(pending); // commit point
      for (std::size_t k = 0; k < adoptions.size(); ++k) {
        const unsigned to = adoptions[k].to;
        state[to] = std::move(next_states[k]);
        ++immigrants[to];
        island_immigrant_counter(to).inc();
        if (files) {
          std::filesystem::rename(state_path(to) + ".next", state_path(to));
        }
        if (params.trace != nullptr) {
          params.trace->event("island_migration")
              .field("epoch", epoch)
              .field("to", to)
              .field("from", adoptions[k].from)
              .field("n_r", state[to]->fitness.n_r);
        }
      }
      if (files && !pending.empty()) {
        // Retire the committed pending list now that every rename landed.
        // Left in place it would sit in fleet.json through all of the next
        // epoch, and a kill after that epoch writes its .next files (but
        // before its commit) would make resume rename those *uncommitted*
        // states over any island both epochs adopted into.
        save_manifest({});
      }
      if (params.trace != nullptr) {
        params.trace->event("island_epoch")
            .field("epoch", epoch)
            .field("active", static_cast<std::uint64_t>(active.size()))
            .field("offered", offered_now)
            .field("accepted", static_cast<std::uint64_t>(adoptions.size()));
      }
    }

    if (finished_all) {
      // All islands ran to a terminal state: report their shared reason,
      // or kCompleted for a mixed fleet.
      fleet_reason = reason[0];
      for (unsigned i = 1; i < N; ++i) {
        if (reason[i] != fleet_reason) {
          fleet_reason = StopReason::kCompleted;
          break;
        }
      }
      save_manifest({});
    }
  }

  // --- Aggregate the islands into one EvolveResult. ---
  core::EvolveResult out;
  out.resumed = options.resume;
  int best = -1;
  for (unsigned i = 0; i < N; ++i) {
    if (!state[i]) continue;
    out.generations_run += state[i]->generation;
    out.evaluations += state[i]->evaluations;
    out.improvements += state[i]->improvements;
    out.sat_confirmations += state[i]->sat_confirmations;
    out.sat_cec_conflicts += state[i]->sat_cec_conflicts;
    out.mutations_attempted += state[i]->mutations_attempted;
    out.mutations_accepted += state[i]->mutations_accepted;
    island_best_gauge(i).set(state[i]->fitness.n_r);
    if (best < 0 || state[i]->fitness.strictly_better(state[best]->fitness)) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    // No island ran at all (deadline elapsed before the first one): fall
    // back to the unmodified input, exactly like the retired multistart.
    out.best = initial;
    out.best_fitness = core::evaluate(initial, spec, params.fitness);
    ++out.evaluations;
  } else {
    out.best = state[best]->parent;
    // Re-derives Fitness::objective, which checkpoints do not carry. The
    // evaluation is pure and deliberately uncounted: an uninterrupted
    // single run reports the same evaluation total.
    out.best_fitness = core::evaluate(out.best, spec, params.fitness);
    out.since_improvement = state[best]->since_improvement;
    out.last_improvement_gen = state[best]->last_improvement_gen;
  }
  out.seconds = watch.seconds();
  out.stop_reason = fleet_reason;

  if (params.trace != nullptr) {
    params.trace->event("island_fleet_end")
        .field("reason", std::string_view(robust::to_string(fleet_reason)))
        .field("epoch", epoch)
        .field("offered", offered)
        .field("accepted", accepted)
        .field("rejected", rejected)
        .field("best_island",
               best < 0 ? std::int64_t{-1} : std::int64_t{best})
        .field("n_r", out.best_fitness.n_r);
  }
  return out;
}

} // namespace rcgp::island
