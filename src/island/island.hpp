#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/evolve.hpp"
#include "core/optimizer.hpp"
#include "robust/checkpoint.hpp"
#include "robust/stop.hpp"
#include "rqfp/netlist.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::island {

/// Island-model evolution (docs/ISLANDS.md): N decorrelated (1+λ)
/// lineages — island i runs seed `base_seed + i` — advance in synchronous
/// epochs of `migration_interval` generations and exchange elites at the
/// epoch boundaries. The whole fleet state lives in per-island
/// robust::EvolveCheckpoint values, so a slice of island work is "continue
/// this checkpoint to the next boundary": the same unit of work whether it
/// runs on an in-process thread or on a remote `rcgp serve` daemon, which
/// is what makes results bit-identical for any worker placement given
/// (seed, topology, migration_interval).

/// One unit of island work handed to a SliceExecutor.
struct Slice {
  unsigned island = 0;
  std::uint64_t epoch = 0;
  /// Island state file ("" = in-memory fleet). When set, the executor must
  /// leave the post-slice state saved there (the local executor lets the
  /// evolve loop checkpoint into it; the remote executor shares it with
  /// the daemon through the daemon's --checkpoint-dir).
  std::string checkpoint_path;
};

struct SliceResult {
  robust::EvolveCheckpoint state;
  robust::StopReason stop_reason = robust::StopReason::kCompleted;
};

/// Where slices run. Implementations must behave exactly like
/// core::detail::evolve_continue_impl under the slice-specialized params
/// (seed, generations, budget.max_generations are pre-set; trace and
/// callbacks stripped): same trajectory, same counters. The returned state
/// is the run state at the slice's exit boundary.
class SliceExecutor {
public:
  virtual ~SliceExecutor() = default;
  virtual SliceResult run(const Slice& slice,
                          std::span<const tt::TruthTable> spec,
                          const core::EvolveParams& params,
                          const robust::EvolveCheckpoint& state) = 0;
};

/// Runs slices in-process (the default).
class LocalSliceExecutor : public SliceExecutor {
public:
  SliceResult run(const Slice& slice, std::span<const tt::TruthTable> spec,
                  const core::EvolveParams& params,
                  const robust::EvolveCheckpoint& state) override;
};

/// Farms slices out to `rcgp serve` daemons: island i talks to
/// `endpoints[i % endpoints.size()]` (a Unix socket path or a TCP
/// host:port — serve::Transport::for_address decides). Each slice becomes
/// one schema-2 SynthesisRequest with id "island-<i>" and cache=off; the
/// daemon resumes the island from its shared checkpoint file, so the
/// daemons must run with --checkpoint-dir pointing at the fleet's
/// state_dir (same filesystem as the coordinator). Requires the fleet to
/// be file-backed and the evolve params to stay at daemon defaults for
/// everything a request cannot carry (mutation rates, SAT confirmation,
/// fitness schedule) — violations throw std::invalid_argument.
class RemoteSliceExecutor : public SliceExecutor {
public:
  explicit RemoteSliceExecutor(std::vector<std::string> endpoints);
  SliceResult run(const Slice& slice, std::span<const tt::TruthTable> spec,
                  const core::EvolveParams& params,
                  const robust::EvolveCheckpoint& state) override;

private:
  std::vector<std::string> endpoints_;
};

struct FleetOptions {
  unsigned islands = 1;
  core::Topology topology = core::Topology::kRing;
  /// Epoch length in generations (0 = no migration: one epoch per island).
  std::uint64_t migration_interval = 0;
  /// Donor-channel capacity: each island pulls from the first
  /// `migration_size` donors of its topology donor order.
  unsigned migration_size = 1;
  /// Directory for island-<i>.ckpt files + fleet.json (empty = in-memory
  /// only; required for resume and for RemoteSliceExecutor).
  std::string state_dir;
  /// Continue an interrupted fleet from state_dir: islands restart from
  /// their last checkpoints (mid-slice ones included) and the run finishes
  /// bit-identical to one that was never killed.
  bool resume = false;
  /// Not owned; nullptr = LocalSliceExecutor.
  SliceExecutor* executor = nullptr;
  /// Concurrent slices per epoch (0 = one thread per island). Ignored for
  /// Topology::kNone, which runs islands sequentially to reproduce the
  /// historical multistart semantics exactly.
  unsigned parallelism = 0;
  /// Run at most this many epochs in this call (0 = until done). An early
  /// exit reports StopReason::kGenerationBudget and leaves the fleet
  /// resumable — the epoch-stepping hook used by tests and schedulers.
  std::uint64_t max_epochs = 0;
};

/// Donor islands of `island` under `topology` (deterministic, in fixed
/// donor order): ring = the left neighbor, star = every leaf for the hub
/// (island 0) and the hub for every leaf, full = everyone else ascending,
/// none = nobody.
std::vector<unsigned> donors_for(core::Topology topology, unsigned island,
                                 unsigned islands);

/// Paths of the fleet's on-disk state inside `state_dir`.
std::string island_state_path(const std::string& state_dir, unsigned island);
std::string fleet_manifest_path(const std::string& state_dir);

/// Runs an island fleet to completion (or interruption) and aggregates the
/// islands into one EvolveResult: best netlist by index-order
/// strictly-better scan, counters summed across islands. With
/// Topology::kNone the generation budget is split across islands
/// (base + remainder) and the run reproduces the retired
/// evolve_multistart bit-identically; with any other topology every
/// island runs the full `params.generations` budget.
core::EvolveResult run_fleet(const rqfp::Netlist& initial,
                             std::span<const tt::TruthTable> spec,
                             const core::EvolveParams& params,
                             const FleetOptions& options);

} // namespace rcgp::island
