#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rqfp/netlist.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::exact {

struct ExactParams {
  /// Largest gate count to try before giving up.
  std::uint32_t max_gates = 6;
  /// Conflict budget per (gates, garbage) SAT call (0 = unlimited).
  std::uint64_t conflicts_per_call = 2000000;
  /// Wall-clock budget for the whole search in seconds (0 = unlimited).
  double time_limit_seconds = 0.0;
  /// Also minimize garbage outputs once the gate count is optimal (the
  /// method of paper [15] optimizes both).
  bool minimize_garbage = true;
};

enum class ExactStatus {
  kSolved,    // optimal netlist found (within the budget per step)
  kTimeout,   // budget exhausted before finding any realization
  kUnsat      // no realization within max_gates
};

struct ExactResult {
  ExactStatus status = ExactStatus::kTimeout;
  std::optional<rqfp::Netlist> netlist;
  std::uint32_t gates = 0;
  std::uint32_t garbage = 0;
  double seconds = 0.0;
  std::uint64_t sat_calls = 0;
};

/// SAT-based exact synthesis of an RQFP netlist implementing `spec` (one
/// table per output), standing in for the Z3-based exact method of
/// [15] that the paper uses as its second baseline. Searches gate counts
/// r = 0,1,2,... and, at the first feasible r, garbage bounds
/// g = g_lb, g_lb+1, ... — mirroring the lexicographic (gates, garbage)
/// objective. Exponential in circuit size by nature: expected to solve the
/// tiny Table 1 circuits and time out on everything larger, which is
/// exactly the behaviour the paper reports.
ExactResult exact_synthesize(std::span<const tt::TruthTable> spec,
                             const ExactParams& params = {});

/// Single feasibility query: is there an RQFP netlist with exactly
/// `num_gates` gates and at most `max_garbage` garbage outputs (when
/// bounded) implementing `spec`?
ExactResult exact_try(std::span<const tt::TruthTable> spec,
                      std::uint32_t num_gates,
                      std::optional<std::uint32_t> max_garbage,
                      const ExactParams& params = {});

} // namespace rcgp::exact
