#include "exact/exact_rqfp.hpp"

#include <stdexcept>

#include "cec/sim_cec.hpp"
#include "sat/cnf.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::exact {

namespace {

using sat::Lit;

/// One (gates, garbage) feasibility encoding.
class Encoding {
public:
  Encoding(std::span<const tt::TruthTable> spec, std::uint32_t num_gates)
      : spec_(spec),
        num_pis_(spec.empty() ? 0 : spec[0].num_vars()),
        num_gates_(num_gates),
        solver_(),
        builder_(solver_) {
    build();
  }

  /// Number of selectable ports before gate i: constant + PIs + 3 per gate.
  std::uint32_t ports_before(std::uint32_t i) const {
    return 1 + num_pis_ + 3 * i;
  }
  std::uint32_t total_ports() const { return ports_before(num_gates_); }

  sat::Solver& solver() { return solver_; }

  /// Adds the cardinality bound: at most `g` gate-output ports unused.
  void bound_garbage(std::uint32_t g);

  /// Decodes a model into a netlist.
  rqfp::Netlist decode() const;

private:
  void build();
  /// Value of port p under assignment x as a literal (constant ports fold
  /// to true/false literals).
  Lit port_value(std::uint32_t p, std::uint64_t x) const;

  std::span<const tt::TruthTable> spec_;
  unsigned num_pis_;
  std::uint32_t num_gates_;
  sat::Solver solver_;
  sat::CnfBuilder builder_;

  // sel_[i][s][p]: gate i input slot s reads port p.
  std::vector<std::vector<std::vector<Lit>>> sel_;
  // cfg_[i][slot9]: inverter configuration bits.
  std::vector<std::vector<Lit>> cfg_;
  // val_[i][k][x]: output k of gate i under assignment x.
  std::vector<std::vector<std::vector<Lit>>> val_;
  // po_[o][p]: output o bound to port p.
  std::vector<std::vector<Lit>> po_;
  // unused_[i*3+k]: gate output port has no consumer.
  std::vector<Lit> unused_;
};

Lit Encoding::port_value(std::uint32_t p, std::uint64_t x) const {
  // This helper is only valid for constant and PI ports; gate ports are
  // covered by val_ variables (callers dispatch).
  if (p == 0) {
    return const_cast<Encoding*>(this)->builder_.true_lit();
  }
  const unsigned pi = p - 1;
  const bool v = (x >> pi) & 1;
  auto& b = const_cast<Encoding*>(this)->builder_;
  return v ? b.true_lit() : b.false_lit();
}

void Encoding::build() {
  const std::uint64_t num_assignments = std::uint64_t{1} << num_pis_;

  // Allocate selection, config, and value variables.
  sel_.resize(num_gates_);
  cfg_.resize(num_gates_);
  val_.resize(num_gates_);
  for (std::uint32_t i = 0; i < num_gates_; ++i) {
    sel_[i].resize(3);
    for (unsigned s = 0; s < 3; ++s) {
      sel_[i][s].resize(ports_before(i));
      for (auto& lit : sel_[i][s]) {
        lit = builder_.new_lit();
      }
      builder_.exactly_one(sel_[i][s]);
    }
    cfg_[i].resize(9);
    for (auto& lit : cfg_[i]) {
      lit = builder_.new_lit();
    }
    val_[i].resize(3);
    for (unsigned k = 0; k < 3; ++k) {
      val_[i][k].resize(num_assignments);
      for (auto& lit : val_[i][k]) {
        lit = builder_.new_lit();
      }
    }
  }
  po_.resize(spec_.size());
  for (auto& row : po_) {
    row.resize(total_ports());
    for (auto& lit : row) {
      lit = builder_.new_lit();
    }
    builder_.exactly_one(row);
  }

  // Single fan-out: every non-constant port has at most one consumer.
  for (std::uint32_t p = 1; p < total_ports(); ++p) {
    std::vector<Lit> consumers;
    for (std::uint32_t i = 0; i < num_gates_; ++i) {
      if (p >= ports_before(i)) {
        continue;
      }
      for (unsigned s = 0; s < 3; ++s) {
        consumers.push_back(sel_[i][s][p]);
      }
    }
    for (std::size_t o = 0; o < po_.size(); ++o) {
      consumers.push_back(po_[o][p]);
    }
    builder_.at_most_one(consumers);
  }

  // Gate semantics: for each gate, slot, assignment, define the selected
  // input value, apply the inverter bit, and take the majority.
  for (std::uint32_t i = 0; i < num_gates_; ++i) {
    // in_val[s][x]: value feeding slot s of gate i.
    std::vector<std::vector<Lit>> in_val(3);
    for (unsigned s = 0; s < 3; ++s) {
      in_val[s].resize(num_assignments);
      for (std::uint64_t x = 0; x < num_assignments; ++x) {
        in_val[s][x] = builder_.new_lit();
      }
      for (std::uint32_t p = 0; p < ports_before(i); ++p) {
        for (std::uint64_t x = 0; x < num_assignments; ++x) {
          Lit pv;
          if (p <= num_pis_) {
            pv = port_value(p, x);
          } else {
            const std::uint32_t src = (p - num_pis_ - 1) / 3;
            const unsigned k = (p - num_pis_ - 1) % 3;
            pv = val_[src][k][x];
          }
          // sel -> (in_val == pv)
          solver_.add_clause({~sel_[i][s][p], ~in_val[s][x], pv});
          solver_.add_clause({~sel_[i][s][p], in_val[s][x], ~pv});
        }
      }
    }
    for (unsigned k = 0; k < 3; ++k) {
      for (std::uint64_t x = 0; x < num_assignments; ++x) {
        Lit phased[3];
        for (unsigned s = 0; s < 3; ++s) {
          phased[s] = builder_.make_xor(in_val[s][x], cfg_[i][3 * k + s]);
        }
        const Lit m = builder_.make_maj(phased[0], phased[1], phased[2]);
        builder_.assert_equal(val_[i][k][x], m);
      }
    }
  }

  // PO correctness: choosing port p for output o forces p's value to match
  // the specification on every assignment.
  for (std::size_t o = 0; o < spec_.size(); ++o) {
    for (std::uint32_t p = 0; p < total_ports(); ++p) {
      for (std::uint64_t x = 0; x < num_assignments; ++x) {
        const bool want = spec_[o].bit(x);
        Lit pv;
        if (p <= num_pis_) {
          pv = port_value(p, x);
        } else {
          const std::uint32_t src = (p - num_pis_ - 1) / 3;
          const unsigned k = (p - num_pis_ - 1) % 3;
          pv = val_[src][k][x];
        }
        solver_.add_clause({~po_[o][p], want ? pv : ~pv});
      }
    }
  }

  // Symmetry breaking: any permutation of a gate's input slots is
  // absorbed by permuting its inverter-configuration columns, so force
  // in[0] <= in[1] <= in[2].
  for (std::uint32_t i = 0; i < num_gates_; ++i) {
    for (unsigned s = 0; s + 1 < 3; ++s) {
      for (std::uint32_t p = 1; p < ports_before(i); ++p) {
        for (std::uint32_t q = 0; q < p; ++q) {
          solver_.add_clause({~sel_[i][s][p], ~sel_[i][s + 1][q]});
        }
      }
    }
  }

  // unused[p]: gate output port p has no consumer (for the garbage bound).
  unused_.resize(3 * num_gates_);
  for (std::uint32_t g = 0; g < num_gates_; ++g) {
    for (unsigned k = 0; k < 3; ++k) {
      const std::uint32_t p = 1 + num_pis_ + 3 * g + k;
      std::vector<Lit> consumers;
      for (std::uint32_t i = g + 1; i < num_gates_; ++i) {
        for (unsigned s = 0; s < 3; ++s) {
          consumers.push_back(sel_[i][s][p]);
        }
      }
      for (std::size_t o = 0; o < po_.size(); ++o) {
        consumers.push_back(po_[o][p]);
      }
      const Lit used = builder_.make_or(consumers);
      unused_[3 * g + k] = ~used;
    }
  }

  // Every gate drives something: a circuit with a fully-unused gate would
  // already have been found at a smaller gate count (the driver searches
  // gate counts in ascending order), so this strengthening is sound.
  for (std::uint32_t g = 0; g < num_gates_; ++g) {
    solver_.add_clause(
        {~unused_[3 * g], ~unused_[3 * g + 1], ~unused_[3 * g + 2]});
  }
}

void Encoding::bound_garbage(std::uint32_t g) {
  // Sinz sequential counter: sum(unused_) <= g.
  const std::size_t n = unused_.size();
  if (g >= n) {
    return;
  }
  if (g == 0) {
    for (const Lit u : unused_) {
      solver_.add_clause({~u});
    }
    return;
  }
  // s[i][j]: among the first i+1 inputs at least j+1 are true (j < g).
  std::vector<std::vector<Lit>> s(n, std::vector<Lit>(g));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < g; ++j) {
      s[i][j] = builder_.new_lit();
    }
  }
  solver_.add_clause({~unused_[0], s[0][0]});
  for (std::uint32_t j = 1; j < g; ++j) {
    solver_.add_clause({~s[0][j]});
  }
  for (std::size_t i = 1; i < n; ++i) {
    solver_.add_clause({~unused_[i], s[i][0]});
    solver_.add_clause({~s[i - 1][0], s[i][0]});
    for (std::uint32_t j = 1; j < g; ++j) {
      solver_.add_clause({~unused_[i], ~s[i - 1][j - 1], s[i][j]});
      solver_.add_clause({~s[i - 1][j], s[i][j]});
    }
    // Taking unused_[i] when g are already used up would exceed the bound.
    solver_.add_clause({~unused_[i], ~s[i - 1][g - 1]});
  }
}

rqfp::Netlist Encoding::decode() const {
  rqfp::Netlist net(num_pis_);
  for (std::uint32_t i = 0; i < num_gates_; ++i) {
    std::array<rqfp::Port, 3> in{};
    for (unsigned s = 0; s < 3; ++s) {
      for (std::uint32_t p = 0; p < ports_before(i); ++p) {
        if (solver_.model_value(sel_[i][s][p])) {
          in[s] = p;
          break;
        }
      }
    }
    std::uint16_t bits = 0;
    for (unsigned b = 0; b < 9; ++b) {
      if (solver_.model_value(cfg_[i][b])) {
        bits |= 1u << b;
      }
    }
    net.add_gate(in, rqfp::InvConfig(bits));
  }
  for (std::size_t o = 0; o < po_.size(); ++o) {
    for (std::uint32_t p = 0; p < total_ports(); ++p) {
      if (solver_.model_value(po_[o][p])) {
        net.add_po(p);
        break;
      }
    }
  }
  return net;
}

} // namespace

ExactResult exact_try(std::span<const tt::TruthTable> spec,
                      std::uint32_t num_gates,
                      std::optional<std::uint32_t> max_garbage,
                      const ExactParams& params) {
  util::Stopwatch watch;
  ExactResult result;
  Encoding enc(spec, num_gates);
  if (max_garbage) {
    enc.bound_garbage(*max_garbage);
  }
  sat::SolveLimits limits;
  limits.max_conflicts = params.conflicts_per_call;
  limits.max_seconds = params.time_limit_seconds;
  const auto verdict = enc.solver().solve({}, limits);
  result.sat_calls = 1;
  result.seconds = watch.seconds();
  switch (verdict) {
    case sat::SolveResult::kSat: {
      result.status = ExactStatus::kSolved;
      result.netlist = enc.decode();
      result.gates = num_gates;
      result.garbage = result.netlist->count_garbage_outputs();
      // Safety net: the decoded circuit must simulate to the spec.
      const auto sim = cec::sim_check(*result.netlist, spec);
      if (!sim.all_match) {
        throw std::logic_error("exact_try: decoded netlist mismatches spec");
      }
      break;
    }
    case sat::SolveResult::kUnsat:
      result.status = ExactStatus::kUnsat;
      break;
    case sat::SolveResult::kUnknown:
      result.status = ExactStatus::kTimeout;
      break;
  }
  return result;
}

ExactResult exact_synthesize(std::span<const tt::TruthTable> spec,
                             const ExactParams& params) {
  util::Stopwatch watch;
  ExactResult overall;
  auto out_of_time = [&]() {
    return params.time_limit_seconds > 0.0 &&
           watch.seconds() > params.time_limit_seconds;
  };

  for (std::uint32_t r = 0; r <= params.max_gates; ++r) {
    if (out_of_time()) {
      overall.status = ExactStatus::kTimeout;
      break;
    }
    // Each feasibility call gets at most the remaining wall-clock budget.
    ExactParams step = params;
    if (params.time_limit_seconds > 0.0) {
      step.time_limit_seconds =
          params.time_limit_seconds - watch.seconds();
    }
    auto res = exact_try(spec, r, std::nullopt, step);
    overall.sat_calls += res.sat_calls;
    if (res.status == ExactStatus::kTimeout) {
      overall.status = ExactStatus::kTimeout;
      break;
    }
    if (res.status == ExactStatus::kUnsat) {
      overall.status = ExactStatus::kUnsat; // keep trying more gates
      continue;
    }
    // Feasible at r gates: now minimize garbage (paper [15] optimizes the
    // pair (gates, garbage)).
    overall = res;
    if (params.minimize_garbage && res.netlist) {
      std::uint32_t best_g = res.garbage;
      while (best_g > 0 && !out_of_time()) {
        ExactParams tight_step = params;
        if (params.time_limit_seconds > 0.0) {
          tight_step.time_limit_seconds =
              params.time_limit_seconds - watch.seconds();
        }
        auto tighter = exact_try(spec, r, best_g - 1, tight_step);
        overall.sat_calls += tighter.sat_calls;
        if (tighter.status != ExactStatus::kSolved) {
          break;
        }
        overall.netlist = tighter.netlist;
        overall.garbage = tighter.garbage;
        best_g = tighter.garbage;
      }
    }
    overall.status = ExactStatus::kSolved;
    overall.gates = r;
    break;
  }
  overall.seconds = watch.seconds();
  return overall;
}

} // namespace rcgp::exact
