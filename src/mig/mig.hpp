#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tt/truth_table.hpp"

namespace rcgp::mig {

/// An edge in the MIG: node index plus complement flag, packed.
class Signal {
public:
  Signal() = default;
  Signal(std::uint32_t node, bool complemented)
      : code_((node << 1) | (complemented ? 1u : 0u)) {}

  static Signal from_code(std::uint32_t code) {
    Signal s;
    s.code_ = code;
    return s;
  }

  std::uint32_t node() const { return code_ >> 1; }
  bool complemented() const { return code_ & 1; }
  std::uint32_t code() const { return code_; }

  Signal operator!() const { return from_code(code_ ^ 1); }
  Signal operator^(bool c) const { return from_code(code_ ^ (c ? 1u : 0u)); }
  bool operator==(const Signal&) const = default;
  bool operator<(const Signal& o) const { return code_ < o.code_; }

private:
  std::uint32_t code_ = 0;
};

/// Majority-inverter graph: every internal node is a 3-input majority.
/// Node 0 is constant false. Creation applies the majority simplification
/// axioms (M(x,x,y)=x, M(x,!x,y)=y) and canonical structural hashing
/// (fanins sorted; at most one complemented fanin by pushing complements to
/// the output).
class Mig {
public:
  struct Node {
    Signal fanin[3];
    std::uint8_t kind; // 0 const, 1 PI, 2 MAJ
  };

  enum : std::uint8_t { kConst = 0, kPi = 1, kMaj = 2 };

  Mig();

  Signal const0() const { return Signal(0, false); }
  Signal const1() const { return Signal(0, true); }

  Signal create_pi(const std::string& name = "");
  Signal create_maj(Signal a, Signal b, Signal c);
  Signal create_and(Signal a, Signal b) {
    return create_maj(a, b, const0());
  }
  Signal create_or(Signal a, Signal b) { return create_maj(a, b, const1()); }
  Signal create_xor(Signal a, Signal b);
  Signal create_mux(Signal sel, Signal t, Signal e);

  std::uint32_t add_po(Signal s, const std::string& name = "");
  void set_po(std::uint32_t index, Signal s) { pos_[index] = s; }

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  std::uint32_t num_pis() const {
    return static_cast<std::uint32_t>(pis_.size());
  }
  std::uint32_t num_pos() const {
    return static_cast<std::uint32_t>(pos_.size());
  }
  std::uint32_t count_live_majs() const;

  bool is_const(std::uint32_t n) const { return nodes_[n].kind == kConst; }
  bool is_pi(std::uint32_t n) const { return nodes_[n].kind == kPi; }
  bool is_maj(std::uint32_t n) const { return nodes_[n].kind == kMaj; }

  const Node& node(std::uint32_t n) const { return nodes_[n]; }
  Signal fanin(std::uint32_t n, unsigned i) const {
    return resolve(nodes_[n].fanin[i]);
  }

  std::uint32_t pi_at(std::uint32_t i) const { return pis_[i]; }
  std::uint32_t pi_index(std::uint32_t n) const { return pi_index_.at(n); }
  Signal po_at(std::uint32_t i) const { return resolve(pos_[i]); }
  const std::string& pi_name(std::uint32_t i) const { return pi_names_[i]; }
  const std::string& po_name(std::uint32_t i) const { return po_names_[i]; }

  Signal resolve(Signal s) const;
  void replace(std::uint32_t n, Signal s);
  bool is_replaced(std::uint32_t n) const { return repl_.count(n) != 0; }

  Mig cleanup() const;

  std::vector<std::uint32_t> compute_levels() const;
  std::uint32_t depth() const;
  std::vector<std::uint32_t> compute_refs() const;

  /// Exhaustive simulation of all POs over the PIs.
  std::vector<tt::TruthTable> simulate() const;

private:
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> pis_;
  std::vector<Signal> pos_;
  std::vector<std::string> pi_names_;
  std::vector<std::string> po_names_;
  std::unordered_map<std::uint32_t, std::uint32_t> pi_index_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
  std::unordered_map<std::uint32_t, Signal> repl_;
};

} // namespace rcgp::mig
