#pragma once

#include <cstdint>

#include "mig/mig.hpp"

namespace rcgp::mig {

struct ResubParams {
  /// Random simulation words per PI for signature-based filtering when the
  /// network is too wide for exhaustive tables.
  std::size_t sim_words = 16;
  std::uint64_t seed = 1;
};

struct ResubStats {
  std::uint32_t candidates = 0;
  std::uint32_t resubstituted = 0;
  std::uint32_t nodes_before = 0;
  std::uint32_t nodes_after = 0;
};

/// Zero-cost resubstitution: replaces a node with an already-existing
/// signal (possibly complemented) that computes the same function —
/// the MIG counterpart of AIG SAT sweeping, proven here by exhaustive
/// simulation (<= TruthTable::kMaxVars PIs) or accepted from matching
/// random signatures plus exhaustive confirmation on narrow networks.
/// Wide networks (> kMaxVars PIs) use signatures only for candidate
/// pairing and skip unconfirmable merges, so the result is always exact.
Mig mig_resubstitute(const Mig& input, const ResubParams& params = {},
                     ResubStats* stats = nullptr);

} // namespace rcgp::mig
