#include "mig/mig_resub.hpp"

#include <unordered_map>

#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace rcgp::mig {

Mig mig_resubstitute(const Mig& input, const ResubParams& params,
                     ResubStats* stats) {
  Mig net = input.cleanup();
  ResubStats local;
  local.nodes_before = net.count_live_majs();

  const bool exhaustive = net.num_pis() <= tt::TruthTable::kMaxVars &&
                          net.num_pis() <= 14; // keep tables cheap
  // Per-node functions: exhaustive tables when narrow, random-pattern
  // signatures otherwise.
  std::vector<tt::TruthTable> table;
  std::vector<std::vector<std::uint64_t>> sig;
  if (exhaustive) {
    table.assign(net.num_nodes(),
                 tt::TruthTable::constant(net.num_pis(), false));
    for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
      table[net.pi_at(i)] = tt::TruthTable::projection(net.num_pis(), i);
    }
    for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
      if (!net.is_maj(n)) {
        continue;
      }
      tt::TruthTable in[3];
      for (unsigned i = 0; i < 3; ++i) {
        const Signal f = net.fanin(n, i);
        in[i] = f.complemented() ? ~table[f.node()] : table[f.node()];
      }
      table[n] = tt::TruthTable::majority(in[0], in[1], in[2]);
    }
  } else {
    util::Rng rng(params.seed);
    sig.assign(net.num_nodes(),
               std::vector<std::uint64_t>(params.sim_words, 0));
    for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
      for (auto& w : sig[net.pi_at(i)]) {
        w = rng.next();
      }
    }
    for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
      if (!net.is_maj(n)) {
        continue;
      }
      for (std::size_t w = 0; w < params.sim_words; ++w) {
        std::uint64_t v[3];
        for (unsigned i = 0; i < 3; ++i) {
          const Signal f = net.fanin(n, i);
          v[i] = sig[f.node()][w] ^ (f.complemented() ? ~0ull : 0);
        }
        sig[n][w] = (v[0] & v[1]) | (v[0] & v[2]) | (v[1] & v[2]);
      }
    }
  }

  // Map from phase-normalized function key to the first node computing it.
  auto key_of = [&](std::uint32_t n, bool& phase) -> std::uint64_t {
    if (exhaustive) {
      phase = table[n].bit(0);
      const auto t = phase ? ~table[n] : table[n];
      return t.hash();
    }
    phase = (sig[n][0] & 1) != 0;
    std::uint64_t h = 0x9E3779B97F4A7C15ULL;
    const std::uint64_t flip = phase ? ~0ull : 0;
    for (const auto w : sig[n]) {
      h ^= (w ^ flip) + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    return h;
  };
  auto confirmed_equal = [&](std::uint32_t a, std::uint32_t b, bool compl_b) {
    if (!exhaustive) {
      return false; // signatures alone never justify a merge
    }
    return table[a] == (compl_b ? ~table[b] : table[b]);
  };

  std::unordered_map<std::uint64_t, std::uint32_t> leader;
  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (!net.is_maj(n) || net.is_replaced(n)) {
      continue;
    }
    bool phase_n = false;
    const auto key = key_of(n, phase_n);
    const auto it = leader.find(key);
    if (it == leader.end()) {
      leader[key] = n;
      continue;
    }
    ++local.candidates;
    bool phase_l = false;
    key_of(it->second, phase_l);
    const bool complemented = phase_n != phase_l;
    if (!confirmed_equal(n, it->second, complemented)) {
      continue;
    }
    net.replace(n, Signal(it->second, complemented));
    ++local.resubstituted;
  }

  Mig out = net.cleanup();
  local.nodes_after = out.count_live_majs();
  if (stats) {
    *stats = local;
  }
  return out;
}

} // namespace rcgp::mig
