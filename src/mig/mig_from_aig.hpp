#pragma once

#include "aig/aig.hpp"
#include "mig/mig.hpp"

namespace rcgp::mig {

struct FromAigStats {
  std::uint32_t detected_majorities = 0;
  std::uint32_t detected_parities = 0;
  std::uint32_t plain_ands = 0;
};

/// Converts an AIG into a MIG. Plain AND nodes map to M(a,b,0); in
/// addition, 3-input cuts whose function is a (possibly input/output
/// complemented) majority collapse into a single MAJ node, which is what
/// makes the result AQFP/RQFP-friendly (mirrors the role of mockturtle's
/// aqfp_resynthesis in the paper's flow).
Mig mig_from_aig(const aig::Aig& input, FromAigStats* stats = nullptr);

} // namespace rcgp::mig
