#include "mig/mig_rewrite.hpp"

#include <algorithm>
#include <array>

#include "mig/mig_resub.hpp"

namespace rcgp::mig {

namespace {

/// Effective fanins of a signal pointing at a MAJ node: complementation of
/// the edge is pushed onto the fanins (M(!x,!y,!z) = !M(x,y,z)).
std::array<Signal, 3> effective_fanins(const Mig& net, Signal s) {
  std::array<Signal, 3> f{};
  for (unsigned i = 0; i < 3; ++i) {
    f[i] = net.fanin(s.node(), i) ^ s.complemented();
  }
  return f;
}

/// Shared-signal count between two effective fanin triples.
unsigned count_shared(const std::array<Signal, 3>& a,
                      const std::array<Signal, 3>& b) {
  unsigned n = 0;
  for (const Signal x : a) {
    for (const Signal y : b) {
      if (x == y) {
        ++n;
        break;
      }
    }
  }
  return n;
}

} // namespace

MigRewriteStats mig_algebraic_rewrite(Mig& net, unsigned max_rounds) {
  MigRewriteStats stats;
  net = net.cleanup();
  stats.nodes_before = net.count_live_majs();
  stats.depth_before = net.depth();

  for (unsigned round = 0; round < max_rounds; ++round) {
    const std::uint32_t before = net.count_live_majs();
    const auto refs = net.compute_refs();
    const auto levels = net.compute_levels();
    const std::uint32_t original_count = net.num_nodes();
    // refs/levels are snapshots: create_maj below can append nodes this
    // round, so any node index past the snapshot has an unknown reference
    // count and must be treated as shared (rewrites require single fanout).
    const auto single_ref = [&](std::uint32_t node) {
      return node < refs.size() && refs[node] == 1;
    };

    for (std::uint32_t n = 0; n < original_count; ++n) {
      if (!net.is_maj(n) || net.is_replaced(n)) {
        continue;
      }
      std::array<Signal, 3> fi{net.fanin(n, 0), net.fanin(n, 1),
                               net.fanin(n, 2)};

      // --- Distributivity (right to left): M(M(p,q,u), M(p,q,v), z)
      //     = M(p, q, M(u,v,z)). Saves a node when both inner majorities
      //     are single-fanout.
      bool applied = false;
      for (unsigned i = 0; i < 3 && !applied; ++i) {
        for (unsigned j = 0; j < 3 && !applied; ++j) {
          if (i == j) {
            continue;
          }
          const Signal f = fi[i];
          const Signal g = fi[j];
          if (!net.is_maj(f.node()) || !net.is_maj(g.node()) ||
              f.node() == n || g.node() == n || f.node() == g.node()) {
            continue;
          }
          if (!single_ref(f.node()) || !single_ref(g.node())) {
            continue;
          }
          const auto ef = effective_fanins(net, f);
          const auto eg = effective_fanins(net, g);
          if (count_shared(ef, eg) < 2) {
            continue;
          }
          // Identify the two shared signals and the two residues.
          std::array<bool, 3> f_shared{};
          std::array<bool, 3> g_shared{};
          std::vector<Signal> shared;
          for (unsigned a = 0; a < 3; ++a) {
            for (unsigned b = 0; b < 3; ++b) {
              if (!g_shared[b] && ef[a] == eg[b] && shared.size() < 2) {
                f_shared[a] = true;
                g_shared[b] = true;
                shared.push_back(ef[a]);
                break;
              }
            }
          }
          if (shared.size() != 2) {
            continue;
          }
          Signal u;
          Signal v;
          for (unsigned a = 0; a < 3; ++a) {
            if (!f_shared[a]) {
              u = ef[a];
            }
            if (!g_shared[a]) {
              v = eg[a];
            }
          }
          const unsigned k = 3 - i - j; // remaining fanin index
          const Signal z = fi[k];
          const Signal inner = net.create_maj(u, v, z);
          const Signal outer = net.create_maj(shared[0], shared[1], inner);
          if (outer.node() != n) {
            net.replace(n, outer);
            ++stats.distributivity_hits;
            applied = true;
          }
        }
      }
      if (applied) {
        continue;
      }

      // --- Associativity for depth: M(x, u, M(y, u, z)) = M(z, u, M(y,u,x))
      //     applied when it strictly lowers this node's level.
      for (unsigned si = 0; si < 3 && !applied; ++si) {
        const Signal s = fi[si];
        if (!net.is_maj(s.node()) || s.node() == n ||
            !single_ref(s.node())) {
          continue;
        }
        const auto inner = effective_fanins(net, s);
        for (unsigned ui = 0; ui < 3 && !applied; ++ui) {
          if (ui == si) {
            continue;
          }
          const Signal u = fi[ui];
          // Find u among inner fanins.
          for (unsigned w = 0; w < 3 && !applied; ++w) {
            if (inner[w] != u) {
              continue;
            }
            const unsigned xi = 3 - si - ui;
            const Signal x = fi[xi];
            // Pick z = the deeper of the two non-u inner fanins.
            for (unsigned zi = 0; zi < 3 && !applied; ++zi) {
              if (zi == w) {
                continue;
              }
              const Signal z = inner[zi];
              const unsigned yi = 3 - w - zi;
              const Signal y = inner[yi];
              auto lvl = [&](Signal t) {
                return t.node() < levels.size() ? levels[t.node()] : 0u;
              };
              const std::uint32_t old_inner = 1 + std::max({lvl(y), lvl(u), lvl(z)});
              const std::uint32_t old_outer =
                  1 + std::max({lvl(x), lvl(u), old_inner});
              const std::uint32_t new_inner = 1 + std::max({lvl(y), lvl(u), lvl(x)});
              const std::uint32_t new_outer =
                  1 + std::max({lvl(z), lvl(u), new_inner});
              if (new_outer >= old_outer) {
                continue;
              }
              const Signal ni = net.create_maj(y, u, x);
              const Signal no = net.create_maj(z, u, ni);
              if (no.node() != n) {
                net.replace(n, no);
                ++stats.associativity_hits;
                applied = true;
              }
            }
          }
        }
      }
      if (applied) {
        continue;
      }

      // --- Complementary associativity: M(x, u, M(y, !u, z)) =
      //     M(x, u, M(y, x, z)); applied only when the new inner node
      //     already exists (pure sharing, never grows the network).
      for (unsigned si = 0; si < 3 && !applied; ++si) {
        const Signal s = fi[si];
        if (!net.is_maj(s.node()) || s.node() == n || !single_ref(s.node())) {
          continue;
        }
        const auto inner = effective_fanins(net, s);
        for (unsigned ui = 0; ui < 3 && !applied; ++ui) {
          if (ui == si) {
            continue;
          }
          const Signal u = fi[ui];
          for (unsigned w = 0; w < 3 && !applied; ++w) {
            if (inner[w] != !u) {
              continue;
            }
            const unsigned xi = 3 - si - ui;
            const Signal x = fi[xi];
            const unsigned ai = w == 0 ? 1 : 0;
            const unsigned bi = 3 - w - ai;
            const std::uint32_t count_before = net.num_nodes();
            const Signal ni = net.create_maj(inner[ai], x, inner[bi]);
            if (net.num_nodes() != count_before) {
              continue; // created a node: not pure sharing, skip
            }
            std::array<Signal, 3> nf = fi;
            nf[si] = ni;
            const Signal no = net.create_maj(nf[0], nf[1], nf[2]);
            if (no.node() != n) {
              net.replace(n, no);
              ++stats.compl_associativity_hits;
              applied = true;
            }
          }
        }
      }
    }

    net = net.cleanup();
    if (net.count_live_majs() >= before && round > 0) {
      break;
    }
    if (net.count_live_majs() == before) {
      break;
    }
  }

  stats.nodes_after = net.count_live_majs();
  stats.depth_after = net.depth();
  return stats;
}

Mig optimize_mig(const Mig& input, MigRewriteStats* stats) {
  Mig net = input.cleanup();
  MigRewriteStats s = mig_algebraic_rewrite(net);
  // Functional resubstitution removes duplicates the algebraic rules
  // cannot see (exact; narrow networks only — see mig_resub.hpp).
  net = mig_resubstitute(net);
  s.nodes_after = net.count_live_majs();
  if (stats) {
    *stats = s;
  }
  return net;
}

} // namespace rcgp::mig
