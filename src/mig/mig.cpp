#include "mig/mig.hpp"

#include <algorithm>
#include <stdexcept>

namespace rcgp::mig {

namespace {
std::uint64_t strash_key(Signal a, Signal b, Signal c) {
  // Fanins are pre-sorted by caller; 21 bits each is ample.
  return (static_cast<std::uint64_t>(a.code()) << 42) |
         (static_cast<std::uint64_t>(b.code()) << 21) | c.code();
}
} // namespace

Mig::Mig() { nodes_.push_back(Node{{}, kConst}); }

Signal Mig::create_pi(const std::string& name) {
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{{}, kPi});
  pi_index_[n] = static_cast<std::uint32_t>(pis_.size());
  pis_.push_back(n);
  pi_names_.push_back(name.empty() ? "x" + std::to_string(pis_.size() - 1)
                                   : name);
  return Signal(n, false);
}

Signal Mig::create_maj(Signal a, Signal b, Signal c) {
  a = resolve(a);
  b = resolve(b);
  c = resolve(c);
  // Order fanins canonically.
  if (b < a) {
    std::swap(a, b);
  }
  if (c < b) {
    std::swap(b, c);
  }
  if (b < a) {
    std::swap(a, b);
  }
  // Majority axioms.
  if (a == b) {
    return a; // M(x,x,y) = x
  }
  if (b == c) {
    return b;
  }
  if (a == !b) {
    return c; // M(x,!x,y) = y
  }
  if (b == !c) {
    return a;
  }
  if (a == !c) {
    return b;
  }
  // Constant-fanin pairs were handled above; a single constant stays as an
  // AND/OR-like node. Normalize inverters: if two or more fanins are
  // complemented, complement all fanins and the output
  // (M(!x,!y,!z) = !M(x,y,z)).
  const int num_compl = static_cast<int>(a.complemented()) +
                        static_cast<int>(b.complemented()) +
                        static_cast<int>(c.complemented());
  bool out_compl = false;
  if (num_compl >= 2) {
    a = !a;
    b = !b;
    c = !c;
    out_compl = true;
    // Re-sort: complementing flips the LSB of codes, order can change only
    // between equal-node signals, which the axioms already removed.
    if (b < a) {
      std::swap(a, b);
    }
    if (c < b) {
      std::swap(b, c);
    }
    if (b < a) {
      std::swap(a, b);
    }
  }
  const std::uint64_t key = strash_key(a, b, c);
  const auto it = strash_.find(key);
  if (it != strash_.end() && !is_replaced(it->second)) {
    return Signal(it->second, out_compl);
  }
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{{a, b, c}, kMaj});
  strash_[key] = n;
  return Signal(n, out_compl);
}

Signal Mig::create_xor(Signal a, Signal b) {
  // XOR(a,b) = AND(OR(a,b), NAND(a,b)) — three majority nodes.
  const Signal o = create_or(a, b);
  const Signal na = create_and(a, b);
  return create_and(o, !na);
}

Signal Mig::create_mux(Signal sel, Signal t, Signal e) {
  // ite(s,t,e) = M(M(s,t,0), M(!s,e,0), 1) = OR(s&t, !s&e).
  return create_or(create_and(sel, t), create_and(!sel, e));
}

std::uint32_t Mig::add_po(Signal s, const std::string& name) {
  const auto idx = static_cast<std::uint32_t>(pos_.size());
  pos_.push_back(s);
  po_names_.push_back(name.empty() ? "y" + std::to_string(idx) : name);
  return idx;
}

Signal Mig::resolve(Signal s) const {
  for (;;) {
    const auto it = repl_.find(s.node());
    if (it == repl_.end()) {
      return s;
    }
    s = it->second ^ s.complemented();
  }
}

void Mig::replace(std::uint32_t n, Signal s) {
  if (!is_maj(n)) {
    throw std::invalid_argument("Mig::replace: only MAJ nodes replaceable");
  }
  s = resolve(s);
  if (s.node() == n) {
    return;
  }
  repl_[n] = s;
}

std::uint32_t Mig::count_live_majs() const {
  std::vector<bool> mark(nodes_.size(), false);
  std::vector<std::uint32_t> stack;
  std::uint32_t count = 0;
  for (const auto& po : pos_) {
    stack.push_back(resolve(po).node());
  }
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (mark[n]) {
      continue;
    }
    mark[n] = true;
    if (is_maj(n)) {
      ++count;
      for (unsigned i = 0; i < 3; ++i) {
        stack.push_back(fanin(n, i).node());
      }
    }
  }
  return count;
}

Mig Mig::cleanup() const {
  Mig out;
  std::vector<Signal> map(nodes_.size(), Signal());
  std::vector<bool> done(nodes_.size(), false);
  map[0] = out.const0();
  done[0] = true;
  for (std::uint32_t i = 0; i < pis_.size(); ++i) {
    map[pis_[i]] = out.create_pi(pi_names_[i]);
    done[pis_[i]] = true;
  }
  std::vector<std::uint32_t> stack;
  for (const auto& po_raw : pos_) {
    stack.push_back(resolve(po_raw).node());
    while (!stack.empty()) {
      const std::uint32_t n = stack.back();
      if (done[n]) {
        stack.pop_back();
        continue;
      }
      bool ready = true;
      for (unsigned i = 0; i < 3; ++i) {
        const Signal f = fanin(n, i);
        if (!done[f.node()]) {
          stack.push_back(f.node());
          ready = false;
        }
      }
      if (!ready) {
        continue;
      }
      stack.pop_back();
      const Signal a = fanin(n, 0);
      const Signal b = fanin(n, 1);
      const Signal c = fanin(n, 2);
      map[n] = out.create_maj(map[a.node()] ^ a.complemented(),
                              map[b.node()] ^ b.complemented(),
                              map[c.node()] ^ c.complemented());
      done[n] = true;
    }
  }
  for (std::uint32_t i = 0; i < pos_.size(); ++i) {
    const Signal po = resolve(pos_[i]);
    out.add_po(map[po.node()] ^ po.complemented(), po_names_[i]);
  }
  return out;
}

std::vector<std::uint32_t> Mig::compute_levels() const {
  std::vector<std::uint32_t> level(nodes_.size(), 0);
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    if (is_maj(n) && !is_replaced(n)) {
      std::uint32_t m = 0;
      for (unsigned i = 0; i < 3; ++i) {
        m = std::max(m, level[fanin(n, i).node()]);
      }
      level[n] = m + 1;
    }
  }
  return level;
}

std::uint32_t Mig::depth() const {
  const auto level = compute_levels();
  std::uint32_t d = 0;
  for (const auto& po : pos_) {
    d = std::max(d, level[resolve(po).node()]);
  }
  return d;
}

std::vector<std::uint32_t> Mig::compute_refs() const {
  std::vector<std::uint32_t> refs(nodes_.size(), 0);
  std::vector<bool> mark(nodes_.size(), false);
  std::vector<std::uint32_t> stack;
  for (const auto& po : pos_) {
    const Signal s = resolve(po);
    ++refs[s.node()];
    stack.push_back(s.node());
  }
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (mark[n] || !is_maj(n)) {
      continue;
    }
    mark[n] = true;
    for (unsigned i = 0; i < 3; ++i) {
      const Signal f = fanin(n, i);
      ++refs[f.node()];
      stack.push_back(f.node());
    }
  }
  return refs;
}

std::vector<tt::TruthTable> Mig::simulate() const {
  if (!repl_.empty()) {
    // Replacements can forward-reference later-created nodes; simulate a
    // compacted copy whose creation order is strictly topological.
    return cleanup().simulate();
  }
  const unsigned nv = num_pis();
  if (nv > tt::TruthTable::kMaxVars) {
    throw std::invalid_argument("Mig::simulate: too many PIs");
  }
  std::vector<tt::TruthTable> table(nodes_.size(),
                                    tt::TruthTable::constant(nv, false));
  for (std::uint32_t i = 0; i < num_pis(); ++i) {
    table[pis_[i]] = tt::TruthTable::projection(nv, i);
  }
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    if (!is_maj(n) || is_replaced(n)) {
      continue;
    }
    tt::TruthTable in[3];
    for (unsigned i = 0; i < 3; ++i) {
      const Signal f = fanin(n, i);
      in[i] = f.complemented() ? ~table[f.node()] : table[f.node()];
    }
    table[n] = tt::TruthTable::majority(in[0], in[1], in[2]);
  }
  std::vector<tt::TruthTable> out;
  out.reserve(num_pos());
  for (std::uint32_t i = 0; i < num_pos(); ++i) {
    const Signal po = po_at(i);
    out.push_back(po.complemented() ? ~table[po.node()] : table[po.node()]);
  }
  return out;
}

} // namespace rcgp::mig
