#pragma once

#include <cstdint>

#include "mig/mig.hpp"

namespace rcgp::mig {

struct MigRewriteStats {
  std::uint32_t associativity_hits = 0;
  std::uint32_t compl_associativity_hits = 0;
  std::uint32_t distributivity_hits = 0;
  std::uint32_t nodes_before = 0;
  std::uint32_t nodes_after = 0;
  std::uint32_t depth_before = 0;
  std::uint32_t depth_after = 0;
};

/// Algebraic MIG rewriting using the majority axioms (Ω system):
///   associativity          M(x, u, M(y, u, z)) = M(z, u, M(y, u, x))
///   compl. associativity   M(x, u, M(y, !u, z)) = M(x, u, M(y, x, z))
///   distributivity (R→L)   M(M(x,y,u), M(x,y,v), z) = M(x, y, M(u,v,z))
/// Each rule is applied when it strictly reduces live node count (via
/// structural-hash sharing) or, for associativity variants, reduces the
/// node's level. Iterates to a fixed point with a bounded round count.
MigRewriteStats mig_algebraic_rewrite(Mig& net, unsigned max_rounds = 4);

/// Convenience: cleanup + algebraic rewriting, mirroring the paper's
/// "aqfp_resynthesis"-optimized MIG stage.
Mig optimize_mig(const Mig& input, MigRewriteStats* stats = nullptr);

} // namespace rcgp::mig
