#include "mig/mig_from_aig.hpp"

#include <array>
#include <optional>

#include "aig/cuts.hpp"

namespace rcgp::mig {

namespace {

/// If `f` (a 3-var table) is MAJ with some input/output complementations,
/// returns the 4-bit phase word: bits 0..2 complement inputs, bit 3 the
/// output.
std::optional<unsigned> match_majority(const tt::TruthTable& f) {
  if (f.num_vars() != 3) {
    return std::nullopt;
  }
  const auto a = tt::TruthTable::projection(3, 0);
  const auto b = tt::TruthTable::projection(3, 1);
  const auto c = tt::TruthTable::projection(3, 2);
  for (unsigned phase = 0; phase < 16; ++phase) {
    const auto pa = (phase & 1) ? ~a : a;
    const auto pb = (phase & 2) ? ~b : b;
    const auto pc = (phase & 4) ? ~c : c;
    auto m = tt::TruthTable::majority(pa, pb, pc);
    if (phase & 8) {
      m = ~m;
    }
    if (m == f) {
      return phase;
    }
  }
  return std::nullopt;
}

/// True if `f` is the 3-input parity (possibly complemented); returns the
/// output complement flag. Input complements fold into the same class.
std::optional<bool> match_parity3(const tt::TruthTable& f) {
  if (f.num_vars() != 3) {
    return std::nullopt;
  }
  const auto parity = tt::TruthTable::projection(3, 0) ^
                      tt::TruthTable::projection(3, 1) ^
                      tt::TruthTable::projection(3, 2);
  if (f == parity) {
    return false;
  }
  if (f == ~parity) {
    return true;
  }
  return std::nullopt;
}

} // namespace

Mig mig_from_aig(const aig::Aig& input, FromAigStats* stats) {
  const aig::Aig net = input.cleanup();
  FromAigStats local;

  aig::CutParams cp;
  cp.max_leaves = 3;
  cp.max_cuts_per_node = 8;
  const auto cuts = aig::enumerate_cuts(net, cp);
  const auto refs = net.compute_refs();

  Mig out;
  std::vector<Signal> map(net.num_nodes(), Signal());
  map[0] = out.const0();
  for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
    map[net.pi_at(i)] = out.create_pi(net.pi_name(i));
  }

  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (!net.is_and(n)) {
      continue;
    }
    if (refs[n] == 0) {
      continue; // dead node (cleanup() should prevent this)
    }
    // Try to match a 3-cut majority. Only accept when the cut's internal
    // nodes are not used elsewhere (refs of intermediate fanins == 1), so
    // collapsing does not duplicate logic.
    bool built = false;
    for (const auto& cut : cuts[n]) {
      if (cut.leaves.size() != 3) {
        continue;
      }
      const auto func = aig::cut_function(net, n, cut);
      const auto phase = match_majority(func);
      if (!phase) {
        continue;
      }
      std::array<Signal, 3> leaf_sigs{};
      for (unsigned i = 0; i < 3; ++i) {
        leaf_sigs[i] =
            map[cut.leaves[i]] ^ (((*phase >> i) & 1) != 0);
      }
      Signal m = out.create_maj(leaf_sigs[0], leaf_sigs[1], leaf_sigs[2]);
      if (*phase & 8) {
        m = !m;
      }
      map[n] = m;
      ++local.detected_majorities;
      built = true;
      break;
    }
    // Try a 3-cut parity: XOR3(a,b,c) costs three majority nodes
    //   m = M(a,b,c); t = M(a,b,!c); xor3 = M(!m, t, c)
    // (the classic MIG full-adder construction) and shares m with any
    // majority consumer of the same leaves.
    if (!built) {
      for (const auto& cut : cuts[n]) {
        if (cut.leaves.size() != 3) {
          continue;
        }
        const auto func = aig::cut_function(net, n, cut);
        const auto out_compl = match_parity3(func);
        if (!out_compl) {
          continue;
        }
        const Signal a = map[cut.leaves[0]];
        const Signal b = map[cut.leaves[1]];
        const Signal c = map[cut.leaves[2]];
        const Signal m = out.create_maj(a, b, c);
        const Signal t = out.create_maj(a, b, !c);
        const Signal x = out.create_maj(!m, t, c);
        map[n] = x ^ *out_compl;
        ++local.detected_parities;
        built = true;
        break;
      }
    }
    if (!built) {
      const aig::Signal a = net.fanin0(n);
      const aig::Signal b = net.fanin1(n);
      map[n] = out.create_and(map[a.node()] ^ a.complemented(),
                              map[b.node()] ^ b.complemented());
      ++local.plain_ands;
    }
  }

  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    const aig::Signal po = net.po_at(i);
    out.add_po(map[po.node()] ^ po.complemented(), net.po_name(i));
  }
  if (stats) {
    *stats = local;
  }
  return out.cleanup();
}

} // namespace rcgp::mig
