#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rqfp/netlist.hpp"
#include "tt/npn.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::cache {

/// Largest arity the cache canonicalizes jointly (all outputs under one
/// shared input permutation/phase). 4 inputs x 32 outputs is the sweet
/// spot: 24 perms x 16 phases = 384 candidate transforms, and every
/// ≤4-input class can be pre-filled by the exact synthesizer. Wider specs
/// still cache, but under the identity transform (exact-spec key), so only
/// bit-identical functions hit.
inline constexpr unsigned kMaxJointVars = 4;

/// Joint NPN-style transformation shared by every output of a
/// multi-output specification: canon = apply(original).
///
/// `perm[i]` is the original variable placed at canonical position i;
/// bit i of `input_phase` complements the variable feeding canonical
/// position i; bit o of `output_phase` complements output o. Entries of
/// `perm` at positions >= the spec arity are ignored.
struct SpecTransform {
  std::array<unsigned, tt::kMaxNpnVars> perm{0, 1, 2, 3, 4, 5};
  unsigned input_phase = 0;
  std::uint32_t output_phase = 0;

  bool identity(unsigned num_vars) const;
  bool operator==(const SpecTransform&) const = default;
};

/// Result of canonicalizing a specification.
struct CanonicalSpec {
  std::vector<tt::TruthTable> tables; ///< canonical-space tables
  SpecTransform transform;            ///< tables == apply(original, transform)
  std::string key;                    ///< spec_key(tables)
};

/// The store's string key for a canonical table vector:
/// "<num_vars>:<hex0>,<hex1>,...".
std::string spec_key(std::span<const tt::TruthTable> tables);

/// Canonicalizes a multi-output specification. For specs of at most
/// kMaxJointVars inputs this enumerates every shared input
/// permutation/phase, canonicalizes each output's polarity to
/// min(t, ~t), and keeps the lexicographically smallest table vector —
/// so any two specs equal up to shared input NPN transformation and
/// per-output complementation share a bit-identical key. Wider specs get
/// the identity transform. All tables must share one arity
/// (<= tt::TruthTable arity limits); throws std::invalid_argument
/// otherwise or when the spec is empty or has more than 32 outputs.
CanonicalSpec canonicalize(std::span<const tt::TruthTable> spec);

/// Applies / inverts a spec transform on the table vector:
/// unapply(apply(spec, t), t) == spec.
std::vector<tt::TruthTable> apply(std::span<const tt::TruthTable> spec,
                                  const SpecTransform& transform);
std::vector<tt::TruthTable> unapply(std::span<const tt::TruthTable> canon,
                                    const SpecTransform& transform);

/// Rewrites a netlist implementing the canonical tables into one
/// implementing the original specification (PI permutation by inverse
/// `perm`, input complements absorbed into gate inverter configs, output
/// complements absorbed into majority rows or one inserted inverter gate
/// for POs driven directly by a PI/constant port). The inverse of
/// canonicalize_netlist.
rqfp::Netlist decanonicalize_netlist(const rqfp::Netlist& canon,
                                     const SpecTransform& transform);

/// Rewrites a netlist implementing the original specification into one
/// implementing the canonical tables (what `insert` runs before storing).
rqfp::Netlist canonicalize_netlist(const rqfp::Netlist& original,
                                   const SpecTransform& transform);

} // namespace rcgp::cache
