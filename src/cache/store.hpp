#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/key.hpp"
#include "rqfp/cost.hpp"
#include "rqfp/netlist.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::cache {

/// One stored synthesis result, indexed by its canonical spec key.
struct Entry {
  std::vector<tt::TruthTable> tables; ///< canonical-space specification
  rqfp::Netlist netlist;              ///< canonical-space implementation
  rqfp::Cost cost;                    ///< cost_of(netlist) under ASAP
  std::string origin;                 ///< "exact", "cgp", ... (diagnostics)
};

/// A successful lookup: the stored result rewritten back into the
/// caller's variable/polarity space and re-verified by simulation.
struct Hit {
  rqfp::Netlist netlist; ///< implements the queried spec exactly
  rqfp::Cost cost;       ///< cost of the de-canonicalized netlist
  std::string origin;    ///< origin of the underlying entry
  std::string key;       ///< canonical key it was found under
};

/// Persistent NPN-canonical synthesis-result store (docs/FORMATS.md).
///
/// In memory it is a key → Entry map guarded by one mutex (the serve
/// worker pool shares a single store). On disk it is a CRC-guarded text
/// file, written atomically (temp + rename) like evolve checkpoints, so a
/// crash or SIGKILL mid-save leaves the previous file intact:
///
///   rcgp-cache 1 <crc32-hex>
///   entries <count>
///   entry <num_vars> <num_outputs> <origin>
///   tables <hex> [<hex> ...]
///   <.rqfp netlist text>
///   end-entry
///   end-cache
///
/// Corruption surfaces as robust::IntegrityError (kChecksum for payload
/// damage, kFormat for structural damage) — never a crash; the
/// manifest-corruption fuzz target exercises exactly this parser.
class Store {
public:
  Store() = default;

  /// Binds the store to `path` and loads it when the file exists.
  /// Throws robust::IntegrityError on a corrupt file.
  explicit Store(std::string path);

  /// Movable for factory returns (parse). Not safe to move while other
  /// threads use the source — moving is a setup-phase operation.
  Store(Store&& other) noexcept;
  Store& operator=(Store&& other) noexcept;

  const std::string& path() const { return path_; }
  void set_path(std::string path) { path_ = std::move(path); }

  std::size_t size() const;

  /// True when an entry exists under this canonical key (no metrics, no
  /// de-canonicalization — the warmer's existence probe).
  bool contains(const std::string& key) const;

  /// Canonicalizes `spec`, looks it up, and on a hit de-canonicalizes the
  /// stored netlist and checks it against `spec` by exhaustive
  /// simulation before returning it (a defense-in-depth guard — a
  /// mismatch drops the poisoned entry and counts
  /// cache.verify.failures). Updates cache.lookups / cache.hits /
  /// cache.misses and the cache.hit.seconds histogram.
  std::optional<Hit> lookup(std::span<const tt::TruthTable> spec);

  /// Canonicalizes `spec` and `net` and stores the result, keeping the
  /// better netlist (lexicographic n_r, jjs, n_d, n_g) when the key
  /// already exists. `net` must implement `spec` (checked by simulation;
  /// std::invalid_argument otherwise). Returns true when the store
  /// changed.
  bool insert(std::span<const tt::TruthTable> spec, const rqfp::Netlist& net,
              const std::string& origin);

  /// As insert, but `net` already lives in canonical space and implements
  /// `canon.tables` (the warmer's path).
  bool insert_canonical(const CanonicalSpec& canon, const rqfp::Netlist& net,
                        const std::string& origin);

  /// Re-validates and re-simulates every entry against its stored tables.
  /// Returns problem descriptions, empty when the store is sound.
  std::vector<std::string> verify() const;

  /// Snapshot of the entries (for stats / inspection).
  std::vector<std::pair<std::string, Entry>> entries() const;

  /// Atomic save to the bound path (no-op when unbound): temp file +
  /// fsync + rename + directory fsync, with concurrent callers serialized
  /// on an internal save mutex. Throws std::runtime_error on I/O failure.
  void save() const;

  /// Serialization used by save()/Store(path) — exposed for tests and
  /// the corruption fuzz target.
  std::string serialize() const;
  static Store parse(const std::string& text, const std::string& source);

private:
  bool insert_locked(const std::string& key, Entry entry);

  std::string path_;
  mutable std::mutex mu_;
  mutable std::mutex save_mu_; // one save (temp write + rename) at a time
  std::map<std::string, Entry> entries_;
};

} // namespace rcgp::cache
