#include "cache/key.hpp"

#include <algorithm>
#include <stdexcept>

namespace rcgp::cache {

namespace {

/// Arity/shape validation shared by canonicalize and the transform
/// appliers.
unsigned checked_arity(std::span<const tt::TruthTable> spec) {
  if (spec.empty()) {
    throw std::invalid_argument("cache: empty specification");
  }
  if (spec.size() > 32) {
    throw std::invalid_argument("cache: more than 32 outputs");
  }
  const unsigned n = spec[0].num_vars();
  for (const auto& t : spec) {
    if (t.num_vars() != n) {
      throw std::invalid_argument("cache: mixed specification arities");
    }
  }
  return n;
}

tt::NpnTransform output_transform(const SpecTransform& tr, std::size_t o) {
  tt::NpnTransform r;
  r.perm = tr.perm;
  r.input_phase = tr.input_phase;
  r.output_phase = ((tr.output_phase >> o) & 1) != 0;
  return r;
}

/// Rewrites `net` so every reference to PI i becomes PI var_map[i],
/// complemented when bit i of `in_flips` is set, and PO o is complemented
/// when bit o of `po_flips` is set. Input complements are absorbed into
/// the inverter configs of the consuming gates; output complements into
/// the majority row driving the PO, or — for POs bound directly to a PI
/// or the constant port — into one appended inverter gate
/// R(1, p, 0)-shaped gate computing M(1, !p, 0) = !p on every output.
/// Correct because of the single-fanout invariant: each complemented port
/// has exactly the one consumer being rewritten.
rqfp::Netlist retarget(const rqfp::Netlist& net,
                       std::span<const unsigned> var_map, unsigned in_flips,
                       std::uint32_t po_flips) {
  const unsigned n = net.num_pis();
  rqfp::Netlist out(n);
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    std::array<rqfp::Port, 3> in = gate.in;
    rqfp::InvConfig cfg = gate.config;
    for (unsigned s = 0; s < 3; ++s) {
      const rqfp::Port p = gate.in[s];
      if (net.is_pi_port(p)) {
        const unsigned i = net.pi_of_port(p);
        in[s] = var_map[i] + 1;
        if ((in_flips >> i) & 1) {
          // Complement input s of all three majorities.
          cfg = cfg.with_flip(s).with_flip(3 + s).with_flip(6 + s);
        }
      }
      // Constant and gate ports keep their numbers (same PI count).
    }
    out.add_gate(in, cfg);
  }
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    const rqfp::Port p = net.po_at(o);
    const bool flip = ((po_flips >> o) & 1) != 0;
    if (net.is_gate_port(p)) {
      if (flip) {
        // MAJ(!a,!b,!c) = !MAJ(a,b,c): flipping the whole row
        // complements this one gate output.
        const unsigned k = net.slot_of_port(p);
        auto& gate = out.gate(net.gate_of_port(p));
        gate.config = gate.config.with_flip(3 * k)
                          .with_flip(3 * k + 1)
                          .with_flip(3 * k + 2);
      }
      out.add_po(p, net.po_name(o));
      continue;
    }
    // PI- or constant-driven PO.
    rqfp::Port q = p;
    bool complement = flip;
    if (net.is_pi_port(p)) {
      const unsigned i = net.pi_of_port(p);
      q = var_map[i] + 1;
      complement = flip != (((in_flips >> i) & 1) != 0);
    }
    if (complement) {
      // triple(6) computes M(1, !q, 0) = !q on every output (and
      // M(1, 0, 0) = 0 = !1 when q is the constant port).
      const std::uint32_t inv = out.add_gate(
          {rqfp::kConstPort, q, rqfp::kConstPort}, rqfp::InvConfig::triple(6));
      out.add_po(out.port_of(inv, 0), net.po_name(o));
    } else {
      out.add_po(q, net.po_name(o));
    }
  }
  return out;
}

} // namespace

bool SpecTransform::identity(unsigned num_vars) const {
  const unsigned n = std::min(num_vars, tt::kMaxNpnVars);
  for (unsigned i = 0; i < n; ++i) {
    if (perm[i] != i) {
      return false;
    }
  }
  if (num_vars >= 32) {
    return input_phase == 0 && output_phase == 0;
  }
  return (input_phase & ((1u << num_vars) - 1)) == 0 && output_phase == 0;
}

std::string spec_key(std::span<const tt::TruthTable> tables) {
  const unsigned n = checked_arity(tables);
  std::string key = std::to_string(n);
  key += ':';
  for (std::size_t o = 0; o < tables.size(); ++o) {
    if (o != 0) {
      key += ',';
    }
    key += tables[o].to_hex();
  }
  return key;
}

CanonicalSpec canonicalize(std::span<const tt::TruthTable> spec) {
  const unsigned n = checked_arity(spec);
  CanonicalSpec best;
  best.tables.assign(spec.begin(), spec.end());
  if (n > kMaxJointVars) {
    // Identity transform: wide specs cache under their exact tables.
    best.key = spec_key(best.tables);
    return best;
  }

  // Per-output polarity canonicalization first: under any fixed input
  // transform, output o contributes min(t, ~t).
  const auto polarized = [&](const SpecTransform& tr,
                             std::vector<tt::TruthTable>& out,
                             std::uint32_t& phase) {
    out.clear();
    phase = 0;
    for (std::size_t o = 0; o < spec.size(); ++o) {
      tt::NpnTransform single = output_transform(tr, o);
      tt::TruthTable pos = npn_apply(spec[o], single);
      tt::TruthTable neg = ~pos;
      if (neg < pos) {
        phase |= std::uint32_t{1} << o;
        out.push_back(std::move(neg));
      } else {
        out.push_back(std::move(pos));
      }
    }
  };

  bool first = true;
  std::vector<tt::TruthTable> cand;
  SpecTransform tr;
  do {
    for (unsigned phase = 0; phase < (1u << n); ++phase) {
      tr.input_phase = phase;
      tr.output_phase = 0;
      std::uint32_t out_phase = 0;
      polarized(tr, cand, out_phase);
      if (first || std::lexicographical_compare(cand.begin(), cand.end(),
                                                best.tables.begin(),
                                                best.tables.end())) {
        best.tables = cand;
        best.transform = tr;
        best.transform.output_phase = out_phase;
        first = false;
      }
    }
  } while (std::next_permutation(tr.perm.begin(), tr.perm.begin() + n));
  best.key = spec_key(best.tables);
  return best;
}

std::vector<tt::TruthTable> apply(std::span<const tt::TruthTable> spec,
                                  const SpecTransform& transform) {
  const unsigned n = checked_arity(spec);
  if (n > tt::kMaxNpnVars && !transform.identity(n)) {
    throw std::invalid_argument(
        "cache: non-identity transform on a wide specification");
  }
  std::vector<tt::TruthTable> out;
  out.reserve(spec.size());
  for (std::size_t o = 0; o < spec.size(); ++o) {
    if (n > tt::kMaxNpnVars) {
      out.push_back(spec[o]);
    } else {
      out.push_back(npn_apply(spec[o], output_transform(transform, o)));
    }
  }
  return out;
}

std::vector<tt::TruthTable> unapply(std::span<const tt::TruthTable> canon,
                                    const SpecTransform& transform) {
  const unsigned n = checked_arity(canon);
  if (n > tt::kMaxNpnVars && !transform.identity(n)) {
    throw std::invalid_argument(
        "cache: non-identity transform on a wide specification");
  }
  std::vector<tt::TruthTable> out;
  out.reserve(canon.size());
  for (std::size_t o = 0; o < canon.size(); ++o) {
    if (n > tt::kMaxNpnVars) {
      out.push_back(canon[o]);
    } else {
      out.push_back(npn_unapply(canon[o], output_transform(transform, o)));
    }
  }
  return out;
}

rqfp::Netlist decanonicalize_netlist(const rqfp::Netlist& canon,
                                     const SpecTransform& transform) {
  const unsigned n = canon.num_pis();
  if (n > tt::kMaxNpnVars) {
    if (!transform.identity(n)) {
      throw std::invalid_argument(
          "cache: non-identity transform on a wide netlist");
    }
    return canon;
  }
  // Canonical PI i stands for original variable perm[i], complemented by
  // bit i of input_phase; output o complemented by bit o of output_phase.
  return retarget(canon, std::span(transform.perm).first(n),
                  transform.input_phase, transform.output_phase);
}

rqfp::Netlist canonicalize_netlist(const rqfp::Netlist& original,
                                   const SpecTransform& transform) {
  const unsigned n = original.num_pis();
  if (n > tt::kMaxNpnVars) {
    if (!transform.identity(n)) {
      throw std::invalid_argument(
          "cache: non-identity transform on a wide netlist");
    }
    return original;
  }
  // Inverse direction: original variable perm[i] maps to canonical
  // position i with the same complement bit.
  std::array<unsigned, tt::kMaxNpnVars> inv{};
  unsigned flips = 0;
  for (unsigned i = 0; i < n; ++i) {
    inv[transform.perm[i]] = i;
    if ((transform.input_phase >> i) & 1) {
      flips |= 1u << transform.perm[i];
    }
  }
  return retarget(original, std::span(inv).first(n), flips,
                  transform.output_phase);
}

} // namespace rcgp::cache
