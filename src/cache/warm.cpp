#include "cache/warm.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "tt/npn.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::cache {

namespace {

/// Representatives of every single-output NPN class of exactly `n`
/// inputs, as raw table words. Ascending enumeration visits the minimal
/// (= canonical) member of each class first; marking the whole orbit of
/// each new representative as seen skips the rest of the class without
/// ever running a full canonization.
std::vector<std::uint64_t> class_representatives(unsigned n) {
  const std::uint64_t num_functions = std::uint64_t{1}
                                      << (std::uint64_t{1} << n);
  const std::uint64_t mask =
      num_functions - 1; // low 2^n bits (n <= 4 here, so <= 16 bits)
  std::vector<std::uint64_t> reps;
  std::unordered_set<std::uint64_t> seen;
  std::array<unsigned, tt::kMaxNpnVars> identity{0, 1, 2, 3, 4, 5};
  for (std::uint64_t v = 0; v < num_functions; ++v) {
    if (!seen.insert(v).second) {
      continue;
    }
    reps.push_back(v);
    tt::TruthTable t(n);
    t.set_word(0, v);
    auto perm = identity;
    do {
      for (unsigned phase = 0; phase < (1u << n); ++phase) {
        tt::NpnTransform tr;
        tr.perm = perm;
        tr.input_phase = phase;
        const std::uint64_t w = npn_apply(t, tr).word(0);
        seen.insert(w);
        seen.insert(~w & mask);
      }
    } while (std::next_permutation(perm.begin(), perm.begin() + n));
  }
  return reps;
}

} // namespace

WarmResult warm(Store& store, const WarmOptions& options) {
  if (options.max_vars == 0 || options.max_vars > kMaxJointVars) {
    throw std::invalid_argument("cache: warm supports 1.." +
                                std::to_string(kMaxJointVars) + " inputs");
  }
  util::Stopwatch watch;
  WarmResult result;

  // Gather every representative first so progress has a denominator.
  std::vector<std::pair<unsigned, std::uint64_t>> reps;
  for (unsigned n = 1; n <= options.max_vars; ++n) {
    for (const std::uint64_t v : class_representatives(n)) {
      reps.emplace_back(n, v);
    }
  }
  result.classes = reps.size();

  std::uint64_t done = 0;
  for (const auto& [n, v] : reps) {
    CanonicalSpec canon;
    canon.tables.emplace_back(n);
    canon.tables[0].set_word(0, v);
    canon.key = spec_key(canon.tables);
    // The representative is the minimal class member, so the identity
    // transform (the default) is its canonization.
    if (options.skip_existing && store.contains(canon.key)) {
      ++result.skipped;
    } else {
      const exact::ExactResult ex =
          exact::exact_synthesize(canon.tables, options.exact);
      if (ex.status == exact::ExactStatus::kSolved && ex.netlist) {
        store.insert_canonical(canon, *ex.netlist, "exact");
        ++result.solved;
        if (options.save_every != 0 &&
            result.solved % options.save_every == 0) {
          store.save();
        }
      } else {
        ++result.timeouts;
      }
    }
    ++done;
    if (options.progress) {
      options.progress(done, result.classes);
    }
  }
  store.save();
  result.seconds = watch.seconds();
  return result;
}

} // namespace rcgp::cache
