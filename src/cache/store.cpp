#include "cache/store.hpp"

#include <cctype>
#include <cstdio>
#include <fcntl.h>
#include <fstream>
#include <unistd.h>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "io/rqfp_writer.hpp"
#include "obs/metrics.hpp"
#include "robust/integrity.hpp"
#include "rqfp/simulate.hpp"
#include "util/crc32.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::cache {

namespace {

constexpr const char* kMagic = "rcgp-cache";
constexpr std::uint32_t kVersion = 1;

[[noreturn]] void format_error(const std::string& detail) {
  throw robust::IntegrityError(robust::IntegrityError::Kind::kFormat, "cache",
                               detail);
}

/// Lexicographic (n_r, jjs, n_d, n_g) — the keep-best order, matching the
/// paper's primary objective with JJs as the tie-breaker.
bool better(const rqfp::Cost& a, const rqfp::Cost& b) {
  return std::tie(a.n_r, a.jjs, a.n_d, a.n_g) <
         std::tie(b.n_r, b.jjs, b.n_d, b.n_g);
}

std::string sanitize_origin(const std::string& origin) {
  std::string out = origin.empty() ? std::string("unknown") : origin;
  for (char& c : out) {
    const auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '.' && c != '_' && c != '-') {
      c = '-';
    }
  }
  return out;
}

obs::Histogram& hit_histogram() {
  static constexpr double kBounds[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                       1e-2, 1e-1, 1.0};
  return obs::registry().histogram("cache.hit.seconds", kBounds);
}

/// Best-effort fsync of `path`'s directory so the rename that published a
/// fresh store survives a power loss, not just a SIGKILL.
void sync_parent_directory(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

bool implements(const rqfp::Netlist& net,
                std::span<const tt::TruthTable> tables) {
  if (tables.empty() || net.num_pis() != tables[0].num_vars() ||
      net.num_pos() != tables.size()) {
    return false;
  }
  if (!net.validate().empty()) {
    return false;
  }
  const auto sim = rqfp::simulate(net);
  for (std::size_t o = 0; o < tables.size(); ++o) {
    if (sim[o] != tables[o]) {
      return false;
    }
  }
  return true;
}

} // namespace

Store::Store(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    return; // fresh store; save() creates the file
  }
  std::ostringstream text;
  text << in.rdbuf();
  Store loaded = parse(text.str(), path_);
  entries_ = std::move(loaded.entries_);
  obs::registry().gauge("cache.entries").set(static_cast<double>(
      entries_.size()));
}

Store::Store(Store&& other) noexcept
    : path_(std::move(other.path_)), entries_(std::move(other.entries_)) {}

Store& Store::operator=(Store&& other) noexcept {
  if (this != &other) {
    path_ = std::move(other.path_);
    entries_ = std::move(other.entries_);
  }
  return *this;
}

std::size_t Store::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool Store::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.find(key) != entries_.end();
}

std::optional<Hit> Store::lookup(std::span<const tt::TruthTable> spec) {
  util::Stopwatch watch;
  auto& reg = obs::registry();
  reg.counter("cache.lookups").inc();
  const CanonicalSpec canon = canonicalize(spec);
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(canon.key);
    if (it == entries_.end()) {
      reg.counter("cache.misses").inc();
      return std::nullopt;
    }
    entry = it->second;
  }
  Hit hit;
  hit.netlist = decanonicalize_netlist(entry.netlist, canon.transform);
  if (!implements(hit.netlist, spec)) {
    // Poisoned or stale entry: drop it and report a miss rather than
    // serving a wrong circuit.
    reg.counter("cache.verify.failures").inc();
    reg.counter("cache.misses").inc();
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(canon.key);
    reg.gauge("cache.entries").set(static_cast<double>(entries_.size()));
    return std::nullopt;
  }
  hit.cost = rqfp::cost_of(hit.netlist);
  hit.origin = entry.origin;
  hit.key = canon.key;
  reg.counter("cache.hits").inc();
  hit_histogram().observe(watch.seconds());
  return hit;
}

bool Store::insert(std::span<const tt::TruthTable> spec,
                   const rqfp::Netlist& net, const std::string& origin) {
  const CanonicalSpec canon = canonicalize(spec);
  if (!implements(net, spec)) {
    throw std::invalid_argument(
        "cache: inserted netlist does not implement the specification");
  }
  Entry entry;
  entry.tables = canon.tables;
  entry.netlist = canonicalize_netlist(net, canon.transform);
  entry.cost = rqfp::cost_of(entry.netlist);
  entry.origin = sanitize_origin(origin);
  return insert_locked(canon.key, std::move(entry));
}

bool Store::insert_canonical(const CanonicalSpec& canon,
                             const rqfp::Netlist& net,
                             const std::string& origin) {
  if (!implements(net, canon.tables)) {
    throw std::invalid_argument(
        "cache: inserted netlist does not implement the canonical tables");
  }
  Entry entry;
  entry.tables = canon.tables;
  entry.netlist = net;
  entry.cost = rqfp::cost_of(entry.netlist);
  entry.origin = sanitize_origin(origin);
  return insert_locked(canon.key, std::move(entry));
}

bool Store::insert_locked(const std::string& key, Entry entry) {
  auto& reg = obs::registry();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    entries_.emplace(key, std::move(entry));
    reg.counter("cache.inserts").inc();
    reg.gauge("cache.entries").set(static_cast<double>(entries_.size()));
    return true;
  }
  if (better(entry.cost, it->second.cost)) {
    it->second = std::move(entry);
    reg.counter("cache.updates").inc();
    return true;
  }
  reg.counter("cache.insert.kept").inc();
  return false;
}

std::vector<std::string> Store::verify() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> problems;
  for (const auto& [key, entry] : entries_) {
    const std::string bad = entry.netlist.validate();
    if (!bad.empty()) {
      problems.push_back(key + ": invalid netlist: " + bad);
      continue;
    }
    if (!implements(entry.netlist, entry.tables)) {
      problems.push_back(key + ": netlist does not implement stored tables");
      continue;
    }
    if (spec_key(entry.tables) != key) {
      problems.push_back(key + ": key does not match stored tables");
    }
  }
  return problems;
}

std::vector<std::pair<std::string, Entry>> Store::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

std::string Store::serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream payload;
  payload << "entries " << entries_.size() << '\n';
  for (const auto& [key, entry] : entries_) {
    payload << "entry " << entry.tables[0].num_vars() << ' '
            << entry.tables.size() << ' ' << entry.origin << '\n';
    payload << "tables";
    for (const auto& t : entry.tables) {
      payload << ' ' << t.to_hex();
    }
    payload << '\n';
    payload << io::write_rqfp_string(entry.netlist);
    payload << "end-entry\n";
  }
  payload << "end-cache\n";
  const std::string body = payload.str();
  char header[64];
  std::snprintf(header, sizeof(header), "%s %u %08x\n", kMagic, kVersion,
                util::crc32(body));
  return std::string(header) + body;
}

Store Store::parse(const std::string& text, const std::string& source) {
  const auto nl = text.find('\n');
  if (nl == std::string::npos) {
    format_error(source + ": missing header line");
  }
  std::istringstream header(text.substr(0, nl));
  std::string magic;
  std::uint32_t version = 0;
  std::string crc_hex;
  if (!(header >> magic >> version >> crc_hex) || magic != kMagic) {
    format_error(source + ": not an rcgp cache (bad magic)");
  }
  if (version != kVersion) {
    format_error(source + ": unsupported cache version " +
                 std::to_string(version));
  }
  const std::string body = text.substr(nl + 1);
  std::uint32_t expected = 0;
  try {
    expected = static_cast<std::uint32_t>(std::stoul(crc_hex, nullptr, 16));
  } catch (const std::exception&) {
    format_error(source + ": unreadable CRC field '" + crc_hex + "'");
  }
  const std::uint32_t actual = util::crc32(body);
  if (actual != expected) {
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "%s: CRC mismatch: header says %08x, payload hashes to %08x",
                  source.c_str(), expected, actual);
    throw robust::IntegrityError(robust::IntegrityError::Kind::kChecksum,
                                 "cache", msg);
  }

  Store store;
  std::istringstream in(body);
  std::string line;
  if (!std::getline(in, line)) {
    format_error(source + ": truncated payload");
  }
  std::istringstream count_line(line);
  std::string word;
  std::size_t count = 0;
  if (!(count_line >> word >> count) || word != "entries") {
    format_error(source + ": malformed entries line");
  }
  for (std::size_t e = 0; e < count; ++e) {
    if (!std::getline(in, line)) {
      format_error(source + ": truncated entry list");
    }
    std::istringstream entry_line(line);
    unsigned nv = 0;
    std::size_t no = 0;
    Entry entry;
    if (!(entry_line >> word >> nv >> no >> entry.origin) ||
        word != "entry") {
      format_error(source + ": malformed entry header");
    }
    if (nv > tt::TruthTable::kMaxVars || no == 0 || no > 32) {
      format_error(source + ": entry shape out of range");
    }
    if (!std::getline(in, line)) {
      format_error(source + ": truncated entry");
    }
    std::istringstream tables_line(line);
    if (!(tables_line >> word) || word != "tables") {
      format_error(source + ": malformed tables line");
    }
    std::string hex;
    while (tables_line >> hex) {
      try {
        entry.tables.push_back(tt::TruthTable::from_hex(nv, hex));
      } catch (const std::exception& ex) {
        format_error(source + ": bad table: " + ex.what());
      }
    }
    if (entry.tables.size() != no) {
      format_error(source + ": table count disagrees with entry header");
    }
    // The embedded netlist runs from ".rqfp" to ".end" inclusive.
    std::ostringstream net_text;
    bool ended = false;
    while (std::getline(in, line)) {
      net_text << line << '\n';
      if (line == ".end") {
        ended = true;
        break;
      }
    }
    if (!ended) {
      format_error(source + ": truncated netlist");
    }
    try {
      entry.netlist = io::parse_rqfp_string(net_text.str());
    } catch (const std::exception& ex) {
      format_error(source + ": bad netlist: " + ex.what());
    }
    if (entry.netlist.num_pis() != nv ||
        entry.netlist.num_pos() != entry.tables.size()) {
      format_error(source + ": netlist shape disagrees with entry header");
    }
    if (!std::getline(in, line) || line != "end-entry") {
      format_error(source + ": missing end-entry");
    }
    entry.cost = rqfp::cost_of(entry.netlist);
    const std::string key = spec_key(entry.tables);
    if (!store.entries_.emplace(key, std::move(entry)).second) {
      format_error(source + ": duplicate entry " + key);
    }
  }
  if (!std::getline(in, line) || line != "end-cache") {
    format_error(source + ": missing end-cache");
  }
  if (std::getline(in, line)) {
    format_error(source + ": trailing content after end-cache");
  }
  return store;
}

void Store::save() const {
  if (path_.empty()) {
    return;
  }
  // Serialize whole saves: every serve worker calls save() after an insert,
  // and concurrent callers share the fixed temp path — interleaved writes
  // would rename a corrupted file into place.
  const std::lock_guard<std::mutex> save_lock(save_mu_);
  const std::string data = serialize();
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("cache: cannot write " + tmp);
  }
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool synced = flushed && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (written != data.size() || !synced) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cache: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cache: cannot rename " + tmp + " to " + path_);
  }
  sync_parent_directory(path_);
  obs::registry().counter("cache.saves").inc();
}

} // namespace rcgp::cache
