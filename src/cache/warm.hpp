#pragma once

#include <cstdint>
#include <functional>

#include "cache/store.hpp"
#include "exact/exact_rqfp.hpp"

namespace rcgp::cache {

/// Options for the offline cache warmer (`rcgp cache warm`).
struct WarmOptions {
  /// Enumerate every NPN class of 1..max_vars inputs (single-output).
  /// 4 is the full paper-scale sweep (222 classes); the CI smoke runs 2-3.
  unsigned max_vars = 4;
  /// Per-class exact-synthesis budget. The defaults keep one class to a
  /// few seconds; classes that exhaust the budget are counted as timeouts
  /// and simply not stored (a later warm run can retry with more budget).
  exact::ExactParams exact;
  /// Leave entries that already exist alone (a re-run only fills gaps).
  bool skip_existing = true;
  /// Save the store after this many new entries (and once at the end);
  /// 0 saves only at the end.
  std::uint64_t save_every = 25;
  /// Optional progress callback: (classes_done, classes_total).
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

struct WarmResult {
  std::uint64_t classes = 0;  ///< distinct NPN classes enumerated
  std::uint64_t solved = 0;   ///< classes newly stored
  std::uint64_t timeouts = 0; ///< classes the exact budget could not crack
  std::uint64_t skipped = 0;  ///< classes already present (skip_existing)
  double seconds = 0.0;
};

/// Fills `store` with exact-synthesis results for every single-output NPN
/// class of at most `max_vars` inputs: enumerates all 2^2^n functions,
/// canonicalizes each to find the class representatives, runs
/// exact::exact_synthesize on each representative, and inserts the optimal
/// netlists. The store is saved periodically so an interrupted warm run
/// keeps its progress. Throws std::invalid_argument when max_vars is 0 or
/// exceeds kMaxJointVars.
WarmResult warm(Store& store, const WarmOptions& options = {});

} // namespace rcgp::cache
