#pragma once

#include <span>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "core/optimizer.hpp"
#include "obs/phase.hpp"
#include "rqfp/cost.hpp"
#include "rqfp/netlist.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::core {

/// Options for the end-to-end RCGP synthesis flow (Fig. 2 of the paper):
/// RTL/AIG input → logic synthesis (resyn2) → AQFP-oriented MIG →
/// RQFP netlist conversion → splitter insertion → CGP optimization →
/// buffer insertion.
struct FlowOptions {
  bool run_aig_optimization = true; // ABC resyn2 equivalent
  bool run_fraig = false;           // SAT sweeping after resyn2
  bool run_mig_optimization = true; // mockturtle aqfp_resynthesis equivalent
  /// Extension: pack MIG nodes with shared fanins into one RQFP gate
  /// (one majority row each). Off by default — the paper's baseline maps
  /// one node per gate.
  bool pack_shared_fanins = false;
  bool run_cgp = true;              // the paper's contribution
  /// Extension: after CGP, replace small windows with SAT-proven optimal
  /// sub-circuits (closes the gap to the exact optima at laptop budgets).
  bool run_exact_polish = false;
  /// Continue the CGP phase from the configured checkpoint path instead
  /// of starting fresh (see docs/ROBUSTNESS.md). The checkpoint must stem
  /// from the same specification and evolve configuration. Only
  /// Algorithm::kEvolve supports checkpointing.
  bool resume = false;
  /// Which optimizer the CGP phase runs (evolve | multistart | anneal |
  /// window); all of them are configured below and share `limits`.
  Algorithm optimizer = Algorithm::kEvolve;
  /// evolve.budget doubles as the flow-level budget: a cooperative stop
  /// skips the remaining optional phases (the mapping phases still run so
  /// the result is always a valid netlist), and evolve.paranoia ≥
  /// kBoundaries re-validates the netlist at flow phase boundaries.
  EvolveParams evolve;
  AnnealParams anneal;           // Algorithm::kAnneal
  WindowParams window;           // Algorithm::kWindow geometry
  unsigned restarts = 4;         // Algorithm::kMultistart
  /// Island-model scale-out for the CGP phase (docs/ISLANDS.md). With
  /// islands > 1 and Algorithm::kEvolve, the phase runs an island fleet;
  /// `resume` above then restores the fleet from island.state_dir instead
  /// of from a single checkpoint file.
  IslandSettings island;
  /// Cross-algorithm limits (deadline, stop token, checkpointing); set
  /// fields override the per-algorithm params and also bound the
  /// flow-level phases.
  RunLimits limits;
  rqfp::BufferSchedule schedule = rqfp::BufferSchedule::kAsap;
  /// Optional CGP starting point (not owned), e.g. a de-canonicalized
  /// synthesis-cache hit for the same function class. When it is a valid
  /// netlist over the right PIs/POs that implements the specification, the
  /// CGP phase evolves from it instead of the freshly mapped baseline;
  /// otherwise it is ignored (the `flow.seed.used` / `flow.seed.rejected`
  /// counters record which happened). The mapping phases still run, so
  /// `initial`/`initial_cost` keep their meaning as the paper's baseline.
  const rqfp::Netlist* cgp_seed = nullptr;
};

struct FlowResult {
  /// The initialization baseline: RQFP netlist right after conversion and
  /// splitter insertion (first baseline in Tables 1-2).
  rqfp::Netlist initial;
  rqfp::Cost initial_cost;

  /// After CGP optimization (equals `initial` when run_cgp is false).
  rqfp::Netlist optimized;
  rqfp::Cost optimized_cost;

  /// Full facade result of the CGP phase (whichever algorithm ran).
  OptimizeResult optimization;
  /// Evolve-specific detail — alias of optimization.evolve, kept for the
  /// historical call sites (populated for kEvolve / kMultistart only).
  EvolveResult evolution;
  double seconds_total = 0.0;

  /// Per-phase wall-clock breakdown (aig-opt / fraig / mig-opt / rqfp-map /
  /// splitter / spec-sim / cgp / exact-polish / cost). Depth-0 records
  /// partition seconds_total; nested records (depth > 0) refine them.
  std::vector<obs::PhaseRecord> phases;

  /// Seconds of the named top-level phase (0.0 when the phase did not run).
  double phase_seconds(std::string_view name) const;
};

/// Builds an AIG computing the given per-output truth tables (ISOP-factored
/// forms over fresh PIs) — the entry point for truth-table-specified
/// benchmarks.
aig::Aig aig_from_tables(std::span<const tt::TruthTable> spec,
                         std::span<const std::string> po_names = {});

/// Full flow from an AIG (parsed from Verilog/BLIF/AIGER or built
/// programmatically). PIs must number at most tt::TruthTable::kMaxVars.
FlowResult synthesize(const aig::Aig& input, const FlowOptions& options = {});

/// Full flow from a truth-table specification.
FlowResult synthesize(std::span<const tt::TruthTable> spec,
                      const FlowOptions& options = {});

/// Full flow from a circuit file in any format the io facade reads
/// (io::read_network with Format::kAuto detection): AIG sources enter the
/// complete Fig. 2 flow directly, table formats (.pla/.real) and .rqfp
/// netlists enter through their exhaustive truth tables. Throws
/// io::ParseError on unreadable or malformed input.
FlowResult synthesize_file(const std::string& path,
                           const FlowOptions& options = {});

} // namespace rcgp::core
