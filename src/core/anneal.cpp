#include "core/anneal.hpp"

#include <cmath>
#include <stdexcept>

#include "cec/sim_cec.hpp"
#include "core/shrink.hpp"
#include "rqfp/cost.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::core {

double anneal_energy(const rqfp::Netlist& net,
                     std::span<const tt::TruthTable> spec,
                     const FitnessOptions& options) {
  const auto sim = cec::sim_check(net, spec);
  const auto cost = rqfp::cost_of(net, options.schedule);
  // Mismatched output bits dominate everything; then the paper's
  // lexicographic order flattened with well-separated weights.
  return 1e9 * static_cast<double>(sim.mismatching_bits) +
         1e6 * cost.n_r + 1e3 * cost.n_g + cost.n_b;
}

AnnealResult anneal(const rqfp::Netlist& initial,
                    std::span<const tt::TruthTable> spec,
                    const AnnealParams& params) {
  if (spec.size() != initial.num_pos()) {
    throw std::invalid_argument("anneal: spec/PO count mismatch");
  }
  util::Stopwatch watch;
  util::Rng rng(params.seed);

  AnnealResult result;
  rqfp::Netlist current = shrink(initial);
  double current_energy = anneal_energy(current, spec, params.fitness);
  Fitness init_fit = evaluate(current, spec, params.fitness);
  if (!init_fit.functionally_correct()) {
    throw std::invalid_argument("anneal: initial netlist incorrect");
  }
  result.best = current;
  result.best_fitness = init_fit;

  const double t0 = params.initial_temperature;
  const double t1 = params.final_temperature;
  for (std::uint64_t step = 0; step < params.steps; ++step) {
    ++result.steps_run;
    const double progress =
        params.steps > 1
            ? static_cast<double>(step) / static_cast<double>(params.steps - 1)
            : 1.0;
    const double temperature = t0 * std::pow(t1 / t0, progress);

    rqfp::Netlist candidate = current;
    mutate(candidate, rng, params.mutation);
    const double candidate_energy =
        anneal_energy(candidate, spec, params.fitness);
    const double delta = candidate_energy - current_energy;
    const bool accept =
        delta <= 0 || rng.uniform01() < std::exp(-delta / (1e3 * temperature));
    if (!accept) {
      continue;
    }
    ++result.accepted;
    if (delta > 0) {
      ++result.uphill_accepted;
    }
    current = std::move(candidate);
    current_energy = candidate_energy;

    const Fitness fit = evaluate(current, spec, params.fitness);
    if (fit.functionally_correct() &&
        fit.strictly_better(result.best_fitness)) {
      result.best = shrink(current);
      result.best_fitness = fit;
    }
  }
  result.seconds = watch.seconds();
  return result;
}

} // namespace rcgp::core
