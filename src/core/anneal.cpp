#include "core/anneal.hpp"

#include <cmath>
#include <stdexcept>

#include "cec/sim_cec.hpp"
#include "core/shrink.hpp"
#include "obs/metrics.hpp"
#include "rqfp/cost.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::core {

double anneal_energy(const rqfp::Netlist& net,
                     std::span<const tt::TruthTable> spec,
                     const FitnessOptions& options) {
  const auto sim = cec::sim_check(net, spec);
  const auto cost = rqfp::cost_of(net, options.schedule);
  // Mismatched output bits dominate everything; then the paper's
  // lexicographic order flattened with well-separated weights.
  return 1e9 * static_cast<double>(sim.mismatching_bits) +
         1e6 * cost.n_r + 1e3 * cost.n_g + cost.n_b;
}

AnnealResult detail::anneal_impl(const rqfp::Netlist& initial,
                                 std::span<const tt::TruthTable> spec,
                                 const AnnealParams& params) {
  if (spec.size() != initial.num_pos()) {
    throw std::invalid_argument("anneal: spec/PO count mismatch");
  }
  static obs::Counter& c_runs = obs::registry().counter("anneal.runs");
  static obs::Counter& c_steps = obs::registry().counter("anneal.steps");
  static obs::Counter& c_accepted =
      obs::registry().counter("anneal.accepted");
  static obs::Counter& c_uphill =
      obs::registry().counter("anneal.uphill_accepted");

  util::Stopwatch watch;
  util::Rng rng(params.seed);
  obs::TraceSink* const trace = params.trace;

  AnnealResult result;
  rqfp::Netlist current = shrink(initial);
  double current_energy = anneal_energy(current, spec, params.fitness);
  // Mutation preserves the shape, so one cost cache follows the whole
  // walk: candidates are priced with cost_of_delta against `current` and
  // committed with update_cost_cache on acceptance.
  rqfp::CostCache cost_cache;
  rqfp::build_cost_cache(current, params.fitness.schedule, cost_cache);
  Fitness init_fit = evaluate(current, spec, params.fitness);
  if (!init_fit.functionally_correct()) {
    throw std::invalid_argument("anneal: initial netlist incorrect");
  }
  result.best = current;
  result.best_fitness = init_fit;
  c_runs.inc();

  if (trace) {
    trace->event("run_start")
        .field("optimizer", "anneal")
        .field("steps", params.steps)
        .field("t0", params.initial_temperature)
        .field("t1", params.final_temperature)
        .field("seed", params.seed)
        .field("success_rate", init_fit.success_rate)
        .field("n_r", init_fit.n_r)
        .field("n_g", init_fit.n_g)
        .field("n_b", init_fit.n_b);
  }

  const double t0 = params.initial_temperature;
  const double t1 = params.final_temperature;
  for (std::uint64_t step = 0; step < params.steps; ++step) {
    if (params.budget.stop_requested()) {
      result.stop_reason = robust::StopReason::kStopRequested;
      break;
    }
    if (params.budget.max_generations &&
        step >= params.budget.max_generations) {
      result.stop_reason = robust::StopReason::kGenerationBudget;
      break;
    }
    if (params.budget.max_evaluations &&
        result.steps_run >= params.budget.max_evaluations) {
      result.stop_reason = robust::StopReason::kEvaluationBudget;
      break;
    }
    if (params.budget.deadline_seconds > 0.0 &&
        watch.seconds() > params.budget.deadline_seconds) {
      result.stop_reason = robust::StopReason::kTimeLimit;
      break;
    }
    ++result.steps_run;
    const double progress =
        params.steps > 1
            ? static_cast<double>(step) / static_cast<double>(params.steps - 1)
            : 1.0;
    const double temperature = t0 * std::pow(t1 / t0, progress);

    rqfp::Netlist candidate = current;
    mutate(candidate, rng, params.mutation);
    const auto cand_sim = cec::sim_check(candidate, spec);
    const auto cand_cost = rqfp::cost_of_delta(current, candidate, cost_cache);
    const double candidate_energy =
        1e9 * static_cast<double>(cand_sim.mismatching_bits) +
        1e6 * cand_cost.n_r + 1e3 * cand_cost.n_g + cand_cost.n_b;
    const double delta = candidate_energy - current_energy;
    const bool accept =
        delta <= 0 || rng.uniform01() < std::exp(-delta / (1e3 * temperature));
    if (trace && params.trace_heartbeat &&
        (step + 1) % params.trace_heartbeat == 0) {
      trace->event("heartbeat")
          .field("step", step)
          .field("temperature", temperature)
          .field("energy", current_energy)
          .field("accepted", result.accepted)
          .field("uphill_accepted", result.uphill_accepted)
          .field("elapsed_s", watch.seconds());
    }
    if (!accept) {
      continue;
    }
    ++result.accepted;
    if (delta > 0) {
      ++result.uphill_accepted;
    }
    rqfp::update_cost_cache(current, candidate, cost_cache);
    current = std::move(candidate);
    current_energy = candidate_energy;

    const Fitness fit = evaluate(current, spec, params.fitness);
    if (fit.functionally_correct() &&
        fit.strictly_better(result.best_fitness)) {
      result.best = shrink(current);
      result.best_fitness = fit;
      if (trace) {
        trace->event("improvement")
            .field("step", step)
            .field("energy", current_energy)
            .field("elapsed_s", watch.seconds())
            .field("success_rate", fit.success_rate)
            .field("n_r", fit.n_r)
            .field("n_g", fit.n_g)
            .field("n_b", fit.n_b);
      }
    }
  }
  result.seconds = watch.seconds();
  c_steps.inc(result.steps_run);
  c_accepted.inc(result.accepted);
  c_uphill.inc(result.uphill_accepted);
  if (trace) {
    trace->event("run_end")
        .field("optimizer", "anneal")
        .field("reason", std::string_view(to_string(result.stop_reason)))
        .field("steps_run", result.steps_run)
        .field("accepted", result.accepted)
        .field("uphill_accepted", result.uphill_accepted)
        .field("elapsed_s", result.seconds)
        .field("success_rate", result.best_fitness.success_rate)
        .field("n_r", result.best_fitness.n_r)
        .field("n_g", result.best_fitness.n_g)
        .field("n_b", result.best_fitness.n_b);
    trace->flush();
  }
  return result;
}

} // namespace rcgp::core
