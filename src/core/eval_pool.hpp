#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/fitness.hpp"
#include "core/mutation.hpp"
#include "rqfp/netlist.hpp"
#include "rqfp/simulate.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::core {

/// One evaluated offspring (slot k of a generation).
struct OffspringResult {
  rqfp::Netlist child;
  Fitness fitness;
  MutationStats stats;
};

/// One generation's worth of work for the pool.
struct EvalJob {
  const rqfp::Netlist* parent = nullptr;
  std::span<const tt::TruthTable> spec;
  MutationParams mutation;
  FitnessOptions fitness;
  std::uint64_t seed = 0;
  std::uint64_t generation = 0;
  unsigned lambda = 0;
  /// Polled between offspring on every worker. Once it returns true the
  /// remaining offspring are skipped, evaluate_generation returns false,
  /// and the partially-filled results must be discarded — the abort
  /// conditions (stop token, deadline) are monotone, so the caller can
  /// re-derive the reason deterministically at the generation boundary.
  std::function<bool()> should_abort;
};

/// Persistent worker pool for deterministic λ-parallel offspring
/// evaluation (docs/PARALLELISM.md).
///
/// Offspring k of generation g is a pure function of (seed, g, k, parent):
/// it mutates its own parent copy under the counter-based RNG stream
/// util::Rng::stream(seed, g, k) and evaluates the result. Work is claimed
/// dynamically (first-free-worker), but since no offspring reads another's
/// state, the results are bit-identical for every thread count — including
/// threads == 1, which runs inline on the caller thread through the same
/// code path and is the reference "sequential loop".
///
/// Workers claim offspring in fixed blocks of kBlock and evaluate each
/// block through the λ-batched dirty-cone path (core::evaluate_delta_batch):
/// one gate-major simulation pass over the whole block against the
/// worker's read-only base SimCache. Per-offspring cost still scales with
/// the mutated cone, but the base port tables are walked once per gate for
/// the block instead of once per offspring, and there is no per-sibling
/// undo/restore. Block partitioning cannot affect results — each offspring
/// is a pure function of (seed, g, k, parent) and the batched simulation
/// is bit-identical to the sequential one — so any thread count, block
/// size, and claim order produce the same generation.
class EvalPool {
public:
  /// threads must be >= 1; threads - 1 worker threads are spawned once
  /// and live until destruction (threads == 1 spawns none).
  explicit EvalPool(unsigned threads);
  ~EvalPool();

  EvalPool(const EvalPool&) = delete;
  EvalPool& operator=(const EvalPool&) = delete;

  unsigned threads() const { return threads_; }

  /// Offspring claimed per worker grab — the λ-batch width of one
  /// evaluate_delta_batch call. Small enough that late workers still get
  /// work at common λ, large enough to amortize the gate-major pass.
  static constexpr unsigned kBlock = 4;

  /// Picks the pool width: `requested` (0 = hardware concurrency),
  /// clamped to [1, lambda] — more workers than offspring never help.
  static unsigned resolve_threads(unsigned requested, unsigned lambda);

  /// Evaluates offspring 0..job.lambda-1 into out[k]; blocks until every
  /// slot is done. Returns false when job.should_abort tripped (the
  /// generation is incomplete and must be discarded by the caller).
  bool evaluate_generation(const EvalJob& job,
                           std::span<OffspringResult> out);

  /// Cumulative busy-fraction of the pool since construction:
  /// sum(per-worker busy seconds) / (generation wall seconds * threads).
  /// 1.0 means every thread was working the entire time.
  double utilization() const;

private:
  struct Scratch;

  void worker_main(unsigned index);
  void run_tasks(Scratch& scratch, const EvalJob& job, OffspringResult* out);
  void evaluate_block(Scratch& scratch, const EvalJob& job,
                      OffspringResult* out, unsigned k0, unsigned k1);

  unsigned threads_ = 1;
  std::vector<std::unique_ptr<Scratch>> scratch_;
  std::vector<std::thread> workers_;

  // Job hand-off: job_/out_/counters are published under mutex_ before
  // cv_start_ wakes the workers; completion is an atomic count with
  // release/acquire pairing so the caller sees every out_[k] write.
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t job_id_ = 0;
  bool shutdown_ = false;
  unsigned active_workers_ = 0;
  const EvalJob* job_ = nullptr;
  OffspringResult* out_ = nullptr;
  std::atomic<unsigned> next_task_{0};
  std::atomic<unsigned> done_tasks_{0};
  std::atomic<bool> aborted_{false};

  double busy_seconds_ = 0.0;
  double span_seconds_ = 0.0;
};

} // namespace rcgp::core
