#include "core/shrink.hpp"

#include <algorithm>

namespace rcgp::core {

rqfp::Netlist shrink(const rqfp::Netlist& net) {
  return net.remove_dead_gates();
}

std::uint32_t count_useless_gates(const rqfp::Netlist& net) {
  const auto live = net.live_gates();
  return static_cast<std::uint32_t>(
      std::count(live.begin(), live.end(), false));
}

} // namespace rcgp::core
