#include "core/evolve.hpp"

#include <stdexcept>

#include "cec/sat_cec.hpp"
#include "core/shrink.hpp"
#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::core {

namespace {

void put_fitness(obs::TraceEvent& ev, const Fitness& f) {
  ev.field("success_rate", f.success_rate)
      .field("n_r", f.n_r)
      .field("n_g", f.n_g)
      .field("n_b", f.n_b);
}

void put_mix(obs::TraceEvent& ev, const char* key, const MutationMix& m) {
  ev.begin(key)
      .field("mutations", m.mutations)
      .field("genes_changed", m.genes_changed)
      .field("swaps", m.swaps)
      .field("direct_assigns", m.direct_assigns)
      .field("config_flips", m.config_flips)
      .field("po_moves", m.po_moves)
      .field("skipped_infeasible", m.skipped_infeasible)
      .end();
}

constexpr double kImprovementGapBounds[] = {1,    10,    100,   1000,
                                            1e4,  1e5,   1e6};

} // namespace

EvolveResult evolve(const rqfp::Netlist& initial,
                    std::span<const tt::TruthTable> spec,
                    const EvolveParams& params) {
  if (spec.size() != initial.num_pos()) {
    throw std::invalid_argument("evolve: spec/PO count mismatch");
  }
  // Registered once; afterwards only relaxed atomic adds touch these.
  static obs::Counter& c_runs = obs::registry().counter("evolve.runs");
  static obs::Counter& c_generations =
      obs::registry().counter("evolve.generations");
  static obs::Counter& c_evaluations =
      obs::registry().counter("evolve.evaluations");
  static obs::Counter& c_improvements =
      obs::registry().counter("evolve.improvements");
  static obs::Counter& c_sat_confirmations =
      obs::registry().counter("evolve.sat_confirmations");
  static obs::Histogram& h_gap = obs::registry().histogram(
      "evolve.generations_between_improvements", kImprovementGapBounds);

  util::Stopwatch watch;
  util::Rng rng(params.seed);
  obs::TraceSink* const trace = params.trace;

  EvolveResult result;
  rqfp::Netlist parent =
      params.disable_shrink ? initial : shrink(initial);
  Fitness parent_fit = evaluate(parent, spec, params.fitness);
  ++result.evaluations;
  if (!parent_fit.functionally_correct()) {
    throw std::invalid_argument(
        "evolve: initial netlist does not implement the specification");
  }
  c_runs.inc();

  if (trace) {
    auto ev = trace->event("run_start");
    ev.field("optimizer", "evolve")
        .field("generations", params.generations)
        .field("lambda", static_cast<std::uint64_t>(params.lambda))
        .field("mu", params.mutation.mu)
        .field("seed", params.seed);
    put_fitness(ev, parent_fit);
  }

  std::uint64_t since_improvement = 0;
  std::uint64_t last_improvement_gen = 0;
  for (std::uint64_t gen = 0; gen < params.generations; ++gen) {
    ++result.generations_run;

    rqfp::Netlist best_child;
    Fitness best_child_fit;
    MutationStats best_child_stats;
    bool have_child = false;
    for (unsigned k = 0; k < params.lambda; ++k) {
      rqfp::Netlist child = parent;
      const MutationStats stats = mutate(child, rng, params.mutation);
      result.mutations_attempted.add(stats);
      const Fitness fit = evaluate(child, spec, params.fitness);
      ++result.evaluations;
      if (!have_child || fit.better_or_equal(best_child_fit)) {
        best_child = std::move(child);
        best_child_fit = fit;
        best_child_stats = stats;
        have_child = true;
      }
    }

    if (have_child && best_child_fit.better_or_equal(parent_fit)) {
      const bool improved = best_child_fit.strictly_better(parent_fit);
      bool accept = true;
      if (improved && params.sat_verify_improvements) {
        // Formal confirmation (paper §3.2.1 pairs simulation with formal
        // verification before trusting a candidate).
        const auto cec =
            cec::sat_check(best_child, spec, params.sat_conflict_budget);
        ++result.sat_confirmations;
        result.sat_cec_conflicts += cec.conflicts;
        accept = cec.verdict != cec::CecVerdict::kNotEquivalent;
      }
      if (accept) {
        parent = params.disable_shrink ? std::move(best_child)
                                       : shrink(best_child);
        parent_fit = best_child_fit;
        result.mutations_accepted.add(best_child_stats);
        if (improved) {
          ++result.improvements;
          since_improvement = 0;
          h_gap.observe(static_cast<double>(gen - last_improvement_gen));
          last_improvement_gen = gen;
          if (trace) {
            auto ev = trace->event("improvement");
            ev.field("gen", gen)
                .field("evaluations", result.evaluations)
                .field("improvements", result.improvements)
                .field("elapsed_s", watch.seconds());
            put_fitness(ev, parent_fit);
          }
          if (params.on_improvement) {
            params.on_improvement(gen, parent_fit);
          }
        } else {
          ++since_improvement;
        }
      } else {
        ++since_improvement;
      }
    } else {
      ++since_improvement;
    }

    if (trace && params.trace_heartbeat &&
        (gen + 1) % params.trace_heartbeat == 0) {
      auto ev = trace->event("heartbeat");
      ev.field("gen", gen)
          .field("evaluations", result.evaluations)
          .field("improvements", result.improvements)
          .field("elapsed_s", watch.seconds());
      put_fitness(ev, parent_fit);
    }

    if (params.stagnation_limit && since_improvement >= params.stagnation_limit) {
      break;
    }
    if (params.time_limit_seconds > 0.0 && (gen & 63) == 0 &&
        watch.seconds() > params.time_limit_seconds) {
      break;
    }
  }

  result.best = std::move(parent);
  result.best_fitness = parent_fit;
  result.seconds = watch.seconds();

  c_generations.inc(result.generations_run);
  c_evaluations.inc(result.evaluations);
  c_improvements.inc(result.improvements);
  c_sat_confirmations.inc(result.sat_confirmations);

  if (trace) {
    auto ev = trace->event("run_end");
    ev.field("optimizer", "evolve")
        .field("generations_run", result.generations_run)
        .field("evaluations", result.evaluations)
        .field("improvements", result.improvements)
        .field("sat_confirmations", result.sat_confirmations)
        .field("sat_cec_conflicts", result.sat_cec_conflicts)
        .field("elapsed_s", result.seconds);
    put_fitness(ev, result.best_fitness);
    put_mix(ev, "mutations_attempted", result.mutations_attempted);
    put_mix(ev, "mutations_accepted", result.mutations_accepted);
    trace->flush();
  }
  return result;
}

EvolveResult evolve_multistart(const rqfp::Netlist& initial,
                               std::span<const tt::TruthTable> spec,
                               const EvolveParams& params,
                               unsigned restarts) {
  if (restarts == 0) {
    restarts = 1;
  }
  util::Stopwatch watch;
  EvolveParams per_run = params;
  per_run.generations = std::max<std::uint64_t>(1, params.generations / restarts);
  if (params.time_limit_seconds > 0.0) {
    per_run.time_limit_seconds = params.time_limit_seconds / restarts;
  }

  EvolveResult best;
  bool have_best = false;
  for (unsigned r = 0; r < restarts; ++r) {
    per_run.seed = params.seed + r;
    if (params.trace) {
      params.trace->event("restart")
          .field("index", static_cast<std::uint64_t>(r))
          .field("of", static_cast<std::uint64_t>(restarts))
          .field("seed", per_run.seed);
    }
    EvolveResult run = evolve(initial, spec, per_run);
    const bool better =
        !have_best || run.best_fitness.strictly_better(best.best_fitness);
    // Accumulate bookkeeping across runs.
    const auto generations = (have_best ? best.generations_run : 0) +
                             run.generations_run;
    const auto evaluations =
        (have_best ? best.evaluations : 0) + run.evaluations;
    const auto improvements =
        (have_best ? best.improvements : 0) + run.improvements;
    const auto confirmations =
        (have_best ? best.sat_confirmations : 0) + run.sat_confirmations;
    const auto conflicts =
        (have_best ? best.sat_cec_conflicts : 0) + run.sat_cec_conflicts;
    MutationMix attempted = have_best ? best.mutations_attempted
                                      : MutationMix{};
    MutationMix accepted = have_best ? best.mutations_accepted
                                     : MutationMix{};
    attempted += run.mutations_attempted;
    accepted += run.mutations_accepted;
    if (better) {
      best = std::move(run);
      have_best = true;
    }
    best.generations_run = generations;
    best.evaluations = evaluations;
    best.improvements = improvements;
    best.sat_confirmations = confirmations;
    best.sat_cec_conflicts = conflicts;
    best.mutations_attempted = attempted;
    best.mutations_accepted = accepted;
  }
  best.seconds = watch.seconds();
  return best;
}

} // namespace rcgp::core
