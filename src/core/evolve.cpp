#include "core/evolve.hpp"

#include <stdexcept>

#include "cec/sat_cec.hpp"
#include "core/shrink.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::core {

EvolveResult evolve(const rqfp::Netlist& initial,
                    std::span<const tt::TruthTable> spec,
                    const EvolveParams& params) {
  if (spec.size() != initial.num_pos()) {
    throw std::invalid_argument("evolve: spec/PO count mismatch");
  }
  util::Stopwatch watch;
  util::Rng rng(params.seed);

  EvolveResult result;
  rqfp::Netlist parent =
      params.disable_shrink ? initial : shrink(initial);
  Fitness parent_fit = evaluate(parent, spec, params.fitness);
  ++result.evaluations;
  if (!parent_fit.functionally_correct()) {
    throw std::invalid_argument(
        "evolve: initial netlist does not implement the specification");
  }

  std::uint64_t since_improvement = 0;
  for (std::uint64_t gen = 0; gen < params.generations; ++gen) {
    ++result.generations_run;

    rqfp::Netlist best_child;
    Fitness best_child_fit;
    bool have_child = false;
    for (unsigned k = 0; k < params.lambda; ++k) {
      rqfp::Netlist child = parent;
      mutate(child, rng, params.mutation);
      const Fitness fit = evaluate(child, spec, params.fitness);
      ++result.evaluations;
      if (!have_child || fit.better_or_equal(best_child_fit)) {
        best_child = std::move(child);
        best_child_fit = fit;
        have_child = true;
      }
    }

    if (have_child && best_child_fit.better_or_equal(parent_fit)) {
      const bool improved = best_child_fit.strictly_better(parent_fit);
      bool accept = true;
      if (improved && params.sat_verify_improvements) {
        // Formal confirmation (paper §3.2.1 pairs simulation with formal
        // verification before trusting a candidate).
        const auto cec =
            cec::sat_check(best_child, spec, params.sat_conflict_budget);
        ++result.sat_confirmations;
        accept = cec.verdict != cec::CecVerdict::kNotEquivalent;
      }
      if (accept) {
        parent = params.disable_shrink ? std::move(best_child)
                                       : shrink(best_child);
        parent_fit = best_child_fit;
        if (improved) {
          ++result.improvements;
          since_improvement = 0;
          if (params.on_improvement) {
            params.on_improvement(gen, parent_fit);
          }
        } else {
          ++since_improvement;
        }
      } else {
        ++since_improvement;
      }
    } else {
      ++since_improvement;
    }

    if (params.stagnation_limit && since_improvement >= params.stagnation_limit) {
      break;
    }
    if (params.time_limit_seconds > 0.0 && (gen & 63) == 0 &&
        watch.seconds() > params.time_limit_seconds) {
      break;
    }
  }

  result.best = std::move(parent);
  result.best_fitness = parent_fit;
  result.seconds = watch.seconds();
  return result;
}

EvolveResult evolve_multistart(const rqfp::Netlist& initial,
                               std::span<const tt::TruthTable> spec,
                               const EvolveParams& params,
                               unsigned restarts) {
  if (restarts == 0) {
    restarts = 1;
  }
  util::Stopwatch watch;
  EvolveParams per_run = params;
  per_run.generations = std::max<std::uint64_t>(1, params.generations / restarts);
  if (params.time_limit_seconds > 0.0) {
    per_run.time_limit_seconds = params.time_limit_seconds / restarts;
  }

  EvolveResult best;
  bool have_best = false;
  for (unsigned r = 0; r < restarts; ++r) {
    per_run.seed = params.seed + r;
    EvolveResult run = evolve(initial, spec, per_run);
    const bool better =
        !have_best || run.best_fitness.strictly_better(best.best_fitness);
    // Accumulate bookkeeping across runs.
    const auto generations = (have_best ? best.generations_run : 0) +
                             run.generations_run;
    const auto evaluations =
        (have_best ? best.evaluations : 0) + run.evaluations;
    const auto improvements =
        (have_best ? best.improvements : 0) + run.improvements;
    const auto confirmations =
        (have_best ? best.sat_confirmations : 0) + run.sat_confirmations;
    if (better) {
      best = std::move(run);
      have_best = true;
    }
    best.generations_run = generations;
    best.evaluations = evaluations;
    best.improvements = improvements;
    best.sat_confirmations = confirmations;
  }
  best.seconds = watch.seconds();
  return best;
}

} // namespace rcgp::core
