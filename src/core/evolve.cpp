#include "core/evolve.hpp"

#include <stdexcept>
#include <vector>

#include "cec/sat_cec.hpp"
#include "core/eval_pool.hpp"
#include "core/shrink.hpp"
#include "io/rqfp_writer.hpp"
#include "obs/metrics.hpp"
#include "robust/checkpoint.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::core {

namespace {

void put_fitness(obs::TraceEvent& ev, const Fitness& f) {
  ev.field("success_rate", f.success_rate)
      .field("n_r", f.n_r)
      .field("n_g", f.n_g)
      .field("n_b", f.n_b);
}

void put_mix(obs::TraceEvent& ev, const char* key, const MutationMix& m) {
  ev.begin(key)
      .field("mutations", m.mutations)
      .field("genes_changed", m.genes_changed)
      .field("swaps", m.swaps)
      .field("direct_assigns", m.direct_assigns)
      .field("config_flips", m.config_flips)
      .field("po_moves", m.po_moves)
      .field("skipped_infeasible", m.skipped_infeasible)
      .end();
}

constexpr double kImprovementGapBounds[] = {1,    10,    100,   1000,
                                            1e4,  1e5,   1e6};

/// Stable run_end reason string; a resumed run that consumes its full
/// budget reports "resumed-complete" so the kill/resume smoke test can
/// assert the whole chain finished.
std::string run_end_reason(robust::StopReason reason, bool resumed) {
  if (resumed && reason == robust::StopReason::kCompleted) {
    return "resumed-complete";
  }
  return to_string(reason);
}

/// Shared implementation behind evolve() and evolve_resume(). When
/// `resume` is non-null the loop continues from the checkpointed state;
/// all result counters are then cumulative across the resume chain.
///
/// Offspring are evaluated λ-parallel through an EvalPool. Every stateful
/// decision (budget checks, checkpoints, selection, acceptance) happens at
/// generation boundaries on this thread, and offspring k of generation g
/// draws from the counter-based stream (seed, g, k), so the run is
/// bit-identical for every thread count and never needs to persist RNG
/// engine state.
EvolveResult evolve_run(const rqfp::Netlist& initial,
                        std::span<const tt::TruthTable> spec,
                        const EvolveParams& params,
                        const robust::EvolveCheckpoint* resume) {
  if (spec.size() != initial.num_pos()) {
    throw std::invalid_argument("evolve: spec/PO count mismatch");
  }
  // Registered once; afterwards only relaxed atomic adds touch these.
  static obs::Counter& c_runs = obs::registry().counter("evolve.runs");
  static obs::Counter& c_generations =
      obs::registry().counter("evolve.generations");
  static obs::Counter& c_evaluations =
      obs::registry().counter("evolve.evaluations");
  static obs::Counter& c_improvements =
      obs::registry().counter("evolve.improvements");
  static obs::Counter& c_sat_confirmations =
      obs::registry().counter("evolve.sat_confirmations");
  static obs::Histogram& h_gap = obs::registry().histogram(
      "evolve.generations_between_improvements", kImprovementGapBounds);

  util::Stopwatch watch;
  // Resumed runs keep counting the checkpointed wall clock, so deadlines
  // and the reported seconds span the whole resume chain.
  const double base_seconds = resume ? resume->elapsed_seconds : 0.0;
  const auto elapsed = [&] { return base_seconds + watch.seconds(); };

  obs::TraceSink* const trace = params.trace;

  EvolveResult result;
  result.resumed = resume != nullptr;
  rqfp::Netlist parent;
  Fitness parent_fit;
  if (resume) {
    parent = resume->parent;
    // Re-evaluating restores Fitness::objective (not serialized) and
    // cross-checks the checkpointed netlist against the checkpointed
    // fitness — a corrupted-but-CRC-valid state never continues silently.
    // Not counted: the checkpoint already accounts for this evaluation.
    parent_fit = evaluate(parent, spec, params.fitness);
    if (!parent_fit.functionally_correct()) {
      throw robust::IntegrityError(
          robust::IntegrityError::Kind::kFunctional, "evolve:resume",
          "checkpointed parent does not implement the specification",
          io::write_rqfp_string(parent));
    }
    if (parent_fit.success_rate != resume->fitness.success_rate ||
        parent_fit.n_r != resume->fitness.n_r ||
        parent_fit.n_g != resume->fitness.n_g ||
        parent_fit.n_b != resume->fitness.n_b) {
      throw robust::IntegrityError(
          robust::IntegrityError::Kind::kFunctional, "evolve:resume",
          "checkpointed fitness " + resume->fitness.to_string() +
              " does not match re-evaluated parent " + parent_fit.to_string(),
          io::write_rqfp_string(parent));
    }
    result.generations_run = resume->generation;
    result.evaluations = resume->evaluations;
    result.improvements = resume->improvements;
    result.sat_confirmations = resume->sat_confirmations;
    result.sat_cec_conflicts = resume->sat_cec_conflicts;
    result.mutations_attempted = resume->mutations_attempted;
    result.mutations_accepted = resume->mutations_accepted;
  } else {
    parent = params.disable_shrink ? initial : shrink(initial);
    parent_fit = evaluate(parent, spec, params.fitness);
    ++result.evaluations;
    if (!parent_fit.functionally_correct()) {
      throw std::invalid_argument(
          "evolve: initial netlist does not implement the specification");
    }
  }
  c_runs.inc();
  if (params.paranoia >= robust::ParanoiaLevel::kBoundaries) {
    robust::enforce_integrity(parent, spec,
                              resume ? "evolve:resume" : "evolve:start");
  }

  EvalPool pool(EvalPool::resolve_threads(params.threads, params.lambda));
  std::vector<OffspringResult> offspring(params.lambda);

  if (trace) {
    if (resume) {
      trace->event("checkpoint_loaded")
          .field("path", std::string_view(params.checkpoint_path))
          .field("generation", resume->generation)
          .field("evaluations", resume->evaluations);
    }
    auto ev = trace->event("run_start");
    ev.field("optimizer", "evolve")
        .field("generations", params.generations)
        .field("lambda", static_cast<std::uint64_t>(params.lambda))
        .field("mu", params.mutation.mu)
        .field("seed", params.seed)
        .field("threads", static_cast<std::uint64_t>(pool.threads()))
        .field("resumed", result.resumed);
    put_fitness(ev, parent_fit);
  }

  std::uint64_t since_improvement = resume ? resume->since_improvement : 0;
  std::uint64_t last_improvement_gen =
      resume ? resume->last_improvement_gen : 0;
  auto stop_reason = robust::StopReason::kCompleted;

  // Boundary budget predicate, checked once per generation before the λ
  // dispatch. The evaluation-budget form `evaluations + λ > max` is
  // arithmetically identical to the historical per-offspring check with
  // mid-generation rollback: a generation runs iff it fits the budget
  // whole. Check order (stop, evaluations, time) matches the historical
  // predicate so resumed runs report identical stop reasons.
  const auto boundary_stop = [&]() -> bool {
    if (params.budget.stop_requested()) {
      stop_reason = robust::StopReason::kStopRequested;
      return true;
    }
    if (params.budget.max_evaluations &&
        result.evaluations + params.lambda > params.budget.max_evaluations) {
      stop_reason = robust::StopReason::kEvaluationBudget;
      return true;
    }
    if (params.time_limit_seconds > 0.0 ||
        params.budget.deadline_seconds > 0.0) {
      const double t = elapsed();
      if ((params.time_limit_seconds > 0.0 &&
           t > params.time_limit_seconds) ||
          (params.budget.deadline_seconds > 0.0 &&
           t > params.budget.deadline_seconds)) {
        stop_reason = robust::StopReason::kTimeLimit;
        return true;
      }
    }
    return false;
  };
  // Polled between offspring on every worker, so a deadline or a SIGINT is
  // honored within one evaluation even for SAT-heavy configurations. Only
  // monotone conditions: once true mid-generation it is still true at the
  // boundary, where boundary_stop() re-derives the reason after the
  // partial generation is discarded. The evaluation budget is not polled
  // here — it is fully decided at the boundary.
  const auto mid_generation_abort = [&]() -> bool {
    if (params.budget.stop_requested()) {
      return true;
    }
    if (params.time_limit_seconds > 0.0 ||
        params.budget.deadline_seconds > 0.0) {
      const double t = elapsed();
      if ((params.time_limit_seconds > 0.0 &&
           t > params.time_limit_seconds) ||
          (params.budget.deadline_seconds > 0.0 &&
           t > params.budget.deadline_seconds)) {
        return true;
      }
    }
    return false;
  };

  const bool checkpointing = !params.checkpoint_path.empty();
  const auto make_checkpoint = [&] {
    robust::EvolveCheckpoint ck;
    ck.seed = params.seed;
    ck.lambda = params.lambda;
    ck.mu = params.mutation.mu;
    ck.generations_total = params.generations;
    ck.generation = result.generations_run;
    ck.evaluations = result.evaluations;
    ck.improvements = result.improvements;
    ck.sat_confirmations = result.sat_confirmations;
    ck.sat_cec_conflicts = result.sat_cec_conflicts;
    ck.since_improvement = since_improvement;
    ck.last_improvement_gen = last_improvement_gen;
    ck.elapsed_seconds = elapsed();
    ck.fitness = parent_fit;
    ck.mutations_attempted = result.mutations_attempted;
    ck.mutations_accepted = result.mutations_accepted;
    ck.parent = parent;
    return ck;
  };
  const auto save_checkpoint_now = [&] {
    robust::save_checkpoint(make_checkpoint(), params.checkpoint_path);
    if (trace) {
      trace->event("checkpoint_saved")
          .field("path", std::string_view(params.checkpoint_path))
          .field("generation", result.generations_run)
          .field("evaluations", result.evaluations);
    }
  };

  const std::uint64_t start_gen = resume ? resume->generation : 0;
  for (std::uint64_t gen = start_gen; gen < params.generations; ++gen) {
    if (params.budget.max_generations &&
        gen >= params.budget.max_generations) {
      stop_reason = robust::StopReason::kGenerationBudget;
      break;
    }
    if (checkpointing && params.checkpoint_interval && gen > start_gen &&
        gen % params.checkpoint_interval == 0) {
      save_checkpoint_now();
    }
    if (boundary_stop()) {
      break;
    }

    EvalJob job;
    job.parent = &parent;
    job.spec = spec;
    job.mutation = params.mutation;
    job.fitness = params.fitness;
    job.seed = params.seed;
    job.generation = gen;
    job.lambda = params.lambda;
    job.should_abort = mid_generation_abort;
    if (!pool.evaluate_generation(job, offspring)) {
      // Aborted mid-generation: the partial generation is discarded (a
      // generation is atomic w.r.t. both the result and resume) and the
      // reason is re-derived — the abort conditions are monotone, so
      // boundary_stop() finds the same verdict the worker saw.
      if (!boundary_stop()) {
        stop_reason = robust::StopReason::kStopRequested;
      }
      break;
    }
    result.evaluations += params.lambda;

    // Selection scan in offspring-index order: a later offspring with
    // better-or-equal fitness wins the tie, exactly as the historical
    // sequential loop decided — and independent of which worker finished
    // first.
    std::size_t best_k = 0;
    bool have_child = false;
    for (unsigned k = 0; k < params.lambda; ++k) {
      result.mutations_attempted.add(offspring[k].stats);
      if (!have_child ||
          offspring[k].fitness.better_or_equal(offspring[best_k].fitness)) {
        best_k = k;
        have_child = true;
      }
    }

    if (have_child &&
        offspring[best_k].fitness.better_or_equal(parent_fit)) {
      rqfp::Netlist& best_child = offspring[best_k].child;
      const Fitness best_child_fit = offspring[best_k].fitness;
      const bool improved = best_child_fit.strictly_better(parent_fit);
      bool accept = true;
      if (improved && params.sat_verify_improvements) {
        // Formal confirmation (paper §3.2.1 pairs simulation with formal
        // verification before trusting a candidate).
        const auto cec =
            cec::sat_check(best_child, spec, params.sat_conflict_budget);
        ++result.sat_confirmations;
        result.sat_cec_conflicts += cec.conflicts;
        accept = cec.verdict != cec::CecVerdict::kNotEquivalent;
      }
      if (accept) {
        parent = params.disable_shrink ? std::move(best_child)
                                       : shrink(best_child);
        parent_fit = best_child_fit;
        result.mutations_accepted.add(offspring[best_k].stats);
        if (params.paranoia == robust::ParanoiaLevel::kEveryAcceptance) {
          robust::enforce_integrity(
              parent, spec,
              "evolve:acceptance:gen=" + std::to_string(gen));
        }
        if (improved) {
          ++result.improvements;
          since_improvement = 0;
          h_gap.observe(static_cast<double>(gen - last_improvement_gen));
          last_improvement_gen = gen;
          if (trace) {
            auto ev = trace->event("improvement");
            ev.field("gen", gen)
                .field("evaluations", result.evaluations)
                .field("improvements", result.improvements)
                .field("elapsed_s", elapsed());
            put_fitness(ev, parent_fit);
          }
          if (params.on_improvement) {
            params.on_improvement(gen, parent_fit);
          }
        } else {
          ++since_improvement;
        }
      } else {
        ++since_improvement;
      }
    } else {
      ++since_improvement;
    }
    result.generations_run = gen + 1;

    if (trace && params.trace_heartbeat &&
        (gen + 1) % params.trace_heartbeat == 0) {
      auto ev = trace->event("heartbeat");
      ev.field("gen", gen)
          .field("evaluations", result.evaluations)
          .field("improvements", result.improvements)
          .field("elapsed_s", elapsed());
      put_fitness(ev, parent_fit);
    }

    if (params.stagnation_limit &&
        since_improvement >= params.stagnation_limit) {
      stop_reason = robust::StopReason::kStagnation;
      break;
    }
  }

  if (params.paranoia >= robust::ParanoiaLevel::kBoundaries) {
    robust::enforce_integrity(parent, spec, "evolve:end");
  }
  if (checkpointing) {
    // Final boundary checkpoint on every exit path, so an interrupted run
    // can always be continued and a completed run leaves an auditable
    // terminal state.
    save_checkpoint_now();
  }

  result.best = std::move(parent);
  result.best_fitness = parent_fit;
  result.seconds = elapsed();
  result.stop_reason = stop_reason;
  result.since_improvement = since_improvement;
  result.last_improvement_gen = last_improvement_gen;

  c_generations.inc(result.generations_run -
                    (resume ? resume->generation : 0));
  c_evaluations.inc(result.evaluations -
                    (resume ? resume->evaluations : 0));
  c_improvements.inc(result.improvements -
                     (resume ? resume->improvements : 0));
  c_sat_confirmations.inc(result.sat_confirmations -
                          (resume ? resume->sat_confirmations : 0));

  if (trace) {
    auto ev = trace->event("run_end");
    ev.field("optimizer", "evolve")
        .field("reason",
               std::string_view(run_end_reason(stop_reason, result.resumed)))
        .field("generations_run", result.generations_run)
        .field("evaluations", result.evaluations)
        .field("improvements", result.improvements)
        .field("sat_confirmations", result.sat_confirmations)
        .field("sat_cec_conflicts", result.sat_cec_conflicts)
        .field("elapsed_s", result.seconds);
    put_fitness(ev, result.best_fitness);
    put_mix(ev, "mutations_attempted", result.mutations_attempted);
    put_mix(ev, "mutations_accepted", result.mutations_accepted);
    trace->flush();
  }
  return result;
}

} // namespace

namespace detail {

EvolveResult evolve_impl(const rqfp::Netlist& initial,
                         std::span<const tt::TruthTable> spec,
                         const EvolveParams& params) {
  return evolve_run(initial, spec, params, nullptr);
}

EvolveResult evolve_resume_impl(const std::string& checkpoint_path,
                                std::span<const tt::TruthTable> spec,
                                const EvolveParams& params) {
  static obs::Counter& c_resumes = obs::registry().counter("evolve.resumes");
  const robust::EvolveCheckpoint ck = robust::load_checkpoint(checkpoint_path);
  EvolveParams run_params = params;
  if (run_params.checkpoint_path.empty()) {
    run_params.checkpoint_path = checkpoint_path;
  }
  c_resumes.inc();
  return evolve_continue_impl(ck, spec, run_params);
}

EvolveResult evolve_continue_impl(const robust::EvolveCheckpoint& state,
                                  std::span<const tt::TruthTable> spec,
                                  const EvolveParams& params) {
  if (state.seed != params.seed ||
      state.lambda != params.lambda ||
      state.mu != params.mutation.mu ||
      state.generations_total != params.generations) {
    throw std::invalid_argument(
        "evolve_resume: checkpoint was taken under a different run "
        "configuration (seed/lambda/mu/generations mismatch)");
  }
  return evolve_run(state.parent, spec, params, &state);
}

} // namespace detail

EvolveResult evolve_resume(const std::string& checkpoint_path,
                           std::span<const tt::TruthTable> spec,
                           const EvolveParams& params) {
  return detail::evolve_resume_impl(checkpoint_path, spec, params);
}

} // namespace rcgp::core
