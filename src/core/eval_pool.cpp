#include "core/eval_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::core {

/// Per-worker reusable state. Owned by exactly one thread during a
/// generation (worker i uses scratch_[i]; the caller thread is worker 0),
/// so nothing here needs synchronization.
struct EvalPool::Scratch {
  /// Base netlist whose port tables `cache` and whose liveness/levels
  /// `cost` currently hold.
  rqfp::Netlist base;
  rqfp::SimCache cache;
  rqfp::CostCache cost;
  bool cache_valid = false;
  /// λ-batch scratch: the block's child pointers, their fitness slots, and
  /// the per-child simulation overlays (allocations persist across
  /// generations).
  std::vector<const rqfp::Netlist*> children;
  std::vector<Fitness> fitness;
  rqfp::DeltaBatch batch;
  double busy_seconds = 0.0;
  unsigned index = 0;
  obs::Counter* evals = nullptr;
};

namespace {

obs::Counter& pool_tasks() {
  static obs::Counter& c = obs::registry().counter("evolve.pool.tasks");
  return c;
}
obs::Counter& pool_rebuilds() {
  static obs::Counter& c =
      obs::registry().counter("evolve.pool.cache_rebuilds");
  return c;
}
obs::Counter& pool_updates() {
  static obs::Counter& c =
      obs::registry().counter("evolve.pool.cache_updates");
  return c;
}

// λ-generation wall seconds: sub-ms through tens of seconds.
constexpr double kGenerationSecondsBounds[] = {
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0};

} // namespace

unsigned EvalPool::resolve_threads(unsigned requested, unsigned lambda) {
  unsigned t = requested;
  if (t == 0) {
    t = std::thread::hardware_concurrency();
    if (t == 0) {
      t = 1;
    }
  }
  if (lambda > 0 && t > lambda) {
    t = lambda;
  }
  return t == 0 ? 1 : t;
}

EvalPool::EvalPool(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    throw std::invalid_argument("EvalPool: threads must be >= 1");
  }
  scratch_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    auto s = std::make_unique<Scratch>();
    s->index = i;
    s->evals = &obs::registry().counter("evolve.pool.worker" +
                                        std::to_string(i) + ".evals");
    scratch_.push_back(std::move(s));
  }
  obs::registry().gauge("evolve.pool.threads").set(threads_);
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

EvalPool::~EvalPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

double EvalPool::utilization() const {
  if (span_seconds_ <= 0.0) {
    return 0.0;
  }
  return busy_seconds_ / (span_seconds_ * threads_);
}

void EvalPool::worker_main(unsigned index) {
  obs::set_thread_name("eval-worker-" + std::to_string(index));
  std::uint64_t seen = 0;
  for (;;) {
    const EvalJob* job = nullptr;
    OffspringResult* out = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return shutdown_ || job_id_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = job_id_;
      // A retired job (the caller's barrier already opened before this
      // worker woke) is skipped entirely — job_ points into the caller's
      // stack frame and must never be read outside the job's lifetime.
      if (job_ == nullptr) {
        continue;
      }
      job = job_;
      out = out_;
      ++active_workers_;
    }
    run_tasks(*scratch_[index], *job, out);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_workers_;
    }
    cv_done_.notify_all();
  }
}

void EvalPool::run_tasks(Scratch& scratch, const EvalJob& job,
                         OffspringResult* out) {
  // One span per worker per generation: the Perfetto timeline shows each
  // worker's busy stretch, which is exactly the utilization picture.
  obs::Span span("eval.generation");
  span.arg("worker", scratch.index)
      .arg("gen", job.generation)
      .arg("lambda", job.lambda);
  util::Stopwatch watch;
  const unsigned lambda = job.lambda;
  for (;;) {
    const unsigned k0 = next_task_.fetch_add(kBlock, std::memory_order_relaxed);
    if (k0 >= lambda) {
      break;
    }
    const unsigned k1 = std::min(k0 + kBlock, lambda);
    if (!aborted_.load(std::memory_order_relaxed)) {
      // One abort poll per block keeps the granularity of the old
      // task-at-a-time loop without re-checking mid-batch; the abort
      // conditions are monotone, so a block that started is as valid to
      // finish as a single offspring was.
      if (job.should_abort && job.should_abort()) {
        aborted_.store(true, std::memory_order_relaxed);
      } else {
        evaluate_block(scratch, job, out, k0, k1);
      }
    }
    done_tasks_.fetch_add(k1 - k0, std::memory_order_acq_rel);
  }
  scratch.busy_seconds += watch.seconds();
}

void EvalPool::evaluate_block(Scratch& scratch, const EvalJob& job,
                              OffspringResult* out, unsigned k0,
                              unsigned k1) {
  const rqfp::Netlist& parent = *job.parent;

  // Bring this worker's caches to the current parent: a full build when
  // the shape changed (shrink on acceptance can drop gates), otherwise an
  // incremental commit of whatever drifted since this worker last looked.
  // The cost cache syncs in the same tiers, against the *old* base before
  // it is overwritten.
  if (!scratch.cache_valid ||
      scratch.base.num_gates() != parent.num_gates() ||
      scratch.base.num_pis() != parent.num_pis()) {
    rqfp::build_sim_cache(parent, scratch.cache);
    rqfp::build_cost_cache(parent, job.fitness.schedule, scratch.cost);
    scratch.base = parent;
    scratch.cache_valid = true;
    pool_rebuilds().inc();
  } else if (!(scratch.base == parent)) {
    rqfp::update_sim_cache(scratch.base, parent, scratch.cache);
    if (scratch.cost.valid && scratch.cost.schedule == job.fitness.schedule &&
        scratch.base.num_pos() == parent.num_pos()) {
      rqfp::update_cost_cache(scratch.base, parent, scratch.cost);
    } else {
      rqfp::build_cost_cache(parent, job.fitness.schedule, scratch.cost);
    }
    scratch.base = parent;
    pool_updates().inc();
  } else if (!scratch.cost.valid ||
             scratch.cost.schedule != job.fitness.schedule) {
    rqfp::build_cost_cache(parent, job.fitness.schedule, scratch.cost);
  }

  // Offspring k is a pure function of (seed, generation, k, parent): its
  // own counter-based RNG stream makes the result independent of which
  // worker ran it, in what order, and how the block boundaries fell.
  scratch.children.clear();
  for (unsigned k = k0; k < k1; ++k) {
    OffspringResult& slot = out[k];
    slot.child = parent;
    util::Rng rng = util::Rng::stream(job.seed, job.generation, k);
    slot.stats = mutate(slot.child, rng, job.mutation);
    scratch.children.push_back(&slot.child);
  }
  scratch.fitness.resize(scratch.children.size());
  evaluate_delta_batch(scratch.base, scratch.cache, scratch.cost,
                       scratch.children, job.spec, job.fitness,
                       scratch.batch, scratch.fitness);
  for (unsigned k = k0; k < k1; ++k) {
    out[k].fitness = scratch.fitness[k - k0];
    scratch.evals->inc();
    pool_tasks().inc();
  }
}

bool EvalPool::evaluate_generation(const EvalJob& job,
                                   std::span<OffspringResult> out) {
  if (job.lambda == 0) {
    return true;
  }
  if (out.size() < job.lambda) {
    throw std::invalid_argument("EvalPool: result span too small");
  }
  util::Stopwatch watch;
  next_task_.store(0, std::memory_order_relaxed);
  done_tasks_.store(0, std::memory_order_relaxed);
  aborted_.store(false, std::memory_order_relaxed);
  if (workers_.empty()) {
    // Inline path: same per-offspring code, no synchronization at all.
    run_tasks(*scratch_[0], job, out.data());
  } else {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      out_ = out.data();
      ++job_id_;
    }
    cv_start_.notify_all();
    run_tasks(*scratch_[0], job, out.data()); // the caller is worker 0
    {
      // The barrier: every task counted AND every woken worker out of
      // run_tasks. Workers that never woke are harmless — job_ is retired
      // under the same mutex below, so a late waker skips the stale job.
      std::unique_lock<std::mutex> lock(mutex_);
      cv_done_.wait(lock, [&] {
        return done_tasks_.load(std::memory_order_acquire) >= job.lambda &&
               active_workers_ == 0;
      });
      job_ = nullptr;
      out_ = nullptr;
    }
  }
  const double gen_seconds = watch.seconds();
  span_seconds_ += gen_seconds;
  busy_seconds_ = 0.0;
  for (const auto& s : scratch_) {
    busy_seconds_ += s->busy_seconds;
  }
  obs::registry().gauge("evolve.pool.utilization").set(utilization());
  static obs::Histogram& h_generation = obs::registry().histogram(
      "evolve.generation.seconds", kGenerationSecondsBounds);
  h_generation.observe(gen_seconds);
  return !aborted_.load(std::memory_order_relaxed);
}

} // namespace rcgp::core
