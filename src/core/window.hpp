#pragma once

#include <cstdint>

#include "core/evolve.hpp"
#include "rqfp/netlist.hpp"

namespace rcgp::core {

/// Windowed CGP optimization: the scalability technique the paper points
/// to for real-world instances (§2.2, Kocnova & Vasicek's EA-based
/// resynthesis). Contiguous gate ranges are extracted as sub-netlists,
/// their exact local function is computed by simulation, a (1+λ) run
/// optimizes each window against that local specification, and improved
/// windows are spliced back. Global PO functions are preserved by
/// construction, so arbitrarily large netlists can be optimized without
/// ever simulating the whole circuit.
struct WindowParams {
  /// Gates per window (contiguous in topological order).
  std::uint32_t window_gates = 24;
  /// Windows whose boundary-input count exceeds this are shrunk or
  /// skipped (exhaustive local simulation must stay cheap).
  unsigned max_window_inputs = 10;
  /// Sliding step between window starts (defaults to window_gates).
  std::uint32_t stride = 0;
  /// Number of full sweeps over the netlist.
  unsigned passes = 1;
  /// Per-window evolution budget. Its `budget` member doubles as the
  /// sweep-level budget: the stop token and deadline are checked between
  /// windows (the deadline spans the whole sweep; each window's evolve
  /// run gets the remaining time), so interruption never loses the
  /// already-spliced improvements.
  EvolveParams evolve;
};

struct WindowStats {
  std::uint32_t windows_tried = 0;
  std::uint32_t windows_skipped = 0;
  std::uint32_t windows_improved = 0;
  std::uint32_t gates_before = 0;
  std::uint32_t gates_after = 0;
};

/// A window extracted from a netlist, with the port maps needed to splice
/// an optimized replacement back in. Exposed for testing.
struct Window {
  rqfp::Netlist sub;
  /// sub PI index -> outer port feeding it.
  std::vector<rqfp::Port> boundary_inputs;
  /// sub PO index -> outer window port it replaces.
  std::vector<rqfp::Port> boundary_outputs;
  std::uint32_t first_gate = 0;
  std::uint32_t num_gates = 0;
};

/// Extracts gates [first, first+count) as a window; returns false when the
/// boundary-input limit is exceeded.
bool extract_window(const rqfp::Netlist& net, std::uint32_t first,
                    std::uint32_t count, unsigned max_inputs, Window& out);

/// Replaces the window's gate range with `replacement` (a netlist over the
/// window's boundary inputs implementing the same boundary functions) and
/// renumbers all ports.
rqfp::Netlist splice_window(const rqfp::Netlist& net, const Window& window,
                            const rqfp::Netlist& replacement);

namespace detail {

/// Full windowed optimization sweep — the implementation behind the
/// core::Optimizer facade (core/optimizer.hpp).
rqfp::Netlist window_optimize_impl(const rqfp::Netlist& input,
                                   const WindowParams& params,
                                   WindowStats* stats);

} // namespace detail

struct ExactPolishParams {
  /// Windows of at most this many gates and boundary inputs are handed to
  /// the SAT-based exact synthesizer. Both bounds keep the encoding tiny.
  std::uint32_t window_gates = 6;
  unsigned max_window_inputs = 4;
  /// Per-window exact budget.
  double seconds_per_window = 5.0;
  std::uint64_t conflicts_per_call = 200000;
  unsigned passes = 1;
  /// Sweep-level stop token / deadline, checked between windows (a window
  /// already in the SAT solver is bounded by seconds_per_window).
  robust::RunBudget budget;
};

/// Hybrid CGP+exact refinement: sweeps small windows and replaces each
/// with a SAT-proven optimal sub-circuit when that is strictly smaller.
/// Combines the paper's two methods — CGP for global scale, exact
/// synthesis where it is tractable.
rqfp::Netlist exact_polish(const rqfp::Netlist& input,
                           const ExactPolishParams& params = {},
                           WindowStats* stats = nullptr);

} // namespace rcgp::core
