#include "core/request.hpp"

#include <cctype>
#include <cmath>
#include <set>
#include <stdexcept>

#include "io/parse_error.hpp"
#include "obs/json.hpp"

namespace rcgp::core {
namespace {

[[noreturn]] void fail(const char* format, const std::string& source,
                       std::size_t line, const std::string& message) {
  io::fail_parse(format, source, line, message);
}

// ---- enum name tables shared by the options round-trip ----

std::string_view schedule_name(rqfp::BufferSchedule s) {
  switch (s) {
    case rqfp::BufferSchedule::kAsap: return "asap";
    case rqfp::BufferSchedule::kAlap: return "alap";
    case rqfp::BufferSchedule::kBest: return "best";
    case rqfp::BufferSchedule::kOptimized: return "optimized";
  }
  return "asap";
}

rqfp::BufferSchedule schedule_from_name(std::string_view name) {
  if (name == "asap") return rqfp::BufferSchedule::kAsap;
  if (name == "alap") return rqfp::BufferSchedule::kAlap;
  if (name == "best") return rqfp::BufferSchedule::kBest;
  if (name == "optimized") return rqfp::BufferSchedule::kOptimized;
  throw std::invalid_argument("unknown buffer schedule: \"" +
                              std::string(name) + "\"");
}

std::string_view objective_name(Objective o) {
  return o == Objective::kJjCount ? "jj-count" : "paper-lexicographic";
}

Objective objective_from_name(std::string_view name) {
  if (name == "paper-lexicographic") return Objective::kPaperLexicographic;
  if (name == "jj-count") return Objective::kJjCount;
  throw std::invalid_argument("unknown objective: \"" + std::string(name) +
                              "\"");
}

// ---- typed member extraction over obs::json::Value ----

std::uint64_t uint_member(const obs::json::Value& v, std::string_view key) {
  if (!v.is_number()) {
    throw std::invalid_argument("key \"" + std::string(key) +
                                "\" must be a number");
  }
  const double d = v.as_number();
  if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d))) {
    throw std::invalid_argument("key \"" + std::string(key) +
                                "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

double number_member(const obs::json::Value& v, std::string_view key) {
  if (!v.is_number()) {
    throw std::invalid_argument("key \"" + std::string(key) +
                                "\" must be a number");
  }
  return v.as_number();
}

std::string string_member(const obs::json::Value& v, std::string_view key) {
  if (!v.is_string()) {
    throw std::invalid_argument("key \"" + std::string(key) +
                                "\" must be a string");
  }
  return v.as_string();
}

bool bool_member(const obs::json::Value& v, std::string_view key) {
  if (v.kind() != obs::json::Value::Kind::kBool) {
    throw std::invalid_argument("key \"" + std::string(key) +
                                "\" must be a boolean");
  }
  return v.as_bool();
}

/// Parses `text` as a single JSON object and walks its members through
/// `on_member`, rejecting duplicates. The member callback throws
/// std::invalid_argument for bad keys/values; the error is rethrown as a
/// contextual ParseError.
template <typename F>
void scan_object(const std::string& text, const char* format,
                 const std::string& source, std::size_t lineno,
                 F&& on_member) {
  const auto doc = obs::json::parse(text);
  if (!doc) {
    fail(format, source, lineno, "malformed JSON");
  }
  if (!doc->is_object()) {
    fail(format, source, lineno, "line must be a JSON object");
  }
  std::set<std::string> seen;
  for (const auto& [key, value] : doc->members()) {
    if (!seen.insert(key).second) {
      fail(format, source, lineno, "duplicate key \"" + key + "\"");
    }
    try {
      on_member(key, value);
    } catch (const std::invalid_argument& e) {
      fail(format, source, lineno, e.what());
    }
  }
}

void check_schema(const obs::json::Value& v) {
  const std::uint64_t schema = uint_member(v, "schema");
  if (schema == 0 || schema > kRequestSchemaVersion) {
    throw std::invalid_argument(
        "unsupported schema version " + std::to_string(schema) +
        " (this build understands <= " +
        std::to_string(kRequestSchemaVersion) + ")");
  }
}

} // namespace

std::string_view to_string(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kOff: return "off";
    case CachePolicy::kUse: return "use";
    case CachePolicy::kSeed: return "seed";
  }
  return "use";
}

CachePolicy parse_cache_policy(std::string_view name) {
  if (name == "off") return CachePolicy::kOff;
  if (name == "use") return CachePolicy::kUse;
  if (name == "seed") return CachePolicy::kSeed;
  throw std::invalid_argument("unknown cache policy: \"" + std::string(name) +
                              "\" (want off, use, or seed)");
}

bool SynthesisRequest::operator==(const SynthesisRequest& o) const {
  return id == o.id && circuit == o.circuit && spec == o.spec &&
         algorithm == o.algorithm && generations == o.generations &&
         seed == o.seed && lambda == o.lambda && threads == o.threads &&
         restarts == o.restarts && islands == o.islands &&
         topology == o.topology &&
         migration_interval == o.migration_interval &&
         migration_size == o.migration_size &&
         deadline_seconds == o.deadline_seconds &&
         max_generations == o.max_generations &&
         max_evaluations == o.max_evaluations &&
         stagnation_limit == o.stagnation_limit && retries == o.retries &&
         cache == o.cache;
}

std::string to_json(const SynthesisRequest& r) {
  obs::json::Writer w;
  w.begin_object();
  // Island-free requests are stamped schema 1 so they keep round-tripping
  // through schema-1 binaries; only requests that actually use the island
  // fields need a schema-2 reader.
  const bool needs_v2 = r.islands != 0 || r.topology != Topology::kRing ||
                        r.migration_interval != 0 || r.migration_size != 0;
  w.field("schema", needs_v2 ? kRequestSchemaVersion : std::uint64_t{1});
  w.field("id", r.id);
  if (!r.circuit.empty()) {
    w.field("circuit", r.circuit);
  }
  if (!r.spec.empty()) {
    w.field("spec_vars",
            static_cast<std::uint64_t>(r.spec.front().num_vars()));
    w.key("spec").begin_array();
    for (const auto& t : r.spec) {
      w.value(t.to_hex());
    }
    w.end_array();
  }
  if (r.algorithm != Algorithm::kEvolve) {
    w.field("algorithm", to_string(r.algorithm));
  }
  if (r.generations != 0) w.field("generations", r.generations);
  if (r.seed != 0) w.field("seed", r.seed);
  if (r.lambda != 0) w.field("lambda", r.lambda);
  if (r.threads != 0) w.field("threads", r.threads);
  if (r.restarts != 0) w.field("restarts", r.restarts);
  if (r.islands != 0) w.field("islands", r.islands);
  if (r.topology != Topology::kRing) {
    w.field("topology", to_string(r.topology));
  }
  if (r.migration_interval != 0) {
    w.field("migration_interval", r.migration_interval);
  }
  if (r.migration_size != 0) w.field("migration_size", r.migration_size);
  if (r.deadline_seconds != 0.0) {
    w.field("deadline_seconds", r.deadline_seconds);
  }
  if (r.max_generations != 0) w.field("max_generations", r.max_generations);
  if (r.max_evaluations != 0) w.field("max_evaluations", r.max_evaluations);
  if (r.stagnation_limit != 0) {
    w.field("stagnation_limit", r.stagnation_limit);
  }
  if (r.retries >= 0) w.field("retries", r.retries);
  if (r.cache != CachePolicy::kUse) {
    w.field("cache", to_string(r.cache));
  }
  w.end_object();
  return w.str();
}

SynthesisRequest parse_request(const std::string& text,
                               const std::string& source, std::size_t lineno,
                               const char* format) {
  SynthesisRequest r;
  r.line = lineno;
  std::vector<std::string> spec_hex;
  std::uint64_t spec_vars = 0;
  bool have_spec_vars = false;
  scan_object(text, format, source, lineno,
              [&](const std::string& key, const obs::json::Value& v) {
    if (key == "schema") {
      check_schema(v);
    } else if (key == "id") {
      r.id = string_member(v, key);
    } else if (key == "circuit") {
      r.circuit = string_member(v, key);
    } else if (key == "spec") {
      if (!v.is_array()) {
        throw std::invalid_argument(
            "key \"spec\" must be an array of hex truth tables");
      }
      for (const auto& item : v.items()) {
        spec_hex.push_back(string_member(item, "spec"));
      }
      if (spec_hex.empty()) {
        throw std::invalid_argument("key \"spec\" must not be empty");
      }
    } else if (key == "spec_vars") {
      spec_vars = uint_member(v, key);
      have_spec_vars = true;
    } else if (key == "algorithm") {
      r.algorithm = parse_algorithm(string_member(v, key));
    } else if (key == "generations") {
      r.generations = uint_member(v, key);
    } else if (key == "seed") {
      r.seed = uint_member(v, key);
    } else if (key == "lambda") {
      r.lambda = static_cast<unsigned>(uint_member(v, key));
    } else if (key == "threads") {
      r.threads = static_cast<unsigned>(uint_member(v, key));
    } else if (key == "restarts") {
      r.restarts = static_cast<unsigned>(uint_member(v, key));
    } else if (key == "islands") {
      r.islands = static_cast<unsigned>(uint_member(v, key));
    } else if (key == "topology") {
      r.topology = parse_topology(string_member(v, key));
    } else if (key == "migration_interval") {
      r.migration_interval = uint_member(v, key);
    } else if (key == "migration_size") {
      r.migration_size = static_cast<unsigned>(uint_member(v, key));
    } else if (key == "deadline_seconds") {
      r.deadline_seconds = number_member(v, key);
      if (r.deadline_seconds < 0 || !std::isfinite(r.deadline_seconds)) {
        throw std::invalid_argument(
            "key \"deadline_seconds\" must be finite and >= 0");
      }
    } else if (key == "max_generations") {
      r.max_generations = uint_member(v, key);
    } else if (key == "max_evaluations") {
      r.max_evaluations = uint_member(v, key);
    } else if (key == "stagnation_limit") {
      r.stagnation_limit = uint_member(v, key);
    } else if (key == "retries") {
      r.retries = static_cast<int>(uint_member(v, key));
    } else if (key == "cache") {
      r.cache = parse_cache_policy(string_member(v, key));
    } else {
      throw std::invalid_argument("unknown key \"" + key + "\"");
    }
  });
  if (!spec_hex.empty()) {
    if (!have_spec_vars) {
      fail(format, source, lineno, "key \"spec\" requires \"spec_vars\"");
    }
    if (spec_vars < 1 || spec_vars > kMaxRequestSpecVars) {
      fail(format, source, lineno,
           "key \"spec_vars\" must be in [1, " +
               std::to_string(kMaxRequestSpecVars) + "]");
    }
    for (const auto& hex : spec_hex) {
      try {
        r.spec.push_back(
            tt::TruthTable::from_hex(static_cast<unsigned>(spec_vars), hex));
      } catch (const std::invalid_argument& e) {
        fail(format, source, lineno,
             "key \"spec\": bad table \"" + hex + "\": " + e.what());
      }
    }
  } else if (have_spec_vars) {
    fail(format, source, lineno, "key \"spec_vars\" requires \"spec\"");
  }
  validate_request(r, source, lineno, format);
  return r;
}

void validate_request(const SynthesisRequest& r, const std::string& source,
                      std::size_t lineno, const char* format) {
  if (r.id.empty()) {
    fail(format, source, lineno, "missing required key \"id\"");
  }
  for (const char c : r.id) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.')) {
      fail(format, source, lineno,
           "id \"" + r.id + "\" must be filesystem-safe "
           "([A-Za-z0-9._-] only) — it names checkpoint and output files");
    }
  }
  if (r.circuit.empty() && r.spec.empty()) {
    fail(format, source, lineno,
         "missing required key \"circuit\" (or an inline \"spec\")");
  }
  if (!r.circuit.empty() && !r.spec.empty()) {
    fail(format, source, lineno,
         "\"circuit\" and \"spec\" are mutually exclusive");
  }
  if (r.islands > 1 && r.algorithm != Algorithm::kEvolve) {
    fail(format, source, lineno,
         "\"islands\" > 1 requires \"algorithm\": \"evolve\" — the island "
         "model distributes the (1+lambda) evolution loop");
  }
  if ((r.migration_interval != 0 || r.migration_size != 0) && r.islands <= 1) {
    fail(format, source, lineno,
         "\"migration_interval\"/\"migration_size\" need \"islands\" >= 2 — "
         "a single island has nothing to exchange elites with");
  }
  if (!r.spec.empty()) {
    if (r.spec.size() > kMaxRequestSpecOutputs) {
      fail(format, source, lineno,
           "spec has " + std::to_string(r.spec.size()) +
               " outputs; the limit is " +
               std::to_string(kMaxRequestSpecOutputs));
    }
    const unsigned vars = r.spec.front().num_vars();
    if (vars < 1 || vars > kMaxRequestSpecVars) {
      fail(format, source, lineno,
           "spec tables must have 1.." +
               std::to_string(kMaxRequestSpecVars) + " inputs");
    }
    for (const auto& t : r.spec) {
      if (t.num_vars() != vars) {
        fail(format, source, lineno,
             "spec tables must share one input count");
      }
    }
  }
}

OptimizerOptions optimizer_options_for(const SynthesisRequest& r,
                                       const RequestDefaults& defaults) {
  OptimizerOptions o;
  o.algorithm = r.algorithm;
  o.evolve.generations =
      r.generations != 0 ? r.generations : defaults.generations;
  o.evolve.seed = r.seed != 0 ? r.seed : defaults.seed;
  if (r.lambda != 0) {
    o.evolve.lambda = r.lambda;
  }
  o.evolve.threads = r.threads != 0 ? r.threads : defaults.threads;
  o.evolve.stagnation_limit = r.stagnation_limit;
  o.anneal.seed = o.evolve.seed;
  if (r.generations != 0) {
    o.anneal.steps = r.generations; // kAnneal counts steps
  }
  if (r.restarts != 0) {
    o.restarts = r.restarts;
  }
  if (r.islands != 0) {
    o.island.islands = r.islands;
  }
  o.island.topology = r.topology;
  o.island.migration_interval = r.migration_interval;
  if (r.migration_size != 0) {
    o.island.migration_size = r.migration_size;
  }
  o.limits.deadline_seconds = r.deadline_seconds;
  o.limits.max_generations = r.max_generations;
  o.limits.max_evaluations = r.max_evaluations;
  return o;
}

std::string to_json(const SynthesisResponse& r) {
  obs::json::Writer w;
  w.begin_object();
  // Responses gained no fields in schema 2, so they stay stamped 1 and
  // remain readable by schema-1 clients regardless of the request schema.
  w.field("schema", std::uint64_t{1});
  w.field("id", r.id);
  w.field("ok", r.ok);
  if (!r.error.empty()) {
    w.field("error", r.error);
  }
  w.field("cached", r.cached);
  if (r.seeded) {
    w.field("seeded", r.seeded);
  }
  w.field("stop_reason", r.stop_reason);
  w.field("verified", r.verified);
  w.field("n_r", r.cost.n_r);
  w.field("n_b", r.cost.n_b);
  w.field("jjs", r.cost.jjs);
  w.field("n_d", r.cost.n_d);
  w.field("n_g", r.cost.n_g);
  w.field("seconds", r.seconds);
  if (!r.netlist.empty()) {
    w.field("netlist", r.netlist);
  }
  w.end_object();
  return w.str();
}

SynthesisResponse parse_response(const std::string& text,
                                 const std::string& source,
                                 std::size_t lineno) {
  SynthesisResponse r;
  bool have_id = false;
  const auto doc = obs::json::parse(text);
  if (!doc || !doc->is_object()) {
    io::fail_parse("response", source, lineno, "malformed JSON object");
  }
  std::set<std::string> seen;
  for (const auto& [key, v] : doc->members()) {
    if (!seen.insert(key).second) {
      io::fail_parse("response", source, lineno,
                     "duplicate key \"" + key + "\"");
    }
    try {
      if (key == "schema") {
        check_schema(v);
      } else if (key == "id") {
        r.id = string_member(v, key);
        have_id = true;
      } else if (key == "ok") {
        r.ok = bool_member(v, key);
      } else if (key == "error") {
        r.error = string_member(v, key);
      } else if (key == "cached") {
        r.cached = bool_member(v, key);
      } else if (key == "seeded") {
        r.seeded = bool_member(v, key);
      } else if (key == "stop_reason") {
        r.stop_reason = string_member(v, key);
      } else if (key == "verified") {
        r.verified = bool_member(v, key);
      } else if (key == "n_r") {
        r.cost.n_r = static_cast<std::uint32_t>(uint_member(v, key));
      } else if (key == "n_b") {
        r.cost.n_b = static_cast<std::uint32_t>(uint_member(v, key));
      } else if (key == "jjs") {
        r.cost.jjs = static_cast<std::uint32_t>(uint_member(v, key));
      } else if (key == "n_d") {
        r.cost.n_d = static_cast<std::uint32_t>(uint_member(v, key));
      } else if (key == "n_g") {
        r.cost.n_g = static_cast<std::uint32_t>(uint_member(v, key));
      } else if (key == "seconds") {
        r.seconds = number_member(v, key);
      } else if (key == "netlist") {
        r.netlist = string_member(v, key);
      } else {
        throw std::invalid_argument("unknown key \"" + key + "\"");
      }
    } catch (const std::invalid_argument& e) {
      io::fail_parse("response", source, lineno, e.what());
    }
  }
  if (!have_id) {
    io::fail_parse("response", source, lineno, "missing required key \"id\"");
  }
  return r;
}

// ---- OptimizerOptions / RunLimits round-trip ----

void write_json(obs::json::Writer& w, const RunLimits& limits) {
  w.begin_object();
  w.field("deadline_seconds", limits.deadline_seconds);
  w.field("max_generations", limits.max_generations);
  w.field("max_evaluations", limits.max_evaluations);
  w.field("checkpoint_path", limits.checkpoint_path);
  w.field("checkpoint_interval", limits.checkpoint_interval);
  w.end_object();
}

void write_json(obs::json::Writer& w, const OptimizerOptions& o) {
  w.begin_object();
  w.field("algorithm", to_string(o.algorithm));
  w.field("restarts", o.restarts);
  w.key("evolve").begin_object();
  w.field("generations", o.evolve.generations);
  w.field("lambda", o.evolve.lambda);
  w.field("mu", o.evolve.mutation.mu);
  w.field("strict_po_swap", o.evolve.mutation.strict_po_swap);
  w.field("seed", o.evolve.seed);
  w.field("threads", o.evolve.threads);
  w.field("sat_verify_improvements", o.evolve.sat_verify_improvements);
  w.field("sat_conflict_budget", o.evolve.sat_conflict_budget);
  w.field("disable_shrink", o.evolve.disable_shrink);
  w.field("time_limit_seconds", o.evolve.time_limit_seconds);
  w.field("stagnation_limit", o.evolve.stagnation_limit);
  w.field("checkpoint_path", o.evolve.checkpoint_path);
  w.field("checkpoint_interval", o.evolve.checkpoint_interval);
  w.field("paranoia", robust::to_string(o.evolve.paranoia));
  w.field("schedule", schedule_name(o.evolve.fitness.schedule));
  w.field("objective", objective_name(o.evolve.fitness.objective));
  w.field("trace_heartbeat", o.evolve.trace_heartbeat);
  w.end_object();
  w.key("anneal").begin_object();
  w.field("steps", o.anneal.steps);
  w.field("initial_temperature", o.anneal.initial_temperature);
  w.field("final_temperature", o.anneal.final_temperature);
  w.field("mu", o.anneal.mutation.mu);
  w.field("strict_po_swap", o.anneal.mutation.strict_po_swap);
  w.field("seed", o.anneal.seed);
  w.field("schedule", schedule_name(o.anneal.fitness.schedule));
  w.field("objective", objective_name(o.anneal.fitness.objective));
  w.field("trace_heartbeat", o.anneal.trace_heartbeat);
  w.end_object();
  w.key("window").begin_object();
  w.field("window_gates", o.window.window_gates);
  w.field("max_window_inputs", o.window.max_window_inputs);
  w.field("stride", o.window.stride);
  w.field("passes", o.window.passes);
  w.end_object();
  w.key("island").begin_object();
  w.field("islands", o.island.islands);
  w.field("topology", to_string(o.island.topology));
  w.field("migration_interval", o.island.migration_interval);
  w.field("migration_size", o.island.migration_size);
  w.field("state_dir", o.island.state_dir);
  w.field("parallelism", o.island.parallelism);
  w.end_object();
  w.key("limits");
  write_json(w, o.limits);
  w.end_object();
}

std::string to_json(const RunLimits& limits) {
  obs::json::Writer w;
  write_json(w, limits);
  return w.str();
}

std::string to_json(const OptimizerOptions& options) {
  obs::json::Writer w;
  write_json(w, options);
  return w.str();
}

namespace {

void require_object(const obs::json::Value& v, std::string_view what) {
  if (!v.is_object()) {
    throw std::invalid_argument("key \"" + std::string(what) +
                                "\" must be an object");
  }
}

template <typename F>
void each_member(const obs::json::Value& v, F&& f) {
  std::set<std::string> seen;
  for (const auto& [key, value] : v.members()) {
    if (!seen.insert(key).second) {
      throw std::invalid_argument("duplicate key \"" + key + "\"");
    }
    f(key, value);
  }
}

} // namespace

RunLimits run_limits_from_json(const obs::json::Value& v) {
  require_object(v, "limits");
  RunLimits limits;
  each_member(v, [&](const std::string& key, const obs::json::Value& m) {
    if (key == "deadline_seconds") {
      limits.deadline_seconds = number_member(m, key);
    } else if (key == "max_generations") {
      limits.max_generations = uint_member(m, key);
    } else if (key == "max_evaluations") {
      limits.max_evaluations = uint_member(m, key);
    } else if (key == "checkpoint_path") {
      limits.checkpoint_path = string_member(m, key);
    } else if (key == "checkpoint_interval") {
      limits.checkpoint_interval = uint_member(m, key);
    } else {
      throw std::invalid_argument("unknown limits key \"" + key + "\"");
    }
  });
  return limits;
}

OptimizerOptions optimizer_options_from_json(const obs::json::Value& v) {
  require_object(v, "options");
  OptimizerOptions o;
  each_member(v, [&](const std::string& key, const obs::json::Value& m) {
    if (key == "algorithm") {
      o.algorithm = parse_algorithm(string_member(m, key));
    } else if (key == "restarts") {
      o.restarts = static_cast<unsigned>(uint_member(m, key));
    } else if (key == "evolve") {
      require_object(m, key);
      each_member(m, [&](const std::string& k, const obs::json::Value& e) {
        if (k == "generations") {
          o.evolve.generations = uint_member(e, k);
        } else if (k == "lambda") {
          o.evolve.lambda = static_cast<unsigned>(uint_member(e, k));
        } else if (k == "mu") {
          o.evolve.mutation.mu = number_member(e, k);
        } else if (k == "strict_po_swap") {
          o.evolve.mutation.strict_po_swap = bool_member(e, k);
        } else if (k == "seed") {
          o.evolve.seed = uint_member(e, k);
        } else if (k == "threads") {
          o.evolve.threads = static_cast<unsigned>(uint_member(e, k));
        } else if (k == "sat_verify_improvements") {
          o.evolve.sat_verify_improvements = bool_member(e, k);
        } else if (k == "sat_conflict_budget") {
          o.evolve.sat_conflict_budget = uint_member(e, k);
        } else if (k == "disable_shrink") {
          o.evolve.disable_shrink = bool_member(e, k);
        } else if (k == "time_limit_seconds") {
          o.evolve.time_limit_seconds = number_member(e, k);
        } else if (k == "stagnation_limit") {
          o.evolve.stagnation_limit = uint_member(e, k);
        } else if (k == "checkpoint_path") {
          o.evolve.checkpoint_path = string_member(e, k);
        } else if (k == "checkpoint_interval") {
          o.evolve.checkpoint_interval = uint_member(e, k);
        } else if (k == "paranoia") {
          o.evolve.paranoia = robust::parse_paranoia(string_member(e, k));
        } else if (k == "schedule") {
          o.evolve.fitness.schedule =
              schedule_from_name(string_member(e, k));
        } else if (k == "objective") {
          o.evolve.fitness.objective =
              objective_from_name(string_member(e, k));
        } else if (k == "trace_heartbeat") {
          o.evolve.trace_heartbeat = uint_member(e, k);
        } else {
          throw std::invalid_argument("unknown evolve key \"" + k + "\"");
        }
      });
    } else if (key == "anneal") {
      require_object(m, key);
      each_member(m, [&](const std::string& k, const obs::json::Value& a) {
        if (k == "steps") {
          o.anneal.steps = uint_member(a, k);
        } else if (k == "initial_temperature") {
          o.anneal.initial_temperature = number_member(a, k);
        } else if (k == "final_temperature") {
          o.anneal.final_temperature = number_member(a, k);
        } else if (k == "mu") {
          o.anneal.mutation.mu = number_member(a, k);
        } else if (k == "strict_po_swap") {
          o.anneal.mutation.strict_po_swap = bool_member(a, k);
        } else if (k == "seed") {
          o.anneal.seed = uint_member(a, k);
        } else if (k == "schedule") {
          o.anneal.fitness.schedule =
              schedule_from_name(string_member(a, k));
        } else if (k == "objective") {
          o.anneal.fitness.objective =
              objective_from_name(string_member(a, k));
        } else if (k == "trace_heartbeat") {
          o.anneal.trace_heartbeat = uint_member(a, k);
        } else {
          throw std::invalid_argument("unknown anneal key \"" + k + "\"");
        }
      });
    } else if (key == "window") {
      require_object(m, key);
      each_member(m, [&](const std::string& k, const obs::json::Value& win) {
        if (k == "window_gates") {
          o.window.window_gates =
              static_cast<std::uint32_t>(uint_member(win, k));
        } else if (k == "max_window_inputs") {
          o.window.max_window_inputs =
              static_cast<unsigned>(uint_member(win, k));
        } else if (k == "stride") {
          o.window.stride = static_cast<std::uint32_t>(uint_member(win, k));
        } else if (k == "passes") {
          o.window.passes = static_cast<unsigned>(uint_member(win, k));
        } else {
          throw std::invalid_argument("unknown window key \"" + k + "\"");
        }
      });
    } else if (key == "island") {
      require_object(m, key);
      each_member(m, [&](const std::string& k, const obs::json::Value& is) {
        if (k == "islands") {
          o.island.islands = static_cast<unsigned>(uint_member(is, k));
        } else if (k == "topology") {
          o.island.topology = parse_topology(string_member(is, k));
        } else if (k == "migration_interval") {
          o.island.migration_interval = uint_member(is, k);
        } else if (k == "migration_size") {
          o.island.migration_size =
              static_cast<unsigned>(uint_member(is, k));
        } else if (k == "state_dir") {
          o.island.state_dir = string_member(is, k);
        } else if (k == "parallelism") {
          o.island.parallelism = static_cast<unsigned>(uint_member(is, k));
        } else {
          throw std::invalid_argument("unknown island key \"" + k + "\"");
        }
      });
    } else if (key == "limits") {
      o.limits = run_limits_from_json(m);
    } else {
      throw std::invalid_argument("unknown options key \"" + key + "\"");
    }
  });
  return o;
}

RunLimits parse_run_limits(const std::string& text) {
  const auto doc = obs::json::parse(text);
  if (!doc) {
    throw std::invalid_argument("run limits: malformed JSON");
  }
  return run_limits_from_json(*doc);
}

OptimizerOptions parse_optimizer_options(const std::string& text) {
  const auto doc = obs::json::parse(text);
  if (!doc) {
    throw std::invalid_argument("optimizer options: malformed JSON");
  }
  return optimizer_options_from_json(*doc);
}

} // namespace rcgp::core
