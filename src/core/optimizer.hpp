#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "core/anneal.hpp"
#include "core/evolve.hpp"
#include "core/window.hpp"
#include "robust/stop.hpp"
#include "rqfp/netlist.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::island {
class SliceExecutor;
} // namespace rcgp::island

namespace rcgp::core {

/// Which search algorithm an Optimizer runs. All of them consume the same
/// genotype, mutation operators, and RunLimits; they differ only in the
/// outer search strategy.
enum class Algorithm : std::uint8_t {
  kEvolve,     ///< single (1+λ) CGP run (the paper's Algorithm 1)
  kMultistart, ///< `restarts` decorrelated (1+λ) runs, best-of
  kAnneal,     ///< simulated-annealing ablation over the same operators
  kWindow,     ///< windowed (1+λ) sweep for large netlists
};

/// Stable lowercase name ("evolve", "multistart", "anneal", "window").
std::string_view to_string(Algorithm algorithm);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
Algorithm parse_algorithm(std::string_view name);

/// Migration topology of an island fleet (docs/ISLANDS.md). The donor
/// schedule is a pure function of (topology, island index, island count),
/// so the elite exchange is deterministic given (seed, topology,
/// migration interval) — regardless of where the islands actually run.
enum class Topology : std::uint8_t {
  kNone, ///< no migration; islands split the budget (multistart semantics)
  kRing, ///< island i receives from island (i-1+N)%N
  kStar, ///< island 0 is the hub: it receives from every leaf, leaves from 0
  kFull, ///< every island receives from every other island
};

/// Stable lowercase name ("none", "ring", "star", "full").
std::string_view to_string(Topology topology);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
Topology parse_topology(std::string_view name);

/// Island-model settings (docs/ISLANDS.md). With `islands` == 1 the
/// Optimizer behaves exactly as before; with more, kEvolve runs an island
/// fleet: N decorrelated (1+λ) lineages (seed, seed+1, ...) exchanging
/// elites every `migration_interval` generations. Results are
/// bit-identical for any worker placement — in-process threads or remote
/// `rcgp serve` daemons — given (seed, topology, migration_interval).
struct IslandSettings {
  /// Number of islands (1 = plain single-lineage evolve).
  unsigned islands = 1;
  Topology topology = Topology::kRing;
  /// Exchange elites every this many generations (0 = never migrate; the
  /// islands then run as fully independent lineages).
  std::uint64_t migration_interval = 0;
  /// How many donor elites each island considers per exchange (the best
  /// strictly-better one is adopted).
  unsigned migration_size = 1;
  /// Directory for per-island robust checkpoints + the fleet manifest.
  /// Empty = in-memory only (no crash safety, no remote workers).
  std::string state_dir;
  /// Continue a fleet previously interrupted in `state_dir`.
  bool resume = false;
  /// Where slices run (not owned; nullptr = in-process threads). Point it
  /// at an island::RemoteSliceExecutor to farm slices out to `rcgp serve`
  /// daemons.
  island::SliceExecutor* executor = nullptr;
  /// Concurrent slices per epoch (0 = one thread per island). Purely a
  /// throughput knob: results are bit-identical for any value.
  unsigned parallelism = 0;
};

/// Cross-algorithm run limits, applied on top of the per-algorithm
/// parameter structs. A default-constructed field (zero / empty / null)
/// leaves the corresponding per-algorithm setting untouched, so RunLimits
/// only ever tightens or adds — callers can configure an algorithm fully
/// through its params and use RunLimits purely for scheduling concerns
/// (deadlines, stop tokens, checkpointing).
struct RunLimits {
  /// Wall-clock ceiling in seconds (0 = keep per-algorithm setting).
  double deadline_seconds = 0.0;
  /// Generation / step ceiling (0 = keep per-algorithm setting).
  std::uint64_t max_generations = 0;
  /// Fitness-evaluation ceiling (0 = keep per-algorithm setting).
  std::uint64_t max_evaluations = 0;
  /// Cooperative stop flag (not owned; nullptr = keep per-algorithm one).
  robust::StopToken* stop = nullptr;
  /// Crash-safe checkpointing (kEvolve only; empty = keep per-algorithm
  /// path). Checkpoints are thread-count independent.
  std::string checkpoint_path;
  std::uint64_t checkpoint_interval = 0; // 0 = keep per-algorithm interval

  /// The limits expressed as the budget struct the loops consume.
  robust::RunBudget budget() const {
    robust::RunBudget b;
    b.deadline_seconds = deadline_seconds;
    b.max_generations = max_generations;
    b.max_evaluations = max_evaluations;
    b.stop = stop;
    return b;
  }
};

struct OptimizerOptions {
  Algorithm algorithm = Algorithm::kEvolve;
  /// (1+λ) parameters — used by kEvolve, kMultistart, and (per window)
  /// kWindow. Includes `threads` for λ-parallel offspring evaluation.
  EvolveParams evolve;
  AnnealParams anneal;
  /// Window geometry for kWindow; its `evolve` member is replaced by the
  /// `evolve` field above so every algorithm is configured in one place.
  WindowParams window;
  /// Independent restarts for kMultistart (must be >= 1). kMultistart is
  /// a thin alias for an island fleet with `restarts` islands and
  /// Topology::kNone (docs/ISLANDS.md).
  unsigned restarts = 4;
  /// Island-model scale-out for kEvolve (ignored by kAnneal / kWindow).
  IslandSettings island;
  RunLimits limits;
};

/// Uniform result across algorithms. `best`, `best_fitness`, `seconds`,
/// `stop_reason`, and `evaluations` are always populated; the sub-result
/// matching the algorithm carries the full per-algorithm detail.
struct OptimizeResult {
  rqfp::Netlist best;
  Fitness best_fitness;
  std::uint64_t evaluations = 0;
  double seconds = 0.0;
  robust::StopReason stop_reason = robust::StopReason::kCompleted;

  EvolveResult evolve; ///< kEvolve / kMultistart
  AnnealResult anneal; ///< kAnneal
  WindowStats window;  ///< kWindow
};

/// Unified entry point over the four optimizer loops (evolve, multistart,
/// anneal, window). Construct once with options, then run() against any
/// number of (netlist, spec) pairs; resume() continues a checkpointed
/// kEvolve run. This facade is the only public way to launch a search —
/// the historical free functions (evolve(), anneal(), ...) are gone.
class Optimizer {
public:
  explicit Optimizer(OptimizerOptions options);

  const OptimizerOptions& options() const { return options_; }

  /// Runs the configured algorithm. `initial` must implement `spec`.
  OptimizeResult run(const rqfp::Netlist& initial,
                     std::span<const tt::TruthTable> spec) const;

  /// Continues a checkpointed run from limits.checkpoint_path (or, if that
  /// is empty, evolve.checkpoint_path). Only Algorithm::kEvolve supports
  /// checkpointing; any other algorithm throws std::invalid_argument, as
  /// does an empty checkpoint path. Island fleets (islands > 1) resume
  /// through run() with IslandSettings::resume set instead — they restore
  /// from state_dir, not from a single checkpoint file.
  OptimizeResult resume(std::span<const tt::TruthTable> spec) const;

private:
  EvolveParams evolve_params() const;
  AnnealParams anneal_params() const;

  OptimizerOptions options_;
};

} // namespace rcgp::core
