#include "core/window.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "exact/exact_rqfp.hpp"
#include "rqfp/simulate.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::core {

bool extract_window(const rqfp::Netlist& net, std::uint32_t first,
                    std::uint32_t count, unsigned max_inputs, Window& out) {
  if (first + count > net.num_gates()) {
    count = net.num_gates() - first;
  }
  if (count == 0) {
    return false;
  }
  const rqfp::Port window_begin = net.port_of(first, 0);
  const rqfp::Port window_end = net.port_of(first + count, 0);
  auto in_window = [&](rqfp::Port p) {
    return p >= window_begin && p < window_end;
  };

  // Boundary inputs: outer ports (non-const) read by window gates.
  std::vector<rqfp::Port> inputs;
  std::unordered_map<rqfp::Port, unsigned> input_index;
  for (std::uint32_t g = first; g < first + count; ++g) {
    for (const rqfp::Port p : net.gate(g).in) {
      if (p == rqfp::kConstPort || in_window(p)) {
        continue;
      }
      if (!input_index.count(p)) {
        input_index[p] = static_cast<unsigned>(inputs.size());
        inputs.push_back(p);
      }
    }
  }
  if (inputs.size() > max_inputs) {
    return false;
  }

  // Boundary outputs: window ports consumed outside the window (by later
  // gates or POs).
  std::vector<rqfp::Port> outputs;
  {
    std::vector<bool> needed(window_end, false);
    for (std::uint32_t g = first + count; g < net.num_gates(); ++g) {
      for (const rqfp::Port p : net.gate(g).in) {
        if (in_window(p)) {
          needed[p] = true;
        }
      }
    }
    for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
      const rqfp::Port p = net.po_at(o);
      if (in_window(p)) {
        needed[p] = true;
      }
    }
    for (rqfp::Port p = window_begin; p < window_end; ++p) {
      if (needed[p]) {
        outputs.push_back(p);
      }
    }
  }

  // Build the sub-netlist.
  rqfp::Netlist sub(static_cast<unsigned>(inputs.size()));
  auto map_port = [&](rqfp::Port p) -> rqfp::Port {
    if (p == rqfp::kConstPort) {
      return rqfp::kConstPort;
    }
    if (in_window(p)) {
      const std::uint32_t g = net.gate_of_port(p) - first;
      return sub.port_of(g, net.slot_of_port(p));
    }
    return 1 + input_index.at(p);
  };
  for (std::uint32_t g = first; g < first + count; ++g) {
    const auto& gate = net.gate(g);
    sub.add_gate({map_port(gate.in[0]), map_port(gate.in[1]),
                  map_port(gate.in[2])},
                 gate.config);
  }
  for (const rqfp::Port p : outputs) {
    sub.add_po(map_port(p));
  }

  out.sub = std::move(sub);
  out.boundary_inputs = std::move(inputs);
  out.boundary_outputs = std::move(outputs);
  out.first_gate = first;
  out.num_gates = count;
  return true;
}

rqfp::Netlist splice_window(const rqfp::Netlist& net, const Window& window,
                            const rqfp::Netlist& replacement) {
  if (replacement.num_pis() != window.boundary_inputs.size() ||
      replacement.num_pos() != window.boundary_outputs.size()) {
    throw std::invalid_argument("splice_window: interface mismatch");
  }
  rqfp::Netlist out(net.num_pis());
  if (net.has_pi_names()) {
    std::vector<std::string> names;
    for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
      names.push_back(net.pi_name(i));
    }
    out.set_pi_names(std::move(names));
  }

  // old outer port -> new port (identity for prefix gates and PIs).
  std::unordered_map<rqfp::Port, rqfp::Port> remap;
  remap[rqfp::kConstPort] = rqfp::kConstPort;
  for (rqfp::Port p = 1; p <= net.num_pis(); ++p) {
    remap[p] = p;
  }
  auto mapped = [&](rqfp::Port p) {
    const auto it = remap.find(p);
    if (it == remap.end()) {
      throw std::logic_error("splice_window: unmapped port");
    }
    return it->second;
  };

  // 1. Prefix gates unchanged.
  for (std::uint32_t g = 0; g < window.first_gate; ++g) {
    const auto& gate = net.gate(g);
    const auto ng = out.add_gate({mapped(gate.in[0]), mapped(gate.in[1]),
                                  mapped(gate.in[2])},
                                 gate.config);
    for (unsigned k = 0; k < 3; ++k) {
      remap[net.port_of(g, k)] = out.port_of(ng, k);
    }
  }

  // 2. Replacement gates, with its PIs remapped to boundary inputs.
  std::vector<rqfp::Port> repl_port_map(replacement.first_free_port(), 0);
  repl_port_map[rqfp::kConstPort] = rqfp::kConstPort;
  for (std::uint32_t i = 0; i < replacement.num_pis(); ++i) {
    repl_port_map[1 + i] = mapped(window.boundary_inputs[i]);
  }
  for (std::uint32_t g = 0; g < replacement.num_gates(); ++g) {
    const auto& gate = replacement.gate(g);
    const auto ng = out.add_gate({repl_port_map[gate.in[0]],
                                  repl_port_map[gate.in[1]],
                                  repl_port_map[gate.in[2]]},
                                 gate.config);
    for (unsigned k = 0; k < 3; ++k) {
      repl_port_map[replacement.port_of(g, k)] = out.port_of(ng, k);
    }
  }
  for (std::uint32_t o = 0; o < replacement.num_pos(); ++o) {
    remap[window.boundary_outputs[o]] = repl_port_map[replacement.po_at(o)];
  }

  // 3. Suffix gates.
  for (std::uint32_t g = window.first_gate + window.num_gates;
       g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    const auto ng = out.add_gate({mapped(gate.in[0]), mapped(gate.in[1]),
                                  mapped(gate.in[2])},
                                 gate.config);
    for (unsigned k = 0; k < 3; ++k) {
      remap[net.port_of(g, k)] = out.port_of(ng, k);
    }
  }

  // 4. POs.
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    out.add_po(mapped(net.po_at(o)), net.po_name(o));
  }
  return out;
}

rqfp::Netlist detail::window_optimize_impl(const rqfp::Netlist& input,
                                           const WindowParams& params,
                                           WindowStats* stats) {
  WindowStats local;
  rqfp::Netlist net = input.remove_dead_gates();
  local.gates_before = net.num_gates();
  const std::uint32_t stride =
      params.stride ? params.stride : params.window_gates;
  util::Stopwatch watch;
  const robust::RunBudget& budget = params.evolve.budget;
  // Checked between windows: a stop or an expired sweep deadline keeps all
  // improvements spliced so far and returns cleanly.
  bool stopped = false;

  for (unsigned pass = 0; pass < params.passes && !stopped; ++pass) {
    std::uint32_t start = 0;
    while (start < net.num_gates()) {
      if (budget.stop_requested() ||
          (budget.deadline_seconds > 0.0 &&
           watch.seconds() > budget.deadline_seconds)) {
        stopped = true;
        break;
      }
      Window window;
      std::uint32_t count = params.window_gates;
      bool ok = false;
      // Shrink the window until the boundary-input limit is met.
      while (count >= 4) {
        if (extract_window(net, start, count, params.max_window_inputs,
                           window)) {
          ok = true;
          break;
        }
        count /= 2;
      }
      if (!ok) {
        ++local.windows_skipped;
        start += stride;
        continue;
      }
      ++local.windows_tried;
      const auto spec = rqfp::simulate(window.sub);
      EvolveParams ep = params.evolve;
      ep.seed += start; // decorrelate windows
      ep.checkpoint_path.clear(); // per-window runs are not checkpointed
      if (budget.deadline_seconds > 0.0) {
        ep.budget.deadline_seconds =
            std::max(0.001, budget.deadline_seconds - watch.seconds());
      }
      // Each per-window run carries its own eval-pool scratch, so the
      // incremental sim + cost caches (SimCache/CostCache) are rebuilt
      // once per window and then serve every offspring inside it.
      const auto result = detail::evolve_impl(window.sub, spec, ep);
      if (result.best.num_gates() < window.sub.num_gates()) {
        ++local.windows_improved;
        net = splice_window(net, window, result.best);
        net = net.remove_dead_gates();
      }
      start += stride;
    }
  }

  local.gates_after = net.num_gates();
  if (stats) {
    *stats = local;
  }
  return net;
}

rqfp::Netlist exact_polish(const rqfp::Netlist& input,
                           const ExactPolishParams& params,
                           WindowStats* stats) {
  WindowStats local;
  rqfp::Netlist net = input.remove_dead_gates();
  local.gates_before = net.num_gates();
  util::Stopwatch watch;
  bool stopped = false;

  for (unsigned pass = 0; pass < params.passes && !stopped; ++pass) {
    std::uint32_t start = 0;
    while (start < net.num_gates()) {
      if (params.budget.stop_requested() ||
          (params.budget.deadline_seconds > 0.0 &&
           watch.seconds() > params.budget.deadline_seconds)) {
        stopped = true;
        break;
      }
      Window window;
      std::uint32_t count = params.window_gates;
      bool ok = false;
      while (count >= 2) {
        if (extract_window(net, start, count, params.max_window_inputs,
                           window)) {
          ok = true;
          break;
        }
        count /= 2;
      }
      if (!ok) {
        ++local.windows_skipped;
        ++start;
        continue;
      }
      ++local.windows_tried;
      const auto spec = rqfp::simulate(window.sub);
      exact::ExactParams ep;
      // Only gate counts strictly below the window size are interesting.
      ep.max_gates = window.sub.num_gates() - 1;
      ep.time_limit_seconds = params.seconds_per_window;
      ep.conflicts_per_call = params.conflicts_per_call;
      ep.minimize_garbage = false; // size is the objective here
      const auto result = exact::exact_synthesize(spec, ep);
      if (result.status == exact::ExactStatus::kSolved &&
          result.netlist->num_gates() < window.sub.num_gates()) {
        ++local.windows_improved;
        net = splice_window(net, window, *result.netlist);
        net = net.remove_dead_gates();
      }
      start += window.num_gates;
    }
  }

  local.gates_after = net.num_gates();
  if (stats) {
    *stats = local;
  }
  return net;
}

} // namespace rcgp::core
