#include "core/mutation.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/chromosome.hpp"
#include "obs/metrics.hpp"

namespace rcgp::core {

void MutationMix::add(const MutationStats& s) {
  ++mutations;
  genes_changed += s.genes_changed;
  swaps += s.swaps;
  direct_assigns += s.direct_assigns;
  config_flips += s.config_flips;
  po_moves += s.po_moves;
  skipped_infeasible += s.skipped_infeasible;
}

MutationMix& MutationMix::operator+=(const MutationMix& o) {
  mutations += o.mutations;
  genes_changed += o.genes_changed;
  swaps += o.swaps;
  direct_assigns += o.direct_assigns;
  config_flips += o.config_flips;
  po_moves += o.po_moves;
  skipped_infeasible += o.skipped_infeasible;
  return *this;
}

namespace {

constexpr std::uint32_t kNoConsumer = 0xFFFFFFFFu;
constexpr std::uint32_t kPoFlag = 0x80000000u;

/// consumer[] entry for gate input (gate, slot).
std::uint32_t gate_consumer(std::uint32_t gate, unsigned slot) {
  return gate * 4 + slot;
}
std::uint32_t po_consumer(std::uint32_t po) { return kPoFlag | po; }

std::vector<std::uint32_t> build_consumer_map(const rqfp::Netlist& net) {
  std::vector<std::uint32_t> consumer(net.first_free_port(), kNoConsumer);
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    for (unsigned i = 0; i < 3; ++i) {
      const rqfp::Port p = net.gate(g).in[i];
      if (p != rqfp::kConstPort) {
        consumer[p] = gate_consumer(g, i);
      }
    }
  }
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    const rqfp::Port p = net.po_at(o);
    if (p != rqfp::kConstPort) {
      consumer[p] = po_consumer(o);
    }
  }
  return consumer;
}

/// Shared reconnection engine over an externally-maintained consumer map.
/// Returns the outcome; updates the map on success.
ReconnectOutcome reconnect_with_map(rqfp::Netlist& net,
                                    std::vector<std::uint32_t>& consumer,
                                    std::uint32_t me, rqfp::Port v,
                                    rqfp::Port p, bool strict) {
  auto set_gene = [&](std::uint32_t code, rqfp::Port value) {
    if (code & kPoFlag) {
      net.set_po(code & ~kPoFlag, value);
    } else {
      net.gate(code / 4).in[code % 4] = value;
    }
  };
  auto port_limit = [&](std::uint32_t code) -> rqfp::Port {
    if (code & kPoFlag) {
      return net.first_free_port();
    }
    return net.port_of(code / 4, 0);
  };

  if (p == v) {
    return ReconnectOutcome::kNoChange;
  }
  if (p == rqfp::kConstPort || consumer[p] == kNoConsumer) {
    set_gene(me, p);
    if (p != rqfp::kConstPort) {
      consumer[p] = me;
    }
    if (v != rqfp::kConstPort) {
      consumer[v] = kNoConsumer;
    }
    return ReconnectOutcome::kDirect;
  }
  const std::uint32_t partner = consumer[p];
  if (partner == me) {
    return ReconnectOutcome::kNoChange;
  }
  if (!strict) {
    set_gene(me, p);
    consumer[p] = me;
    if (v != rqfp::kConstPort) {
      consumer[v] = kNoConsumer;
    }
    return ReconnectOutcome::kDirect;
  }
  if (v >= port_limit(partner)) {
    return ReconnectOutcome::kInfeasible;
  }
  set_gene(me, p);
  set_gene(partner, v);
  consumer[p] = me;
  if (v != rqfp::kConstPort) {
    consumer[v] = partner;
  }
  return ReconnectOutcome::kSwapped;
}

} // namespace

ReconnectOutcome reconnect_input(rqfp::Netlist& net, std::uint32_t g,
                                 unsigned slot, rqfp::Port target) {
  if (target >= net.port_of(g, 0)) {
    throw std::invalid_argument("reconnect_input: forward reference");
  }
  auto consumer = build_consumer_map(net);
  return reconnect_with_map(net, consumer, gate_consumer(g, slot),
                            net.gate(g).in[slot], target, /*strict=*/true);
}

ReconnectOutcome reconnect_po(rqfp::Netlist& net, std::uint32_t po,
                              rqfp::Port target) {
  if (target >= net.first_free_port()) {
    throw std::invalid_argument("reconnect_po: port out of range");
  }
  auto consumer = build_consumer_map(net);
  return reconnect_with_map(net, consumer, po_consumer(po), net.po_at(po),
                            target, /*strict=*/true);
}

MutationStats mutate(rqfp::Netlist& net, util::Rng& rng,
                     const MutationParams& params) {
  // Registered once, then relaxed atomic increments only (hot loop).
  static obs::Counter& c_calls = obs::registry().counter("mutation.calls");
  static obs::Counter& c_genes =
      obs::registry().counter("mutation.genes_changed");
  static obs::Counter& c_infeasible =
      obs::registry().counter("mutation.skipped_infeasible");
  MutationStats stats;
  const std::uint32_t n_genes = num_genes(net);
  if (n_genes == 0) {
    return stats;
  }
  auto consumer = build_consumer_map(net);

  /// Reconnects gene `me` (currently holding `v`) to port `p`, applying
  /// the paper's swap rule; folds the outcome into the stats.
  auto reconnect = [&](std::uint32_t me, rqfp::Port v, rqfp::Port p,
                       bool strict) -> bool {
    switch (reconnect_with_map(net, consumer, me, v, p, strict)) {
      case ReconnectOutcome::kNoChange:
        return false;
      case ReconnectOutcome::kDirect:
        ++stats.direct_assigns;
        return true;
      case ReconnectOutcome::kSwapped:
        ++stats.swaps;
        return true;
      case ReconnectOutcome::kInfeasible:
        ++stats.skipped_infeasible;
        return false;
    }
    return false;
  };

  const auto budget = static_cast<std::uint64_t>(
      std::max(1.0, params.mu * static_cast<double>(n_genes)));
  const std::uint64_t m = 1 + rng.below(budget);

  for (std::uint64_t round = 0; round < m; ++round) {
    const auto index = static_cast<std::uint32_t>(rng.below(n_genes));
    const GeneRef ref = gene_at(net, index);
    switch (ref.kind) {
      case GeneRef::Kind::kGateConfig: {
        const auto beta = static_cast<unsigned>(rng.below(9));
        auto& gate = net.gate(ref.gate);
        gate.config = gate.config.with_flip(beta);
        ++stats.config_flips;
        ++stats.genes_changed;
        break;
      }
      case GeneRef::Kind::kGateInput: {
        const std::uint32_t me = gate_consumer(ref.gate, ref.slot);
        const rqfp::Port limit = net.port_of(ref.gate, 0);
        const auto p = static_cast<rqfp::Port>(rng.below(limit));
        const rqfp::Port v = net.gate(ref.gate).in[ref.slot];
        if (reconnect(me, v, p, /*strict=*/true)) {
          ++stats.genes_changed;
        }
        break;
      }
      case GeneRef::Kind::kPrimaryOutput: {
        const std::uint32_t me = po_consumer(ref.po);
        const auto p =
            static_cast<rqfp::Port>(rng.below(net.first_free_port()));
        const rqfp::Port v = net.po_at(ref.po);
        if (reconnect(me, v, p, params.strict_po_swap)) {
          ++stats.po_moves;
          ++stats.genes_changed;
        }
        break;
      }
    }
  }
  c_calls.inc();
  c_genes.inc(stats.genes_changed);
  c_infeasible.inc(stats.skipped_infeasible);
  return stats;
}

} // namespace rcgp::core
