#pragma once

#include <cstdint>
#include <string>

#include "rqfp/netlist.hpp"

namespace rcgp::core {

/// Gene arithmetic over the RQFP netlist-as-genotype.
///
/// The paper encodes a candidate as n_C*n_R*(n_i+1) + n_po integers with
/// n_i = 3 (Fig. 3): each gate contributes three connection genes and one
/// function (inverter-configuration) gene, followed by one gene per PO.
/// RCGP's genotype is the netlist itself; this header gives the gene-index
/// view used by point mutation.
struct GeneRef {
  enum class Kind { kGateInput, kGateConfig, kPrimaryOutput };
  Kind kind = Kind::kGateInput;
  std::uint32_t gate = 0;  // for kGateInput / kGateConfig
  unsigned slot = 0;       // input slot 0..2 for kGateInput
  std::uint32_t po = 0;    // for kPrimaryOutput
};

/// Number of genes in the chromosome: 4 per gate + one per PO.
inline std::uint32_t num_genes(const rqfp::Netlist& net) {
  return 4 * net.num_gates() + net.num_pos();
}

/// Maps a flat gene index to its location.
GeneRef gene_at(const rqfp::Netlist& net, std::uint32_t index);

/// Renders the genotype in the paper's Fig. 3 notation:
/// "(in0, in1, in2, xxx-xxx-xxx) ... (po0, po1, ...)".
std::string to_genotype_string(const rqfp::Netlist& net);

} // namespace rcgp::core
