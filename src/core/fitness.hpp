#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rqfp/buffer.hpp"
#include "rqfp/cost.hpp"
#include "rqfp/netlist.hpp"
#include "rqfp/simulate.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::core {

/// Performance objective once functional correctness holds.
enum class Objective {
  /// The paper's §3.2.1 order: gates, then garbage, then buffers.
  kPaperLexicographic,
  /// Extension: minimize Josephson junctions (24*n_r + 4*n_b) directly,
  /// tie-breaking on garbage — useful when buffer overhead dominates.
  kJjCount,
};

/// Lexicographic CGP fitness per §3.2.1 of the paper:
///  1. functional success rate (simulation-based equivalence) must be 1.0
///     before any performance term is considered;
///  2. then fewer RQFP gates is better;
///  3. then fewer garbage outputs;
///  4. then fewer path-balancing buffers.
struct Fitness {
  double success_rate = 0.0;
  std::uint32_t n_r = 0;
  std::uint32_t n_g = 0;
  std::uint32_t n_b = 0;
  Objective objective = Objective::kPaperLexicographic;

  std::uint32_t jjs() const { return 24 * n_r + 4 * n_b; }

  bool functionally_correct() const { return success_rate >= 1.0; }

  /// True when `this` is at least as fit as `other` ((1+λ) acceptance uses
  /// better-or-equal so neutral drift is possible).
  bool better_or_equal(const Fitness& other) const;
  bool strictly_better(const Fitness& other) const {
    return better_or_equal(other) && !other.better_or_equal(*this);
  }

  std::string to_string() const;
};

struct FitnessOptions {
  rqfp::BufferSchedule schedule = rqfp::BufferSchedule::kAsap;
  Objective objective = Objective::kPaperLexicographic;
};

/// Evaluates a genotype against the specification (one table per PO over
/// the netlist's PIs). Cost terms are measured on the live subnetwork, so
/// not-yet-shrunk offspring are judged by their phenotype.
Fitness evaluate(const rqfp::Netlist& net,
                 std::span<const tt::TruthTable> spec,
                 const FitnessOptions& options = {});

/// Incremental evaluation: bit-identical Fitness for `child`, but the
/// simulation phase re-computes only the dirty cone relative to `base`,
/// whose port values `cache` holds (rqfp::build_sim_cache). `base` and
/// `child` must share PI and gate counts — exactly what CGP mutation
/// preserves. The cache is restored before returning, so one per-worker
/// cache serves every offspring of a generation without allocating.
Fitness evaluate_delta(const rqfp::Netlist& base, rqfp::SimCache& cache,
                       const rqfp::Netlist& child,
                       std::span<const tt::TruthTable> spec,
                       const FitnessOptions& options = {});

/// Fully incremental evaluation: the simulation phase runs through the
/// dirty-cone SimCache as above, and — when the child is functionally
/// correct — the cost phase runs through `cost_cache` (rqfp::cost_of_delta)
/// instead of a from-scratch cost_of. `cost_cache` must describe `base`
/// under options.schedule (rqfp::build_cost_cache / update_cost_cache);
/// a cache bound to a different schedule or not yet built is rebuilt for
/// `base` on the spot. Neither cache is left modified, so one pair serves
/// every offspring of a generation.
Fitness evaluate_delta(const rqfp::Netlist& base, rqfp::SimCache& cache,
                       rqfp::CostCache& cost_cache,
                       const rqfp::Netlist& child,
                       std::span<const tt::TruthTable> spec,
                       const FitnessOptions& options = {});

/// λ-batched fully incremental evaluation: one gate-major simulation pass
/// (rqfp::simulate_delta_batch) scores every child of a block against the
/// shared `cache`, which must hold `base`'s port values and is only read —
/// no per-sibling undo/restore. Per child the Fitness is bit-identical to
/// evaluate_delta(base, cache, cost_cache, *children[c], spec, options),
/// and cec.sim_checks still advances once per child. out_fitness must
/// provide children.size() slots; `batch` is reusable scratch.
void evaluate_delta_batch(const rqfp::Netlist& base,
                          const rqfp::SimCache& cache,
                          rqfp::CostCache& cost_cache,
                          const std::vector<const rqfp::Netlist*>& children,
                          std::span<const tt::TruthTable> spec,
                          const FitnessOptions& options,
                          rqfp::DeltaBatch& batch,
                          std::span<Fitness> out_fitness);

} // namespace rcgp::core
