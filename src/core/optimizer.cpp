#include "core/optimizer.hpp"

#include <stdexcept>

#include "island/island.hpp"
#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::core {

std::string_view to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kEvolve: return "evolve";
    case Algorithm::kMultistart: return "multistart";
    case Algorithm::kAnneal: return "anneal";
    case Algorithm::kWindow: return "window";
  }
  return "unknown";
}

Algorithm parse_algorithm(std::string_view name) {
  if (name == "evolve") return Algorithm::kEvolve;
  if (name == "multistart") return Algorithm::kMultistart;
  if (name == "anneal") return Algorithm::kAnneal;
  if (name == "window") return Algorithm::kWindow;
  throw std::invalid_argument(
      "unknown optimizer algorithm '" + std::string(name) +
      "' (expected evolve|multistart|anneal|window)");
}

std::string_view to_string(Topology topology) {
  switch (topology) {
    case Topology::kNone: return "none";
    case Topology::kRing: return "ring";
    case Topology::kStar: return "star";
    case Topology::kFull: return "full";
  }
  return "unknown";
}

Topology parse_topology(std::string_view name) {
  if (name == "none") return Topology::kNone;
  if (name == "ring") return Topology::kRing;
  if (name == "star") return Topology::kStar;
  if (name == "full") return Topology::kFull;
  throw std::invalid_argument("unknown island topology '" +
                              std::string(name) +
                              "' (expected none|ring|star|full)");
}

Optimizer::Optimizer(OptimizerOptions options) : options_(std::move(options)) {
  if (options_.algorithm == Algorithm::kMultistart &&
      options_.restarts == 0) {
    throw std::invalid_argument("Optimizer: restarts must be >= 1");
  }
  if (options_.island.islands == 0) {
    throw std::invalid_argument("Optimizer: islands must be >= 1");
  }
  if (options_.island.islands > 1 &&
      options_.algorithm != Algorithm::kEvolve &&
      options_.algorithm != Algorithm::kMultistart) {
    throw std::invalid_argument(
        "Optimizer: islands > 1 requires Algorithm::kEvolve");
  }
}

// The merge rule is additive: a default (zero / empty / null) RunLimits
// field keeps whatever the per-algorithm params say, a set field wins.
EvolveParams Optimizer::evolve_params() const {
  EvolveParams p = options_.evolve;
  const RunLimits& l = options_.limits;
  if (l.deadline_seconds > 0.0) {
    p.budget.deadline_seconds = l.deadline_seconds;
  }
  if (l.max_generations) {
    p.budget.max_generations = l.max_generations;
  }
  if (l.max_evaluations) {
    p.budget.max_evaluations = l.max_evaluations;
  }
  if (l.stop) {
    p.budget.stop = l.stop;
  }
  if (!l.checkpoint_path.empty()) {
    p.checkpoint_path = l.checkpoint_path;
  }
  if (l.checkpoint_interval) {
    p.checkpoint_interval = l.checkpoint_interval;
  }
  return p;
}

AnnealParams Optimizer::anneal_params() const {
  AnnealParams p = options_.anneal;
  const RunLimits& l = options_.limits;
  if (l.deadline_seconds > 0.0) {
    p.budget.deadline_seconds = l.deadline_seconds;
  }
  if (l.max_generations) {
    p.budget.max_generations = l.max_generations;
  }
  if (l.max_evaluations) {
    p.budget.max_evaluations = l.max_evaluations;
  }
  if (l.stop) {
    p.budget.stop = l.stop;
  }
  return p;
}

OptimizeResult Optimizer::run(const rqfp::Netlist& initial,
                              std::span<const tt::TruthTable> spec) const {
  static obs::Counter& c_runs = obs::registry().counter("optimizer.runs");
  c_runs.inc();
  OptimizeResult r;
  switch (options_.algorithm) {
    case Algorithm::kEvolve: {
      const IslandSettings& is = options_.island;
      if (is.islands > 1 || is.resume || is.executor != nullptr) {
        island::FleetOptions fo;
        fo.islands = is.islands;
        fo.topology = is.topology;
        fo.migration_interval = is.migration_interval;
        fo.migration_size = is.migration_size;
        fo.state_dir = is.state_dir;
        fo.resume = is.resume;
        fo.executor = is.executor;
        fo.parallelism = is.parallelism;
        r.evolve = island::run_fleet(initial, spec, evolve_params(), fo);
      } else {
        r.evolve = detail::evolve_impl(initial, spec, evolve_params());
      }
      r.best = r.evolve.best;
      r.best_fitness = r.evolve.best_fitness;
      r.evaluations = r.evolve.evaluations;
      r.seconds = r.evolve.seconds;
      r.stop_reason = r.evolve.stop_reason;
      break;
    }
    case Algorithm::kMultistart: {
      // A thin alias over the island runner: `restarts` islands with
      // Topology::kNone reproduce the historical sequential multistart
      // trajectories bit-identically (docs/ISLANDS.md).
      EvolveParams p = evolve_params();
      p.checkpoint_path.clear();
      island::FleetOptions fo;
      fo.islands = options_.restarts;
      fo.topology = Topology::kNone;
      fo.state_dir = options_.island.state_dir;
      fo.resume = options_.island.resume;
      fo.executor = options_.island.executor;
      r.evolve = island::run_fleet(initial, spec, p, fo);
      r.best = r.evolve.best;
      r.best_fitness = r.evolve.best_fitness;
      r.evaluations = r.evolve.evaluations;
      r.seconds = r.evolve.seconds;
      r.stop_reason = r.evolve.stop_reason;
      break;
    }
    case Algorithm::kAnneal: {
      r.anneal = detail::anneal_impl(initial, spec, anneal_params());
      r.best = r.anneal.best;
      r.best_fitness = r.anneal.best_fitness;
      // Annealing evaluates once per step (plus the best-seen re-check,
      // already counted in the cec.sim_checks telemetry).
      r.evaluations = r.anneal.steps_run;
      r.seconds = r.anneal.seconds;
      r.stop_reason = r.anneal.stop_reason;
      break;
    }
    case Algorithm::kWindow: {
      util::Stopwatch watch;
      WindowParams p = options_.window;
      p.evolve = evolve_params();
      p.evolve.checkpoint_path.clear(); // per-window runs never checkpoint
      r.best = detail::window_optimize_impl(initial, p, &r.window);
      r.best_fitness = evaluate(r.best, spec, p.evolve.fitness);
      r.seconds = watch.seconds();
      r.stop_reason = (p.evolve.budget.stop_requested())
                          ? robust::StopReason::kStopRequested
                          : robust::StopReason::kCompleted;
      break;
    }
  }
  return r;
}

OptimizeResult Optimizer::resume(std::span<const tt::TruthTable> spec) const {
  if (options_.algorithm != Algorithm::kEvolve) {
    throw std::invalid_argument(
        "Optimizer::resume: only Algorithm::kEvolve supports checkpointed "
        "resume");
  }
  EvolveParams p = evolve_params();
  if (p.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "Optimizer::resume: no checkpoint path configured (set "
        "RunLimits::checkpoint_path or EvolveParams::checkpoint_path)");
  }
  OptimizeResult r;
  r.evolve = detail::evolve_resume_impl(p.checkpoint_path, spec, p);
  r.best = r.evolve.best;
  r.best_fitness = r.evolve.best_fitness;
  r.evaluations = r.evolve.evaluations;
  r.seconds = r.evolve.seconds;
  r.stop_reason = r.evolve.stop_reason;
  return r;
}

} // namespace rcgp::core
