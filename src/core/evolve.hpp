#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "core/fitness.hpp"
#include "core/mutation.hpp"
#include "obs/trace.hpp"
#include "robust/integrity.hpp"
#include "robust/stop.hpp"
#include "rqfp/netlist.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::robust {
struct EvolveCheckpoint;
} // namespace rcgp::robust

namespace rcgp::core {

struct EvolveParams {
  /// Number N of generations (the paper runs 5*10^7; laptop-scale budgets
  /// of 10^3..10^5 already show the paper's qualitative behaviour).
  std::uint64_t generations = 100000;
  /// λ offspring per generation in the (1+λ) evolutionary strategy.
  unsigned lambda = 4;
  MutationParams mutation;
  std::uint64_t seed = 1;

  /// Worker threads for λ-parallel offspring evaluation (0 = hardware
  /// concurrency), clamped to [1, λ]. Offspring k of generation g draws
  /// from its own counter-based RNG stream derived from (seed, g, k), so
  /// the result is bit-identical for every thread count — `threads` is a
  /// pure throughput knob (docs/PARALLELISM.md).
  unsigned threads = 0;

  /// Confirm every accepted strict improvement with SAT-based formal
  /// verification (the paper combines circuit simulation with formal
  /// verification). Simulation here is exhaustive, so this is a
  /// belt-and-braces check; it also exercises the CEC engine.
  bool sat_verify_improvements = false;
  std::uint64_t sat_conflict_budget = 100000;

  /// Disable the shrink step on acceptance (ablation only — the paper's
  /// §3.2.3 argues shrink reduces the search space).
  bool disable_shrink = false;

  /// Stop early after this many seconds (0 = no limit).
  double time_limit_seconds = 0.0;
  /// Stop early after this many generations without improvement (0 = off).
  std::uint64_t stagnation_limit = 0;

  /// Cooperative stop / deadline / evaluation budgets, polled between
  /// offspring evaluations so even SAT-heavy configs stop promptly. All
  /// exits are clean: the loop returns the best-so-far netlist and reports
  /// why it stopped in EvolveResult::stop_reason.
  robust::RunBudget budget;

  /// Crash safety: when non-empty, the full evolve state (parent netlist,
  /// fitness, every counter, elapsed budget) is saved atomically to this
  /// path every `checkpoint_interval` generations and once more on exit.
  /// No RNG engine state is stored: offspring streams are re-derived from
  /// (seed, generation, k), so a checkpoint is also thread-count
  /// independent. evolve_resume() continues such a run bit-identically to
  /// one that was never interrupted.
  std::string checkpoint_path;
  std::uint64_t checkpoint_interval = 1000;

  /// Integrity re-checking level (docs/ROBUSTNESS.md): kBoundaries
  /// validates + re-simulates the parent at run start/end and on resume;
  /// kEveryAcceptance additionally checks every accepted offspring.
  /// Violations raise robust::IntegrityError with a netlist dump.
  robust::ParanoiaLevel paranoia = robust::ParanoiaLevel::kOff;

  FitnessOptions fitness;

  /// Optional per-improvement callback (generation, fitness).
  std::function<void(std::uint64_t, const Fitness&)> on_improvement;

  /// Optional JSONL evolution trace (not owned; nullptr disables tracing
  /// entirely — the hot loop then takes no trace branches beyond one
  /// pointer test). Events: run_start, improvement, heartbeat, run_end.
  obs::TraceSink* trace = nullptr;
  /// Emit a heartbeat event every this many generations when tracing.
  std::uint64_t trace_heartbeat = 10000;
};

struct EvolveResult {
  rqfp::Netlist best;
  Fitness best_fitness;
  std::uint64_t generations_run = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t improvements = 0;
  std::uint64_t sat_confirmations = 0;
  /// SAT conflicts spent confirming improvements (sat_verify_improvements).
  std::uint64_t sat_cec_conflicts = 0;
  /// Operator statistics over every offspring mutation...
  MutationMix mutations_attempted;
  /// ...and over the mutations of offspring accepted as the new parent —
  /// the per-kind acceptance picture (accepted/attempted per operator).
  MutationMix mutations_accepted;
  double seconds = 0.0;
  /// Why the loop exited (kCompleted = full generation budget consumed).
  robust::StopReason stop_reason = robust::StopReason::kCompleted;
  /// True when this result continues a checkpointed run; all counters and
  /// `seconds` are then cumulative across the whole resume chain, so a
  /// resumed run that finishes reports exactly what an uninterrupted run
  /// would have.
  bool resumed = false;
  /// Stagnation counter / last improving generation at exit. Together with
  /// the counters above they are exactly the state a
  /// robust::EvolveCheckpoint captures, so a caller slicing one logical
  /// run into resumable chunks (the island runner) can rebuild the
  /// checkpoint in memory without a file round-trip.
  std::uint64_t since_improvement = 0;
  std::uint64_t last_improvement_gen = 0;
};

namespace detail {

/// Implementation entry points behind the core::Optimizer facade
/// (core/optimizer.hpp). Call these from internal code; external callers
/// should go through Optimizer.
EvolveResult evolve_impl(const rqfp::Netlist& initial,
                         std::span<const tt::TruthTable> spec,
                         const EvolveParams& params);
EvolveResult evolve_resume_impl(const std::string& checkpoint_path,
                                std::span<const tt::TruthTable> spec,
                                const EvolveParams& params);
/// Continues from an in-memory checkpoint without touching the
/// filesystem. Identity rules are the same as evolve_resume(); the island
/// runner (src/island) uses this to run one slice of an island between
/// two migration boundaries.
EvolveResult evolve_continue_impl(const robust::EvolveCheckpoint& state,
                                  std::span<const tt::TruthTable> spec,
                                  const EvolveParams& params);

} // namespace detail

/// Continues a checkpointed (1+λ) run from `checkpoint_path`. The
/// checkpoint's run identity (seed, λ, μ, total generations) must match
/// `params` — a mismatch throws std::invalid_argument so a checkpoint is
/// never silently continued under a different search configuration. The
/// checkpointed parent is re-validated against `spec` (corruption raises
/// robust::IntegrityError). A resumed run is bit-identical to an
/// uninterrupted one: same best netlist, fitness, and counters.
EvolveResult evolve_resume(const std::string& checkpoint_path,
                           std::span<const tt::TruthTable> spec,
                           const EvolveParams& params = {});

} // namespace rcgp::core
