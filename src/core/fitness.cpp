#include "core/fitness.hpp"

#include <stdexcept>

#include "cec/sim_cec.hpp"
#include "rqfp/cost.hpp"

namespace rcgp::core {

bool Fitness::better_or_equal(const Fitness& other) const {
  if (success_rate != other.success_rate) {
    return success_rate > other.success_rate;
  }
  if (!functionally_correct()) {
    return true; // equally wrong: allow drift
  }
  if (objective == Objective::kJjCount) {
    if (jjs() != other.jjs()) {
      return jjs() < other.jjs();
    }
    return n_g <= other.n_g;
  }
  if (n_r != other.n_r) {
    return n_r < other.n_r;
  }
  if (n_g != other.n_g) {
    return n_g < other.n_g;
  }
  return n_b <= other.n_b;
}

std::string Fitness::to_string() const {
  return "rate=" + std::to_string(success_rate) +
         " n_r=" + std::to_string(n_r) + " n_g=" + std::to_string(n_g) +
         " n_b=" + std::to_string(n_b);
}

namespace {

Fitness from_sim(const rqfp::Netlist& net, const cec::SimResult& sim,
                 const FitnessOptions& options) {
  Fitness f;
  f.objective = options.objective;
  f.success_rate = sim.success_rate;
  if (!sim.all_match) {
    return f;
  }
  f.success_rate = 1.0;
  const auto cost = rqfp::cost_of(net, options.schedule);
  f.n_r = cost.n_r;
  f.n_g = cost.n_g;
  f.n_b = cost.n_b;
  return f;
}

} // namespace

Fitness evaluate(const rqfp::Netlist& net,
                 std::span<const tt::TruthTable> spec,
                 const FitnessOptions& options) {
  return from_sim(net, cec::sim_check(net, spec), options);
}

Fitness evaluate_delta(const rqfp::Netlist& base, rqfp::SimCache& cache,
                       const rqfp::Netlist& child,
                       std::span<const tt::TruthTable> spec,
                       const FitnessOptions& options) {
  return from_sim(child, cec::sim_check_delta(base, child, spec, cache),
                  options);
}

Fitness evaluate_delta(const rqfp::Netlist& base, rqfp::SimCache& cache,
                       rqfp::CostCache& cost_cache,
                       const rqfp::Netlist& child,
                       std::span<const tt::TruthTable> spec,
                       const FitnessOptions& options) {
  const auto sim = cec::sim_check_delta(base, child, spec, cache);
  Fitness f;
  f.objective = options.objective;
  f.success_rate = sim.success_rate;
  if (!sim.all_match) {
    return f; // incorrect offspring never reach the cost phase
  }
  f.success_rate = 1.0;
  if (!cost_cache.valid || cost_cache.schedule != options.schedule) {
    rqfp::build_cost_cache(base, options.schedule, cost_cache);
  }
  const auto cost = rqfp::cost_of_delta(base, child, cost_cache);
  f.n_r = cost.n_r;
  f.n_g = cost.n_g;
  f.n_b = cost.n_b;
  return f;
}

void evaluate_delta_batch(const rqfp::Netlist& base,
                          const rqfp::SimCache& cache,
                          rqfp::CostCache& cost_cache,
                          const std::vector<const rqfp::Netlist*>& children,
                          std::span<const tt::TruthTable> spec,
                          const FitnessOptions& options,
                          rqfp::DeltaBatch& batch,
                          std::span<Fitness> out_fitness) {
  if (out_fitness.size() < children.size()) {
    throw std::invalid_argument("evaluate_delta_batch: fitness span too "
                                "small");
  }
  rqfp::simulate_delta_batch(base, children, cache, batch);
  for (std::size_t c = 0; c < children.size(); ++c) {
    const rqfp::Netlist& child = *children[c];
    const auto sim = cec::sim_compare(batch.children[c].po, spec);
    Fitness f;
    f.objective = options.objective;
    f.success_rate = sim.success_rate;
    if (sim.all_match) {
      f.success_rate = 1.0;
      if (!cost_cache.valid || cost_cache.schedule != options.schedule) {
        rqfp::build_cost_cache(base, options.schedule, cost_cache);
      }
      const auto cost = rqfp::cost_of_delta(base, child, cost_cache);
      f.n_r = cost.n_r;
      f.n_g = cost.n_g;
      f.n_b = cost.n_b;
    }
    out_fitness[c] = f;
  }
}

} // namespace rcgp::core
