#pragma once

#include <cstdint>

#include "rqfp/netlist.hpp"
#include "util/rng.hpp"

namespace rcgp::core {

struct MutationParams {
  /// Mutation rate μ ∈ [0,1]: up to μ * n_L genes are modified per
  /// mutation (the paper's experiments use μ = 1).
  double mu = 1.0;
  /// Apply the fan-out-preserving swap rule to primary-output genes too.
  /// The paper updates PO genes directly (tolerating transient fan-out
  /// violations resolved by shrink); RCGP keeps the invariant strict by
  /// default. Set false to mirror the paper's permissive behaviour — the
  /// mutated netlist may then fail validate() until shrink runs.
  bool strict_po_swap = true;
};

struct MutationStats {
  std::uint32_t genes_changed = 0;
  std::uint32_t swaps = 0;
  std::uint32_t direct_assigns = 0;
  std::uint32_t config_flips = 0;
  std::uint32_t po_moves = 0;
  std::uint32_t skipped_infeasible = 0;
};

/// Accumulated mutation-operator statistics over many mutate() calls.
/// EvolveResult keeps one mix for attempted offspring and one for accepted
/// offspring, so acceptance rates per operator kind are observable (the
/// input future adaptive-mutation work needs).
struct MutationMix {
  std::uint64_t mutations = 0; // mutate() calls folded in
  std::uint64_t genes_changed = 0;
  std::uint64_t swaps = 0;
  std::uint64_t direct_assigns = 0;
  std::uint64_t config_flips = 0;
  std::uint64_t po_moves = 0;
  std::uint64_t skipped_infeasible = 0;

  void add(const MutationStats& s);
  MutationMix& operator+=(const MutationMix& o);
};

/// Point mutation per §3.2.2 of the paper: each modified gene is either a
/// node-input reconnection (with the value-swap rule that preserves the
/// single fan-out invariant), a primary-output reconnection, or a one-bit
/// inverter-configuration flip. The netlist is mutated in place.
MutationStats mutate(rqfp::Netlist& net, util::Rng& rng,
                     const MutationParams& params = {});

/// Outcome of a single deterministic gene reconnection.
enum class ReconnectOutcome {
  kNoChange,   // target equals the current value (or self-swap)
  kDirect,     // situation (2): constant or unconsumed port, assigned
  kSwapped,    // situation (1): values swapped with the target's consumer
  kInfeasible  // swap partner cannot legally read the old value
};

/// Reconnects input `slot` of gate `g` to `target`, applying the paper's
/// swap rule. The single fan-out invariant is preserved. `target` must be
/// readable by gate g (i.e. < net.port_of(g, 0)).
ReconnectOutcome reconnect_input(rqfp::Netlist& net, std::uint32_t g,
                                 unsigned slot, rqfp::Port target);

/// Reconnects primary output `po` to `target` with the same swap rule.
ReconnectOutcome reconnect_po(rqfp::Netlist& net, std::uint32_t po,
                              rqfp::Port target);

} // namespace rcgp::core
