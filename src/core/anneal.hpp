#pragma once

#include <cstdint>
#include <span>

#include "core/fitness.hpp"
#include "core/mutation.hpp"
#include "obs/trace.hpp"
#include "robust/stop.hpp"
#include "rqfp/netlist.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::core {

/// Simulated-annealing optimizer over the same genotype and mutation
/// operators as the CGP loop — an ablation counterpart to the paper's
/// (1+λ) evolutionary strategy (§2.2 positions CGP against other
/// metaheuristics). Unlike the ES, annealing may pass through functionally
/// incorrect states (penalized by mismatch count) and accepts uphill moves
/// with Boltzmann probability.
struct AnnealParams {
  std::uint64_t steps = 100000;
  double initial_temperature = 50.0;
  double final_temperature = 0.01;
  MutationParams mutation; // small per-step perturbations work best
  std::uint64_t seed = 1;
  FitnessOptions fitness;

  /// Cooperative stop / deadline / evaluation budgets, polled every step.
  /// Tripping any of them exits cleanly with the best-seen netlist;
  /// max_generations caps steps here.
  robust::RunBudget budget;

  /// Optional JSONL trace (not owned; nullptr disables). Events:
  /// run_start, improvement (new best-seen), heartbeat, run_end.
  obs::TraceSink* trace = nullptr;
  /// Emit a heartbeat event every this many steps when tracing.
  std::uint64_t trace_heartbeat = 10000;
};

struct AnnealResult {
  rqfp::Netlist best;      // best functionally-correct state seen
  Fitness best_fitness;
  std::uint64_t steps_run = 0;
  std::uint64_t accepted = 0;
  std::uint64_t uphill_accepted = 0;
  double seconds = 0.0;
  /// Why the loop exited (kCompleted = full step budget consumed).
  robust::StopReason stop_reason = robust::StopReason::kCompleted;
};

/// Scalar energy used by the annealer: functional mismatches dominate,
/// then gates, garbage, buffers. Exposed for tests.
double anneal_energy(const rqfp::Netlist& net,
                     std::span<const tt::TruthTable> spec,
                     const FitnessOptions& options = {});

namespace detail {

/// Implementation behind the core::Optimizer facade (core/optimizer.hpp).
/// Runs annealing from a functionally-correct initial netlist; the result
/// is always functionally correct (tracked as best-seen).
AnnealResult anneal_impl(const rqfp::Netlist& initial,
                         std::span<const tt::TruthTable> spec,
                         const AnnealParams& params);

} // namespace detail

} // namespace rcgp::core
