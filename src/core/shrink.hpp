#pragma once

#include "rqfp/netlist.hpp"

namespace rcgp::core {

/// The paper's shrink step (§3.2.3): removes useless gates — gates none of
/// whose outputs transitively reach a primary output — and renumbers
/// ports, reducing the chromosome length and hence the search space.
rqfp::Netlist shrink(const rqfp::Netlist& net);

/// Number of useless gates that shrink would remove.
std::uint32_t count_useless_gates(const rqfp::Netlist& net);

} // namespace rcgp::core
