#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/optimizer.hpp"
#include "rqfp/cost.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::obs::json {
class Value;
class Writer;
} // namespace rcgp::obs::json

namespace rcgp::core {

/// Schema version stamped into every serialized request/response. Bump it
/// when a field changes meaning; parsers reject documents from the future
/// so stale binaries fail loudly instead of misreading jobs.
///
/// History: schema 2 added the island-model fields (`islands`,
/// `topology`, `migration_interval`, `migration_size`). Serialization is
/// backward-compatible: a request that leaves every island field at its
/// default is stamped schema 1, so island-free jobs keep round-tripping
/// through schema-1 binaries; schema-1 documents parse unchanged (they
/// simply have no island fields, meaning one island).
inline constexpr std::uint64_t kRequestSchemaVersion = 2;

/// How a request interacts with the synthesis result cache (src/cache).
enum class CachePolicy : std::uint8_t {
  kOff,  ///< never read or write the cache
  kUse,  ///< serve hits directly, write verified results back (default)
  kSeed, ///< synthesize anyway, but seed the CGP run from a cache hit
};

/// Stable lowercase name ("off", "use", "seed").
std::string_view to_string(CachePolicy policy);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
CachePolicy parse_cache_policy(std::string_view name);

/// The one description of a synthesis job, consumed identically by the
/// `rcgp synth` CLI flags, each `rcgp batch` manifest line, and the
/// `rcgp serve` socket protocol (docs/SERVICE.md). Every numeric field
/// follows the manifest convention: 0 (or -1 for `retries`) means "not
/// set, use the executor's default", so a request only ever overrides.
///
/// Exactly one of `circuit` and `spec` describes the function: `circuit`
/// names a file in any format the io facade reads or a built-in benchmark
/// (`rcgp list`); `spec` carries the truth tables inline (one per output,
/// all over the same inputs) so a service client needs no shared
/// filesystem.
struct SynthesisRequest {
  /// Unique job identifier. Names checkpoint/output files and is echoed in
  /// the response, so it must be filesystem-safe ([A-Za-z0-9._-]).
  std::string id;
  std::string circuit;
  std::vector<tt::TruthTable> spec;

  Algorithm algorithm = Algorithm::kEvolve;
  std::uint64_t generations = 0; ///< CGP generation budget (0 = default)
  std::uint64_t seed = 0;        ///< RNG seed (0 = default seed 1)
  unsigned lambda = 0;           ///< (1+λ) offspring count (0 = default)
  unsigned threads = 0;          ///< λ-parallel eval threads (0 = default)
  unsigned restarts = 0;         ///< kMultistart restarts (0 = default)
  /// Island-model scale-out (schema 2, docs/ISLANDS.md): decorrelated
  /// (1+λ) lineages exchanging elites every `migration_interval`
  /// generations. 0 islands = not set (one island, plain evolve); more
  /// than one requires `algorithm: "evolve"`.
  unsigned islands = 0;
  Topology topology = Topology::kRing;
  std::uint64_t migration_interval = 0; ///< generations per epoch (0 = never)
  unsigned migration_size = 0;          ///< donor channel capacity (0 = 1)
  /// Per-job wall-clock ceiling in seconds (0 = none). The one knob that
  /// is not deterministic across machines — see docs/BATCH.md.
  double deadline_seconds = 0.0;
  std::uint64_t max_generations = 0;  ///< RunLimits ceiling (0 = none)
  std::uint64_t max_evaluations = 0;  ///< RunLimits ceiling (0 = none)
  std::uint64_t stagnation_limit = 0; ///< early-stop plateau (0 = off)
  /// Retry budget on integrity violations; negative = executor default.
  int retries = -1;
  CachePolicy cache = CachePolicy::kUse;

  /// 1-based source line the request was parsed from (diagnostics only;
  /// not serialized and not part of equality).
  std::size_t line = 0;

  bool has_inline_spec() const { return !spec.empty(); }

  /// Equality over every serialized field (`line` excluded).
  bool operator==(const SynthesisRequest& o) const;
};

/// Inline-spec bounds: hex-encoded tables on one JSON line stay readable
/// up to 10 inputs (256 hex digits per output); outputs are capped by the
/// cache's joint output-phase word.
inline constexpr unsigned kMaxRequestSpecVars = 10;
inline constexpr unsigned kMaxRequestSpecOutputs = 32;

/// Serializes a request as one compact JSON line: the schema version, the
/// required keys, and only the fields that differ from their defaults —
/// `parse_request(to_json(r)) == r` for every valid request.
std::string to_json(const SynthesisRequest& request);

/// Parses one request line (a flat JSON object; `spec` is the only nested
/// value, an array of hex table strings alongside `spec_vars`). Unknown
/// keys, wrong types, duplicate keys, schema versions from the future,
/// missing/unsafe ids, and circuit-plus-spec conflicts all throw
/// io::ParseError with "<format>:<source>:<line>" context — embedding
/// readers (the batch manifest, the serve protocol) pass their own format
/// label so errors name the document the user actually wrote.
SynthesisRequest parse_request(const std::string& text,
                               const std::string& source = "<string>",
                               std::size_t lineno = 0,
                               const char* format = "request");

/// Validation used by parse_request, exposed for requests built in code
/// (CLI flag assembly). Throws io::ParseError with the same context shape.
void validate_request(const SynthesisRequest& request,
                      const std::string& source = "<request>",
                      std::size_t lineno = 0,
                      const char* format = "request");

/// Executor-side defaults a request's zero-fields fall back to.
struct RequestDefaults {
  std::uint64_t generations = 50000;
  std::uint64_t seed = 1;
  unsigned threads = 1;
};

/// Expands a request into the full optimizer configuration it denotes:
/// request overrides applied on top of `defaults`, mirrored into the
/// anneal parameters for kAnneal jobs. Scheduling wiring (stop token,
/// checkpoint path) stays with the caller — it is not part of the job
/// description.
OptimizerOptions optimizer_options_for(const SynthesisRequest& request,
                                       const RequestDefaults& defaults = {});

/// What one synthesis produced, in the same versioned JSON envelope the
/// request came in. `netlist` carries the result as `.rqfp` text so the
/// response is self-contained.
struct SynthesisResponse {
  std::string id;
  bool ok = false;
  std::string error;       ///< failure message; empty when ok
  bool cached = false;     ///< served straight from the result cache
  bool seeded = false;     ///< evolution was seeded from a cache hit
  std::string stop_reason = "completed";
  bool verified = false;   ///< exhaustive simulation check passed
  rqfp::Cost cost;
  double seconds = 0.0;
  std::string netlist;     ///< `.rqfp` text (empty on failure)

  bool operator==(const SynthesisResponse&) const = default;
};

std::string to_json(const SynthesisResponse& response);
/// Throws io::ParseError with "response:<source>:<line>" context.
SynthesisResponse parse_response(const std::string& text,
                                 const std::string& source = "<string>",
                                 std::size_t lineno = 0);

/// JSON round-trip for the optimizer configuration itself, so a request
/// plus these documents fully captures a run. Runtime wiring (stop
/// tokens, trace sinks, callbacks) is intentionally not serialized — the
/// parsed struct leaves those at their defaults.
void write_json(obs::json::Writer& w, const RunLimits& limits);
void write_json(obs::json::Writer& w, const OptimizerOptions& options);
std::string to_json(const RunLimits& limits);
std::string to_json(const OptimizerOptions& options);

/// Parse back what write_json emitted. Throws std::invalid_argument with
/// the offending key on unknown members or wrong types.
RunLimits run_limits_from_json(const obs::json::Value& v);
OptimizerOptions optimizer_options_from_json(const obs::json::Value& v);
RunLimits parse_run_limits(const std::string& text);
OptimizerOptions parse_optimizer_options(const std::string& text);

} // namespace rcgp::core
