#include "core/flow.hpp"

#include <stdexcept>

#include "core/window.hpp"

#include "aig/aig_simulate.hpp"
#include "aig/fraig.hpp"
#include "cec/sim_cec.hpp"
#include "io/io.hpp"
#include "obs/metrics.hpp"
#include "aig/resyn.hpp"
#include "aig/rewrite.hpp"
#include "mig/mig_from_aig.hpp"
#include "mig/mig_rewrite.hpp"
#include "obs/phase.hpp"
#include "rqfp/map_from_mig.hpp"
#include "rqfp/splitter.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::core {

double FlowResult::phase_seconds(std::string_view name) const {
  for (const auto& r : phases) {
    if (r.depth == 0 && r.path == name) {
      return r.seconds;
    }
  }
  return 0.0;
}

aig::Aig aig_from_tables(std::span<const tt::TruthTable> spec,
                         std::span<const std::string> po_names) {
  if (spec.empty()) {
    throw std::invalid_argument("aig_from_tables: empty specification");
  }
  const unsigned nv = spec[0].num_vars();
  for (const auto& t : spec) {
    if (t.num_vars() != nv) {
      throw std::invalid_argument("aig_from_tables: mixed arities");
    }
  }
  aig::Aig net;
  std::vector<aig::Signal> pis;
  pis.reserve(nv);
  for (unsigned i = 0; i < nv; ++i) {
    pis.push_back(net.create_pi());
  }
  for (std::size_t o = 0; o < spec.size(); ++o) {
    const aig::Signal s = aig::build_factored(net, spec[o], pis);
    net.add_po(s, o < po_names.size() ? po_names[o] : "");
  }
  return net.cleanup();
}

FlowResult synthesize(const aig::Aig& input, const FlowOptions& options) {
  util::Stopwatch watch;
  FlowResult result;
  obs::PhaseCollector phases;
  // Checked between phases: a cooperative stop skips the remaining
  // optional phases but the mandatory mapping still runs, so the caller
  // always gets a valid (if unoptimized) netlist back. Both the legacy
  // evolve.budget token and the facade-level limits token are honored.
  const auto stopped = [&] {
    return options.evolve.budget.stop_requested() ||
           options.limits.budget().stop_requested();
  };

  // Phase 1: conventional logic synthesis (ABC resyn2 stand-in).
  aig::Aig net = input.cleanup();
  if (options.run_aig_optimization && !stopped()) {
    obs::PhaseSpan timer("aig-opt");
    net = aig::resyn2(net);
  }
  if (options.run_fraig && !stopped()) {
    obs::PhaseSpan timer("fraig");
    net = aig::fraig(net);
  }

  // Phase 2: AQFP-oriented majority logic (aqfp_resynthesis stand-in).
  mig::Mig m = [&] {
    obs::PhaseSpan timer("mig-map");
    return mig::mig_from_aig(net);
  }();
  if (options.run_mig_optimization && !stopped()) {
    obs::PhaseSpan timer("mig-opt");
    m = mig::optimize_mig(m);
  }

  // Phase 3: direct RQFP conversion + splitter insertion → the
  // initialization baseline.
  {
    obs::PhaseSpan timer("rqfp-map");
    rqfp::MapOptions map_options;
    map_options.pack_shared_fanins = options.pack_shared_fanins;
    rqfp::Netlist raw = rqfp::map_from_mig(m, nullptr, map_options);
    obs::PhaseSpan splitter_timer("splitter");
    result.initial = rqfp::insert_splitters(raw);
  }
  const std::string problem = result.initial.validate();
  if (!problem.empty()) {
    throw std::logic_error("flow: initialization produced illegal netlist: " +
                           problem);
  }
  result.initial_cost = rqfp::cost_of(result.initial, options.schedule);

  // Phase 4: CGP-based optimization against the exact specification.
  const auto spec = [&] {
    obs::PhaseSpan timer("spec-sim");
    return aig::simulate(net);
  }();
  if (options.evolve.paranoia >= robust::ParanoiaLevel::kBoundaries) {
    robust::enforce_integrity(result.initial, spec, "flow:initial");
  }
  if (options.run_cgp && !stopped()) {
    obs::PhaseSpan timer("cgp");
    OptimizerOptions oo;
    oo.algorithm = options.optimizer;
    oo.evolve = options.evolve;
    oo.evolve.fitness.schedule = options.schedule;
    oo.anneal = options.anneal;
    oo.anneal.fitness.schedule = options.schedule;
    oo.window = options.window;
    oo.restarts = options.restarts;
    oo.island = options.island;
    oo.limits = options.limits;
    // A fleet resume restores from state_dir through run() — never-started
    // islands still need the mapped baseline as their starting netlist.
    const bool fleet_resume =
        options.resume && !options.island.state_dir.empty();
    if (fleet_resume) {
      oo.island.resume = true;
    }
    const Optimizer optimizer(oo);
    if (options.resume && !fleet_resume) {
      if (options.evolve.checkpoint_path.empty() &&
          options.limits.checkpoint_path.empty()) {
        throw std::invalid_argument(
            "flow: resume requested without a checkpoint path");
      }
      result.optimization = optimizer.resume(spec);
    } else {
      const rqfp::Netlist* start = &result.initial;
      if (options.cgp_seed != nullptr) {
        const bool fits =
            options.cgp_seed->num_pis() == result.initial.num_pis() &&
            options.cgp_seed->num_pos() == result.initial.num_pos() &&
            options.cgp_seed->validate().empty() &&
            cec::sim_check(*options.cgp_seed, spec).all_match;
        obs::registry()
            .counter(fits ? "flow.seed.used" : "flow.seed.rejected")
            .inc();
        if (fits) {
          start = options.cgp_seed;
        }
      }
      result.optimization = optimizer.run(*start, spec);
    }
    result.evolution = result.optimization.evolve;
    result.optimized = result.optimization.best;
  } else {
    result.optimized = result.initial;
  }
  if (options.run_exact_polish && !stopped()) {
    obs::PhaseSpan timer("exact-polish");
    ExactPolishParams polish;
    polish.budget = options.evolve.budget;
    if (options.limits.stop) {
      polish.budget.stop = options.limits.stop;
    }
    if (options.limits.deadline_seconds > 0.0) {
      polish.budget.deadline_seconds = options.limits.deadline_seconds;
    }
    result.optimized = exact_polish(result.optimized, polish);
  }
  if (options.evolve.paranoia >= robust::ParanoiaLevel::kBoundaries) {
    robust::enforce_integrity(result.optimized, spec, "flow:optimized");
  }
  {
    obs::PhaseSpan timer("cost");
    result.optimized_cost = rqfp::cost_of(result.optimized, options.schedule);
  }
  result.seconds_total = watch.seconds();
  result.phases = phases.records();

  if (obs::TraceSink* trace = options.evolve.trace) {
    auto ev = trace->event("flow");
    ev.field("seconds_total", result.seconds_total);
    ev.begin("phases");
    for (const auto& r : result.phases) {
      if (r.depth == 0) {
        ev.field(r.path, r.seconds);
      }
    }
    ev.end();
    ev.begin("initial")
        .field("n_r", result.initial_cost.n_r)
        .field("n_g", result.initial_cost.n_g)
        .field("n_b", result.initial_cost.n_b)
        .field("jjs", result.initial_cost.jjs)
        .end();
    ev.begin("optimized")
        .field("n_r", result.optimized_cost.n_r)
        .field("n_g", result.optimized_cost.n_g)
        .field("n_b", result.optimized_cost.n_b)
        .field("jjs", result.optimized_cost.jjs)
        .end();
  }
  return result;
}

FlowResult synthesize(std::span<const tt::TruthTable> spec,
                      const FlowOptions& options) {
  return synthesize(aig_from_tables(spec), options);
}

FlowResult synthesize_file(const std::string& path,
                           const FlowOptions& options) {
  const io::Network input = io::read_network(path);
  if (input.aig) {
    return synthesize(*input.aig, options);
  }
  if (input.rqfp) {
    const auto spec = input.to_tables();
    return synthesize(aig_from_tables(spec), options);
  }
  return synthesize(aig_from_tables(input.tables, input.po_names), options);
}

} // namespace rcgp::core
