#include "core/chromosome.hpp"

#include <stdexcept>

namespace rcgp::core {

GeneRef gene_at(const rqfp::Netlist& net, std::uint32_t index) {
  if (index >= num_genes(net)) {
    throw std::out_of_range("gene_at: index beyond chromosome");
  }
  GeneRef ref;
  const std::uint32_t gate_genes = 4 * net.num_gates();
  if (index < gate_genes) {
    ref.gate = index / 4;
    const unsigned field = index % 4;
    if (field < 3) {
      ref.kind = GeneRef::Kind::kGateInput;
      ref.slot = field;
    } else {
      ref.kind = GeneRef::Kind::kGateConfig;
    }
  } else {
    ref.kind = GeneRef::Kind::kPrimaryOutput;
    ref.po = index - gate_genes;
  }
  return ref;
}

std::string to_genotype_string(const rqfp::Netlist& net) {
  std::string s;
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    s += "(" + std::to_string(gate.in[0]) + ", " +
         std::to_string(gate.in[1]) + ", " + std::to_string(gate.in[2]) +
         ", " + gate.config.to_string() + ") ";
  }
  s += "(";
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    if (i) {
      s += ", ";
    }
    s += std::to_string(net.po_at(i));
  }
  s += ")";
  return s;
}

} // namespace rcgp::core
