#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rqfp/netlist.hpp"
#include "rqfp/simulate.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace rcgp::cec {

/// Outcome of simulation-based equivalence checking — the first phase of
/// the paper's fitness evaluation (§3.2.1). `success_rate` is the fraction
/// of simulated output bits matching the specification; the performance
/// part of the fitness is only evaluated at success_rate == 1.
struct SimResult {
  std::uint64_t mismatching_bits = 0;
  std::uint64_t total_bits = 0;
  double success_rate = 0.0;
  bool all_match = false;
};

/// Scores already-simulated PO tables against a specification — the shared
/// tail of every simulation equivalence check (sim_check, sim_check_delta,
/// and the λ-batched evaluator). Increments the cec.sim_checks counter
/// once, so telemetry stays one check per offspring regardless of which
/// path simulated it. Requires out.size() == spec.size() (checked).
SimResult sim_compare(std::span<const tt::TruthTable> out,
                      std::span<const tt::TruthTable> spec);

/// Exhaustive check of a netlist against per-output truth tables over the
/// netlist's PIs. Requires spec.size() == net.num_pos().
SimResult sim_check(const rqfp::Netlist& net,
                    std::span<const tt::TruthTable> spec);

/// Incremental variant of sim_check: bit-identical result for `child`,
/// but only the dirty cone relative to `base` — whose port values `cache`
/// holds (rqfp::build_sim_cache) — is re-simulated. The cache is restored
/// afterwards, so one cache serves all λ offspring of a CGP generation.
SimResult sim_check_delta(const rqfp::Netlist& base,
                          const rqfp::Netlist& child,
                          std::span<const tt::TruthTable> spec,
                          rqfp::SimCache& cache);

/// Random-pattern check of two netlists with identical PI/PO counts; used
/// when the PI count makes exhaustive tables impractical.
SimResult sim_check_random(const rqfp::Netlist& a, const rqfp::Netlist& b,
                           std::size_t num_words, util::Rng& rng);

} // namespace rcgp::cec
