#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rqfp/netlist.hpp"
#include "sat/cnf.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::cec {

enum class CecVerdict { kEquivalent, kNotEquivalent, kUndecided };

struct SatCecResult {
  CecVerdict verdict = CecVerdict::kUndecided;
  /// PI assignment witnessing non-equivalence (bit i = PI i).
  std::optional<std::uint64_t> counterexample;
  std::uint64_t conflicts = 0;
};

/// Tseitin-encodes a netlist into `builder`; returns one literal per PO.
/// `pi_lits` supplies the PI literals (size must equal num_pis()).
std::vector<sat::Lit> encode_netlist(sat::CnfBuilder& builder,
                                     const rqfp::Netlist& net,
                                     std::span<const sat::Lit> pi_lits);

/// Encodes a truth table over the given PI literals (ISOP cover).
sat::Lit encode_table(sat::CnfBuilder& builder, const tt::TruthTable& table,
                      std::span<const sat::Lit> pi_lits);

/// SAT-based combinational equivalence check of a netlist against a truth
/// table specification — the formal-verification phase the paper pairs
/// with circuit simulation (§3.2.1). `max_conflicts` of 0 means no budget.
SatCecResult sat_check(const rqfp::Netlist& net,
                       std::span<const tt::TruthTable> spec,
                       std::uint64_t max_conflicts = 0);

/// SAT CEC between two netlists with identical interfaces (e.g. parent and
/// offspring in the CGP loop).
SatCecResult sat_check(const rqfp::Netlist& a, const rqfp::Netlist& b,
                       std::uint64_t max_conflicts = 0);

} // namespace rcgp::cec
