#include "cec/sim_cec.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "rqfp/simd.hpp"
#include "rqfp/simulate.hpp"

namespace rcgp::cec {

namespace {

void finish(SimResult& r) {
  r.success_rate =
      r.total_bits == 0
          ? 1.0
          : 1.0 - static_cast<double>(r.mismatching_bits) /
                      static_cast<double>(r.total_bits);
  r.all_match = r.mismatching_bits == 0;
}

} // namespace

SimResult sim_compare(std::span<const tt::TruthTable> out,
                      std::span<const tt::TruthTable> spec) {
  if (out.size() != spec.size()) {
    throw std::invalid_argument("sim_compare: PO count mismatch");
  }
  // This is the CGP fitness hot path: one relaxed atomic inc per check.
  static obs::Counter& c_checks = obs::registry().counter("cec.sim_checks");
  c_checks.inc();
  SimResult r;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    r.total_bits += spec[i].num_bits();
    r.mismatching_bits += out[i].hamming_distance(spec[i]);
  }
  finish(r);
  return r;
}

SimResult sim_check(const rqfp::Netlist& net,
                    std::span<const tt::TruthTable> spec) {
  if (spec.size() != net.num_pos()) {
    throw std::invalid_argument("sim_check: PO count mismatch");
  }
  const auto out = rqfp::simulate_live(net);
  return sim_compare(out, spec);
}

SimResult sim_check_delta(const rqfp::Netlist& base,
                          const rqfp::Netlist& child,
                          std::span<const tt::TruthTable> spec,
                          rqfp::SimCache& cache) {
  if (spec.size() != child.num_pos()) {
    throw std::invalid_argument("sim_check_delta: PO count mismatch");
  }
  rqfp::simulate_delta(base, child, cache, cache.po_scratch);
  return sim_compare(cache.po_scratch, spec);
}

SimResult sim_check_random(const rqfp::Netlist& a, const rqfp::Netlist& b,
                           std::size_t num_words, util::Rng& rng) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    throw std::invalid_argument("sim_check_random: interface mismatch");
  }
  static obs::Counter& c_checks =
      obs::registry().counter("cec.sim_random_checks");
  c_checks.inc();
  // sim_check / sim_check_delta are the per-offspring fitness hot path and
  // stay span-free; this random-vector CEC entry runs per verification.
  obs::Span span("cec.sim");
  span.arg("words", static_cast<std::uint64_t>(num_words));
  rqfp::SimBatch patterns(a.num_pis(), num_words);
  for (std::size_t i = 0; i < patterns.rows(); ++i) {
    for (std::size_t w = 0; w < num_words; ++w) {
      patterns.at(i, w) = rng.next();
    }
  }
  rqfp::SimBatch va;
  rqfp::SimBatch vb;
  rqfp::SimBatch scratch;
  rqfp::simulate_patterns(a, patterns, va, scratch);
  rqfp::simulate_patterns(b, patterns, vb, scratch);
  const auto& kernels = rqfp::simd::kernels();
  SimResult r;
  for (std::size_t i = 0; i < va.rows(); ++i) {
    r.total_bits += 64 * num_words;
    r.mismatching_bits += kernels.xor_popcount(va.row(i), vb.row(i),
                                               num_words);
  }
  finish(r);
  return r;
}

} // namespace rcgp::cec
