#include "cec/sim_cec.hpp"

#include <bit>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "rqfp/simulate.hpp"

namespace rcgp::cec {

SimResult sim_check(const rqfp::Netlist& net,
                    std::span<const tt::TruthTable> spec) {
  if (spec.size() != net.num_pos()) {
    throw std::invalid_argument("sim_check: PO count mismatch");
  }
  // This is the CGP fitness hot path: one relaxed atomic inc per check.
  static obs::Counter& c_checks = obs::registry().counter("cec.sim_checks");
  c_checks.inc();
  const auto out = rqfp::simulate_live(net);
  SimResult r;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    r.total_bits += spec[i].num_bits();
    r.mismatching_bits += out[i].hamming_distance(spec[i]);
  }
  r.success_rate =
      r.total_bits == 0
          ? 1.0
          : 1.0 - static_cast<double>(r.mismatching_bits) /
                      static_cast<double>(r.total_bits);
  r.all_match = r.mismatching_bits == 0;
  return r;
}

SimResult sim_check_delta(const rqfp::Netlist& base,
                          const rqfp::Netlist& child,
                          std::span<const tt::TruthTable> spec,
                          rqfp::SimCache& cache) {
  if (spec.size() != child.num_pos()) {
    throw std::invalid_argument("sim_check_delta: PO count mismatch");
  }
  // Same counter as sim_check: this is a simulation equivalence check, so
  // telemetry invariants hold regardless of which path evaluated it.
  static obs::Counter& c_checks = obs::registry().counter("cec.sim_checks");
  c_checks.inc();
  rqfp::simulate_delta(base, child, cache, cache.po_scratch);
  SimResult r;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    r.total_bits += spec[i].num_bits();
    r.mismatching_bits += cache.po_scratch[i].hamming_distance(spec[i]);
  }
  r.success_rate =
      r.total_bits == 0
          ? 1.0
          : 1.0 - static_cast<double>(r.mismatching_bits) /
                      static_cast<double>(r.total_bits);
  r.all_match = r.mismatching_bits == 0;
  return r;
}

SimResult sim_check_random(const rqfp::Netlist& a, const rqfp::Netlist& b,
                           std::size_t num_words, util::Rng& rng) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    throw std::invalid_argument("sim_check_random: interface mismatch");
  }
  static obs::Counter& c_checks =
      obs::registry().counter("cec.sim_random_checks");
  c_checks.inc();
  // sim_check / sim_check_delta are the per-offspring fitness hot path and
  // stay span-free; this random-vector CEC entry runs per verification.
  obs::Span span("cec.sim");
  span.arg("words", static_cast<std::uint64_t>(num_words));
  rqfp::SimBatch patterns(a.num_pis(), num_words);
  for (std::size_t i = 0; i < patterns.rows(); ++i) {
    for (std::size_t w = 0; w < num_words; ++w) {
      patterns.at(i, w) = rng.next();
    }
  }
  rqfp::SimBatch va;
  rqfp::SimBatch vb;
  rqfp::SimBatch scratch;
  rqfp::simulate_patterns(a, patterns, va, scratch);
  rqfp::simulate_patterns(b, patterns, vb, scratch);
  SimResult r;
  for (std::size_t i = 0; i < va.rows(); ++i) {
    for (std::size_t w = 0; w < num_words; ++w) {
      r.total_bits += 64;
      r.mismatching_bits += static_cast<std::uint64_t>(
          std::popcount(va.at(i, w) ^ vb.at(i, w)));
    }
  }
  r.success_rate =
      r.total_bits == 0
          ? 1.0
          : 1.0 - static_cast<double>(r.mismatching_bits) /
                      static_cast<double>(r.total_bits);
  r.all_match = r.mismatching_bits == 0;
  return r;
}

} // namespace rcgp::cec
