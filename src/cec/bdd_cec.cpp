#include "cec/bdd_cec.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace rcgp::cec {

namespace {
void count_bdd_check() {
  static obs::Counter& c_checks = obs::registry().counter("cec.bdd_checks");
  c_checks.inc();
}
} // namespace

std::vector<bdd::NodeRef> build_bdds(bdd::Manager& manager,
                                     const rqfp::Netlist& net) {
  if (manager.num_vars() != net.num_pis()) {
    throw std::invalid_argument("build_bdds: variable count mismatch");
  }
  const auto live = net.live_gates();
  std::vector<bdd::NodeRef> port(net.first_free_port(), bdd::kFalse);
  port[rqfp::kConstPort] = bdd::kTrue;
  for (unsigned i = 0; i < net.num_pis(); ++i) {
    port[1 + i] = manager.var(i);
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    if (!live[g]) {
      continue;
    }
    const auto& gate = net.gate(g);
    for (unsigned k = 0; k < 3; ++k) {
      bdd::NodeRef in[3];
      for (unsigned i = 0; i < 3; ++i) {
        in[i] = port[gate.in[i]];
        if (gate.config.inverts(k, i)) {
          in[i] = manager.apply_not(in[i]);
        }
      }
      port[net.port_of(g, k)] = manager.apply_maj(in[0], in[1], in[2]);
    }
  }
  std::vector<bdd::NodeRef> pos;
  pos.reserve(net.num_pos());
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    pos.push_back(port[net.po_at(i)]);
  }
  return pos;
}

BddCecResult bdd_check(const rqfp::Netlist& net,
                       std::span<const tt::TruthTable> spec) {
  if (spec.size() != net.num_pos()) {
    throw std::invalid_argument("bdd_check: PO count mismatch");
  }
  obs::Span span("cec.bdd");
  span.arg("mode", "spec").arg("gates", net.num_gates());
  count_bdd_check();
  bdd::Manager manager(net.num_pis());
  const auto lhs = build_bdds(manager, net);
  BddCecResult result;
  result.equivalent = true;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const auto rhs = manager.from_truth_table(spec[i]);
    if (lhs[i] != rhs) { // canonical: equality is pointer equality
      result.equivalent = false;
      const auto diff = manager.apply_xor(lhs[i], rhs);
      std::uint64_t cex = 0;
      manager.find_sat(diff, cex);
      result.counterexample = cex;
      break;
    }
  }
  result.bdd_nodes = manager.num_nodes();
  return result;
}

BddCecResult bdd_check(const rqfp::Netlist& a, const rqfp::Netlist& b) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    throw std::invalid_argument("bdd_check: interface mismatch");
  }
  obs::Span span("cec.bdd");
  span.arg("mode", "miter").arg("gates", a.num_gates() + b.num_gates());
  count_bdd_check();
  bdd::Manager manager(a.num_pis());
  const auto lhs = build_bdds(manager, a);
  const auto rhs = build_bdds(manager, b);
  BddCecResult result;
  result.equivalent = true;
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    if (lhs[i] != rhs[i]) {
      result.equivalent = false;
      const auto diff = manager.apply_xor(lhs[i], rhs[i]);
      std::uint64_t cex = 0;
      manager.find_sat(diff, cex);
      result.counterexample = cex;
      break;
    }
  }
  result.bdd_nodes = manager.num_nodes();
  return result;
}

} // namespace rcgp::cec
