#include "cec/sat_cec.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "tt/isop.hpp"

namespace rcgp::cec {

std::vector<sat::Lit> encode_netlist(sat::CnfBuilder& builder,
                                     const rqfp::Netlist& net,
                                     std::span<const sat::Lit> pi_lits) {
  if (pi_lits.size() != net.num_pis()) {
    throw std::invalid_argument("encode_netlist: PI literal count mismatch");
  }
  std::vector<sat::Lit> port(net.first_free_port(), builder.true_lit());
  port[rqfp::kConstPort] = builder.true_lit();
  for (unsigned i = 0; i < net.num_pis(); ++i) {
    port[1 + i] = pi_lits[i];
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    for (unsigned k = 0; k < 3; ++k) {
      sat::Lit in[3];
      for (unsigned i = 0; i < 3; ++i) {
        in[i] = port[gate.in[i]];
        if (gate.config.inverts(k, i)) {
          in[i] = ~in[i];
        }
      }
      port[net.port_of(g, k)] = builder.make_maj(in[0], in[1], in[2]);
    }
  }
  std::vector<sat::Lit> pos;
  pos.reserve(net.num_pos());
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    pos.push_back(port[net.po_at(i)]);
  }
  return pos;
}

sat::Lit encode_table(sat::CnfBuilder& builder, const tt::TruthTable& table,
                      std::span<const sat::Lit> pi_lits) {
  if (table.num_vars() != pi_lits.size()) {
    throw std::invalid_argument("encode_table: arity mismatch");
  }
  if (table.is_constant0()) {
    return builder.false_lit();
  }
  if (table.is_constant1()) {
    return builder.true_lit();
  }
  const auto cubes = tt::isop(table);
  std::vector<sat::Lit> terms;
  terms.reserve(cubes.size());
  for (const auto& cube : cubes) {
    std::vector<sat::Lit> lits;
    for (unsigned v = 0; v < pi_lits.size(); ++v) {
      if (cube.mask & (1u << v)) {
        lits.push_back((cube.polarity & (1u << v)) ? pi_lits[v]
                                                   : ~pi_lits[v]);
      }
    }
    terms.push_back(builder.make_and(std::span<const sat::Lit>(lits)));
  }
  return builder.make_or(std::span<const sat::Lit>(terms));
}

namespace {

SatCecResult solve_miter(sat::Solver& solver, sat::CnfBuilder& builder,
                         std::span<const sat::Lit> lhs,
                         std::span<const sat::Lit> rhs,
                         std::span<const sat::Lit> pi_lits,
                         std::uint64_t max_conflicts) {
  static obs::Counter& c_checks = obs::registry().counter("cec.sat_checks");
  static obs::Counter& c_conflicts =
      obs::registry().counter("cec.sat_conflicts");
  static obs::Counter& c_undecided =
      obs::registry().counter("cec.sat_undecided");
  c_checks.inc();

  std::vector<sat::Lit> diffs;
  diffs.reserve(lhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    diffs.push_back(builder.make_xor(lhs[i], rhs[i]));
  }
  builder.assert_true(builder.make_or(std::span<const sat::Lit>(diffs)));

  sat::SolveLimits limits;
  limits.max_conflicts = max_conflicts;
  const auto before = solver.num_conflicts();
  const auto res = solver.solve({}, limits);
  SatCecResult out;
  out.conflicts = solver.num_conflicts() - before;
  c_conflicts.inc(out.conflicts);
  if (res == sat::SolveResult::kUnknown) {
    c_undecided.inc();
  }
  switch (res) {
    case sat::SolveResult::kUnsat:
      out.verdict = CecVerdict::kEquivalent;
      break;
    case sat::SolveResult::kSat: {
      out.verdict = CecVerdict::kNotEquivalent;
      std::uint64_t cex = 0;
      for (std::size_t i = 0; i < pi_lits.size(); ++i) {
        if (solver.model_value(pi_lits[i])) {
          cex |= std::uint64_t{1} << i;
        }
      }
      out.counterexample = cex;
      break;
    }
    case sat::SolveResult::kUnknown:
      out.verdict = CecVerdict::kUndecided;
      break;
  }
  return out;
}

} // namespace

SatCecResult sat_check(const rqfp::Netlist& net,
                       std::span<const tt::TruthTable> spec,
                       std::uint64_t max_conflicts) {
  if (spec.size() != net.num_pos()) {
    throw std::invalid_argument("sat_check: PO count mismatch");
  }
  obs::Span span("cec.sat");
  span.arg("mode", "spec").arg("gates", net.num_gates());
  sat::Solver solver;
  sat::CnfBuilder builder(solver);
  std::vector<sat::Lit> pis;
  pis.reserve(net.num_pis());
  for (unsigned i = 0; i < net.num_pis(); ++i) {
    pis.push_back(builder.new_lit());
  }
  const auto lhs = encode_netlist(builder, net, pis);
  std::vector<sat::Lit> rhs;
  rhs.reserve(spec.size());
  for (const auto& t : spec) {
    rhs.push_back(encode_table(builder, t, pis));
  }
  return solve_miter(solver, builder, lhs, rhs, pis, max_conflicts);
}

SatCecResult sat_check(const rqfp::Netlist& a, const rqfp::Netlist& b,
                       std::uint64_t max_conflicts) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    throw std::invalid_argument("sat_check: interface mismatch");
  }
  obs::Span span("cec.sat");
  span.arg("mode", "miter").arg("gates", a.num_gates() + b.num_gates());
  sat::Solver solver;
  sat::CnfBuilder builder(solver);
  std::vector<sat::Lit> pis;
  pis.reserve(a.num_pis());
  for (unsigned i = 0; i < a.num_pis(); ++i) {
    pis.push_back(builder.new_lit());
  }
  const auto lhs = encode_netlist(builder, a, pis);
  const auto rhs = encode_netlist(builder, b, pis);
  return solve_miter(solver, builder, lhs, rhs, pis, max_conflicts);
}

} // namespace rcgp::cec
