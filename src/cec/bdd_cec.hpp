#pragma once

#include <optional>
#include <span>
#include <vector>

#include "bdd/bdd.hpp"
#include "rqfp/netlist.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::cec {

struct BddCecResult {
  bool equivalent = false;
  /// Input assignment on which the circuits differ.
  std::optional<std::uint64_t> counterexample;
  /// Peak node count of the manager — the cost driver of this method.
  std::size_t bdd_nodes = 0;
};

/// Builds one BDD per port of the netlist (live cone only) and returns the
/// PO roots; shared manager across calls enables constant-time comparison.
std::vector<bdd::NodeRef> build_bdds(bdd::Manager& manager,
                                     const rqfp::Netlist& net);

/// BDD-based equivalence check of a netlist against truth tables — the
/// canonical-form alternative to SAT CEC referenced by the paper's related
/// work (Vasicek & Sekanina's BDD fitness, §2.2).
BddCecResult bdd_check(const rqfp::Netlist& net,
                       std::span<const tt::TruthTable> spec);

/// BDD CEC between two netlists with identical interfaces.
BddCecResult bdd_check(const rqfp::Netlist& a, const rqfp::Netlist& b);

} // namespace rcgp::cec
