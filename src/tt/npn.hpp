#pragma once

#include <array>
#include <cstdint>

#include "tt/truth_table.hpp"

namespace rcgp::tt {

/// Largest arity npn_canonize handles exhaustively. 6 variables means
/// 720 permutations x 64 input phases x 2 output phases = 92160 candidate
/// transforms over 64-bit tables — milliseconds, fine for offline use
/// (cache keys, class enumeration); the synthesis hot paths only ever
/// canonize <= 4 variables.
inline constexpr unsigned kMaxNpnVars = 6;

/// Record of an NPN transformation: canon = transform(original).
///
/// `perm[i]` gives the original variable placed at canonical position i;
/// bit i of `input_phase` says the variable feeding canonical position i is
/// complemented; `output_phase` complements the function output. Entries of
/// `perm` at positions >= the table arity are ignored.
struct NpnTransform {
  std::array<unsigned, kMaxNpnVars> perm{0, 1, 2, 3, 4, 5};
  unsigned input_phase = 0;
  bool output_phase = false;
};

/// Result of exact NPN canonization.
struct NpnCanonization {
  TruthTable canon;
  NpnTransform transform;
};

/// Exhaustive NPN canonization (minimum table under <) for up to
/// kMaxNpnVars variables. Throws std::invalid_argument for larger arities.
NpnCanonization npn_canonize(const TruthTable& t);

/// Applies `transform` to `t` (same operation canonization performed).
TruthTable npn_apply(const TruthTable& t, const NpnTransform& transform);

/// Undoes a canonization: given a table in canonical space, returns the
/// table in original space, i.e. npn_unapply(npn_apply(t, x), x) == t.
TruthTable npn_unapply(const TruthTable& t, const NpnTransform& transform);

} // namespace rcgp::tt
