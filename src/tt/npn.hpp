#pragma once

#include <array>
#include <cstdint>

#include "tt/truth_table.hpp"

namespace rcgp::tt {

/// Record of an NPN transformation: canon = transform(original).
///
/// `perm[i]` gives the original variable placed at canonical position i;
/// bit i of `input_phase` says the variable feeding canonical position i is
/// complemented; `output_phase` complements the function output.
struct NpnTransform {
  std::array<unsigned, 4> perm{0, 1, 2, 3};
  unsigned input_phase = 0;
  bool output_phase = false;
};

/// Result of exact NPN canonization for functions of up to 4 variables.
struct NpnCanonization {
  TruthTable canon;
  NpnTransform transform;
};

/// Exhaustive NPN canonization (minimum table under <) for <= 4 variables.
/// Throws std::invalid_argument for larger arities.
NpnCanonization npn_canonize(const TruthTable& t);

/// Applies `transform` to `t` (same operation canonization performed).
TruthTable npn_apply(const TruthTable& t, const NpnTransform& transform);

/// Undoes a canonization: given a table in canonical space, returns the
/// table in original space, i.e. npn_unapply(npn_apply(t, x), x) == t.
TruthTable npn_unapply(const TruthTable& t, const NpnTransform& transform);

} // namespace rcgp::tt
