#include "tt/truth_table.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "rqfp/simd.hpp"

namespace rcgp::tt {

namespace {

// Bit masks for the projection of variable v (< 6) within one 64-bit word.
constexpr std::uint64_t kProjection[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};

std::size_t word_count(unsigned num_vars) {
  return num_vars < 6 ? 1 : (std::size_t{1} << (num_vars - 6));
}

} // namespace

TruthTable::TruthTable(unsigned num_vars)
    : num_vars_(num_vars), words_(word_count(num_vars), 0) {
  if (num_vars > kMaxVars) {
    throw std::invalid_argument("TruthTable: too many variables");
  }
}

TruthTable TruthTable::constant(unsigned num_vars, bool value) {
  TruthTable t(num_vars);
  if (value) {
    std::fill(t.words_.begin(), t.words_.end(), ~std::uint64_t{0});
    t.mask_top_word();
  }
  return t;
}

TruthTable TruthTable::projection(unsigned num_vars, unsigned var) {
  if (var >= num_vars) {
    throw std::invalid_argument("TruthTable::projection: var out of range");
  }
  TruthTable t(num_vars);
  if (var < 6) {
    std::fill(t.words_.begin(), t.words_.end(), kProjection[var]);
    t.mask_top_word();
  } else {
    const std::size_t stride = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < t.words_.size(); ++w) {
      if ((w / stride) & 1) {
        t.words_[w] = ~std::uint64_t{0};
      }
    }
  }
  return t;
}

TruthTable TruthTable::majority(const TruthTable& a, const TruthTable& b,
                                const TruthTable& c) {
  a.check_same_arity(b);
  a.check_same_arity(c);
  TruthTable r(a.num_vars_);
  rqfp::simd::kernels().maj3(a.words_.data(), 0, b.words_.data(), 0,
                             c.words_.data(), 0, r.words_.data(),
                             r.words_.size());
  return r;
}

TruthTable TruthTable::ite(const TruthTable& sel, const TruthTable& t,
                           const TruthTable& e) {
  sel.check_same_arity(t);
  sel.check_same_arity(e);
  TruthTable r(sel.num_vars_);
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    r.words_[i] = (sel.words_[i] & t.words_[i]) | (~sel.words_[i] & e.words_[i]);
  }
  return r;
}

TruthTable TruthTable::from_binary(const std::string& bits) {
  const std::size_t n = bits.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("from_binary: length must be a power of two");
  }
  unsigned num_vars = 0;
  while ((std::size_t{1} << num_vars) < n) {
    ++num_vars;
  }
  TruthTable t(num_vars);
  for (std::size_t i = 0; i < n; ++i) {
    const char c = bits[n - 1 - i]; // MSB first: last char is index 0
    if (c == '1') {
      t.set_bit(i, true);
    } else if (c != '0') {
      throw std::invalid_argument("from_binary: invalid character");
    }
  }
  return t;
}

TruthTable TruthTable::from_hex(unsigned num_vars, const std::string& hex) {
  TruthTable t(num_vars);
  const std::uint64_t bits = t.num_bits();
  const std::size_t digits = bits >= 4 ? bits / 4 : 1;
  if (hex.size() != digits) {
    throw std::invalid_argument("from_hex: wrong digit count");
  }
  for (std::size_t d = 0; d < digits; ++d) {
    const char c = hex[digits - 1 - d];
    unsigned v = 0;
    if (c >= '0' && c <= '9') {
      v = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v = static_cast<unsigned>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = static_cast<unsigned>(c - 'A') + 10;
    } else {
      throw std::invalid_argument("from_hex: invalid character");
    }
    for (unsigned b = 0; b < 4; ++b) {
      const std::uint64_t idx = 4 * d + b;
      if (idx < bits && ((v >> b) & 1)) {
        t.set_bit(idx, true);
      }
    }
  }
  return t;
}

void TruthTable::set_word(std::size_t i, std::uint64_t w) {
  words_[i] = w;
  if (i + 1 == words_.size()) {
    mask_top_word();
  }
}

void TruthTable::set_bit(std::uint64_t index, bool value) {
  if (value) {
    words_[index >> 6] |= std::uint64_t{1} << (index & 63);
  } else {
    words_[index >> 6] &= ~(std::uint64_t{1} << (index & 63));
  }
}

std::uint64_t TruthTable::count_ones() const {
  std::uint64_t n = 0;
  for (const auto w : words_) {
    n += static_cast<std::uint64_t>(std::popcount(w));
  }
  return n;
}

bool TruthTable::is_constant0() const {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

bool TruthTable::is_constant1() const {
  return *this == constant(num_vars_, true);
}

std::uint64_t TruthTable::hamming_distance(const TruthTable& other) const {
  check_same_arity(other);
  return rqfp::simd::kernels().xor_popcount(words_.data(),
                                            other.words_.data(),
                                            words_.size());
}

bool TruthTable::depends_on(unsigned var) const {
  return cofactor0(var) != cofactor1(var);
}

TruthTable TruthTable::cofactor0(unsigned var) const {
  TruthTable r(*this);
  if (var < 6) {
    const std::uint64_t mask = ~kProjection[var];
    const unsigned shift = 1u << var;
    for (auto& w : r.words_) {
      const std::uint64_t low = w & mask;
      w = low | (low << shift);
    }
  } else {
    const std::size_t stride = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < r.words_.size(); ++w) {
      if ((w / stride) & 1) {
        r.words_[w] = r.words_[w - stride];
      }
    }
  }
  r.mask_top_word();
  return r;
}

TruthTable TruthTable::cofactor1(unsigned var) const {
  TruthTable r(*this);
  if (var < 6) {
    const std::uint64_t mask = kProjection[var];
    const unsigned shift = 1u << var;
    for (auto& w : r.words_) {
      const std::uint64_t high = w & mask;
      w = high | (high >> shift);
    }
  } else {
    const std::size_t stride = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < r.words_.size(); ++w) {
      if (((w / stride) & 1) == 0) {
        r.words_[w] = r.words_[w + stride];
      }
    }
  }
  r.mask_top_word();
  return r;
}

TruthTable TruthTable::flip_var(unsigned var) const {
  TruthTable r(*this);
  if (var < 6) {
    const unsigned shift = 1u << var;
    const std::uint64_t mask = kProjection[var];
    for (auto& w : r.words_) {
      w = ((w & mask) >> shift) | ((w & ~mask) << shift);
    }
  } else {
    const std::size_t stride = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < r.words_.size(); w += 2 * stride) {
      for (std::size_t i = 0; i < stride; ++i) {
        std::swap(r.words_[w + i], r.words_[w + stride + i]);
      }
    }
  }
  return r;
}

TruthTable TruthTable::swap_vars(unsigned a, unsigned b) const {
  if (a == b) {
    return *this;
  }
  if (a > b) {
    std::swap(a, b);
  }
  // Generic (slow-path) permutation via bit re-indexing; tables here are at
  // most 2^kMaxVars bits and swaps are rare outside NPN canonization of
  // small tables, so clarity wins over word tricks.
  TruthTable r(num_vars_);
  for (std::uint64_t idx = 0; idx < num_bits(); ++idx) {
    const std::uint64_t bit_a = (idx >> a) & 1;
    const std::uint64_t bit_b = (idx >> b) & 1;
    std::uint64_t j = idx & ~((std::uint64_t{1} << a) | (std::uint64_t{1} << b));
    j |= bit_a << b;
    j |= bit_b << a;
    if (bit(idx)) {
      r.set_bit(j, true);
    }
  }
  return r;
}

TruthTable TruthTable::extend(unsigned new_num_vars,
                              const std::vector<unsigned>& map) const {
  if (map.size() != num_vars_) {
    throw std::invalid_argument("extend: map size must equal arity");
  }
  TruthTable r(new_num_vars);
  for (std::uint64_t idx = 0; idx < r.num_bits(); ++idx) {
    std::uint64_t src = 0;
    for (unsigned v = 0; v < num_vars_; ++v) {
      if ((idx >> map[v]) & 1) {
        src |= std::uint64_t{1} << v;
      }
    }
    if (bit(src)) {
      r.set_bit(idx, true);
    }
  }
  return r;
}

TruthTable TruthTable::operator~() const {
  TruthTable r(*this);
  for (auto& w : r.words_) {
    w = ~w;
  }
  r.mask_top_word();
  return r;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  TruthTable r(*this);
  r &= o;
  return r;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  TruthTable r(*this);
  r |= o;
  return r;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
  TruthTable r(*this);
  r ^= o;
  return r;
}

TruthTable& TruthTable::operator&=(const TruthTable& o) {
  check_same_arity(o);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= o.words_[i];
  }
  return *this;
}

TruthTable& TruthTable::operator|=(const TruthTable& o) {
  check_same_arity(o);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= o.words_[i];
  }
  return *this;
}

TruthTable& TruthTable::operator^=(const TruthTable& o) {
  check_same_arity(o);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= o.words_[i];
  }
  return *this;
}

bool TruthTable::operator<(const TruthTable& o) const {
  if (num_vars_ != o.num_vars_) {
    return num_vars_ < o.num_vars_;
  }
  // Compare from the most significant word for a natural numeric order.
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != o.words_[i]) {
      return words_[i] < o.words_[i];
    }
  }
  return false;
}

std::string TruthTable::to_binary() const {
  std::string s;
  s.reserve(num_bits());
  for (std::uint64_t i = num_bits(); i-- > 0;) {
    s.push_back(bit(i) ? '1' : '0');
  }
  return s;
}

std::string TruthTable::to_hex() const {
  static const char* digits = "0123456789abcdef";
  const std::uint64_t bits = num_bits();
  const std::size_t n_digits = bits >= 4 ? bits / 4 : 1;
  std::string s(n_digits, '0');
  for (std::size_t d = 0; d < n_digits; ++d) {
    unsigned v = 0;
    for (unsigned b = 0; b < 4; ++b) {
      const std::uint64_t idx = 4 * d + b;
      if (idx < bits && bit(idx)) {
        v |= 1u << b;
      }
    }
    s[n_digits - 1 - d] = digits[v];
  }
  return s;
}

std::uint64_t TruthTable::hash() const {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL * (num_vars_ + 1);
  for (const auto w : words_) {
    h ^= w + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

void TruthTable::mask_top_word() {
  if (num_vars_ < 6) {
    words_.back() &= (std::uint64_t{1} << num_bits()) - 1;
  }
}

void TruthTable::check_same_arity(const TruthTable& o) const {
  if (num_vars_ != o.num_vars_) {
    throw std::invalid_argument("TruthTable: arity mismatch");
  }
}

} // namespace rcgp::tt
