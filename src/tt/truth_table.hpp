#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcgp::tt {

/// Bit-parallel dynamic truth table over `num_vars` Boolean variables.
///
/// Bit `i` of the table stores f(x) for the input assignment whose binary
/// encoding is `i` (variable 0 is the least significant). Tables with fewer
/// than 6 variables occupy the low `2^num_vars` bits of a single 64-bit
/// word; unused high bits are kept zero as a class invariant so that
/// equality and hashing are plain word comparisons.
class TruthTable {
public:
  static constexpr unsigned kMaxVars = 24;

  TruthTable() : num_vars_(0), words_(1, 0) {}

  /// All-zero table over `num_vars` variables.
  explicit TruthTable(unsigned num_vars);

  static TruthTable constant(unsigned num_vars, bool value);

  /// Table of the projection function f(x) = x_var.
  static TruthTable projection(unsigned num_vars, unsigned var);

  /// Three-input majority, the primitive of AQFP/RQFP logic. All operands
  /// must have the same number of variables.
  static TruthTable majority(const TruthTable& a, const TruthTable& b,
                             const TruthTable& c);

  /// if-then-else: sel ? t : e.
  static TruthTable ite(const TruthTable& sel, const TruthTable& t,
                        const TruthTable& e);

  /// Parse a binary string, most significant bit (highest input index)
  /// first, e.g. "1000" is AND of two variables. Length must be a power of
  /// two. Throws std::invalid_argument on malformed input.
  static TruthTable from_binary(const std::string& bits);

  /// Parse a hex string of length 2^num_vars / 4 (minimum 1 digit),
  /// most significant digit first.
  static TruthTable from_hex(unsigned num_vars, const std::string& hex);

  unsigned num_vars() const { return num_vars_; }
  std::uint64_t num_bits() const { return std::uint64_t{1} << num_vars_; }
  std::size_t num_words() const { return words_.size(); }

  const std::vector<std::uint64_t>& words() const { return words_; }
  std::uint64_t word(std::size_t i) const { return words_[i]; }
  void set_word(std::size_t i, std::uint64_t w);

  /// Raw word storage for the bulk simulation kernels (rqfp/simd.hpp).
  /// After writing through the mutable pointer, call normalize() to
  /// restore the unused-high-bits-zero invariant of sub-word tables.
  const std::uint64_t* data() const { return words_.data(); }
  std::uint64_t* data() { return words_.data(); }
  void normalize() { mask_top_word(); }

  bool bit(std::uint64_t index) const {
    return (words_[index >> 6] >> (index & 63)) & 1;
  }
  void set_bit(std::uint64_t index, bool value);

  std::uint64_t count_ones() const;
  bool is_constant0() const;
  bool is_constant1() const;

  /// Number of bit positions where this and other differ (same arity
  /// required) — the Hamming distance used by CGP fitness.
  std::uint64_t hamming_distance(const TruthTable& other) const;

  /// True iff the function value depends on variable `var`.
  bool depends_on(unsigned var) const;

  /// Positive/negative cofactor w.r.t. `var`; result keeps the same arity
  /// (the cofactored variable becomes a don't-care).
  TruthTable cofactor0(unsigned var) const;
  TruthTable cofactor1(unsigned var) const;

  /// Complement input `var` (negate that variable in every assignment).
  TruthTable flip_var(unsigned var) const;

  /// Swap adjacent-or-arbitrary input variables `a` and `b`.
  TruthTable swap_vars(unsigned a, unsigned b) const;

  /// Re-expresses this k-var function over `new_num_vars >= k` variables,
  /// mapping old variable i to new variable map[i].
  TruthTable extend(unsigned new_num_vars,
                    const std::vector<unsigned>& map) const;

  TruthTable operator~() const;
  TruthTable operator&(const TruthTable& o) const;
  TruthTable operator|(const TruthTable& o) const;
  TruthTable operator^(const TruthTable& o) const;
  TruthTable& operator&=(const TruthTable& o);
  TruthTable& operator|=(const TruthTable& o);
  TruthTable& operator^=(const TruthTable& o);

  bool operator==(const TruthTable& o) const = default;
  /// Lexicographic order on (num_vars, words) — usable as map key.
  bool operator<(const TruthTable& o) const;

  std::string to_binary() const;
  std::string to_hex() const;

  /// 64-bit mixing hash over arity and contents.
  std::uint64_t hash() const;

private:
  void mask_top_word();
  void check_same_arity(const TruthTable& o) const;

  unsigned num_vars_;
  std::vector<std::uint64_t> words_;
};

/// std::hash adapter so TruthTable keys work in unordered containers.
struct TruthTableHash {
  std::size_t operator()(const TruthTable& t) const {
    return static_cast<std::size_t>(t.hash());
  }
};

} // namespace rcgp::tt
