#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"

namespace rcgp::tt {

/// A product term over up to 32 variables: variable v appears positively if
/// bit v of `polarity` & `mask` is set with polarity 1, negatively with
/// polarity 0; variables not in `mask` are absent from the cube.
struct Cube {
  std::uint32_t mask = 0;     // which variables participate
  std::uint32_t polarity = 0; // 1 = positive literal (subset of mask)

  unsigned num_literals() const;
  /// Evaluate the cube on a complete assignment (bit v of `assignment` is
  /// the value of variable v).
  bool evaluates_true(std::uint64_t assignment) const;
  std::string to_string(unsigned num_vars) const;
  bool operator==(const Cube&) const = default;
};

/// Irredundant sum-of-products via the Minato–Morreale recursion on the
/// interval [onset, onset | dc]. With dc = 0 this computes an ISOP of the
/// exact function. Result cubes are irredundant but not globally minimal.
std::vector<Cube> isop(const TruthTable& onset, const TruthTable& dc);

inline std::vector<Cube> isop(const TruthTable& onset) {
  return isop(onset, TruthTable::constant(onset.num_vars(), false));
}

/// Rebuild the truth table covered by `cubes` over `num_vars` variables —
/// used to validate the cover in tests.
TruthTable cover_to_table(const std::vector<Cube>& cubes, unsigned num_vars);

} // namespace rcgp::tt
