#include "tt/npn.hpp"

#include <algorithm>
#include <stdexcept>

namespace rcgp::tt {

TruthTable npn_apply(const TruthTable& t, const NpnTransform& tr) {
  const unsigned n = t.num_vars();
  // Build the permuted/phased table directly by re-indexing assignments.
  TruthTable r(n);
  for (std::uint64_t idx = 0; idx < r.num_bits(); ++idx) {
    // idx is an assignment in canonical space; map it back to original.
    std::uint64_t src = 0;
    for (unsigned i = 0; i < n; ++i) {
      const bool bit_i = ((idx >> i) & 1) != 0;
      const bool phased = bit_i ^ (((tr.input_phase >> i) & 1) != 0);
      if (phased) {
        src |= std::uint64_t{1} << tr.perm[i];
      }
    }
    const bool v = t.bit(src) ^ tr.output_phase;
    if (v) {
      r.set_bit(idx, true);
    }
  }
  return r;
}

TruthTable npn_unapply(const TruthTable& t, const NpnTransform& tr) {
  const unsigned n = t.num_vars();
  TruthTable r(n);
  for (std::uint64_t idx = 0; idx < r.num_bits(); ++idx) {
    std::uint64_t src = 0;
    for (unsigned i = 0; i < n; ++i) {
      const bool bit_i = ((idx >> i) & 1) != 0;
      const bool phased = bit_i ^ (((tr.input_phase >> i) & 1) != 0);
      if (phased) {
        src |= std::uint64_t{1} << tr.perm[i];
      }
    }
    if (t.bit(idx) ^ tr.output_phase) {
      r.set_bit(src, true);
    }
  }
  return r;
}

NpnCanonization npn_canonize(const TruthTable& t) {
  const unsigned n = t.num_vars();
  if (n > kMaxNpnVars) {
    throw std::invalid_argument("npn_canonize: supports up to 6 variables");
  }
  NpnCanonization best{t, {}};
  bool first = true;
  // Enumerate the n! permutations of the table's own variables; positions
  // beyond n keep their identity entries so the transform stays a valid
  // permutation of [0, kMaxNpnVars).
  std::array<unsigned, kMaxNpnVars> perm{0, 1, 2, 3, 4, 5};
  do {
    for (unsigned phase = 0; phase < (1u << n); ++phase) {
      for (unsigned out = 0; out < 2; ++out) {
        NpnTransform tr;
        tr.perm = perm;
        tr.input_phase = phase;
        tr.output_phase = out != 0;
        TruthTable cand = npn_apply(t, tr);
        if (first || cand < best.canon) {
          best.canon = std::move(cand);
          best.transform = tr;
          first = false;
        }
      }
    }
  } while (std::next_permutation(perm.begin(), perm.begin() + n));
  return best;
}

} // namespace rcgp::tt
