#include "tt/isop.hpp"

#include <bit>
#include <stdexcept>

namespace rcgp::tt {

unsigned Cube::num_literals() const {
  return static_cast<unsigned>(std::popcount(mask));
}

bool Cube::evaluates_true(std::uint64_t assignment) const {
  return ((static_cast<std::uint32_t>(assignment) ^ polarity) & mask) == 0;
}

std::string Cube::to_string(unsigned num_vars) const {
  std::string s(num_vars, '-');
  for (unsigned v = 0; v < num_vars; ++v) {
    if (mask & (1u << v)) {
      s[v] = (polarity & (1u << v)) ? '1' : '0';
    }
  }
  return s;
}

namespace {

// Minato-Morreale ISOP on the interval [lower, upper]. Returns the cover
// and writes the covered set into `covered`.
std::vector<Cube> isop_rec(const TruthTable& lower, const TruthTable& upper,
                           unsigned num_vars, TruthTable& covered) {
  if (lower.is_constant0()) {
    covered = TruthTable::constant(lower.num_vars(), false);
    return {};
  }
  if (upper.is_constant1()) {
    covered = TruthTable::constant(lower.num_vars(), true);
    return {Cube{}};
  }

  // Pick the top variable both bounds depend on.
  int var = -1;
  for (int v = static_cast<int>(num_vars) - 1; v >= 0; --v) {
    if (lower.depends_on(static_cast<unsigned>(v)) ||
        upper.depends_on(static_cast<unsigned>(v))) {
      var = v;
      break;
    }
  }
  if (var < 0) {
    // Non-constant table that depends on no variable cannot happen.
    throw std::logic_error("isop: inconsistent interval");
  }
  const auto uv = static_cast<unsigned>(var);

  const TruthTable l0 = lower.cofactor0(uv);
  const TruthTable l1 = lower.cofactor1(uv);
  const TruthTable u0 = upper.cofactor0(uv);
  const TruthTable u1 = upper.cofactor1(uv);

  // Cubes that must contain literal ~var: needed where l0 holds but u1
  // cannot cover (so they can't be var-independent).
  TruthTable cov0(lower.num_vars());
  auto cubes0 = isop_rec(l0 & ~u1, u0, num_vars, cov0);
  for (auto& c : cubes0) {
    c.mask |= 1u << uv; // polarity bit stays 0 => negative literal
  }

  // Cubes that must contain literal var.
  TruthTable cov1(lower.num_vars());
  auto cubes1 = isop_rec(l1 & ~u0, u1, num_vars, cov1);
  for (auto& c : cubes1) {
    c.mask |= 1u << uv;
    c.polarity |= 1u << uv;
  }

  // Remainder must be covered by var-independent cubes.
  const TruthTable rem0 = l0 & ~cov0;
  const TruthTable rem1 = l1 & ~cov1;
  TruthTable cov2(lower.num_vars());
  auto cubes2 = isop_rec(rem0 | rem1, u0 & u1, num_vars, cov2);

  const TruthTable proj = TruthTable::projection(lower.num_vars(), uv);
  covered = (cov0 & ~proj) | (cov1 & proj) | cov2;

  cubes0.insert(cubes0.end(), cubes1.begin(), cubes1.end());
  cubes0.insert(cubes0.end(), cubes2.begin(), cubes2.end());
  return cubes0;
}

} // namespace

std::vector<Cube> isop(const TruthTable& onset, const TruthTable& dc) {
  if (onset.num_vars() != dc.num_vars()) {
    throw std::invalid_argument("isop: arity mismatch");
  }
  if (onset.num_vars() > 31) {
    throw std::invalid_argument("isop: too many variables for Cube");
  }
  TruthTable covered(onset.num_vars());
  return isop_rec(onset, onset | dc, onset.num_vars(), covered);
}

TruthTable cover_to_table(const std::vector<Cube>& cubes, unsigned num_vars) {
  TruthTable t(num_vars);
  for (std::uint64_t a = 0; a < t.num_bits(); ++a) {
    for (const auto& c : cubes) {
      if (c.evaluates_true(a)) {
        t.set_bit(a, true);
        break;
      }
    }
  }
  return t;
}

} // namespace rcgp::tt
