#include "batch/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <thread>

#include "batch/execute.hpp"
#include "cache/store.hpp"
#include "io/io.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "robust/integrity.hpp"

namespace rcgp::batch {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The shared executor configuration the runner's defaults denote.
ExecuteOptions execute_options_for(const BatchOptions& options) {
  ExecuteOptions eo;
  eo.default_generations = options.default_generations;
  eo.threads_per_job = options.threads_per_job;
  eo.checkpoint_interval = options.checkpoint_interval;
  eo.cache = options.cache;
  // The runner saves the cache once after the batch, not per insert.
  eo.save_cache_on_insert = false;
  eo.island_endpoints = options.island_endpoints;
  return eo;
}

// Per-job wall seconds: sub-second smoke jobs through hour-scale runs.
constexpr double kJobSecondsBounds[] = {0.01, 0.03, 0.1,   0.3,   1.0,  3.0,
                                        10.0, 30.0, 100.0, 300.0, 1000.0};

struct BatchMetrics {
  obs::Counter& queued = obs::registry().counter("batch.jobs.queued");
  obs::Counter& done = obs::registry().counter("batch.jobs.done");
  obs::Counter& failed = obs::registry().counter("batch.jobs.failed");
  obs::Counter& retried = obs::registry().counter("batch.jobs.retried");
  obs::Counter& skipped = obs::registry().counter("batch.jobs.skipped");
  obs::Counter& interrupted =
      obs::registry().counter("batch.jobs.interrupted");
  obs::Gauge& running = obs::registry().gauge("batch.jobs.running");
  obs::Gauge& workers = obs::registry().gauge("batch.workers");
};

} // namespace

BatchSummary run_batch(const Manifest& manifest,
                       const BatchOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  std::filesystem::create_directories(options.out_dir);
  const std::string results_path = options.out_dir + "/results.jsonl";

  // Resume: every job with a final record in the store is already settled.
  std::map<std::string, JobRecord> settled;
  if (options.resume) {
    for (auto& rec : ResultsStore::load(results_path)) {
      if (rec.final_record) {
        settled[rec.id] = std::move(rec); // last final record wins
      }
    }
  } else {
    std::remove(results_path.c_str()); // a fresh batch starts a fresh store
  }
  ResultsStore store(results_path);

  std::vector<const Job*> queue;
  for (const auto& job : manifest.jobs) {
    if (settled.find(job.id) == settled.end()) {
      queue.push_back(&job);
    }
  }

  BatchMetrics metrics;
  metrics.queued.inc(queue.size());
  metrics.skipped.inc(settled.size());

  unsigned workers = options.workers != 0
                         ? options.workers
                         : std::thread::hardware_concurrency();
  workers = std::max(1u, std::min<unsigned>(workers, queue.size()));
  metrics.workers.set(static_cast<double>(workers));

  // Batch-level stop: the watchdog bridges the external token and the
  // deadline onto one internal token every running job polls. Jobs are
  // never handed a shrinking time budget — interrupting them (non-final
  // record, re-run on resume) is what keeps per-job results independent
  // of batch scheduling.
  robust::StopToken internal_stop;
  std::atomic<bool> workers_done{false};
  std::atomic<int> batch_reason{
      static_cast<int>(robust::StopReason::kCompleted)};
  std::thread watchdog;
  if (options.budget.deadline_seconds > 0.0 ||
      options.budget.stop != nullptr) {
    watchdog = std::thread([&] {
      while (!workers_done.load(std::memory_order_relaxed)) {
        if (options.budget.stop_requested()) {
          batch_reason.store(
              static_cast<int>(robust::StopReason::kStopRequested),
              std::memory_order_relaxed);
          internal_stop.request_stop();
          return;
        }
        if (options.budget.deadline_seconds > 0.0 &&
            seconds_since(start) > options.budget.deadline_seconds) {
          batch_reason.store(
              static_cast<int>(robust::StopReason::kTimeLimit),
              std::memory_order_relaxed);
          internal_stop.request_stop();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  const ExecuteOptions exec_options = execute_options_for(options);
  const JobExecutor executor =
      options.executor
          ? options.executor
          : [&exec_options](const Job& job, const JobContext& ctx) {
              return execute_request(job, ctx, exec_options);
            };

  std::vector<JobRecord> produced(queue.size());
  std::vector<char> has_record(queue.size(), 0);
  std::atomic<std::size_t> next{0};

  obs::Histogram& job_seconds =
      obs::registry().histogram("batch.job.seconds", kJobSecondsBounds);

  auto worker_body = [&](unsigned w) {
    obs::set_thread_name("batch-worker-" + std::to_string(w));
    obs::Counter& worker_jobs = obs::registry().counter(
        "batch.worker" + std::to_string(w) + ".jobs");
    obs::Gauge& worker_busy = obs::registry().gauge(
        "batch.worker" + std::to_string(w) + ".busy_seconds");
    while (!internal_stop.stop_requested()) {
      const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed);
      if (idx >= queue.size()) {
        return;
      }
      const Job& job = *queue[idx];
      obs::Span job_span("batch.job");
      job_span.arg("id", job.id).arg("worker", w).arg("circuit", job.circuit);
      const std::string ckpt = options.checkpoint_interval != 0 &&
                                       job.algorithm ==
                                           core::Algorithm::kEvolve
                                   ? options.out_dir + "/" + job.id + ".ckpt"
                                   : std::string();
      const unsigned retries = job.retries >= 0
                                   ? static_cast<unsigned>(job.retries)
                                   : options.default_retries;
      metrics.running.add(1.0);
      const auto job_start = std::chrono::steady_clock::now();
      JobRecord rec;
      rec.id = job.id;
      rec.worker = w;
      for (unsigned attempt = 1;; ++attempt) {
        JobContext ctx;
        ctx.worker = w;
        ctx.attempt = attempt;
        ctx.stop = &internal_stop;
        ctx.checkpoint_path = ckpt;
        // Island fleets persist a manifest under <ckpt>.islands instead of
        // the single checkpoint file — either artifact means "continue".
        ctx.resume_from_checkpoint =
            options.resume && attempt == 1 && !ckpt.empty() &&
            (std::filesystem::exists(ckpt) ||
             std::filesystem::exists(ckpt + ".islands/fleet.json"));
        try {
          const JobExecution exec = executor(job, ctx);
          rec.attempts = attempt;
          rec.stop_reason = robust::to_string(exec.stop_reason);
          rec.final_record =
              exec.stop_reason != robust::StopReason::kStopRequested;
          rec.verified = exec.verified;
          rec.cached = exec.cached;
          rec.seeded = exec.seeded;
          rec.ok = rec.final_record && exec.verified;
          rec.n_r = exec.cost.n_r;
          rec.n_b = exec.cost.n_b;
          rec.jjs = exec.cost.jjs;
          rec.n_d = exec.cost.n_d;
          rec.n_g = exec.cost.n_g;
          if (rec.final_record && !rec.ok) {
            rec.error = "result failed verification";
          }
          if (rec.ok) {
            rec.netlist_path = options.out_dir + "/" + job.id + ".rqfp";
            io::write_network(exec.netlist, rec.netlist_path,
                              io::Format::kRqfp);
          }
        } catch (const robust::IntegrityError& e) {
          metrics.retried.inc();
          if (!ckpt.empty()) {
            std::remove(ckpt.c_str()); // never resume from suspect state
            std::error_code ec;
            std::filesystem::remove_all(ckpt + ".islands", ec);
          }
          if (attempt <= retries) {
            continue;
          }
          rec.attempts = attempt;
          rec.stop_reason = "error";
          rec.error = e.what();
          rec.ok = false;
          rec.final_record = true;
        } catch (const std::exception& e) {
          rec.attempts = attempt;
          rec.stop_reason = "error";
          rec.error = e.what();
          rec.ok = false;
          rec.final_record = true;
        }
        break;
      }
      rec.seconds = seconds_since(job_start);
      // A finished job no longer needs its crash-safety checkpoint; an
      // interrupted one keeps it so resume continues bit-identically.
      if (rec.final_record && !ckpt.empty()) {
        std::remove(ckpt.c_str());
        std::error_code ec;
        std::filesystem::remove_all(ckpt + ".islands", ec);
      }
      store.append(rec);
      if (!rec.final_record) {
        metrics.interrupted.inc();
      } else if (rec.ok) {
        metrics.done.inc();
      } else {
        metrics.failed.inc();
      }
      worker_jobs.inc();
      worker_busy.add(rec.seconds);
      job_seconds.observe(rec.seconds);
      metrics.running.add(-1.0);
      if (options.trace) {
        options.trace->event("batch_job")
            .field("id", rec.id)
            .field("worker", rec.worker)
            .field("attempts", rec.attempts)
            .field("seconds", rec.seconds)
            .field("ok", rec.ok)
            .field("final", rec.final_record)
            .field("stop_reason", rec.stop_reason)
            .field("n_r", rec.n_r)
            .field("n_b", rec.n_b)
            .field("jjs", rec.jjs);
      }
      produced[idx] = rec;
      has_record[idx] = 1;
      if (options.on_record) {
        options.on_record(rec);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back(worker_body, w);
  }
  for (auto& t : pool) {
    t.join();
  }
  workers_done.store(true, std::memory_order_relaxed);
  if (watchdog.joinable()) {
    watchdog.join();
  }
  if (options.cache != nullptr) {
    options.cache->save(); // one atomic write-back for the whole batch
  }

  BatchSummary summary;
  summary.results_path = results_path;
  summary.total = static_cast<unsigned>(manifest.jobs.size());
  summary.seconds = seconds_since(start);
  const double total_seconds = summary.seconds > 0.0 ? summary.seconds : 1.0;
  for (unsigned w = 0; w < workers; ++w) {
    const double busy =
        obs::registry()
            .gauge("batch.worker" + std::to_string(w) + ".busy_seconds")
            .value();
    obs::registry()
        .gauge("batch.worker" + std::to_string(w) + ".utilization")
        .set(busy / total_seconds);
  }

  std::map<std::string, std::size_t> queued_index;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    queued_index[queue[i]->id] = i;
  }
  for (const auto& job : manifest.jobs) {
    const auto settled_it = settled.find(job.id);
    if (settled_it != settled.end()) {
      ++summary.skipped;
      if (settled_it->second.ok) {
        ++summary.done;
      } else {
        ++summary.failed;
      }
      summary.records.push_back(settled_it->second);
      continue;
    }
    const std::size_t idx = queued_index.at(job.id);
    if (!has_record[idx]) {
      ++summary.unrun; // never claimed before the batch stopped
      continue;
    }
    const JobRecord& rec = produced[idx];
    summary.records.push_back(rec);
    if (!rec.final_record) {
      ++summary.unrun; // interrupted mid-run; resume re-runs it
    } else if (rec.ok) {
      ++summary.done;
    } else {
      ++summary.failed;
    }
  }
  if (internal_stop.stop_requested()) {
    summary.stop_reason =
        static_cast<robust::StopReason>(batch_reason.load());
  }
  return summary;
}

} // namespace rcgp::batch
