#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace rcgp::batch {

/// One job outcome in the batch results store. The deterministic fields
/// (id, ok, final_record, stop_reason, verified, cost, error) are
/// bit-identical for any worker count; `worker`, `attempts`, and
/// `seconds` are scheduling facts and may differ between runs.
struct JobRecord {
  std::string id;
  /// True when the job finished with a verified, functionally correct
  /// netlist written to `netlist_path`.
  bool ok = false;
  /// False when the job was cut short by a batch-level stop or deadline —
  /// such records are provisional and the job is re-run by `--resume`.
  /// Completed and permanently-failed jobs are final.
  bool final_record = true;
  /// Stop reason of the job's optimizer run ("completed", "stagnation",
  /// "stop-requested", ...); "error" for jobs that threw.
  std::string stop_reason = "completed";
  std::string error; ///< failure message; empty when ok
  bool verified = false; ///< exhaustive simulation check passed
  bool cached = false;   ///< served straight from the result cache
  bool seeded = false;   ///< evolution was seeded from a cache hit
  /// Cost of the synthesized netlist (all zero on failure).
  std::uint32_t n_r = 0, n_b = 0, n_d = 0, n_g = 0;
  std::uint64_t jjs = 0;
  std::string netlist_path; ///< written .rqfp (empty on failure)
  unsigned attempts = 1;    ///< 1 + integrity retries consumed
  unsigned worker = 0;      ///< worker index that ran the job
  double seconds = 0.0;     ///< wall time of the final attempt
};

/// Serializes a record as one JSON line (the store format).
std::string to_json(const JobRecord& record);

/// Parses one store line; std::nullopt for torn or malformed lines (a
/// crash mid-append leaves at most one such line at the end of the file).
std::optional<JobRecord> parse_record(const std::string& line);

/// Crash-safe append-only JSONL results store. Every append writes one
/// complete line and flushes before returning, so after a crash the store
/// holds every finished job plus at most one torn tail line, which load()
/// skips. Appends are serialized internally — workers share one store.
class ResultsStore {
public:
  /// Opens `path` for appending (created if missing; existing records are
  /// preserved). Throws std::runtime_error when the file cannot be opened.
  explicit ResultsStore(const std::string& path);

  /// Reads every well-formed record in file order. Missing file = empty.
  static std::vector<JobRecord> load(const std::string& path);

  void append(const JobRecord& record);

  const std::string& path() const { return path_; }

private:
  std::string path_;
  std::mutex mu_;
  std::ofstream out_;
};

} // namespace rcgp::batch
