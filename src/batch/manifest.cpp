#include "batch/manifest.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "io/parse_error.hpp"
#include "obs/json.hpp"

namespace rcgp::batch {
namespace {

[[noreturn]] void fail(const std::string& source, std::size_t line,
                       const std::string& message) {
  io::fail_parse("manifest", source, line, message);
}

/// One scanned top-level `"key": value` pair of a flat JSON object.
struct Field {
  std::string key;
  std::string raw;     ///< value text (string content unescaped)
  bool is_string = false;
};

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  return i;
}

/// Reads a JSON string starting at the opening quote; returns the decoded
/// content and advances `i` past the closing quote. The line has already
/// passed obs::json::validate, so escapes are well-formed.
std::string read_string(const std::string& s, std::size_t& i) {
  std::string out;
  ++i; // opening quote
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      const char c = s[i + 1];
      out += c == 'n' ? '\n' : c == 't' ? '\t' : c == 'r' ? '\r' : c;
      i += 2;
    } else {
      out += s[i++];
    }
  }
  ++i; // closing quote
  return out;
}

/// Splits a validated flat JSON object into its top-level fields. Nested
/// objects and arrays are rejected — manifest lines are flat on purpose so
/// every key is checkable.
std::vector<Field> scan_flat_object(const std::string& line,
                                    const std::string& source,
                                    std::size_t lineno) {
  std::vector<Field> fields;
  std::size_t i = skip_ws(line, 0);
  if (i >= line.size() || line[i] != '{') {
    fail(source, lineno, "job line must be a JSON object");
  }
  i = skip_ws(line, i + 1);
  if (i < line.size() && line[i] == '}') {
    return fields;
  }
  while (i < line.size()) {
    if (line[i] != '"') {
      fail(source, lineno, "expected a key string");
    }
    Field f;
    f.key = read_string(line, i);
    i = skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') {
      fail(source, lineno, "expected ':' after key \"" + f.key + "\"");
    }
    i = skip_ws(line, i + 1);
    if (i >= line.size()) {
      fail(source, lineno, "missing value for key \"" + f.key + "\"");
    }
    if (line[i] == '"') {
      f.is_string = true;
      f.raw = read_string(line, i);
    } else if (line[i] == '{' || line[i] == '[') {
      fail(source, lineno,
           "key \"" + f.key + "\": nested values are not allowed — "
           "manifest job lines are flat objects");
    } else {
      while (i < line.size() && line[i] != ',' && line[i] != '}' &&
             !std::isspace(static_cast<unsigned char>(line[i]))) {
        f.raw += line[i++];
      }
    }
    fields.push_back(std::move(f));
    i = skip_ws(line, i);
    if (i < line.size() && line[i] == ',') {
      i = skip_ws(line, i + 1);
      continue;
    }
    if (i < line.size() && line[i] == '}') {
      return fields;
    }
    fail(source, lineno, "expected ',' or '}' in job object");
  }
  fail(source, lineno, "unterminated job object");
}

double number_of(const Field& f, const std::string& source,
                 std::size_t lineno) {
  if (f.is_string) {
    fail(source, lineno, "key \"" + f.key + "\" must be a number");
  }
  try {
    std::size_t used = 0;
    const double v = std::stod(f.raw, &used);
    if (used != f.raw.size()) {
      throw std::invalid_argument(f.raw);
    }
    return v;
  } catch (const std::exception&) {
    fail(source, lineno,
         "key \"" + f.key + "\": not a number: \"" + f.raw + "\"");
  }
}

std::uint64_t uint_of(const Field& f, const std::string& source,
                      std::size_t lineno) {
  const double v = number_of(f, source, lineno);
  if (v < 0 || v != static_cast<double>(static_cast<std::uint64_t>(v))) {
    fail(source, lineno,
         "key \"" + f.key + "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

std::string string_of(const Field& f, const std::string& source,
                      std::size_t lineno) {
  if (!f.is_string) {
    fail(source, lineno, "key \"" + f.key + "\" must be a string");
  }
  return f.raw;
}

Job parse_job(const std::string& line, const std::string& source,
              std::size_t lineno) {
  if (!obs::json::validate(line)) {
    fail(source, lineno, "malformed JSON");
  }
  Job job;
  job.line = lineno;
  for (const auto& f : scan_flat_object(line, source, lineno)) {
    if (f.key == "id") {
      job.id = string_of(f, source, lineno);
    } else if (f.key == "circuit") {
      job.circuit = string_of(f, source, lineno);
    } else if (f.key == "algorithm") {
      try {
        job.algorithm = core::parse_algorithm(string_of(f, source, lineno));
      } catch (const std::invalid_argument& e) {
        fail(source, lineno, e.what());
      }
    } else if (f.key == "generations") {
      job.generations = uint_of(f, source, lineno);
    } else if (f.key == "seed") {
      job.seed = uint_of(f, source, lineno);
    } else if (f.key == "restarts") {
      job.restarts = static_cast<unsigned>(uint_of(f, source, lineno));
    } else if (f.key == "deadline_seconds") {
      job.deadline_seconds = number_of(f, source, lineno);
      if (job.deadline_seconds < 0) {
        fail(source, lineno, "key \"deadline_seconds\" must be >= 0");
      }
    } else if (f.key == "max_evaluations") {
      job.max_evaluations = uint_of(f, source, lineno);
    } else if (f.key == "retries") {
      job.retries = static_cast<int>(uint_of(f, source, lineno));
    } else {
      fail(source, lineno, "unknown key \"" + f.key + "\"");
    }
  }
  if (job.id.empty()) {
    fail(source, lineno, "missing required key \"id\"");
  }
  for (const char c : job.id) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.')) {
      fail(source, lineno,
           "id \"" + job.id + "\" must be filesystem-safe "
           "([A-Za-z0-9._-] only) — it names checkpoint and output files");
    }
  }
  if (job.circuit.empty()) {
    fail(source, lineno, "missing required key \"circuit\"");
  }
  return job;
}

} // namespace

Manifest parse_manifest(std::istream& in, const std::string& source) {
  Manifest m;
  m.source = source;
  std::set<std::string> seen;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = skip_ws(line, 0);
    if (first >= line.size() || line[first] == '#') {
      continue;
    }
    Job job = parse_job(line, source, lineno);
    if (!seen.insert(job.id).second) {
      fail(source, lineno, "duplicate job id \"" + job.id + "\"");
    }
    m.jobs.push_back(std::move(job));
  }
  if (m.jobs.empty()) {
    fail(source, lineno, "manifest contains no jobs");
  }
  return m;
}

Manifest parse_manifest_string(const std::string& text) {
  std::istringstream in(text);
  return parse_manifest(in, "<string>");
}

Manifest parse_manifest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    fail(path, 0, "cannot open file");
  }
  return parse_manifest(in, path);
}

} // namespace rcgp::batch
