#include "batch/manifest.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <set>
#include <sstream>

#include "io/parse_error.hpp"

namespace rcgp::batch {
namespace {

[[noreturn]] void fail(const std::string& source, std::size_t line,
                       const std::string& message) {
  io::fail_parse("manifest", source, line, message);
}

std::size_t first_content(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  return i;
}

} // namespace

Manifest parse_manifest(std::istream& in, const std::string& source) {
  Manifest m;
  m.source = source;
  std::set<std::string> seen;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = first_content(line);
    if (first >= line.size() || line[first] == '#') {
      continue;
    }
    Job job = core::parse_request(line, source, lineno, "manifest");
    if (!seen.insert(job.id).second) {
      fail(source, lineno, "duplicate job id \"" + job.id + "\"");
    }
    m.jobs.push_back(std::move(job));
  }
  if (m.jobs.empty()) {
    fail(source, lineno, "manifest contains no jobs");
  }
  return m;
}

Manifest parse_manifest_string(const std::string& text) {
  std::istringstream in(text);
  return parse_manifest(in, "<string>");
}

Manifest parse_manifest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    fail(path, 0, "cannot open file");
  }
  return parse_manifest(in, path);
}

} // namespace rcgp::batch
