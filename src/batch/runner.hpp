#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "batch/manifest.hpp"
#include "batch/results.hpp"
#include "robust/stop.hpp"
#include "rqfp/cost.hpp"
#include "rqfp/netlist.hpp"

namespace rcgp::obs {
class TraceSink;
}

namespace rcgp::cache {
class Store;
}

namespace rcgp::batch {

/// Scheduling facts handed to the job executor alongside the job itself.
struct JobContext {
  unsigned worker = 0;  ///< worker index running this attempt
  unsigned attempt = 1; ///< 1-based (2+ = integrity retry)
  /// Per-job crash-safe checkpoint (`<out-dir>/<id>.ckpt`); empty when
  /// checkpointing is disabled or the algorithm does not support it.
  std::string checkpoint_path;
  /// True when the checkpoint exists and the batch runs in resume mode:
  /// the job continues bit-identically instead of starting over.
  bool resume_from_checkpoint = false;
  /// Batch-level cooperative stop (tripped by the batch deadline or an
  /// external stop token). A job interrupted by it is recorded as
  /// non-final and re-run by a later `--resume`.
  robust::StopToken* stop = nullptr;
};

/// What a job execution produced. The runner turns this into a JobRecord,
/// writes the netlist, and updates the metrics.
struct JobExecution {
  rqfp::Netlist netlist;
  rqfp::Cost cost;
  robust::StopReason stop_reason = robust::StopReason::kCompleted;
  bool verified = false; ///< exhaustive simulation check passed
  bool cached = false;   ///< served straight from the result cache
  bool seeded = false;   ///< evolution was seeded from a cache hit
};

/// Replaceable job body: the default runs the full synthesis flow
/// (core::synthesize / synthesize_file); tests substitute deterministic or
/// fault-injecting executors. Throwing robust::IntegrityError triggers a
/// retry (fresh attempt, checkpoint discarded); any other exception fails
/// the job permanently.
using JobExecutor = std::function<JobExecution(const Job&, const JobContext&)>;

struct BatchOptions {
  /// Worker threads sharding the job list (0 = hardware concurrency,
  /// clamped to the job count). Per-job results are bit-identical for
  /// every worker count.
  unsigned workers = 1;
  /// Output directory: results store (`results.jsonl`), per-job netlists
  /// (`<id>.rqfp`), and per-job checkpoints (`<id>.ckpt`). Created if
  /// missing.
  std::string out_dir = "batch_out";
  /// Re-run only jobs without a final record in the existing results
  /// store; finished jobs are reported as skipped. Without resume an
  /// existing store is truncated.
  bool resume = false;
  /// Integrity-retry budget per job; a manifest `retries` field overrides.
  unsigned default_retries = 1;
  /// Batch-level limits: deadline_seconds and stop are enforced (workers
  /// stop claiming jobs and running jobs are interrupted cooperatively);
  /// the generation/evaluation ceilings are per-job concerns and ignored
  /// here.
  robust::RunBudget budget;
  /// Per-job evolve checkpoint interval in generations (0 disables
  /// checkpointing; only Algorithm::kEvolve jobs checkpoint).
  std::uint64_t checkpoint_interval = 1000;
  /// CGP generation budget for jobs without a manifest override.
  std::uint64_t default_generations = 50000;
  /// λ-parallel evaluation threads inside each job. Kept at 1 by default:
  /// batch parallelism comes from sharding jobs, not from splitting one.
  unsigned threads_per_job = 1;
  /// Optional structured trace: one `batch_job` event per settled job
  /// (worker/attempt/cost attribution) and a final `batch_end` summary.
  /// The sink must outlive run_batch. Not owned.
  obs::TraceSink* trace = nullptr;
  /// Optional shared NPN-canonical result cache (batch/execute.hpp): jobs
  /// consult it per their CachePolicy and verified results are written
  /// back; the runner saves it once after the batch. Not owned.
  cache::Store* cache = nullptr;
  /// `rcgp serve` endpoints that multi-island evolve jobs farm their
  /// slices out to (docs/ISLANDS.md); empty = islands run in-process.
  std::vector<std::string> island_endpoints;
  JobExecutor executor;                         ///< test hook
  std::function<void(const JobRecord&)> on_record; ///< after each append
};

/// Outcome of a whole batch. `records` holds one entry per manifest job
/// that has a record — from this run or, for skipped jobs, from the
/// resumed store — in manifest order.
struct BatchSummary {
  std::vector<JobRecord> records;
  unsigned total = 0;   ///< manifest jobs
  unsigned done = 0;    ///< final ok (including previously finished)
  unsigned failed = 0;  ///< final failures (including previous)
  unsigned skipped = 0; ///< already final in the store (resume)
  unsigned unrun = 0;   ///< no final record: never claimed or interrupted
  robust::StopReason stop_reason = robust::StopReason::kCompleted;
  double seconds = 0.0;
  std::string results_path;

  bool all_ok() const { return failed == 0 && unrun == 0; }
};

/// Runs every manifest job across a worker pool. Deterministic contract
/// (docs/BATCH.md): with fixed manifest and seeds, the deterministic
/// record fields and written netlists are bit-identical for any worker
/// count, and a killed batch resumed with `resume = true` completes only
/// the unfinished jobs with identical results.
BatchSummary run_batch(const Manifest& manifest, const BatchOptions& options);

} // namespace rcgp::batch
