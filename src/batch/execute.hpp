#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batch/runner.hpp"
#include "cache/store.hpp"
#include "core/request.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::batch {

/// Executor-side configuration shared by every front end that runs
/// synthesis requests: the batch runner, the serve daemon, and the
/// single-shot CLI all expand a core::SynthesisRequest through
/// execute_request with one of these.
struct ExecuteOptions {
  /// Fallbacks for request fields left at 0 (see core::RequestDefaults).
  std::uint64_t default_generations = 50000;
  unsigned threads_per_job = 1;
  /// Evolve checkpoint cadence when the context carries a checkpoint path
  /// (0 disables).
  std::uint64_t checkpoint_interval = 1000;
  /// Optional shared NPN-canonical result cache. When set, requests with
  /// CachePolicy::kUse are answered from it on a hit and verified results
  /// are written back on a miss; CachePolicy::kSeed requests synthesize
  /// but start evolution from a de-canonicalized hit. Not owned.
  cache::Store* cache = nullptr;
  /// Persist the cache right after every insert that changed it (the serve
  /// daemon's mode; the batch CLI saves once at the end instead).
  bool save_cache_on_insert = false;
  /// `rcgp serve` endpoints (Unix socket paths or TCP host:port) that
  /// island slices of multi-island evolve jobs are farmed out to — island
  /// i talks to endpoints[i % size]. Empty = islands run in-process.
  /// Requires a checkpointing context (the fleet must be file-backed) and
  /// daemons started with --checkpoint-dir on the shared state directory
  /// (docs/ISLANDS.md).
  std::vector<std::string> island_endpoints;
};

/// Resolves the function a request describes: the inline spec when
/// present, otherwise the circuit file (io facade) or built-in benchmark.
/// Throws what the io/benchmark layers throw on unknown circuits.
std::vector<tt::TruthTable> resolve_spec(const core::SynthesisRequest& job);

/// The shared job body: resolve the spec, consult the cache per the
/// request's policy, run the full synthesis flow with the job's overrides
/// layered over `options`, verify exhaustively, and write verified
/// results back to the cache. Scheduling facts (worker, stop token,
/// checkpoint path) come from `ctx` exactly as in the batch runner.
JobExecution execute_request(const core::SynthesisRequest& job,
                             const JobContext& ctx,
                             const ExecuteOptions& options);

/// Turns a finished execution into the wire response for `id` (cost,
/// stop reason, flags, and the `.rqfp` netlist text when ok).
core::SynthesisResponse response_for(const std::string& id,
                                     const JobExecution& exec,
                                     double seconds);

} // namespace rcgp::batch
