#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/request.hpp"

namespace rcgp::batch {

/// A manifest job IS a synthesis request — the batch runner consumes the
/// same versioned job description as the `rcgp synth` flags and the
/// `rcgp serve` protocol (core/request.hpp). The alias survives from the
/// pre-unification Job struct.
using Job = core::SynthesisRequest;

/// A parsed manifest: jobs in file order with unique ids.
struct Manifest {
  std::string source; ///< path (or "<string>") for diagnostics
  std::vector<Job> jobs;
};

/// Parses the JSONL manifest format (docs/BATCH.md): one JSON object per
/// job line — `{"id":"j1","circuit":"full_adder","generations":500}` —
/// with `#`-comment and blank lines ignored. Each line is handed to
/// core::parse_request, so the full request schema (inline specs, cache
/// policy, schema version) is available per job. Unknown keys, wrong
/// value types, duplicate ids, and malformed JSON all throw io::ParseError
/// with "manifest:<source>:<line>" context.
Manifest parse_manifest(std::istream& in, const std::string& source);
Manifest parse_manifest_string(const std::string& text);
Manifest parse_manifest_file(const std::string& path);

} // namespace rcgp::batch
