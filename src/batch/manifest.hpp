#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/optimizer.hpp"

namespace rcgp::batch {

/// One synthesis job from a batch manifest. `id` and `circuit` come from
/// the manifest; every other field is an optional per-job override of the
/// batch defaults (0 / empty = keep the default).
struct Job {
  /// Unique job identifier. Used for the result record, the per-job
  /// checkpoint (`<out-dir>/<id>.ckpt`), and the output netlist
  /// (`<out-dir>/<id>.rqfp`), so it must be filesystem-safe.
  std::string id;
  /// Circuit to synthesize: a file in any format the io facade reads, or
  /// the name of a built-in benchmark (`rcgp list`).
  std::string circuit;
  core::Algorithm algorithm = core::Algorithm::kEvolve;
  std::uint64_t generations = 0; ///< CGP generation budget (0 = default)
  std::uint64_t seed = 0;        ///< RNG seed (0 = default seed 1)
  unsigned restarts = 0;         ///< kMultistart restarts (0 = default)
  /// Per-job wall-clock ceiling in seconds (0 = none). Note: this is the
  /// one per-job knob that is *not* deterministic across machines or
  /// worker counts — see docs/BATCH.md.
  double deadline_seconds = 0.0;
  std::uint64_t max_evaluations = 0; ///< evaluation ceiling (0 = none)
  /// Retry budget on integrity violations; negative = batch default.
  int retries = -1;
  /// 1-based manifest line the job was parsed from (diagnostics).
  std::size_t line = 0;
};

/// A parsed manifest: jobs in file order with unique ids.
struct Manifest {
  std::string source; ///< path (or "<string>") for diagnostics
  std::vector<Job> jobs;
};

/// Parses the JSONL manifest format (docs/BATCH.md): one flat JSON object
/// per job line — `{"id":"j1","circuit":"full_adder","generations":500}` —
/// with `#`-comment and blank lines ignored. Unknown keys, wrong value
/// types, duplicate ids, and malformed JSON all throw io::ParseError with
/// "manifest:<source>:<line>" context.
Manifest parse_manifest(std::istream& in, const std::string& source);
Manifest parse_manifest_string(const std::string& text);
Manifest parse_manifest_file(const std::string& path);

} // namespace rcgp::batch
