#include "batch/results.hpp"

#include <stdexcept>

#include "obs/json.hpp"

namespace rcgp::batch {

std::string to_json(const JobRecord& record) {
  obs::json::Writer w;
  w.begin_object();
  w.field("id", record.id);
  w.field("ok", record.ok);
  w.field("final", record.final_record);
  w.field("stop_reason", record.stop_reason);
  if (!record.error.empty()) {
    w.field("error", record.error);
  }
  w.field("verified", record.verified);
  if (record.cached) {
    w.field("cached", true);
  }
  if (record.seeded) {
    w.field("seeded", true);
  }
  w.key("cost").begin_object();
  w.field("n_r", record.n_r);
  w.field("n_b", record.n_b);
  w.field("jjs", record.jjs);
  w.field("n_d", record.n_d);
  w.field("n_g", record.n_g);
  w.end_object();
  if (!record.netlist_path.empty()) {
    w.field("netlist", record.netlist_path);
  }
  w.field("attempts", record.attempts);
  w.field("worker", record.worker);
  w.field("seconds", record.seconds);
  w.end_object();
  return w.str();
}

std::optional<JobRecord> parse_record(const std::string& line) {
  if (!obs::json::validate(line)) {
    return std::nullopt;
  }
  const auto id = obs::json::string_field(line, "id");
  const auto reason = obs::json::string_field(line, "stop_reason");
  if (!id || !reason) {
    return std::nullopt;
  }
  JobRecord r;
  r.id = *id;
  r.stop_reason = *reason;
  // validate() guarantees well-formed JSON, so the boolean literals can be
  // found with a flat scan like the numeric fields.
  r.ok = line.find("\"ok\":true") != std::string::npos;
  r.final_record = line.find("\"final\":true") != std::string::npos;
  r.verified = line.find("\"verified\":true") != std::string::npos;
  r.cached = line.find("\"cached\":true") != std::string::npos;
  r.seeded = line.find("\"seeded\":true") != std::string::npos;
  if (const auto e = obs::json::string_field(line, "error")) {
    r.error = *e;
  }
  if (const auto p = obs::json::string_field(line, "netlist")) {
    r.netlist_path = *p;
  }
  const auto u32 = [&](const char* key) -> std::uint32_t {
    const auto v = obs::json::number_field(line, key);
    return v ? static_cast<std::uint32_t>(*v) : 0;
  };
  r.n_r = u32("n_r");
  r.n_b = u32("n_b");
  r.n_d = u32("n_d");
  r.n_g = u32("n_g");
  if (const auto v = obs::json::number_field(line, "jjs")) {
    r.jjs = static_cast<std::uint64_t>(*v);
  }
  r.attempts = u32("attempts");
  r.worker = u32("worker");
  if (const auto v = obs::json::number_field(line, "seconds")) {
    r.seconds = *v;
  }
  return r;
}

ResultsStore::ResultsStore(const std::string& path)
    : path_(path), out_(path, std::ios::app) {
  if (!out_) {
    throw std::runtime_error("batch: cannot open results store " + path);
  }
}

std::vector<JobRecord> ResultsStore::load(const std::string& path) {
  std::vector<JobRecord> records;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (auto r = parse_record(line)) {
      records.push_back(std::move(*r));
    }
  }
  return records;
}

void ResultsStore::append(const JobRecord& record) {
  const std::string line = to_json(record);
  const std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  out_.flush();
}

} // namespace rcgp::batch
