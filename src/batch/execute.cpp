#include "batch/execute.hpp"

#include <optional>

#include "benchmarks/benchmarks.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "io/io.hpp"
#include "io/rqfp_writer.hpp"
#include "island/island.hpp"

namespace rcgp::batch {

namespace {

/// The cache only understands specs its canonicalizer accepts.
bool cacheable(const std::vector<tt::TruthTable>& spec) {
  return !spec.empty() && spec.size() <= 32;
}

} // namespace

std::vector<tt::TruthTable> resolve_spec(const core::SynthesisRequest& job) {
  if (job.has_inline_spec()) {
    return job.spec;
  }
  if (io::format_from_extension(job.circuit) != io::Format::kAuto) {
    return io::read_network(job.circuit).to_tables();
  }
  return benchmarks::get(job.circuit).spec;
}

JobExecution execute_request(const core::SynthesisRequest& job,
                             const JobContext& ctx,
                             const ExecuteOptions& options) {
  core::RequestDefaults defaults;
  defaults.generations = options.default_generations;
  defaults.threads = options.threads_per_job;
  const core::OptimizerOptions oo = core::optimizer_options_for(job, defaults);

  core::FlowOptions fo;
  fo.optimizer = oo.algorithm;
  fo.evolve = oo.evolve;
  fo.anneal = oo.anneal;
  fo.window = oo.window;
  fo.restarts = oo.restarts;
  fo.island = oo.island;
  fo.limits = oo.limits;
  fo.limits.stop = ctx.stop;
  if (!ctx.checkpoint_path.empty()) {
    fo.limits.checkpoint_path = ctx.checkpoint_path;
    fo.limits.checkpoint_interval = options.checkpoint_interval;
    fo.resume = ctx.resume_from_checkpoint;
    if (fo.island.islands > 1) {
      // Island fleets keep per-island checkpoints plus a manifest in a
      // sibling directory of the job's checkpoint path; the flow's
      // fleet-resume path restores from it.
      fo.island.state_dir = ctx.checkpoint_path + ".islands";
    }
  }
  std::optional<island::RemoteSliceExecutor> remote;
  if (fo.island.islands > 1 && !options.island_endpoints.empty()) {
    remote.emplace(options.island_endpoints);
    fo.island.executor = &*remote;
  }

  // Resolve the circuit: inline spec, file via the io facade, or a
  // built-in benchmark. AIG sources keep their structural entry into the
  // flow; everything else enters through exhaustive truth tables.
  std::vector<tt::TruthTable> spec;
  std::optional<aig::Aig> structural;
  std::vector<std::string> po_names;
  if (job.has_inline_spec()) {
    spec = job.spec;
  } else if (io::format_from_extension(job.circuit) != io::Format::kAuto) {
    io::Network net = io::read_network(job.circuit);
    spec = net.to_tables();
    po_names = net.po_names;
    if (net.aig) {
      structural = std::move(*net.aig);
    }
  } else {
    spec = benchmarks::get(job.circuit).spec;
  }

  JobExecution exec;
  cache::Store* cache =
      job.cache != core::CachePolicy::kOff && cacheable(spec) ? options.cache
                                                              : nullptr;

  // Fast path: a kUse hit skips synthesis entirely. The store re-verified
  // the de-canonicalized netlist by simulation, so it is final.
  if (cache != nullptr && job.cache == core::CachePolicy::kUse) {
    if (auto hit = cache->lookup(spec)) {
      exec.netlist = std::move(hit->netlist);
      exec.cost = hit->cost;
      exec.stop_reason = robust::StopReason::kCompleted;
      exec.verified = true;
      exec.cached = true;
      return exec;
    }
  }

  // kSeed: synthesize, but start evolution from a de-canonicalized hit
  // (the flow validates it and falls back to the mapped baseline if it
  // does not fit — flow.seed.used / flow.seed.rejected count which).
  std::optional<cache::Hit> seed;
  if (cache != nullptr && job.cache == core::CachePolicy::kSeed) {
    seed = cache->lookup(spec);
    if (seed) {
      fo.cgp_seed = &seed->netlist;
      exec.seeded = true;
    }
  }

  const core::FlowResult r =
      structural ? core::synthesize(*structural, fo)
                 : core::synthesize(core::aig_from_tables(spec, po_names), fo);

  exec.netlist = r.optimized;
  exec.cost = r.optimized_cost;
  exec.stop_reason = r.optimization.stop_reason;
  exec.verified = cec::sim_check(r.optimized, spec).all_match;

  // Write back: completed, verified results feed later requests of the
  // same NPN class (keep-best, so a worse rediscovery never regresses).
  if (cache != nullptr && exec.verified &&
      exec.stop_reason != robust::StopReason::kStopRequested) {
    if (cache->insert(spec, exec.netlist, "cgp") &&
        options.save_cache_on_insert) {
      cache->save();
    }
  }
  return exec;
}

core::SynthesisResponse response_for(const std::string& id,
                                     const JobExecution& exec,
                                     double seconds) {
  core::SynthesisResponse resp;
  resp.id = id;
  resp.cached = exec.cached;
  resp.seeded = exec.seeded;
  resp.stop_reason = std::string(robust::to_string(exec.stop_reason));
  resp.verified = exec.verified;
  resp.cost = exec.cost;
  resp.seconds = seconds;
  resp.ok = exec.verified &&
            exec.stop_reason != robust::StopReason::kStopRequested;
  if (resp.ok) {
    resp.netlist = io::write_rqfp_string(exec.netlist);
  } else if (!exec.verified) {
    resp.error = "result failed verification";
  } else {
    resp.error = "interrupted";
  }
  return resp;
}

} // namespace rcgp::batch
