#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace rcgp::obs {

class TraceSink;

/// One event under construction. Writes itself to the sink as a single
/// JSONL line on destruction. Every event carries `event` (the type),
/// `seq` (a per-sink sequence number), and `t_ms` (milliseconds since the
/// process-wide steady-clock epoch — the same timebase as the span
/// profiler, so JSONL traces align with Perfetto profiles).
class TraceEvent {
public:
  TraceEvent(TraceEvent&& other) noexcept;
  ~TraceEvent();

  template <typename T>
  TraceEvent& field(std::string_view key, T v) {
    w_.field(key, v);
    return *this;
  }
  /// Opens a nested object field; close it with end().
  TraceEvent& begin(std::string_view key) {
    w_.key(key).begin_object();
    return *this;
  }
  TraceEvent& end() {
    w_.end_object();
    return *this;
  }

private:
  friend class TraceSink;
  TraceEvent(TraceSink* sink, std::string_view type, std::uint64_t seq);

  TraceSink* sink_;
  json::Writer w_;
};

/// Append-only JSONL event stream (one JSON object per line). Thread-safe:
/// events are serialized locally and appended under a mutex. Sinks are
/// either file-backed or in-memory (for tests).
class TraceSink {
public:
  /// Opens `path` for writing; returns nullptr on failure.
  static std::unique_ptr<TraceSink> open(const std::string& path);
  /// In-memory sink; read back with buffer().
  static std::unique_ptr<TraceSink> memory();

  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Starts an event of the given type; fields are added fluently and the
  /// line is committed when the returned object goes out of scope:
  ///   sink->event("improvement").field("gen", g).field("n_r", r);
  TraceEvent event(std::string_view type);

  /// Appends one raw line (must be a complete JSON document, no newline).
  void write_line(std::string_view json_line);

  void flush();
  std::uint64_t lines_written() const;

  /// Contents of an in-memory sink (empty for file sinks).
  std::string buffer() const;

  /// Routes util::log through this sink: every message at or above the
  /// log threshold is also emitted as a {"event":"log",...} line. The
  /// routing detaches automatically when the sink is destroyed.
  void attach_to_log();

private:
  TraceSink() = default;

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string mem_;
  std::uint64_t lines_ = 0;
  std::uint64_t seq_ = 0;
};

} // namespace rcgp::obs
