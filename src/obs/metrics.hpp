#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rcgp::obs {

/// Monotonic counter. Relaxed atomic increments — cheap enough for the
/// evolve hot loop (one uncontended fetch_add per event, no locks).
class Counter {
public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value / accumulating gauge (doubles, e.g. phase seconds).
class Gauge {
public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds
/// (value <= bounds[i] lands in bucket i); one implicit +inf overflow
/// bucket. Observation is a linear scan over a handful of bounds plus two
/// relaxed atomics — no locks.
class Histogram {
public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double v);

  /// Estimated q-quantile (q in [0, 1]) with linear interpolation inside
  /// the bucket the rank falls in (see quantile_from_buckets). NaN while
  /// the histogram is empty.
  double quantile(double q) const;

  std::size_t num_buckets() const { return buckets_.size(); } // bounds + inf
  double bound(std::size_t i) const { return bounds_[i]; }    // i < bounds
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  void reset();

private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Quantile estimate over fixed-bucket histogram data: `bounds` are the
/// ascending inclusive upper bounds, `counts` the per-bucket observation
/// counts (`bounds.size() + 1` entries, last = overflow). The rank
/// `q * total` is located in its bucket and linearly interpolated between
/// the bucket's edges (the first bucket interpolates from 0 when its bound
/// is positive, Prometheus-style); a rank in the overflow bucket returns
/// the largest finite bound. Returns NaN when `counts` sum to zero.
/// Shared by Histogram::quantile and the `rcgp report` tool, which
/// re-derives quantiles from exported snapshots.
double quantile_from_buckets(std::span<const double> bounds,
                             std::span<const std::uint64_t> counts, double q);

/// Process-wide metrics registry. Registration (first lookup of a name)
/// takes a mutex; the returned reference is stable for the process
/// lifetime, so hot paths cache it once and then only touch atomics.
class Registry {
public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Returns the existing histogram when the name is already registered
  /// (the bounds of the first registration win).
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  /// Snapshot of every metric as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
  /// Writes to_json() (plus a trailing newline) to `path`; false on I/O
  /// failure.
  bool write_json(const std::string& path) const;

  /// Snapshot of every metric in the Prometheus text exposition format
  /// (one scrapeable document). Names are prefixed `rcgp_` and sanitized
  /// (non-alphanumerics become '_'); gauge names of the form `base{x}`
  /// (the flow phase gauges) become `rcgp_base{phase="x"}` label families;
  /// histogram buckets are emitted cumulatively with the standard
  /// `_bucket{le=...}` / `_sum` / `_count` series.
  std::string to_prometheus() const;
  /// Writes to_prometheus() to `path`; false on I/O failure.
  bool write_prometheus(const std::string& path) const;

  /// Zeroes every metric value. Addresses stay valid (tests and benches
  /// use this between runs; cached references in hot loops survive).
  void reset_values();

private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry (intentionally leaked so references cached in
/// static storage stay valid through program shutdown).
Registry& registry();

} // namespace rcgp::obs
