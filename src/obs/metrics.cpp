#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/json.hpp"

namespace rcgp::obs {

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(bounds.size() + 1) {}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) {
    ++i;
  }
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double quantile_from_buckets(std::span<const double> bounds,
                             std::span<const std::uint64_t> counts,
                             double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) {
    total += c;
  }
  if (total == 0 || counts.size() != bounds.size() + 1) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (cum + in_bucket < rank && i + 1 < counts.size()) {
      cum += in_bucket;
      continue;
    }
    if (i == bounds.size()) {
      // Overflow bucket has no finite upper edge; report the largest
      // finite bound (the Prometheus histogram_quantile convention).
      return bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                            : bounds.back();
    }
    const double upper = bounds[i];
    double lower = i == 0 ? std::min(0.0, upper) : bounds[i - 1];
    if (in_bucket <= 0.0) {
      return upper;
    }
    return lower + (upper - lower) * (rank - cum) / in_bucket;
  }
  return bounds.back();
}

double Histogram::quantile(double q) const {
  std::vector<std::uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return quantile_from_buckets(bounds_, counts, q);
}

void Histogram::reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

std::string Registry::to_json() const {
  std::lock_guard lock(mu_);
  json::Writer w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) {
    w.field(name, c->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) {
    w.field(name, g->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.field("count", h->count());
    w.field("sum", h->sum());
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      w.begin_object();
      if (i < h->bounds().size()) {
        w.field("le", h->bound(i));
      } else {
        w.field("le", "inf");
      }
      w.field("count", h->bucket_count(i));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

bool Registry::write_json(const std::string& path) const {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

namespace {

/// `rcgp_` prefix + every non-alphanumeric character mapped to '_' — the
/// Prometheus metric-name grammar ([a-zA-Z_:][a-zA-Z0-9_:]*).
std::string prom_name(std::string_view name) {
  std::string out = "rcgp_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string prom_label_value(std::string_view v) {
  std::string out;
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Splits `base{x}` into (base, x); no-brace names return (name, "").
std::pair<std::string_view, std::string_view> split_label(
    std::string_view name) {
  const auto open = name.find('{');
  if (open == std::string_view::npos || name.back() != '}') {
    return {name, {}};
  }
  return {name.substr(0, open),
          name.substr(open + 1, name.size() - open - 2)};
}

void append_prom_value(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
  } else if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

} // namespace

std::string Registry::to_prometheus() const {
  std::lock_guard lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string pn = prom_name(name);
    out += "# TYPE " + pn + " counter\n";
    out += pn + " " + std::to_string(c->value()) + "\n";
  }
  // Labeled gauges (`phase_seconds{cgp}`) share one family per base name;
  // the map's lexicographic order keeps a family's samples contiguous, so
  // one TYPE line per first-seen base suffices.
  std::string last_family;
  for (const auto& [name, g] : gauges_) {
    const auto [base, label] = split_label(name);
    const std::string pn = prom_name(base);
    if (pn != last_family) {
      out += "# TYPE " + pn + " gauge\n";
      last_family = pn;
    }
    out += pn;
    if (!label.empty()) {
      out += "{phase=\"" + prom_label_value(label) + "\"}";
    }
    out += ' ';
    append_prom_value(out, g->value());
    out += '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = prom_name(name);
    out += "# TYPE " + pn + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      cum += h->bucket_count(i);
      out += pn + "_bucket{le=\"";
      if (i < h->bounds().size()) {
        append_prom_value(out, h->bound(i));
      } else {
        out += "+Inf";
      }
      out += "\"} " + std::to_string(cum) + "\n";
    }
    out += pn + "_sum ";
    append_prom_value(out, h->sum());
    out += '\n';
    // `cum` rather than h->count(): keeps `_count` equal to the +Inf
    // bucket even when a snapshot races concurrent observations.
    out += pn + "_count " + std::to_string(cum) + "\n";
  }
  return out;
}

bool Registry::write_prometheus(const std::string& path) const {
  const std::string doc = to_prometheus();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok;
}

void Registry::reset_values() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) {
    c->reset();
  }
  for (auto& [name, g] : gauges_) {
    g->reset();
  }
  for (auto& [name, h] : histograms_) {
    h->reset();
  }
}

Registry& registry() {
  static Registry* r = new Registry; // immortal: see header
  return *r;
}

} // namespace rcgp::obs
