#include "obs/metrics.hpp"

#include <cstdio>

#include "obs/json.hpp"

namespace rcgp::obs {

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(bounds.size() + 1) {}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) {
    ++i;
  }
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

std::string Registry::to_json() const {
  std::lock_guard lock(mu_);
  json::Writer w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) {
    w.field(name, c->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) {
    w.field(name, g->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.field("count", h->count());
    w.field("sum", h->sum());
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      w.begin_object();
      if (i < h->bounds().size()) {
        w.field("le", h->bound(i));
      } else {
        w.field("le", "inf");
      }
      w.field("count", h->bucket_count(i));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

bool Registry::write_json(const std::string& path) const {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

void Registry::reset_values() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) {
    c->reset();
  }
  for (auto& [name, g] : gauges_) {
    g->reset();
  }
  for (auto& [name, h] : histograms_) {
    h->reset();
  }
}

Registry& registry() {
  static Registry* r = new Registry; // immortal: see header
  return *r;
}

} // namespace rcgp::obs
