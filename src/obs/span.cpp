#include "obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "obs/json.hpp"

namespace rcgp::obs {

namespace {

using steady = std::chrono::steady_clock;

// Captured at load time so every span and TraceSink t_ms stamp shares one
// timebase regardless of when profiling is first enabled.
const steady::time_point g_epoch = steady::now();

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint64_t> g_dropped{0};

// Memory bound for very long enabled runs: past this, a thread's spans are
// counted as dropped instead of recorded.
constexpr std::size_t kMaxSpansPerThread = 1u << 20;

/// One thread's recorded spans. Owned by the global registry (shared_ptr)
/// so records survive thread exit until exported; the recording thread
/// appends under `mu`, which is uncontended except during export.
struct ThreadBuffer {
  std::mutex mu;
  std::uint32_t tid = 0;
  std::string name;
  std::vector<SpanRecord> records;
};

struct ProfilerState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> threads;
};

ProfilerState& profiler() {
  static ProfilerState* s = new ProfilerState; // immortal, like registry()
  return *s;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = [] {
    auto owned = std::make_shared<ThreadBuffer>();
    ProfilerState& s = profiler();
    std::lock_guard lock(s.mu);
    owned->tid = static_cast<std::uint32_t>(s.threads.size() + 1);
    s.threads.push_back(owned);
    return owned.get();
  }();
  return *buf;
}

thread_local Span* t_current_span = nullptr;

} // namespace

std::uint64_t profile_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(steady::now() -
                                                            g_epoch)
          .count());
}

bool profiling_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_profiling_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void set_thread_name(std::string_view name) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard lock(buf.mu);
  buf.name = name;
}

Span::Span(std::string_view name) {
  if (!g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  active_ = true;
  name_ = name;
  parent_ = t_current_span;
  t_current_span = this;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  start_us_ = profile_now_us();
}

Span::~Span() {
  if (!active_) {
    return;
  }
  const std::uint64_t end_us = profile_now_us();
  t_current_span = parent_;
  ThreadBuffer& buf = local_buffer();
  std::lock_guard lock(buf.mu);
  if (buf.records.size() >= kMaxSpansPerThread) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanRecord& rec = buf.records.emplace_back();
  rec.name = std::move(name_);
  rec.args_json = std::move(args_json_);
  rec.start_us = start_us_;
  rec.dur_us = end_us - start_us_;
  rec.id = id_;
  rec.parent = parent_ ? parent_->id_ : 0;
  rec.tid = buf.tid;
}

Span& Span::arg(std::string_view key, std::string_view value) {
  if (!active_) {
    return *this;
  }
  if (!args_json_.empty()) {
    args_json_ += ',';
  }
  args_json_ += '"';
  args_json_ += json::escape(key);
  args_json_ += "\":\"";
  args_json_ += json::escape(value);
  args_json_ += '"';
  return *this;
}

Span& Span::arg(std::string_view key, std::uint64_t value) {
  if (!active_) {
    return *this;
  }
  if (!args_json_.empty()) {
    args_json_ += ',';
  }
  args_json_ += '"';
  args_json_ += json::escape(key);
  args_json_ += "\":";
  args_json_ += std::to_string(value);
  return *this;
}

Span& Span::arg(std::string_view key, double value) {
  if (!active_) {
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  if (!args_json_.empty()) {
    args_json_ += ',';
  }
  args_json_ += '"';
  args_json_ += json::escape(key);
  args_json_ += "\":";
  args_json_ += buf;
  return *this;
}

std::uint64_t current_span_id() {
  return t_current_span ? t_current_span->id_ : 0;
}

namespace {

/// Stable snapshot of the thread list plus each buffer's records and name.
struct ThreadSnapshot {
  std::uint32_t tid;
  std::string name;
  std::vector<SpanRecord> records;
};

std::vector<ThreadSnapshot> snapshot_threads() {
  std::vector<std::shared_ptr<ThreadBuffer>> threads;
  {
    ProfilerState& s = profiler();
    std::lock_guard lock(s.mu);
    threads = s.threads;
  }
  std::vector<ThreadSnapshot> out;
  out.reserve(threads.size());
  for (const auto& t : threads) {
    std::lock_guard lock(t->mu);
    out.push_back({t->tid, t->name, t->records});
  }
  return out;
}

} // namespace

std::vector<SpanRecord> profile_spans() {
  std::vector<SpanRecord> out;
  for (auto& t : snapshot_threads()) {
    out.insert(out.end(), std::make_move_iterator(t.records.begin()),
               std::make_move_iterator(t.records.end()));
  }
  return out;
}

std::uint64_t profile_dropped_spans() {
  return g_dropped.load(std::memory_order_relaxed);
}

void reset_profile() {
  std::vector<std::shared_ptr<ThreadBuffer>> threads;
  {
    ProfilerState& s = profiler();
    std::lock_guard lock(s.mu);
    threads = s.threads;
  }
  for (const auto& t : threads) {
    std::lock_guard lock(t->mu);
    t->records.clear();
  }
  g_dropped.store(0, std::memory_order_relaxed);
}

std::string chrome_trace_json() {
  auto threads = snapshot_threads();

  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += event;
  };

  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"rcgp\"}}");
  for (const auto& t : threads) {
    if (t.name.empty() && t.records.empty()) {
      continue;
    }
    std::string ev = "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    ev += std::to_string(t.tid);
    ev += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    ev += json::escape(t.name.empty() ? "thread-" + std::to_string(t.tid)
                                      : t.name);
    ev += "\"}}";
    emit(ev);
  }

  // Deterministic order (by tid, then start, longest span first on ties)
  // so nested spans always follow their parents.
  for (auto& t : threads) {
    std::stable_sort(t.records.begin(), t.records.end(),
                     [](const SpanRecord& a, const SpanRecord& b) {
                       if (a.start_us != b.start_us) {
                         return a.start_us < b.start_us;
                       }
                       return a.dur_us > b.dur_us;
                     });
    for (const SpanRecord& r : t.records) {
      std::string ev = "{\"ph\":\"X\",\"pid\":1,\"tid\":";
      ev += std::to_string(r.tid);
      ev += ",\"name\":\"";
      ev += json::escape(r.name);
      ev += "\",\"cat\":\"rcgp\",\"ts\":";
      ev += std::to_string(r.start_us);
      ev += ",\"dur\":";
      ev += std::to_string(r.dur_us);
      ev += ",\"args\":{";
      if (!r.args_json.empty()) {
        ev += r.args_json;
        ev += ',';
      }
      // Namespaced so user args (e.g. a batch job's "id") can't collide.
      ev += "\"span_id\":";
      ev += std::to_string(r.id);
      ev += ",\"span_parent\":";
      ev += std::to_string(r.parent);
      ev += "}}";
      emit(ev);
    }
  }
  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string doc = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

} // namespace rcgp::obs
