#pragma once

#include <string>

namespace rcgp::obs {

/// Inputs for `rcgp report`: any subset of the three artifacts a run can
/// export. Empty paths are skipped; at least one must be set.
struct RunReportInputs {
  std::string profile_path; ///< Chrome trace-event JSON (--profile-out)
  std::string trace_path;   ///< JSONL evolution trace (--trace-out)
  std::string metrics_path; ///< metrics JSON (--metrics-out), either the
                            ///< CLI {"flow":...,"metrics":...} shape or a
                            ///< bare registry snapshot
};

/// Renders the human-readable run report: per-phase time tree and
/// per-worker utilization (profile), span-latency percentiles (profile),
/// convergence summary and stagnation histogram (trace), and histogram
/// quantiles / phase gauges (metrics). Throws std::runtime_error on an
/// unreadable or malformed input file.
std::string run_report(const RunReportInputs& inputs);

} // namespace rcgp::obs
