#include "obs/trace.hpp"

#include "obs/span.hpp"
#include "util/log.hpp"

namespace rcgp::obs {

namespace {
// The sink currently routing util::log, protected by its own mutex (log
// calls and sink destruction can race).
std::mutex g_log_sink_mu;
TraceSink* g_log_sink = nullptr;

void log_hook(util::LogLevel level, const char* iso8601,
              const char* message) {
  std::lock_guard lock(g_log_sink_mu);
  if (!g_log_sink) {
    return;
  }
  g_log_sink->event("log")
      .field("ts", iso8601)
      .field("level", util::log_level_tag(level))
      .field("message", message);
}
} // namespace

TraceEvent::TraceEvent(TraceSink* sink, std::string_view type,
                       std::uint64_t seq)
    : sink_(sink) {
  w_.begin_object();
  w_.field("event", type);
  w_.field("seq", seq);
  w_.field("t_ms", static_cast<double>(profile_now_us()) / 1000.0);
}

TraceEvent::TraceEvent(TraceEvent&& other) noexcept
    : sink_(other.sink_), w_(std::move(other.w_)) {
  other.sink_ = nullptr;
}

TraceEvent::~TraceEvent() {
  if (!sink_) {
    return;
  }
  w_.end_object();
  sink_->write_line(w_.str());
}

std::unique_ptr<TraceSink> TraceSink::open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    return nullptr;
  }
  auto sink = std::unique_ptr<TraceSink>(new TraceSink);
  sink->file_ = f;
  return sink;
}

std::unique_ptr<TraceSink> TraceSink::memory() {
  return std::unique_ptr<TraceSink>(new TraceSink);
}

TraceSink::~TraceSink() {
  {
    std::lock_guard lock(g_log_sink_mu);
    if (g_log_sink == this) {
      g_log_sink = nullptr;
      util::set_log_hook(nullptr);
    }
  }
  if (file_) {
    std::fclose(file_);
  }
}

TraceEvent TraceSink::event(std::string_view type) {
  std::uint64_t seq;
  {
    std::lock_guard lock(mu_);
    seq = seq_++;
  }
  return TraceEvent(this, type, seq);
}

void TraceSink::write_line(std::string_view json_line) {
  std::lock_guard lock(mu_);
  if (file_) {
    std::fwrite(json_line.data(), 1, json_line.size(), file_);
    std::fputc('\n', file_);
  } else {
    mem_.append(json_line);
    mem_ += '\n';
  }
  ++lines_;
}

void TraceSink::flush() {
  std::lock_guard lock(mu_);
  if (file_) {
    std::fflush(file_);
  }
}

std::uint64_t TraceSink::lines_written() const {
  std::lock_guard lock(mu_);
  return lines_;
}

std::string TraceSink::buffer() const {
  std::lock_guard lock(mu_);
  return mem_;
}

void TraceSink::attach_to_log() {
  std::lock_guard lock(g_log_sink_mu);
  g_log_sink = this;
  util::set_log_hook(&log_hook);
}

} // namespace rcgp::obs
