#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace rcgp::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("report: cannot read " + path);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

std::string fmt_seconds(double s) {
  char buf[32];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fus", s * 1e6);
  }
  return buf;
}

/// Exact quantile over raw values (profile spans carry real durations, so
/// no bucket interpolation is needed there).
double exact_quantile(std::vector<double>& values, double q) {
  if (values.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

// ---------------------------------------------------------------------------
// Profile section (Chrome trace-event JSON)

struct ProfSpan {
  std::string name;
  double ts = 0.0;  // µs
  double dur = 0.0; // µs
  std::uint64_t tid = 0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
};

struct PathAgg {
  double total_us = 0.0;
  std::uint64_t count = 0;
  int depth = 0;
};

void report_profile(std::string& out, const std::string& path) {
  const auto doc = json::parse(read_file(path));
  if (!doc || !doc->is_object()) {
    throw std::runtime_error("report: " + path + " is not a JSON object");
  }
  const json::Value* events = doc->find("traceEvents");
  if (!events || !events->is_array()) {
    throw std::runtime_error("report: " + path + " has no traceEvents");
  }

  std::vector<ProfSpan> spans;
  std::map<std::uint64_t, std::string> thread_names;
  for (const auto& ev : events->items()) {
    if (!ev.is_object()) {
      continue;
    }
    const std::string ph = ev.string_or("ph", "");
    if (ph == "M" && ev.string_or("name", "") == "thread_name") {
      if (const json::Value* args = ev.find("args")) {
        thread_names[static_cast<std::uint64_t>(ev.number_or("tid", 0))] =
            args->string_or("name", "");
      }
      continue;
    }
    if (ph != "X") {
      continue;
    }
    ProfSpan s;
    s.name = ev.string_or("name", "?");
    s.ts = ev.number_or("ts", 0.0);
    s.dur = ev.number_or("dur", 0.0);
    s.tid = static_cast<std::uint64_t>(ev.number_or("tid", 0));
    if (const json::Value* args = ev.find("args")) {
      s.id = static_cast<std::uint64_t>(args->number_or("span_id", 0));
      s.parent = static_cast<std::uint64_t>(args->number_or("span_parent", 0));
    }
    spans.push_back(std::move(s));
  }
  appendf(out, "-- profile: %s --\n", path.c_str());
  if (spans.empty()) {
    out += "  (no spans recorded)\n\n";
    return;
  }

  // Name paths: walk each span's parent chain ("flow root" spans have
  // parent 0). The tree aggregates time and count per path.
  std::map<std::uint64_t, const ProfSpan*> by_id;
  for (const auto& s : spans) {
    by_id[s.id] = &s;
  }
  std::map<std::uint64_t, std::string> path_cache;
  const auto path_of = [&](const ProfSpan& s) -> const std::string& {
    auto it = path_cache.find(s.id);
    if (it != path_cache.end()) {
      return it->second;
    }
    std::vector<const ProfSpan*> chain{&s};
    const ProfSpan* cur = &s;
    while (cur->parent != 0) {
      const auto pit = by_id.find(cur->parent);
      if (pit == by_id.end()) {
        break; // parent dropped at the buffer cap; treat as a root
      }
      cur = pit->second;
      chain.push_back(cur);
    }
    std::string p;
    for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
      if (!p.empty()) {
        p += '/';
      }
      p += (*rit)->name;
    }
    return path_cache.emplace(s.id, std::move(p)).first->second;
  };

  std::map<std::string, PathAgg> tree;
  double t_min = spans.front().ts;
  double t_max = spans.front().ts + spans.front().dur;
  for (const auto& s : spans) {
    const std::string& p = path_of(s);
    PathAgg& agg = tree[p];
    agg.total_us += s.dur;
    agg.count += 1;
    agg.depth = static_cast<int>(std::count(p.begin(), p.end(), '/'));
    t_min = std::min(t_min, s.ts);
    t_max = std::max(t_max, s.ts + s.dur);
  }
  const double window_s = (t_max - t_min) / 1e6;
  appendf(out, "  %zu spans over %s wall clock\n", spans.size(),
          fmt_seconds(window_s).c_str());

  out += "  time tree (self+children per path):\n";
  // The map is path-sorted, which interleaves children under parents; cap
  // the tree at the 40 heaviest paths to keep deep profiles readable.
  std::vector<std::pair<std::string, PathAgg>> rows(tree.begin(), tree.end());
  if (rows.size() > 40) {
    std::vector<std::pair<std::string, PathAgg>> sorted = rows;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) {
                return a.second.total_us > b.second.total_us;
              });
    sorted.resize(40);
    std::vector<std::pair<std::string, PathAgg>> kept;
    for (const auto& row : rows) {
      for (const auto& k : sorted) {
        if (k.first == row.first) {
          kept.push_back(row);
          break;
        }
      }
    }
    rows = std::move(kept);
    appendf(out, "    (showing the %zu heaviest of %zu paths)\n",
            rows.size(), tree.size());
  }
  for (const auto& [p, agg] : rows) {
    const std::string leaf =
        agg.depth == 0 ? p : p.substr(p.find_last_of('/') + 1);
    appendf(out, "    %*s%-24s %10s  x%llu\n", agg.depth * 2, "",
            leaf.c_str(), fmt_seconds(agg.total_us / 1e6).c_str(),
            static_cast<unsigned long long>(agg.count));
  }

  // Per-worker utilization: top-level span time per thread over the
  // profile window.
  std::map<std::uint64_t, double> busy_us;
  std::map<std::uint64_t, std::uint64_t> span_count;
  for (const auto& s : spans) {
    if (s.parent == 0 || by_id.find(s.parent) == by_id.end()) {
      busy_us[s.tid] += s.dur;
    }
    span_count[s.tid] += 1;
  }
  out += "  per-worker utilization:\n";
  for (const auto& [tid, busy] : busy_us) {
    const auto nit = thread_names.find(tid);
    const std::string name = nit != thread_names.end() && !nit->second.empty()
                                 ? nit->second
                                 : "thread-" + std::to_string(tid);
    const double util = window_s > 0.0 ? busy / 1e6 / window_s : 0.0;
    appendf(out, "    %-18s %5.1f%% busy (%s across %llu spans)\n",
            name.c_str(), util * 100.0, fmt_seconds(busy / 1e6).c_str(),
            static_cast<unsigned long long>(span_count[tid]));
  }

  // Latency percentiles for the repeated span families.
  for (const char* family : {"eval.generation", "batch.job", "buffer.plan",
                             "cec.sat", "cec.bdd", "cec.sim"}) {
    std::vector<double> durs;
    for (const auto& s : spans) {
      if (s.name == family) {
        durs.push_back(s.dur / 1e6);
      }
    }
    if (durs.size() < 2) {
      continue;
    }
    std::vector<double> p50v = durs;
    const double p50 = exact_quantile(p50v, 0.50);
    const double p95 = exact_quantile(p50v, 0.95);
    const double p99 = exact_quantile(p50v, 0.99);
    appendf(out, "  %-16s latency: p50 %s, p95 %s, p99 %s (n=%zu)\n",
            family, fmt_seconds(p50).c_str(), fmt_seconds(p95).c_str(),
            fmt_seconds(p99).c_str(), durs.size());
  }
  out += '\n';
}

// ---------------------------------------------------------------------------
// Trace section (JSONL evolution trace)

void report_trace(std::string& out, const std::string& path) {
  const std::string content = read_file(path);
  std::map<std::string, std::uint64_t> by_type;
  std::vector<json::Value> improvements;
  json::Value run_end;
  bool has_run_end = false;

  std::istringstream in(content);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    auto ev = json::parse(line);
    if (!ev || !ev->is_object()) {
      throw std::runtime_error("report: " + path + ":" +
                               std::to_string(line_no) + ": not a JSON object");
    }
    const std::string type = ev->string_or("event", "?");
    by_type[type] += 1;
    if (type == "improvement") {
      improvements.push_back(std::move(*ev));
    } else if (type == "run_end") {
      run_end = std::move(*ev);
      has_run_end = true;
    }
  }

  appendf(out, "-- trace: %s --\n  events:", path.c_str());
  for (const auto& [type, n] : by_type) {
    appendf(out, " %s=%llu", type.c_str(),
            static_cast<unsigned long long>(n));
  }
  out += '\n';

  if (!improvements.empty()) {
    const json::Value& first = improvements.front();
    const json::Value& last = improvements.back();
    appendf(out,
            "  convergence: %zu improvements, n_r %g -> %g, n_g %g -> %g, "
            "n_b %g -> %g\n",
            improvements.size(), first.number_or("n_r", 0),
            last.number_or("n_r", 0), first.number_or("n_g", 0),
            last.number_or("n_g", 0), first.number_or("n_b", 0),
            last.number_or("n_b", 0));

    // Stagnation profile: generations between consecutive improvements,
    // bucketed by decade.
    std::map<int, std::uint64_t> decades;
    double prev_gen = -1.0;
    for (const auto& imp : improvements) {
      const double gen = imp.number_or("gen", imp.number_or("step", 0));
      if (prev_gen >= 0.0) {
        const double gap = std::max(1.0, gen - prev_gen);
        decades[static_cast<int>(std::floor(std::log10(gap)))] += 1;
      }
      prev_gen = gen;
    }
    if (!decades.empty()) {
      out += "  stagnation (generations between improvements):\n";
      for (const auto& [decade, n] : decades) {
        appendf(out, "    %8.0f..%-8.0f %llu\n", std::pow(10.0, decade),
                std::pow(10.0, decade + 1) - 1,
                static_cast<unsigned long long>(n));
      }
    }
  }
  if (has_run_end) {
    appendf(out,
            "  run_end: reason=%s generations=%g evaluations=%g "
            "improvements=%g elapsed=%s\n",
            run_end.string_or("reason", "?").c_str(),
            run_end.number_or("generations_run", 0),
            run_end.number_or("evaluations", 0),
            run_end.number_or("improvements", 0),
            fmt_seconds(run_end.number_or("elapsed_s", 0)).c_str());
  }
  out += '\n';
}

// ---------------------------------------------------------------------------
// Metrics section (registry snapshot, bare or CLI-wrapped)

void report_metrics(std::string& out, const std::string& path) {
  const auto doc = json::parse(read_file(path));
  if (!doc || !doc->is_object()) {
    throw std::runtime_error("report: " + path + " is not a JSON object");
  }
  appendf(out, "-- metrics: %s --\n", path.c_str());

  const json::Value* registry = doc->find("metrics");
  double flow_total = 0.0;
  double cgp_seconds = 0.0;
  if (const json::Value* flow = doc->find("flow")) {
    flow_total = flow->number_or("seconds_total", 0);
    appendf(out, "  flow total %s\n", fmt_seconds(flow_total).c_str());
    if (const json::Value* phases = flow->find("phases")) {
      for (const auto& [name, v] : phases->members()) {
        appendf(out, "    %-14s %10s\n", name.c_str(),
                fmt_seconds(v.as_number()).c_str());
        if (name == "cgp") {
          cgp_seconds = v.as_number();
        }
      }
    }
  }
  if (!registry) {
    registry = &*doc; // bare registry snapshot
  }

  // Simulation digest (docs/SIMD.md): which kernel tier ran, how many
  // words it chewed through, and — when the run carried flow phases —
  // how much of the wall clock the simulation-dominated CGP phase took.
  {
    const json::Value* gauges = registry->find("gauges");
    const json::Value* counters = registry->find("counters");
    const double width = gauges ? gauges->number_or("sim.simd_width", 0) : 0;
    const double wps =
        gauges ? gauges->number_or("sim.words_per_second", 0) : 0;
    const double words =
        counters ? counters->number_or("sim.words", 0) : 0;
    if (width > 0 || wps > 0 || words > 0) {
      out += "  simulation:\n";
      if (width > 0) {
        appendf(out, "    simd width          %.0f bits\n", width);
      }
      if (words > 0) {
        appendf(out, "    words simulated     %.3g\n", words);
      }
      if (wps > 0) {
        appendf(out, "    kernel throughput   %.3g words/s\n", wps);
      }
      if (cgp_seconds > 0 && flow_total > 0) {
        appendf(out, "    cgp share of flow   %.1f%%\n",
                100.0 * cgp_seconds / flow_total);
      }
    }
  }

  // Island digest (docs/ISLANDS.md): fleet shape, migration traffic, and
  // the per-island best costs and immigrant tallies.
  {
    const json::Value* gauges = registry->find("gauges");
    const json::Value* counters = registry->find("counters");
    const double fleets =
        counters ? counters->number_or("island.fleets", 0) : 0;
    if (fleets > 0) {
      const double offered =
          counters->number_or("island.migrations.offered", 0);
      const double accepted =
          counters->number_or("island.migrations.accepted", 0);
      out += "  islands:\n";
      appendf(out, "    fleets              %.0f (%.0f islands last)\n",
              fleets, gauges ? gauges->number_or("island.islands", 0) : 0);
      appendf(out, "    epochs              %.0f\n",
              counters->number_or("island.epochs", 0));
      appendf(out, "    migrations          %.0f offered, %.0f accepted "
                   "(%.1f%%), %.0f rejected\n",
              offered, accepted,
              offered > 0 ? 100.0 * accepted / offered : 0.0,
              counters->number_or("island.migrations.rejected", 0));
      for (unsigned i = 0;; ++i) {
        const std::string prefix = "island.island" + std::to_string(i);
        const json::Value* best =
            gauges ? gauges->find(prefix + ".best_n_r") : nullptr;
        if (best == nullptr) {
          break;
        }
        appendf(out, "    island %-3u          best n_r %-6.0f "
                     "immigrants %.0f\n",
                i, best->as_number(),
                counters->number_or(prefix + ".immigrants", 0));
      }
    }
  }

  if (const json::Value* gauges = registry->find("gauges")) {
    bool header = false;
    for (const auto& [name, v] : gauges->members()) {
      if (name.find("utilization") == std::string::npos) {
        continue;
      }
      if (!header) {
        out += "  utilization gauges:\n";
        header = true;
      }
      appendf(out, "    %-32s %5.1f%%\n", name.c_str(),
              v.as_number() * 100.0);
    }
  }

  if (const json::Value* hists = registry->find("histograms")) {
    for (const auto& [name, h] : hists->members()) {
      const json::Value* buckets = h.find("buckets");
      if (!buckets || !buckets->is_array()) {
        continue;
      }
      std::vector<double> bounds;
      std::vector<std::uint64_t> counts;
      for (const auto& b : buckets->items()) {
        const json::Value* le = b.find("le");
        if (le && le->is_number()) {
          bounds.push_back(le->as_number());
        }
        counts.push_back(
            static_cast<std::uint64_t>(b.number_or("count", 0)));
      }
      const double count = h.number_or("count", 0);
      if (count <= 0) {
        continue;
      }
      const double mean = h.number_or("sum", 0) / count;
      const double p50 = quantile_from_buckets(bounds, counts, 0.50);
      const double p95 = quantile_from_buckets(bounds, counts, 0.95);
      const double p99 = quantile_from_buckets(bounds, counts, 0.99);
      appendf(out,
              "  %-40s n=%-8.0f mean=%-10g p50=%-10g p95=%-10g p99=%g\n",
              name.c_str(), count, mean, p50, p95, p99);
    }
  }
  out += '\n';
}

} // namespace

std::string run_report(const RunReportInputs& inputs) {
  if (inputs.profile_path.empty() && inputs.trace_path.empty() &&
      inputs.metrics_path.empty()) {
    throw std::invalid_argument("report: no inputs given");
  }
  std::string out = "== rcgp run report ==\n\n";
  if (!inputs.profile_path.empty()) {
    report_profile(out, inputs.profile_path);
  }
  if (!inputs.trace_path.empty()) {
    report_trace(out, inputs.trace_path);
  }
  if (!inputs.metrics_path.empty()) {
    report_metrics(out, inputs.metrics_path);
  }
  return out;
}

} // namespace rcgp::obs
