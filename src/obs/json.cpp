#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace rcgp::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) {
    out_ += ',';
  }
  need_comma_ = true;
}

Writer& Writer::begin_object() {
  comma();
  out_ += '{';
  open_.push_back('{');
  need_comma_ = false;
  return *this;
}

Writer& Writer::end_object() {
  out_ += '}';
  if (!open_.empty()) {
    open_.pop_back();
  }
  need_comma_ = true;
  return *this;
}

Writer& Writer::begin_array() {
  comma();
  out_ += '[';
  open_.push_back('[');
  need_comma_ = false;
  return *this;
}

Writer& Writer::end_array() {
  out_ += ']';
  if (!open_.empty()) {
    open_.pop_back();
  }
  need_comma_ = true;
  return *this;
}

Writer& Writer::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

Writer& Writer::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::null() {
  comma();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Validation (recursive descent over a string_view, no allocation).

namespace {

struct Parser {
  std::string_view s;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  void skip_ws() {
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
            s[pos] == '\r')) {
      ++pos;
    }
  }
  bool eof() const { return pos >= s.size(); }
  char peek() const { return s[pos]; }
  bool consume(char c) {
    if (!eof() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (s.substr(pos, lit.size()) != lit) {
      return false;
    }
    pos += lit.size();
    return true;
  }

  bool parse_string() {
    if (!consume('"')) {
      return false;
    }
    while (!eof()) {
      const char c = s[pos++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false; // raw control character
      }
      if (c == '\\') {
        if (eof()) {
          return false;
        }
        const char e = s[pos++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s[pos]))) {
              return false;
            }
            ++pos;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false; // unterminated
  }

  bool parse_number() {
    consume('-');
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    if (!consume('0')) {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    if (consume('.')) {
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) {
        ++pos;
      }
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    return true;
  }

  bool parse_value() {
    if (++depth > kMaxDepth) {
      return false;
    }
    skip_ws();
    if (eof()) {
      return false;
    }
    bool ok = false;
    switch (peek()) {
      case '{': ok = parse_object(); break;
      case '[': ok = parse_array(); break;
      case '"': ok = parse_string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = parse_number(); break;
    }
    --depth;
    return ok;
  }

  bool parse_object() {
    consume('{');
    skip_ws();
    if (consume('}')) {
      return true;
    }
    while (true) {
      skip_ws();
      if (!parse_string()) {
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        return false;
      }
      if (!parse_value()) {
        return false;
      }
      skip_ws();
      if (consume('}')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }

  bool parse_array() {
    consume('[');
    skip_ws();
    if (consume(']')) {
      return true;
    }
    while (true) {
      if (!parse_value()) {
        return false;
      }
      skip_ws();
      if (consume(']')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }
};

/// Position of `"key"` used as an object key (heuristic: next
/// non-whitespace after the closing quote is ':').
std::size_t find_key(std::string_view doc, std::string_view key) {
  const std::string quoted = '"' + std::string(key) + '"';
  std::size_t from = 0;
  while (true) {
    const auto at = doc.find(quoted, from);
    if (at == std::string_view::npos) {
      return std::string_view::npos;
    }
    std::size_t after = at + quoted.size();
    while (after < doc.size() &&
           std::isspace(static_cast<unsigned char>(doc[after]))) {
      ++after;
    }
    if (after < doc.size() && doc[after] == ':') {
      return after + 1;
    }
    from = at + 1;
  }
}

} // namespace

bool validate(std::string_view text) {
  Parser p{text};
  if (!p.parse_value()) {
    return false;
  }
  p.skip_ws();
  return p.eof();
}

std::optional<double> number_field(std::string_view doc,
                                   std::string_view key) {
  auto at = find_key(doc, key);
  if (at == std::string_view::npos) {
    return std::nullopt;
  }
  while (at < doc.size() &&
         std::isspace(static_cast<unsigned char>(doc[at]))) {
    ++at;
  }
  char* end = nullptr;
  const std::string tail(doc.substr(at, 64));
  const double v = std::strtod(tail.c_str(), &end);
  if (end == tail.c_str()) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::string> string_field(std::string_view doc,
                                        std::string_view key) {
  auto at = find_key(doc, key);
  if (at == std::string_view::npos) {
    return std::nullopt;
  }
  while (at < doc.size() &&
         std::isspace(static_cast<unsigned char>(doc[at]))) {
    ++at;
  }
  if (at >= doc.size() || doc[at] != '"') {
    return std::nullopt;
  }
  ++at;
  std::string out;
  while (at < doc.size() && doc[at] != '"') {
    char c = doc[at++];
    if (c == '\\' && at < doc.size()) {
      const char e = doc[at++];
      switch (e) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case '"': case '\\': case '/': c = e; break;
        default: c = e; break;
      }
    }
    out += c;
  }
  if (at >= doc.size()) {
    return std::nullopt;
  }
  return out;
}

} // namespace rcgp::obs::json
