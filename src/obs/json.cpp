#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace rcgp::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) {
    out_ += ',';
  }
  need_comma_ = true;
}

Writer& Writer::begin_object() {
  comma();
  out_ += '{';
  open_.push_back('{');
  need_comma_ = false;
  return *this;
}

Writer& Writer::end_object() {
  out_ += '}';
  if (!open_.empty()) {
    open_.pop_back();
  }
  need_comma_ = true;
  return *this;
}

Writer& Writer::begin_array() {
  comma();
  out_ += '[';
  open_.push_back('[');
  need_comma_ = false;
  return *this;
}

Writer& Writer::end_array() {
  out_ += ']';
  if (!open_.empty()) {
    open_.pop_back();
  }
  need_comma_ = true;
  return *this;
}

Writer& Writer::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

Writer& Writer::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::null() {
  comma();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Validation (recursive descent over a string_view, no allocation).

namespace {

struct Parser {
  std::string_view s;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  void skip_ws() {
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
            s[pos] == '\r')) {
      ++pos;
    }
  }
  bool eof() const { return pos >= s.size(); }
  char peek() const { return s[pos]; }
  bool consume(char c) {
    if (!eof() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (s.substr(pos, lit.size()) != lit) {
      return false;
    }
    pos += lit.size();
    return true;
  }

  bool parse_string() {
    if (!consume('"')) {
      return false;
    }
    while (!eof()) {
      const char c = s[pos++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false; // raw control character
      }
      if (c == '\\') {
        if (eof()) {
          return false;
        }
        const char e = s[pos++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s[pos]))) {
              return false;
            }
            ++pos;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false; // unterminated
  }

  bool parse_number() {
    consume('-');
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    if (!consume('0')) {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    if (consume('.')) {
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) {
        ++pos;
      }
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    return true;
  }

  bool parse_value() {
    if (++depth > kMaxDepth) {
      return false;
    }
    skip_ws();
    if (eof()) {
      return false;
    }
    bool ok = false;
    switch (peek()) {
      case '{': ok = parse_object(); break;
      case '[': ok = parse_array(); break;
      case '"': ok = parse_string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = parse_number(); break;
    }
    --depth;
    return ok;
  }

  bool parse_object() {
    consume('{');
    skip_ws();
    if (consume('}')) {
      return true;
    }
    while (true) {
      skip_ws();
      if (!parse_string()) {
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        return false;
      }
      if (!parse_value()) {
        return false;
      }
      skip_ws();
      if (consume('}')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }

  bool parse_array() {
    consume('[');
    skip_ws();
    if (consume(']')) {
      return true;
    }
    while (true) {
      if (!parse_value()) {
        return false;
      }
      skip_ws();
      if (consume(']')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }
};

/// Position of `"key"` used as an object key (heuristic: next
/// non-whitespace after the closing quote is ':').
std::size_t find_key(std::string_view doc, std::string_view key) {
  const std::string quoted = '"' + std::string(key) + '"';
  std::size_t from = 0;
  while (true) {
    const auto at = doc.find(quoted, from);
    if (at == std::string_view::npos) {
      return std::string_view::npos;
    }
    std::size_t after = at + quoted.size();
    while (after < doc.size() &&
           std::isspace(static_cast<unsigned char>(doc[after]))) {
      ++after;
    }
    if (after < doc.size() && doc[after] == ':') {
      return after + 1;
    }
    from = at + 1;
  }
}

} // namespace

bool validate(std::string_view text) {
  Parser p{text};
  if (!p.parse_value()) {
    return false;
  }
  p.skip_ws();
  return p.eof();
}

// ---------------------------------------------------------------------------
// Materializing parser (piggybacks on Parser for token scanning).

struct ValueParser {
  Parser p;

  bool value(Value& out) {
    if (++p.depth > Parser::kMaxDepth) {
      return false;
    }
    p.skip_ws();
    if (p.eof()) {
      return false;
    }
    bool ok = false;
    switch (p.peek()) {
      case '{': ok = object(out); break;
      case '[': ok = array(out); break;
      case '"': {
        out.kind_ = Value::Kind::kString;
        ok = string(out.string_);
        break;
      }
      case 't':
        out.kind_ = Value::Kind::kBool;
        out.bool_ = true;
        ok = p.literal("true");
        break;
      case 'f':
        out.kind_ = Value::Kind::kBool;
        out.bool_ = false;
        ok = p.literal("false");
        break;
      case 'n':
        out.kind_ = Value::Kind::kNull;
        ok = p.literal("null");
        break;
      default: {
        out.kind_ = Value::Kind::kNumber;
        const std::size_t start = p.pos;
        ok = p.parse_number();
        if (ok) {
          out.number_ =
              std::strtod(std::string(p.s.substr(start, p.pos - start)).c_str(),
                          nullptr);
        }
        break;
      }
    }
    --p.depth;
    return ok;
  }

  bool string(std::string& out) {
    const std::size_t start = p.pos;
    if (!p.parse_string()) {
      return false;
    }
    const std::string_view raw = p.s.substr(start + 1, p.pos - start - 2);
    out.clear();
    for (std::size_t i = 0; i < raw.size(); ++i) {
      char c = raw[i];
      if (c == '\\' && i + 1 < raw.size()) {
        const char e = raw[++i];
        switch (e) {
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            // Decode only the Latin-1 subset; anything above U+00FF keeps
            // a '?' placeholder (report inputs are ASCII in practice).
            unsigned code = 0;
            for (int k = 0; k < 4 && i + 1 < raw.size(); ++k) {
              code = code * 16 +
                     (std::isdigit(static_cast<unsigned char>(raw[i + 1]))
                          ? static_cast<unsigned>(raw[i + 1] - '0')
                          : static_cast<unsigned>(
                                std::tolower(raw[i + 1]) - 'a' + 10));
              ++i;
            }
            c = code <= 0xFF ? static_cast<char>(code) : '?';
            break;
          }
          default: c = e; break; // '"', '\\', '/'
        }
      }
      out += c;
    }
    return true;
  }

  bool object(Value& out) {
    out.kind_ = Value::Kind::kObject;
    p.consume('{');
    p.skip_ws();
    if (p.consume('}')) {
      return true;
    }
    while (true) {
      p.skip_ws();
      std::string key;
      if (!string(key)) {
        return false;
      }
      p.skip_ws();
      if (!p.consume(':')) {
        return false;
      }
      Value member;
      if (!value(member)) {
        return false;
      }
      out.members_.emplace_back(std::move(key), std::move(member));
      p.skip_ws();
      if (p.consume('}')) {
        return true;
      }
      if (!p.consume(',')) {
        return false;
      }
    }
  }

  bool array(Value& out) {
    out.kind_ = Value::Kind::kArray;
    p.consume('[');
    p.skip_ws();
    if (p.consume(']')) {
      return true;
    }
    while (true) {
      Value item;
      if (!value(item)) {
        return false;
      }
      out.items_.push_back(std::move(item));
      p.skip_ws();
      if (p.consume(']')) {
        return true;
      }
      if (!p.consume(',')) {
        return false;
      }
    }
  }
};

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v && v->is_number() ? v->as_number() : fallback;
}

std::string Value::string_or(std::string_view key,
                             std::string fallback) const {
  const Value* v = find(key);
  return v && v->is_string() ? v->as_string() : fallback;
}

std::optional<Value> parse(std::string_view text) {
  ValueParser vp{Parser{text}};
  Value out;
  if (!vp.value(out)) {
    return std::nullopt;
  }
  vp.p.skip_ws();
  if (!vp.p.eof()) {
    return std::nullopt;
  }
  return out;
}

std::optional<double> number_field(std::string_view doc,
                                   std::string_view key) {
  auto at = find_key(doc, key);
  if (at == std::string_view::npos) {
    return std::nullopt;
  }
  while (at < doc.size() &&
         std::isspace(static_cast<unsigned char>(doc[at]))) {
    ++at;
  }
  char* end = nullptr;
  const std::string tail(doc.substr(at, 64));
  const double v = std::strtod(tail.c_str(), &end);
  if (end == tail.c_str()) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::string> string_field(std::string_view doc,
                                        std::string_view key) {
  auto at = find_key(doc, key);
  if (at == std::string_view::npos) {
    return std::nullopt;
  }
  while (at < doc.size() &&
         std::isspace(static_cast<unsigned char>(doc[at]))) {
    ++at;
  }
  if (at >= doc.size() || doc[at] != '"') {
    return std::nullopt;
  }
  ++at;
  std::string out;
  while (at < doc.size() && doc[at] != '"') {
    char c = doc[at++];
    if (c == '\\' && at < doc.size()) {
      const char e = doc[at++];
      switch (e) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case '"': case '\\': case '/': c = e; break;
        default: c = e; break;
      }
    }
    out += c;
  }
  if (at >= doc.size()) {
    return std::nullopt;
  }
  return out;
}

} // namespace rcgp::obs::json
