#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace rcgp::obs {

/// Periodic metrics-snapshot writer for long runs: a background thread
/// that re-exports the registry every `interval_seconds` so an external
/// watcher (or a Prometheus file-based scrape) sees live values instead of
/// having to wait for the run to finish. Snapshots are written atomically
/// (temp file + rename), so a reader never observes a torn document.
///
/// Construction starts the thread when the interval is positive and at
/// least one path is set; destruction stops it and writes one final
/// snapshot of each configured path.
class MetricsSnapshotter {
public:
  struct Options {
    std::string json_path; ///< registry JSON snapshot ("" = skip)
    std::string prom_path; ///< Prometheus text snapshot ("" = skip)
    double interval_seconds = 0.0;
  };

  explicit MetricsSnapshotter(Options options);
  ~MetricsSnapshotter();
  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  /// Snapshots completed so far (each cycle writes every configured path).
  std::uint64_t snapshots_written() const;

private:
  void write_snapshot();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::uint64_t written_ = 0;
  std::thread thread_;
};

} // namespace rcgp::obs
