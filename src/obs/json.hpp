#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rcgp::obs::json {

/// Escapes a string for embedding in a JSON document (quotes not included).
std::string escape(std::string_view s);

/// Streaming JSON writer used by the metrics exporter, the trace sink, and
/// the CLI `--json` modes. Emits compact one-line documents; the caller is
/// responsible for structural sanity (begin/end pairing), which `str()`
/// checks in debug builds via the open-scope stack.
class Writer {
public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Emits `"k":` inside an object (follow with exactly one value).
  Writer& key(std::string_view k);

  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(bool v);
  Writer& value(double v); // non-finite values are emitted as null
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  Writer& null();

  /// Shorthand for key(k).value(v).
  template <typename T>
  Writer& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  bool complete() const { return open_.empty() && !out_.empty(); }
  const std::string& str() const { return out_; }

private:
  void comma();

  std::string out_;
  std::vector<char> open_; // '{' or '['
  bool need_comma_ = false;
  bool after_key_ = false;
};

/// Validates that `text` is exactly one well-formed JSON value (recursive
/// descent, no value materialization). Used by tests and trace re-parsing.
bool validate(std::string_view text);

/// Materialized JSON value — the read side of Writer, used by the
/// `rcgp report` tool to ingest exported traces, profiles, and metrics.
/// Objects keep member order; lookup is a linear scan (documents here are
/// small and mostly flat).
class Value {
public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<Value>& items() const { return items_; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Member lookup on an object (nullptr when absent or not an object).
  const Value* find(std::string_view key) const;
  /// Convenience accessors with defaults for flat records.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;

private:
  friend std::optional<Value> parse(std::string_view text);
  friend struct ValueParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses exactly one JSON value (nullopt on malformed input). Accepts
/// the same grammar `validate` accepts.
std::optional<Value> parse(std::string_view text);

/// Extracts the first `"key": <number>` pair from a flat scan of a JSON
/// document. Intended for tests and light trace post-processing; does not
/// handle keys nested inside strings.
std::optional<double> number_field(std::string_view doc, std::string_view key);

/// Extracts the first `"key": "<string>"` pair (unescaped content for the
/// common case; escape sequences are decoded for \" \\ \/ \n \t \r).
std::optional<std::string> string_field(std::string_view doc,
                                        std::string_view key);

} // namespace rcgp::obs::json
