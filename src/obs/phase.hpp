#pragma once

#include <string>
#include <vector>

#include "obs/span.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::obs {

/// One completed phase measurement. `path` is the '/'-joined nesting path
/// ("flow/cgp"), `depth` its nesting level (0 = top).
struct PhaseRecord {
  std::string path;
  double seconds = 0.0;
  int depth = 0;
};

/// Thread-local collector for phase timings. Installing one (stack
/// allocation) makes every PhaseSpan on the same thread report into it;
/// collectors nest, restoring the previous one on destruction. The flow
/// driver uses this to attach a per-phase breakdown to FlowResult.
class PhaseCollector {
public:
  PhaseCollector();
  ~PhaseCollector();
  PhaseCollector(const PhaseCollector&) = delete;
  PhaseCollector& operator=(const PhaseCollector&) = delete;

  const std::vector<PhaseRecord>& records() const { return records_; }

  /// Sum of seconds over records at nesting depth 0 (the non-overlapping
  /// wall-clock decomposition).
  double top_level_seconds() const;

  static PhaseCollector* current();

private:
  friend class PhaseSpan;
  std::vector<PhaseRecord> records_;
  PhaseCollector* prev_;
};

/// RAII scoped phase span: the flow-phase flavor of obs::Span. Phase spans
/// nest (one constructed while another is alive on the same thread gets
/// path "outer/inner"). On destruction the measurement is appended to the
/// active PhaseCollector (if any) and accumulated into the registry gauge
/// `phase_seconds{<path>}`; while profiling is enabled the scope is also
/// recorded as a profiler span (the embedded obs::Span), so flow phases
/// show up on the Perfetto timeline without separate plumbing.
class PhaseSpan {
public:
  explicit PhaseSpan(std::string_view name);
  ~PhaseSpan();
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  double seconds() const { return watch_.seconds(); }
  const std::string& path() const { return path_; }
  int depth() const { return depth_; }

private:
  std::string path_;
  Span span_; // profiler record (inert while profiling is disabled)
  util::Stopwatch watch_;
  int depth_;
  PhaseSpan* parent_;
};

} // namespace rcgp::obs
