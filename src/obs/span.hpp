#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rcgp::obs {

/// Span-based profiling (docs/OBSERVABILITY.md). A Span is an RAII timing
/// scope recorded into a per-thread buffer while profiling is enabled;
/// the whole profile exports as one Chrome trace-event / Perfetto JSON
/// document (`write_chrome_trace`, loadable in ui.perfetto.dev).
///
/// Disabled-mode cost: constructing a Span is one relaxed atomic load and
/// the destructor a branch — safe to leave in hot paths. Enabled-mode cost
/// is two steady-clock reads, one relaxed id fetch_add, and an append to
/// the calling thread's buffer under an uncontended mutex.

/// Microseconds since the process-wide steady-clock epoch (captured at
/// load time). Shared by spans and TraceSink `t_ms` stamps so traces and
/// profiles are time-aligned.
std::uint64_t profile_now_us();

/// Global profiling switch (off by default). Spans constructed while the
/// switch is off are inert.
bool profiling_enabled();
void set_profiling_enabled(bool on);

/// Names the calling thread's profiler track (shown as the Perfetto row
/// label, e.g. "eval-worker-1"). Safe to call whether or not profiling is
/// enabled; the latest name wins.
void set_thread_name(std::string_view name);

/// One completed span. `tid` is a small sequential per-process thread id;
/// `parent` is the id of the enclosing span on the same thread (0 = none).
struct SpanRecord {
  std::string name;
  std::string args_json; ///< "" or a complete JSON object of span args
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint32_t tid = 0;
};

/// RAII profiling span. Nests through a thread-local stack: a Span
/// constructed while another is alive on the same thread records it as its
/// parent. Args attach as Perfetto `args` key/values.
class Span {
public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// False when profiling was disabled at construction (the span records
  /// nothing and args are dropped).
  bool active() const { return active_; }

  Span& arg(std::string_view key, std::string_view value);
  Span& arg(std::string_view key, std::uint64_t value);
  Span& arg(std::string_view key, unsigned value) {
    return arg(key, static_cast<std::uint64_t>(value));
  }
  Span& arg(std::string_view key, double value);

private:
  bool active_ = false;
  std::uint64_t start_us_ = 0;
  std::uint64_t id_ = 0;
  Span* parent_ = nullptr;
  std::string name_;
  std::string args_json_; // comma-joined "key":value fragments

  friend std::uint64_t current_span_id();
};

/// Id of the innermost active span on the calling thread (0 = none).
std::uint64_t current_span_id();

/// Snapshot of every recorded span across all threads (per-thread
/// completion order, threads in registration order).
std::vector<SpanRecord> profile_spans();

/// Spans dropped because a thread hit its buffer cap (profile still loads,
/// but has holes; the cap bounds memory on very long enabled runs).
std::uint64_t profile_dropped_spans();

/// Clears every thread's recorded spans (thread registrations and ids
/// survive). Benches and tests call this between runs.
void reset_profile();

/// The whole profile as one Chrome trace-event JSON document:
/// {"displayTimeUnit":"ms","traceEvents":[...]} with one "X" (complete)
/// event per span (`ts`/`dur` in microseconds) and "M" metadata events
/// naming the process and threads. Loads in ui.perfetto.dev and
/// chrome://tracing.
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path);

} // namespace rcgp::obs
