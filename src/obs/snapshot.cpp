#include "obs/snapshot.hpp"

#include <chrono>
#include <cstdio>

#include "obs/metrics.hpp"

namespace rcgp::obs {

namespace {

bool write_atomically(const std::string& path, const std::string& doc) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) {
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

} // namespace

MetricsSnapshotter::MetricsSnapshotter(Options options)
    : options_(std::move(options)) {
  const bool has_path = !options_.json_path.empty() ||
                        !options_.prom_path.empty();
  if (options_.interval_seconds <= 0.0 || !has_path) {
    return;
  }
  thread_ = std::thread([this] {
    const auto interval = std::chrono::duration<double>(
        options_.interval_seconds);
    std::unique_lock lock(mu_);
    while (!cv_.wait_for(lock, interval, [this] { return stop_; })) {
      lock.unlock();
      write_snapshot();
      lock.lock();
      ++written_;
    }
  });
}

MetricsSnapshotter::~MetricsSnapshotter() {
  const bool ran = thread_.joinable();
  if (ran) {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    // One final snapshot so the files reflect the run's end state.
    write_snapshot();
  }
}

void MetricsSnapshotter::write_snapshot() {
  if (!options_.json_path.empty()) {
    write_atomically(options_.json_path, registry().to_json() + "\n");
  }
  if (!options_.prom_path.empty()) {
    write_atomically(options_.prom_path, registry().to_prometheus());
  }
}

std::uint64_t MetricsSnapshotter::snapshots_written() const {
  std::lock_guard lock(mu_);
  return written_;
}

} // namespace rcgp::obs
