#include "obs/phase.hpp"

#include "obs/metrics.hpp"

namespace rcgp::obs {

namespace {
thread_local PhaseCollector* t_collector = nullptr;
thread_local PhaseSpan* t_top_span = nullptr;
} // namespace

PhaseCollector::PhaseCollector() : prev_(t_collector) { t_collector = this; }

PhaseCollector::~PhaseCollector() { t_collector = prev_; }

PhaseCollector* PhaseCollector::current() { return t_collector; }

double PhaseCollector::top_level_seconds() const {
  double sum = 0.0;
  for (const auto& r : records_) {
    if (r.depth == 0) {
      sum += r.seconds;
    }
  }
  return sum;
}

PhaseSpan::PhaseSpan(std::string_view name)
    : span_(name), parent_(t_top_span) {
  if (parent_) {
    depth_ = parent_->depth_ + 1;
    path_ = parent_->path_;
    path_ += '/';
    path_ += name;
  } else {
    depth_ = 0;
    path_ = name;
  }
  t_top_span = this;
}

PhaseSpan::~PhaseSpan() {
  const double s = watch_.seconds();
  t_top_span = parent_;
  if (t_collector) {
    t_collector->records_.push_back({path_, s, depth_});
  }
  registry().gauge("phase_seconds{" + path_ + "}").add(s);
}

} // namespace rcgp::obs
