#pragma once

#include <cstdint>
#include <string>

#include "core/fitness.hpp"
#include "core/mutation.hpp"
#include "rqfp/netlist.hpp"

namespace rcgp::robust {

/// Full evolve() state at a generation boundary — everything needed to
/// continue a (1+λ) run bit-identically to one that was never interrupted:
/// the parent netlist and fitness, every counter the result reports, and
/// the consumed wall-clock budget. No RNG engine words: offspring k of
/// generation g draws from the counter-based stream (seed, g, k)
/// (util::Rng::stream), so the resume point is fully described by the
/// generation index and the checkpoint is independent of the thread count
/// that produced it (version 2 dropped the old `rng` line).
///
/// On-disk format (docs/ROBUSTNESS.md): a one-line header
/// `rcgp-evolve-checkpoint <version> <crc32-hex>` followed by the payload;
/// the CRC covers every byte after the header line, so torn writes and
/// bit rot are detected at load. Files are written atomically
/// (write-temp-then-rename), so a crash mid-save leaves the previous
/// checkpoint intact.
struct EvolveCheckpoint {
  static constexpr std::uint32_t kVersion = 2;

  // Run identity — checked against the resuming params so a checkpoint is
  // never silently continued under a different search configuration.
  std::uint64_t seed = 0;
  unsigned lambda = 0;
  double mu = 0.0;
  std::uint64_t generations_total = 0;

  /// Next generation index to execute (the checkpoint is always taken at a
  /// generation boundary; interrupted partial generations are discarded
  /// and re-run on resume).
  std::uint64_t generation = 0;

  std::uint64_t evaluations = 0;
  std::uint64_t improvements = 0;
  std::uint64_t sat_confirmations = 0;
  std::uint64_t sat_cec_conflicts = 0;
  std::uint64_t since_improvement = 0;
  std::uint64_t last_improvement_gen = 0;
  double elapsed_seconds = 0.0;

  core::Fitness fitness; // parent fitness (objective restored by resume)
  core::MutationMix mutations_attempted;
  core::MutationMix mutations_accepted;
  rqfp::Netlist parent;
};

/// Serializes / parses the checkpoint payload (header + CRC included).
/// parse_checkpoint throws IntegrityError: Kind::kChecksum on CRC mismatch,
/// Kind::kFormat on anything structurally unreadable.
std::string serialize_checkpoint(const EvolveCheckpoint& ck);
EvolveCheckpoint parse_checkpoint(const std::string& text);

/// Atomic save: writes `path + ".tmp"`, flushes, then renames over `path`.
/// Throws std::runtime_error on I/O failure.
void save_checkpoint(const EvolveCheckpoint& ck, const std::string& path);
/// Loads and CRC-verifies a checkpoint file. Throws IntegrityError on
/// corruption and std::runtime_error when the file cannot be read.
EvolveCheckpoint load_checkpoint(const std::string& path);

} // namespace rcgp::robust
