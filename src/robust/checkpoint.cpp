#include "robust/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "io/rqfp_writer.hpp"
#include "obs/metrics.hpp"
#include "robust/integrity.hpp"
#include "util/crc32.hpp"

namespace rcgp::robust {

namespace {

constexpr const char* kMagic = "rcgp-evolve-checkpoint";

[[noreturn]] void format_error(const std::string& detail) {
  throw IntegrityError(IntegrityError::Kind::kFormat, "checkpoint", detail);
}

void put_mix(std::ostream& out, const char* key,
             const core::MutationMix& m) {
  out << key << ' ' << m.mutations << ' ' << m.genes_changed << ' '
      << m.swaps << ' ' << m.direct_assigns << ' ' << m.config_flips << ' '
      << m.po_moves << ' ' << m.skipped_infeasible << '\n';
}

// Hexfloat-capable double reader: `operator>>` cannot parse the exact
// "0x1.xxxp+e" form the serializer emits (it stops at the 'x'), but
// strtod handles it per C99.
bool read_double(std::istream& ls, double& out) {
  std::string tok;
  if (!(ls >> tok)) {
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') {
    return false;
  }
  out = v;
  return true;
}

core::MutationMix get_mix(std::istringstream& ls) {
  core::MutationMix m;
  if (!(ls >> m.mutations >> m.genes_changed >> m.swaps >> m.direct_assigns >>
        m.config_flips >> m.po_moves >> m.skipped_infeasible)) {
    format_error("malformed mutation-mix line");
  }
  return m;
}

} // namespace

std::string serialize_checkpoint(const EvolveCheckpoint& ck) {
  std::ostringstream payload;
  payload << "seed " << ck.seed << '\n';
  payload << "lambda " << ck.lambda << '\n';
  payload << "mu " << std::hexfloat << ck.mu << std::defaultfloat << '\n';
  payload << "generations_total " << ck.generations_total << '\n';
  payload << "generation " << ck.generation << '\n';
  payload << "evaluations " << ck.evaluations << '\n';
  payload << "improvements " << ck.improvements << '\n';
  payload << "sat_confirmations " << ck.sat_confirmations << '\n';
  payload << "sat_cec_conflicts " << ck.sat_cec_conflicts << '\n';
  payload << "since_improvement " << ck.since_improvement << '\n';
  payload << "last_improvement_gen " << ck.last_improvement_gen << '\n';
  payload << "elapsed_seconds " << std::hexfloat << ck.elapsed_seconds
          << std::defaultfloat << '\n';
  payload << "fitness " << std::hexfloat << ck.fitness.success_rate
          << std::defaultfloat << ' ' << ck.fitness.n_r << ' '
          << ck.fitness.n_g << ' ' << ck.fitness.n_b << '\n';
  put_mix(payload, "mix_attempted", ck.mutations_attempted);
  put_mix(payload, "mix_accepted", ck.mutations_accepted);
  payload << "netlist\n" << io::write_rqfp_string(ck.parent);
  payload << "end-checkpoint\n";

  const std::string body = payload.str();
  char header[64];
  std::snprintf(header, sizeof(header), "%s %u %08x\n", kMagic,
                EvolveCheckpoint::kVersion, util::crc32(body));
  return std::string(header) + body;
}

EvolveCheckpoint parse_checkpoint(const std::string& text) {
  const auto nl = text.find('\n');
  if (nl == std::string::npos) {
    format_error("missing header line");
  }
  std::istringstream header(text.substr(0, nl));
  std::string magic;
  std::uint32_t version = 0;
  std::string crc_hex;
  if (!(header >> magic >> version >> crc_hex) || magic != kMagic) {
    format_error("not an rcgp checkpoint (bad magic)");
  }
  if (version != EvolveCheckpoint::kVersion) {
    format_error("unsupported checkpoint version " + std::to_string(version));
  }
  const std::string body = text.substr(nl + 1);
  std::uint32_t expected = 0;
  try {
    expected = static_cast<std::uint32_t>(std::stoul(crc_hex, nullptr, 16));
  } catch (const std::exception&) {
    format_error("unreadable CRC field '" + crc_hex + "'");
  }
  const std::uint32_t actual = util::crc32(body);
  if (actual != expected) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "CRC mismatch: header says %08x, payload hashes to %08x",
                  expected, actual);
    throw IntegrityError(IntegrityError::Kind::kChecksum, "checkpoint", msg);
  }

  EvolveCheckpoint ck;
  std::istringstream in(body);
  std::string line;
  std::string netlist_text;
  bool in_netlist = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (in_netlist) {
      if (line == "end-checkpoint") {
        saw_end = true;
        break;
      }
      netlist_text += line;
      netlist_text += '\n';
      continue;
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    bool ok = true;
    if (key == "seed") {
      ok = static_cast<bool>(ls >> ck.seed);
    } else if (key == "lambda") {
      ok = static_cast<bool>(ls >> ck.lambda);
    } else if (key == "mu") {
      ok = read_double(ls, ck.mu);
    } else if (key == "generations_total") {
      ok = static_cast<bool>(ls >> ck.generations_total);
    } else if (key == "generation") {
      ok = static_cast<bool>(ls >> ck.generation);
    } else if (key == "evaluations") {
      ok = static_cast<bool>(ls >> ck.evaluations);
    } else if (key == "improvements") {
      ok = static_cast<bool>(ls >> ck.improvements);
    } else if (key == "sat_confirmations") {
      ok = static_cast<bool>(ls >> ck.sat_confirmations);
    } else if (key == "sat_cec_conflicts") {
      ok = static_cast<bool>(ls >> ck.sat_cec_conflicts);
    } else if (key == "since_improvement") {
      ok = static_cast<bool>(ls >> ck.since_improvement);
    } else if (key == "last_improvement_gen") {
      ok = static_cast<bool>(ls >> ck.last_improvement_gen);
    } else if (key == "elapsed_seconds") {
      ok = read_double(ls, ck.elapsed_seconds);
    } else if (key == "fitness") {
      ok = read_double(ls, ck.fitness.success_rate) &&
           static_cast<bool>(ls >> ck.fitness.n_r >> ck.fitness.n_g >>
                             ck.fitness.n_b);
    } else if (key == "mix_attempted") {
      ck.mutations_attempted = get_mix(ls);
    } else if (key == "mix_accepted") {
      ck.mutations_accepted = get_mix(ls);
    } else if (key == "netlist") {
      in_netlist = true;
    } else {
      format_error("unknown checkpoint key '" + key + "'");
    }
    if (!ok) {
      format_error("malformed value for key '" + key + "'");
    }
  }
  if (!saw_end) {
    format_error("truncated checkpoint (missing end-checkpoint)");
  }
  try {
    ck.parent = io::parse_rqfp_string(netlist_text);
  } catch (const std::exception& e) {
    format_error(std::string("embedded netlist unreadable: ") + e.what());
  }
  return ck;
}

void save_checkpoint(const EvolveCheckpoint& ck, const std::string& path) {
  static obs::Counter& c_saves =
      obs::registry().counter("robust.checkpoint_saves");
  const std::string text = serialize_checkpoint(ck);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    throw std::runtime_error("checkpoint: cannot write " + tmp);
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != text.size() || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: cannot rename " + tmp + " to " +
                             path);
  }
  c_saves.inc();
}

EvolveCheckpoint load_checkpoint(const std::string& path) {
  static obs::Counter& c_loads =
      obs::registry().counter("robust.checkpoint_loads");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    throw std::runtime_error("checkpoint: cannot open " + path);
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  EvolveCheckpoint ck = parse_checkpoint(text);
  c_loads.inc();
  return ck;
}

} // namespace rcgp::robust
