#include "robust/fault.hpp"

#include <stdexcept>

#include "rqfp/gate.hpp"

namespace rcgp::robust {

std::string FaultReport::describe() const {
  switch (kind) {
    case FaultKind::kWiringBitFlip:
      return "wiring bit-flip: gate " + std::to_string(location) + ", bit " +
             std::to_string(bit);
    case FaultKind::kConfigBitFlip:
      return "inverter-config bit-flip: gate " + std::to_string(location) +
             ", slot " + std::to_string(bit);
    case FaultKind::kByteFlip:
      return "byte bit-flip: offset " + std::to_string(location) + ", bit " +
             std::to_string(bit);
  }
  return "unknown fault";
}

FaultReport inject_wiring_fault(rqfp::Netlist& net, util::Rng& rng) {
  if (net.num_gates() == 0) {
    throw std::invalid_argument("inject_wiring_fault: netlist has no gates");
  }
  FaultReport report;
  report.kind = FaultKind::kWiringBitFlip;
  report.location = rng.below(net.num_gates());
  const unsigned slot = static_cast<unsigned>(rng.below(3));
  // Port numbers are dense starting at 0, so low bits are the interesting
  // ones: a flipped low bit lands on a *different existing* port (double
  // fan-out / function change) rather than an out-of-range value that any
  // bounds check would catch.
  report.bit = static_cast<unsigned>(rng.below(4));
  auto& gate = net.gate(static_cast<std::uint32_t>(report.location));
  gate.in[slot] ^= rqfp::Port{1} << report.bit;
  return report;
}

FaultReport inject_config_fault(rqfp::Netlist& net, util::Rng& rng) {
  if (net.num_gates() == 0) {
    throw std::invalid_argument("inject_config_fault: netlist has no gates");
  }
  FaultReport report;
  report.kind = FaultKind::kConfigBitFlip;
  report.location = rng.below(net.num_gates());
  report.bit = static_cast<unsigned>(rng.below(9));
  auto& gate = net.gate(static_cast<std::uint32_t>(report.location));
  gate.config = gate.config.with_flip(report.bit);
  return report;
}

FaultReport inject_byte_fault(std::string& blob, util::Rng& rng,
                              std::size_t skip) {
  if (blob.size() <= skip) {
    throw std::invalid_argument("inject_byte_fault: blob too small");
  }
  FaultReport report;
  report.kind = FaultKind::kByteFlip;
  report.location = skip + rng.below(blob.size() - skip);
  report.bit = static_cast<unsigned>(rng.below(8));
  blob[report.location] =
      static_cast<char>(blob[report.location] ^ (1u << report.bit));
  return report;
}

} // namespace rcgp::robust
