#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace rcgp::robust {

/// Why an optimizer loop handed control back. Every loop in the framework
/// (evolve, anneal, multistart, exact polish) exits through one of these
/// and reports it in its result and in the trace `run_end{reason}` event.
enum class StopReason : std::uint8_t {
  kCompleted,        // full configured budget consumed
  kStagnation,       // stagnation_limit generations without improvement
  kTimeLimit,        // params.time_limit_seconds / deadline_seconds hit
  kGenerationBudget, // RunBudget::max_generations hit
  kEvaluationBudget, // RunBudget::max_evaluations hit
  kStopRequested,    // cooperative StopToken tripped (SIGINT/SIGTERM, API)
};

/// Stable string used in traces, logs, and the CLI ("completed",
/// "stagnation", "time-limit", ...).
std::string to_string(StopReason reason);
/// Inverse of to_string ("resumed-complete" also maps to kCompleted);
/// throws std::invalid_argument on unknown names.
StopReason parse_stop_reason(const std::string& name);

/// Cooperative cancellation flag. Loops poll `stop_requested()` between
/// offspring evaluations, so a trip is honored within one evaluation — not
/// one generation — even for SAT-heavy configs. Lock-free and async-signal
/// safe: `request_stop()` may be called from a signal handler.
class StopToken {
public:
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }
  bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token (e.g. between CLI runs in one process).
  void reset() noexcept { stop_.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> stop_{false};
};

/// Run budgets threaded through every optimizer loop, combining hard
/// resource ceilings with a cooperative stop flag. All limits are
/// best-so-far preserving: tripping any of them exits the loop cleanly
/// with the current best netlist.
struct RunBudget {
  /// Wall-clock ceiling in seconds measured from loop entry (resumed runs
  /// count the checkpointed elapsed time too). 0 = unlimited.
  double deadline_seconds = 0.0;
  /// Ceiling on the generation index — the run stops once this many
  /// generations have completed, counting generations replayed from a
  /// checkpoint (0 = unlimited). Lets tests and schedulers slice one
  /// logical run into resumable chunks.
  std::uint64_t max_generations = 0;
  /// Ceiling on fitness evaluations, cumulative across resumes
  /// (0 = unlimited).
  std::uint64_t max_evaluations = 0;
  /// Cooperative stop flag (not owned; nullptr = never stops). The CLI
  /// points this at the process-wide signal token.
  StopToken* stop = nullptr;

  bool stop_requested() const {
    return stop != nullptr && stop->stop_requested();
  }
};

/// Installs SIGINT/SIGTERM handlers that trip `token` (first signal) and
/// restore default disposition (second signal force-kills). Returns the
/// token so call sites can write
/// `params.budget.stop = &install_signal_stop(token);`. The token must
/// outlive every signal delivery; the CLI uses a function-local static.
StopToken& install_signal_stop(StopToken& token);

} // namespace rcgp::robust
