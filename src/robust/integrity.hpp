#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "rqfp/netlist.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::robust {

/// How aggressively the optimizer loops re-check the RQFP structural
/// invariants (single fan-out, feed-forward wiring) and re-simulate the
/// claimed function. Local rewrites — a buggy mutation operator, a bad
/// splice, memory corruption — can silently violate them; paranoia turns
/// that silent wrong answer into a structured failure.
enum class ParanoiaLevel : std::uint8_t {
  kOff,             // trust the operators (production hot path)
  kBoundaries,      // validate + re-simulate at phase boundaries
  kEveryAcceptance, // additionally on every accepted offspring
};

std::string to_string(ParanoiaLevel level);
/// Accepts "off", "boundaries", "all" / "every-acceptance"; throws
/// std::invalid_argument otherwise.
ParanoiaLevel parse_paranoia(const std::string& text);

/// Structured integrity violation. Distinguishes *what* failed (a wiring
/// invariant, the circuit function, a checkpoint checksum, a file format)
/// and carries the offending netlist as a `.rqfp` dump so the failure is
/// reproducible offline.
class IntegrityError : public std::runtime_error {
public:
  enum class Kind : std::uint8_t {
    kInvariant,  // Netlist::validate() failed
    kFunctional, // exhaustive re-simulation mismatched the specification
    kChecksum,   // checkpoint CRC mismatch (torn write / bit rot)
    kFormat,     // checkpoint structure unreadable or version unknown
  };

  IntegrityError(Kind kind, std::string where, std::string detail,
                 std::string netlist_dump = "");

  Kind kind() const { return kind_; }
  /// Pipeline location, e.g. "evolve:acceptance:gen=1234".
  const std::string& where() const { return where_; }
  const std::string& detail() const { return detail_; }
  /// `.rqfp` text of the offending netlist (empty when not applicable).
  const std::string& netlist_dump() const { return netlist_dump_; }

  static const char* kind_name(Kind kind);

private:
  Kind kind_;
  std::string where_;
  std::string detail_;
  std::string netlist_dump_;
};

/// Runs Netlist::validate() and (when `spec` is non-empty) exhaustive
/// re-simulation against the specification. Throws IntegrityError with a
/// netlist dump on the first violation; increments the
/// `robust.integrity_checks` / `robust.integrity_failures` counters.
void enforce_integrity(const rqfp::Netlist& net,
                       std::span<const tt::TruthTable> spec,
                       std::string_view where);

} // namespace rcgp::robust
