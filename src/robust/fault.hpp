#pragma once

#include <cstdint>
#include <string>

#include "rqfp/netlist.hpp"
#include "util/rng.hpp"

namespace rcgp::robust {

/// Deterministic fault injector: seeded single-bit corruptions of the three
/// places long runs can silently rot — gate wiring, inverter configs, and
/// checkpoint bytes. Tests drive it to prove that Netlist::validate(),
/// exhaustive re-simulation, and the checkpoint CRC actually catch each
/// corruption class (an injected fault must surface as IntegrityError,
/// never as a silently wrong answer).
enum class FaultKind : std::uint8_t {
  kWiringBitFlip,   // flip one bit of one gate-input port number
  kConfigBitFlip,   // flip one of a gate's 9 inverter bits
  kByteFlip,        // flip one bit of one byte in a serialized blob
};

struct FaultReport {
  FaultKind kind = FaultKind::kWiringBitFlip;
  /// Gate index (netlist faults) or byte offset (blob faults).
  std::uint64_t location = 0;
  unsigned bit = 0;
  std::string describe() const;
};

/// Flips one seeded bit of one gate-input port. The resulting netlist
/// usually violates feed-forward order or single fan-out (caught by
/// validate()); when the flipped port happens to stay legal, exhaustive
/// re-simulation catches the changed function instead. Requires at least
/// one gate.
FaultReport inject_wiring_fault(rqfp::Netlist& net, util::Rng& rng);

/// Flips one seeded inverter-configuration bit of one gate. Structurally
/// legal by construction — only re-simulation can catch it.
FaultReport inject_config_fault(rqfp::Netlist& net, util::Rng& rng);

/// Flips one seeded bit of one byte in `blob` (e.g. serialized checkpoint
/// text). Offsets at or past `skip` bytes only, so tests can keep a file
/// header intact. Requires blob.size() > skip.
FaultReport inject_byte_fault(std::string& blob, util::Rng& rng,
                              std::size_t skip = 0);

} // namespace rcgp::robust
