#include "robust/stop.hpp"

#include <csignal>
#include <stdexcept>

namespace rcgp::robust {

std::string to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kCompleted: return "completed";
    case StopReason::kStagnation: return "stagnation";
    case StopReason::kTimeLimit: return "time-limit";
    case StopReason::kGenerationBudget: return "generation-budget";
    case StopReason::kEvaluationBudget: return "evaluation-budget";
    case StopReason::kStopRequested: return "stop-requested";
  }
  return "unknown";
}

StopReason parse_stop_reason(const std::string& name) {
  if (name == "completed" || name == "resumed-complete") {
    return StopReason::kCompleted;
  }
  if (name == "stagnation") return StopReason::kStagnation;
  if (name == "time-limit") return StopReason::kTimeLimit;
  if (name == "generation-budget") return StopReason::kGenerationBudget;
  if (name == "evaluation-budget") return StopReason::kEvaluationBudget;
  if (name == "stop-requested") return StopReason::kStopRequested;
  throw std::invalid_argument("unknown stop reason '" + name + "'");
}

namespace {

// Signal handlers can only touch lock-free atomics; the token itself is
// one, so a plain pointer handoff is safe.
std::atomic<StopToken*> g_signal_token{nullptr};

extern "C" void rcgp_signal_handler(int sig) {
  if (StopToken* token = g_signal_token.load(std::memory_order_relaxed)) {
    token->request_stop();
  }
  // Second delivery of the same signal kills the process the default way:
  // an operator double-tapping Ctrl-C must always win over a wedged run.
  std::signal(sig, SIG_DFL);
}

} // namespace

StopToken& install_signal_stop(StopToken& token) {
  g_signal_token.store(&token, std::memory_order_relaxed);
  std::signal(SIGINT, rcgp_signal_handler);
  std::signal(SIGTERM, rcgp_signal_handler);
  return token;
}

} // namespace rcgp::robust
