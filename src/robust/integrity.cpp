#include "robust/integrity.hpp"

#include <stdexcept>

#include "io/rqfp_writer.hpp"
#include "obs/metrics.hpp"
#include "rqfp/simulate.hpp"

namespace rcgp::robust {

std::string to_string(ParanoiaLevel level) {
  switch (level) {
    case ParanoiaLevel::kOff: return "off";
    case ParanoiaLevel::kBoundaries: return "boundaries";
    case ParanoiaLevel::kEveryAcceptance: return "every-acceptance";
  }
  return "unknown";
}

ParanoiaLevel parse_paranoia(const std::string& text) {
  if (text == "off") {
    return ParanoiaLevel::kOff;
  }
  if (text == "boundaries") {
    return ParanoiaLevel::kBoundaries;
  }
  if (text == "all" || text == "every-acceptance") {
    return ParanoiaLevel::kEveryAcceptance;
  }
  throw std::invalid_argument(
      "paranoia level must be off, boundaries, or all (got '" + text + "')");
}

const char* IntegrityError::kind_name(Kind kind) {
  switch (kind) {
    case Kind::kInvariant: return "invariant";
    case Kind::kFunctional: return "functional";
    case Kind::kChecksum: return "checksum";
    case Kind::kFormat: return "format";
  }
  return "unknown";
}

IntegrityError::IntegrityError(Kind kind, std::string where,
                               std::string detail, std::string netlist_dump)
    : std::runtime_error("integrity violation [" +
                         std::string(kind_name(kind)) + "] at " + where +
                         ": " + detail),
      kind_(kind),
      where_(std::move(where)),
      detail_(std::move(detail)),
      netlist_dump_(std::move(netlist_dump)) {}

void enforce_integrity(const rqfp::Netlist& net,
                       std::span<const tt::TruthTable> spec,
                       std::string_view where) {
  static obs::Counter& c_checks =
      obs::registry().counter("robust.integrity_checks");
  static obs::Counter& c_failures =
      obs::registry().counter("robust.integrity_failures");
  c_checks.inc();

  const std::string problem = net.validate();
  if (!problem.empty()) {
    c_failures.inc();
    throw IntegrityError(IntegrityError::Kind::kInvariant, std::string(where),
                         problem, io::write_rqfp_string(net));
  }
  if (!spec.empty()) {
    if (spec.size() != net.num_pos()) {
      c_failures.inc();
      throw IntegrityError(
          IntegrityError::Kind::kFunctional, std::string(where),
          "specification has " + std::to_string(spec.size()) +
              " outputs but netlist has " + std::to_string(net.num_pos()),
          io::write_rqfp_string(net));
    }
    // Exhaustive re-simulation from scratch — independent of the fitness
    // evaluator's live-cone fast path, so it also catches bugs there.
    const auto tables = rqfp::simulate(net);
    for (std::size_t o = 0; o < spec.size(); ++o) {
      if (!(tables[o] == spec[o])) {
        c_failures.inc();
        throw IntegrityError(
            IntegrityError::Kind::kFunctional, std::string(where),
            "output " + std::to_string(o) +
                " mismatches the specification under exhaustive "
                "re-simulation",
            io::write_rqfp_string(net));
      }
    }
  }
}

} // namespace rcgp::robust
