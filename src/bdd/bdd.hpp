#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tt/truth_table.hpp"

namespace rcgp::bdd {

/// Reference to a BDD node (index into the manager's node table).
/// 0 and 1 are the terminal constants.
using NodeRef = std::uint32_t;

inline constexpr NodeRef kFalse = 0;
inline constexpr NodeRef kTrue = 1;

/// Reduced ordered binary decision diagram manager with unique and
/// computed tables. Variable order is the creation order of variables
/// (index 0 at the top). Canonical: two functions are equal iff their
/// NodeRefs are equal — which is what makes the BDD-based fitness check
/// cited by the paper (§2.2, [22]) a constant-time comparison.
class Manager {
public:
  explicit Manager(unsigned num_vars);

  unsigned num_vars() const { return num_vars_; }

  /// The projection function of variable v.
  NodeRef var(unsigned v);

  NodeRef ite(NodeRef f, NodeRef g, NodeRef h);
  NodeRef apply_not(NodeRef f) { return ite(f, kFalse, kTrue); }
  NodeRef apply_and(NodeRef f, NodeRef g) { return ite(f, g, kFalse); }
  NodeRef apply_or(NodeRef f, NodeRef g) { return ite(f, kTrue, g); }
  NodeRef apply_xor(NodeRef f, NodeRef g) {
    return ite(f, apply_not(g), g);
  }
  NodeRef apply_maj(NodeRef a, NodeRef b, NodeRef c);

  /// Evaluate under a complete assignment (bit v = variable v).
  bool evaluate(NodeRef f, std::uint64_t assignment) const;

  /// Number of satisfying assignments over all num_vars() variables.
  std::uint64_t count_sat(NodeRef f);

  /// Any satisfying assignment; false if f == kFalse.
  bool find_sat(NodeRef f, std::uint64_t& assignment) const;

  /// Expand to an explicit truth table (num_vars() <= kMaxVars).
  tt::TruthTable to_truth_table(NodeRef f) const;

  /// Build a BDD from a truth table over this manager's variables.
  NodeRef from_truth_table(const tt::TruthTable& t);

  /// Nodes in the DAG rooted at f (terminals excluded).
  std::size_t size(NodeRef f) const;

  std::size_t num_nodes() const { return nodes_.size(); }

private:
  struct Node {
    unsigned var;
    NodeRef low;
    NodeRef high;
  };

  NodeRef make_node(unsigned var, NodeRef low, NodeRef high);
  NodeRef from_tt_rec(const tt::TruthTable& t, unsigned var);

  unsigned num_vars_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, NodeRef> unique_;
  std::unordered_map<std::uint64_t, NodeRef> ite_cache_;
  std::unordered_map<std::uint64_t, std::uint64_t> count_cache_;
};

} // namespace rcgp::bdd
