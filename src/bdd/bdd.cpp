#include "bdd/bdd.hpp"

#include <set>
#include <stdexcept>

namespace rcgp::bdd {

namespace {

std::uint64_t unique_key(unsigned var, NodeRef low, NodeRef high) {
  return (static_cast<std::uint64_t>(var) << 48) |
         (static_cast<std::uint64_t>(low) << 24) | high;
}

std::uint64_t ite_key(NodeRef f, NodeRef g, NodeRef h) {
  // 21 bits per operand is ample for the circuit sizes here.
  return (static_cast<std::uint64_t>(f) << 42) |
         (static_cast<std::uint64_t>(g) << 21) | h;
}

} // namespace

Manager::Manager(unsigned num_vars) : num_vars_(num_vars) {
  if (num_vars >= (1u << 16)) {
    throw std::invalid_argument("bdd::Manager: too many variables");
  }
  // Terminals occupy slots 0 and 1 with a sentinel variable index so that
  // var(terminal) sorts below every real variable during traversal.
  nodes_.push_back(Node{num_vars_, kFalse, kFalse}); // 0
  nodes_.push_back(Node{num_vars_, kTrue, kTrue});   // 1
}

NodeRef Manager::var(unsigned v) {
  if (v >= num_vars_) {
    throw std::invalid_argument("bdd::Manager::var: out of range");
  }
  return make_node(v, kFalse, kTrue);
}

NodeRef Manager::make_node(unsigned var, NodeRef low, NodeRef high) {
  if (low == high) {
    return low;
  }
  const std::uint64_t key = unique_key(var, low, high);
  const auto it = unique_.find(key);
  if (it != unique_.end()) {
    return it->second;
  }
  const auto ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back(Node{var, low, high});
  unique_[key] = ref;
  return ref;
}

NodeRef Manager::ite(NodeRef f, NodeRef g, NodeRef h) {
  // Terminal cases.
  if (f == kTrue) {
    return g;
  }
  if (f == kFalse) {
    return h;
  }
  if (g == h) {
    return g;
  }
  if (g == kTrue && h == kFalse) {
    return f;
  }
  const std::uint64_t key = ite_key(f, g, h);
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) {
    return it->second;
  }
  // Split on the top variable among the three operands.
  unsigned top = nodes_[f].var;
  if (g > kTrue) {
    top = std::min(top, nodes_[g].var);
  }
  if (h > kTrue) {
    top = std::min(top, nodes_[h].var);
  }
  auto cofactor = [&](NodeRef x, bool positive) {
    if (x <= kTrue || nodes_[x].var != top) {
      return x;
    }
    return positive ? nodes_[x].high : nodes_[x].low;
  };
  const NodeRef hi = ite(cofactor(f, true), cofactor(g, true),
                         cofactor(h, true));
  const NodeRef lo = ite(cofactor(f, false), cofactor(g, false),
                         cofactor(h, false));
  const NodeRef result = make_node(top, lo, hi);
  ite_cache_[key] = result;
  return result;
}

NodeRef Manager::apply_maj(NodeRef a, NodeRef b, NodeRef c) {
  return apply_or(apply_and(a, b),
                  apply_or(apply_and(a, c), apply_and(b, c)));
}

bool Manager::evaluate(NodeRef f, std::uint64_t assignment) const {
  while (f > kTrue) {
    const Node& n = nodes_[f];
    f = ((assignment >> n.var) & 1) ? n.high : n.low;
  }
  return f == kTrue;
}

std::uint64_t Manager::count_sat(NodeRef f) {
  // count over remaining variables below each node; memoized per node.
  // count(f at level var(f)) * 2^{var(f)} gives the total.
  struct Rec {
    Manager& m;
    std::uint64_t run(NodeRef f) {
      if (f == kFalse) {
        return 0;
      }
      if (f == kTrue) {
        return 1;
      }
      const auto it = m.count_cache_.find(f);
      if (it != m.count_cache_.end()) {
        return it->second;
      }
      const Node& n = m.nodes_[f];
      const unsigned lv = n.low <= kTrue ? m.num_vars_ : m.nodes_[n.low].var;
      const unsigned hv =
          n.high <= kTrue ? m.num_vars_ : m.nodes_[n.high].var;
      const std::uint64_t low = run(n.low) << (lv - n.var - 1);
      const std::uint64_t high = run(n.high) << (hv - n.var - 1);
      const std::uint64_t total = low + high;
      m.count_cache_[f] = total;
      return total;
    }
  } rec{*this};
  if (f == kFalse) {
    return 0;
  }
  if (f == kTrue) {
    return std::uint64_t{1} << num_vars_;
  }
  return rec.run(f) << nodes_[f].var;
}

bool Manager::find_sat(NodeRef f, std::uint64_t& assignment) const {
  if (f == kFalse) {
    return false;
  }
  assignment = 0;
  while (f > kTrue) {
    const Node& n = nodes_[f];
    if (n.high != kFalse) {
      assignment |= std::uint64_t{1} << n.var;
      f = n.high;
    } else {
      f = n.low;
    }
  }
  return true;
}

tt::TruthTable Manager::to_truth_table(NodeRef f) const {
  if (num_vars_ > tt::TruthTable::kMaxVars) {
    throw std::invalid_argument("bdd: too many variables to tabulate");
  }
  tt::TruthTable t(num_vars_);
  for (std::uint64_t x = 0; x < t.num_bits(); ++x) {
    if (evaluate(f, x)) {
      t.set_bit(x, true);
    }
  }
  return t;
}

NodeRef Manager::from_truth_table(const tt::TruthTable& t) {
  if (t.num_vars() != num_vars_) {
    throw std::invalid_argument("bdd: truth-table arity mismatch");
  }
  return from_tt_rec(t, 0);
}

NodeRef Manager::from_tt_rec(const tt::TruthTable& t, unsigned v) {
  if (t.is_constant0()) {
    return kFalse;
  }
  if (t.is_constant1()) {
    return kTrue;
  }
  // Shannon-expand from variable v downward; the manager's order puts
  // lower variable indices closer to the root, matching ite().
  const NodeRef low = from_tt_rec(t.cofactor0(v), v + 1);
  const NodeRef high = from_tt_rec(t.cofactor1(v), v + 1);
  return make_node(v, low, high);
}

std::size_t Manager::size(NodeRef f) const {
  if (f <= kTrue) {
    return 0;
  }
  std::set<NodeRef> seen;
  std::vector<NodeRef> stack{f};
  while (!stack.empty()) {
    const NodeRef n = stack.back();
    stack.pop_back();
    if (n <= kTrue || seen.count(n)) {
      continue;
    }
    seen.insert(n);
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  return seen.size();
}

} // namespace rcgp::bdd
