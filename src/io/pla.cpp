#include "io/pla.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rcgp::io {

PlaFile parse_pla(std::istream& in) {
  PlaFile pla;
  bool sized = false;
  std::string line;
  std::vector<std::pair<std::string, std::string>> cubes;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) {
      continue;
    }
    if (head == ".i") {
      ls >> pla.num_inputs;
    } else if (head == ".o") {
      ls >> pla.num_outputs;
    } else if (head == ".ilb") {
      std::string n;
      while (ls >> n) {
        pla.input_names.push_back(n);
      }
    } else if (head == ".ob") {
      std::string n;
      while (ls >> n) {
        pla.output_names.push_back(n);
      }
    } else if (head == ".p" || head == ".type") {
      // row count / type hints are informational
    } else if (head == ".e" || head == ".end") {
      break;
    } else if (head[0] == '.') {
      throw std::runtime_error("pla: unsupported directive " + head);
    } else {
      std::string outs;
      if (!(ls >> outs)) {
        throw std::runtime_error("pla: cube row missing output part");
      }
      cubes.emplace_back(head, outs);
    }
    if (!sized && pla.num_inputs > 0 && pla.num_outputs > 0) {
      if (pla.num_inputs > tt::TruthTable::kMaxVars) {
        throw std::runtime_error("pla: too many inputs");
      }
      pla.tables.assign(pla.num_outputs, tt::TruthTable(pla.num_inputs));
      sized = true;
    }
  }
  if (!sized) {
    throw std::runtime_error("pla: missing .i/.o header");
  }
  for (const auto& [ins, outs] : cubes) {
    if (ins.size() != pla.num_inputs || outs.size() != pla.num_outputs) {
      throw std::runtime_error("pla: cube width mismatch");
    }
    // Expand the input cube over its don't-cares.
    std::vector<std::uint64_t> assignments{0};
    std::uint64_t fixed = 0;
    for (unsigned v = 0; v < pla.num_inputs; ++v) {
      if (ins[v] == '1') {
        fixed |= std::uint64_t{1} << v;
      } else if (ins[v] == '-' || ins[v] == '2') {
        const std::size_t count = assignments.size();
        for (std::size_t k = 0; k < count; ++k) {
          assignments.push_back(assignments[k] | (std::uint64_t{1} << v));
        }
      } else if (ins[v] != '0') {
        throw std::runtime_error("pla: invalid cube character");
      }
    }
    for (auto& a : assignments) {
      a |= fixed;
    }
    for (unsigned o = 0; o < pla.num_outputs; ++o) {
      if (outs[o] == '1' || outs[o] == '4') {
        for (const auto a : assignments) {
          pla.tables[o].set_bit(a, true);
        }
      } else if (outs[o] != '0' && outs[o] != '-' && outs[o] != '~' &&
                 outs[o] != '2') {
        throw std::runtime_error("pla: invalid output character");
      }
    }
  }
  return pla;
}

PlaFile parse_pla_string(const std::string& text) {
  std::istringstream in(text);
  return parse_pla(in);
}

PlaFile parse_pla_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("pla: cannot open " + path);
  }
  return parse_pla(in);
}

void write_pla(const std::vector<tt::TruthTable>& tables, std::ostream& out) {
  if (tables.empty()) {
    throw std::invalid_argument("write_pla: no outputs");
  }
  const unsigned ni = tables[0].num_vars();
  out << ".i " << ni << "\n.o " << tables.size() << '\n';
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << ni); ++x) {
    bool any = false;
    for (const auto& t : tables) {
      if (t.bit(x)) {
        any = true;
        break;
      }
    }
    if (!any) {
      continue;
    }
    for (unsigned v = 0; v < ni; ++v) {
      out << (((x >> v) & 1) ? '1' : '0');
    }
    out << ' ';
    for (const auto& t : tables) {
      out << (t.bit(x) ? '1' : '0');
    }
    out << '\n';
  }
  out << ".e\n";
}

} // namespace rcgp::io
