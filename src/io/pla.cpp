#include "io/pla.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/parse_error.hpp"

namespace rcgp::io {

namespace {

struct PlaCube {
  std::string ins;
  std::string outs;
  std::size_t line = 0;
};

} // namespace

PlaFile parse_pla(std::istream& in, const std::string& source) {
  PlaFile pla;
  bool sized = false;
  std::string line;
  std::size_t lineno = 0;
  std::vector<PlaCube> cubes;
  while (std::getline(in, line)) {
    ++lineno;
    auto fail = [&](const std::string& msg) {
      fail_parse("pla", source, lineno, msg);
    };
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) {
      continue;
    }
    if (head == ".i") {
      ls >> pla.num_inputs;
    } else if (head == ".o") {
      ls >> pla.num_outputs;
    } else if (head == ".ilb") {
      std::string n;
      while (ls >> n) {
        pla.input_names.push_back(n);
      }
    } else if (head == ".ob") {
      std::string n;
      while (ls >> n) {
        pla.output_names.push_back(n);
      }
    } else if (head == ".p" || head == ".type") {
      // row count / type hints are informational
    } else if (head == ".e" || head == ".end") {
      break;
    } else if (head[0] == '.') {
      fail("unsupported directive " + head);
    } else {
      std::string outs;
      if (!(ls >> outs)) {
        fail("cube row missing output part");
      }
      cubes.push_back({head, outs, lineno});
    }
    if (!sized && pla.num_inputs > 0 && pla.num_outputs > 0) {
      if (pla.num_inputs > tt::TruthTable::kMaxVars) {
        fail("too many inputs (" + std::to_string(pla.num_inputs) + " > " +
             std::to_string(tt::TruthTable::kMaxVars) + ")");
      }
      // Cap the output count before the table allocation — a corrupted
      // `.o 4000000000` must not drive tables.assign.
      constexpr unsigned kMaxOutputs = 1u << 16;
      if (pla.num_outputs > kMaxOutputs) {
        fail("too many outputs (" + std::to_string(pla.num_outputs) +
             " > " + std::to_string(kMaxOutputs) + ")");
      }
      pla.tables.assign(pla.num_outputs, tt::TruthTable(pla.num_inputs));
      sized = true;
    }
  }
  if (!sized) {
    fail_parse("pla", source, lineno, "missing .i/.o header");
  }
  for (const auto& [ins, outs, cube_line] : cubes) {
    auto fail = [&, cube_line](const std::string& msg) {
      fail_parse("pla", source, cube_line, msg);
    };
    if (ins.size() != pla.num_inputs || outs.size() != pla.num_outputs) {
      fail("cube width mismatch (" + std::to_string(ins.size()) + "/" +
           std::to_string(outs.size()) + " vs .i " +
           std::to_string(pla.num_inputs) + " .o " +
           std::to_string(pla.num_outputs) + ")");
    }
    // Expand the input cube over its don't-cares.
    std::vector<std::uint64_t> assignments{0};
    std::uint64_t fixed = 0;
    for (unsigned v = 0; v < pla.num_inputs; ++v) {
      if (ins[v] == '1') {
        fixed |= std::uint64_t{1} << v;
      } else if (ins[v] == '-' || ins[v] == '2') {
        const std::size_t count = assignments.size();
        for (std::size_t k = 0; k < count; ++k) {
          assignments.push_back(assignments[k] | (std::uint64_t{1} << v));
        }
      } else if (ins[v] != '0') {
        fail(std::string("invalid cube character '") + ins[v] + "'");
      }
    }
    for (auto& a : assignments) {
      a |= fixed;
    }
    for (unsigned o = 0; o < pla.num_outputs; ++o) {
      if (outs[o] == '1' || outs[o] == '4') {
        for (const auto a : assignments) {
          pla.tables[o].set_bit(a, true);
        }
      } else if (outs[o] != '0' && outs[o] != '-' && outs[o] != '~' &&
                 outs[o] != '2') {
        fail(std::string("invalid output character '") + outs[o] + "'");
      }
    }
  }
  return pla;
}

PlaFile parse_pla_string(const std::string& text) {
  std::istringstream in(text);
  return parse_pla(in);
}

PlaFile parse_pla_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("pla", path, 0, "cannot open file");
  }
  return parse_pla(in, path);
}

void write_pla(const std::vector<tt::TruthTable>& tables, std::ostream& out) {
  if (tables.empty()) {
    throw std::invalid_argument("write_pla: no outputs");
  }
  const unsigned ni = tables[0].num_vars();
  out << ".i " << ni << "\n.o " << tables.size() << '\n';
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << ni); ++x) {
    bool any = false;
    for (const auto& t : tables) {
      if (t.bit(x)) {
        any = true;
        break;
      }
    }
    if (!any) {
      continue;
    }
    for (unsigned v = 0; v < ni; ++v) {
      out << (((x >> v) & 1) ? '1' : '0');
    }
    out << ' ';
    for (const auto& t : tables) {
      out << (t.bit(x) ? '1' : '0');
    }
    out << '\n';
  }
  out << ".e\n";
}

} // namespace rcgp::io
