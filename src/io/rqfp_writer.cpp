#include "io/rqfp_writer.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/parse_error.hpp"

namespace rcgp::io {

void write_rqfp(const rqfp::Netlist& net, std::ostream& out) {
  out << ".rqfp 1\n";
  out << ".pis " << net.num_pis();
  if (net.has_pi_names()) {
    for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
      out << ' ' << net.pi_name(i);
    }
  }
  out << "\n.pos " << net.num_pos() << '\n';
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    out << "gate " << gate.in[0] << ' ' << gate.in[1] << ' ' << gate.in[2]
        << ' ' << gate.config.to_string() << '\n';
  }
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out << "po " << net.po_at(i) << ' ' << net.po_name(i) << '\n';
  }
  out << ".end\n";
}

std::string write_rqfp_string(const rqfp::Netlist& net) {
  std::ostringstream out;
  write_rqfp(net, out);
  return out.str();
}

rqfp::Netlist parse_rqfp(std::istream& in, const std::string& source) {
  std::string line;
  std::size_t lineno = 0;
  unsigned num_pis = 0;
  bool have_header = false;
  bool have_pis = false;
  rqfp::Netlist net;
  std::vector<std::string> pi_names;
  const auto fail = [&](const std::string& message) {
    fail_parse("rqfp", source, lineno, message);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) {
      continue;
    }
    if (head == ".rqfp") {
      have_header = true;
      continue;
    }
    if (!have_header) {
      fail("missing .rqfp header");
    }
    if (head == ".pis") {
      if (!(ls >> num_pis)) {
        fail("malformed .pis line (expected a PI count)");
      }
      std::string name;
      while (ls >> name) {
        pi_names.push_back(name);
      }
      net = rqfp::Netlist(num_pis);
      if (!pi_names.empty()) {
        if (pi_names.size() != num_pis) {
          fail("PI name count mismatch");
        }
        net.set_pi_names(pi_names);
      }
      have_pis = true;
      continue;
    }
    if (head == ".pos") {
      continue; // informational; actual POs come from `po` lines
    }
    if (head == ".end") {
      break;
    }
    if (!have_pis) {
      fail("gate before .pis");
    }
    if (head == "gate") {
      rqfp::Port a = 0;
      rqfp::Port b = 0;
      rqfp::Port c = 0;
      std::string cfg;
      if (!(ls >> a >> b >> c >> cfg)) {
        fail("malformed gate line");
      }
      // InvConfig::parse and Netlist::add_gate throw std::invalid_argument
      // on bad configs / forward port references — on this path those are
      // input errors, not programming errors.
      try {
        net.add_gate({a, b, c}, rqfp::InvConfig::parse(cfg));
      } catch (const std::exception& e) {
        fail(e.what());
      }
      continue;
    }
    if (head == "po") {
      rqfp::Port p = 0;
      std::string name;
      if (!(ls >> p)) {
        fail("malformed po line");
      }
      ls >> name;
      try {
        net.add_po(p, name);
      } catch (const std::exception& e) {
        fail(e.what());
      }
      continue;
    }
    fail("unknown line kind " + head);
  }
  if (!have_header) {
    fail_parse("rqfp", source, 0, "missing .rqfp header (empty input)");
  }
  return net;
}

rqfp::Netlist parse_rqfp_string(const std::string& text) {
  std::istringstream in(text);
  return parse_rqfp(in);
}

rqfp::Netlist parse_rqfp_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    fail_parse("rqfp", path, 0, "cannot open file");
  }
  return parse_rqfp(in, path);
}

void write_rqfp_file(const rqfp::Netlist& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("rqfp: cannot write " + path);
  }
  write_rqfp(net, out);
}

void write_dot(const rqfp::Netlist& net, std::ostream& out) {
  out << "digraph rqfp {\n  rankdir=LR;\n  node [shape=record];\n";
  out << "  const [label=\"1\" shape=circle];\n";
  for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
    out << "  pi" << i << " [label=\""
        << (net.has_pi_names() ? net.pi_name(i) : "x" + std::to_string(i))
        << "\" shape=circle];\n";
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    out << "  g" << g << " [label=\"{R" << g << "|"
        << net.gate(g).config.to_string() << "|{<o0>0|<o1>1|<o2>2}}\"];\n";
  }
  auto src = [&](rqfp::Port p) -> std::string {
    if (net.is_const_port(p)) {
      return "const";
    }
    if (net.is_pi_port(p)) {
      return "pi" + std::to_string(net.pi_of_port(p));
    }
    return "g" + std::to_string(net.gate_of_port(p)) + ":o" +
           std::to_string(net.slot_of_port(p));
  };
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    for (unsigned i = 0; i < 3; ++i) {
      out << "  " << src(net.gate(g).in[i]) << " -> g" << g << ";\n";
    }
  }
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out << "  po" << i << " [label=\"" << net.po_name(i)
        << "\" shape=doublecircle];\n";
    out << "  " << src(net.po_at(i)) << " -> po" << i << ";\n";
  }
  out << "}\n";
}

std::string write_dot_string(const rqfp::Netlist& net) {
  std::ostringstream out;
  write_dot(net, out);
  return out.str();
}

void write_structural_verilog(const rqfp::Netlist& net, std::ostream& out,
                              const std::string& module_name) {
  // Behavioural cell: three majority outputs with per-input inverter bits
  // taken from a 9-bit parameter (bit 3k+i inverts input i of majority k).
  out << "// Generated by RCGP — RQFP structural netlist\n"
      << "module rqfp_gate #(parameter [8:0] CONFIG = 9'b0)\n"
      << "    (input a, input b, input c,\n"
      << "     output y0, output y1, output y2);\n"
      << "  wire [8:0] s = {c ^ CONFIG[8], b ^ CONFIG[7], a ^ CONFIG[6],\n"
      << "                  c ^ CONFIG[5], b ^ CONFIG[4], a ^ CONFIG[3],\n"
      << "                  c ^ CONFIG[2], b ^ CONFIG[1], a ^ CONFIG[0]};\n"
      << "  assign y0 = (s[0] & s[1]) | (s[0] & s[2]) | (s[1] & s[2]);\n"
      << "  assign y1 = (s[3] & s[4]) | (s[3] & s[5]) | (s[4] & s[5]);\n"
      << "  assign y2 = (s[6] & s[7]) | (s[6] & s[8]) | (s[7] & s[8]);\n"
      << "endmodule\n\n";

  out << "module " << module_name << " (";
  for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
    out << "x" << i << ", ";
  }
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    if (i) {
      out << ", ";
    }
    out << net.po_name(i);
  }
  out << ");\n";
  for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
    out << "  input x" << i << ";";
    if (net.has_pi_names()) {
      out << " // " << net.pi_name(i);
    }
    out << '\n';
  }
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out << "  output " << net.po_name(i) << ";\n";
  }
  out << "  wire const1 = 1'b1;\n";
  auto port_ref = [&](rqfp::Port p) -> std::string {
    if (net.is_const_port(p)) {
      return "const1";
    }
    if (net.is_pi_port(p)) {
      return "x" + std::to_string(net.pi_of_port(p));
    }
    return "p" + std::to_string(p);
  };
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    for (unsigned k = 0; k < 3; ++k) {
      out << "  wire p" << net.port_of(g, k) << ";\n";
    }
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    out << "  rqfp_gate #(.CONFIG(9'b";
    for (unsigned bit = 9; bit-- > 0;) {
      out << ((gate.config.bits() >> bit) & 1);
    }
    out << ")) g" << g << " (.a(" << port_ref(gate.in[0]) << "), .b("
        << port_ref(gate.in[1]) << "), .c(" << port_ref(gate.in[2])
        << "), .y0(p" << net.port_of(g, 0) << "), .y1(p"
        << net.port_of(g, 1) << "), .y2(p" << net.port_of(g, 2) << "));\n";
  }
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out << "  assign " << net.po_name(i) << " = " << port_ref(net.po_at(i))
        << ";\n";
  }
  out << "endmodule\n";
}

std::string write_structural_verilog_string(const rqfp::Netlist& net,
                                            const std::string& module_name) {
  std::ostringstream out;
  write_structural_verilog(net, out, module_name);
  return out.str();
}

} // namespace rcgp::io
