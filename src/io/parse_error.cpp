#include "io/parse_error.hpp"

namespace rcgp::io {

namespace {

std::string format_message(const std::string& format,
                           const std::string& source, std::size_t line,
                           const std::string& message) {
  std::string out = format + ":" + source;
  if (line > 0) {
    out += ":" + std::to_string(line);
  }
  out += ": " + message;
  return out;
}

} // namespace

ParseError::ParseError(const std::string& format, const std::string& source,
                       std::size_t line, const std::string& message)
    : std::runtime_error(format_message(format, source, line, message)),
      source_(source),
      line_(line) {}

void fail_parse(const char* format, const std::string& source,
                std::size_t line, const std::string& message) {
  throw ParseError(format, source, line, message);
}

} // namespace rcgp::io
