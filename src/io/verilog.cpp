#include "io/verilog.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "io/parse_error.hpp"

namespace rcgp::io {

namespace {

struct Token {
  enum class Kind { kIdent, kSymbol, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
};

class Lexer {
public:
  Lexer(std::string text, std::string source)
      : text_(std::move(text)), source_(std::move(source)) {
    advance();
  }

  const Token& peek() const { return current_; }
  Token take() {
    Token t = current_;
    advance();
    return t;
  }
  bool accept(const std::string& symbol) {
    if (current_.text == symbol) {
      advance();
      return true;
    }
    return false;
  }
  void expect(const std::string& symbol) {
    if (!accept(symbol)) {
      fail("expected '" + symbol + "' near '" + current_.text + "'");
    }
  }

  /// 1-based source line of the current (peeked) token.
  std::size_t line() const {
    const auto end = text_.begin() +
                     static_cast<std::ptrdiff_t>(
                         std::min(token_start_, text_.size()));
    return 1 + static_cast<std::size_t>(std::count(text_.begin(), end, '\n'));
  }

  [[noreturn]] void fail(const std::string& msg) const {
    fail_parse("verilog", source_, line(), msg);
  }

private:
  void advance() {
    skip_space_and_comments();
    token_start_ = pos_;
    if (pos_ >= text_.size()) {
      current_ = {Token::Kind::kEnd, ""};
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '\\') {
      std::size_t start = pos_;
      if (c == '\\') { // escaped identifier: up to whitespace
        ++pos_;
        while (pos_ < text_.size() &&
               !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        current_ = {Token::Kind::kIdent,
                    text_.substr(start + 1, pos_ - start - 1)};
        return;
      }
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '$')) {
        ++pos_;
      }
      current_ = {Token::Kind::kIdent, text_.substr(start, pos_ - start)};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Sized constants like 1'b0; lex the whole blob.
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '\'')) {
        ++pos_;
      }
      current_ = {Token::Kind::kIdent, text_.substr(start, pos_ - start)};
      return;
    }
    ++pos_;
    current_ = {Token::Kind::kSymbol, std::string(1, c)};
  }

  void skip_space_and_comments() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
        continue;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          ++pos_;
        }
        pos_ = pos_ + 2 <= text_.size() ? pos_ + 2 : text_.size();
        continue;
      }
      break;
    }
  }

  std::string text_;
  std::string source_;
  std::size_t pos_ = 0;
  std::size_t token_start_ = 0;
  Token current_;
};

/// Expression AST kept as a flat string re-parse per assignment would be
/// wasteful; instead parse directly to a deferred form: a tree of ops over
/// names, evaluated once all names resolve.
struct Expr {
  enum class Op { kName, kConst0, kConst1, kNot, kAnd, kOr, kXor, kMux };
  Op op = Op::kName;
  std::string name;
  std::vector<Expr> kids;
};

class ExprParser {
public:
  explicit ExprParser(Lexer& lex) : lex_(lex) {}

  // Grammar (precedence low→high): mux := or ('?' or ':' or)?
  //   or := xor ('|' xor)* ; xor := and ('^' and)* ;
  //   and := unary ('&' unary)* ; unary := '~' unary | primary
  Expr parse() { return parse_mux(); }

private:
  Expr parse_mux() {
    Expr cond = parse_or();
    if (lex_.accept("?")) {
      Expr t = parse_or();
      lex_.expect(":");
      Expr e = parse_mux();
      Expr m;
      m.op = Expr::Op::kMux;
      m.kids = {std::move(cond), std::move(t), std::move(e)};
      return m;
    }
    return cond;
  }
  Expr parse_or() { return parse_binary(Expr::Op::kOr, "|"); }
  Expr parse_binary(Expr::Op op, const std::string& sym) {
    Expr lhs = op == Expr::Op::kOr ? parse_xor()
               : op == Expr::Op::kXor ? parse_and()
                                      : parse_unary();
    while (lex_.accept(sym)) {
      Expr rhs = op == Expr::Op::kOr ? parse_xor()
                 : op == Expr::Op::kXor ? parse_and()
                                        : parse_unary();
      Expr node;
      node.op = op;
      node.kids = {std::move(lhs), std::move(rhs)};
      lhs = std::move(node);
    }
    return lhs;
  }
  Expr parse_xor() { return parse_binary(Expr::Op::kXor, "^"); }
  Expr parse_and() { return parse_binary(Expr::Op::kAnd, "&"); }
  Expr parse_unary() {
    if (lex_.accept("~") || lex_.accept("!")) {
      Expr node;
      node.op = Expr::Op::kNot;
      node.kids = {parse_unary()};
      return node;
    }
    return parse_primary();
  }
  Expr parse_primary() {
    if (lex_.accept("(")) {
      Expr e = parse();
      lex_.expect(")");
      return e;
    }
    const Token t = lex_.take();
    if (t.kind != Token::Kind::kIdent) {
      lex_.fail("unexpected token '" + t.text + "'");
    }
    Expr e;
    if (t.text == "1'b0" || t.text == "0") {
      e.op = Expr::Op::kConst0;
    } else if (t.text == "1'b1" || t.text == "1") {
      e.op = Expr::Op::kConst1;
    } else {
      e.op = Expr::Op::kName;
      e.name = t.text;
    }
    return e;
  }

  Lexer& lex_;
};

bool expr_ready(const Expr& e,
                const std::map<std::string, aig::Signal>& signals) {
  if (e.op == Expr::Op::kName) {
    return signals.count(e.name) != 0;
  }
  for (const auto& k : e.kids) {
    if (!expr_ready(k, signals)) {
      return false;
    }
  }
  return true;
}

aig::Signal expr_build(const Expr& e, aig::Aig& net,
                       const std::map<std::string, aig::Signal>& signals) {
  switch (e.op) {
    case Expr::Op::kName: return signals.at(e.name);
    case Expr::Op::kConst0: return net.const0();
    case Expr::Op::kConst1: return net.const1();
    case Expr::Op::kNot: return !expr_build(e.kids[0], net, signals);
    case Expr::Op::kAnd:
      return net.create_and(expr_build(e.kids[0], net, signals),
                            expr_build(e.kids[1], net, signals));
    case Expr::Op::kOr:
      return net.create_or(expr_build(e.kids[0], net, signals),
                           expr_build(e.kids[1], net, signals));
    case Expr::Op::kXor:
      return net.create_xor(expr_build(e.kids[0], net, signals),
                            expr_build(e.kids[1], net, signals));
    case Expr::Op::kMux:
      return net.create_mux(expr_build(e.kids[0], net, signals),
                            expr_build(e.kids[1], net, signals),
                            expr_build(e.kids[2], net, signals));
  }
  throw std::logic_error("verilog: unreachable expression op");
}

} // namespace

aig::Aig parse_verilog(std::istream& in, const std::string& source) {
  std::ostringstream buf;
  buf << in.rdbuf();
  Lexer lex(buf.str(), source);

  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  struct Assign {
    std::string lhs;
    Expr rhs;
    std::size_t line = 0;
  };
  std::vector<Assign> assigns;

  auto parse_name_list = [&](std::vector<std::string>* sink) {
    do {
      const Token t = lex.take();
      if (t.kind != Token::Kind::kIdent) {
        lex.fail("expected identifier");
      }
      if (sink) {
        sink->push_back(t.text);
      }
    } while (lex.accept(","));
    lex.expect(";");
  };

  lex.expect("module");
  lex.take(); // module name
  if (lex.accept("(")) {
    while (!lex.accept(")")) {
      if (lex.peek().kind == Token::Kind::kEnd) {
        lex.fail("unterminated port list");
      }
      lex.take(); // port names / commas / direction keywords
    }
  }
  lex.expect(";");

  for (;;) {
    const Token t = lex.peek();
    if (t.kind == Token::Kind::kEnd) {
      lex.fail("missing endmodule");
    }
    if (t.text == "endmodule") {
      lex.take();
      break;
    }
    if (t.text == "input") {
      lex.take();
      parse_name_list(&inputs);
      continue;
    }
    if (t.text == "output") {
      lex.take();
      parse_name_list(&outputs);
      continue;
    }
    if (t.text == "wire") {
      lex.take();
      parse_name_list(nullptr);
      continue;
    }
    if (t.text == "assign") {
      const std::size_t stmt_line = lex.line();
      lex.take();
      const Token lhs = lex.take();
      if (lhs.kind != Token::Kind::kIdent) {
        lex.fail("assign needs an identifier lhs");
      }
      lex.expect("=");
      ExprParser ep(lex);
      Expr rhs = ep.parse();
      lex.expect(";");
      assigns.push_back({lhs.text, std::move(rhs), stmt_line});
      continue;
    }
    // Gate primitive: kind [name] ( out, in... );
    const std::size_t stmt_line = lex.line();
    static const std::map<std::string, std::string> kGates = {
        {"and", "&"},  {"or", "|"},   {"xor", "^"},  {"nand", "&!"},
        {"nor", "|!"}, {"xnor", "^!"}, {"not", "~"},  {"buf", "="}};
    const auto git = kGates.find(t.text);
    if (git == kGates.end()) {
      lex.fail("unsupported construct '" + t.text + "'");
    }
    lex.take();
    if (lex.peek().kind == Token::Kind::kIdent) {
      lex.take(); // optional instance name
    }
    lex.expect("(");
    std::vector<std::string> conns;
    do {
      const Token c = lex.take();
      if (c.kind != Token::Kind::kIdent) {
        lex.fail("gate connection must be a name");
      }
      conns.push_back(c.text);
    } while (lex.accept(","));
    lex.expect(")");
    lex.expect(";");
    if (conns.size() < 2) {
      lex.fail("gate needs output and input(s)");
    }
    // Desugar the primitive to an expression tree.
    Expr rhs;
    const std::string& op = git->second;
    auto name_expr = [](const std::string& n) {
      Expr e;
      e.op = Expr::Op::kName;
      e.name = n;
      return e;
    };
    if (op == "~" || op == "=") {
      if (conns.size() != 2) {
        lex.fail("not/buf take one input");
      }
      rhs = name_expr(conns[1]);
      if (op == "~") {
        Expr n;
        n.op = Expr::Op::kNot;
        n.kids = {std::move(rhs)};
        rhs = std::move(n);
      }
    } else {
      const Expr::Op base = op[0] == '&'   ? Expr::Op::kAnd
                            : op[0] == '|' ? Expr::Op::kOr
                                           : Expr::Op::kXor;
      rhs = name_expr(conns[1]);
      for (std::size_t k = 2; k < conns.size(); ++k) {
        Expr n;
        n.op = base;
        n.kids = {std::move(rhs), name_expr(conns[k])};
        rhs = std::move(n);
      }
      if (op.size() > 1) { // negated variants
        Expr n;
        n.op = Expr::Op::kNot;
        n.kids = {std::move(rhs)};
        rhs = std::move(n);
      }
    }
    assigns.push_back({conns[0], std::move(rhs), stmt_line});
  }

  aig::Aig net;
  std::map<std::string, aig::Signal> signals;
  for (const auto& name : inputs) {
    signals[name] = net.create_pi(name);
  }
  std::vector<bool> done(assigns.size(), false);
  std::size_t remaining = assigns.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < assigns.size(); ++i) {
      if (done[i] || !expr_ready(assigns[i].rhs, signals)) {
        continue;
      }
      signals[assigns[i].lhs] = expr_build(assigns[i].rhs, net, signals);
      done[i] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    for (std::size_t i = 0; i < assigns.size(); ++i) {
      if (!done[i]) {
        fail_parse("verilog", source, assigns[i].line,
                   "unresolved or cyclic assignment to " + assigns[i].lhs);
      }
    }
  }
  for (const auto& name : outputs) {
    const auto it = signals.find(name);
    if (it == signals.end()) {
      fail_parse("verilog", source, 0, "undriven output " + name);
    }
    net.add_po(it->second, name);
  }
  return net;
}

aig::Aig parse_verilog_string(const std::string& text) {
  std::istringstream in(text);
  return parse_verilog(in);
}

aig::Aig parse_verilog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("verilog", path, 0, "cannot open file");
  }
  return parse_verilog(in, path);
}

void write_verilog(const aig::Aig& input, std::ostream& out,
                   const std::string& module_name) {
  const aig::Aig net = input.cleanup();
  out << "module " << module_name << " (";
  for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
    out << net.pi_name(i) << ", ";
  }
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    if (i) {
      out << ", ";
    }
    out << net.po_name(i);
  }
  out << ");\n";
  for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
    out << "  input " << net.pi_name(i) << ";\n";
  }
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out << "  output " << net.po_name(i) << ";\n";
  }
  auto ref = [&](aig::Signal s) -> std::string {
    std::string base;
    if (s.node() == 0) {
      base = "1'b0";
      return s.complemented() ? "1'b1" : base;
    }
    base = net.is_pi(s.node()) ? net.pi_name(net.pi_index(s.node()))
                               : "n" + std::to_string(s.node());
    return s.complemented() ? "~" + base : base;
  };
  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (net.is_and(n)) {
      out << "  wire n" << n << ";\n";
    }
  }
  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (!net.is_and(n)) {
      continue;
    }
    out << "  assign n" << n << " = " << ref(net.fanin0(n)) << " & "
        << ref(net.fanin1(n)) << ";\n";
  }
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out << "  assign " << net.po_name(i) << " = " << ref(net.po_at(i))
        << ";\n";
  }
  out << "endmodule\n";
}

std::string write_verilog_string(const aig::Aig& net,
                                 const std::string& module_name) {
  std::ostringstream out;
  write_verilog(net, out, module_name);
  return out.str();
}

} // namespace rcgp::io
