#pragma once

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace rcgp::io {

/// Parses a combinational BLIF model (.model/.inputs/.outputs/.names/.end;
/// single-output SOP tables with '0'/'1'/'-' input columns and a '0' or
/// '1' output column) into an AIG. Latches and subcircuits are rejected.
/// Throws io::ParseError (a std::runtime_error) on malformed input, with
/// `source` and the failing line in the message.
aig::Aig parse_blif(std::istream& in, const std::string& source = "<blif>");
aig::Aig parse_blif_string(const std::string& text);
aig::Aig parse_blif_file(const std::string& path);

/// Writes an AIG as BLIF (each AND node becomes a two-input .names table).
void write_blif(const aig::Aig& net, std::ostream& out,
                const std::string& model_name = "rcgp");
std::string write_blif_string(const aig::Aig& net,
                              const std::string& model_name = "rcgp");

} // namespace rcgp::io
