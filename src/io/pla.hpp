#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"

namespace rcgp::io {

struct PlaFile {
  unsigned num_inputs = 0;
  unsigned num_outputs = 0;
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  /// One exact truth table per output (don't-care outputs resolved to 0).
  std::vector<tt::TruthTable> tables;
};

/// Parses Berkeley PLA (.i/.o/.ilb/.ob/.p/.e, cube rows "01-0 1-"),
/// type F (on-set) semantics. Throws io::ParseError (a
/// std::runtime_error) with `source` and the failing line in the message
/// on malformed input or more inputs than tt::TruthTable::kMaxVars.
PlaFile parse_pla(std::istream& in, const std::string& source = "<pla>");
PlaFile parse_pla_string(const std::string& text);
PlaFile parse_pla_file(const std::string& path);

/// Writes tables as a minterm-per-row PLA.
void write_pla(const std::vector<tt::TruthTable>& tables, std::ostream& out);

} // namespace rcgp::io
