#include "io/blif.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "io/parse_error.hpp"

namespace rcgp::io {

namespace {

struct TokenLine {
  std::vector<std::string> tokens;
  std::size_t line = 0; // 1-based source line (start of a continuation)
};

/// Reads logical lines, gluing '\' continuations and skipping comments.
std::vector<TokenLine> tokenize(std::istream& in) {
  std::vector<TokenLine> lines;
  std::string line;
  std::string pending;
  std::size_t lineno = 0;
  std::size_t pending_start = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    if (pending.empty()) {
      pending_start = lineno;
    }
    if (!line.empty() && line.back() == '\\') {
      pending += line.substr(0, line.size() - 1) + " ";
      continue;
    }
    pending += line;
    std::istringstream ls(pending);
    pending.clear();
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) {
      tokens.push_back(tok);
    }
    if (!tokens.empty()) {
      lines.push_back({std::move(tokens), pending_start});
    }
  }
  return lines;
}

struct NamesTable {
  std::vector<std::string> inputs;
  std::string output;
  std::vector<std::string> cubes; // "01-" style rows
  char out_value = '1';
  std::size_t line = 0; // source line of the .names directive
};

} // namespace

aig::Aig parse_blif(std::istream& in, const std::string& source) {
  const auto lines = tokenize(in);
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<NamesTable> tables;
  bool in_names = false;

  for (const auto& entry : lines) {
    const auto& tokens = entry.tokens;
    auto fail = [&](const std::string& msg) {
      fail_parse("blif", source, entry.line, msg);
    };
    const std::string& head = tokens[0];
    if (head == ".model") {
      in_names = false;
      continue;
    }
    if (head == ".inputs") {
      in_names = false;
      input_names.insert(input_names.end(), tokens.begin() + 1, tokens.end());
      continue;
    }
    if (head == ".outputs") {
      in_names = false;
      output_names.insert(output_names.end(), tokens.begin() + 1,
                          tokens.end());
      continue;
    }
    if (head == ".names") {
      if (tokens.size() < 2) {
        fail(".names needs at least an output");
      }
      NamesTable t;
      t.inputs.assign(tokens.begin() + 1, tokens.end() - 1);
      t.output = tokens.back();
      t.line = entry.line;
      tables.push_back(std::move(t));
      in_names = true;
      continue;
    }
    if (head == ".end") {
      break;
    }
    if (head[0] == '.') {
      fail("unsupported directive " + head);
    }
    // Cube row of the current .names table.
    if (!in_names || tables.empty()) {
      fail("stray table row");
    }
    NamesTable& t = tables.back();
    if (t.inputs.empty()) {
      if (tokens.size() != 1 || (tokens[0] != "0" && tokens[0] != "1")) {
        fail("constant table row malformed");
      }
      t.out_value = tokens[0][0];
      t.cubes.push_back("");
      continue;
    }
    if (tokens.size() != 2 || tokens[0].size() != t.inputs.size()) {
      fail("cube row arity mismatch");
    }
    if (tokens[1] != "0" && tokens[1] != "1") {
      fail("cube output must be 0 or 1");
    }
    if (!t.cubes.empty() && t.out_value != tokens[1][0]) {
      fail("mixed-polarity tables unsupported");
    }
    t.out_value = tokens[1][0];
    t.cubes.push_back(tokens[0]);
  }

  aig::Aig net;
  std::map<std::string, aig::Signal> signals;
  for (const auto& name : input_names) {
    signals[name] = net.create_pi(name);
  }

  // Tables may be listed out of order; resolve iteratively.
  std::vector<bool> done(tables.size(), false);
  std::size_t remaining = tables.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < tables.size(); ++i) {
      if (done[i]) {
        continue;
      }
      const NamesTable& t = tables[i];
      bool ready = true;
      for (const auto& in_name : t.inputs) {
        if (!signals.count(in_name)) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        continue;
      }
      aig::Signal sum = net.const0();
      for (const auto& cube : t.cubes) {
        aig::Signal prod = net.const1();
        for (std::size_t v = 0; v < cube.size(); ++v) {
          if (cube[v] == '1') {
            prod = net.create_and(prod, signals[t.inputs[v]]);
          } else if (cube[v] == '0') {
            prod = net.create_and(prod, !signals[t.inputs[v]]);
          } else if (cube[v] != '-') {
            fail_parse("blif", source, t.line,
                       std::string("invalid cube character '") + cube[v] +
                           "' in table for " + t.output);
          }
        }
        sum = net.create_or(sum, prod);
      }
      if (t.cubes.empty()) {
        sum = net.const0(); // .names with no rows is constant 0
      }
      if (t.out_value == '0') {
        sum = !sum;
      }
      signals[t.output] = sum;
      done[i] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    for (std::size_t i = 0; i < tables.size(); ++i) {
      if (!done[i]) {
        fail_parse("blif", source, tables[i].line,
                   "undefined or cyclic signal dependency in table for " +
                       tables[i].output);
      }
    }
  }
  for (const auto& name : output_names) {
    const auto it = signals.find(name);
    if (it == signals.end()) {
      fail_parse("blif", source, 0, "undriven output " + name);
    }
    net.add_po(it->second, name);
  }
  return net;
}

aig::Aig parse_blif_string(const std::string& text) {
  std::istringstream in(text);
  return parse_blif(in);
}

aig::Aig parse_blif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("blif", path, 0, "cannot open file");
  }
  return parse_blif(in, path);
}

void write_blif(const aig::Aig& input, std::ostream& out,
                const std::string& model_name) {
  const aig::Aig net = input.cleanup();
  out << ".model " << model_name << "\n.inputs";
  for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
    out << ' ' << net.pi_name(i);
  }
  out << "\n.outputs";
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out << ' ' << net.po_name(i);
  }
  out << '\n';

  auto signal_name = [&](aig::Signal s) -> std::string {
    if (s.node() == 0) {
      return "const"; // complemented handled by caller
    }
    if (net.is_pi(s.node())) {
      return net.pi_name(net.pi_index(s.node()));
    }
    return "n" + std::to_string(s.node());
  };

  bool const_used = false;
  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (net.is_and(n)) {
      const aig::Signal a = net.fanin0(n);
      const aig::Signal b = net.fanin1(n);
      if (a.node() == 0 || b.node() == 0) {
        const_used = true;
      }
    }
  }
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    if (net.po_at(i).node() == 0) {
      const_used = true;
    }
  }
  if (const_used) {
    out << ".names const\n0\n"; // constant 0 signal
  }

  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (!net.is_and(n)) {
      continue;
    }
    const aig::Signal a = net.fanin0(n);
    const aig::Signal b = net.fanin1(n);
    out << ".names " << signal_name(a) << ' ' << signal_name(b) << " n" << n
        << '\n';
    out << (a.complemented() ? '0' : '1') << (b.complemented() ? '0' : '1')
        << " 1\n";
  }
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    const aig::Signal po = net.po_at(i);
    out << ".names " << signal_name(po) << ' ' << net.po_name(i) << '\n';
    out << (po.complemented() ? '0' : '1') << " 1\n";
  }
  out << ".end\n";
}

std::string write_blif_string(const aig::Aig& net,
                              const std::string& model_name) {
  std::ostringstream out;
  write_blif(net, out, model_name);
  return out.str();
}

} // namespace rcgp::io
