#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"

namespace rcgp::io {

/// A gate of a RevLib .real reversible circuit.
struct RealGate {
  enum class Kind { kToffoli, kFredkin, kPeres, kInversePeres };
  Kind kind = Kind::kToffoli;
  /// Control lines; a negative control is marked by `negated[i]`.
  std::vector<unsigned> controls;
  std::vector<bool> negated;
  /// Target lines (1 for Toffoli/NOT/CNOT, 2 for Fredkin/Peres).
  std::vector<unsigned> targets;
};

/// A parsed RevLib .real file (the benchmark format of the paper's
/// RevLib suite): a cascade of reversible gates over `num_lines` lines,
/// with optional constant-input and garbage-output annotations.
struct RealCircuit {
  unsigned num_lines = 0;
  std::vector<std::string> variable_names;
  /// '-' = real input; '0'/'1' = constant line (from .constants).
  std::string constants;
  /// '1' = garbage output (from .garbage), '-' = real output.
  std::string garbage;
  std::vector<RealGate> gates;

  /// Number of non-constant input lines.
  unsigned num_real_inputs() const;
  /// Number of non-garbage output lines.
  unsigned num_real_outputs() const;

  /// Applies the cascade to a line assignment (bit i = line i).
  std::uint64_t apply(std::uint64_t lines) const;

  /// Truth tables of the non-garbage outputs over the non-constant inputs
  /// (constant lines fixed per `constants`).
  std::vector<tt::TruthTable> to_tables() const;
};

/// Parses RevLib .real (version 1.0/2.0 subsets: .version .numvars
/// .variables .inputs .outputs .constants .garbage .begin t*/f*/p* gates
/// .end). Throws io::ParseError (a std::runtime_error) on malformed
/// input, with `source` and the failing line in the message. Cascades are
/// capped at 64 lines (the width of the simulation word).
RealCircuit parse_real(std::istream& in,
                       const std::string& source = "<real>");
RealCircuit parse_real_string(const std::string& text);
RealCircuit parse_real_file(const std::string& path);

/// Writes a circuit back in .real format (version 2.0 header, t/f/p/q
/// gates, negative controls as "-name"). Round-trip safe with parse_real.
void write_real(const RealCircuit& circuit, std::ostream& out);
std::string write_real_string(const RealCircuit& circuit);

} // namespace rcgp::io

#include "aig/aig.hpp"

namespace rcgp::io {

/// Structural conversion of a reversible cascade into an AIG: one PI per
/// non-constant line, one PO per non-garbage line, gates expanded as
/// XOR-of-ANDs (Toffoli), controlled swaps (Fredkin), and Peres pairs.
/// Unlike RealCircuit::to_tables() this never enumerates assignments, so
/// it scales to arbitrarily wide RevLib circuits.
aig::Aig real_to_aig(const RealCircuit& circuit);

} // namespace rcgp::io
