#pragma once

#include <cstddef>
#include <stdexcept>
#include <streambuf>
#include <string>

namespace rcgp::io {

/// Parse failure with source context. what() reads
/// "<format>:<source>:<line>: <message>" (line omitted when unknown), so a
/// truncated or corrupt input names the exact file and line instead of a
/// bare "cube width mismatch". Derives from std::runtime_error, so callers
/// catching the historical type keep working.
class ParseError : public std::runtime_error {
public:
  ParseError(const std::string& format, const std::string& source,
             std::size_t line, const std::string& message);

  const std::string& source() const { return source_; }
  /// 1-based line of the failure; 0 when the format is not line-oriented
  /// at the failure point (e.g. a file that cannot be opened).
  std::size_t line() const { return line_; }

private:
  std::string source_;
  std::size_t line_;
};

/// Throws ParseError — the one-liner parsers use as their `fail` helper.
[[noreturn]] void fail_parse(const char* format, const std::string& source,
                             std::size_t line, const std::string& message);

/// streambuf shim that counts consumed newlines and bytes, giving
/// token-oriented parsers (AIGER's `in >> x` style) accurate line numbers
/// — and binary parsers accurate byte offsets — without restructuring
/// them around getline. Wrap the original rdbuf and read through a local
/// istream:
///   LineCountingBuf buf(raw.rdbuf());
///   std::istream in(&buf);            // parse from `in`, report buf.line()
class LineCountingBuf : public std::streambuf {
public:
  explicit LineCountingBuf(std::streambuf* src) : src_(src) {}

  /// 1-based line number of the next unconsumed character.
  std::size_t line() const { return line_; }
  /// 0-based byte offset of the next unconsumed character (binary AIGER
  /// errors report this instead of a line).
  std::size_t bytes() const { return bytes_; }

protected:
  int_type underflow() override { return src_->sgetc(); }
  int_type uflow() override {
    const int_type c = src_->sbumpc();
    if (c == '\n') {
      ++line_;
    }
    if (c != traits_type::eof()) {
      ++bytes_;
    }
    return c;
  }

private:
  std::streambuf* src_;
  std::size_t line_ = 1;
  std::size_t bytes_ = 0;
};

} // namespace rcgp::io
