#pragma once

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace rcgp::io {

/// Parses the ASCII AIGER format ("aag M I L O A", combinational only:
/// L must be 0). Symbol-table entries (iN/oN) are honored.
/// Throws io::ParseError (a std::runtime_error) on malformed input, with
/// `source` and the failing line in the message.
aig::Aig parse_aiger(std::istream& in, const std::string& source = "<aiger>");
aig::Aig parse_aiger_string(const std::string& text);
aig::Aig parse_aiger_file(const std::string& path);

/// Writes an AIG in ASCII AIGER format with a symbol table.
void write_aiger(const aig::Aig& net, std::ostream& out);
std::string write_aiger_string(const aig::Aig& net);

/// Parses the binary AIGER format ("aig M I L O A": implicit input
/// literals, delta-encoded AND gates in LEB128-style 7-bit groups).
/// Combinational only. Auto-detection: parse_aiger_auto dispatches on the
/// magic word, accepting both "aag" and "aig" files.
aig::Aig parse_aiger_binary(std::istream& in,
                            const std::string& source = "<aiger>");
aig::Aig parse_aiger_auto(std::istream& in,
                          const std::string& source = "<aiger>");
aig::Aig parse_aiger_auto_file(const std::string& path);

/// Writes the binary AIGER format (inputs renumbered to 2,4,6,... as the
/// format requires; ANDs re-indexed topologically).
void write_aiger_binary(const aig::Aig& net, std::ostream& out);
std::string write_aiger_binary_string(const aig::Aig& net);

} // namespace rcgp::io
