#pragma once

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace rcgp::io {

/// Parses a small structural/dataflow Verilog subset into an AIG — the
/// "RTL description" entry point of the paper's Fig. 2 flow:
///  * one module, scalar ports: `input a, b;` / `output y;` / `wire w;`
///  * continuous assignments with operators ~ & ^ | ?: and parentheses,
///    plus the constants 1'b0 / 1'b1
///  * gate primitives: and/or/xor/nand/nor/xnor (2+ inputs), not/buf
/// Assignments may appear in any order. Throws io::ParseError (a
/// std::runtime_error) on anything outside the subset, with `source` and
/// the failing line in the message.
aig::Aig parse_verilog(std::istream& in,
                       const std::string& source = "<verilog>");
aig::Aig parse_verilog_string(const std::string& text);
aig::Aig parse_verilog_file(const std::string& path);

/// Writes an AIG as a flat Verilog module of assign statements.
void write_verilog(const aig::Aig& net, std::ostream& out,
                   const std::string& module_name = "rcgp");
std::string write_verilog_string(const aig::Aig& net,
                                 const std::string& module_name = "rcgp");

} // namespace rcgp::io
