#pragma once

#include <iosfwd>
#include <string>

#include "rqfp/netlist.hpp"

namespace rcgp::io {

/// Writes an RQFP netlist in the textual `.rqfp` interchange format:
///
///   .rqfp 1
///   .pis <n> [names...]
///   .pos <n> [names...]
///   gate <in0> <in1> <in2> <xxx-xxx-xxx>    # one line per gate
///   po <port> [name]
///   .end
///
/// Port numbering is the paper's CGP encoding (0 = constant 1, 1..n_pi =
/// PIs, then 3 ports per gate).
void write_rqfp(const rqfp::Netlist& net, std::ostream& out);
std::string write_rqfp_string(const rqfp::Netlist& net);

/// Parses the `.rqfp` format back into a netlist (round-trip safe).
/// Throws io::ParseError (a std::runtime_error) on malformed input, with
/// `source` and the failing line in the message; port and inverter-config
/// validation errors from the netlist constructor surface the same way.
rqfp::Netlist parse_rqfp(std::istream& in,
                         const std::string& source = "<rqfp>");
rqfp::Netlist parse_rqfp_string(const std::string& text);
rqfp::Netlist parse_rqfp_file(const std::string& path);
void write_rqfp_file(const rqfp::Netlist& net, const std::string& path);

/// Graphviz DOT rendering (gates as records with three output ports,
/// buffers implied by levels are not drawn).
void write_dot(const rqfp::Netlist& net, std::ostream& out);
std::string write_dot_string(const rqfp::Netlist& net);

/// Structural Verilog netlist of RQFP cells: each gate becomes an
/// `rqfp_gate` instance with a CONFIG parameter (the 9 inverter bits),
/// plus a behavioural definition of the cell so the file simulates
/// standalone in any Verilog simulator.
void write_structural_verilog(const rqfp::Netlist& net, std::ostream& out,
                              const std::string& module_name = "rqfp_top");
std::string write_structural_verilog_string(
    const rqfp::Netlist& net, const std::string& module_name = "rqfp_top");

} // namespace rcgp::io
